// VGG16 backward-filter pass: the paper's motivating workload (Figures
// 1–2). For every convolutional layer the example prints what WinRS's
// configuration adaptation decides (kernel pair, segment count, workspace)
// and, for a batch-reduced copy of the early layers, executes the gradient
// for real and validates it.
//
//	go run ./examples/vgg16
package main

import (
	"fmt"
	"log"
	"math/rand"
	"os"
	"text/tabwriter"

	"winrs"
)

type layer struct {
	name   string
	hw     int
	ic, oc int
}

// The 13 convolutional layers of VGG-16.
var vgg16 = []layer{
	{"conv1_1", 224, 3, 64}, {"conv1_2", 224, 64, 64},
	{"conv2_1", 112, 64, 128}, {"conv2_2", 112, 128, 128},
	{"conv3_1", 56, 128, 256}, {"conv3_2", 56, 256, 256}, {"conv3_3", 56, 256, 256},
	{"conv4_1", 28, 256, 512}, {"conv4_2", 28, 512, 512}, {"conv4_3", 28, 512, 512},
	{"conv5_1", 14, 512, 512}, {"conv5_2", 14, 512, 512}, {"conv5_3", 14, 512, 512},
}

func params(l layer, batch int) winrs.Params {
	return winrs.Params{N: batch, IH: l.hw, IW: l.hw, FH: 3, FW: 3,
		IC: l.ic, OC: l.oc, PH: 1, PW: 1}
}

func main() {
	const batch = 32
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "layer\tdY dims\tkernel pair\tZ\tworkspace MB\tdata MB\tws/data")
	for _, l := range vgg16 {
		p := params(l, batch)
		plan, err := winrs.NewPlan(p)
		if err != nil {
			log.Fatalf("%s: %v", l.name, err)
		}
		data := float64(p.DataBytes32()) / (1 << 20)
		ws := float64(plan.WorkspaceBytes()) / (1 << 20)
		fmt.Fprintf(w, "%s\t%d:%d:%d:%d\t%s\t%d\t%.1f\t%.1f\t%.3f\n",
			l.name, batch, p.OH(), p.OW(), p.OC,
			plan.KernelPair(), plan.Segments(), ws, data, ws/data)
	}
	w.Flush()

	// Execute the deepest (smallest) layers for real at a reduced batch —
	// exactly the small-output regime WinRS targets — and validate.
	fmt.Println("\nreal execution (batch 2) with FP64 validation:")
	rng := rand.New(rand.NewSource(3))
	for _, l := range []layer{{"conv5_1 (reduced)", 14, 64, 64}, {"conv4_1 (reduced)", 28, 32, 32}} {
		p := params(l, 2)
		x := winrs.NewTensor(p.XShape())
		dy := winrs.NewTensor(p.DYShape())
		x.FillUniform(rng, 0, 1)
		dy.FillUniform(rng, 0, 1)
		dw, err := winrs.BackwardFilter(p, x, dy)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-20s MARE vs FP64 = %.3g\n", l.name,
			winrs.MARE(dw, winrs.Reference(p, x, dy)))
	}
}
