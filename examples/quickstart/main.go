// Quickstart: compute one backward-filter convolution with WinRS and check
// it against the exact reference.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"math/rand"

	"winrs"
)

func main() {
	// A typical mid-network training layer: batch 8, 32×32 feature maps,
	// 16 channels, 3×3 filters with same padding.
	p := winrs.Params{
		N: 8, IH: 32, IW: 32,
		FH: 3, FW: 3,
		IC: 16, OC: 16,
		PH: 1, PW: 1,
	}

	rng := rand.New(rand.NewSource(1))
	x := winrs.NewTensor(p.XShape())   // input feature maps, NHWC
	dy := winrs.NewTensor(p.DYShape()) // output gradients, NHWC
	x.FillUniform(rng, 0, 1)
	dy.FillUniform(rng, 0, 1)

	// One-shot API: configuration adaptation + fused execution.
	dw, err := winrs.BackwardFilter(p, x, dy)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("filter gradients: %v (O_C x F_H x F_W x I_C)\n", dw.Shape)

	// A reusable plan exposes what the adaptation chose.
	plan, err := winrs.NewPlan(p)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("kernel pair:      %s\n", plan.KernelPair())
	fmt.Printf("segments (Z):     %d\n", plan.Segments())
	fmt.Printf("workspace:        %d bytes (Z-1 gradient buckets)\n",
		plan.WorkspaceBytes())

	// Validate against the float64 direct-convolution ground truth.
	mare := winrs.MARE(dw, winrs.Reference(p, x, dy))
	fmt.Printf("MARE vs FP64:     %.3g (paper band for FP32: ~1e-7)\n", mare)
}
