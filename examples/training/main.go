// Training: plug WinRS into a CNN training loop as the backward-filter
// implementation (the Figure 13 scenario in miniature). A small two-conv
// network learns a synthetic classification task with WinRS gradients; the
// loss trace matches exact-gradient training.
//
//	go run ./examples/training
package main

import (
	"fmt"
	"log"

	"winrs"
	"winrs/internal/train"
)

func main() {
	const steps, batch = 300, 8

	// WinRS as the training BFC, through the public API.
	winrsBFC := func(p winrs.Params, x, dy *winrs.Tensor) (*winrs.Tensor, error) {
		return winrs.BackwardFilter(p, x, dy)
	}

	ds := train.NewDataset(3, 8, 8, 2, 7)
	net := train.NewNet(8, 8, 2, 4, 6, 3, winrsBFC, 99)
	net.LR = 0.5
	losses, err := train.Run(net, ds, steps, batch)
	if err != nil {
		log.Fatal(err)
	}
	for s := 50; s <= steps; s += 50 {
		var sum float64
		for _, v := range losses[s-50 : s] {
			sum += v
		}
		fmt.Printf("steps %3d-%3d: mean loss %.4f\n", s-50, s, sum/50)
	}
	x, labels := ds.Batch(128)
	fmt.Printf("held-out accuracy after %d steps: %.1f%%\n",
		steps, 100*net.Accuracy(x, labels))
}
