// Large filters: the reduce-split flexibility story. Modern large-kernel
// CNNs (ConvNeXt 7×7, RepLKNet up to 31×31) need filter gradients far
// beyond the 3×3/5×5 envelope of library Winograd implementations; WinRS
// covers any F_W that is a multiple of 2..9 by splitting rows into hybrid
// 1-D units.
//
//	go run ./examples/largefilter
package main

import (
	"fmt"
	"log"
	"math/rand"
	"os"
	"text/tabwriter"

	"winrs"
)

func main() {
	rng := rand.New(rand.NewSource(21))
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "dW size\tkernel pair\tZ\tMARE vs FP64")

	// 2×2 through 9×9 (the paper's evaluation range) plus the large-kernel
	// sizes from the ConvNeXt/RepLKNet line of work: 13×13 wants the
	// paper's "multiples of 2 to 9" rule.
	for _, f := range []int{2, 3, 4, 5, 6, 7, 8, 9, 12, 14, 18, 27} {
		p := winrs.Params{
			N: 1, IH: f + 17, IW: f + 19,
			FH: f, FW: f,
			IC: 3, OC: 4,
			PH: f / 2, PW: f / 2,
		}
		plan, err := winrs.NewPlan(p)
		if err != nil {
			log.Fatalf("%dx%d: %v", f, f, err)
		}
		x := winrs.NewTensor(p.XShape())
		dy := winrs.NewTensor(p.DYShape())
		x.FillUniform(rng, 0, 1)
		dy.FillUniform(rng, 0, 1)
		dw := plan.Execute(x, dy)
		fmt.Fprintf(w, "%dx%d\t%s\t%d\t%.3g\n",
			f, f, plan.KernelPair(), plan.Segments(),
			winrs.MARE(dw, winrs.Reference(p, x, dy)))
	}
	w.Flush()
	fmt.Println("\nevery row is computed by fused 1-D Winograd units after")
	fmt.Println("dimension reduction; no 2-D transform ever exceeds alpha = 16")
}
