// Mixed precision: the FP16 Tensor-Core path with the paper's accuracy
// machinery — mixed-precision transforms, FP32 accumulation, scaling
// matrices for the α = 16 kernels, and loss scaling against gradient
// underflow.
//
//	go run ./examples/mixedprecision
package main

import (
	"fmt"
	"log"
	"math/rand"

	"winrs"
)

func main() {
	rng := rand.New(rand.NewSource(9))

	// 5×5 filter gradients: the FP16 path selects Ω8(5,4).
	p := winrs.Params{N: 4, IH: 24, IW: 24, FH: 5, FW: 5, IC: 8, OC: 8,
		PH: 2, PW: 2}
	x := winrs.NewTensor(p.XShape())
	dy := winrs.NewTensor(p.DYShape())
	x.FillUniform(rng, 0, 1)
	// The paper scales ∇Y by 1e-2 in its FP16 accuracy runs to stay inside
	// the binary16 dynamic range.
	dy.FillUniform(rng, 0, 0.01)

	plan16, err := winrs.NewPlan(p, winrs.WithFP16())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("FP16 kernel pair: %s, Z = %d\n", plan16.KernelPair(), plan16.Segments())

	xh, dyh := x.ToHalf(), dy.ToHalf()
	dw16 := plan16.ExecuteHalf(xh, dyh)

	// Compare against the FP32 path and the exact reference computed from
	// the same quantized inputs (so the metric isolates algorithm error).
	xq, dyq := xh.ToFloat32(), dyh.ToFloat32()
	dw32, err := winrs.BackwardFilter(p, xq, dyq)
	if err != nil {
		log.Fatal(err)
	}
	exact := winrs.Reference(p, xq, dyq)
	fmt.Printf("MARE FP32 path:   %.3g\n", winrs.MARE(dw32, exact))
	fmt.Printf("MARE FP16 path:   %.3g (paper band: 1e-4..1e-2)\n",
		winrs.MARE(dw16, exact))

	// Loss scaling: gradients below the binary16 subnormal floor (~6e-8)
	// vanish without it.
	tiny := winrs.NewTensor(p.DYShape())
	for i := range tiny.Data {
		tiny.Data[i] = 1e-8
	}
	lost, err := winrs.BackwardFilterHalf(p, x.ToHalf(), tiny.ToHalf())
	if err != nil {
		log.Fatal(err)
	}
	scaledDY := tiny.Clone()
	scaledDY.Scale(1024) // loss scale S = 1024
	kept, err := winrs.BackwardFilterHalf(p, x.ToHalf(), scaledDY.ToHalf())
	if err != nil {
		log.Fatal(err)
	}
	kept.Scale(1.0 / 1024)
	fmt.Printf("tiny gradients without loss scaling: |sum| = %.3g (underflowed)\n",
		sumAbs(lost.Data))
	fmt.Printf("tiny gradients with loss scale 1024: |sum| = %.3g (preserved)\n",
		sumAbs(kept.Data))
}

func sumAbs(vs []float32) float64 {
	var s float64
	for _, v := range vs {
		if v < 0 {
			s -= float64(v)
		} else {
			s += float64(v)
		}
	}
	return s
}
