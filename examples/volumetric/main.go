// Volumetric: the N-D extension of WinRS (paper §3, Level 2). A 3-D
// convolution — video or medical-imaging style — computes its filter
// gradients through the same reduce-split pipeline: the depth and height
// axes flatten into 1-D filters and the width axis carries the F(n,r)
// kernels.
//
//	go run ./examples/volumetric
package main

import (
	"fmt"
	"log"
	"math/rand"

	"winrs"
	"winrs/internal/conv"
	"winrs/internal/tensor"
)

func main() {
	// A 3-D conv layer: batch 2, 8-frame 16×16 clips, 3×3×3 filters.
	p := winrs.Params3D{
		N: 2, ID: 8, IH: 16, IW: 16,
		FD: 3, FH: 3, FW: 3,
		IC: 4, OC: 4,
		PD: 1, PH: 1, PW: 1,
	}
	rng := rand.New(rand.NewSource(7))
	x := winrs.NewTensor5(p.XShape())
	dy := winrs.NewTensor5(p.DYShape())
	x.FillUniform(rng, 0, 1)
	dy.FillUniform(rng, 0, 1)

	dw, err := winrs.BackwardFilter3D(p, x, dy)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("3-D filter gradients: %v (O_C x F_D x F_H x F_W x I_C)\n", dw.Shape)

	// Validate against the direct 3-D reference.
	want := conv.BackwardFilter3DDirect64(p, x.ToFloat645(), dy.ToFloat645())
	fmt.Printf("MARE vs FP64:         %.3g\n", tensor.MARE5(dw, want))

	// The same gradient computed with BF16 storage via the 2-D quantized
	// path on each depth slice would lose precision; here we show the
	// quantized 2-D path alongside for contrast on a matching 2-D layer.
	p2 := winrs.Params{N: 2, IH: 16, IW: 16, FH: 3, FW: 3, IC: 4, OC: 4, PH: 1, PW: 1}
	x2 := winrs.NewTensor(p2.XShape())
	dy2 := winrs.NewTensor(p2.DYShape())
	x2.FillUniform(rng, 0, 1)
	dy2.FillUniform(rng, 0, 1)
	plan, err := winrs.NewPlan(p2)
	if err != nil {
		log.Fatal(err)
	}
	ref := winrs.Reference(p2, x2, dy2)
	fmt.Printf("\n2-D format comparison on a matching layer:\n")
	fmt.Printf("  FP32:     MARE %.3g\n", winrs.MARE(plan.Execute(x2, dy2), ref))
	fmt.Printf("  BF16:     MARE %.3g\n", winrs.MARE(plan.ExecuteQuantized(x2, dy2, winrs.BF16), ref))
	fmt.Printf("  FP8-E4M3: MARE %.3g\n", winrs.MARE(plan.ExecuteQuantized(x2, dy2, winrs.FP8E4M3), ref))
	fmt.Printf("  INT8:     MARE %.3g\n", winrs.MARE(plan.ExecuteQuantized(x2, dy2, winrs.Int8(4)), ref))
}
