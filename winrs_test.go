package winrs

import (
	"math/rand"
	"testing"
)

func TestPublicAPIQuickPath(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	p := Params{N: 2, IH: 16, IW: 16, FH: 3, FW: 3, IC: 4, OC: 4, PH: 1, PW: 1}
	x := NewTensor(p.XShape())
	dy := NewTensor(p.DYShape())
	x.FillUniform(rng, 0, 1)
	dy.FillUniform(rng, 0, 1)

	dw, err := BackwardFilter(p, x, dy)
	if err != nil {
		t.Fatal(err)
	}
	if dw.Shape != p.DWShape() {
		t.Fatalf("result shape %v, want %v", dw.Shape, p.DWShape())
	}
	if m := MARE(dw, Reference(p, x, dy)); m > 1e-5 {
		t.Errorf("MARE %v", m)
	}
}

func TestPlanReuseAndIntrospection(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	p := Params{N: 2, IH: 20, IW: 22, FH: 3, FW: 3, IC: 8, OC: 8, PH: 1, PW: 1}
	plan, err := NewPlan(p, WithHardware(Hardware{NSM: 128}))
	if err != nil {
		t.Fatal(err)
	}
	if plan.Segments() < 1 || plan.KernelPair() == "" {
		t.Errorf("introspection: Z=%d pair=%q", plan.Segments(), plan.KernelPair())
	}
	if plan.WorkspaceBytes() != int64(plan.Segments()-1)*int64(p.DWShape().Elems())*4 {
		t.Error("workspace accounting mismatch")
	}
	x := NewTensor(p.XShape())
	dy := NewTensor(p.DYShape())
	x.FillUniform(rng, 0, 1)
	dy.FillUniform(rng, 0, 1)
	a := plan.Execute(x, dy)
	b := plan.Execute(x, dy) // reuse must be deterministic
	for i := range a.Data {
		if a.Data[i] != b.Data[i] {
			t.Fatal("plan reuse changed results")
		}
	}
}

func TestForcedSegmentsOption(t *testing.T) {
	p := Params{N: 2, IH: 24, IW: 24, FH: 3, FW: 3, IC: 4, OC: 4, PH: 1, PW: 1}
	plan, err := NewPlan(p, WithSegments(6))
	if err != nil {
		t.Fatal(err)
	}
	// Algorithm 2 approximates the target (the paper's Z ≈ Ẑ): realized
	// count must be multi-segment and within 2x of the request.
	if z := plan.Segments(); z < 3 || z > 12 {
		t.Errorf("forced Z target 6, realized %d", z)
	}
}

func TestFP16PublicPath(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	p := Params{N: 2, IH: 14, IW: 14, FH: 3, FW: 3, IC: 4, OC: 4, PH: 1, PW: 1}
	x := NewTensor(p.XShape())
	dy := NewTensor(p.DYShape())
	x.FillUniform(rng, 0, 1)
	dy.FillUniform(rng, 0, 0.01)
	dw, err := BackwardFilterHalf(p, x.ToHalf(), dy.ToHalf())
	if err != nil {
		t.Fatal(err)
	}
	// Ground truth from the quantized inputs.
	xq := x.ToHalf().ToFloat32()
	dyq := dy.ToHalf().ToFloat32()
	if m := MARE(dw, Reference(p, xq, dyq)); m > 5e-3 {
		t.Errorf("FP16 MARE %v", m)
	}
}

func TestInvalidParamsError(t *testing.T) {
	if _, err := NewPlan(Params{}); err == nil {
		t.Error("expected error for zero params")
	}
	if _, err := BackwardFilter(Params{}, nil, nil); err == nil {
		t.Error("expected error from one-shot API")
	}
}

func TestExtensionsPublicAPI(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	p := Params{N: 1, IH: 12, IW: 12, FH: 3, FW: 3, IC: 3, OC: 3, PH: 1, PW: 1}
	x := NewTensor(p.XShape())
	w := NewTensor(p.DWShape())
	dy := NewTensor(p.DYShape())
	x.FillUniform(rng, 0, 1)
	w.FillUniform(rng, -1, 1)
	dy.FillUniform(rng, 0, 1)

	// Forward + BackwardData round out the layer triad.
	y, err := Forward(p, x, w)
	if err != nil {
		t.Fatal(err)
	}
	if y.Shape != p.DYShape() {
		t.Errorf("forward shape %v", y.Shape)
	}
	dx, err := BackwardData(p, dy, w)
	if err != nil {
		t.Fatal(err)
	}
	if dx.Shape != p.XShape() {
		t.Errorf("backward-data shape %v", dx.Shape)
	}

	// Quantized path through the plan.
	plan, err := NewPlan(p)
	if err != nil {
		t.Fatal(err)
	}
	ref := Reference(p, x, dy)
	for _, q := range []Quantizer{BF16, FP8E4M3, FP8E5M2, Int8(4)} {
		got := plan.ExecuteQuantized(x, dy, q)
		if m := MARE(got, ref); m > 0.3 {
			t.Errorf("%s MARE %v", q.Name, m)
		}
	}

	// Volumetric path.
	p3 := Params3D{N: 1, ID: 4, IH: 8, IW: 8, FD: 3, FH: 3, FW: 3,
		IC: 2, OC: 2, PD: 1, PH: 1, PW: 1}
	x3 := NewTensor5(p3.XShape())
	dy3 := NewTensor5(p3.DYShape())
	x3.FillUniform(rng, 0, 1)
	dy3.FillUniform(rng, 0, 1)
	dw3, err := BackwardFilter3D(p3, x3, dy3)
	if err != nil {
		t.Fatal(err)
	}
	if dw3.Shape != p3.DWShape() {
		t.Errorf("3D gradient shape %v", dw3.Shape)
	}
}

func TestStridedPublicAPI(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	p := StridedParams{N: 1, IH: 14, IW: 14, FH: 3, FW: 3, IC: 2, OC: 2,
		PH: 1, PW: 1, SH: 2, SW: 2}
	x := NewTensor(p.XShape())
	dy := NewTensor(p.DYShape())
	x.FillUniform(rng, 0, 1)
	dy.FillUniform(rng, 0, 1)
	dw, err := BackwardFilterStrided(p, x, dy)
	if err != nil {
		t.Fatal(err)
	}
	if dw.Shape != p.DWShape() {
		t.Errorf("shape %v", dw.Shape)
	}
}

func TestStridedTriadPublicAPI(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	p := StridedParams{N: 1, IH: 12, IW: 12, FH: 3, FW: 3, IC: 2, OC: 2,
		PH: 1, PW: 1, SH: 2, SW: 2}
	x := NewTensor(p.XShape())
	w := NewTensor(p.DWShape())
	dy := NewTensor(p.DYShape())
	x.FillUniform(rng, 0, 1)
	w.FillUniform(rng, -1, 1)
	dy.FillUniform(rng, 0, 1)
	y, err := ForwardStrided(p, x, w)
	if err != nil || y.Shape != p.DYShape() {
		t.Fatalf("forward: %v %v", err, y)
	}
	dx, err := BackwardDataStrided(p, dy, w)
	if err != nil || dx.Shape != p.XShape() {
		t.Fatalf("backward-data: %v", err)
	}
	dw, err := BackwardFilterStrided(p, x, dy)
	if err != nil || dw.Shape != p.DWShape() {
		t.Fatalf("backward-filter: %v", err)
	}
}
