package winrs_test

import (
	"math/rand"
	"testing"

	"winrs"
	"winrs/internal/conv"
	"winrs/internal/fftconv"
	"winrs/internal/gemm"
	"winrs/internal/tensor"
	"winrs/internal/winnf"
)

// TestAllAlgorithmsAgree is the cross-module integration check: every BFC
// implementation in the repository — WinRS (FP32 and forced segment
// counts), the three GEMM baselines, the FFT baseline and the non-fused
// Winograd baseline — must produce the same gradient for the same layer.
func TestAllAlgorithmsAgree(t *testing.T) {
	rng := rand.New(rand.NewSource(1234))
	p := conv.Params{N: 2, IH: 18, IW: 18, FH: 3, FW: 3, IC: 4, OC: 4, PH: 1, PW: 1}
	x64 := tensor.NewFloat64(p.XShape())
	dy64 := tensor.NewFloat64(p.DYShape())
	for i := range x64.Data {
		x64.Data[i] = rng.Float64()
	}
	for i := range dy64.Data {
		dy64.Data[i] = rng.Float64()
	}
	want := conv.BackwardFilterDirect64(p, x64, dy64)
	x, dy := x64.ToFloat32(), dy64.ToFloat32()

	impls := map[string]func() (*tensor.Float32, error){
		"WinRS": func() (*tensor.Float32, error) {
			return winrs.BackwardFilter(p, x, dy)
		},
		"WinRS-Z1": func() (*tensor.Float32, error) {
			return winrs.BackwardFilter(p, x, dy, winrs.WithSegments(1))
		},
		"WinRS-Z8": func() (*tensor.Float32, error) {
			return winrs.BackwardFilter(p, x, dy, winrs.WithSegments(8))
		},
		"Algo0": func() (*tensor.Float32, error) { return gemm.Algo0(p, x, dy), nil },
		"Algo1": func() (*tensor.Float32, error) { return gemm.Algo1(p, x, dy), nil },
		"Algo3": func() (*tensor.Float32, error) { return gemm.Algo3(p, x, dy), nil },
		"FFT":   func() (*tensor.Float32, error) { return fftconv.BackwardFilter(p, x, dy), nil },
		"WinNF": func() (*tensor.Float32, error) { return winnf.BackwardFilter(p, x, dy), nil },
	}
	for name, f := range impls {
		got, err := f()
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if m := tensor.MARE(got, want); m > 1e-5 {
			t.Errorf("%s disagrees with the FP64 reference: MARE %v", name, m)
		}
	}
}

// TestGradientFlowEndToEnd strings the three passes together across module
// boundaries: forward with winrs.Forward, loss gradient, data gradient
// with winrs.BackwardData, filter gradient with winrs.BackwardFilter, and
// verifies both gradients against finite differences of the real loss.
func TestGradientFlowEndToEnd(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	p := conv.Params{N: 1, IH: 7, IW: 7, FH: 3, FW: 3, IC: 2, OC: 2, PH: 1, PW: 1}
	x := winrs.NewTensor(p.XShape())
	w := winrs.NewTensor(p.DWShape())
	target := winrs.NewTensor(p.DYShape())
	x.FillUniform(rng, -1, 1)
	w.FillUniform(rng, -0.5, 0.5)
	target.FillUniform(rng, -1, 1)

	// Loss L = ½‖Y − target‖²; ∂L/∂Y = Y − target.
	loss := func(wt *tensor.Float32) float64 {
		y, err := winrs.Forward(p, x, wt)
		if err != nil {
			t.Fatal(err)
		}
		var s float64
		for i := range y.Data {
			d := float64(y.Data[i] - target.Data[i])
			s += 0.5 * d * d
		}
		return s
	}
	y, err := winrs.Forward(p, x, w)
	if err != nil {
		t.Fatal(err)
	}
	dyT := winrs.NewTensor(p.DYShape())
	for i := range dyT.Data {
		dyT.Data[i] = y.Data[i] - target.Data[i]
	}
	dw, err := winrs.BackwardFilter(p, x, dyT)
	if err != nil {
		t.Fatal(err)
	}
	// Finite-difference check on a few filter weights.
	const eps = 1e-3
	for _, idx := range []int{0, 9, len(w.Data) - 1} {
		wp := winrs.NewTensor(p.DWShape())
		copy(wp.Data, w.Data)
		wp.Data[idx] += eps
		wm := winrs.NewTensor(p.DWShape())
		copy(wm.Data, w.Data)
		wm.Data[idx] -= eps
		numeric := (loss(wp) - loss(wm)) / (2 * eps)
		if d := numeric - float64(dw.Data[idx]); d > 1e-2 || d < -1e-2 {
			t.Errorf("filter grad check idx %d: numeric %v vs winrs %v",
				idx, numeric, dw.Data[idx])
		}
	}
	// Data gradient sanity: one step of gradient descent on X must reduce
	// the loss computed through the WinRS forward pass.
	dx, err := winrs.BackwardData(p, dyT, w)
	if err != nil {
		t.Fatal(err)
	}
	before := loss(w)
	for i := range x.Data {
		x.Data[i] -= 0.05 * dx.Data[i]
	}
	if after := loss(w); after >= before {
		t.Errorf("descending along winrs.BackwardData did not reduce loss: %v -> %v",
			before, after)
	}
}
