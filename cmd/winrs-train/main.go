// Command winrs-train runs the Figure 13 experiment: training a CNN with
// WinRS-computed filter gradients and comparing the loss curve against
// exact (direct-convolution) gradients, in FP32 and in FP16 with loss
// scaling.
//
// The paper trains VGG/ResNet on ImageNet-1K; this substitute trains a
// small two-conv CNN on a synthetic separable classification task — the
// convergence-equivalence claim under test does not depend on scale.
//
// Usage:
//
//	winrs-train -steps 400 -batch 8 -every 40
package main

import (
	"flag"
	"fmt"
	"os"

	"winrs/internal/report"
	"winrs/internal/train"
)

func main() {
	steps := flag.Int("steps", 400, "SGD steps")
	batch := flag.Int("batch", 8, "batch size")
	every := flag.Int("every", 40, "report the loss every N steps")
	lr := flag.Float64("lr", 0.5, "learning rate")
	lossScale := flag.Float64("loss-scale", 128, "FP16 loss scale")
	seed := flag.Int64("seed", 7, "dataset and init seed")
	groups := flag.Int("groups", 1, "channel groups of the second conv layer (must divide 4 and 6; e.g. 2)")
	flag.Parse()

	if *groups < 1 || 4%*groups != 0 || 6%*groups != 0 {
		fmt.Fprintf(os.Stderr, "-groups %d must divide both conv widths (4 and 6)\n", *groups)
		os.Exit(2)
	}

	type run struct {
		name string
		bfc  train.BFC
	}
	runs := []run{
		{"exact (direct FP32)", train.DirectBFC},
		{"WinRS FP32", train.WinRSBFC},
		{fmt.Sprintf("WinRS FP16 + loss scale %g", *lossScale),
			train.WinRSHalfBFC(float32(*lossScale))},
	}

	curves := make([][]float64, len(runs))
	for i, r := range runs {
		// Identical data stream and initialization for every variant.
		ds := train.NewDataset(3, 8, 8, 2, *seed)
		net := train.NewNetGrouped(8, 8, 2, 4, 6, *groups, 3, r.bfc, *seed+91)
		net.LR = float32(*lr)
		losses, err := train.Run(net, ds, *steps, *batch)
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", r.name, err)
			os.Exit(1)
		}
		curves[i] = losses

		evalX, evalY := ds.Batch(128)
		fmt.Printf("%-28s final window loss %.4f, held-out accuracy %.1f%%\n",
			r.name, avgTail(losses, *every), 100*net.Accuracy(evalX, evalY))
	}

	t := report.NewTable("Figure 13 — training loss (window averages)",
		"step", runs[0].name, runs[1].name, runs[2].name)
	for s := *every; s <= *steps; s += *every {
		row := make([]any, 0, 4)
		row = append(row, s)
		for _, c := range curves {
			row = append(row, avgWindow(c, s-*every, s))
		}
		t.AddRow(row...)
	}
	t.Write(os.Stdout)
	fmt.Println("paper result: WinRS-trained models converge like PyTorch" +
		" (accuracy within ±0.6%); the three curves above should overlap")
}

func avgWindow(losses []float64, lo, hi int) float64 {
	if hi > len(losses) {
		hi = len(losses)
	}
	if lo < 0 {
		lo = 0
	}
	var s float64
	for _, v := range losses[lo:hi] {
		s += v
	}
	return s / float64(hi-lo)
}

func avgTail(losses []float64, n int) float64 {
	if n > len(losses) {
		n = len(losses)
	}
	return avgWindow(losses, len(losses)-n, len(losses))
}
