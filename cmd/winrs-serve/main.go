// Command winrs-serve runs the WinRS gradient-compute daemon: an HTTP
// service that executes backward-filter (and forward / backward-data)
// convolutions through a shared plan cache with pooled workspaces and a
// bounded worker pool.
//
// Usage:
//
//	winrs-serve -addr :8780 -workers 8 -queue 64 -deadline 30s -cache 256
//	winrs-serve -algo auto                # cost-model dispatch by default
//	winrs-serve -force-algo winrs         # pin the paper's algorithm
//	winrs-serve -dispatch-measure=false   # prediction-only "auto"
//	winrs-serve -batch-max 8 -batch-linger 500us  # coalesce same-geometry requests
//
// Endpoints: POST /v1/backward_filter, /v1/forward, /v1/backward_data
// (framed request bodies, see internal/serve's wire format), GET /healthz
// and GET /metrics. With -pprof the Go profiling handlers are mounted
// under /debug/pprof/, and -trace enables per-stage execution tracing
// (segment-tile / transform / EWM / reduce histograms on /metrics).
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"syscall"
	"time"

	"winrs/internal/obs"
	"winrs/internal/serve"
)

func main() {
	var (
		addr     = flag.String("addr", ":8780", "listen address")
		workers  = flag.Int("workers", 0, "concurrent compute workers (0 = GOMAXPROCS)")
		queue    = flag.Int("queue", 64, "max queued requests before 429 rejection")
		deadline = flag.Duration("deadline", 30*time.Second, "per-request queue+compute deadline")
		cache    = flag.Int("cache", 256, "plan cache capacity (plans)")
		drain    = flag.Duration("drain", 10*time.Second, "graceful-shutdown budget before in-flight computes are cancelled")
		maxBody  = flag.Int64("maxbody", 1<<30, "max request body bytes")
		enPprof  = flag.Bool("pprof", false, "mount /debug/pprof/ profiling handlers")
		enTrace  = flag.Bool("trace", false, "record per-stage execution timings (exported on /metrics)")
		algo     = flag.String("algo", "", `backward-filter algorithm when the request omits "algo": "" or "winrs" (default), "auto" for cost-model dispatch, or a backend name (gemm, direct, fft, winnf)`)
		forceAlg = flag.String("force-algo", "", "override the algorithm of EVERY backward-filter request, including explicit headers (\"winrs\" disables dispatch entirely)")
		measure  = flag.Bool("dispatch-measure", true, `refine "auto" dispatch with a bounded one-shot measurement of the top-2 predicted backends (once per plan-cache miss)`)
		batchMax = flag.Int("batch-max", 0, "coalesce up to this many same-geometry backward-filter requests into one batched execution (<=1 disables micro-batching)")
		linger   = flag.Duration("batch-linger", 0, "how long the first request of a batch waits for same-geometry company before executing (0 disables micro-batching)")
	)
	flag.Parse()
	obs.EnableTrace(*enTrace)

	srv := serve.NewServer(serve.Config{
		Workers:            *workers,
		QueueDepth:         *queue,
		Deadline:           *deadline,
		CacheCapacity:      *cache,
		MaxBodyBytes:       *maxBody,
		DefaultAlgo:        *algo,
		ForceAlgo:          *forceAlg,
		DispatchMeasureOff: !*measure,
		BatchMax:           *batchMax,
		BatchLinger:        *linger,
	})
	defer srv.Close()

	handler := srv.Handler()
	if *enPprof {
		// Wrap the service mux rather than registering into it: the pprof
		// handlers live on their own mux so the service routes stay closed.
		mux := http.NewServeMux()
		mux.Handle("/", handler)
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		handler = mux
	}

	hs := &http.Server{
		Addr:              *addr,
		Handler:           handler,
		ReadHeaderTimeout: 10 * time.Second,
	}

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintf(os.Stderr, "winrs-serve: %v\n", err)
		os.Exit(1)
	}
	errc := make(chan error, 1)
	go func() { errc <- hs.Serve(ln) }()
	log.Printf("winrs-serve listening on %s (workers=%d queue=%d deadline=%s cache=%d algo=%q force-algo=%q)",
		ln.Addr(), *workers, *queue, *deadline, *cache, *algo, *forceAlg)

	select {
	case <-ctx.Done():
		log.Printf("winrs-serve: shutting down (grace %s)", *drain)
		// Two-phase drain: first let in-flight requests finish on their
		// own within the grace budget; past it, srv.Close cancels their
		// computes cooperatively (they abort at the next chunk claim and
		// answer 503), so the drain is bounded by one chunk's work rather
		// than by the slowest request.
		shutdownCtx, cancel := context.WithTimeout(context.Background(), *drain)
		defer cancel()
		if err := hs.Shutdown(shutdownCtx); err != nil {
			log.Printf("winrs-serve: grace budget expired (%v); cancelling in-flight computes", err)
			srv.Close()
			finalCtx, cancel2 := context.WithTimeout(context.Background(), 5*time.Second)
			defer cancel2()
			if err := hs.Shutdown(finalCtx); err != nil {
				log.Printf("winrs-serve: forced shutdown: %v", err)
				hs.Close()
			}
		}
	case err := <-errc:
		if !errors.Is(err, http.ErrServerClosed) {
			fmt.Fprintf(os.Stderr, "winrs-serve: %v\n", err)
			os.Exit(1)
		}
	}
}
