// Command winrs-serve runs the WinRS gradient-compute daemon: an HTTP
// service that executes backward-filter (and forward / backward-data)
// convolutions through a shared plan cache with pooled workspaces and a
// bounded worker pool.
//
// Usage:
//
//	winrs-serve -addr :8780 -workers 8 -queue 64 -deadline 30s -cache 256
//
// Endpoints: POST /v1/backward_filter, /v1/forward, /v1/backward_data
// (framed request bodies, see internal/serve's wire format), GET /healthz
// and GET /metrics.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"winrs/internal/serve"
)

func main() {
	var (
		addr     = flag.String("addr", ":8780", "listen address")
		workers  = flag.Int("workers", 0, "concurrent compute workers (0 = GOMAXPROCS)")
		queue    = flag.Int("queue", 64, "max queued requests before 429 rejection")
		deadline = flag.Duration("deadline", 30*time.Second, "per-request queue+compute deadline")
		cache    = flag.Int("cache", 256, "plan cache capacity (plans)")
		maxBody  = flag.Int64("maxbody", 1<<30, "max request body bytes")
	)
	flag.Parse()

	srv := serve.NewServer(serve.Config{
		Workers:       *workers,
		QueueDepth:    *queue,
		Deadline:      *deadline,
		CacheCapacity: *cache,
		MaxBodyBytes:  *maxBody,
	})
	defer srv.Close()

	hs := &http.Server{
		Addr:              *addr,
		Handler:           srv.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintf(os.Stderr, "winrs-serve: %v\n", err)
		os.Exit(1)
	}
	errc := make(chan error, 1)
	go func() { errc <- hs.Serve(ln) }()
	log.Printf("winrs-serve listening on %s (workers=%d queue=%d deadline=%s cache=%d)",
		ln.Addr(), *workers, *queue, *deadline, *cache)

	select {
	case <-ctx.Done():
		log.Printf("winrs-serve: shutting down")
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		if err := hs.Shutdown(shutdownCtx); err != nil {
			log.Printf("winrs-serve: shutdown: %v", err)
		}
	case err := <-errc:
		if !errors.Is(err, http.ErrServerClosed) {
			fmt.Fprintf(os.Stderr, "winrs-serve: %v\n", err)
			os.Exit(1)
		}
	}
}
