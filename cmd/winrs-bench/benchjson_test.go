package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

func writeReport(t *testing.T, dir, name string, rep benchReport) string {
	t.Helper()
	rep.SchemaVersion = benchSchemaVersion
	if rep.GoVersion == "" {
		rep.GoVersion = "go1.22"
	}
	if rep.GOMAXPROCS == 0 {
		rep.GOMAXPROCS = 1
	}
	raw, err := json.Marshal(rep)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, name)
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

// The gate flags a hot-path case only when BOTH the raw and the
// calibration-normalized slowdown exceed the threshold: a clock-regime
// swing that only moves the calibration microbenchmark must not
// manufacture a regression, and a real slowdown on a stable machine must
// still fail.
func TestCompareDualCriterion(t *testing.T) {
	dir := t.TempDir()
	base := writeReport(t, dir, "old.json", benchReport{
		CalibrationNs: 100_000,
		Results: []benchResult{
			{Name: "winrs_fp32/case", NsPerOp: 500_000, HotPath: true},
		},
	})

	// Calibration halved (machine "faster"), raw time unchanged: the
	// normalized ratio alone says +100%, the raw ratio says 0%. Not a
	// regression.
	calSwing := writeReport(t, dir, "cal_swing.json", benchReport{
		CalibrationNs: 50_000,
		Results: []benchResult{
			{Name: "winrs_fp32/case", NsPerOp: 500_000, HotPath: true},
		},
	})
	if err := runBenchCompare(base, calSwing, 0.15); err != nil {
		t.Errorf("calibration-only swing failed the gate: %v", err)
	}

	// Raw and normalized both +50%: a genuine regression.
	slow := writeReport(t, dir, "slow.json", benchReport{
		CalibrationNs: 100_000,
		Results: []benchResult{
			{Name: "winrs_fp32/case", NsPerOp: 750_000, HotPath: true},
		},
	})
	if err := runBenchCompare(base, slow, 0.15); err == nil {
		t.Error("true regression passed the gate")
	}

	// Non-hot-path entries are reported but never gated.
	slowCold := writeReport(t, dir, "slow_cold.json", benchReport{
		CalibrationNs: 100_000,
		Results: []benchResult{
			{Name: "winrs_fp32/case", NsPerOp: 500_000, HotPath: true},
			{Name: "direct/case", NsPerOp: 900_000},
		},
	})
	if err := runBenchCompare(base, slowCold, 0.15); err != nil {
		t.Errorf("cold-path slowdown failed the gate: %v", err)
	}
}

// A hot path present in the baseline but missing from the new report fails
// the gate; an alloc creep on a zero-alloc hot path fails it too.
func TestCompareStructuralRegressions(t *testing.T) {
	dir := t.TempDir()
	base := writeReport(t, dir, "old.json", benchReport{
		CalibrationNs: 100_000,
		Results: []benchResult{
			{Name: "winrs_fp32/case", NsPerOp: 500_000, HotPath: true, AllocsPerOp: 0},
		},
	})

	vanished := writeReport(t, dir, "vanished.json", benchReport{
		CalibrationNs: 100_000,
		Results:       []benchResult{},
	})
	if err := runBenchCompare(base, vanished, 0.15); err == nil {
		t.Error("vanished hot path passed the gate")
	}

	allocs := writeReport(t, dir, "allocs.json", benchReport{
		CalibrationNs: 100_000,
		Results: []benchResult{
			{Name: "winrs_fp32/case", NsPerOp: 500_000, HotPath: true, AllocsPerOp: 2},
		},
	})
	if err := runBenchCompare(base, allocs, 0.15); err == nil {
		t.Error("alloc creep on a zero-alloc hot path passed the gate")
	}
}

// Mismatched environments are refused outright rather than mis-normalized.
func TestCompareRefusesEnvMismatch(t *testing.T) {
	dir := t.TempDir()
	base := writeReport(t, dir, "old.json", benchReport{
		CalibrationNs: 100_000, GOMAXPROCS: 1,
		Results: []benchResult{{Name: "winrs_fp32/case", NsPerOp: 500_000, HotPath: true}},
	})
	wide := writeReport(t, dir, "wide.json", benchReport{
		CalibrationNs: 100_000, GOMAXPROCS: 4,
		Results: []benchResult{{Name: "winrs_fp32/case", NsPerOp: 200_000, HotPath: true}},
	})
	if err := runBenchCompare(base, wide, 0.15); err == nil {
		t.Error("GOMAXPROCS mismatch passed the gate")
	}

	otherGo := writeReport(t, dir, "othergo.json", benchReport{
		CalibrationNs: 100_000, GoVersion: "go1.21",
		Results: []benchResult{{Name: "winrs_fp32/case", NsPerOp: 500_000, HotPath: true}},
	})
	if err := runBenchCompare(base, otherGo, 0.15); err == nil {
		t.Error("Go-version mismatch passed the gate")
	}
}

// Saturation rows warn but never gate — except a drained scenario that
// dropped in-flight requests, which is a correctness failure.
func TestCompareSaturationRows(t *testing.T) {
	dir := t.TempDir()
	base := writeReport(t, dir, "old.json", benchReport{
		CalibrationNs: 100_000,
		Saturation: []benchSaturation{
			{Scenario: "inproc_batch", Throughput: 5000, BatchOccupancyMean: 4.0},
		},
	})

	// A 50% throughput and occupancy collapse warns, never fails.
	slower := writeReport(t, dir, "slower.json", benchReport{
		CalibrationNs: 100_000,
		Saturation: []benchSaturation{
			{Scenario: "inproc_batch", Throughput: 2500, BatchOccupancyMean: 2.0},
		},
	})
	if err := runBenchCompare(base, slower, 0.15); err != nil {
		t.Errorf("saturation regression failed the gate (should only warn): %v", err)
	}

	// A drain that dropped in-flight requests is a hard failure.
	dropped := writeReport(t, dir, "dropped.json", benchReport{
		CalibrationNs: 100_000,
		Saturation: []benchSaturation{
			{Scenario: "multiproc_router", Drained: true, FailedInFlight: 3, Throughput: 5000},
		},
	})
	if err := runBenchCompare(base, dropped, 0.15); err == nil {
		t.Error("drain-dropped in-flight requests passed the gate")
	}
}

// mergeSaturation replaces same-scenario rows and keeps foreign ones, so
// -saturate re-runs refresh their rows without clobbering the load test's.
func TestMergeSaturation(t *testing.T) {
	existing := []benchSaturation{
		{Scenario: "inproc_batch", Throughput: 1},
		{Scenario: "multiproc_router", Throughput: 2},
	}
	rows := []benchSaturation{
		{Scenario: "inproc_batch", Throughput: 9},
		{Scenario: "inproc_nobatch", Throughput: 8},
	}
	got := mergeSaturation(existing, rows)
	if len(got) != 3 {
		t.Fatalf("merged %d rows, want 3: %+v", len(got), got)
	}
	byScenario := map[string]float64{}
	for _, r := range got {
		byScenario[r.Scenario] = r.Throughput
	}
	if byScenario["inproc_batch"] != 9 {
		t.Errorf("same-scenario row not replaced: %+v", got)
	}
	if byScenario["multiproc_router"] != 2 {
		t.Errorf("foreign row clobbered: %+v", got)
	}
	if byScenario["inproc_nobatch"] != 8 {
		t.Errorf("new row missing: %+v", got)
	}
}
