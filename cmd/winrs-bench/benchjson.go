package main

import (
	"context"
	"fmt"
	"math/rand"
	"os"
	"runtime"
	"sort"
	"testing"
	"time"

	"winrs/internal/backend"
	"winrs/internal/benchfmt"
	"winrs/internal/conv"
	"winrs/internal/core"
	"winrs/internal/gemm"
	"winrs/internal/obs"
	"winrs/internal/tensor"
)

// The report schema lives in internal/benchfmt so the multi-process load
// test (which appends saturation rows) shares it by construction; the
// aliases keep this package's call sites unchanged.
const benchSchemaVersion = benchfmt.SchemaVersion

type (
	benchReport     = benchfmt.Report
	benchResult     = benchfmt.Result
	benchDispatch   = benchfmt.Dispatch
	benchSaturation = benchfmt.Saturation
)

// benchShapes is the fixed grid the gate tracks: a padded 3×3 production
// shape, a batched 5×5, and a channel-heavy 3×3. Small enough that the
// direct baseline stays in CI budget, large enough that WinRS's fused path
// dominates timer noise.
var benchShapes = []conv.Params{
	{N: 1, IH: 32, IW: 32, FH: 3, FW: 3, IC: 8, OC: 8, PH: 1, PW: 1},
	{N: 2, IH: 16, IW: 16, FH: 5, FW: 5, IC: 4, OC: 4},
	{N: 1, IH: 24, IW: 24, FH: 3, FW: 3, IC: 16, OC: 16, PH: 1, PW: 1},
}

// benchGroupedShapes extends the gate to grouped and depthwise BFC: the
// channel-heavy grid shape split four ways, and the same shape fully
// depthwise (G == IC). Tagged with a _G suffix, so they land as NEW
// (warn-only) against pre-grouping baselines and gate normally once a
// baseline containing them is committed.
var benchGroupedShapes = []conv.Params{
	{N: 1, IH: 24, IW: 24, FH: 3, FW: 3, IC: 16, OC: 16, PH: 1, PW: 1, Groups: 4},
	{N: 1, IH: 24, IW: 24, FH: 3, FW: 3, IC: 16, OC: 16, PH: 1, PW: 1, Groups: 16},
	// Production depthwise-separable trunk shapes (MobileNet-style 56×56
	// stages): per-group work is a single channel, so these rows are the
	// occupancy stress the interleaved group dispatch exists for.
	{N: 1, IH: 56, IW: 56, FH: 3, FW: 3, IC: 64, OC: 64, PH: 1, PW: 1, Groups: 64},
	{N: 1, IH: 56, IW: 56, FH: 3, FW: 3, IC: 128, OC: 128, PH: 1, PW: 1, Groups: 128},
}

func shapeTag(p conv.Params) string {
	tag := fmt.Sprintf("N%d_I%dx%d_F%dx%d_C%dx%d_P%d%d",
		p.N, p.IH, p.IW, p.FH, p.FW, p.IC, p.OC, p.PH, p.PW)
	if p.G() > 1 {
		tag += fmt.Sprintf("_G%d", p.G())
	}
	return tag
}

// measureNs times fn as min-of-batches: reps are sized so one batch runs
// ≳20ms, and the fastest of 3 batches is reported — the standard defense
// against scheduler noise (this host shows multi-second bursts) without a
// benchmarking dependency.
func measureNs(fn func()) float64 {
	fn() // warm pools, page in operands
	reps := 1
	for {
		t0 := time.Now()
		for i := 0; i < reps; i++ {
			fn()
		}
		if d := time.Since(t0); d >= 20*time.Millisecond {
			best := float64(d.Nanoseconds()) / float64(reps)
			for b := 1; b < 5; b++ {
				t0 = time.Now()
				for i := 0; i < reps; i++ {
					fn()
				}
				if v := float64(time.Since(t0).Nanoseconds()) / float64(reps); v < best {
					best = v
				}
			}
			return best
		}
		reps *= 2
	}
}

// calibrationNs measures a fixed FP32 GEMM microbenchmark. Compare mode
// divides ns/op by this so a baseline from a faster or slower machine
// still gates relative regressions.
func calibrationNs() float64 {
	const k, m, n = 64, 48, 48
	a := make([]float32, k*m)
	b := make([]float32, k*n)
	c := make([]float32, m*n)
	rng := rand.New(rand.NewSource(7))
	for i := range a {
		a[i] = rng.Float32()
	}
	for i := range b {
		b[i] = rng.Float32()
	}
	return measureNs(func() { gemm.Gemm(a, b, c, k, m, n) })
}

// benchStageShares runs the plan a few times under tracing and returns the
// per-stage time shares (transform/EWM/reduce as fractions of wall time).
func benchStageShares(run func()) map[string]float64 {
	obs.ResetTrace()
	obs.EnableTrace(true)
	defer obs.EnableTrace(false)
	defer obs.ResetTrace()
	for i := 0; i < 5; i++ {
		run()
	}
	return obs.StageShares()
}

// runBenchJSON measures the grid and writes the report to path ("-" for
// stdout).
func runBenchJSON(path string) error {
	rep := benchReport{
		SchemaVersion: benchSchemaVersion,
		Date:          time.Now().UTC().Format("2006-01-02"),
		GoVersion:     runtime.Version(),
		GOMAXPROCS:    runtime.GOMAXPROCS(0),
		NumCPU:        runtime.NumCPU(),
		CalibrationNs: calibrationNs(),
	}

	for _, p := range benchShapes {
		rng := rand.New(rand.NewSource(11))
		x := tensor.NewFloat32(p.XShape())
		dy := tensor.NewFloat32(p.DYShape())
		x.FillUniform(rng, 0, 1)
		dy.FillUniform(rng, 0, 1)
		tag := shapeTag(p)

		cfg32, err := core.Configure(p)
		if err != nil {
			return fmt.Errorf("configure %s: %w", tag, err)
		}
		ws32 := core.NewWorkspace(cfg32)
		dst := tensor.NewFloat32(p.DWShape())
		run32 := func() { core.ExecuteIn(cfg32, ws32, x, dy, dst) }
		rep.Results = append(rep.Results, benchResult{
			Name: "winrs_fp32/" + tag, Algo: "winrs_fp32", Shape: tag,
			NsPerOp:        measureNs(run32),
			AllocsPerOp:    testing.AllocsPerRun(10, run32),
			WorkspaceBytes: cfg32.WorkspaceBytes(),
			WHatCacheBytes: cfg32.WHatCacheBytes(),
			HotPath:        true,
			StageShares:    benchStageShares(run32),
			EWMKernel:      cfg32.EWMKernel(),
		})

		cfg16, err := core.Configure(p, core.WithFP16())
		if err != nil {
			return fmt.Errorf("configure fp16 %s: %w", tag, err)
		}
		ws16 := core.NewWorkspace(cfg16)
		xh, dyh := x.ToHalf(), dy.ToHalf()
		run16 := func() { core.ExecuteHalfIn(cfg16, ws16, xh, dyh, dst) }
		rep.Results = append(rep.Results, benchResult{
			Name: "winrs_fp16/" + tag, Algo: "winrs_fp16", Shape: tag,
			NsPerOp:        measureNs(run16),
			AllocsPerOp:    testing.AllocsPerRun(10, run16),
			WorkspaceBytes: cfg16.WorkspaceBytes(),
			WHatCacheBytes: cfg16.WHatCacheBytes(),
			HotPath:        true,
			StageShares:    benchStageShares(run16),
			EWMKernel:      cfg16.EWMKernel(),
		})

		rep.Results = append(rep.Results, benchResult{
			Name: "im2col_gemm/" + tag, Algo: "im2col_gemm", Shape: tag,
			NsPerOp:        measureNs(func() { gemm.Algo1(p, x, dy) }),
			AllocsPerOp:    testing.AllocsPerRun(5, func() { gemm.Algo1(p, x, dy) }),
			WorkspaceBytes: gemm.Algo1Workspace(p),
		})
		rep.Results = append(rep.Results, benchResult{
			Name: "direct/" + tag, Algo: "direct", Shape: tag,
			NsPerOp:     measureNs(func() { gemm.Algo0(p, x, dy) }),
			AllocsPerOp: testing.AllocsPerRun(5, func() { gemm.Algo0(p, x, dy) }),
		})

		// The remaining registry backends (FFT, non-fused Winograd) through
		// the unified interface — NEW relative to pre-dispatch baselines, so
		// compare reports them without gating — plus this shape's dispatch
		// audit.
		times := measureBackends(p, x, dy)
		for _, name := range []string{"fft", "winnf"} {
			ns, ok := times[name]
			if !ok {
				continue // winnf skips non-square grid shapes
			}
			b, _ := backend.Default().Get(name)
			rep.Results = append(rep.Results, benchResult{
				Name: name + "/" + tag, Algo: name, Shape: tag,
				NsPerOp:        ns,
				WorkspaceBytes: b.WorkspaceBytes(p, backend.FP32),
			})
		}
		rec, err := dispatchAudit(p, tag, times)
		if err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "bench: dispatch %s -> %s (within-best %.2fx of %s)\n",
			tag, rec.Chosen, rec.WithinBest, rec.BestBackend)
		rep.Dispatch = append(rep.Dispatch, rec)
	}

	// Grouped and depthwise rows: the WinRS path runs the per-group plan
	// over channel-sliced operands — by default interleaved across all
	// groups through a small ring of staging slots — so these rows also pin
	// the paper's headline quantity (workspace shrinkage) into the report.
	// The direct baseline is the grouped float64-oracle's float32 sibling.
	for _, p := range benchGroupedShapes {
		rng := rand.New(rand.NewSource(13))
		x := tensor.NewFloat32(p.XShape())
		dy := tensor.NewFloat32(p.DYShape())
		x.FillUniform(rng, 0, 1)
		dy.FillUniform(rng, 0, 1)
		tag := shapeTag(p)

		cfg32, err := core.Configure(p)
		if err != nil {
			return fmt.Errorf("configure %s: %w", tag, err)
		}
		ws32 := core.NewWorkspace(cfg32)
		dst := tensor.NewFloat32(p.DWShape())
		run32 := func() { core.ExecuteIn(cfg32, ws32, x, dy, dst) }
		rep.Results = append(rep.Results, benchResult{
			Name: "winrs_fp32/" + tag, Algo: "winrs_fp32", Shape: tag,
			NsPerOp:        measureNs(run32),
			AllocsPerOp:    testing.AllocsPerRun(10, run32),
			WorkspaceBytes: cfg32.WorkspaceBytes(),
			WHatCacheBytes: cfg32.WHatCacheBytes(),
			HotPath:        true,
			EWMKernel:      cfg32.EWMKernel(),
		})

		cfg16, err := core.Configure(p, core.WithFP16())
		if err != nil {
			return fmt.Errorf("configure fp16 %s: %w", tag, err)
		}
		ws16 := core.NewWorkspace(cfg16)
		xh, dyh := x.ToHalf(), dy.ToHalf()
		run16 := func() { core.ExecuteHalfIn(cfg16, ws16, xh, dyh, dst) }
		rep.Results = append(rep.Results, benchResult{
			Name: "winrs_fp16/" + tag, Algo: "winrs_fp16", Shape: tag,
			NsPerOp:        measureNs(run16),
			AllocsPerOp:    testing.AllocsPerRun(10, run16),
			WorkspaceBytes: cfg16.WorkspaceBytes(),
			WHatCacheBytes: cfg16.WHatCacheBytes(),
			HotPath:        true,
			EWMKernel:      cfg16.EWMKernel(),
		})

		rep.Results = append(rep.Results, benchResult{
			Name: "direct/" + tag, Algo: "direct", Shape: tag,
			NsPerOp: measureNs(func() { conv.BackwardFilterDirect32(p, x, dy) }),
		})
	}

	// EWM-only microbenchmark rows: per Ω kernel, per block shape, fused
	// vs unfused — kernel-tier regressions stay attributable without a
	// full grid run. Hot-path gated like the grid rows.
	for _, cell := range core.EWMMicroCells() {
		name := "ewm/" + cell.Kernel + "/" + cell.Variant
		rep.Results = append(rep.Results, benchResult{
			Name: name, Algo: "ewm_micro", Shape: cell.Kernel,
			NsPerOp:     measureNs(cell.Run),
			AllocsPerOp: testing.AllocsPerRun(10, cell.Run),
			HotPath:     true,
			EWMKernel:   cell.Variant,
		})
	}

	return rep.Write(path)
}

// measureBackends times every eligible FP32 backend on the shape through
// the unified interface (min-of-batches, like the grid rows), so the
// dispatch audit compares the same quantity the dispatcher optimizes.
func measureBackends(p conv.Params, x, dy *tensor.Float32) map[string]float64 {
	times := map[string]float64{}
	dst := tensor.NewFloat32(p.DWShape())
	for _, b := range backend.Default().Eligible(p, backend.FP32) {
		b := b
		times[b.Name()] = measureNs(func() {
			if err := b.ExecuteCtx(context.Background(), p, x, dy, dst); err != nil {
				panic(err) // geometry was vetted by Supports
			}
		})
	}
	return times
}

// dispatchAudit runs the real dispatcher (with measurement refinement, as
// winrs-serve would on a plan-cache miss) and scores its choice against
// the full per-backend measurement.
func dispatchAudit(p conv.Params, tag string, times map[string]float64) (benchDispatch, error) {
	d, err := backend.Default().Dispatch(p, backend.FP32, backend.Options{Measure: true})
	if err != nil {
		return benchDispatch{}, err
	}
	rec := benchDispatch{Shape: tag, Chosen: d.Backend, Measured: d.Measured,
		BackendNs: times, Candidates: d.Candidates}
	for name, ns := range times {
		if rec.BestNsPerOp == 0 || ns < rec.BestNsPerOp {
			rec.BestBackend, rec.BestNsPerOp = name, ns
		}
	}
	rec.ChosenNsPerOp = times[d.Backend]
	if rec.BestNsPerOp > 0 {
		rec.WithinBest = rec.ChosenNsPerOp / rec.BestNsPerOp
	}
	return rec, nil
}

// pinProcsToBaseline sets runtime GOMAXPROCS to the value recorded in the
// given baseline report, so a fresh -json measurement stays comparable to
// it even when CI runs the build under a different GOMAXPROCS (the
// {1,4} matrix legs both gate against the committed baseline this way).
func pinProcsToBaseline(path string) error {
	rep, err := readBenchReport(path)
	if err != nil {
		return err
	}
	if rep.GOMAXPROCS < 1 {
		return fmt.Errorf("%s: no gomaxprocs recorded; cannot -match-procs against it", path)
	}
	if cur := runtime.GOMAXPROCS(0); cur != rep.GOMAXPROCS {
		fmt.Printf("bench: pinning GOMAXPROCS %d -> %d to match %s\n", cur, rep.GOMAXPROCS, path)
		runtime.GOMAXPROCS(rep.GOMAXPROCS)
	}
	return nil
}

func readBenchReport(path string) (*benchReport, error) {
	return benchfmt.Read(path)
}

// checkEnvMatch refuses to diff reports from mismatched environments:
// GOMAXPROCS changes what the scheduler parallelizes and a Go version
// changes codegen, so a ratio across either is meaningless — calibration
// only cancels clock speed. Fields absent from older schema-1 reports
// (NumCPU) or a CPU-count difference (which calibration does absorb for
// the serial grid) only warn.
func checkEnvMatch(oldRep, newRep *benchReport, oldPath, newPath string) error {
	if oldRep.GOMAXPROCS > 0 && newRep.GOMAXPROCS > 0 && oldRep.GOMAXPROCS != newRep.GOMAXPROCS {
		return fmt.Errorf("bench-gate: environment mismatch: %s ran with GOMAXPROCS=%d, %s with GOMAXPROCS=%d; "+
			"re-measure with -match-procs %s (or set GOMAXPROCS) instead of comparing across widths",
			oldPath, oldRep.GOMAXPROCS, newPath, newRep.GOMAXPROCS, oldPath)
	}
	if oldRep.GoVersion != "" && newRep.GoVersion != "" && oldRep.GoVersion != newRep.GoVersion {
		return fmt.Errorf("bench-gate: environment mismatch: %s built with %s, %s with %s; "+
			"refresh the baseline with the current toolchain before gating",
			oldPath, oldRep.GoVersion, newPath, newRep.GoVersion)
	}
	switch {
	case oldRep.NumCPU == 0 || newRep.NumCPU == 0:
		fmt.Printf("bench-gate: note: CPU count missing from one report (pre-num_cpu baseline); not checked\n")
	case oldRep.NumCPU != newRep.NumCPU:
		fmt.Printf("bench-gate: warning: CPU count differs (%d vs %d); calibration normalizes machine speed, not topology\n",
			oldRep.NumCPU, newRep.NumCPU)
	}
	return nil
}

// runBenchCompare diffs two reports and fails (non-nil error) when any
// hot-path result regressed by more than threshold. A case must regress
// on BOTH the raw ratio and the calibration-normalized ratio: on one
// machine the two agree, and across machines each covers the other's
// blind spot — raw is meaningless when the machine changed (normalized
// catches it), while normalization is poisoned when the machine's clock
// regime shifted between the calibration microbenchmark and the baseline's
// (the tiny cache-resident GEMM can swing ~1.7× with CPU frequency while
// the larger, memory-bound grid workloads barely move; raw catches that).
// A real code regression moves both ratios together. Reports from
// mismatched environments (GOMAXPROCS, Go version) are refused outright.
// New results without a baseline entry are reported but never fail the
// gate; vanished baselines do fail it — a silently dropped hot path is a
// regression too.
func runBenchCompare(oldPath, newPath string, threshold float64) error {
	oldRep, err := readBenchReport(oldPath)
	if err != nil {
		return err
	}
	newRep, err := readBenchReport(newPath)
	if err != nil {
		return err
	}
	if err := checkEnvMatch(oldRep, newRep, oldPath, newPath); err != nil {
		return err
	}
	oldByName := map[string]benchResult{}
	for _, r := range oldRep.Results {
		oldByName[r.Name] = r
	}

	fmt.Printf("bench-gate: %s -> %s (threshold %+.0f%%, calibration %0.1f -> %0.1f ns)\n",
		oldPath, newPath, threshold*100, oldRep.CalibrationNs, newRep.CalibrationNs)
	var regressions []string
	seen := map[string]bool{}
	for _, nr := range newRep.Results {
		seen[nr.Name] = true
		or, ok := oldByName[nr.Name]
		if !ok {
			fmt.Printf("  NEW   %-40s %12.0f ns/op (no baseline, not gated)\n", nr.Name, nr.NsPerOp)
			continue
		}
		// Calibration-normalized ratio: machine speed cancels out. Raw
		// ratio: immune to calibration noise. Gate on the lesser slowdown.
		norm := (nr.NsPerOp / newRep.CalibrationNs) / (or.NsPerOp / oldRep.CalibrationNs)
		raw := nr.NsPerOp / or.NsPerOp
		ratio := norm
		if raw < ratio {
			ratio = raw
		}
		verdict := "ok"
		if nr.HotPath && ratio > 1+threshold {
			verdict = "REGRESSION"
			regressions = append(regressions,
				fmt.Sprintf("%s: %+.1f%% raw, %+.1f%% normalized", nr.Name, (raw-1)*100, (norm-1)*100))
		}
		fmt.Printf("  %-5s %-40s %12.0f -> %.0f ns/op  (%+.1f%% raw, %+.1f%% normalized)\n",
			verdict, nr.Name, or.NsPerOp, nr.NsPerOp, (raw-1)*100, (norm-1)*100)
		if nr.HotPath && or.AllocsPerOp == 0 && nr.AllocsPerOp > 0 {
			regressions = append(regressions,
				fmt.Sprintf("%s: allocs/op 0 -> %g", nr.Name, nr.AllocsPerOp))
		}
	}
	// Dispatch-decision diff (warn-only): a flipped choice between baseline
	// and candidate is reviewer signal — maybe a cost-model retune, maybe a
	// genuinely shifted crossover — but never a gate failure; the ns/op
	// gates above already catch real regressions. Baselines predating the
	// dispatch field simply skip this check.
	oldDisp := map[string]benchDispatch{}
	for _, d := range oldRep.Dispatch {
		oldDisp[d.Shape] = d
	}
	for _, nd := range newRep.Dispatch {
		od, ok := oldDisp[nd.Shape]
		if !ok {
			continue
		}
		if od.Chosen != nd.Chosen {
			fmt.Printf("  DISPATCH FLIP %s: %s -> %s (within-best %.2fx -> %.2fx; warning only)\n",
				nd.Shape, od.Chosen, nd.Chosen, od.WithinBest, nd.WithinBest)
		}
	}

	// Saturation diff (warn-only): serving throughput and batch occupancy
	// depend on scheduler behavior and machine load in ways the calibrated
	// compute grid does not, so a drop here is reviewer signal rather than
	// a gate failure — except a drained scenario that dropped in-flight
	// requests, which is a correctness property and does fail.
	oldSat := map[string]benchSaturation{}
	for _, s := range oldRep.Saturation {
		oldSat[s.Scenario] = s
	}
	for _, ns := range newRep.Saturation {
		if ns.Drained && ns.FailedInFlight > 0 {
			regressions = append(regressions,
				fmt.Sprintf("saturation %s: %d in-flight request(s) failed across a drain", ns.Scenario, ns.FailedInFlight))
		}
		base, ok := oldSat[ns.Scenario]
		if !ok {
			fmt.Printf("  NEW   saturation/%-33s %11.0f req/s (no baseline, not gated)\n",
				ns.Scenario, ns.Throughput)
			continue
		}
		if base.Throughput > 0 && ns.Throughput < base.Throughput*(1-threshold) {
			fmt.Printf("  SATURATION WARN %s: throughput %.0f -> %.0f req/s (%+.1f%%; warning only)\n",
				ns.Scenario, base.Throughput, ns.Throughput, (ns.Throughput/base.Throughput-1)*100)
		}
		if base.BatchOccupancyMean > 0 && ns.BatchOccupancyMean < base.BatchOccupancyMean*(1-threshold) {
			fmt.Printf("  SATURATION WARN %s: batch occupancy %.2f -> %.2f members/batch (warning only)\n",
				ns.Scenario, base.BatchOccupancyMean, ns.BatchOccupancyMean)
		}
	}

	var missing []string
	for name, or := range oldByName {
		if !seen[name] && or.HotPath {
			missing = append(missing, name)
		}
	}
	sort.Strings(missing)
	for _, name := range missing {
		regressions = append(regressions, name+": hot-path result missing from new run")
	}
	if len(regressions) > 0 {
		sort.Strings(regressions)
		return fmt.Errorf("bench-gate: %d regression(s) beyond %.0f%%:\n  %s",
			len(regressions), threshold*100, joinLines(regressions))
	}
	fmt.Println("bench-gate: no hot-path regressions")
	return nil
}

func joinLines(ss []string) string {
	out := ""
	for i, s := range ss {
		if i > 0 {
			out += "\n  "
		}
		out += s
	}
	return out
}
