package main

import (
	"fmt"
	"math/rand"
	"os"

	"winrs/internal/conv"
	"winrs/internal/core"
	"winrs/internal/fftconv"
	"winrs/internal/gemm"
	"winrs/internal/kahan"
	"winrs/internal/report"
	"winrs/internal/tensor"
	"winrs/internal/winnf"
	"winrs/internal/workload"
)

// accCase generates uniform-[0,1) operands (the Table 4 setup) and the
// float64 ground truth.
func accCase(p conv.Params, seed int64, dyScale float64) (*tensor.Float32, *tensor.Float32, *tensor.Float64) {
	rng := rand.New(rand.NewSource(seed))
	x64 := tensor.NewFloat64(p.XShape())
	dy64 := tensor.NewFloat64(p.DYShape())
	for i := range x64.Data {
		x64.Data[i] = rng.Float64()
	}
	for i := range dy64.Data {
		dy64.Data[i] = rng.Float64() * dyScale
	}
	return x64.ToFloat32(), dy64.ToFloat32(), conv.BackwardFilterDirect64(p, x64, dy64)
}

// halfTruth quantizes the operands to binary16 and recomputes the ground
// truth so MARE measures algorithm error, not input quantization.
func halfTruth(p conv.Params, x, dy *tensor.Float32) (*tensor.Half, *tensor.Half, *tensor.Float64) {
	xh, dyh := x.ToHalf(), dy.ToHalf()
	want := conv.BackwardFilterDirect64(p, xh.ToFloat32().ToFloat64(),
		dyh.ToFloat32().ToFloat64())
	return xh, dyh, want
}

type mareRange struct{ vs []float64 }

func (m *mareRange) add(v float64) { m.vs = append(m.vs, v) }
func (m *mareRange) cell() string {
	if len(m.vs) == 0 {
		return "N/A"
	}
	_, min, max := report.SummaryStats(m.vs)
	return fmt.Sprintf("%.2e / %.2e", min, max)
}

// runTable4 measures MARE against FP64 ground truth for every algorithm,
// in FP32 and (where supported) FP16. The layer set selects each WinRS
// kernel family: F_W=2 → Ω4, F_W=3/5 → Ω8, F_W=8/9 → Ω16.
func runTable4() {
	families := []struct {
		name   string
		layers []conv.Params
	}{
		{"Omega4", []conv.Params{
			workload.Layer(2, 16, 2, 4), workload.Layer(4, 12, 2, 4)}},
		{"Omega8", []conv.Params{
			workload.Layer(2, 16, 3, 4), workload.Layer(2, 20, 5, 4)}},
		{"Omega16", []conv.Params{
			workload.Layer(1, 24, 9, 4), workload.Layer(1, 21, 8, 4)}},
	}
	var wrs32 [3]mareRange
	var wrs16 [3]mareRange
	var fft32, algo03, algo1f32, winnf32, winnf16, algo1f16 mareRange

	for fi, fam := range families {
		for i, p := range fam.layers {
			x, dy, want := accCase(p, int64(100*fi+i), 1)
			if got, err := core.BackwardFilter(p, x, dy); err == nil {
				wrs32[fi].add(tensor.MARE(got, want))
			}
			fft32.add(tensor.MARE(fftconv.BackwardFilter(p, x, dy), want))
			algo03.add(tensor.MARE(gemm.Algo0(p, x, dy), want))
			algo03.add(tensor.MARE(gemm.Algo3(p, x, dy), want))
			algo1f32.add(tensor.MARE(gemm.Algo1(p, x, dy), want))
			if winnf.Supported(p) {
				winnf32.add(tensor.MARE(winnf.BackwardFilter(p, x, dy), want))
			}
			// FP16 (paper: ∇Y scaled by 1e-2 to avoid overflow).
			xs, dys, _ := accCase(p, int64(100*fi+i), 0.01)
			xh, dyh, wantH := halfTruth(p, xs, dys)
			if got, err := core.BackwardFilterHalf(p, xh, dyh); err == nil {
				wrs16[fi].add(tensor.MARE(got, wantH))
			}
			if p.FH == 3 && p.FW == 3 {
				winnf16.add(tensor.MARE(winnf.BackwardFilterHalf(p, xh, dyh), wantH))
			}
			algo1f16.add(tensor.MARE(gemm.Algo1Half(p, xh, dyh), wantH))
		}
	}
	t := report.NewTable("Table 4 — MARE vs FP64 (min / max)",
		"algorithm", "FP32", "FP16", "paper FP32", "paper FP16")
	t.AddRow("WinRS Omega4", wrs32[0].cell(), wrs16[0].cell(), "1.2e-7/4.8e-7", "—")
	t.AddRow("WinRS Omega8", wrs32[1].cell(), wrs16[1].cell(), "1.1e-7/8.3e-7", "3.4e-4/2.7e-3")
	t.AddRow("WinRS Omega16", wrs32[2].cell(), wrs16[2].cell(), "9.5e-6/1.3e-5", "8.8e-4/1.1e-2")
	t.AddRow("Cu-FFT", fft32.cell(), "N/A", "7.2e-8/1.5e-7", "—")
	t.AddRow("Cu-Algo0/Algo3", algo03.cell(), "N/A", "7.0e-8/5.9e-7", "—")
	t.AddRow("Cu-WinNF", winnf32.cell(), winnf16.cell(), "4.8e-7/3.7e-6", "1.6e-3/6.5e-1")
	t.AddRow("Cu-Algo1", algo1f32.cell(), algo1f16.cell(), "4.6e-5/1.8e-3", "5.7e-4/8.3e-1")
	t.Write(os.Stdout)
}

// runFig12 measures FP16 MARE against the accumulation length N·O_H·O_W,
// the axis of Figure 12(C): WinRS stays flat through segmentation + Kahan
// while Cu-Algo1/Cu-WinNF degrade.
func runFig12() {
	t := report.NewTable("Figure 12 — FP16 MARE vs accumulation length (3x3 dW)",
		"dY dims", "N*OH*OW", "WinRS", "Cu-WinNF", "Cu-Algo1")
	for _, c := range workload.AccuracySweep(3) {
		p := c.P
		x, dy, _ := accCase(p, 42, 0.01)
		xh, dyh, want := halfTruth(p, x, dy)
		wrsCell := "—"
		if got, err := core.BackwardFilterHalf(p, xh, dyh); err == nil {
			wrsCell = fmt.Sprintf("%.2e", tensor.MARE(got, want))
		}
		nfCell := fmt.Sprintf("%.2e", tensor.MARE(winnf.BackwardFilterHalf(p, xh, dyh), want))
		a1Cell := fmt.Sprintf("%.2e", tensor.MARE(gemm.Algo1Half(p, xh, dyh), want))
		t.AddRow(c.Label, p.N*p.OH()*p.OW(), wrsCell, nfCell, a1Cell)
	}
	t.Write(os.Stdout)
	fmt.Println("paper trend: Cu-WinNF/Cu-Algo1 degrade beyond ~2^18 terms;" +
		" WinRS stays flat via segmentation + FP32 Kahan reduction")
}

// runAblationKahan contrasts the compensated bucket reduction against a
// naive float32 reduction at a large synthetic bucket count.
func runAblationKahan() {
	const z, n = 512, 64
	buckets := make([][]float32, z)
	exact := make([]float64, n)
	rng := rand.New(rand.NewSource(5))
	for zi := range buckets {
		buckets[zi] = make([]float32, n)
		for i := range buckets[zi] {
			v := float32(rng.Float64()) * 16
			if zi == 0 {
				v = 1 << 14
			}
			buckets[zi][i] = v
			exact[i] += float64(v)
		}
	}
	compensated := make([]float32, n)
	naive := make([]float32, n)
	kahan.ReduceBuckets(compensated, buckets)
	kahan.ReduceBucketsNaive(naive, buckets)
	var errK, errN float64
	for i := range exact {
		errK += abs(float64(compensated[i])-exact[i]) / exact[i]
		errN += abs(float64(naive[i])-exact[i]) / exact[i]
	}
	t := report.NewTable("Kahan reduction ablation — 512 buckets, large head term",
		"reduction", "mean rel err")
	t.AddRow("Kahan (WinRS)", errK/float64(n))
	t.AddRow("naive float32", errN/float64(n))
	t.Write(os.Stdout)
}

func abs(v float64) float64 {
	if v < 0 {
		return -v
	}
	return v
}
