// Command winrs-bench regenerates every table and figure of the WinRS
// paper's evaluation (§6) on the repository's substrates: analytic
// workspace accounting (Table 2, Fig 9), the GPU execution-time simulator
// (Table 3, Figs 10–11), and real numeric execution (Table 4, Fig 12),
// plus the motivation figures (Figs 2, 5, 6) and the design ablations.
//
// Usage:
//
//	winrs-bench -exp all
//	winrs-bench -exp table3
//	winrs-bench -list
//	winrs-bench -json BENCH_2026-08-05.json
//	winrs-bench -compare -threshold 0.15 BENCH_old.json BENCH_new.json
//
// Each experiment prints paper-style rows; EXPERIMENTS.md records the
// paper-vs-measured comparison. -json measures the fixed regression grid
// (WinRS FP32/FP16 vs im2col+GEMM and direct) into a schema-versioned
// report, and -compare diffs two reports, exiting 1 when a hot-path
// result regressed beyond -threshold after calibration normalization —
// the CI bench gate.
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
)

type experiment struct {
	name string
	desc string
	run  func()
}

var experiments = []experiment{
	{"fig2", "Block counts of VGG16 conv2: FC/BDC vs BFC starvation", runFig2},
	{"fig5", "Fastest kernel-pair selection examples", runFig5},
	{"fig6", "The 13 WinRS kernel variants", runFig6},
	{"table2", "Algorithm workspace over the paper sweep", runTable2},
	{"fig9", "WinRS workspace and segment count vs dimensions (3x3)", runFig9},
	{"table3", "WinRS speedup over cuDNN algorithms (simulated)", runTable3},
	{"fig10", "FP32 throughput series on RTX 4090 and RTX 3090", runFig10},
	{"fig11", "FP16 throughput series on L40S, RTX 4090, RTX A5000", runFig11},
	{"table4", "MARE accuracy vs FP64 ground truth (real execution)", runTable4},
	{"fig12", "FP16 MARE vs dimensions and accumulation length", runFig12},
	{"fig13", "Training loss: exact vs WinRS gradients (compact run)", runFig13},
	{"ablation1d2d", "Eq. (3)/(4): 1-D vs 2-D acceleration and intensity", runAblation1D2D},
	{"ablationseg", "Adaptive segmentation vs fixed Z (simulated)", runAblationSeg},
	{"ablationkahan", "Kahan vs naive bucket reduction (real execution)", runAblationKahan},
	{"ablationclip", "Height-axis clipping saving (Fig 7)", runAblationClip},
	{"relatedwork", "WinRS vs Im2col-Winograd (fixed distribution)", runRelatedWork},
	{"vgg16", "Per-layer VGG16 BFC comparison (simulated)", runVGG16},
	{"extensions", "The §8 roadmap: BF16/FP8/INT8, FC/BDC, 3-D BFC", runExtensions},
}

func main() {
	exp := flag.String("exp", "all", "experiment to run (or 'all')")
	list := flag.Bool("list", false, "list experiments")
	jsonOut := flag.String("json", "", "write the regression-grid benchmark report to this file ('-' for stdout)")
	saturate := flag.String("saturate", "", "measure in-process serving saturation (batched vs unbatched) and merge the rows into this bench report ('-' for stdout)")
	compare := flag.Bool("compare", false, "compare two benchmark reports: -compare OLD.json NEW.json")
	threshold := flag.Float64("threshold", 0.15, "relative regression tolerance for -compare")
	matchProcs := flag.String("match-procs", "", "pin GOMAXPROCS to the value recorded in this baseline report before measuring (-json)")
	flag.Parse()

	if *matchProcs != "" {
		if err := pinProcsToBaseline(*matchProcs); err != nil {
			fmt.Fprintf(os.Stderr, "winrs-bench: %v\n", err)
			os.Exit(1)
		}
	}

	if *compare {
		if flag.NArg() != 2 {
			fmt.Fprintln(os.Stderr, "usage: winrs-bench -compare [-threshold 0.15] OLD.json NEW.json")
			os.Exit(2)
		}
		if err := runBenchCompare(flag.Arg(0), flag.Arg(1), *threshold); err != nil {
			fmt.Fprintf(os.Stderr, "%v\n", err)
			os.Exit(1)
		}
		return
	}
	if *jsonOut != "" {
		if err := runBenchJSON(*jsonOut); err != nil {
			fmt.Fprintf(os.Stderr, "winrs-bench: %v\n", err)
			os.Exit(1)
		}
		return
	}
	if *saturate != "" {
		if err := runSaturate(*saturate); err != nil {
			fmt.Fprintf(os.Stderr, "winrs-bench: %v\n", err)
			os.Exit(1)
		}
		return
	}

	if *list {
		for _, e := range experiments {
			fmt.Printf("%-14s %s\n", e.name, e.desc)
		}
		return
	}
	names := map[string]experiment{}
	for _, e := range experiments {
		names[e.name] = e
	}
	if *exp == "all" {
		for _, e := range experiments {
			fmt.Printf("\n######## %s — %s\n", e.name, e.desc)
			e.run()
		}
		return
	}
	e, ok := names[*exp]
	if !ok {
		var known []string
		for n := range names {
			known = append(known, n)
		}
		sort.Strings(known)
		fmt.Fprintf(os.Stderr, "unknown experiment %q; known: %v\n", *exp, known)
		os.Exit(2)
	}
	e.run()
}
