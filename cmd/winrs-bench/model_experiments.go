package main

import (
	"fmt"
	"os"

	"winrs/internal/conv"
	"winrs/internal/core"
	"winrs/internal/gpusim"
	"winrs/internal/perfmodel"
	"winrs/internal/report"
	"winrs/internal/winograd"
	"winrs/internal/workload"
)

func vggConv2() conv.Params {
	return conv.Params{N: 32, IH: 224, IW: 224, FH: 3, FW: 3, IC: 64, OC: 64,
		PH: 1, PW: 1}
}

// runFig2 reproduces the motivation figure: the F(2×2,3×3) blocking scheme
// floods FC/BDC with blocks but starves BFC.
func runFig2() {
	p := vggConv2()
	t := report.NewTable("Figure 2 — block counts, VGG16 conv2 (N=32, 64x32x8 cache block)",
		"pass", "output size", "blocks")
	fcOut := fmt.Sprintf("%dx%dx%d", p.OH(), p.OW(), p.OC)
	k, _ := winograd.Lookup(2, 3)
	bfc := core.BlocksPerSegment(k, p, false)
	fc := p.N * ceil(p.OH(), 2) * ceil(p.OW(), 2) / 32 * ceil(p.OC, 64)
	t.AddRow("FC", fcOut, fc)
	t.AddRow("BDC", fmt.Sprintf("%dx%dx%d", p.IH, p.IW, p.IC), fc)
	t.AddRow("BFC", fmt.Sprintf("%dx%dx%d", p.FH, p.FW, p.IC), bfc)
	t.Write(os.Stdout)
	fmt.Printf("paper: 12544 blocks for FC/BDC, 8 for BFC — a >1000x parallelism gap\n")
}

// runFig5 prints the fastest kernel pairs the adaptation selects for the
// paper's example geometries.
func runFig5() {
	t := report.NewTable("Figure 5 — fastest kernel pairs", "F_W", "O_W", "pair",
		"fast span", "residual span")
	for _, c := range []struct{ fw, ow int }{
		{3, 16}, {3, 18}, {2, 14}, {4, 20}, {5, 25}, {6, 22}, {7, 28}, {8, 24}, {9, 27},
	} {
		p := conv.Params{N: 1, IH: 8, IW: c.fw + c.ow - 1, FH: 3, FW: c.fw, IC: 8, OC: 8}
		pr, err := core.SelectPair(p, false)
		if err != nil {
			t.AddRow(c.fw, c.ow, "—", err.Error(), "")
			continue
		}
		fw, rw := pr.Coverage()
		t.AddRow(c.fw, c.ow, pr.String(), fw, rw)
	}
	t.Write(os.Stdout)
}

// runFig6 lists the kernel registry with its acceleration factors and
// computation intensities.
func runFig6() {
	t := report.NewTable("Figure 6 — the 13 WinRS kernels", "kernel", "alpha",
		"accel n*r/alpha", "FP32 block", "FP16", "rho_1D (FP32)")
	for _, k := range winograd.Kernels {
		bn, bm := k.CacheBlock(false)
		fp := ""
		if k.FP16 {
			fp = "yes"
		}
		t.AddRow(k.String(), k.Alpha, k.Accel(), fmt.Sprintf("%dx%d", bn, bm),
			fp, k.Intensity(false))
	}
	t.Write(os.Stdout)
}

// runTable2 sweeps the paper's workload population and prints each
// algorithm's workspace as multiples of the data size.
func runTable2() {
	d := gpusim.RTX4090
	var winrs, algo1, algo3, fft, winnfWS []float64
	for _, c := range workload.PaperSweep() {
		data := float64(c.P.DataBytes32())
		w, _, err := perfmodel.WinRS(c.P, d, false)
		if err != nil {
			continue
		}
		winrs = append(winrs, float64(w.WorkspaceBytes)/data)
		algo1 = append(algo1, float64(perfmodel.Algo1Workspace(c.P, false))/data)
		algo3 = append(algo3, float64(perfmodel.Algo3Workspace(c.P))/data)
		fft = append(fft, float64(perfmodel.FFT(c.P).WorkspaceBytes)/data)
		if wp, ok := perfmodel.WinNF(c.P, false); ok {
			winnfWS = append(winnfWS, float64(wp.WorkspaceBytes)/data)
		}
	}
	t := report.NewTable("Table 2 — workspace as a multiple of data size",
		"algorithm", "avg", "min", "max", "paper avg")
	add := func(name string, vs []float64, paper string) {
		avg, min, max := report.SummaryStats(vs)
		t.AddRow(name, avg, min, max, paper)
	}
	add("WinRS", winrs, "0.18x")
	add("Cu-Algo1", algo1, "1.06x")
	add("Cu-Algo3", algo3, "0.10x")
	add("Cu-FFT", fft, "9.09x")
	add("Cu-WinNF", winnfWS, "2.67x")
	t.Write(os.Stdout)
}

// runFig9 reproduces the workspace/segment-count trend against ∇Y
// dimensions for 3×3 filter gradients.
func runFig9() {
	d := gpusim.RTX4090
	t := report.NewTable("Figure 9 — WinRS workspace for 3x3 dW on RTX 4090",
		"dY dims (N:OH:OW:OC)", "segments Z", "workspace MB", "dW MB")
	// Like the paper's dimension choice, O_W is kept a multiple of the fast
	// kernel's r (here 6) so residual columns do not force extra segments.
	hw, ch := 224, 64
	for hw >= 14 && ch <= 1024 {
		ow := hw / 6 * 6
		p := conv.Params{N: 32, IH: hw, IW: ow, FH: 3, FW: 3, IC: ch, OC: ch,
			PH: 1, PW: 1}
		plan, cfg, err := perfmodel.WinRS(p, d, false)
		if err == nil {
			t.AddRow(workload.DimLabel(p), cfg.Z(),
				float64(plan.WorkspaceBytes)/(1<<20),
				float64(p.DWShape().Elems())*4/(1<<20))
		}
		hw /= 2
		ch *= 2
	}
	t.Write(os.Stdout)
	fmt.Println("paper trend: many segments/small workspace at 64-128 channels," +
		" single segment and 0 MB at 1024 channels")
}

// runTable3 prints WinRS speedups over the cuDNN baselines per filter size
// in the paper's 'average: min-max' format.
func runTable3() {
	type cell struct{ vs []float64 }
	fmtCell := func(c cell) string {
		if len(c.vs) == 0 {
			return "N/A"
		}
		avg, min, max := report.SummaryStats(c.vs)
		return fmt.Sprintf("%.2f: %.2f-%.2f", avg, min, max)
	}
	fp32 := []gpusim.Device{gpusim.RTX4090, gpusim.RTX3090}
	for _, d := range fp32 {
		t := report.NewTable(fmt.Sprintf("Table 3 — FP32 speedup on %s", d.Name),
			"FHxFW", "vs Cu-GEMM", "vs Cu-FFT", "vs Cu-WinNF")
		for f := 2; f <= 9; f++ {
			var gemm, fft, winnf cell
			for _, c := range workload.PaperSweep() {
				if c.P.FH != f {
					continue
				}
				w, _, err := perfmodel.WinRS(c.P, d, false)
				if err != nil {
					continue
				}
				gemm.vs = append(gemm.vs, perfmodel.Speedup(d, w, perfmodel.CuGEMM(c.P, d, false)))
				fft.vs = append(fft.vs, perfmodel.Speedup(d, w, perfmodel.FFT(c.P)))
				if wp, ok := perfmodel.WinNF(c.P, false); ok {
					winnf.vs = append(winnf.vs, perfmodel.Speedup(d, w, wp))
				}
			}
			t.AddRow(fmt.Sprintf("%dx%d", f, f), fmtCell(gemm), fmtCell(fft), fmtCell(winnf))
		}
		t.Write(os.Stdout)
	}
	for _, d := range []gpusim.Device{gpusim.RTX4090, gpusim.L40S, gpusim.RTXA5000} {
		t := report.NewTable(fmt.Sprintf("Table 3 — FP16 speedup on %s", d.Name),
			"FHxFW", "vs Cu-GEMM", "vs Cu-WinNF")
		for _, f := range workload.FP16Filters {
			var gemm, winnf cell
			for _, c := range workload.PaperSweep() {
				if c.P.FH != f {
					continue
				}
				w, _, err := perfmodel.WinRS(c.P, d, true)
				if err != nil {
					continue
				}
				gemm.vs = append(gemm.vs, perfmodel.Speedup(d, w, perfmodel.CuGEMM(c.P, d, true)))
				if wp, ok := perfmodel.WinNF(c.P, true); ok {
					winnf.vs = append(winnf.vs, perfmodel.Speedup(d, w, wp))
				}
			}
			t.AddRow(fmt.Sprintf("%dx%d", f, f), fmtCell(gemm), fmtCell(winnf))
		}
		t.Write(os.Stdout)
	}
}

func throughputSeries(d gpusim.Device, f int, fp16 bool) {
	t := report.NewTable(
		fmt.Sprintf("%s, %dx%d dW — throughput in direct-equivalent TFLOPS",
			d.Name, f, f),
		"dY dims", "WinRS", "Cu-GEMM", "Cu-FFT", "Cu-WinNF")
	for _, c := range workload.ConstantComplexitySeries(32, 224, 64, f) {
		w, _, err := perfmodel.WinRS(c.P, d, fp16)
		if err != nil {
			continue
		}
		direct := c.P.FLOPs()
		tput := func(p gpusim.Plan) string {
			return fmt.Sprintf("%.1f", gpusim.ThroughputTFLOPS(direct, d.Time(p)))
		}
		fftCell, winnfCell := "N/A", "N/A"
		if !fp16 {
			fftCell = tput(perfmodel.FFT(c.P))
		}
		if wp, ok := perfmodel.WinNF(c.P, fp16); ok {
			winnfCell = tput(wp)
		}
		t.AddRow(c.Label, tput(w), tput(perfmodel.CuGEMM(c.P, d, fp16)), fftCell, winnfCell)
	}
	t.Write(os.Stdout)
}

// runFig10 prints the FP32 throughput series of Figure 10.
func runFig10() {
	for _, d := range []gpusim.Device{gpusim.RTX4090, gpusim.RTX3090} {
		for _, f := range []int{2, 3, 5, 7, 9} {
			throughputSeries(d, f, false)
		}
	}
}

// runFig11 prints the FP16 throughput series of Figure 11.
func runFig11() {
	for _, d := range []gpusim.Device{gpusim.L40S, gpusim.RTX4090, gpusim.RTXA5000} {
		for _, f := range workload.FP16Filters {
			throughputSeries(d, f, true)
		}
	}
}

// runAblation1D2D prints the eq. (3)/(4) comparison behind the reduce-split
// design choice.
func runAblation1D2D() {
	t := report.NewTable("Eq. (3)/(4) — 1-D vs nested 2-D Winograd at equal space",
		"alpha = a0*a1", "A1D max", "A2D max", "rho1D (64x32,r=3)", "rho2D")
	for _, f := range [][2]int{{2, 2}, {2, 4}, {4, 4}, {2, 8}} {
		alpha := f[0] * f[1]
		t.AddRow(fmt.Sprintf("%d = %dx%d", alpha, f[0], f[1]),
			winograd.Accel1DMax(alpha), winograd.Accel2DMax(f[0], f[1]),
			winograd.Intensity1D(64, 32, 3, alpha),
			winograd.Intensity2D(64, 32, 3, 3, f[0], f[1]))
	}
	t.Write(os.Stdout)
}

// runAblationSeg compares the adaptive segment count against fixed Z values
// on the simulator — the paper's small-output parallelism argument.
func runAblationSeg() {
	d := gpusim.RTX4090
	p := vggConv2()
	t := report.NewTable("Segmentation ablation — VGG16 conv2 on RTX 4090 (simulated)",
		"configuration", "Z", "time ms", "workspace MB")
	adaptive, cfg, err := perfmodel.WinRS(p, d, false)
	if err != nil {
		fmt.Println(err)
		return
	}
	t.AddRow("adaptive (Algorithm 1)", cfg.Z(), d.Time(adaptive)*1e3,
		float64(adaptive.WorkspaceBytes)/(1<<20))
	for _, z := range []int{1, 4, 16, 128} {
		plan, c2, err := perfmodel.WinRSForced(p, d, false, z)
		if err != nil {
			continue
		}
		t.AddRow(fmt.Sprintf("forced Z=%d", z), c2.Z(), d.Time(plan)*1e3,
			float64(plan.WorkspaceBytes)/(1<<20))
	}
	t.Write(os.Stdout)
}

// runRelatedWork compares WinRS against the authors' prior Im2col-Winograd
// (fixed workload distribution, single zero-padded kernel) across the
// channel ladder — isolating what adaptive segmentation and hybrid units
// buy (§7 Related Works).
func runRelatedWork() {
	d := gpusim.RTX4090
	t := report.NewTable("Related work — WinRS vs Im2col-Winograd (fixed distribution), RTX 4090 FP32",
		"dY dims", "WinRS ms", "Im2col-Winograd ms", "speedup")
	for _, c := range workload.ConstantComplexitySeries(32, 224, 64, 3) {
		w, _, err := perfmodel.WinRS(c.P, d, false)
		if err != nil {
			continue
		}
		i2c, err := perfmodel.Im2colWinograd(c.P, d)
		if err != nil {
			continue
		}
		t.AddRow(c.Label, d.Time(w)*1e3, d.Time(i2c)*1e3, perfmodel.Speedup(d, w, i2c))
	}
	t.Write(os.Stdout)
	fmt.Println("paper: Im2col-Winograd's fixed distribution 'limits its applicability" +
		" to BFC'; the gap closes once one segment saturates the device")
}

// runAblationClip reports the height-axis clipping saving of Figure 7.
func runAblationClip() {
	t := report.NewTable("Figure 7 — height-axis clipping saving pH(pH+1)/(FH*OH)",
		"layer", "pH", "saving %")
	for _, c := range []struct {
		label string
		p     conv.Params
	}{
		{"6x6 input, 3x3 filter, pad 1", conv.Params{N: 1, IH: 6, IW: 6, FH: 3, FW: 3, IC: 1, OC: 1, PH: 1, PW: 1}},
		{"VGG conv2 (224, 3x3, pad 1)", vggConv2()},
		{"14x14, 7x7 filter, pad 3", conv.Params{N: 1, IH: 14, IW: 14, FH: 7, FW: 7, IC: 1, OC: 1, PH: 3, PW: 3}},
	} {
		p := c.p
		saving := float64(p.PH*(p.PH+1)) / float64(p.FH*p.OH()) * 100
		t.AddRow(c.label, p.PH, saving)
	}
	t.Write(os.Stdout)
	fmt.Println("paper example: 12.5% reduction for the 6x6/3x3/pad-1 case")
}

// runVGG16 compares the algorithms layer by layer on the paper's motivating
// network.
func runVGG16() {
	d := gpusim.RTX4090
	t := report.NewTable("VGG16 BFC, batch 32, RTX 4090 FP32 (simulated)",
		"layer", "WinRS ms", "Cu-GEMM ms", "Cu-FFT ms", "Cu-WinNF ms", "WinRS ws MB")
	var totW, totG float64
	for _, c := range workload.VGG16Layers(32) {
		w, _, err := perfmodel.WinRS(c.P, d, false)
		if err != nil {
			continue
		}
		g := perfmodel.CuGEMM(c.P, d, false)
		f := perfmodel.FFT(c.P)
		nf := "N/A"
		if wp, ok := perfmodel.WinNF(c.P, false); ok {
			nf = fmt.Sprintf("%.2f", d.Time(wp)*1e3)
		}
		totW += d.Time(w)
		totG += d.Time(g)
		t.AddRow(c.Label, d.Time(w)*1e3, d.Time(g)*1e3, d.Time(f)*1e3, nf,
			float64(w.WorkspaceBytes)/(1<<20))
	}
	t.Write(os.Stdout)
	fmt.Printf("whole-network BFC: WinRS %.2f ms vs Cu-GEMM %.2f ms (%.2fx)\n",
		totW*1e3, totG*1e3, totG/totW)
}

func ceil(a, b int) int { return (a + b - 1) / b }
