package main

import (
	"fmt"
	"math/rand"
	"os"

	"winrs/internal/conv"
	"winrs/internal/core"
	"winrs/internal/report"
	"winrs/internal/tensor"
	"winrs/internal/workload"
)

// runExtensions exercises the paper's §8 roadmap implemented in this
// repository: BF16/FP8/INT8 storage formats, the forward and backward-data
// passes, and the N-D (3-D) BFC extension.
func runExtensions() {
	rng := rand.New(rand.NewSource(71))

	// Low-precision format accuracy on a shared layer.
	p := workload.Layer(2, 16, 3, 4)
	x64 := tensor.NewFloat64(p.XShape())
	dy64 := tensor.NewFloat64(p.DYShape())
	for i := range x64.Data {
		x64.Data[i] = rng.Float64()
	}
	for i := range dy64.Data {
		dy64.Data[i] = rng.Float64()
	}
	want := conv.BackwardFilterDirect64(p, x64, dy64)
	x, dy := x64.ToFloat32(), dy64.ToFloat32()
	cfg, err := core.Configure(p)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return
	}
	t := report.NewTable("Extension — storage formats (paper §8: 'ported to BF16, FP8, INT8')",
		"format", "MARE vs FP64", "mantissa bits", "dynamic range")
	t.AddRow("FP32", tensor.MARE(core.Execute(cfg, x, dy), want), 23, "1e±38")
	mq := func(q core.Quantizer) float64 {
		return tensor.MARE(core.ExecuteQuantized(cfg, x, dy, q), want)
	}
	t.AddRow("BF16", mq(core.QuantBF16), 7, "1e±38")
	t.AddRow("FP8-E4M3", mq(core.QuantFP8E4M3), 3, "±448")
	t.AddRow("FP8-E5M2", mq(core.QuantFP8E5M2), 2, "±57344")
	t.AddRow("INT8 (absmax 4)", mq(core.QuantInt8(4)), "-", "±4 grid")
	t.Write(os.Stdout)

	// Forward / backward-data via the WinRS kernels.
	w64 := tensor.NewFloat64(p.DWShape())
	for i := range w64.Data {
		w64.Data[i] = rng.Float64()*2 - 1
	}
	w := w64.ToFloat32()
	t2 := report.NewTable("Extension — full layer triad on WinRS kernels ('supports FC and BDC')",
		"pass", "MARE / max diff vs reference")
	if y, err := core.Forward(p, x, w); err == nil {
		t2.AddRow("FC (fused 1-D Winograd)", tensor.MARE(y, conv.Forward64(p, x64, w64)))
	}
	t2.AddRow("BFC (reduce-split)", tensor.MARE(core.Execute(cfg, x, dy), want))
	if dx, err := core.BackwardData(p, dy, w); err == nil {
		t2.AddRow("BDC (flipped-filter FC)",
			tensor.MaxAbsDiff(dx, conv.BackwardData32(p, dy, w)))
	}
	t2.Write(os.Stdout)

	// 3-D BFC.
	p3 := conv.Params3D{N: 1, ID: 6, IH: 12, IW: 12, FD: 3, FH: 3, FW: 3,
		IC: 3, OC: 3, PD: 1, PH: 1, PW: 1}
	x3 := tensor.NewFloat645(p3.XShape())
	dy3 := tensor.NewFloat645(p3.DYShape())
	for i := range x3.Data {
		x3.Data[i] = rng.Float64()
	}
	for i := range dy3.Data {
		dy3.Data[i] = rng.Float64()
	}
	want3 := conv.BackwardFilter3DDirect64(p3, x3, dy3)
	cfg3, err := core.Configure3D(p3)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return
	}
	got3 := core.Execute3D(cfg3, x3.ToFloat325(), dy3.ToFloat325())
	t3 := report.NewTable("Extension — N-D BFC (paper §3 Level 2, k = 3)",
		"layer", "pair", "Z", "MARE vs FP64")
	t3.AddRow(fmt.Sprintf("3-D %v filters over %v", p3.DWShape(), p3.XShape()),
		cfg3.Pair.String(), cfg3.Z(), tensor.MARE5(got3, want3))
	t3.Write(os.Stdout)

	// Strided BFC via phase decimation.
	ps := conv.StridedParams{N: 2, IH: 28, IW: 28, FH: 3, FW: 3, IC: 4, OC: 8,
		PH: 1, PW: 1, SH: 2, SW: 2}
	xs64 := tensor.NewFloat64(ps.XShape())
	dys64 := tensor.NewFloat64(ps.DYShape())
	for i := range xs64.Data {
		xs64.Data[i] = rng.Float64()
	}
	for i := range dys64.Data {
		dys64.Data[i] = rng.Float64()
	}
	wantS := conv.BackwardFilterStridedDirect64(ps, xs64, dys64)
	gotS, err := core.BackwardFilterStrided(ps, xs64.ToFloat32(), dys64.ToFloat32())
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return
	}
	t4 := report.NewTable("Extension — strided BFC by phase decimation",
		"layer", "phases", "MARE vs FP64")
	t4.AddRow("3x3 stride 2 (ResNet downsampling)", ps.StrideH()*ps.StrideW(),
		tensor.MARE(gotS, wantS))
	t4.Write(os.Stdout)
}
