package main

import (
	"fmt"
	"os"

	"winrs/internal/report"
	"winrs/internal/train"
)

// runFig13 runs a compact version of the training-loss experiment (the
// full-length run with flags lives in cmd/winrs-train): exact vs WinRS
// FP32 vs WinRS FP16+loss-scaling gradients on identical data streams.
func runFig13() {
	const steps, batch, window = 240, 8, 60
	runs := []struct {
		name string
		bfc  train.BFC
	}{
		{"exact FP32", train.DirectBFC},
		{"WinRS FP32", train.WinRSBFC},
		{"WinRS FP16+LS", train.WinRSHalfBFC(128)},
	}
	curves := make([][]float64, len(runs))
	for i, r := range runs {
		ds := train.NewDataset(3, 8, 8, 2, 7)
		net := train.NewNet(8, 8, 2, 4, 6, 3, r.bfc, 99)
		net.LR = 0.5
		losses, err := train.Run(net, ds, steps, batch)
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", r.name, err)
			return
		}
		curves[i] = losses
	}
	t := report.NewTable("Figure 13 — training loss, window averages",
		"steps", runs[0].name, runs[1].name, runs[2].name)
	for s := window; s <= steps; s += window {
		avg := func(c []float64) float64 {
			var sum float64
			for _, v := range c[s-window : s] {
				sum += v
			}
			return sum / window
		}
		t.AddRow(s, avg(curves[0]), avg(curves[1]), avg(curves[2]))
	}
	t.Write(os.Stdout)
	fmt.Println("paper: WinRS training matches PyTorch within ±0.6% accuracy;" +
		" the columns above should coincide")
}
