package main

// -saturate drives an in-process serving stack to saturation, with and
// without micro-batching, and records the scenarios as saturation rows in
// a bench report. The load is deliberately plan-cache-friendly (a handful
// of geometries, many clients) — the regime micro-batching exists for —
// so the batched scenario's occupancy is a meaningful health signal:
// compare mode warns when it collapses.

import (
	"bytes"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"os"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"winrs/internal/benchfmt"
	"winrs/internal/conv"
	"winrs/internal/serve"
	"winrs/internal/tensor"
)

// saturateShapes is the load mix: three small geometries so the compute
// stays in CI budget while the plan cache sees repeated keys.
var saturateShapes = []conv.Params{
	{N: 1, IH: 16, IW: 16, FH: 3, FW: 3, IC: 4, OC: 4, PH: 1, PW: 1},
	{N: 1, IH: 12, IW: 12, FH: 3, FW: 3, IC: 2, OC: 3, PH: 1, PW: 1},
	{N: 2, IH: 10, IW: 10, FH: 3, FW: 3, IC: 2, OC: 2, PH: 1, PW: 1},
}

// saturateBodies frames one request body per load-mix shape.
func saturateBodies() ([][]byte, error) {
	bodies := make([][]byte, len(saturateShapes))
	for i, p := range saturateShapes {
		rng := rand.New(rand.NewSource(int64(31 + i)))
		x := tensor.NewFloat32(p.XShape())
		dy := tensor.NewFloat32(p.DYShape())
		x.FillUniform(rng, 0, 1)
		dy.FillUniform(rng, 0, 1)
		body, err := serve.EncodeRequest(
			serve.RequestHeader{Op: "backward_filter", Params: p},
			serve.AppendF32(nil, x.Data), serve.AppendF32(nil, dy.Data))
		if err != nil {
			return nil, err
		}
		bodies[i] = body
	}
	return bodies, nil
}

// driveSaturation fires requests concurrent clients × perClient requests
// at the URL, round-robining the load mix, and returns the filled row.
func driveSaturation(scenario, url string, bodies [][]byte, clients, perClient int) benchfmt.Saturation {
	var failed atomic.Int64
	latencies := make([]time.Duration, clients*perClient)
	var wg sync.WaitGroup
	t0 := time.Now()
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for i := 0; i < perClient; i++ {
				body := bodies[(c+i)%len(bodies)]
				r0 := time.Now()
				resp, err := http.Post(url+"/v1/backward_filter",
					"application/octet-stream", bytes.NewReader(body))
				if err != nil {
					failed.Add(1)
					continue
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				latencies[c*perClient+i] = time.Since(r0)
				if resp.StatusCode != http.StatusOK {
					failed.Add(1)
				}
			}
		}(c)
	}
	wg.Wait()
	dur := time.Since(t0)

	sort.Slice(latencies, func(i, j int) bool { return latencies[i] < latencies[j] })
	pct := func(p float64) float64 {
		i := int(p * float64(len(latencies)-1))
		return float64(latencies[i].Microseconds()) / 1e3
	}
	total := clients * perClient
	return benchfmt.Saturation{
		Scenario:    scenario,
		Nodes:       1,
		Clients:     clients,
		Requests:    total,
		Failed:      int(failed.Load()),
		DurationSec: dur.Seconds(),
		Throughput:  float64(total) / dur.Seconds(),
		P50Ms:       pct(0.50),
		P99Ms:       pct(0.99),
	}
}

// runSaturate measures the in-process scenarios and merges the rows into
// the report at path (keeping any existing results; creating the file
// with a fresh calibration when absent).
func runSaturate(path string) error {
	bodies, err := saturateBodies()
	if err != nil {
		return err
	}
	clients := 4 * runtime.GOMAXPROCS(0)
	if clients > 32 {
		clients = 32
	}
	const perClient = 50

	var rows []benchfmt.Saturation

	// Baseline: per-request execution, no coalescer.
	{
		s := serve.NewServer(serve.Config{QueueDepth: 4 * clients})
		ts := httptest.NewServer(s.Handler())
		rows = append(rows, driveSaturation("inproc_nobatch", ts.URL, bodies, clients, perClient))
		ts.Close()
		s.Close()
	}

	// Batched: same load through the coalescer; occupancy and batched
	// fraction come from the server's own counters.
	{
		s := serve.NewServer(serve.Config{
			QueueDepth:  4 * clients,
			BatchMax:    16,
			BatchLinger: 500 * time.Microsecond,
		})
		ts := httptest.NewServer(s.Handler())
		row := driveSaturation("inproc_batch", ts.URL, bodies, clients, perClient)
		mean, count := s.Stats().BatchOccupancy.Mean()
		if count > 0 {
			row.BatchOccupancyMean = mean
		}
		if row.Requests > 0 {
			row.BatchedFrac = float64(s.Stats().Batched.Load()) / float64(row.Requests)
		}
		rows = append(rows, row)
		ts.Close()
		s.Close()
	}

	rep, err := benchfmt.Read(path)
	if err != nil {
		if !os.IsNotExist(err) {
			return err
		}
		rep = &benchfmt.Report{
			SchemaVersion: benchfmt.SchemaVersion,
			Date:          time.Now().UTC().Format("2006-01-02"),
			GoVersion:     runtime.Version(),
			GOMAXPROCS:    runtime.GOMAXPROCS(0),
			NumCPU:        runtime.NumCPU(),
			CalibrationNs: calibrationNs(),
		}
	}
	rep.Saturation = mergeSaturation(rep.Saturation, rows)
	for _, r := range rows {
		fmt.Fprintf(os.Stderr,
			"saturate: %-16s %6.0f req/s  p50 %6.2fms  p99 %6.2fms  occupancy %.2f  batched %.0f%%  failed %d\n",
			r.Scenario, r.Throughput, r.P50Ms, r.P99Ms, r.BatchOccupancyMean, r.BatchedFrac*100, r.Failed)
	}
	return rep.Write(path)
}

// mergeSaturation replaces same-scenario rows and appends new ones, so a
// re-run refreshes its scenarios without clobbering rows other producers
// (the multi-process load test) recorded.
func mergeSaturation(existing, rows []benchfmt.Saturation) []benchfmt.Saturation {
	out := existing[:0:0]
	replaced := map[string]bool{}
	for _, r := range rows {
		replaced[r.Scenario] = true
	}
	for _, e := range existing {
		if !replaced[e.Scenario] {
			out = append(out, e)
		}
	}
	return append(out, rows...)
}
