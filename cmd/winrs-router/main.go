// Command winrs-router is the consistent-hash shard front for a fleet of
// winrs-serve nodes: it hashes each framed request's plan-cache key onto a
// ring of nodes and forwards the raw frame, so every layer geometry keeps
// hitting the same node's warm plan and Ŵ caches. Nodes can be added and
// drained live through the admin endpoints.
//
// Usage:
//
//	winrs-router -addr :8779 -node http://10.0.0.1:8780 -node http://10.0.0.2:8780
//
// Endpoints: POST /v1/backward_filter, /v1/forward, /v1/backward_data
// (forwarded by plan-key hash), POST /admin/nodes/{add,drain,remove}?node=URL,
// GET /admin/ring, /healthz, /metrics.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"winrs/internal/serve"
)

// nodeList collects repeated -node flags.
type nodeList []string

func (n *nodeList) String() string { return strings.Join(*n, ",") }
func (n *nodeList) Set(v string) error {
	for _, s := range strings.Split(v, ",") {
		if s = strings.TrimSpace(s); s != "" {
			*n = append(*n, s)
		}
	}
	return nil
}

func main() {
	var nodes nodeList
	var (
		addr     = flag.String("addr", ":8779", "listen address")
		replicas = flag.Int("replicas", 0, "virtual points per node on the hash ring (0 = default 64)")
		maxBody  = flag.Int64("maxbody", 1<<30, "max request body bytes")
		timeout  = flag.Duration("timeout", 60*time.Second, "per-forward timeout")
	)
	flag.Var(&nodes, "node", "shard node base URL (repeatable, or comma-separated)")
	flag.Parse()

	rt := serve.NewRouter(serve.RouterConfig{
		Nodes:          nodes,
		Replicas:       *replicas,
		MaxBodyBytes:   *maxBody,
		ForwardTimeout: *timeout,
	})

	hs := &http.Server{
		Addr:              *addr,
		Handler:           rt.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintf(os.Stderr, "winrs-router: %v\n", err)
		os.Exit(1)
	}
	errc := make(chan error, 1)
	go func() { errc <- hs.Serve(ln) }()
	log.Printf("winrs-router listening on %s (nodes=%v)", ln.Addr(), []string(nodes))

	select {
	case <-ctx.Done():
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := hs.Shutdown(shutdownCtx); err != nil {
			log.Printf("winrs-router: forced shutdown: %v", err)
			hs.Close()
		}
	case err := <-errc:
		if !errors.Is(err, http.ErrServerClosed) {
			fmt.Fprintf(os.Stderr, "winrs-router: %v\n", err)
			os.Exit(1)
		}
	}
}
