// Command winrs-info explains what WinRS's configuration adaptation
// decides for one convolutional layer: the fastest kernel pair, the
// segment count and grid, the workspace, and the modelled GPU comparison
// against the cuDNN-style baselines.
//
// Usage:
//
//	winrs-info -n 32 -hw 224 -f 3 -c 64
//	winrs-info -n 32 -hw 56 -f 5 -c 256 -fp16 -gpu l40s
//	winrs-info -tune          # microbenchmark-tuned kernel coefficients
//	winrs-info -dispatch -n 1 -hw 32 -f 3 -c 8   # host backend ranking
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"
	"time"

	"winrs/internal/autotune"
	"winrs/internal/backend"
	"winrs/internal/conv"
	"winrs/internal/core"
	"winrs/internal/gpusim"
	"winrs/internal/perfmodel"
	"winrs/internal/report"
	"winrs/internal/winograd"
)

func main() {
	n := flag.Int("n", 32, "batch size")
	hw := flag.Int("hw", 224, "square input height/width")
	ih := flag.Int("ih", 0, "input height (overrides -hw)")
	iw := flag.Int("iw", 0, "input width (overrides -hw)")
	f := flag.Int("f", 3, "square filter size")
	fh := flag.Int("fh", 0, "filter height (overrides -f)")
	fw := flag.Int("fw", 0, "filter width (overrides -f)")
	c := flag.Int("c", 64, "channels (IC = OC)")
	ic := flag.Int("ic", 0, "input channels (overrides -c)")
	oc := flag.Int("oc", 0, "output channels (overrides -c)")
	groups := flag.Int("groups", 1, "channel groups (IC and OC must divide; IC = depthwise)")
	fp16 := flag.Bool("fp16", false, "FP16 Tensor-Core path")
	gpu := flag.String("gpu", "4090", "device model: 4090, 3090, l40s, a5000")
	tune := flag.Bool("tune", false, "microbenchmark kernel coefficients on this host")
	tuneDur := flag.Duration("tune-dur", 20*time.Millisecond, "per-kernel tuning duration")
	asJSON := flag.Bool("json", false, "emit the plan description as JSON")
	dispatch := flag.Bool("dispatch", false, "print the host backend ranking (per-backend workspace + predicted time) instead of the GPU plan")
	procs := flag.Int("procs", 0, "worker count the dispatch prediction assumes (0 = GOMAXPROCS)")
	flag.Parse()

	if *tune {
		runTune(*tuneDur)
		return
	}

	p := conv.Params{N: *n, IH: pick(*ih, *hw), IW: pick(*iw, *hw),
		FH: pick(*fh, *f), FW: pick(*fw, *f),
		IC: pick(*ic, *c), OC: pick(*oc, *c), Groups: *groups}
	p.PH, p.PW = p.FH/2, p.FW/2
	if err := p.Validate(); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	if *dispatch {
		if err := runDispatch(p, *fp16, *procs, *asJSON); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		return
	}
	d, err := device(*gpu)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}

	opts := []core.Option{core.WithHardware(core.Hardware{NSM: d.NSM})}
	if *fp16 {
		opts = append(opts, core.WithFP16())
	}
	cfg, err := core.Configure(p, opts...)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	if *asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(cfg); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		return
	}

	fmt.Printf("layer              %v\n", p)
	fmt.Printf("dY dimensions      %d:%d:%d:%d (N:OH:OW:OC)\n", p.N, p.OH(), p.OW(), p.OC)
	fmt.Printf("direct complexity  %.2f GFLOPs\n", float64(p.FLOPs())/1e9)
	fmt.Printf("data size          %.1f MB\n", float64(p.DataBytes32())/(1<<20))
	fmt.Println()
	fmt.Printf("kernel pair        %s\n", cfg.Pair)
	fastW, residW := cfg.Pair.Coverage()
	fmt.Printf("width split        %d columns fast + %d residual\n", fastW, residW)
	fmt.Printf("segment target     %d (Algorithm 1)\n", cfg.ZTarget)
	fmt.Printf("segment shape      %dx%d (Algorithm 2)\n", cfg.SegH, cfg.SegW)
	fmt.Printf("segments realized  %d\n", cfg.Z())
	if p.G() > 1 {
		fmt.Printf("groups             %d (%d ic x %d oc per group; depthwise=%v)\n",
			p.G(), p.ICG(), p.OCG(), p.G() == p.IC)
		gd := cfg.Describe()
		fmt.Printf("group dispatch     %s (ring of %d staging slots; WINRS_GROUP_DISPATCH)\n",
			gd.GroupDispatch, gd.GroupRing)
		fmt.Printf("workspace          %.3f MB (per-group arena x %d-slot ring)\n",
			float64(cfg.WorkspaceBytes())/(1<<20), gd.GroupRing)
		fmt.Printf("  per-group arena  %.3f MB ((Z-1) x per-group dW slab; the sequential dispatch)\n",
			float64(cfg.WorkspaceSeqBytes())/(1<<20))
		// The paper's headline quantity under grouping: the in-flight
		// arenas are sized for single groups, so even with the ring the
		// workspace shrinks vs the ungrouped plan of the same outer
		// geometry.
		pu := p
		pu.Groups = 0
		if ucfg, err := core.Configure(pu, append(opts, core.WithSegments(cfg.Z()))...); err == nil {
			if ub := ucfg.WorkspaceBytes(); ub > 0 {
				fmt.Printf("  vs ungrouped     %.3f MB at equal Z — %.1fx smaller\n",
					float64(ub)/(1<<20), float64(ub)/float64(maxI64(1, cfg.WorkspaceBytes())))
			}
		}
	} else {
		fmt.Printf("workspace          %.2f MB ((Z-1) x dW)\n",
			float64(cfg.WorkspaceBytes())/(1<<20))
	}
	fmt.Printf("what cache         %.2f MB (transformed-dY reuse, <= (max a/r) x dY)\n",
		float64(cfg.WHatCacheBytes())/(1<<20))
	fmt.Printf("ewm kernel         %s (host kernel-tier selection)\n", cfg.EWMKernel())
	blocksP := p
	if g := cfg.GroupConfig(); g != nil {
		blocksP = g.Params
	}
	blocks := 0
	for _, s := range cfg.Segments {
		blocks += core.BlocksPerSegment(s.K, blocksP, *fp16) * p.G()
	}
	fmt.Printf("total blocks       %d on %d SMs\n", blocks, d.NSM)

	fmt.Println()
	t := report.NewTable(fmt.Sprintf("modelled comparison on %s", d.Name),
		"algorithm", "time ms", "TFLOPS", "workspace MB")
	addPlan := func(pl gpusim.Plan) {
		tt := d.Time(pl)
		t.AddRow(pl.Algorithm, tt*1e3,
			gpusim.ThroughputTFLOPS(p.FLOPs(), tt),
			float64(pl.WorkspaceBytes)/(1<<20))
	}
	wPlan, _, err := perfmodel.WinRS(p, d, *fp16)
	if err == nil {
		addPlan(wPlan)
	}
	addPlan(perfmodel.CuGEMM(p, d, *fp16))
	if !*fp16 {
		addPlan(perfmodel.FFT(p))
	}
	if nf, ok := perfmodel.WinNF(p, *fp16); ok {
		addPlan(nf)
	}
	t.Write(os.Stdout)
}

// runDispatch prints what the host dispatcher would decide for the layer:
// every eligible backend's workspace and cost-model prediction, sorted
// fastest-first (measurement refinement is a serve-time concern and is not
// run here — this is the pure prediction winrs-serve starts from).
func runDispatch(p conv.Params, fp16 bool, procs int, asJSON bool) error {
	prec := backend.FP32
	if fp16 {
		prec = backend.FP16
	}
	if procs <= 0 {
		procs = runtime.GOMAXPROCS(0)
	}
	d, err := backend.Default().Dispatch(p, prec, backend.Options{Procs: procs, Measure: false})
	if err != nil {
		return err
	}
	if asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		return enc.Encode(d)
	}
	fmt.Printf("layer              %v\n", p)
	fmt.Printf("precision          %v\n", prec)
	fmt.Printf("procs assumed      %d\n", procs)
	fmt.Printf("dispatch choice    %s\n", d.Backend)
	fmt.Println()
	t := report.NewTable("host backend ranking (cost-model prediction)",
		"rank", "backend", "workspace MB", "predicted ms")
	for i, c := range d.Candidates {
		t.AddRow(i+1, c.Name, float64(c.WorkspaceBytes)/(1<<20), c.PredictedNs/1e6)
	}
	t.Write(os.Stdout)
	for _, b := range backend.Default().Backends() {
		if !b.Supports(p, prec) {
			fmt.Printf("ineligible         %s (unsupported at %v)\n", b.Name(), prec)
		}
	}
	return nil
}

func runTune(dur time.Duration) {
	fmt.Printf("microbenchmarking %d kernels (%v each)...\n",
		len(winograd.Kernels), dur)
	coeffs := autotune.Coefficients(dur)
	t := report.NewTable("host-tuned kernel coefficients",
		"kernel", "static coeff", "tuned coeff")
	for _, k := range winograd.Kernels {
		t.AddRow(k.String(), k.Coeff, coeffs[k.String()])
	}
	t.Write(os.Stdout)
	fmt.Println("\npass these to core.WithCoefficients to adapt pair selection")
}

func pick(override, def int) int {
	if override > 0 {
		return override
	}
	return def
}

func maxI64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

func device(name string) (gpusim.Device, error) {
	switch strings.ToLower(name) {
	case "4090", "rtx4090":
		return gpusim.RTX4090, nil
	case "3090", "rtx3090":
		return gpusim.RTX3090, nil
	case "l40s":
		return gpusim.L40S, nil
	case "a5000", "rtxa5000":
		return gpusim.RTXA5000, nil
	}
	return gpusim.Device{}, fmt.Errorf("unknown device %q (4090, 3090, l40s, a5000)", name)
}
