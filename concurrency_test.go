package winrs

import (
	"math/rand"
	"strings"
	"sync"
	"testing"

	"winrs/internal/obs"
)

// A single shared Plan must be safe under concurrent Execute: each call
// borrows a private workspace arena, and results must be bit-identical to
// the serial path. Run with -race.
func TestPlanExecuteConcurrent(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	p := Params{N: 2, IH: 24, IW: 24, FH: 3, FW: 3, IC: 8, OC: 8, PH: 1, PW: 1}
	x := NewTensor(p.XShape())
	dy := NewTensor(p.DYShape())
	x.FillUniform(rng, 0, 1)
	dy.FillUniform(rng, 0, 1)

	plan, err := NewPlan(p)
	if err != nil {
		t.Fatal(err)
	}
	want := plan.Execute(x, dy)

	const goroutines = 8
	const iters = 4
	var wg sync.WaitGroup
	errs := make(chan string, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for it := 0; it < iters; it++ {
				got := plan.Execute(x, dy)
				if got == want {
					errs <- "Execute returned a shared tensor"
					return
				}
				for i := range want.Data {
					if got.Data[i] != want.Data[i] {
						errs <- "concurrent result diverged from serial"
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for msg := range errs {
		t.Error(msg)
	}
}

// Concurrent ExecuteHalf on one shared plan, for the race detector.
func TestPlanExecuteHalfConcurrent(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	p := Params{N: 1, IH: 16, IW: 16, FH: 3, FW: 3, IC: 4, OC: 4, PH: 1, PW: 1}
	xf := NewTensor(p.XShape())
	dyf := NewTensor(p.DYShape())
	xf.FillUniform(rng, 0, 1)
	dyf.FillUniform(rng, 0, 0.01)
	x, dy := xf.ToHalf(), dyf.ToHalf()

	plan, err := NewPlan(p, WithFP16())
	if err != nil {
		t.Fatal(err)
	}
	want := plan.ExecuteHalf(x, dy)

	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			got := plan.ExecuteHalf(x, dy)
			for i := range want.Data {
				if got.Data[i] != want.Data[i] {
					t.Error("concurrent half result diverged")
					return
				}
			}
		}()
	}
	wg.Wait()
}

// WithFP16 on the 3D and strided wrappers used to be silently dropped,
// computing FP32 while the caller believed otherwise. Pin the explicit
// "unsupported" error.
func TestFP16UnsupportedOn3DAndStrided(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	p3 := Params3D{N: 1, ID: 4, IH: 8, IW: 8, FD: 3, FH: 3, FW: 3,
		IC: 2, OC: 2, PD: 1, PH: 1, PW: 1}
	x3 := NewTensor5(p3.XShape())
	dy3 := NewTensor5(p3.DYShape())
	x3.FillUniform(rng, 0, 1)
	dy3.FillUniform(rng, 0, 1)
	if _, err := BackwardFilter3D(p3, x3, dy3, WithFP16()); err == nil {
		t.Error("BackwardFilter3D(WithFP16) should error, not silently compute FP32")
	} else if !strings.Contains(err.Error(), "FP16") {
		t.Errorf("unhelpful error: %v", err)
	}
	// Without the option the same geometry still works.
	if _, err := BackwardFilter3D(p3, x3, dy3); err != nil {
		t.Errorf("FP32 3D path broke: %v", err)
	}

	ps := StridedParams{N: 1, IH: 14, IW: 14, FH: 3, FW: 3, IC: 2, OC: 2,
		PH: 1, PW: 1, SH: 2, SW: 2}
	x := NewTensor(ps.XShape())
	dy := NewTensor(ps.DYShape())
	x.FillUniform(rng, 0, 1)
	dy.FillUniform(rng, 0, 1)
	if _, err := BackwardFilterStrided(ps, x, dy, WithFP16()); err == nil {
		t.Error("BackwardFilterStrided(WithFP16) should error, not silently compute FP32")
	} else if !strings.Contains(err.Error(), "FP16") {
		t.Errorf("unhelpful error: %v", err)
	}
	if _, err := BackwardFilterStrided(ps, x, dy); err != nil {
		t.Errorf("FP32 strided path broke: %v", err)
	}
}

// Repeated one-shot calls on one geometry go through the process-wide plan
// cache: hits must accumulate.
func TestPlanCacheStats(t *testing.T) {
	rng := rand.New(rand.NewSource(14))
	p := Params{N: 1, IH: 19, IW: 23, FH: 3, FW: 3, IC: 3, OC: 5, PH: 1, PW: 1}
	x := NewTensor(p.XShape())
	dy := NewTensor(p.DYShape())
	x.FillUniform(rng, 0, 1)
	dy.FillUniform(rng, 0, 1)

	h0, _ := PlanCacheStats()
	for i := 0; i < 3; i++ {
		if _, err := BackwardFilter(p, x, dy); err != nil {
			t.Fatal(err)
		}
	}
	h1, m1 := PlanCacheStats()
	if h1-h0 < 2 {
		t.Errorf("expected ≥2 plan-cache hits from repeated one-shot calls, got %d (misses %d)",
			h1-h0, m1)
	}
}

// Concurrent traced executions against concurrent trace scrapes: the obs
// recorder's striped counters must tolerate Execute traffic from many
// goroutines while /metrics-style readers snapshot and render. Run with
// -race; complements the obs- and serve-level scrape tests.
func TestPlanExecuteWithTraceScrapes(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	p := Params{N: 1, IH: 16, IW: 16, FH: 3, FW: 3, IC: 4, OC: 4, PH: 1, PW: 1}
	x := NewTensor(p.XShape())
	dy := NewTensor(p.DYShape())
	x.FillUniform(rng, 0, 1)
	dy.FillUniform(rng, 0, 1)

	plan, err := NewPlan(p)
	if err != nil {
		t.Fatal(err)
	}
	want := plan.Execute(x, dy)

	obs.ResetTrace()
	obs.EnableTrace(true)
	defer obs.EnableTrace(false)
	defer obs.ResetTrace()

	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for it := 0; it < 6; it++ {
				got := plan.Execute(x, dy)
				for i := range want.Data {
					if got.Data[i] != want.Data[i] {
						t.Error("traced concurrent result diverged")
						return
					}
				}
			}
		}()
	}
	for g := 0; g < 2; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for it := 0; it < 12; it++ {
				var b strings.Builder
				if err := obs.WriteTraceTo(&b); err != nil {
					t.Error(err)
					return
				}
				obs.TraceSnapshot()
				obs.StageShares()
			}
		}()
	}
	wg.Wait()

	if snap := obs.TraceSnapshot(); snap[obs.StageSegmentTile].Count == 0 {
		t.Error("no units recorded under concurrent tracing")
	}
}
