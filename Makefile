GO ?= go

# Latest committed benchmark baseline (BENCH_<date>.json, lexicographic =
# chronological). Override: make bench-gate BENCH_BASELINE=BENCH_x.json
BENCH_BASELINE ?= $(lastword $(sort $(wildcard BENCH_*.json)))
BENCH_THRESHOLD ?= 0.15
FUZZTIME ?= 30s

.PHONY: ci build test vet race bench serve bench-json bench-gate fuzz-smoke faults dispatch-smoke batch-smoke saturate v3-smoke grouped-smoke

ci: vet build race

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench=. -benchmem ./...

serve:
	$(GO) run ./cmd/winrs-serve

# bench-json measures the fixed regression grid into a fresh dated report.
bench-json:
	$(GO) run ./cmd/winrs-bench -json BENCH_$$(date -u +%F).json

# bench-gate re-measures the grid and fails on any hot-path result more
# than BENCH_THRESHOLD slower than the committed baseline (calibration-
# normalized, so a different machine speed cancels out). -match-procs pins
# the measurement's GOMAXPROCS to the baseline's recorded value, so the
# gate works from any CI matrix leg; -compare refuses mismatched
# environments outright.
bench-gate:
	@test -n "$(BENCH_BASELINE)" || { echo "no BENCH_*.json baseline committed"; exit 1; }
	$(GO) run ./cmd/winrs-bench -match-procs $(BENCH_BASELINE) -json /tmp/bench_current.json
	$(GO) run ./cmd/winrs-bench -compare -threshold $(BENCH_THRESHOLD) $(BENCH_BASELINE) /tmp/bench_current.json

# dispatch-smoke drives every registered backend through the serving path
# once (explicit algo headers plus "auto"), asserting each served gradient
# agrees with the FP64 direct-conv oracle and the per-backend dispatch
# metrics move, then runs the backend-level dispatch unit tests.
dispatch-smoke:
	$(GO) test -count 1 -run '^TestDispatchSmoke$$|^TestServeAuto|^TestServeForceAndDefaultAlgo$$' ./internal/serve
	$(GO) test -count 1 -run '^TestDispatch|^TestRanking' ./internal/backend

# faults runs the request-lifecycle robustness suite under the race
# detector: the fault-injection harness (forced panics, slow computes,
# client disconnects), dispatcher panic/cancel isolation, and the
# cancellable-execution tests in core and sched.
faults:
	$(GO) test -race -run 'TestFault|TestServeBodyLimit|TestDispatcher|TestExecuteInCtx|TestExecutorExecuteCtx|TestRunBatch' \
		./internal/serve ./internal/core ./internal/sched

# batch-smoke runs the micro-batching differential and topology suites
# under the race detector: batched execution pinned bit-identical to
# per-request, mixed-geometry isolation, the consistent-hash ring's
# remapping bounds, and the in-process router (stickiness, live drain).
# Batch-membership fault injection is named TestFaultBatch* and therefore
# also rides the `faults` target.
batch-smoke:
	$(GO) test -race -count 1 -run 'TestBatch|TestRing|TestRoute|TestRouter' ./internal/serve

# saturate is the multi-process load test: real winrs-serve ×2 and
# winrs-router processes, mixed-geometry load, shard-stickiness and
# zero-drop live-drain assertions, and an in-process batched-vs-unbatched
# saturation comparison merged into /tmp/bench_saturate.json (override
# with SATURATE_OUT; point it at the committed baseline to track rows).
SATURATE_OUT ?= /tmp/bench_saturate.json
saturate:
	$(GO) run ./cmd/winrs-bench -saturate $(SATURATE_OUT)
	WINRS_LOADTEST_BENCH=$(SATURATE_OUT) $(GO) test -tags loadtest -count 1 -timeout 600s -v ./internal/loadtest

# grouped-smoke runs the grouped/depthwise differential suites under the
# race detector across the dispatch × parallelism matrix: both group
# dispatch modes (WINRS_GROUP_DISPATCH seq and interleaved) at GOMAXPROCS
# 1 and 4. Every grouped path (FP32, FP16, strided, forward, data
# gradient, serve round-trip, mid-interleave cancellation) is pinned
# against the grouped float64 direct oracle and the sequential baseline,
# plus the depthwise planned-path and workspace-shrinkage acceptance
# checks. The in-test width-{1,4} pools cover pool shape; the GOMAXPROCS
# legs cover the unforced default pool the serve tests run on.
grouped-smoke:
	@for disp in seq interleaved; do \
		for procs in 1 4; do \
			echo "grouped-smoke: WINRS_GROUP_DISPATCH=$$disp GOMAXPROCS=$$procs"; \
			WINRS_GROUP_DISPATCH=$$disp GOMAXPROCS=$$procs \
				$(GO) test -race -count 1 -run 'TestGrouped|TestDepthwise|TestFaultGroupedCancel' \
				./internal/conv ./internal/core ./internal/serve || exit 1; \
		done; \
	done

# v3-smoke builds the tree with GOAMD64=v3 — compiling in the arch-tuned
# EWM panel variant behind the amd64.v3 build tag — and runs the
# kernel-tier differential suites against the scalar oracle under it.
# Skips gracefully on non-amd64 hosts, where the tag can never be set.
v3-smoke:
	@if [ "$$($(GO) env GOARCH)" != "amd64" ]; then \
		echo "v3-smoke: GOARCH=$$($(GO) env GOARCH), skipping (amd64 only)"; \
	else \
		GOAMD64=v3 $(GO) build ./... && \
		GOAMD64=v3 $(GO) test -count 1 \
			-run 'TestEWM|TestMatTMulRow|TestExecuteHalfMatchesScalarCodecRef|TestStridedHalfMatchesScalarCodecRef' \
			./internal/core && \
		GOAMD64=v3 $(GO) test -count 1 ./internal/winograd ./internal/fp16; \
	fi

# fuzz-smoke runs every fuzz target from its seed corpus for FUZZTIME
# each, plus the exhaustive codec equivalence sweeps (all 65536 decode
# patterns, every encode rounding boundary) that anchor the fuzz targets.
fuzz-smoke:
	$(GO) test ./internal/core -run '^$$' -fuzz '^FuzzConfigurePartition$$' -fuzztime $(FUZZTIME)
	$(GO) test ./internal/core -run '^$$' -fuzz '^FuzzExecuteMatchesDirect$$' -fuzztime $(FUZZTIME)
	$(GO) test ./internal/fp16 -run '^$$' -fuzz '^FuzzConversion$$' -fuzztime $(FUZZTIME)
	$(GO) test ./internal/fp16 -run '^$$' -fuzz '^FuzzOrdering$$' -fuzztime $(FUZZTIME)
	$(GO) test ./internal/fp16 -run '^$$' -fuzz '^FuzzEncodeMatchesScalar$$' -fuzztime $(FUZZTIME)
	$(GO) test ./internal/serve -run '^$$' -fuzz '^FuzzProtoRoundTrip$$' -fuzztime $(FUZZTIME)
	$(GO) test ./internal/fp16 -count 1 -run '^TestDecodeSliceExhaustive$$|^TestEncodeSliceBoundarySweep$$'
