GO ?= go

.PHONY: ci build test vet race bench serve

ci: vet build race

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench=. -benchmem ./...

serve:
	$(GO) run ./cmd/winrs-serve
