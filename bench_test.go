// Benchmark harness: one testing.B benchmark per table and figure of the
// paper's evaluation. The simulated experiments (Table 3, Figures 10–11)
// report modelled GPU milliseconds as custom metrics; the numeric
// experiments (Table 4, Figure 12, Figure 13) execute the real algorithms
// and report their wall time plus accuracy metrics. Run with:
//
//	go test -bench=. -benchmem
package winrs

import (
	"math/rand"
	"testing"

	"winrs/internal/conv"
	"winrs/internal/core"
	"winrs/internal/fftconv"
	"winrs/internal/gemm"
	"winrs/internal/gpusim"
	"winrs/internal/perfmodel"
	"winrs/internal/tensor"
	"winrs/internal/train"
	"winrs/internal/winnf"
	"winrs/internal/workload"
)

// benchLayer is the shared real-execution workload: small enough for
// testing.B iteration, large enough to exercise segmentation.
func benchLayer() conv.Params {
	return conv.Params{N: 4, IH: 32, IW: 32, FH: 3, FW: 3, IC: 16, OC: 16,
		PH: 1, PW: 1}
}

func benchOperands(p conv.Params, seed int64) (*tensor.Float32, *tensor.Float32) {
	rng := rand.New(rand.NewSource(seed))
	x := tensor.NewFloat32(p.XShape())
	dy := tensor.NewFloat32(p.DYShape())
	x.FillUniform(rng, 0, 1)
	dy.FillUniform(rng, 0, 1)
	return x, dy
}

// BenchmarkFig2BlockCount measures the configuration-adaptation cost on the
// Figure 2 layer and reports the BFC block-starvation ratio it diagnoses.
func BenchmarkFig2BlockCount(b *testing.B) {
	p := conv.Params{N: 32, IH: 224, IW: 224, FH: 3, FW: 3, IC: 64, OC: 64, PH: 1, PW: 1}
	var z int
	for i := 0; i < b.N; i++ {
		cfg, err := core.Configure(p)
		if err != nil {
			b.Fatal(err)
		}
		z = cfg.Z()
	}
	b.ReportMetric(float64(z), "segments")
}

// BenchmarkTable2Workspace sweeps the paper population and reports the
// WinRS average workspace/data ratio (paper: 0.18).
func BenchmarkTable2Workspace(b *testing.B) {
	cases := workload.PaperSweep()
	d := gpusim.RTX4090
	var avg float64
	for i := 0; i < b.N; i++ {
		var sum float64
		n := 0
		for _, c := range cases {
			plan, _, err := perfmodel.WinRS(c.P, d, false)
			if err != nil {
				continue
			}
			sum += float64(plan.WorkspaceBytes) / float64(c.P.DataBytes32())
			n++
		}
		avg = sum / float64(n)
	}
	b.ReportMetric(avg, "ws/data")
}

// BenchmarkFig9Workspace regenerates the Figure 9 channel ladder and
// reports the large-channel workspace (paper: 0 MB).
func BenchmarkFig9Workspace(b *testing.B) {
	d := gpusim.RTX4090
	series := workload.ConstantComplexitySeries(32, 224, 64, 3)
	var last int64
	for i := 0; i < b.N; i++ {
		for _, c := range series {
			plan, _, err := perfmodel.WinRS(c.P, d, false)
			if err != nil {
				continue
			}
			last = plan.WorkspaceBytes
		}
	}
	b.ReportMetric(float64(last), "bytes@1024ch")
}

// BenchmarkTable3Speedup reports the modelled average WinRS speedup over
// Cu-GEMM across the sweep (paper: 1.05x-4.7x band).
func BenchmarkTable3Speedup(b *testing.B) {
	cases := workload.PaperSweep()
	d := gpusim.RTX4090
	var avg float64
	for i := 0; i < b.N; i++ {
		var sum float64
		n := 0
		for _, c := range cases {
			w, _, err := perfmodel.WinRS(c.P, d, false)
			if err != nil {
				continue
			}
			sum += perfmodel.Speedup(d, w, perfmodel.CuGEMM(c.P, d, false))
			n++
		}
		avg = sum / float64(n)
	}
	b.ReportMetric(avg, "speedup")
}

// BenchmarkFig10ThroughputFP32 reports the modelled FP32 WinRS throughput
// on the Figure 10 series (direct-equivalent TFLOPS).
func BenchmarkFig10ThroughputFP32(b *testing.B) {
	benchThroughput(b, gpusim.RTX4090, false)
}

// BenchmarkFig11ThroughputFP16 reports the modelled FP16 WinRS throughput
// on the Figure 11 series.
func BenchmarkFig11ThroughputFP16(b *testing.B) {
	benchThroughput(b, gpusim.L40S, true)
}

func benchThroughput(b *testing.B, d gpusim.Device, fp16 bool) {
	series := workload.ConstantComplexitySeries(32, 224, 64, 3)
	var tput float64
	for i := 0; i < b.N; i++ {
		var sum float64
		n := 0
		for _, c := range series {
			plan, _, err := perfmodel.WinRS(c.P, d, fp16)
			if err != nil {
				continue
			}
			sum += gpusim.ThroughputTFLOPS(c.P.FLOPs(), d.Time(plan))
			n++
		}
		tput = sum / float64(n)
	}
	b.ReportMetric(tput, "TFLOPS")
}

// BenchmarkTable4Accuracy executes the real FP32 pipeline and reports its
// MARE against FP64 (paper band ~1e-7 for Ω8 kernels).
func BenchmarkTable4Accuracy(b *testing.B) {
	p := benchLayer()
	x, dy := benchOperands(p, 1)
	want := conv.BackwardFilterDirect64(p, x.ToFloat64(), dy.ToFloat64())
	cfg, err := core.Configure(p)
	if err != nil {
		b.Fatal(err)
	}
	var mare float64
	b.SetBytes(p.DataBytes32())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		got := core.Execute(cfg, x, dy)
		mare = tensor.MARE(got, want)
	}
	b.ReportMetric(mare, "MARE")
}

// BenchmarkFig12MAREDistribution runs the FP16 path at the largest
// accumulation length of the Figure 12 sweep and reports its MARE.
func BenchmarkFig12MAREDistribution(b *testing.B) {
	p := conv.Params{N: 8, IH: 32, IW: 32, FH: 3, FW: 3, IC: 4, OC: 4, PH: 1, PW: 1}
	x, dy := benchOperands(p, 2)
	dy.Scale(0.01)
	xh, dyh := x.ToHalf(), dy.ToHalf()
	want := conv.BackwardFilterDirect64(p, xh.ToFloat32().ToFloat64(),
		dyh.ToFloat32().ToFloat64())
	cfg, err := core.Configure(p, core.WithFP16())
	if err != nil {
		b.Fatal(err)
	}
	var mare float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		got := core.ExecuteHalf(cfg, xh, dyh)
		mare = tensor.MARE(got, want)
	}
	b.ReportMetric(mare, "MARE")
}

// BenchmarkFig13Training runs a short WinRS-gradient training burst and
// reports the final loss.
func BenchmarkFig13Training(b *testing.B) {
	var final float64
	for i := 0; i < b.N; i++ {
		ds := train.NewDataset(3, 8, 8, 2, 7)
		net := train.NewNet(8, 8, 2, 4, 6, 3, train.WinRSBFC, 99)
		net.LR = 0.5
		losses, err := train.Run(net, ds, 60, 8)
		if err != nil {
			b.Fatal(err)
		}
		final = losses[len(losses)-1]
	}
	b.ReportMetric(final, "loss")
}

// BenchmarkAblation1Dvs2D compares fused WinRS against the non-fused 2-D
// Winograd baseline on the same real workload (eq. 3/4 in the flesh).
func BenchmarkAblation1Dvs2D(b *testing.B) {
	p := benchLayer()
	x, dy := benchOperands(p, 3)
	cfg, err := core.Configure(p)
	if err != nil {
		b.Fatal(err)
	}
	b.Run("WinRS1D", func(b *testing.B) {
		b.SetBytes(p.DataBytes32())
		for i := 0; i < b.N; i++ {
			_ = core.Execute(cfg, x, dy)
		}
	})
	b.Run("WinNF2D", func(b *testing.B) {
		b.SetBytes(p.DataBytes32())
		for i := 0; i < b.N; i++ {
			_ = winnf.BackwardFilter(p, x, dy)
		}
	})
}

// BenchmarkAblationSegmentation contrasts adaptive Z against forced Z=1 on
// the simulator (the paper's parallelism argument, Figure 2 → §4.2).
func BenchmarkAblationSegmentation(b *testing.B) {
	p := conv.Params{N: 32, IH: 224, IW: 224, FH: 3, FW: 3, IC: 64, OC: 64, PH: 1, PW: 1}
	d := gpusim.RTX4090
	var ratio float64
	for i := 0; i < b.N; i++ {
		adaptive, _, err := perfmodel.WinRS(p, d, false)
		if err != nil {
			b.Fatal(err)
		}
		forced, _, err := perfmodel.WinRSForced(p, d, false, 1)
		if err != nil {
			b.Fatal(err)
		}
		ratio = d.Time(forced) / d.Time(adaptive)
	}
	b.ReportMetric(ratio, "speedup")
}

// BenchmarkBaselines times every real BFC implementation on the shared
// workload, the cross-algorithm comparison backing Figures 10–11 at
// CPU scale.
func BenchmarkBaselines(b *testing.B) {
	p := benchLayer()
	x, dy := benchOperands(p, 4)
	impls := []struct {
		name string
		f    func() *tensor.Float32
	}{
		{"WinRS", func() *tensor.Float32 {
			out, err := core.BackwardFilter(p, x, dy)
			if err != nil {
				b.Fatal(err)
			}
			return out
		}},
		{"Direct", func() *tensor.Float32 { return conv.BackwardFilterDirect32(p, x, dy) }},
		{"Algo0", func() *tensor.Float32 { return gemm.Algo0(p, x, dy) }},
		{"Algo1", func() *tensor.Float32 { return gemm.Algo1(p, x, dy) }},
		{"Algo3", func() *tensor.Float32 { return gemm.Algo3(p, x, dy) }},
		{"FFT", func() *tensor.Float32 { return fftconv.BackwardFilter(p, x, dy) }},
		{"WinNF", func() *tensor.Float32 { return winnf.BackwardFilter(p, x, dy) }},
	}
	for _, im := range impls {
		b.Run(im.name, func(b *testing.B) {
			b.SetBytes(p.DataBytes32())
			for i := 0; i < b.N; i++ {
				_ = im.f()
			}
		})
	}
}
