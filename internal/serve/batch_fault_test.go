package serve_test

// Fault injection for batch membership, via Runtime.SetFaultHook: one
// member disconnecting mid-batch must not poison the rest, and a panic
// inside a batched compute must 500 only the affected member while the
// shared arenas return to the pools (Borrowed() == 0).

import (
	"bytes"
	"context"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"winrs"
	"winrs/internal/serve"
)

func newBatchFaultServer(t *testing.T) (*serve.Server, *httptest.Server) {
	t.Helper()
	s := serve.NewServer(serve.Config{
		Workers:     2,
		QueueDepth:  64,
		BatchMax:    16,
		BatchLinger: 150 * time.Millisecond,
	})
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		s.Close()
	})
	return s, ts
}

// TestFaultBatchMemberDisconnect drops one member's client mid-batch; the
// surviving members must answer 200 with the exact library gradient, and
// the shared arenas must be back in the pools afterwards.
func TestFaultBatchMemberDisconnect(t *testing.T) {
	s, ts := newBatchFaultServer(t)
	p := winrs.Params{N: 1, IH: 12, IW: 12, FH: 3, FW: 3, IC: 3, OC: 3, PH: 1, PW: 1}
	x, dy := randLayer(t, 401, p)
	lib, err := winrs.BackwardFilter(p, x, dy)
	if err != nil {
		t.Fatal(err)
	}
	want := serve.AppendF32(nil, lib.Data)
	body := frameF32(t, p, x, dy)

	// The first hook invocation (the batch's first-running member) blocks
	// until either its own context dies or the test releases it; later
	// invocations pass straight through.
	entered := make(chan struct{})
	release := make(chan struct{})
	var first atomic.Bool
	first.Store(true)
	s.Runtime().SetFaultHook(func(ctx context.Context, key serve.PlanKey) error {
		if first.CompareAndSwap(true, false) {
			close(entered)
			select {
			case <-ctx.Done():
				return ctx.Err()
			case <-release:
				return nil
			}
		}
		return nil
	})
	defer s.Runtime().SetFaultHook(nil)

	// Member A will be disconnected; B and C are healthy.
	ctxA, cancelA := context.WithCancel(context.Background())
	aDone := make(chan error, 1)
	go func() {
		req, err := http.NewRequestWithContext(ctxA, http.MethodPost,
			ts.URL+"/v1/backward_filter", bytes.NewReader(body))
		if err != nil {
			aDone <- err
			return
		}
		resp, err := http.DefaultClient.Do(req)
		if err == nil {
			resp.Body.Close()
		}
		aDone <- nil
	}()

	type result struct {
		status int
		out    []byte
		err    error
	}
	var wg sync.WaitGroup
	results := make([]result, 2)
	for i := range results {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i].status, results[i].out, results[i].err = postRaw(ts.URL, body)
		}(i)
	}

	// Wait for the batch to start running, drop A mid-batch, then release
	// the blocked member (which may itself be A — either way the batch
	// continues with the survivors).
	select {
	case <-entered:
	case <-time.After(10 * time.Second):
		t.Fatal("batch never started")
	}
	cancelA()
	time.Sleep(20 * time.Millisecond)
	close(release)
	<-aDone
	wg.Wait()

	for i, r := range results {
		if r.err != nil {
			t.Fatalf("survivor %d: %v", i, r.err)
		}
		if r.status != http.StatusOK {
			t.Fatalf("survivor %d: status %d: %s", i, r.status, r.out)
		}
		if !bytes.Equal(r.out, want) {
			t.Fatalf("survivor %d: gradient differs after a member disconnect", i)
		}
	}
	if got := s.Runtime().Borrowed(); got != 0 {
		t.Errorf("Borrowed() = %d after member disconnect, want 0", got)
	}
}

// TestFaultBatchPanicIsolatesMember panics exactly one member's compute
// inside a multi-member batch: that member answers 500, every other
// member answers 200 with the exact gradient, the arenas do not leak, and
// the server keeps serving.
func TestFaultBatchPanicIsolatesMember(t *testing.T) {
	s, ts := newBatchFaultServer(t)
	p := winrs.Params{N: 1, IH: 12, IW: 12, FH: 3, FW: 3, IC: 3, OC: 3, PH: 1, PW: 1}
	x, dy := randLayer(t, 402, p)
	lib, err := winrs.BackwardFilter(p, x, dy)
	if err != nil {
		t.Fatal(err)
	}
	want := serve.AppendF32(nil, lib.Data)
	body := frameF32(t, p, x, dy)

	// Panic on the second hook invocation, so the batch has already run a
	// healthy member on the shared arenas and must run more after the
	// poisoned ones are replaced.
	var calls atomic.Int64
	s.Runtime().SetFaultHook(func(ctx context.Context, key serve.PlanKey) error {
		if calls.Add(1) == 2 {
			panic("injected batched compute panic")
		}
		return nil
	})
	defer s.Runtime().SetFaultHook(nil)

	const members = 4
	type result struct {
		status int
		out    []byte
		err    error
	}
	var wg sync.WaitGroup
	results := make([]result, members)
	for i := range results {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i].status, results[i].out, results[i].err = postRaw(ts.URL, body)
		}(i)
	}
	wg.Wait()

	var ok, failed int
	for i, r := range results {
		if r.err != nil {
			t.Fatalf("member %d: %v", i, r.err)
		}
		switch r.status {
		case http.StatusOK:
			ok++
			if !bytes.Equal(r.out, want) {
				t.Errorf("member %d: gradient differs after a sibling panic", i)
			}
		case http.StatusInternalServerError:
			failed++
		default:
			t.Errorf("member %d: unexpected status %d: %s", i, r.status, r.out)
		}
	}
	if failed != 1 || ok != members-1 {
		t.Fatalf("outcomes: %d ok, %d failed; want %d ok, 1 failed", ok, failed, members-1)
	}
	if got := s.Runtime().Borrowed(); got != 0 {
		t.Errorf("Borrowed() = %d after batched panic, want 0", got)
	}
	if !strings.Contains(scrapeMetrics(t, ts.URL), "winrs_panics_total 1") {
		t.Error("metrics missing winrs_panics_total 1")
	}

	// The pools and workers must still serve the next request correctly.
	status, out, err := postRaw(ts.URL, body)
	if err != nil || status != http.StatusOK {
		t.Fatalf("follow-up after batched panic: status %d err %v", status, err)
	}
	if !bytes.Equal(out, want) {
		t.Error("follow-up gradient differs after batched panic")
	}
}
