package serve_test

// Fault-injection harness: drives the server through the failure modes the
// request lifecycle must contain — compute panics, slow computes that
// outlive the deadline, clients disconnecting mid-compute and mid-queue —
// via Runtime.SetFaultHook, and asserts the containment contract: workers
// survive, arenas return to the pools (Borrowed() == 0), the right status
// and counter record each outcome, and the next request is served
// correctly.

import (
	"bytes"
	"context"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"winrs"
	"winrs/internal/serve"
)

func newFaultServer(t *testing.T, cfg serve.Config) (*serve.Server, *httptest.Server) {
	t.Helper()
	s := serve.NewServer(cfg)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		s.Close()
	})
	return s, ts
}

func scrapeMetrics(t *testing.T, url string) string {
	t.Helper()
	resp, err := http.Get(url + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(raw)
}

// waitForMetric polls /metrics until the line appears; the handler may
// still be recording an outcome after the client's Do call has already
// returned (e.g. a disconnected client).
func waitForMetric(t *testing.T, url, line string) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if strings.Contains(scrapeMetrics(t, url), line) {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("metric %q never appeared; metrics:\n%s", line, scrapeMetrics(t, url))
}

// Acceptance criterion: a request whose compute panics answers 500, the
// worker survives, and the next 100 requests on the same server are served
// bit-for-bit correctly. Pools must not leak across the panic.
func TestFaultPanicThenHundredRequests(t *testing.T) {
	s, ts := newTestServer(t)
	p := winrs.Params{N: 1, IH: 12, IW: 12, FH: 3, FW: 3, IC: 3, OC: 3, PH: 1, PW: 1}
	x, dy := randLayer(t, 41, p)
	want, err := winrs.BackwardFilter(p, x, dy)
	if err != nil {
		t.Fatal(err)
	}

	var calls atomic.Int64
	s.Runtime().SetFaultHook(func(ctx context.Context, key serve.PlanKey) error {
		if calls.Add(1) == 1 {
			panic("injected compute panic")
		}
		return nil
	})
	defer s.Runtime().SetFaultHook(nil)

	resp, out := postBackwardFilter(t, ts.URL, p, x, dy)
	if resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("panicking request: status %d: %s", resp.StatusCode, out)
	}
	if got := s.Runtime().Borrowed(); got != 0 {
		t.Fatalf("Borrowed() = %d after panic, want 0", got)
	}

	for i := 0; i < 100; i++ {
		resp, out := postBackwardFilter(t, ts.URL, p, x, dy)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("request %d after panic: status %d: %s", i, resp.StatusCode, out)
		}
		got := make([]float32, p.DWShape().Elems())
		if err := serve.DecodeF32(out, got); err != nil {
			t.Fatalf("request %d after panic: %v", i, err)
		}
		for j := range want.Data {
			if got[j] != want.Data[j] {
				t.Fatalf("request %d after panic: gradient differs at %d", i, j)
			}
		}
	}

	metrics := scrapeMetrics(t, ts.URL)
	for _, line := range []string{
		"winrs_panics_total 1",
		`winrs_requests_total{op="backward_filter"} 100`,
	} {
		if !strings.Contains(metrics, line) {
			t.Errorf("metrics missing %q", line)
		}
	}
	if got := s.Runtime().Borrowed(); got != 0 {
		t.Errorf("Borrowed() = %d after traffic, want 0", got)
	}
}

// Acceptance criterion: a deadline expiring mid-compute aborts the request
// promptly with 503 and frees the worker for the next request. The hook
// stands in for a slow compute that honors cooperative cancellation — it
// blocks until ctx is done, as a long execution would block until its next
// chunk claim observes the cancel.
func TestFaultSlowComputeDeadline(t *testing.T) {
	const deadline = 250 * time.Millisecond
	s, ts := newFaultServer(t, serve.Config{Workers: 1, QueueDepth: 1, Deadline: deadline})
	p := winrs.Params{N: 1, IH: 12, IW: 12, FH: 3, FW: 3, IC: 3, OC: 3, PH: 1, PW: 1}
	x, dy := randLayer(t, 42, p)

	var armed atomic.Bool
	armed.Store(true)
	s.Runtime().SetFaultHook(func(ctx context.Context, key serve.PlanKey) error {
		if armed.CompareAndSwap(true, false) {
			<-ctx.Done() // slow compute: blocks until cancelled cooperatively
			return ctx.Err()
		}
		return nil
	})
	defer s.Runtime().SetFaultHook(nil)

	t0 := time.Now()
	resp, out := postBackwardFilter(t, ts.URL, p, x, dy)
	elapsed := time.Since(t0)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("deadline mid-compute: status %d: %s", resp.StatusCode, out)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("503 without Retry-After")
	}
	if elapsed < deadline {
		t.Errorf("request returned in %v, before the %v deadline", elapsed, deadline)
	}
	if elapsed > 10*time.Second {
		t.Errorf("request took %v to abort after the %v deadline", elapsed, deadline)
	}
	if got := s.Runtime().Borrowed(); got != 0 {
		t.Errorf("Borrowed() = %d after cancelled compute, want 0", got)
	}

	// The sole worker must have been freed: a follow-up request succeeds.
	resp, out = postBackwardFilter(t, ts.URL, p, x, dy)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("follow-up after deadline: status %d: %s", resp.StatusCode, out)
	}
	if !strings.Contains(scrapeMetrics(t, ts.URL), "winrs_deadline_total 1") {
		t.Error("metrics missing winrs_deadline_total 1")
	}
}

// A client disconnecting mid-compute is not an error and not a deadline:
// the compute aborts cooperatively, nothing is written (nobody is
// listening), and the outcome is counted as a cancellation.
func TestFaultClientDisconnectMidCompute(t *testing.T) {
	s, ts := newTestServer(t)
	p := winrs.Params{N: 1, IH: 12, IW: 12, FH: 3, FW: 3, IC: 3, OC: 3, PH: 1, PW: 1}
	x, dy := randLayer(t, 43, p)

	entered := make(chan struct{})
	var armed atomic.Bool
	armed.Store(true)
	s.Runtime().SetFaultHook(func(ctx context.Context, key serve.PlanKey) error {
		if armed.CompareAndSwap(true, false) {
			close(entered)
			<-ctx.Done()
			return ctx.Err()
		}
		return nil
	})
	defer s.Runtime().SetFaultHook(nil)

	body, err := serve.EncodeRequest(serve.RequestHeader{Op: "backward_filter", Params: p},
		serve.AppendF32(nil, x.Data), serve.AppendF32(nil, dy.Data))
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		<-entered
		cancel() // drop the connection while the compute is in flight
	}()
	req, err := http.NewRequestWithContext(ctx, http.MethodPost,
		ts.URL+"/v1/backward_filter", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err == nil {
		resp.Body.Close()
		t.Fatalf("disconnected request got a response: status %d", resp.StatusCode)
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("client error = %v, want context.Canceled", err)
	}

	waitForMetric(t, ts.URL, "winrs_cancelled_total 1")
	if got := s.Runtime().Borrowed(); got != 0 {
		t.Errorf("Borrowed() = %d after disconnect, want 0", got)
	}
	// The pool must still serve the next (connected) client.
	resp2, out := postBackwardFilter(t, ts.URL, p, x, dy)
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("follow-up after disconnect: status %d: %s", resp2.StatusCode, out)
	}
}

// A client disconnecting while its request is still queued abandons the
// job before it runs; this is counted as a cancellation, distinguished
// from a deadline expiry in the same phase (which answers 503).
func TestFaultClientDisconnectWhileQueued(t *testing.T) {
	s, ts := newFaultServer(t, serve.Config{Workers: 1, QueueDepth: 1, Deadline: 30 * time.Second})
	p := winrs.Params{N: 1, IH: 12, IW: 12, FH: 3, FW: 3, IC: 3, OC: 3, PH: 1, PW: 1}
	x, dy := randLayer(t, 44, p)

	entered := make(chan struct{})
	release := make(chan struct{})
	var armed atomic.Bool
	armed.Store(true)
	s.Runtime().SetFaultHook(func(ctx context.Context, key serve.PlanKey) error {
		if armed.CompareAndSwap(true, false) {
			close(entered)
			select {
			case <-release:
				return nil
			case <-ctx.Done():
				return ctx.Err()
			}
		}
		return nil
	})
	defer s.Runtime().SetFaultHook(nil)

	// Request A occupies the sole worker until released.
	aDone := make(chan int, 1)
	go func() {
		resp, _ := postBackwardFilter(t, ts.URL, p, x, dy)
		aDone <- resp.StatusCode
	}()
	<-entered

	// Request B is admitted to the queue behind A, then its client hangs up.
	body, err := serve.EncodeRequest(serve.RequestHeader{Op: "backward_filter", Params: p},
		serve.AppendF32(nil, x.Data), serve.AppendF32(nil, dy.Data))
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(50 * time.Millisecond) // let B reach the queue
		cancel()
	}()
	req, err := http.NewRequestWithContext(ctx, http.MethodPost,
		ts.URL+"/v1/backward_filter", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	if resp, err := http.DefaultClient.Do(req); err == nil {
		resp.Body.Close()
		t.Fatalf("abandoned queued request got a response: status %d", resp.StatusCode)
	}

	waitForMetric(t, ts.URL, "winrs_cancelled_total 1")

	close(release)
	if code := <-aDone; code != http.StatusOK {
		t.Fatalf("request A: status %d, want 200", code)
	}
	if got := s.Runtime().Borrowed(); got != 0 {
		t.Errorf("Borrowed() = %d, want 0", got)
	}
}

// A hook returning a plain error is mapped like any compute failure: 422,
// counted as a compute error, arenas recycled.
func TestFaultHookErrorMapsToComputeError(t *testing.T) {
	s, ts := newTestServer(t)
	p := winrs.Params{N: 1, IH: 12, IW: 12, FH: 3, FW: 3, IC: 3, OC: 3, PH: 1, PW: 1}
	x, dy := randLayer(t, 45, p)

	var armed atomic.Bool
	armed.Store(true)
	s.Runtime().SetFaultHook(func(ctx context.Context, key serve.PlanKey) error {
		if armed.CompareAndSwap(true, false) {
			return errors.New("injected compute failure")
		}
		return nil
	})
	defer s.Runtime().SetFaultHook(nil)

	resp, out := postBackwardFilter(t, ts.URL, p, x, dy)
	if resp.StatusCode != http.StatusUnprocessableEntity {
		t.Fatalf("status %d: %s", resp.StatusCode, out)
	}
	if !strings.Contains(string(out), "injected compute failure") {
		t.Errorf("error body %q does not carry the compute error", out)
	}
	if got := s.Runtime().Borrowed(); got != 0 {
		t.Errorf("Borrowed() = %d, want 0", got)
	}
	if resp, _ := postBackwardFilter(t, ts.URL, p, x, dy); resp.StatusCode != http.StatusOK {
		t.Fatalf("follow-up after hook error: status %d", resp.StatusCode)
	}
}

// A body at the configured limit is served; one byte over answers 413 (not
// a generic 400), so clients can tell "shrink the payload" from "fix the
// framing".
func TestServeBodyLimitBoundary(t *testing.T) {
	p := winrs.Params{N: 1, IH: 8, IW: 8, FH: 3, FW: 3, IC: 1, OC: 1, PH: 1, PW: 1}
	x, dy := randLayer(t, 46, p)
	body, err := serve.EncodeRequest(serve.RequestHeader{Op: "backward_filter", Params: p},
		serve.AppendF32(nil, x.Data), serve.AppendF32(nil, dy.Data))
	if err != nil {
		t.Fatal(err)
	}

	// Limit exactly at the body size: served.
	_, ts := newFaultServer(t, serve.Config{Workers: 1, QueueDepth: 1, MaxBodyBytes: int64(len(body))})
	resp, out := postBackwardFilter(t, ts.URL, p, x, dy)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("body at limit: status %d: %s", resp.StatusCode, out)
	}

	// One byte under the body size: 413 with the limit in the message.
	_, ts2 := newFaultServer(t, serve.Config{Workers: 1, QueueDepth: 1, MaxBodyBytes: int64(len(body) - 1)})
	resp2, err := http.Post(ts2.URL+"/v1/backward_filter", "application/octet-stream",
		bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	msg, _ := io.ReadAll(resp2.Body)
	if resp2.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("body over limit: status %d: %s", resp2.StatusCode, msg)
	}
	if !strings.Contains(string(msg), "byte limit") {
		t.Errorf("413 body %q does not name the limit", msg)
	}
}

// The lifecycle counters are registered (and rendered) from server start,
// not lazily on first increment, so dashboards see zeros instead of gaps.
func TestFaultMetricsRegisteredUpfront(t *testing.T) {
	_, ts := newTestServer(t)
	metrics := scrapeMetrics(t, ts.URL)
	for _, name := range []string{
		"winrs_panics_total 0",
		"winrs_cancelled_total 0",
		"winrs_write_errors_total 0",
		"winrs_deadline_total 0",
	} {
		if !strings.Contains(metrics, name) {
			t.Errorf("metrics missing %q", name)
		}
	}
}

// Acceptance criterion: cancelling a grouped request mid-interleave leaks
// nothing — the interleaved dispatch drains, the borrowed arenas return to
// the pools (Borrowed() == 0) after every attempt, and a served grouped
// gradient (cancelled runs retried to completion) stays bit-identical to
// the library path. Run under -race this also proves the cancelled batch
// left no straggler still writing into a recycled workspace.
func TestFaultGroupedCancelMidInterleave(t *testing.T) {
	s, _ := newFaultServer(t, serve.Config{Workers: 1, QueueDepth: 4})
	rt := s.Runtime()
	p := winrs.Params{N: 2, IH: 20, IW: 20, FH: 3, FW: 3, IC: 16, OC: 16, PH: 1, PW: 1, Groups: 16}
	x, dy := randLayer(t, 46, p)
	want, err := winrs.BackwardFilter(p, x, dy)
	if err != nil {
		t.Fatal(err)
	}
	key := serve.PlanKey{Params: p}

	cancelled, completed := 0, 0
	for attempt := 0; attempt < 30; attempt++ {
		ctx, cancel := context.WithCancel(context.Background())
		go func(d time.Duration) {
			time.Sleep(d)
			cancel()
		}(time.Duration(attempt%6) * 30 * time.Microsecond)
		err := rt.BackwardFilterPooledCtx(ctx, key, x, dy,
			func(dw *winrs.Tensor, e *serve.Entry, hit bool) error {
				completed++
				for i := range want.Data {
					if dw.Data[i] != want.Data[i] {
						t.Fatalf("attempt %d: served grouped gradient differs at %d", attempt, i)
					}
				}
				return nil
			})
		cancel()
		if err != nil {
			if !errors.Is(err, context.Canceled) {
				t.Fatalf("attempt %d: %v", attempt, err)
			}
			cancelled++
		}
		if got := rt.Borrowed(); got != 0 {
			t.Fatalf("attempt %d: Borrowed() = %d, want 0", attempt, got)
		}
	}
	t.Logf("%d cancelled, %d completed of 30 grouped attempts", cancelled, completed)

	// The pools must be intact: an uncancelled follow-up serves correctly.
	if err := rt.BackwardFilterPooledCtx(context.Background(), key, x, dy,
		func(dw *winrs.Tensor, e *serve.Entry, hit bool) error {
			for i := range want.Data {
				if dw.Data[i] != want.Data[i] {
					t.Fatalf("follow-up gradient differs at %d", i)
				}
			}
			return nil
		}); err != nil {
		t.Fatalf("follow-up after cancellations: %v", err)
	}
	if got := rt.Borrowed(); got != 0 {
		t.Errorf("Borrowed() = %d after follow-up, want 0", got)
	}
}
