// Package serve implements the WinRS serving runtime: a sharded LRU plan
// cache so configuration adaptation (paper §4) runs once per layer
// geometry, sync.Pool-backed workspace arenas so steady-state execution is
// allocation-free, a bounded worker pool with admission control so the
// service degrades predictably under overload, and an HTTP daemon
// (cmd/winrs-serve) exposing the three convolution passes plus /metrics
// and /healthz.
//
// The public winrs wrappers route through the same PlanCache type, so
// library users get plan reuse for free.
package serve

import (
	"container/list"
	"fmt"
	"sync"
	"sync/atomic"

	"winrs/internal/backend"
	"winrs/internal/conv"
	"winrs/internal/core"
	"winrs/internal/tensor"
)

// PlanKey identifies one adapted plan: the layer geometry plus every knob
// that changes the outcome of configuration adaptation.
type PlanKey struct {
	Params conv.Params
	// FP16 selects the emulated Tensor-Core path.
	FP16 bool
	// NSM is the target device's SM count; non-positive means the default
	// hardware model (128 SMs).
	NSM int
	// Segments forces the segment count Z; non-positive means adaptive.
	Segments int
	// Algo selects the backward-filter algorithm: "" for WinRS (the
	// default — existing keys and the public wrappers are unchanged),
	// "auto" for cost-model dispatch (the decision is made once per key
	// and memoized with the entry), or an explicit backend name from
	// internal/backend ("winrs", "gemm", "direct", "fft", "winnf").
	Algo string
}

// precision maps the key's FP16 flag to the backend precision.
func (k PlanKey) precision() backend.Precision {
	if k.FP16 {
		return backend.FP16
	}
	return backend.FP32
}

// Options translates the key back into core configuration options.
func (k PlanKey) Options() []core.Option {
	var opts []core.Option
	if k.NSM > 0 {
		opts = append(opts, core.WithHardware(core.Hardware{NSM: k.NSM}))
	}
	if k.FP16 {
		opts = append(opts, core.WithFP16())
	}
	if k.Segments > 0 {
		opts = append(opts, core.WithSegments(k.Segments))
	}
	return opts
}

// hash is FNV-1a over the key's fields, used only for shard selection.
func (k PlanKey) hash() uint32 {
	h := uint32(2166136261)
	mix := func(v int) {
		h ^= uint32(v)
		h *= 16777619
	}
	p := k.Params
	for _, v := range []int{p.N, p.IH, p.IW, p.FH, p.FW, p.IC, p.OC, p.PH, p.PW, p.Groups, k.NSM, k.Segments} {
		mix(v)
	}
	if k.FP16 {
		mix(1)
	}
	for i := 0; i < len(k.Algo); i++ {
		mix(int(k.Algo[i]))
	}
	return h
}

// Entry is one cached plan together with its workspace pool: bucket arenas
// and output tensors sized for the plan, recycled across executions so the
// steady-state gradient path allocates nothing.
//
// An entry routes to exactly one backend. WinRS entries (Cfg non-nil)
// carry the adapted core.Config plus a workspace pool and run the
// original allocation-free pooled path; non-WinRS entries (Cfg nil) hold
// the backend executor instead and pool only the output tensor — those
// backends manage their own scratch.
type Entry struct {
	Key PlanKey
	// Cfg is the adapted WinRS plan; nil when the entry executes a
	// non-WinRS backend.
	Cfg *core.Config
	// Backend is the resolved backend name ("winrs" when Cfg is non-nil).
	Backend string
	// Decision is the dispatch record that resolved an Algo "auto" key
	// (prediction ranking plus any refinement measurements); zero-valued
	// for explicitly selected algorithms.
	Decision backend.Decision

	exec backend.Backend // executor for non-WinRS entries; nil otherwise

	ws  sync.Pool // *core.Workspace (WinRS entries only)
	out sync.Pool // *tensor.Float32, DW-shaped
}

func newEntry(key PlanKey, cfg *core.Config) *Entry {
	e := &Entry{Key: key, Cfg: cfg, Backend: backendWinRS}
	e.ws.New = func() any { return core.NewWorkspace(cfg) }
	e.out.New = func() any { return tensor.NewFloat32(cfg.Params.DWShape()) }
	return e
}

// backendWinRS is the registry name of the paper's algorithm.
const backendWinRS = "winrs"

func newBackendEntry(key PlanKey, b backend.Backend) *Entry {
	e := &Entry{Key: key, Backend: b.Name(), exec: b}
	e.out.New = func() any { return tensor.NewFloat32(key.Params.DWShape()) }
	return e
}

// AcquireWorkspace borrows a bucket arena sized for the plan. Return it
// with ReleaseWorkspace when the execution's result has been read out.
func (e *Entry) AcquireWorkspace() *core.Workspace { return e.ws.Get().(*core.Workspace) }

// ReleaseWorkspace returns a borrowed arena to the pool.
func (e *Entry) ReleaseWorkspace(ws *core.Workspace) { e.ws.Put(ws) }

func (e *Entry) acquireOut() *tensor.Float32  { return e.out.Get().(*tensor.Float32) }
func (e *Entry) releaseOut(t *tensor.Float32) { e.out.Put(t) }

const cacheShards = 16

// PlanCache is a sharded LRU cache of adapted plans. Gets on different
// shards never contend; within a shard a mutex guards the map + LRU list.
// Capacity is enforced per shard (total capacity / 16, at least one), so a
// pathological key distribution can at worst halve the effective capacity,
// never grow it unboundedly.
type PlanCache struct {
	shardCap     int
	shards       [cacheShards]cacheShard
	hits, misses atomic.Uint64

	// dispatch configures Algo "auto" resolution; set once at
	// construction / via SetDispatchOptions, read on cache misses.
	dispatchMu   sync.Mutex
	dispatchOpts backend.Options
}

type cacheShard struct {
	mu  sync.Mutex
	m   map[PlanKey]*list.Element
	lru list.List // front = most recently used; element values are *Entry
}

// NewPlanCache returns a cache holding about capacity plans (minimum 16,
// one per shard).
func NewPlanCache(capacity int) *PlanCache {
	if capacity < cacheShards {
		capacity = cacheShards
	}
	c := &PlanCache{
		shardCap: (capacity + cacheShards - 1) / cacheShards,
		// Default "auto" behaviour: refine the top-2 predictions with one
		// bounded measurement each. The bound keeps a first request's
		// extra latency in the tens of milliseconds, and the result is
		// memoized with the entry, so the cost is once per geometry.
		dispatchOpts: backend.Options{Measure: true},
	}
	for i := range c.shards {
		c.shards[i].m = make(map[PlanKey]*list.Element)
	}
	return c
}

// SetDispatchOptions overrides how Algo "auto" keys are resolved (e.g.
// disabling measurement refinement). It affects future misses only.
func (c *PlanCache) SetDispatchOptions(o backend.Options) {
	c.dispatchMu.Lock()
	c.dispatchOpts = o
	c.dispatchMu.Unlock()
}

func (c *PlanCache) dispatchOptions() backend.Options {
	c.dispatchMu.Lock()
	defer c.dispatchMu.Unlock()
	return c.dispatchOpts
}

// Get returns the cached plan for key, running configuration adaptation
// (and, for Algo "auto" keys, backend dispatch) on a miss. The boolean
// reports a cache hit. Concurrent misses on the same key may run
// adaptation more than once; the first insert wins and the duplicates are
// dropped (Configure and Dispatch are deterministic up to measurement
// noise, so all results are equivalent).
func (c *PlanCache) Get(key PlanKey) (*Entry, bool, error) {
	s := &c.shards[key.hash()%cacheShards]
	s.mu.Lock()
	if el, ok := s.m[key]; ok {
		s.lru.MoveToFront(el)
		s.mu.Unlock()
		c.hits.Add(1)
		return el.Value.(*Entry), true, nil
	}
	s.mu.Unlock()
	c.misses.Add(1)

	// Algo resolution and configuration adaptation run outside the shard
	// lock: they are CPU-bound (dispatch may even measure) and must not
	// serialize hits behind them.
	e, err := c.buildEntry(key)
	if err != nil {
		return nil, false, err
	}

	s.mu.Lock()
	defer s.mu.Unlock()
	if el, ok := s.m[key]; ok { // lost the insert race
		s.lru.MoveToFront(el)
		return el.Value.(*Entry), false, nil
	}
	s.m[key] = s.lru.PushFront(e)
	for s.lru.Len() > c.shardCap {
		old := s.lru.Back()
		s.lru.Remove(old)
		delete(s.m, old.Value.(*Entry).Key)
	}
	return e, false, nil
}

// buildEntry resolves the key's algorithm to an executable entry.
func (c *PlanCache) buildEntry(key PlanKey) (*Entry, error) {
	reg := backend.Default()
	switch key.Algo {
	case "", backendWinRS:
		// The paper's algorithm, exactly as before: the zero-value Algo
		// keeps every pre-existing key (and the public winrs wrappers) on
		// the pooled WinRS path.
		cfg, err := core.Configure(key.Params, key.Options()...)
		if err != nil {
			return nil, err
		}
		return newEntry(key, cfg), nil
	case "auto":
		d, err := reg.Dispatch(key.Params, key.precision(), c.dispatchOptions())
		if err != nil {
			return nil, err
		}
		var e *Entry
		if d.Backend == backendWinRS {
			cfg, err := core.Configure(key.Params, key.Options()...)
			if err != nil {
				return nil, err
			}
			e = newEntry(key, cfg)
		} else {
			b, _ := reg.Get(d.Backend)
			e = newBackendEntry(key, b)
		}
		e.Decision = d
		return e, nil
	default:
		b, ok := reg.Get(key.Algo)
		if !ok {
			return nil, fmt.Errorf("serve: unknown algo %q", key.Algo)
		}
		if !b.Supports(key.Params, key.precision()) {
			return nil, fmt.Errorf("serve: algo %q does not support %v at %v",
				key.Algo, key.Params, key.precision())
		}
		return newBackendEntry(key, b), nil
	}
}

// Len returns the number of cached plans.
func (c *PlanCache) Len() int {
	n := 0
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		n += s.lru.Len()
		s.mu.Unlock()
	}
	return n
}

// Stats returns the cumulative hit and miss counts.
func (c *PlanCache) Stats() (hits, misses uint64) {
	return c.hits.Load(), c.misses.Load()
}

// Hits returns the cumulative hit count. Metric callbacks that export hits
// and misses as separate series read each counter exactly once through
// these split accessors instead of calling Stats twice and discarding half
// of each torn snapshot.
func (c *PlanCache) Hits() uint64 { return c.hits.Load() }

// Misses returns the cumulative miss count; see Hits.
func (c *PlanCache) Misses() uint64 { return c.misses.Load() }
