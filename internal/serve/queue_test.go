package serve

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestDispatcherRunsJobs(t *testing.T) {
	d := NewDispatcher(4, 8)
	defer d.Close()
	var n atomic.Int64
	var wg sync.WaitGroup
	for i := 0; i < 32; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			// 32 submitters against 4 workers + queue 8 legitimately overflow;
			// a client retries on 429 and so does this test.
			for {
				err := d.Do(context.Background(), func() { n.Add(1) })
				if err == nil {
					return
				}
				if !errors.Is(err, ErrOverloaded) {
					t.Error(err)
					return
				}
			}
		}()
	}
	wg.Wait()
	if n.Load() != 32 {
		t.Errorf("ran %d jobs, want 32", n.Load())
	}
}

// With every worker blocked and the queue full, the next submission must be
// rejected immediately — the deterministic 429 path.
func TestDispatcherOverload(t *testing.T) {
	d := NewDispatcher(1, 0)
	defer d.Close()
	started := make(chan struct{})
	release := make(chan struct{})
	go func() {
		// An unbuffered queue admits only when the worker is parked on the
		// receive; retry until the blocker lands.
		for errors.Is(d.Do(context.Background(), func() {
			close(started)
			<-release
		}), ErrOverloaded) {
		}
	}()
	<-started // the single worker is now busy; queue depth 0 admits nothing

	err := d.Do(context.Background(), func() { t.Error("overload job must not run") })
	if !errors.Is(err, ErrOverloaded) {
		t.Errorf("err = %v, want ErrOverloaded", err)
	}
	close(release)
}

// A job whose context expires while still queued is abandoned and never
// runs; Do reports the context error.
func TestDispatcherDeadlineWhileQueued(t *testing.T) {
	d := NewDispatcher(1, 1)
	defer d.Close()
	started := make(chan struct{})
	release := make(chan struct{})
	go d.Do(context.Background(), func() {
		close(started)
		<-release
	})
	<-started

	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	ran := false
	err := d.Do(ctx, func() { ran = true })
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Errorf("err = %v, want DeadlineExceeded", err)
	}
	close(release)
	d.Close() // drain: if the abandoned job were to run, it would run by now
	if ran {
		t.Error("abandoned job ran")
	}
}

// Once started, a job runs to completion and Do waits for it even when the
// context expires mid-run (so response writing inside jobs stays race-free).
func TestDispatcherRunningJobCompletes(t *testing.T) {
	d := NewDispatcher(1, 1)
	defer d.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	done := false
	err := d.Do(ctx, func() {
		time.Sleep(60 * time.Millisecond) // outlives the deadline
		done = true
	})
	if err != nil {
		t.Errorf("err = %v, want nil for a job that started", err)
	}
	if !done {
		t.Error("Do returned before the running job finished")
	}
}

func TestDispatcherClose(t *testing.T) {
	d := NewDispatcher(2, 4)
	d.Close()
	if err := d.Do(context.Background(), func() {}); !errors.Is(err, ErrClosed) {
		t.Errorf("err = %v, want ErrClosed", err)
	}
	d.Close() // idempotent
}
