package serve

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestDispatcherRunsJobs(t *testing.T) {
	d := NewDispatcher(4, 8)
	defer d.Close()
	var n atomic.Int64
	var wg sync.WaitGroup
	for i := 0; i < 32; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			// 32 submitters against 4 workers + queue 8 legitimately overflow;
			// a client retries on 429 and so does this test.
			for {
				err := d.Do(context.Background(), func(context.Context) { n.Add(1) })
				if err == nil {
					return
				}
				if !errors.Is(err, ErrOverloaded) {
					t.Error(err)
					return
				}
			}
		}()
	}
	wg.Wait()
	if n.Load() != 32 {
		t.Errorf("ran %d jobs, want 32", n.Load())
	}
}

// With every worker blocked and the queue full, the next submission must be
// rejected immediately — the deterministic 429 path.
func TestDispatcherOverload(t *testing.T) {
	d := NewDispatcher(1, 0)
	defer d.Close()
	started := make(chan struct{})
	release := make(chan struct{})
	go func() {
		// An unbuffered queue admits only when the worker is parked on the
		// receive; retry until the blocker lands.
		for errors.Is(d.Do(context.Background(), func(context.Context) {
			close(started)
			<-release
		}), ErrOverloaded) {
		}
	}()
	<-started // the single worker is now busy; queue depth 0 admits nothing

	err := d.Do(context.Background(), func(context.Context) { t.Error("overload job must not run") })
	if !errors.Is(err, ErrOverloaded) {
		t.Errorf("err = %v, want ErrOverloaded", err)
	}
	close(release)
}

// A job whose context expires while still queued is abandoned and never
// runs; Do reports the context error.
func TestDispatcherDeadlineWhileQueued(t *testing.T) {
	d := NewDispatcher(1, 1)
	defer d.Close()
	started := make(chan struct{})
	release := make(chan struct{})
	go d.Do(context.Background(), func(context.Context) {
		close(started)
		<-release
	})
	<-started

	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	ran := false
	err := d.Do(ctx, func(context.Context) { ran = true })
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Errorf("err = %v, want DeadlineExceeded", err)
	}
	close(release)
	d.Close() // drain: if the abandoned job were to run, it would run by now
	if ran {
		t.Error("abandoned job ran")
	}
}

// Once started, a job runs to completion and Do waits for it even when the
// context expires mid-run (so response writing inside jobs stays race-free).
func TestDispatcherRunningJobCompletes(t *testing.T) {
	d := NewDispatcher(1, 1)
	defer d.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	done := false
	err := d.Do(ctx, func(context.Context) {
		time.Sleep(60 * time.Millisecond) // outlives the deadline
		done = true
	})
	if err != nil {
		t.Errorf("err = %v, want nil for a job that started", err)
	}
	if !done {
		t.Error("Do returned before the running job finished")
	}
}

// A panicking job must be recovered on the worker: Do returns a
// *PanicError matching ErrPanic (with the panic value and a stack), the
// worker survives to run subsequent jobs, and the in-flight gauge returns
// to zero.
func TestDispatcherPanicIsolated(t *testing.T) {
	d := NewDispatcher(1, 4) // one worker: a killed worker would deadlock the follow-up
	defer d.Close()

	err := d.Do(context.Background(), func(context.Context) { panic("boom") })
	if !errors.Is(err, ErrPanic) {
		t.Fatalf("err = %v, want ErrPanic", err)
	}
	var pe *PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("err = %T, want *PanicError", err)
	}
	if pe.Val != "boom" {
		t.Errorf("panic value = %v, want boom", pe.Val)
	}
	if len(pe.Stack) == 0 {
		t.Error("panic stack not captured")
	}
	if got := d.InFlight(); got != 0 {
		t.Errorf("InFlight = %d after panic, want 0", got)
	}

	// The sole worker must still be alive and serving.
	ran := false
	if err := d.Do(context.Background(), func(context.Context) { ran = true }); err != nil {
		t.Fatalf("follow-up job after panic: %v", err)
	}
	if !ran {
		t.Error("follow-up job did not run on the surviving worker")
	}
}

// A panic's unwinding must still run the job's own defers (resource
// cleanup) before the worker moves on.
func TestDispatcherPanicRunsJobDefers(t *testing.T) {
	d := NewDispatcher(1, 1) // depth ≥ 1: admission must not race worker startup
	defer d.Close()
	cleaned := false
	err := d.Do(context.Background(), func(context.Context) {
		defer func() { cleaned = true }()
		panic("boom")
	})
	if !errors.Is(err, ErrPanic) {
		t.Fatalf("err = %v, want ErrPanic", err)
	}
	if !cleaned {
		t.Error("job defer did not run during panic unwinding")
	}
}

// A running job receives the submission context, so cancelling the
// context is observable inside fn — the hook cooperative mid-compute
// cancellation hangs off.
func TestDispatcherCancelWhileRunning(t *testing.T) {
	d := NewDispatcher(1, 1) // depth ≥ 1: admission must not race worker startup
	defer d.Close()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	sawCancel := make(chan bool, 1)
	started := make(chan struct{})
	go func() {
		<-started
		cancel()
	}()
	err := d.Do(ctx, func(jctx context.Context) {
		close(started)
		select {
		case <-jctx.Done():
			sawCancel <- true
		case <-time.After(5 * time.Second):
			sawCancel <- false
		}
	})
	if err != nil {
		t.Fatalf("err = %v, want nil for a job that started and returned", err)
	}
	if !<-sawCancel {
		t.Error("job never observed the cancelled context")
	}
}

func TestDispatcherClose(t *testing.T) {
	d := NewDispatcher(2, 4)
	d.Close()
	if err := d.Do(context.Background(), func(context.Context) {}); !errors.Is(err, ErrClosed) {
		t.Errorf("err = %v, want ErrClosed", err)
	}
	d.Close() // idempotent
}
