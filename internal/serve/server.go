package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log"
	"net/http"
	"runtime"
	"sync"
	"time"

	"winrs/internal/backend"
	"winrs/internal/core"
	"winrs/internal/fp16"
	"winrs/internal/obs"
	"winrs/internal/tensor"
)

// Config sizes the server. Zero values select the defaults.
type Config struct {
	// Workers is the number of requests computed concurrently
	// (default: GOMAXPROCS).
	Workers int
	// QueueDepth is how many admitted requests may wait for a worker
	// before further requests are rejected with 429 (default 64;
	// negative means 0 — admit only onto a free worker).
	QueueDepth int
	// Deadline bounds one request's queue + compute time (default 30s).
	Deadline time.Duration
	// CacheCapacity is the plan-cache size in plans (default 256).
	CacheCapacity int
	// MaxBodyBytes caps the request body (default 1 GiB).
	MaxBodyBytes int64
	// DefaultAlgo is the backward-filter algorithm used when a request's
	// header omits "algo": "" or "winrs" (default), "auto" for
	// cost-model dispatch, or an explicit backend name.
	DefaultAlgo string
	// ForceAlgo, when non-empty, overrides the algo of every
	// backward-filter request, including explicit headers: "winrs" pins
	// the paper's algorithm (disabling dispatch entirely), "auto" forces
	// dispatch for all traffic.
	ForceAlgo string
	// DispatchMeasureOff disables the one-shot measurement refinement of
	// "auto" dispatch, leaving the cost-model prediction alone to decide.
	DispatchMeasureOff bool
	// BatchMax caps one coalesced batch's member count; together with a
	// positive BatchLinger it enables cross-request micro-batching of
	// backward-filter requests that share a plan-cache key. Values ≤ 1
	// disable coalescing (the default: every request runs alone, exactly
	// the pre-batching behavior).
	BatchMax int
	// BatchLinger is how long the first member of a batch waits for
	// same-key company before the batch seals and executes. Zero disables
	// coalescing.
	BatchLinger time.Duration
}

func (c *Config) fillDefaults() {
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.QueueDepth == 0 {
		c.QueueDepth = 64
	}
	if c.QueueDepth < 0 {
		c.QueueDepth = 0
	}
	if c.Deadline <= 0 {
		c.Deadline = 30 * time.Second
	}
	if c.CacheCapacity <= 0 {
		c.CacheCapacity = 256
	}
	if c.MaxBodyBytes <= 0 {
		c.MaxBodyBytes = 1 << 30
	}
}

// Server is the winrs-serve HTTP service: the runtime (plan cache +
// workspace pools) behind a bounded dispatcher, plus the stats surface.
type Server struct {
	cfg   Config
	rt    *Runtime
	disp  *Dispatcher
	coal  *Coalescer // nil when micro-batching is disabled
	reg   *obs.Registry
	stats *Stats
	start time.Time

	// closing is cancelled by Close before the dispatcher drains; every
	// in-flight request's context is derived from it, so shutdown is
	// bounded by cooperative cancellation instead of the slowest compute.
	closing     context.Context
	cancelClose context.CancelFunc
}

// NewServer builds a server; call Close to drain its workers.
func NewServer(cfg Config) *Server {
	cfg.fillDefaults()
	s := &Server{
		cfg:   cfg,
		rt:    NewRuntime(cfg.CacheCapacity),
		disp:  NewDispatcher(cfg.Workers, cfg.QueueDepth),
		reg:   obs.NewRegistry(),
		start: time.Now(),
	}
	s.closing, s.cancelClose = context.WithCancel(context.Background())
	if cfg.DispatchMeasureOff {
		s.rt.cache.SetDispatchOptions(backend.Options{Measure: false})
	}
	s.stats = newStats(s.reg)
	if cfg.BatchMax > 1 && cfg.BatchLinger > 0 {
		s.coal = newCoalescer(s.disp, s.rt, cfg.BatchMax, cfg.BatchLinger, s.closing,
			s.stats.Batches, s.stats.Batched, s.stats.BatchOccupancy)
	}
	s.reg.GaugeFunc("winrs_uptime_seconds", "Seconds since the server started.",
		func() float64 { return time.Since(s.start).Seconds() })
	s.reg.CounterFunc("winrs_plan_cache_hits_total", "Plan-cache hits.",
		s.rt.cache.Hits)
	s.reg.CounterFunc("winrs_plan_cache_misses_total", "Plan-cache misses.",
		s.rt.cache.Misses)
	s.reg.GaugeFunc("winrs_plan_cache_entries", "Plans currently cached.",
		func() float64 { return float64(s.rt.cache.Len()) })
	s.reg.GaugeFunc("winrs_queue_depth", "Admitted requests waiting for a worker.",
		func() float64 { return float64(s.disp.QueueDepth()) })
	s.reg.GaugeFunc("winrs_requests_in_flight", "Requests currently computing.",
		func() float64 { return float64(s.disp.InFlight()) })
	return s
}

// Registry exposes the server's metric registry (embedding, extra series).
func (s *Server) Registry() *obs.Registry { return s.reg }

// Runtime exposes the server's runtime (tests, embedding).
func (s *Server) Runtime() *Runtime { return s.rt }

// Stats exposes the server's serving counters (tests, embedding, the
// saturation benchmark's occupancy readout).
func (s *Server) Stats() *Stats { return s.stats }

// Close drains the worker pool. In-flight computes are cancelled
// cooperatively (they abort at the next chunk claim and their requests
// answer 503), so the drain is bounded by one chunk's work rather than by
// the slowest request; new submissions get 503.
func (s *Server) Close() {
	s.cancelClose()
	if s.coal != nil {
		s.coal.Close() // flush pending batches before the dispatcher drains
	}
	s.disp.Close()
}

// Handler returns the HTTP mux:
//
//	POST /v1/backward_filter   ∇W from X, ∇Y (f32 or f16 payloads)
//	POST /v1/forward           Y from X, W
//	POST /v1/backward_data     ∇X from ∇Y, W
//	GET  /healthz              liveness JSON
//	GET  /metrics              Prometheus-style text metrics
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/backward_filter", s.opHandler(OpBackwardFilter))
	mux.HandleFunc("POST /v1/forward", s.opHandler(OpForward))
	mux.HandleFunc("POST /v1/backward_data", s.opHandler(OpBackwardData))
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	return mux
}

func (s *Server) opHandler(op Op) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) { s.serveOp(op, w, r) }
}

// clientError replies with status and counts the request as malformed.
func (s *Server) clientError(w http.ResponseWriter, status int, format string, args ...any) {
	s.stats.ClientErr.Add(1)
	http.Error(w, fmt.Sprintf(format, args...), status)
}

// serveOp drives one request through the full lifecycle: decode +
// validate (admission), dispatcher queue, compute, response. Every
// outcome maps to exactly one status and one stats counter, and nothing
// is written after the response has been committed.
func (s *Server) serveOp(op Op, w http.ResponseWriter, r *http.Request) {
	t0 := time.Now()
	hdr, payload, err := DecodeRequest(http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes))
	if err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			s.clientError(w, http.StatusRequestEntityTooLarge,
				"request body exceeds the %d-byte limit", tooBig.Limit)
			return
		}
		s.clientError(w, http.StatusBadRequest, "%v", err)
		return
	}
	if hdr.Op != "" {
		if declared, err := ParseOp(hdr.Op); err != nil || declared != op {
			s.clientError(w, http.StatusBadRequest, "header op %q does not match endpoint %q", hdr.Op, op)
			return
		}
	}
	p := hdr.Params
	if err := p.Validate(); err != nil {
		s.clientError(w, http.StatusBadRequest, "%v", err)
		return
	}
	esz := hdr.DType.elemBytes()
	if esz == 0 {
		s.clientError(w, http.StatusBadRequest, "unknown dtype %q", hdr.DType)
		return
	}
	if hdr.DType == F16 && op != OpBackwardFilter {
		s.clientError(w, http.StatusBadRequest, "dtype f16 is only supported for backward_filter")
		return
	}
	aShape, bShape, _ := OperandShapes(op, p)
	if want := (aShape.Elems() + bShape.Elems()) * esz; len(payload) != want {
		s.clientError(w, http.StatusBadRequest,
			"payload %d bytes, want %d (%v + %v × %d-byte elements)",
			len(payload), want, aShape, bShape, esz)
		return
	}
	aBytes := payload[:aShape.Elems()*esz]
	bBytes := payload[aShape.Elems()*esz:]
	if hdr.Algo != "" && op != OpBackwardFilter {
		s.clientError(w, http.StatusBadRequest, "algo is only supported for backward_filter")
		return
	}
	algo, err := s.resolveAlgo(op, hdr.Algo)
	if err != nil {
		s.clientError(w, http.StatusBadRequest, "%v", err)
		return
	}
	key := PlanKey{Params: p, FP16: hdr.DType == F16, NSM: hdr.NSM, Segments: hdr.Segments, Algo: algo}

	ctx, cancel := context.WithTimeout(r.Context(), s.cfg.Deadline)
	defer cancel()
	// Server shutdown cancels every in-flight request, bounding the drain.
	stopClose := context.AfterFunc(s.closing, cancel)
	defer stopClose()

	// The job runs on a dispatcher worker; Do blocks until it finishes (or
	// it is abandoned while still queued, in which case it never runs), so
	// writing the response from the job is race-free. ctx reaches the
	// compute through the dispatcher, aborting it at the next chunk claim
	// on deadline expiry, client disconnect or server shutdown.
	rw := &commitTracker{ResponseWriter: w}
	var jobErr error
	if s.coal != nil && op == OpBackwardFilter {
		// Coalesced path: the member executes inside its key's batch (one
		// dispatcher slot, shared plan resolution and arenas) with the same
		// blocking contract, so reading jobErr after Do stays race-free.
		err = s.coal.Do(ctx, key, func(mctx context.Context, bx *BatchExec) {
			jobErr = s.computeBatched(mctx, key, hdr.DType, aBytes, bBytes, rw, bx)
		})
	} else {
		err = s.disp.Do(ctx, func(jctx context.Context) {
			jobErr = s.compute(jctx, op, key, hdr.DType, aBytes, bBytes, rw)
		})
	}
	switch {
	case errors.Is(err, ErrOverloaded):
		s.stats.Rejected.Add(1)
		w.Header().Set("Retry-After", "1")
		http.Error(w, "queue full, retry later", http.StatusTooManyRequests)
	case errors.Is(err, ErrPanic):
		// The worker recovered and survives; this request answers 500.
		var pe *PanicError
		errors.As(err, &pe)
		s.stats.Panics.Add(1)
		log.Printf("serve: panic in %s compute: %v\n%s", op, pe.Val, pe.Stack)
		if !rw.committed {
			http.Error(w, "internal error during compute", http.StatusInternalServerError)
		}
	case errors.Is(err, context.Canceled):
		s.cancelledWhile(op, "queued", r, w)
	case errors.Is(err, context.DeadlineExceeded):
		s.stats.Deadline.Add(1)
		w.Header().Set("Retry-After", "1")
		http.Error(w, "deadline expired while queued", http.StatusServiceUnavailable)
	case err != nil: // ErrClosed
		http.Error(w, "server shutting down", http.StatusServiceUnavailable)
	case jobErr != nil:
		s.jobError(op, jobErr, rw, r, w)
	default:
		s.stats.Observe(op, time.Since(t0))
	}
}

// resolveAlgo folds the request's algo with the server's default/force
// configuration and normalizes it into a plan-key Algo: the precedence is
// ForceAlgo > header > DefaultAlgo, "winrs" canonicalizes to "" (so
// explicit-WinRS requests share cache entries with default ones), and an
// unknown name is a client error. Non-BFC ops always resolve to "".
func (s *Server) resolveAlgo(op Op, hdrAlgo string) (string, error) {
	if op != OpBackwardFilter {
		return "", nil
	}
	algo := hdrAlgo
	if algo == "" {
		algo = s.cfg.DefaultAlgo
	}
	if s.cfg.ForceAlgo != "" {
		algo = s.cfg.ForceAlgo
	}
	switch algo {
	case "", "winrs":
		return "", nil
	case "auto":
		return "auto", nil
	}
	if _, ok := backend.Default().Get(algo); !ok {
		return "", fmt.Errorf("unknown algo %q (want \"auto\" or one of %v)",
			algo, backend.Default().Names())
	}
	return algo, nil
}

// cancelledWhile handles a context.Canceled outcome, which has two
// sources: the client disconnected (its request context is done — nobody
// is listening, so log + count and write nothing) or the server is
// shutting down (answer 503 so a still-connected client retries
// elsewhere).
func (s *Server) cancelledWhile(op Op, phase string, r *http.Request, w http.ResponseWriter) {
	if r.Context().Err() != nil {
		s.stats.Cancelled.Add(1)
		log.Printf("serve: %s request abandoned while %s: client disconnected", op, phase)
		return
	}
	w.Header().Set("Retry-After", "1")
	http.Error(w, "server shutting down", http.StatusServiceUnavailable)
}

// jobError maps a non-nil compute return to status + counter. The
// committed flag decides whether an error status can still be sent: once
// the response body has started, a failure can only be logged and counted
// (an http.Error there would be a superfluous WriteHeader on a broken
// connection).
func (s *Server) jobError(op Op, jobErr error, rw *commitTracker, r *http.Request, w http.ResponseWriter) {
	switch {
	case rw.committed:
		// The only way to fail after commit is the response write itself
		// (compute writes nothing until it has a result).
		s.stats.WriteErr.Add(1)
		log.Printf("serve: %s response write failed mid-body: %v", op, jobErr)
	case errors.Is(jobErr, context.Canceled):
		// The execution was cancelled cooperatively mid-compute.
		s.cancelledWhile(op, "computing", r, w)
	case errors.Is(jobErr, context.DeadlineExceeded):
		s.stats.Deadline.Add(1)
		w.Header().Set("Retry-After", "1")
		http.Error(w, "deadline expired during compute", http.StatusServiceUnavailable)
	default:
		// Plan construction / compute rejected the geometry.
		s.stats.ComputeErr.Add(1)
		http.Error(w, jobErr.Error(), http.StatusUnprocessableEntity)
	}
}

// commitTracker records whether the response has been committed (status
// line sent or body started). It is written by the dispatcher worker and
// read by the handler after Do returns; Do's completion edge orders the
// two, so no further synchronization is needed.
type commitTracker struct {
	http.ResponseWriter
	committed bool
}

func (c *commitTracker) WriteHeader(code int) {
	c.committed = true
	c.ResponseWriter.WriteHeader(code)
}

func (c *commitTracker) Write(p []byte) (int, error) {
	c.committed = true
	return c.ResponseWriter.Write(p)
}

// Operand ingest pools: request-decode buffers reused across requests so
// a steady stream of backward-filter calls stops allocating two operand
// tensors per request. The buffers go back to the pool on every normal
// return — the execution paths are synchronous and leave the operands
// quiescent even on cancellation (arenas drained before return) — and are
// deliberately dropped on panic, the workspace-pool convention.
var (
	halfOperandPool = sync.Pool{New: func() any { return new([]fp16.Bits) }}
	f32OperandPool  = sync.Pool{New: func() any { return new([]float32) }}
)

// getHalfOperand shapes a pooled binary16 buffer into a tensor. Contents
// are stale until the decode fills every element.
func getHalfOperand(shape tensor.Shape) (*tensor.Half, *[]fp16.Bits) {
	bp := halfOperandPool.Get().(*[]fp16.Bits)
	if n := shape.Elems(); cap(*bp) < n {
		*bp = make([]fp16.Bits, n)
	} else {
		*bp = (*bp)[:n]
	}
	return &tensor.Half{Shape: shape, Data: *bp}, bp
}

// getF32Operand is getHalfOperand for float32 operands.
func getF32Operand(shape tensor.Shape) (*tensor.Float32, *[]float32) {
	bp := f32OperandPool.Get().(*[]float32)
	if n := shape.Elems(); cap(*bp) < n {
		*bp = make([]float32, n)
	} else {
		*bp = (*bp)[:n]
	}
	return &tensor.Float32{Shape: shape, Data: *bp}, bp
}

// compute decodes the operands, executes the pass and, on success, writes
// the response. It never writes before it has a result, so serveOp can
// still set an error status on every pre-write failure. The backward-
// filter paths poll ctx between chunk claims and abort with ctx.Err();
// forward and backward-data check it at the boundaries only (their
// computes are not yet cancellation-aware).
func (s *Server) compute(ctx context.Context, op Op, key PlanKey, dt DType, aBytes, bBytes []byte, w http.ResponseWriter) error {
	p := key.Params
	switch op {
	case OpBackwardFilter:
		if dt == F16 {
			x, xb := getHalfOperand(p.XShape())
			dy, dyb := getHalfOperand(p.DYShape())
			err := DecodeF16(aBytes, x.Data)
			if err == nil {
				err = DecodeF16(bBytes, dy.Data)
			}
			if err == nil {
				err = s.rt.BackwardFilterHalfPooledCtx(ctx, key, x, dy, func(dw *tensor.Float32, e *Entry, hit bool) error {
					s.stats.DispatchTo(e.Backend)
					return writeResult(w, dw, e, hit)
				})
			}
			halfOperandPool.Put(xb)
			halfOperandPool.Put(dyb)
			return err
		}
		x, xb := getF32Operand(p.XShape())
		dy, dyb := getF32Operand(p.DYShape())
		err := DecodeF32(aBytes, x.Data)
		if err == nil {
			err = DecodeF32(bBytes, dy.Data)
		}
		if err == nil {
			err = s.rt.BackwardFilterPooledCtx(ctx, key, x, dy, func(dw *tensor.Float32, e *Entry, hit bool) error {
				s.stats.DispatchTo(e.Backend)
				return writeResult(w, dw, e, hit)
			})
		}
		f32OperandPool.Put(xb)
		f32OperandPool.Put(dyb)
		return err
	case OpForward:
		x, wt := tensor.NewFloat32(p.XShape()), tensor.NewFloat32(p.DWShape())
		if err := DecodeF32(aBytes, x.Data); err != nil {
			return err
		}
		if err := DecodeF32(bBytes, wt.Data); err != nil {
			return err
		}
		if err := ctx.Err(); err != nil {
			return err
		}
		y, err := core.Forward(p, x, wt)
		if err != nil {
			return err
		}
		return writeResult(w, y, nil, false)
	case OpBackwardData:
		dy, wt := tensor.NewFloat32(p.DYShape()), tensor.NewFloat32(p.DWShape())
		if err := DecodeF32(aBytes, dy.Data); err != nil {
			return err
		}
		if err := DecodeF32(bBytes, wt.Data); err != nil {
			return err
		}
		if err := ctx.Err(); err != nil {
			return err
		}
		dx, err := core.BackwardData(p, dy, wt)
		if err != nil {
			return err
		}
		return writeResult(w, dx, nil, false)
	}
	return fmt.Errorf("serve: invalid op %v", op)
}

// computeBatched is the backward-filter arm of compute for a coalesced
// member: operands are decoded on the batch's worker and executed through
// the batch's shared plan entry and arenas. Response bytes are produced by
// the same writeResult the per-request path uses, so batched responses are
// byte-for-byte identical to un-batched ones.
func (s *Server) computeBatched(ctx context.Context, key PlanKey, dt DType,
	aBytes, bBytes []byte, w http.ResponseWriter, bx *BatchExec) error {
	p := key.Params
	if dt == F16 {
		x, xb := getHalfOperand(p.XShape())
		dy, dyb := getHalfOperand(p.DYShape())
		err := DecodeF16(aBytes, x.Data)
		if err == nil {
			err = DecodeF16(bBytes, dy.Data)
		}
		if err == nil {
			err = bx.BackwardFilterHalf(ctx, x, dy, func(dw *tensor.Float32, e *Entry, hit bool) error {
				s.stats.DispatchTo(e.Backend)
				return writeResult(w, dw, e, hit)
			})
		}
		halfOperandPool.Put(xb)
		halfOperandPool.Put(dyb)
		return err
	}
	x, xb := getF32Operand(p.XShape())
	dy, dyb := getF32Operand(p.DYShape())
	err := DecodeF32(aBytes, x.Data)
	if err == nil {
		err = DecodeF32(bBytes, dy.Data)
	}
	if err == nil {
		err = bx.BackwardFilter(ctx, x, dy, func(dw *tensor.Float32, e *Entry, hit bool) error {
			s.stats.DispatchTo(e.Backend)
			return writeResult(w, dw, e, hit)
		})
	}
	f32OperandPool.Put(xb)
	f32OperandPool.Put(dyb)
	return err
}

// writeResult sends t as raw little-endian float32 with metadata headers.
// The cache/backend headers are only meaningful for the plan-cached ops,
// which pass their entry; forward/backward_data pass nil. The kernel-pair
// and segment headers appear only on WinRS-executed results (other
// backends have no adapted WinRS plan).
func writeResult(w http.ResponseWriter, t *tensor.Float32, e *Entry, hit bool) error {
	h := w.Header()
	h.Set("Content-Type", "application/octet-stream")
	h.Set("X-Winrs-Shape", t.Shape.String())
	h.Set("Content-Length", fmt.Sprint(4*len(t.Data)))
	if e != nil {
		h.Set("X-Winrs-Backend", e.Backend)
		if e.Cfg != nil {
			h.Set("X-Winrs-Kernel-Pair", e.Cfg.Pair.String())
			h.Set("X-Winrs-Segments", fmt.Sprint(e.Cfg.Z()))
		}
		if hit {
			h.Set("X-Winrs-Cache", "hit")
		} else {
			h.Set("X-Winrs-Cache", "miss")
		}
	}
	_, err := w.Write(AppendF32(make([]byte, 0, 4*len(t.Data)), t.Data))
	return err
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	hits, misses := s.rt.cache.Stats()
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(map[string]any{
		"status":         "ok",
		"uptime_seconds": time.Since(s.start).Seconds(),
		"plans_cached":   s.rt.cache.Len(),
		"cache_hits":     hits,
		"cache_misses":   misses,
		"queue_depth":    s.disp.QueueDepth(),
		"in_flight":      s.disp.InFlight(),
	})
}

// handleMetrics renders the server registry, the process-wide default
// registry (runtime gauges plus anything components registered globally),
// and the per-stage execution trace when obs tracing is enabled.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	if err := s.reg.WriteText(w); err != nil {
		return
	}
	if err := obs.Default.WriteText(w); err != nil {
		return
	}
	obs.WriteTraceTo(w)
}
