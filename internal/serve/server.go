package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"runtime"
	"time"

	"winrs/internal/core"
	"winrs/internal/obs"
	"winrs/internal/tensor"
)

// Config sizes the server. Zero values select the defaults.
type Config struct {
	// Workers is the number of requests computed concurrently
	// (default: GOMAXPROCS).
	Workers int
	// QueueDepth is how many admitted requests may wait for a worker
	// before further requests are rejected with 429 (default 64;
	// negative means 0 — admit only onto a free worker).
	QueueDepth int
	// Deadline bounds one request's queue + compute time (default 30s).
	Deadline time.Duration
	// CacheCapacity is the plan-cache size in plans (default 256).
	CacheCapacity int
	// MaxBodyBytes caps the request body (default 1 GiB).
	MaxBodyBytes int64
}

func (c *Config) fillDefaults() {
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.QueueDepth == 0 {
		c.QueueDepth = 64
	}
	if c.QueueDepth < 0 {
		c.QueueDepth = 0
	}
	if c.Deadline <= 0 {
		c.Deadline = 30 * time.Second
	}
	if c.CacheCapacity <= 0 {
		c.CacheCapacity = 256
	}
	if c.MaxBodyBytes <= 0 {
		c.MaxBodyBytes = 1 << 30
	}
}

// Server is the winrs-serve HTTP service: the runtime (plan cache +
// workspace pools) behind a bounded dispatcher, plus the stats surface.
type Server struct {
	cfg   Config
	rt    *Runtime
	disp  *Dispatcher
	reg   *obs.Registry
	stats *Stats
	start time.Time
}

// NewServer builds a server; call Close to drain its workers.
func NewServer(cfg Config) *Server {
	cfg.fillDefaults()
	s := &Server{
		cfg:   cfg,
		rt:    NewRuntime(cfg.CacheCapacity),
		disp:  NewDispatcher(cfg.Workers, cfg.QueueDepth),
		reg:   obs.NewRegistry(),
		start: time.Now(),
	}
	s.stats = newStats(s.reg)
	s.reg.GaugeFunc("winrs_uptime_seconds", "Seconds since the server started.",
		func() float64 { return time.Since(s.start).Seconds() })
	s.reg.CounterFunc("winrs_plan_cache_hits_total", "Plan-cache hits.",
		func() uint64 { h, _ := s.rt.cache.Stats(); return h })
	s.reg.CounterFunc("winrs_plan_cache_misses_total", "Plan-cache misses.",
		func() uint64 { _, m := s.rt.cache.Stats(); return m })
	s.reg.GaugeFunc("winrs_plan_cache_entries", "Plans currently cached.",
		func() float64 { return float64(s.rt.cache.Len()) })
	s.reg.GaugeFunc("winrs_queue_depth", "Admitted requests waiting for a worker.",
		func() float64 { return float64(s.disp.QueueDepth()) })
	s.reg.GaugeFunc("winrs_requests_in_flight", "Requests currently computing.",
		func() float64 { return float64(s.disp.InFlight()) })
	return s
}

// Registry exposes the server's metric registry (embedding, extra series).
func (s *Server) Registry() *obs.Registry { return s.reg }

// Runtime exposes the server's runtime (tests, embedding).
func (s *Server) Runtime() *Runtime { return s.rt }

// Close drains the worker pool. In-flight requests finish; new ones get
// 503.
func (s *Server) Close() { s.disp.Close() }

// Handler returns the HTTP mux:
//
//	POST /v1/backward_filter   ∇W from X, ∇Y (f32 or f16 payloads)
//	POST /v1/forward           Y from X, W
//	POST /v1/backward_data     ∇X from ∇Y, W
//	GET  /healthz              liveness JSON
//	GET  /metrics              Prometheus-style text metrics
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/backward_filter", s.opHandler(OpBackwardFilter))
	mux.HandleFunc("POST /v1/forward", s.opHandler(OpForward))
	mux.HandleFunc("POST /v1/backward_data", s.opHandler(OpBackwardData))
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	return mux
}

func (s *Server) opHandler(op Op) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) { s.serveOp(op, w, r) }
}

// clientError replies with status and counts the request as malformed.
func (s *Server) clientError(w http.ResponseWriter, status int, format string, args ...any) {
	s.stats.ClientErr.Add(1)
	http.Error(w, fmt.Sprintf(format, args...), status)
}

func (s *Server) serveOp(op Op, w http.ResponseWriter, r *http.Request) {
	t0 := time.Now()
	hdr, payload, err := DecodeRequest(http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes))
	if err != nil {
		s.clientError(w, http.StatusBadRequest, "%v", err)
		return
	}
	if hdr.Op != "" {
		if declared, err := ParseOp(hdr.Op); err != nil || declared != op {
			s.clientError(w, http.StatusBadRequest, "header op %q does not match endpoint %q", hdr.Op, op)
			return
		}
	}
	p := hdr.Params
	if err := p.Validate(); err != nil {
		s.clientError(w, http.StatusBadRequest, "%v", err)
		return
	}
	esz := hdr.DType.elemBytes()
	if esz == 0 {
		s.clientError(w, http.StatusBadRequest, "unknown dtype %q", hdr.DType)
		return
	}
	if hdr.DType == F16 && op != OpBackwardFilter {
		s.clientError(w, http.StatusBadRequest, "dtype f16 is only supported for backward_filter")
		return
	}
	aShape, bShape, _ := OperandShapes(op, p)
	if want := (aShape.Elems() + bShape.Elems()) * esz; len(payload) != want {
		s.clientError(w, http.StatusBadRequest,
			"payload %d bytes, want %d (%v + %v × %d-byte elements)",
			len(payload), want, aShape, bShape, esz)
		return
	}
	aBytes := payload[:aShape.Elems()*esz]
	bBytes := payload[aShape.Elems()*esz:]
	key := PlanKey{Params: p, FP16: hdr.DType == F16, NSM: hdr.NSM, Segments: hdr.Segments}

	ctx, cancel := context.WithTimeout(r.Context(), s.cfg.Deadline)
	defer cancel()

	// The job runs on a dispatcher worker; Do blocks until it finishes (or
	// it is abandoned while still queued, in which case it never runs), so
	// writing the response from the job is race-free.
	var jobErr error
	err = s.disp.Do(ctx, func() {
		jobErr = s.compute(op, key, hdr.DType, aBytes, bBytes, w)
	})
	switch {
	case errors.Is(err, ErrOverloaded):
		s.stats.Rejected.Add(1)
		w.Header().Set("Retry-After", "1")
		http.Error(w, "queue full, retry later", http.StatusTooManyRequests)
	case errors.Is(err, context.DeadlineExceeded), errors.Is(err, context.Canceled):
		s.stats.Deadline.Add(1)
		w.Header().Set("Retry-After", "1")
		http.Error(w, "deadline expired while queued", http.StatusServiceUnavailable)
	case err != nil: // ErrClosed
		http.Error(w, "server shutting down", http.StatusServiceUnavailable)
	case jobErr != nil:
		// Plan construction / compute rejected the geometry. The response
		// was not started (compute writes only on success).
		s.stats.ComputeErr.Add(1)
		http.Error(w, jobErr.Error(), http.StatusUnprocessableEntity)
	default:
		s.stats.Observe(op, time.Since(t0))
	}
}

// compute decodes the operands, executes the pass and, on success, writes
// the response. It never writes on error so serveOp can still set an error
// status.
func (s *Server) compute(op Op, key PlanKey, dt DType, aBytes, bBytes []byte, w http.ResponseWriter) error {
	p := key.Params
	switch op {
	case OpBackwardFilter:
		if dt == F16 {
			x, dy := tensor.NewHalf(p.XShape()), tensor.NewHalf(p.DYShape())
			if err := DecodeF16(aBytes, x.Data); err != nil {
				return err
			}
			if err := DecodeF16(bBytes, dy.Data); err != nil {
				return err
			}
			return s.rt.BackwardFilterHalfPooled(key, x, dy, func(dw *tensor.Float32, e *Entry, hit bool) error {
				return writeResult(w, dw, e.Cfg, hit)
			})
		}
		x, dy := tensor.NewFloat32(p.XShape()), tensor.NewFloat32(p.DYShape())
		if err := DecodeF32(aBytes, x.Data); err != nil {
			return err
		}
		if err := DecodeF32(bBytes, dy.Data); err != nil {
			return err
		}
		return s.rt.BackwardFilterPooled(key, x, dy, func(dw *tensor.Float32, e *Entry, hit bool) error {
			return writeResult(w, dw, e.Cfg, hit)
		})
	case OpForward:
		x, wt := tensor.NewFloat32(p.XShape()), tensor.NewFloat32(p.DWShape())
		if err := DecodeF32(aBytes, x.Data); err != nil {
			return err
		}
		if err := DecodeF32(bBytes, wt.Data); err != nil {
			return err
		}
		y, err := core.Forward(p, x, wt)
		if err != nil {
			return err
		}
		return writeResult(w, y, nil, false)
	case OpBackwardData:
		dy, wt := tensor.NewFloat32(p.DYShape()), tensor.NewFloat32(p.DWShape())
		if err := DecodeF32(aBytes, dy.Data); err != nil {
			return err
		}
		if err := DecodeF32(bBytes, wt.Data); err != nil {
			return err
		}
		dx, err := core.BackwardData(p, dy, wt)
		if err != nil {
			return err
		}
		return writeResult(w, dx, nil, false)
	}
	return fmt.Errorf("serve: invalid op %v", op)
}

// writeResult sends t as raw little-endian float32 with metadata headers.
// The cache-hit header is only meaningful for the plan-cached ops, which
// pass their cfg; forward/backward_data pass nil.
func writeResult(w http.ResponseWriter, t *tensor.Float32, cfg *core.Config, hit bool) error {
	h := w.Header()
	h.Set("Content-Type", "application/octet-stream")
	h.Set("X-Winrs-Shape", t.Shape.String())
	h.Set("Content-Length", fmt.Sprint(4*len(t.Data)))
	if cfg != nil {
		h.Set("X-Winrs-Kernel-Pair", cfg.Pair.String())
		h.Set("X-Winrs-Segments", fmt.Sprint(cfg.Z()))
		if hit {
			h.Set("X-Winrs-Cache", "hit")
		} else {
			h.Set("X-Winrs-Cache", "miss")
		}
	}
	_, err := w.Write(AppendF32(make([]byte, 0, 4*len(t.Data)), t.Data))
	return err
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	hits, misses := s.rt.cache.Stats()
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(map[string]any{
		"status":         "ok",
		"uptime_seconds": time.Since(s.start).Seconds(),
		"plans_cached":   s.rt.cache.Len(),
		"cache_hits":     hits,
		"cache_misses":   misses,
		"queue_depth":    s.disp.QueueDepth(),
		"in_flight":      s.disp.InFlight(),
	})
}

// handleMetrics renders the server registry, the process-wide default
// registry (runtime gauges plus anything components registered globally),
// and the per-stage execution trace when obs tracing is enabled.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	if err := s.reg.WriteText(w); err != nil {
		return
	}
	if err := obs.Default.WriteText(w); err != nil {
		return
	}
	obs.WriteTraceTo(w)
}
