package serve_test

import (
	"bytes"
	"encoding/json"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"winrs"
	"winrs/internal/obs"
	"winrs/internal/serve"
)

func newTestServer(t *testing.T) (*serve.Server, *httptest.Server) {
	t.Helper()
	s := serve.NewServer(serve.Config{Workers: 4, QueueDepth: 64})
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		s.Close()
	})
	return s, ts
}

func randLayer(t *testing.T, seed int64, p winrs.Params) (*winrs.Tensor, *winrs.Tensor) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	x := winrs.NewTensor(p.XShape())
	dy := winrs.NewTensor(p.DYShape())
	x.FillUniform(rng, 0, 1)
	dy.FillUniform(rng, 0, 1)
	return x, dy
}

func postBackwardFilter(t *testing.T, url string, p winrs.Params, x, dy *winrs.Tensor) (*http.Response, []byte) {
	t.Helper()
	body, err := serve.EncodeRequest(serve.RequestHeader{Op: "backward_filter", Params: p},
		serve.AppendF32(nil, x.Data), serve.AppendF32(nil, dy.Data))
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url+"/v1/backward_filter", "application/octet-stream",
		bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	out, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, out
}

// The served gradient must be bit-for-bit identical to the library path,
// and a repeated shape must hit the plan cache.
func TestServeBackwardFilterMatchesLibrary(t *testing.T) {
	_, ts := newTestServer(t)
	p := winrs.Params{N: 2, IH: 20, IW: 20, FH: 3, FW: 3, IC: 4, OC: 4, PH: 1, PW: 1}
	x, dy := randLayer(t, 21, p)
	want, err := winrs.BackwardFilter(p, x, dy)
	if err != nil {
		t.Fatal(err)
	}

	for round, wantCache := range []string{"miss", "hit", "hit"} {
		resp, out := postBackwardFilter(t, ts.URL, p, x, dy)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("round %d: status %d: %s", round, resp.StatusCode, out)
		}
		if got := resp.Header.Get("X-Winrs-Cache"); got != wantCache {
			t.Errorf("round %d: cache header %q, want %q", round, got, wantCache)
		}
		if got := resp.Header.Get("X-Winrs-Shape"); got != p.DWShape().String() {
			t.Errorf("round %d: shape header %q", round, got)
		}
		if resp.Header.Get("X-Winrs-Kernel-Pair") == "" {
			t.Errorf("round %d: missing kernel-pair header", round)
		}
		got := make([]float32, p.DWShape().Elems())
		if err := serve.DecodeF32(out, got); err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
		for i := range want.Data {
			if got[i] != want.Data[i] {
				t.Fatalf("round %d: served gradient differs from library at %d: %v vs %v",
					round, i, got[i], want.Data[i])
			}
		}
	}
}

func TestServeBackwardFilterHalf(t *testing.T) {
	_, ts := newTestServer(t)
	p := winrs.Params{N: 1, IH: 16, IW: 16, FH: 3, FW: 3, IC: 4, OC: 4, PH: 1, PW: 1}
	rng := rand.New(rand.NewSource(22))
	xf := winrs.NewTensor(p.XShape())
	dyf := winrs.NewTensor(p.DYShape())
	xf.FillUniform(rng, 0, 1)
	dyf.FillUniform(rng, 0, 0.01)
	x, dy := xf.ToHalf(), dyf.ToHalf()
	want, err := winrs.BackwardFilterHalf(p, x, dy)
	if err != nil {
		t.Fatal(err)
	}

	body, err := serve.EncodeRequest(
		serve.RequestHeader{Op: "backward_filter", Params: p, DType: serve.F16},
		serve.AppendF16(nil, x.Data), serve.AppendF16(nil, dy.Data))
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(ts.URL+"/v1/backward_filter", "application/octet-stream",
		bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	out, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, out)
	}
	got := make([]float32, p.DWShape().Elems())
	if err := serve.DecodeF32(out, got); err != nil {
		t.Fatal(err)
	}
	for i := range want.Data {
		if got[i] != want.Data[i] {
			t.Fatalf("served f16 gradient differs from library at %d", i)
		}
	}
}

func TestServeForwardAndBackwardData(t *testing.T) {
	_, ts := newTestServer(t)
	p := winrs.Params{N: 1, IH: 12, IW: 12, FH: 3, FW: 3, IC: 3, OC: 3, PH: 1, PW: 1}
	rng := rand.New(rand.NewSource(23))
	x := winrs.NewTensor(p.XShape())
	w := winrs.NewTensor(p.DWShape())
	dy := winrs.NewTensor(p.DYShape())
	x.FillUniform(rng, 0, 1)
	w.FillUniform(rng, -1, 1)
	dy.FillUniform(rng, 0, 1)

	wantY, err := winrs.Forward(p, x, w)
	if err != nil {
		t.Fatal(err)
	}
	wantDX, err := winrs.BackwardData(p, dy, w)
	if err != nil {
		t.Fatal(err)
	}

	for _, tc := range []struct {
		path string
		a, b *winrs.Tensor
		want *winrs.Tensor
	}{
		{"/v1/forward", x, w, wantY},
		{"/v1/backward_data", dy, w, wantDX},
	} {
		body, err := serve.EncodeRequest(serve.RequestHeader{Params: p},
			serve.AppendF32(nil, tc.a.Data), serve.AppendF32(nil, tc.b.Data))
		if err != nil {
			t.Fatal(err)
		}
		resp, err := http.Post(ts.URL+tc.path, "application/octet-stream",
			bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		out, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("%s: status %d: %s", tc.path, resp.StatusCode, out)
		}
		got := make([]float32, tc.want.Shape.Elems())
		if err := serve.DecodeF32(out, got); err != nil {
			t.Fatalf("%s: %v", tc.path, err)
		}
		for i := range tc.want.Data {
			if got[i] != tc.want.Data[i] {
				t.Fatalf("%s: served result differs at %d", tc.path, i)
			}
		}
	}
}

func TestServeBadRequests(t *testing.T) {
	_, ts := newTestServer(t)
	p := winrs.Params{N: 1, IH: 8, IW: 8, FH: 3, FW: 3, IC: 1, OC: 1, PH: 1, PW: 1}
	okA := make([]byte, p.XShape().Elems()*4)
	okB := make([]byte, p.DYShape().Elems()*4)

	post := func(path string, body []byte) int {
		resp, err := http.Post(ts.URL+path, "application/octet-stream", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		return resp.StatusCode
	}

	// Garbage framing.
	if code := post("/v1/backward_filter", []byte("not a request")); code != http.StatusBadRequest {
		t.Errorf("bad magic: status %d", code)
	}
	// Header op disagrees with the endpoint.
	body, _ := serve.EncodeRequest(serve.RequestHeader{Op: "forward", Params: p}, okA, okB)
	if code := post("/v1/backward_filter", body); code != http.StatusBadRequest {
		t.Errorf("op mismatch: status %d", code)
	}
	// Wrong payload size.
	body, _ = serve.EncodeRequest(serve.RequestHeader{Params: p}, okA, okB[:len(okB)-4])
	if code := post("/v1/backward_filter", body); code != http.StatusBadRequest {
		t.Errorf("short payload: status %d", code)
	}
	// Invalid geometry.
	bad := p
	bad.FH = 0
	body, _ = serve.EncodeRequest(serve.RequestHeader{Params: bad}, okA, okB)
	if code := post("/v1/backward_filter", body); code != http.StatusBadRequest {
		t.Errorf("invalid params: status %d", code)
	}
	// f16 is only a backward_filter dtype.
	body, _ = serve.EncodeRequest(serve.RequestHeader{Params: p, DType: serve.F16},
		okA[:p.XShape().Elems()*2], make([]byte, p.DWShape().Elems()*2))
	if code := post("/v1/forward", body); code != http.StatusBadRequest {
		t.Errorf("f16 forward: status %d", code)
	}
	// Unknown dtype.
	body, _ = serve.EncodeRequest(serve.RequestHeader{Params: p, DType: "f64"}, okA, okB)
	if code := post("/v1/backward_filter", body); code != http.StatusBadRequest {
		t.Errorf("unknown dtype: status %d", code)
	}
}

func TestServeHealthzAndMetrics(t *testing.T) {
	_, ts := newTestServer(t)
	p := winrs.Params{N: 1, IH: 10, IW: 10, FH: 3, FW: 3, IC: 2, OC: 2, PH: 1, PW: 1}
	x, dy := randLayer(t, 24, p)
	for i := 0; i < 3; i++ {
		if resp, out := postBackwardFilter(t, ts.URL, p, x, dy); resp.StatusCode != 200 {
			t.Fatalf("status %d: %s", resp.StatusCode, out)
		}
	}

	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var health struct {
		Status      string `json:"status"`
		PlansCached int    `json:"plans_cached"`
		CacheHits   uint64 `json:"cache_hits"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&health); err != nil {
		t.Fatal(err)
	}
	if health.Status != "ok" || health.PlansCached != 1 || health.CacheHits < 2 {
		t.Errorf("healthz = %+v", health)
	}

	mresp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer mresp.Body.Close()
	raw, err := io.ReadAll(mresp.Body)
	if err != nil {
		t.Fatal(err)
	}
	metrics := string(raw)
	for _, want := range []string{
		"winrs_plan_cache_hits_total 2",
		"winrs_plan_cache_misses_total 1",
		`winrs_requests_total{op="backward_filter"} 3`,
		`winrs_request_latency_seconds{quantile="0.99"}`,
	} {
		if !strings.Contains(metrics, want) {
			t.Errorf("metrics missing %q:\n%s", want, metrics)
		}
	}
}

// Load-style test: 8 concurrent clients over two shapes. Every response is
// either a correct 200 (bit-for-bit against the library) or a retryable
// rejection. Run with -race.
func TestServeConcurrentClients(t *testing.T) {
	s, ts := newTestServer(t)
	shapes := []winrs.Params{
		{N: 1, IH: 16, IW: 16, FH: 3, FW: 3, IC: 4, OC: 4, PH: 1, PW: 1},
		{N: 2, IH: 12, IW: 14, FH: 5, FW: 5, IC: 2, OC: 3, PH: 2, PW: 2},
	}
	type layer struct {
		x, dy *winrs.Tensor
		want  *winrs.Tensor
	}
	layers := make([]layer, len(shapes))
	for i, p := range shapes {
		x, dy := randLayer(t, int64(30+i), p)
		want, err := winrs.BackwardFilter(p, x, dy)
		if err != nil {
			t.Fatal(err)
		}
		layers[i] = layer{x, dy, want}
	}

	const clients = 8
	const perClient = 6
	var ok, rejected int
	var mu sync.Mutex
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for i := 0; i < perClient; i++ {
				p := shapes[(c+i)%len(shapes)]
				l := layers[(c+i)%len(shapes)]
				resp, out := postBackwardFilter(t, ts.URL, p, l.x, l.dy)
				switch resp.StatusCode {
				case http.StatusOK:
					got := make([]float32, p.DWShape().Elems())
					if err := serve.DecodeF32(out, got); err != nil {
						t.Error(err)
						return
					}
					for j := range l.want.Data {
						if got[j] != l.want.Data[j] {
							t.Errorf("client %d: payload differs at %d", c, j)
							return
						}
					}
					mu.Lock()
					ok++
					mu.Unlock()
				case http.StatusTooManyRequests, http.StatusServiceUnavailable:
					if resp.Header.Get("Retry-After") == "" {
						t.Errorf("client %d: rejection without Retry-After", c)
					}
					mu.Lock()
					rejected++
					mu.Unlock()
				default:
					t.Errorf("client %d: unexpected status %d: %s", c, resp.StatusCode, out)
					return
				}
			}
		}(c)
	}
	wg.Wait()
	if ok == 0 {
		t.Fatalf("no request succeeded (%d rejected)", rejected)
	}
	// The plan cache must be doing its job under concurrency: 48 requests
	// over 2 shapes leave at most a handful of misses.
	hits, misses := s.Runtime().Cache().Stats()
	if hits == 0 {
		t.Errorf("plan cache never hit (%d misses) across %d served requests", misses, ok)
	}
}

// Metrics scrapes must be safe against concurrent request traffic with
// per-stage tracing on: clients hammer backward_filter while scrapers read
// /metrics (registry + default registry + trace recorder). Run with -race;
// this is the serve-level half of the observability race satellite.
func TestServeMetricsScrapeUnderLoad(t *testing.T) {
	_, ts := newTestServer(t)
	obs.ResetTrace()
	obs.EnableTrace(true)
	t.Cleanup(func() {
		obs.EnableTrace(false)
		obs.ResetTrace()
	})

	p := winrs.Params{N: 1, IH: 12, IW: 12, FH: 3, FW: 3, IC: 3, OC: 3, PH: 1, PW: 1}
	x, dy := randLayer(t, 77, p)

	var wg sync.WaitGroup
	for c := 0; c < 4; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 8; i++ {
				resp, out := postBackwardFilter(t, ts.URL, p, x, dy)
				if resp.StatusCode != http.StatusOK &&
					resp.StatusCode != http.StatusTooManyRequests {
					t.Errorf("status %d: %s", resp.StatusCode, out)
				}
			}
		}()
	}
	for c := 0; c < 2; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 10; i++ {
				resp, err := http.Get(ts.URL + "/metrics")
				if err != nil {
					t.Error(err)
					return
				}
				body, err := io.ReadAll(resp.Body)
				resp.Body.Close()
				if err != nil {
					t.Error(err)
					return
				}
				if !strings.Contains(string(body), "winrs_plan_cache_misses_total") {
					t.Error("scrape missing plan-cache series")
					return
				}
			}
		}()
	}
	wg.Wait()

	// With tracing on and traffic served, the stage histograms must be live.
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"# TYPE winrs_stage_duration_seconds histogram",
		`winrs_stage_units_total{stage="segment_tile"}`,
		"winrs_process_goroutines",
	} {
		if !strings.Contains(string(body), want) {
			t.Errorf("metrics missing %q", want)
		}
	}
}
