package serve

import (
	"sync"
	"testing"

	"winrs/internal/conv"
)

func testKey(iw int) PlanKey {
	return PlanKey{Params: conv.Params{
		N: 1, IH: 12, IW: iw, FH: 3, FW: 3, IC: 2, OC: 2, PH: 1, PW: 1,
	}}
}

func TestPlanCacheHitMiss(t *testing.T) {
	c := NewPlanCache(64)
	k := testKey(12)
	e1, hit, err := c.Get(k)
	if err != nil {
		t.Fatal(err)
	}
	if hit {
		t.Error("first Get should miss")
	}
	e2, hit, err := c.Get(k)
	if err != nil {
		t.Fatal(err)
	}
	if !hit {
		t.Error("second Get should hit")
	}
	if e1 != e2 {
		t.Error("hit should return the same entry")
	}
	if hits, misses := c.Stats(); hits != 1 || misses != 1 {
		t.Errorf("stats = %d hits / %d misses, want 1/1", hits, misses)
	}
	if c.Len() != 1 {
		t.Errorf("Len = %d, want 1", c.Len())
	}
}

func TestPlanCacheError(t *testing.T) {
	c := NewPlanCache(64)
	k := PlanKey{Params: conv.Params{N: 0}} // invalid geometry
	if _, _, err := c.Get(k); err == nil {
		t.Error("invalid params should error")
	}
	if c.Len() != 0 {
		t.Error("failed Configure must not be cached")
	}
}

// Filling far past capacity must evict rather than grow unboundedly.
func TestPlanCacheEviction(t *testing.T) {
	c := NewPlanCache(16) // one plan per shard
	for iw := 8; iw < 8+64; iw++ {
		if _, _, err := c.Get(testKey(iw)); err != nil {
			t.Fatal(err)
		}
	}
	if n := c.Len(); n > 16 {
		t.Errorf("cache grew to %d entries, capacity 16", n)
	}
}

// Concurrent Gets on a mix of hot and cold keys, for the race detector;
// duplicate-configure races must all converge on one cached entry.
func TestPlanCacheConcurrent(t *testing.T) {
	c := NewPlanCache(64)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				k := testKey(10 + i%4)
				e, _, err := c.Get(k)
				if err != nil {
					t.Error(err)
					return
				}
				ws := e.AcquireWorkspace()
				e.ReleaseWorkspace(ws)
			}
		}(g)
	}
	wg.Wait()
	if n := c.Len(); n != 4 {
		t.Errorf("Len = %d, want 4 distinct plans", n)
	}
}

// The workspace pool hands out arenas that actually fit the plan.
func TestEntryWorkspaceFits(t *testing.T) {
	c := NewPlanCache(16)
	e, _, err := c.Get(testKey(16))
	if err != nil {
		t.Fatal(err)
	}
	ws := e.AcquireWorkspace()
	defer e.ReleaseWorkspace(ws)
	if !ws.Fits(e.Cfg) {
		t.Error("pooled workspace does not fit its own plan")
	}
	out := e.acquireOut()
	defer e.releaseOut(out)
	if out.Shape != e.Cfg.Params.DWShape() {
		t.Errorf("pooled output shape %v, want %v", out.Shape, e.Cfg.Params.DWShape())
	}
}
