package serve

import (
	"winrs/internal/core"
	"winrs/internal/tensor"
)

// Runtime executes convolution passes through the plan cache with pooled
// workspaces. It is safe for concurrent use: plans are read-only, and each
// execution borrows a private arena from the entry's pool. Compute itself
// lands on core's process-wide sched pool, so concurrent requests
// co-schedule onto GOMAXPROCS persistent workers instead of each spawning
// a goroutine set — under load, tail latency degrades toward one
// request's serial time rather than oversubscription collapse.
type Runtime struct {
	cache *PlanCache
}

// NewRuntime returns a runtime whose plan cache holds about cacheCapacity
// plans.
func NewRuntime(cacheCapacity int) *Runtime {
	return &Runtime{cache: NewPlanCache(cacheCapacity)}
}

// Cache exposes the runtime's plan cache (stats, direct Gets).
func (rt *Runtime) Cache() *PlanCache { return rt.cache }

// BackwardFilter computes ∇W via the cached plan for key. The result is
// freshly allocated and owned by the caller; only the bucket workspace is
// pooled. The boolean reports a plan-cache hit.
func (rt *Runtime) BackwardFilter(key PlanKey, x, dy *tensor.Float32) (*tensor.Float32, bool, error) {
	e, hit, err := rt.cache.Get(key)
	if err != nil {
		return nil, false, err
	}
	ws := e.AcquireWorkspace()
	defer e.ReleaseWorkspace(ws)
	return core.ExecuteIn(e.Cfg, ws, x, dy, nil), hit, nil
}

// BackwardFilterPooled executes with workspace AND output pooled: use
// receives the pooled gradient together with the plan entry and the
// cache-hit flag, and the tensor is recycled as soon as use returns — so
// use must serialize or copy it, not retain it. This is the daemon's
// allocation-free hot path.
func (rt *Runtime) BackwardFilterPooled(key PlanKey, x, dy *tensor.Float32,
	use func(dw *tensor.Float32, e *Entry, hit bool) error) error {
	e, hit, err := rt.cache.Get(key)
	if err != nil {
		return err
	}
	ws := e.AcquireWorkspace()
	out := e.acquireOut()
	defer func() {
		e.ReleaseWorkspace(ws)
		e.releaseOut(out)
	}()
	core.ExecuteIn(e.Cfg, ws, x, dy, out)
	return use(out, e, hit)
}

// BackwardFilterHalfPooled is BackwardFilterPooled for binary16 operands
// (the Tensor-Core path). key.FP16 must be set so the plan restricts
// kernel selection accordingly; the pooled result stays FP32.
func (rt *Runtime) BackwardFilterHalfPooled(key PlanKey, x, dy *tensor.Half,
	use func(dw *tensor.Float32, e *Entry, hit bool) error) error {
	e, hit, err := rt.cache.Get(key)
	if err != nil {
		return err
	}
	ws := e.AcquireWorkspace()
	out := e.acquireOut()
	defer func() {
		e.ReleaseWorkspace(ws)
		e.releaseOut(out)
	}()
	core.ExecuteHalfIn(e.Cfg, ws, x, dy, out)
	return use(out, e, hit)
}
