package serve

import (
	"context"
	"sync/atomic"

	"winrs/internal/core"
	"winrs/internal/tensor"
)

// FaultHook is the runtime's fault-injection point: when set, it runs on
// the dispatcher worker goroutine at the start of every pooled execution,
// after the workspace and output have been acquired. Returning a non-nil
// error aborts the request with it (mapped like any compute error — a
// context error counts as a cancellation); a panic propagates exactly as a
// compute panic would. The test harness uses it to force panics, slow
// computes (block until ctx.Done()) and cancellations without build tags;
// production never sets it, and the unset check is one atomic load.
type FaultHook func(ctx context.Context, key PlanKey) error

// Runtime executes convolution passes through the plan cache with pooled
// workspaces. It is safe for concurrent use: plans are read-only, and each
// execution borrows a private arena from the entry's pool. Compute itself
// lands on core's process-wide sched pool, so concurrent requests
// co-schedule onto GOMAXPROCS persistent workers instead of each spawning
// a goroutine set — under load, tail latency degrades toward one
// request's serial time rather than oversubscription collapse.
type Runtime struct {
	cache *PlanCache
	hook  atomic.Pointer[FaultHook]
	// borrowed counts workspace/output pairs currently checked out of the
	// entry pools. It returns to zero on every exit path — success,
	// cancellation, compute error, panic — which is what the fault-
	// injection harness asserts to prove the pools don't leak.
	borrowed atomic.Int64
}

// NewRuntime returns a runtime whose plan cache holds about cacheCapacity
// plans.
func NewRuntime(cacheCapacity int) *Runtime {
	return &Runtime{cache: NewPlanCache(cacheCapacity)}
}

// Cache exposes the runtime's plan cache (stats, direct Gets).
func (rt *Runtime) Cache() *PlanCache { return rt.cache }

// SetFaultHook installs (or, with nil, removes) the fault-injection hook.
// Safe to call concurrently with executions; in-flight requests may still
// observe the previous hook.
func (rt *Runtime) SetFaultHook(h FaultHook) {
	if h == nil {
		rt.hook.Store(nil)
		return
	}
	rt.hook.Store(&h)
}

// injectFault runs the installed hook, if any.
func (rt *Runtime) injectFault(ctx context.Context, key PlanKey) error {
	if h := rt.hook.Load(); h != nil {
		return (*h)(ctx, key)
	}
	return nil
}

// Borrowed returns the number of workspace/output pairs currently checked
// out of the pools — zero whenever no execution is in flight (leak
// assertions in tests).
func (rt *Runtime) Borrowed() int64 { return rt.borrowed.Load() }

// BackwardFilter computes ∇W via the cached plan for key. The result is
// freshly allocated and owned by the caller; only the bucket workspace is
// pooled. The boolean reports a plan-cache hit.
func (rt *Runtime) BackwardFilter(key PlanKey, x, dy *tensor.Float32) (*tensor.Float32, bool, error) {
	e, hit, err := rt.cache.Get(key)
	if err != nil {
		return nil, false, err
	}
	if e.Cfg == nil {
		dw := tensor.NewFloat32(key.Params.DWShape())
		if err := e.exec.ExecuteCtx(context.Background(), key.Params, x, dy, dw); err != nil {
			return nil, false, err
		}
		return dw, hit, nil
	}
	ws := e.AcquireWorkspace()
	defer e.ReleaseWorkspace(ws)
	return core.ExecuteIn(e.Cfg, ws, x, dy, nil), hit, nil
}

// BackwardFilterPooled executes with workspace AND output pooled: use
// receives the pooled gradient together with the plan entry and the
// cache-hit flag, and the tensor is recycled as soon as use returns — so
// use must serialize or copy it, not retain it. This is the daemon's
// allocation-free hot path.
func (rt *Runtime) BackwardFilterPooled(key PlanKey, x, dy *tensor.Float32,
	use func(dw *tensor.Float32, e *Entry, hit bool) error) error {
	return rt.BackwardFilterPooledCtx(context.Background(), key, x, dy, use)
}

// BackwardFilterPooledCtx is BackwardFilterPooled with cooperative
// cancellation: a ctx deadline or cancel aborts the execution at the next
// chunk claim (core.ExecuteInCtx) and returns ctx.Err(); the partial
// result is discarded and the arenas are recycled. On a panic — from the
// fault hook or compute itself — the borrowed arenas are dropped for the
// GC instead of recycled (a sched helper could in principle still be
// writing into a workspace abandoned mid-unwind; a dropped arena can
// corrupt nothing) and the panic propagates to the dispatcher's recover.
func (rt *Runtime) BackwardFilterPooledCtx(ctx context.Context, key PlanKey, x, dy *tensor.Float32,
	use func(dw *tensor.Float32, e *Entry, hit bool) error) error {
	e, hit, err := rt.cache.Get(key)
	if err != nil {
		return err
	}
	if e.Cfg == nil {
		return rt.backendPooled(ctx, key, e, hit, use, func(ctx context.Context, out *tensor.Float32) error {
			return e.exec.ExecuteCtx(ctx, key.Params, x, dy, out)
		})
	}
	ws := e.AcquireWorkspace()
	out := e.acquireOut()
	rt.borrowed.Add(1)
	recycle := false
	defer func() {
		rt.borrowed.Add(-1)
		if recycle {
			e.ReleaseWorkspace(ws)
			e.releaseOut(out)
		}
	}()
	if err := rt.injectFault(ctx, key); err != nil {
		recycle = true
		return err
	}
	dw, err := core.ExecuteInCtx(ctx, e.Cfg, ws, x, dy, out)
	recycle = true // execution finished or was fully drained: arenas are quiescent
	if err != nil {
		return err
	}
	return use(dw, e, hit)
}

// backendPooled drives a non-WinRS entry through the pooled lifecycle:
// only the output tensor is pooled (the backends manage their own
// scratch), the fault hook and borrow accounting apply exactly as on the
// WinRS path, and a panic drops the output for the GC instead of
// recycling it. Cancellation is boundary-checked by the backends — their
// inner loops run to completion, mirroring forward/backward_data.
func (rt *Runtime) backendPooled(ctx context.Context, key PlanKey, e *Entry, hit bool,
	use func(dw *tensor.Float32, e *Entry, hit bool) error,
	exec func(ctx context.Context, out *tensor.Float32) error) error {
	out := e.acquireOut()
	rt.borrowed.Add(1)
	recycle := false
	defer func() {
		rt.borrowed.Add(-1)
		if recycle {
			e.releaseOut(out)
		}
	}()
	if err := rt.injectFault(ctx, key); err != nil {
		recycle = true
		return err
	}
	err := exec(ctx, out)
	recycle = true // backends return only after their parallel stages drain
	if err != nil {
		return err
	}
	return use(out, e, hit)
}

// BackwardFilterHalfPooled is BackwardFilterPooled for binary16 operands
// (the Tensor-Core path). key.FP16 must be set so the plan restricts
// kernel selection accordingly; the pooled result stays FP32.
func (rt *Runtime) BackwardFilterHalfPooled(key PlanKey, x, dy *tensor.Half,
	use func(dw *tensor.Float32, e *Entry, hit bool) error) error {
	return rt.BackwardFilterHalfPooledCtx(context.Background(), key, x, dy, use)
}

// BackwardFilterHalfPooledCtx is BackwardFilterPooledCtx for binary16
// operands.
func (rt *Runtime) BackwardFilterHalfPooledCtx(ctx context.Context, key PlanKey, x, dy *tensor.Half,
	use func(dw *tensor.Float32, e *Entry, hit bool) error) error {
	e, hit, err := rt.cache.Get(key)
	if err != nil {
		return err
	}
	if e.Cfg == nil {
		return rt.backendPooled(ctx, key, e, hit, use, func(ctx context.Context, out *tensor.Float32) error {
			return e.exec.ExecuteHalfCtx(ctx, key.Params, x, dy, out)
		})
	}
	ws := e.AcquireWorkspace()
	out := e.acquireOut()
	rt.borrowed.Add(1)
	recycle := false
	defer func() {
		rt.borrowed.Add(-1)
		if recycle {
			e.ReleaseWorkspace(ws)
			e.releaseOut(out)
		}
	}()
	if err := rt.injectFault(ctx, key); err != nil {
		recycle = true
		return err
	}
	dw, err := core.ExecuteHalfInCtx(ctx, e.Cfg, ws, x, dy, out)
	recycle = true
	if err != nil {
		return err
	}
	return use(dw, e, hit)
}
