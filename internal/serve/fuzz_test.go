package serve

// FuzzProtoRoundTrip drives DecodeRequest with arbitrary bytes: it must
// never panic, and whenever it accepts a frame, re-encoding the decoded
// header with the decoded payload and decoding again must reproduce both
// exactly — the round-trip law the server and router both lean on (the
// router re-frames nothing, but its route hash reads the same decoded
// header the node will see).

import (
	"bytes"
	"encoding/binary"
	"reflect"
	"testing"

	"winrs/internal/conv"
)

// fuzzFrame builds a well-formed body for the seed corpus.
func fuzzFrame(tb testing.TB, hdr RequestHeader, payload []byte) []byte {
	tb.Helper()
	body, err := EncodeRequest(hdr, payload)
	if err != nil {
		tb.Fatal(err)
	}
	return body
}

func FuzzProtoRoundTrip(f *testing.F) {
	p := conv.Params{N: 1, IH: 16, IW: 16, FH: 3, FW: 3, IC: 4, OC: 4, PH: 1, PW: 1}

	// Seeds: a realistic request per op/dtype, edge headers, and targeted
	// corruptions of each framing field.
	seeds := [][]byte{
		fuzzFrame(f, RequestHeader{Op: "backward_filter", Params: p}, bytes.Repeat([]byte{0x3f}, 64)),
		fuzzFrame(f, RequestHeader{Op: "backward_filter", Params: p, DType: F16, Segments: 2, NSM: 64, Algo: "auto"}, []byte{1, 2, 3, 4}),
		fuzzFrame(f, RequestHeader{Op: "forward", Params: p}, nil),
		fuzzFrame(f, RequestHeader{}, nil),
	}
	seeds = append(seeds,
		[]byte{},                           // empty
		[]byte("WRS1"),                     // magic only, no length
		[]byte("XXXX\x00\x00\x00\x00"),     // wrong magic
		[]byte("WRS1\x00\x00\x00\x00"),     // zero header length
		[]byte("WRS1\xff\xff\xff\xff"),     // implausible header length
		[]byte("WRS1\x02\x00\x00\x00{}"),   // minimal valid JSON header
		[]byte("WRS1\x05\x00\x00\x00{]]]"), // length past truncated junk header
	)
	for _, s := range seeds {
		f.Add(s)
	}

	f.Fuzz(func(t *testing.T, data []byte) {
		hdr, payload, err := DecodeRequest(bytes.NewReader(data))
		if err != nil {
			return // rejected input; only the absence of panics matters
		}

		// Accepted frames must re-encode deterministically and round-trip.
		body, err := EncodeRequest(hdr, payload)
		if err != nil {
			t.Fatalf("decoded header failed to re-encode: %v", err)
		}
		hdr2, payload2, err := DecodeRequest(bytes.NewReader(body))
		if err != nil {
			t.Fatalf("re-encoded frame failed to decode: %v", err)
		}
		if !reflect.DeepEqual(hdr, hdr2) {
			t.Fatalf("header round-trip mismatch:\n  first  %+v\n  second %+v", hdr, hdr2)
		}
		if !bytes.Equal(payload, payload2) {
			t.Fatalf("payload round-trip mismatch: %d vs %d bytes", len(payload), len(payload2))
		}

		// The framing preamble of the re-encoded body must be canonical.
		if len(body) < 8 || [4]byte(body[:4]) != Magic {
			t.Fatal("re-encoded body lost the magic")
		}
		hlen := binary.LittleEndian.Uint32(body[4:8])
		if int(8+hlen)+len(payload) != len(body) {
			t.Fatalf("re-encoded length bookkeeping off: hlen=%d payload=%d body=%d",
				hlen, len(payload), len(body))
		}

		// Route hashing must be total and stable on every accepted header.
		if RouteHash(hdr) != RouteHash(hdr2) {
			t.Fatal("route hash differs across a round-trip")
		}
	})
}
