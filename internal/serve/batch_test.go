package serve_test

// Differential suite for cross-request micro-batching: responses produced
// through the coalescer must be byte-for-byte identical to the library
// path (and therefore to the un-batched serving path, which server_test
// pins against the same oracle), across FP32/FP16 and the inline (1) and
// pooled (4) GOMAXPROCS regimes, including a mixed-geometry interleave
// proving distinct plan keys never cross-contaminate batches.

import (
	"bytes"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"winrs"
	"winrs/internal/serve"
)

// newBatchServer starts a server with coalescing enabled: a generous
// linger so concurrently fired requests reliably share a batch, a size cap
// above every test's request count so only the linger seals.
func newBatchServer(t *testing.T, workers int) (*serve.Server, *httptest.Server) {
	t.Helper()
	s := serve.NewServer(serve.Config{
		Workers:     workers,
		QueueDepth:  64,
		BatchMax:    32,
		BatchLinger: 200 * time.Millisecond,
	})
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		s.Close()
	})
	return s, ts
}

// postRaw posts a pre-framed body and returns status and response bytes;
// goroutine-safe (no t.Fatal).
func postRaw(url string, body []byte) (int, []byte, error) {
	resp, err := http.Post(url+"/v1/backward_filter", "application/octet-stream",
		bytes.NewReader(body))
	if err != nil {
		return 0, nil, err
	}
	defer resp.Body.Close()
	out, err := io.ReadAll(resp.Body)
	return resp.StatusCode, out, err
}

// frameF32 builds the framed FP32 backward-filter request body.
func frameF32(t *testing.T, p winrs.Params, x, dy *winrs.Tensor) []byte {
	t.Helper()
	body, err := serve.EncodeRequest(serve.RequestHeader{Op: "backward_filter", Params: p},
		serve.AppendF32(nil, x.Data), serve.AppendF32(nil, dy.Data))
	if err != nil {
		t.Fatal(err)
	}
	return body
}

// TestBatchDifferentialBitIdentical fires N concurrent same-geometry
// requests through the coalescer and requires every response to equal the
// library gradient byte-for-byte, in both scheduling regimes and both
// precisions. The occupancy metrics must show that batching actually
// happened — a silently degenerate batch-of-1 sweep would prove nothing.
func TestBatchDifferentialBitIdentical(t *testing.T) {
	p := winrs.Params{N: 1, IH: 16, IW: 16, FH: 3, FW: 3, IC: 4, OC: 4, PH: 1, PW: 1}
	const concurrent = 6

	for _, procs := range []int{1, 4} {
		t.Run(fmt.Sprintf("procs%d", procs), func(t *testing.T) {
			prev := runtime.GOMAXPROCS(procs)
			defer runtime.GOMAXPROCS(prev)

			t.Run("fp32", func(t *testing.T) {
				s, ts := newBatchServer(t, 2)
				x, dy := randLayer(t, 101, p)
				lib, err := winrs.BackwardFilter(p, x, dy)
				if err != nil {
					t.Fatal(err)
				}
				want := serve.AppendF32(nil, lib.Data)
				body := frameF32(t, p, x, dy)
				driveIdentical(t, ts.URL, body, want, concurrent)
				assertBatched(t, s, ts.URL, concurrent)
			})

			t.Run("fp16", func(t *testing.T) {
				s, ts := newBatchServer(t, 2)
				xf, dyf := randLayer(t, 102, p)
				xh, dyh := xf.ToHalf(), dyf.ToHalf()
				lib, err := winrs.BackwardFilterHalf(p, xh, dyh)
				if err != nil {
					t.Fatal(err)
				}
				want := serve.AppendF32(nil, lib.Data)
				body, err := serve.EncodeRequest(
					serve.RequestHeader{Op: "backward_filter", Params: p, DType: serve.F16},
					serve.AppendF16(nil, xh.Data), serve.AppendF16(nil, dyh.Data))
				if err != nil {
					t.Fatal(err)
				}
				driveIdentical(t, ts.URL, body, want, concurrent)
				assertBatched(t, s, ts.URL, concurrent)
			})
		})
	}
}

// driveIdentical posts body n times concurrently and requires every
// response to be 200 with exactly want bytes.
func driveIdentical(t *testing.T, url string, body, want []byte, n int) {
	t.Helper()
	type result struct {
		status int
		out    []byte
		err    error
	}
	results := make([]result, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i].status, results[i].out, results[i].err = postRaw(url, body)
		}(i)
	}
	wg.Wait()
	for i, r := range results {
		if r.err != nil {
			t.Fatalf("request %d: %v", i, r.err)
		}
		if r.status != http.StatusOK {
			t.Fatalf("request %d: status %d: %s", i, r.status, r.out)
		}
		if !bytes.Equal(r.out, want) {
			t.Fatalf("request %d: batched response differs from the library gradient", i)
		}
	}
}

// assertBatched requires that the n concurrent requests actually rode
// multi-member batches (metrics moved), not n degenerate singletons.
func assertBatched(t *testing.T, s *serve.Server, url string, n int) {
	t.Helper()
	mean, count := s.Stats().BatchOccupancy.Mean()
	if count == 0 {
		t.Fatal("no batch executions recorded")
	}
	if s.Stats().Batched.Load() == 0 {
		t.Errorf("winrs_batched_total stayed 0 across %d concurrent same-key requests (mean occupancy %.1f)", n, mean)
	}
	metrics := scrapeMetrics(t, url)
	if !strings.Contains(metrics, "winrs_batch_occupancy_count") {
		t.Error("metrics missing winrs_batch_occupancy series")
	}
}

// TestBatchMixedGeometryInterleave interleaves three distinct plan keys
// concurrently; every response must match its own geometry's library
// gradient — a batch mixing keys would corrupt shapes or payloads.
func TestBatchMixedGeometryInterleave(t *testing.T) {
	_, ts := newBatchServer(t, 4)
	geos := []winrs.Params{
		{N: 1, IH: 16, IW: 16, FH: 3, FW: 3, IC: 4, OC: 4, PH: 1, PW: 1},
		{N: 2, IH: 12, IW: 12, FH: 3, FW: 3, IC: 2, OC: 3, PH: 1, PW: 1},
		{N: 1, IH: 14, IW: 14, FH: 5, FW: 5, IC: 2, OC: 2, PH: 2, PW: 2},
	}
	const perGeo = 4
	bodies := make([][]byte, len(geos))
	wants := make([][]byte, len(geos))
	for i, p := range geos {
		x, dy := randLayer(t, int64(200+i), p)
		lib, err := winrs.BackwardFilter(p, x, dy)
		if err != nil {
			t.Fatal(err)
		}
		bodies[i] = frameF32(t, p, x, dy)
		wants[i] = serve.AppendF32(nil, lib.Data)
	}

	var wg sync.WaitGroup
	errs := make(chan error, len(geos)*perGeo)
	for i := range geos {
		for j := 0; j < perGeo; j++ {
			wg.Add(1)
			go func(i, j int) {
				defer wg.Done()
				status, out, err := postRaw(ts.URL, bodies[i])
				if err != nil {
					errs <- fmt.Errorf("geo %d req %d: %w", i, j, err)
					return
				}
				if status != http.StatusOK {
					errs <- fmt.Errorf("geo %d req %d: status %d: %s", i, j, status, out)
					return
				}
				if !bytes.Equal(out, wants[i]) {
					errs <- fmt.Errorf("geo %d req %d: response crossed batches (payload differs)", i, j)
				}
			}(i, j)
		}
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

// TestBatchSealsOnSizeCap proves the size cap seals a batch without
// waiting out the linger window: with a far-future linger, max members
// arriving promptly must still complete promptly.
func TestBatchSealsOnSizeCap(t *testing.T) {
	s := serve.NewServer(serve.Config{
		Workers:     2,
		QueueDepth:  64,
		BatchMax:    3,
		BatchLinger: 30 * time.Second,
	})
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		s.Close()
	})

	p := winrs.Params{N: 1, IH: 12, IW: 12, FH: 3, FW: 3, IC: 2, OC: 2, PH: 1, PW: 1}
	x, dy := randLayer(t, 300, p)
	body := frameF32(t, p, x, dy)

	done := make(chan error, 3)
	t0 := time.Now()
	for i := 0; i < 3; i++ {
		go func() {
			status, out, err := postRaw(ts.URL, body)
			if err == nil && status != http.StatusOK {
				err = fmt.Errorf("status %d: %s", status, out)
			}
			done <- err
		}()
	}
	for i := 0; i < 3; i++ {
		select {
		case err := <-done:
			if err != nil {
				t.Fatal(err)
			}
		case <-time.After(10 * time.Second):
			t.Fatal("size-capped batch did not execute before the linger window")
		}
	}
	if elapsed := time.Since(t0); elapsed > 10*time.Second {
		t.Fatalf("batch took %v; the size cap should have sealed it immediately", elapsed)
	}
	if got := s.Runtime().Borrowed(); got != 0 {
		t.Errorf("Borrowed() = %d, want 0", got)
	}
}

// TestBatchDisabledBypass pins the default: without BatchMax/BatchLinger
// the coalescer is absent, requests run per-request, and the batch metrics
// stay zero.
func TestBatchDisabledBypass(t *testing.T) {
	s, ts := newTestServer(t)
	p := winrs.Params{N: 1, IH: 12, IW: 12, FH: 3, FW: 3, IC: 2, OC: 2, PH: 1, PW: 1}
	x, dy := randLayer(t, 301, p)
	for i := 0; i < 3; i++ {
		resp, out := postBackwardFilter(t, ts.URL, p, x, dy)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("status %d: %s", resp.StatusCode, out)
		}
	}
	if got := s.Stats().Batches.Load(); got != 0 {
		t.Errorf("winrs_batches_total = %d on a non-batching server, want 0", got)
	}
	metrics := scrapeMetrics(t, ts.URL)
	if !strings.Contains(metrics, "winrs_batches_total 0") {
		t.Error("metrics missing pre-registered winrs_batches_total 0")
	}
}
