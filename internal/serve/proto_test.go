package serve

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"winrs/internal/conv"
	"winrs/internal/fp16"
)

func TestRequestRoundtrip(t *testing.T) {
	p := conv.Params{N: 2, IH: 8, IW: 8, FH: 3, FW: 3, IC: 2, OC: 2, PH: 1, PW: 1}
	a := AppendF32(nil, []float32{1, 2.5, -3, float32(math.Inf(1))})
	b := AppendF32(nil, []float32{0.125})
	body, err := EncodeRequest(RequestHeader{
		Op: "backward_filter", Params: p, DType: F32, Segments: 4, NSM: 64,
	}, a, b)
	if err != nil {
		t.Fatal(err)
	}
	hdr, payload, err := DecodeRequest(bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	if hdr.Op != "backward_filter" || hdr.Params != p || hdr.DType != F32 ||
		hdr.Segments != 4 || hdr.NSM != 64 {
		t.Errorf("header roundtrip: %+v", hdr)
	}
	if !bytes.Equal(payload, append(append([]byte{}, a...), b...)) {
		t.Error("payload roundtrip mismatch")
	}
}

func TestDecodeRequestBadMagic(t *testing.T) {
	body, err := EncodeRequest(RequestHeader{})
	if err != nil {
		t.Fatal(err)
	}
	body[0] = 'X'
	if _, _, err := DecodeRequest(bytes.NewReader(body)); err == nil ||
		!strings.Contains(err.Error(), "magic") {
		t.Errorf("err = %v, want bad-magic error", err)
	}
}

func TestDecodeRequestTruncated(t *testing.T) {
	body, err := EncodeRequest(RequestHeader{Op: "forward"})
	if err != nil {
		t.Fatal(err)
	}
	for _, cut := range []int{0, 3, 7, len(body) - 2} {
		if _, _, err := DecodeRequest(bytes.NewReader(body[:cut])); err == nil {
			t.Errorf("truncation at %d not detected", cut)
		}
	}
}

func TestF32Codec(t *testing.T) {
	vals := []float32{0, -0, 1.5, float32(math.NaN()), float32(math.Inf(-1)), 3e38}
	enc := AppendF32(nil, vals)
	got := make([]float32, len(vals))
	if err := DecodeF32(enc, got); err != nil {
		t.Fatal(err)
	}
	for i := range vals {
		if math.Float32bits(vals[i]) != math.Float32bits(got[i]) {
			t.Errorf("element %d: bits differ", i)
		}
	}
	if err := DecodeF32(enc[:len(enc)-1], got); err == nil {
		t.Error("short f32 payload not detected")
	}
}

func TestF16Codec(t *testing.T) {
	vals := []fp16.Bits{0, 0x3C00, 0xFC00, 0x7FFF}
	enc := AppendF16(nil, vals)
	got := make([]fp16.Bits, len(vals))
	if err := DecodeF16(enc, got); err != nil {
		t.Fatal(err)
	}
	for i := range vals {
		if vals[i] != got[i] {
			t.Errorf("element %d: %04x vs %04x", i, vals[i], got[i])
		}
	}
	if err := DecodeF16(enc, got[:2]); err == nil {
		t.Error("length mismatch not detected")
	}
}

func TestOperandShapes(t *testing.T) {
	p := conv.Params{N: 2, IH: 8, IW: 10, FH: 3, FW: 3, IC: 4, OC: 6, PH: 1, PW: 1}
	for op, want := range map[Op][3]string{
		OpBackwardFilter: {p.XShape().String(), p.DYShape().String(), p.DWShape().String()},
		OpForward:        {p.XShape().String(), p.DWShape().String(), p.DYShape().String()},
		OpBackwardData:   {p.DYShape().String(), p.DWShape().String(), p.XShape().String()},
	} {
		a, b, out := OperandShapes(op, p)
		if a.String() != want[0] || b.String() != want[1] || out.String() != want[2] {
			t.Errorf("%v: got %v %v %v", op, a, b, out)
		}
	}
}

func TestParseOp(t *testing.T) {
	for i, name := range opNames {
		op, err := ParseOp(name)
		if err != nil || op != Op(i) {
			t.Errorf("ParseOp(%q) = %v, %v", name, op, err)
		}
		if op.String() != name {
			t.Errorf("String() = %q, want %q", op.String(), name)
		}
	}
	if _, err := ParseOp("gemm"); err == nil {
		t.Error("unknown op accepted")
	}
}
