package serve_test

import (
	"bytes"
	"encoding/json"
	"net/http"
	"strings"
	"testing"

	"winrs"
	"winrs/internal/serve"
)

// Grouped layers through the wire format and the serving path: the new
// optional "groups" field round-trips (zero stays off the wire for legacy
// clients), the plan cache keys grouped and ungrouped geometries apart,
// and the served grouped gradient is bit-identical to the library path.
func TestGroupedServeRoundTrip(t *testing.T) {
	_, ts := newTestServer(t)
	p := winrs.Params{N: 1, IH: 16, IW: 16, FH: 3, FW: 3, IC: 8, OC: 8, PH: 1, PW: 1, Groups: 4}
	x, dy := randLayer(t, 41, p)
	want, err := winrs.BackwardFilter(p, x, dy)
	if err != nil {
		t.Fatal(err)
	}

	resp, out := postBackwardFilter(t, ts.URL, p, x, dy)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, out)
	}
	if got := resp.Header.Get("X-Winrs-Cache"); got != "miss" {
		t.Errorf("first grouped request: cache header %q, want miss", got)
	}
	got := make([]float32, p.DWShape().Elems())
	if err := serve.DecodeF32(out, got); err != nil {
		t.Fatal(err)
	}
	for i := range want.Data {
		if got[i] != want.Data[i] {
			t.Fatalf("served grouped gradient differs from library at %d", i)
		}
	}

	// The ungrouped twin of the same outer geometry is a DIFFERENT plan:
	// it must miss the cache, not alias the grouped entry.
	pu := p
	pu.Groups = 0
	xu, dyu := randLayer(t, 41, pu)
	resp, out = postBackwardFilter(t, ts.URL, pu, xu, dyu)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("ungrouped twin: status %d: %s", resp.StatusCode, out)
	}
	if got := resp.Header.Get("X-Winrs-Cache"); got != "miss" {
		t.Errorf("ungrouped twin aliased the grouped plan: cache header %q, want miss", got)
	}

	// And the grouped key itself is cached.
	resp, _ = postBackwardFilter(t, ts.URL, p, x, dy)
	if got := resp.Header.Get("X-Winrs-Cache"); got != "hit" {
		t.Errorf("repeat grouped request: cache header %q, want hit", got)
	}
}

// The groups field is optional on the wire: zero serializes to nothing
// (legacy requests are byte-identical), non-zero round-trips.
func TestGroupedWireFieldOptional(t *testing.T) {
	p := winrs.Params{N: 1, IH: 8, IW: 8, FH: 3, FW: 3, IC: 4, OC: 4, PH: 1, PW: 1}
	legacy, err := json.Marshal(p)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(string(legacy), "groups") {
		t.Errorf("ungrouped params leak a groups field onto the wire: %s", legacy)
	}
	p.Groups = 2
	grouped, err := json.Marshal(p)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(grouped), `"groups":2`) {
		t.Errorf("grouped params missing groups field: %s", grouped)
	}

	body, err := serve.EncodeRequest(serve.RequestHeader{Op: "backward_filter", Params: p})
	if err != nil {
		t.Fatal(err)
	}
	hdr, _, err := serve.DecodeRequest(bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	if hdr.Params != p {
		t.Errorf("grouped header round-trip: %+v, want %+v", hdr.Params, p)
	}
}

// Plan-cache keys differing only in Groups resolve to distinct entries.
func TestGroupedPlanKeyDistinct(t *testing.T) {
	c := serve.NewPlanCache(64)
	p := winrs.Params{N: 1, IH: 12, IW: 12, FH: 3, FW: 3, IC: 4, OC: 4, PH: 1, PW: 1}
	pg := p
	pg.Groups = 4
	a, hit, err := c.Get(serve.PlanKey{Params: p})
	if err != nil || hit {
		t.Fatalf("ungrouped: hit=%v err=%v", hit, err)
	}
	b, hit, err := c.Get(serve.PlanKey{Params: pg})
	if err != nil || hit {
		t.Fatalf("grouped: hit=%v err=%v", hit, err)
	}
	if a == b {
		t.Fatal("grouped and ungrouped keys share one cache entry")
	}
	if c.Len() != 2 {
		t.Fatalf("cache holds %d entries, want 2", c.Len())
	}
	// The grouped entry's workspace is the per-group-sized arena; at equal
	// geometry it must not exceed the ungrouped entry's.
	if aw, bw := a.Cfg.WorkspaceBytes(), b.Cfg.WorkspaceBytes(); bw > aw {
		t.Errorf("grouped workspace %d B > ungrouped %d B", bw, aw)
	}
}
