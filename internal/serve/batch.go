package serve

import (
	"context"
	"runtime/debug"
	"sync"
	"sync/atomic"
	"time"

	"winrs/internal/core"
	"winrs/internal/obs"
	"winrs/internal/tensor"
)

// Cross-request micro-batching. A training cluster sends the same layer
// geometry from thousands of workers, so jobs that share a plan-cache key
// are coalesced into one batched execution: the batch takes ONE dispatcher
// slot, resolves the plan with ONE cache lookup and borrows ONE
// workspace/output arena pair that every member reuses in turn — the plan
// lookup, admission bookkeeping and arena traffic are amortized across
// requests, and the Ŵ-cache region of the shared workspace is refilled in
// place instead of round-tripping through the pool per request. Members
// still execute their own operands sequentially through the same
// core.ExecuteInCtx the per-request path uses, so a batched response is
// byte-for-byte identical to the single-request one.
//
// Failure isolation is per member: a member whose context is cancelled
// while the batch is pending simply drops out (its slot is skipped), a
// member whose compute is cancelled mid-flight aborts alone, and a member
// that panics is recovered inside the batch — its arenas are dropped for
// the GC (the pool-poisoning convention) and fresh ones are borrowed for
// the remaining members, which complete normally.

// batchMember is one request riding a coalesced batch. The claimed flag is
// the same protocol dispatchJob uses: set once by whoever decides the
// member's fate — the batch runner, or the submitter abandoning it on
// deadline while the batch is still pending/queued.
type batchMember struct {
	claimed atomic.Bool
	ctx     context.Context
	run     func(ctx context.Context, bx *BatchExec)
	// panicErr is written by the batch runner before done is closed; the
	// channel provides the edge.
	panicErr *PanicError
	// lifeErr is a batch-level lifecycle error (admission rejection,
	// shutdown) fanned out to every member.
	lifeErr error
	done    chan struct{}
}

func (m *batchMember) err() error {
	if m.panicErr != nil {
		return m.panicErr
	}
	return m.lifeErr
}

// pendingBatch accumulates same-key members until it seals.
type pendingBatch struct {
	key     PlanKey
	members []*batchMember
	sealed  bool
	timer   *time.Timer
}

// Coalescer groups submitted jobs by plan key and runs each sealed batch
// as one dispatcher job. A batch seals when it reaches maxBatch members or
// when the linger window since its first member expires, whichever comes
// first; a lone request therefore pays at most the linger window of extra
// latency, and only when no same-key traffic joins it.
type Coalescer struct {
	disp   *Dispatcher
	max    int
	linger time.Duration
	// base is the batch's queue-phase context (the server's closing
	// context): batches abandoned in the dispatcher queue on shutdown fan
	// ErrClosed-equivalent errors to their members. Member computes use
	// their own request contexts.
	base context.Context

	begin func(key PlanKey) *BatchExec // Runtime.beginBatch

	mu      sync.Mutex
	closed  bool
	pending map[PlanKey]*pendingBatch

	// flushed counts batches handed to the dispatcher; tests and Close use
	// it to reason about pending state. Metrics are observed per run.
	batches   *obs.Counter
	batched   *obs.Counter
	occupancy *obs.ValueHistogram
}

// newCoalescer wires a coalescer in front of disp. max ≤ 1 or linger ≤ 0
// disables coalescing — callers should bypass the coalescer entirely then.
func newCoalescer(disp *Dispatcher, rt *Runtime, max int, linger time.Duration,
	base context.Context, batches, batched *obs.Counter, occupancy *obs.ValueHistogram) *Coalescer {
	return &Coalescer{
		disp:      disp,
		max:       max,
		linger:    linger,
		base:      base,
		begin:     rt.beginBatch,
		pending:   make(map[PlanKey]*pendingBatch),
		batches:   batches,
		batched:   batched,
		occupancy: occupancy,
	}
}

// Do submits run as a member of the key's batch and blocks until the
// member's fate is decided. Like Dispatcher.Do it returns nil when run was
// invoked (compute errors travel through the closure's own side channel),
// ctx.Err() when the member was abandoned before running, ErrOverloaded /
// ErrClosed when the batch could not be admitted, and the member's
// *PanicError when run panicked (the batch's other members are unaffected).
func (c *Coalescer) Do(ctx context.Context, key PlanKey, run func(ctx context.Context, bx *BatchExec)) error {
	m := &batchMember{ctx: ctx, run: run, done: make(chan struct{})}

	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return ErrClosed
	}
	b := c.pending[key]
	if b == nil {
		b = &pendingBatch{key: key}
		c.pending[key] = b
		b.timer = time.AfterFunc(c.linger, func() { c.sealAndSubmit(b) })
	}
	b.members = append(b.members, m)
	var launch *pendingBatch
	if len(b.members) >= c.max {
		c.sealLocked(b)
		launch = b
	}
	c.mu.Unlock()
	if launch != nil {
		go c.submit(launch)
	}

	select {
	case <-m.done:
		return m.err()
	case <-ctx.Done():
		if m.claimed.CompareAndSwap(false, true) {
			return ctx.Err() // still pending or queued: abandoned, never runs
		}
		<-m.done // the batch runner claimed it first: wait it out
		return m.err()
	}
}

// sealLocked marks b sealed and detaches it from the pending map. Caller
// holds c.mu.
func (c *Coalescer) sealLocked(b *pendingBatch) {
	b.sealed = true
	if b.timer != nil {
		b.timer.Stop()
	}
	if c.pending[b.key] == b {
		delete(c.pending, b.key)
	}
}

// sealAndSubmit is the linger-timer path: seal unless the size cap beat
// the timer to it.
func (c *Coalescer) sealAndSubmit(b *pendingBatch) {
	c.mu.Lock()
	if b.sealed {
		c.mu.Unlock()
		return
	}
	c.sealLocked(b)
	c.mu.Unlock()
	c.submit(b)
}

// submit hands the sealed batch to the dispatcher as one job and fans a
// lifecycle failure (queue full, shutdown) out to every member that has
// not already been decided.
func (c *Coalescer) submit(b *pendingBatch) {
	err := c.disp.Do(c.base, func(context.Context) { c.runBatch(b) })
	if err == nil {
		return
	}
	for _, m := range b.members {
		if m.claimed.CompareAndSwap(false, true) {
			m.lifeErr = err
			close(m.done)
		}
	}
}

// runBatch executes the batch on a dispatcher worker: one plan resolution,
// one arena borrow, members in arrival order. Each member is claimed with
// the same CAS protocol the dispatcher uses, so an abandoned member is
// skipped without running and a running member's submitter waits it out.
func (c *Coalescer) runBatch(b *pendingBatch) {
	if c.batches != nil {
		c.batches.Add(1)
	}
	if c.occupancy != nil {
		c.occupancy.Observe(float64(len(b.members)))
	}
	if c.batched != nil && len(b.members) > 1 {
		c.batched.Add(uint64(len(b.members)))
	}
	bx := c.begin(b.key)
	defer bx.end()
	for _, m := range b.members {
		if !m.claimed.CompareAndSwap(false, true) {
			continue // abandoned while pending/queued; nobody is waiting
		}
		if err := m.ctx.Err(); err != nil {
			// Claimed but the request is already dead: report the context
			// error without touching the arenas.
			m.lifeErr = err
			close(m.done)
			continue
		}
		c.runMember(m, bx)
		close(m.done)
	}
}

// runMember invokes one member under a recover barrier: a panic poisons
// only this member (converted to its *PanicError) and the shared arenas
// are dropped, not recycled — the next member re-borrows fresh ones.
func (c *Coalescer) runMember(m *batchMember, bx *BatchExec) {
	defer func() {
		if r := recover(); r != nil {
			m.panicErr = &PanicError{Val: r, Stack: debug.Stack()}
			bx.poison()
		}
	}()
	m.run(m.ctx, bx)
}

// Close seals and submits every pending batch immediately and rejects
// further submissions. Members of the flushed batches still execute (or
// fail with the dispatcher's shutdown error); their request contexts are
// typically already cancelled by the server's closing context, so computes
// abort at the next chunk claim.
func (c *Coalescer) Close() {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return
	}
	c.closed = true
	var flush []*pendingBatch
	for _, b := range c.pending {
		c.sealLocked(b)
		flush = append(flush, b)
	}
	c.mu.Unlock()
	for _, b := range flush {
		go c.submit(b)
	}
}

// BatchExec is the shared execution state of one running batch: the
// resolved plan entry plus the workspace/output arenas every member
// executes through in turn. It is used from exactly one goroutine (the
// batch's dispatcher worker), so no locking is needed; members must finish
// with a returned gradient before returning, because the next member
// overwrites the same arena.
type BatchExec struct {
	rt  *Runtime
	key PlanKey
	e   *Entry
	hit bool
	err error // plan-resolution failure, returned to every member

	ws  *core.Workspace // WinRS entries only; nil after a panic until re-borrowed
	out *tensor.Float32
}

// beginBatch resolves key once and borrows the batch's shared arenas. A
// resolution failure is carried in the BatchExec and surfaces from every
// member's execute call, mapping to the same per-request compute error the
// un-batched path would produce.
func (rt *Runtime) beginBatch(key PlanKey) *BatchExec {
	bx := &BatchExec{rt: rt, key: key}
	e, hit, err := rt.cache.Get(key)
	if err != nil {
		bx.err = err
		return bx
	}
	bx.e, bx.hit = e, hit
	bx.borrow()
	return bx
}

// borrow acquires the shared arenas and counts them against the runtime's
// borrow ledger.
func (bx *BatchExec) borrow() {
	if bx.e.Cfg != nil {
		bx.ws = bx.e.AcquireWorkspace()
	}
	bx.out = bx.e.acquireOut()
	bx.rt.borrowed.Add(1)
}

// poison drops the borrowed arenas for the GC after a member panic: a
// sched helper could in principle still be writing into a workspace
// abandoned mid-unwind, and a dropped arena can corrupt nothing. The next
// member re-borrows fresh arenas lazily.
func (bx *BatchExec) poison() {
	if bx.out == nil && bx.ws == nil {
		return
	}
	bx.ws, bx.out = nil, nil
	bx.rt.borrowed.Add(-1)
}

// end recycles the arenas (unless a trailing panic dropped them).
func (bx *BatchExec) end() {
	if bx.out == nil {
		return
	}
	if bx.ws != nil {
		bx.e.ReleaseWorkspace(bx.ws)
	}
	bx.e.releaseOut(bx.out)
	bx.ws, bx.out = nil, nil
	bx.rt.borrowed.Add(-1)
}

// ensure re-borrows arenas if a previous member's panic dropped them.
func (bx *BatchExec) ensure() {
	if bx.out == nil {
		bx.borrow()
	}
}

// BackwardFilter executes one member's FP32 gradient through the batch's
// shared plan and arenas; semantics match Runtime.BackwardFilterPooledCtx
// (fault hook, cancellation, pooled result handed to use).
func (bx *BatchExec) BackwardFilter(ctx context.Context, x, dy *tensor.Float32,
	use func(dw *tensor.Float32, e *Entry, hit bool) error) error {
	if bx.err != nil {
		return bx.err
	}
	bx.ensure()
	if err := bx.rt.injectFault(ctx, bx.key); err != nil {
		return err
	}
	if bx.e.Cfg == nil {
		if err := bx.e.exec.ExecuteCtx(ctx, bx.key.Params, x, dy, bx.out); err != nil {
			return err
		}
		return use(bx.out, bx.e, bx.hit)
	}
	dw, err := core.ExecuteInCtx(ctx, bx.e.Cfg, bx.ws, x, dy, bx.out)
	if err != nil {
		return err
	}
	return use(dw, bx.e, bx.hit)
}

// BackwardFilterHalf is BackwardFilter for binary16 operands.
func (bx *BatchExec) BackwardFilterHalf(ctx context.Context, x, dy *tensor.Half,
	use func(dw *tensor.Float32, e *Entry, hit bool) error) error {
	if bx.err != nil {
		return bx.err
	}
	bx.ensure()
	if err := bx.rt.injectFault(ctx, bx.key); err != nil {
		return err
	}
	if bx.e.Cfg == nil {
		if err := bx.e.exec.ExecuteHalfCtx(ctx, bx.key.Params, x, dy, bx.out); err != nil {
			return err
		}
		return use(bx.out, bx.e, bx.hit)
	}
	dw, err := core.ExecuteHalfInCtx(ctx, bx.e.Cfg, bx.ws, x, dy, bx.out)
	if err != nil {
		return err
	}
	return use(dw, bx.e, bx.hit)
}
