package serve

import (
	"math"
	"sync/atomic"
	"time"
)

// Stats aggregates the serving counters exposed on /metrics. All fields
// are updated with atomics; reads are approximate snapshots, which is all
// a metrics endpoint needs.
type Stats struct {
	OK         [numOps]atomic.Uint64 // completed requests per op
	ClientErr  atomic.Uint64         // malformed requests (4xx)
	ComputeErr atomic.Uint64         // plan/compute failures (422)
	Rejected   atomic.Uint64         // admission-control rejections (429)
	Deadline   atomic.Uint64         // expired while queued (503)

	hist latencyHist
}

// Observe records one successful request.
func (s *Stats) Observe(op Op, d time.Duration) {
	s.OK[op].Add(1)
	s.hist.record(d)
}

// Latency returns the approximate q-quantile (0 < q < 1) of completed
// request latency, in seconds, and the number of observations.
func (s *Stats) Latency(q float64) (seconds float64, count uint64) {
	return s.hist.quantile(q)
}

// latencyHist is a fixed-bucket geometric histogram: 96 buckets with
// bounds 1µs·1.25ⁱ (≈25% relative resolution, covering 1µs…1800s). Lock-
// free record, approximate upper-bound quantiles — exactly what a p50/p99
// stats surface needs and nothing more.
type latencyHist struct {
	counts [histBuckets]atomic.Uint64
}

const (
	histBuckets = 96
	histBase    = 1e3  // bucket 0 upper bound: 1µs in nanoseconds
	histRatio   = 1.25 // geometric growth per bucket
)

var histLogRatio = math.Log(histRatio)

func histBucket(d time.Duration) int {
	ns := float64(d.Nanoseconds())
	if ns <= histBase {
		return 0
	}
	i := int(math.Ceil(math.Log(ns/histBase) / histLogRatio))
	if i >= histBuckets {
		return histBuckets - 1
	}
	return i
}

// histBound returns bucket i's upper bound in seconds.
func histBound(i int) float64 {
	return histBase * math.Pow(histRatio, float64(i)) / 1e9
}

func (h *latencyHist) record(d time.Duration) {
	h.counts[histBucket(d)].Add(1)
}

func (h *latencyHist) quantile(q float64) (seconds float64, count uint64) {
	var total uint64
	var snap [histBuckets]uint64
	for i := range snap {
		snap[i] = h.counts[i].Load()
		total += snap[i]
	}
	if total == 0 {
		return 0, 0
	}
	target := uint64(q * float64(total))
	if target >= total {
		target = total - 1
	}
	var cum uint64
	for i, c := range snap {
		cum += c
		if cum > target {
			return histBound(i), total
		}
	}
	return histBound(histBuckets - 1), total
}
