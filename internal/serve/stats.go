package serve

import (
	"time"

	"winrs/internal/backend"
	"winrs/internal/obs"
)

// Stats aggregates the serving counters exposed on /metrics. The series
// live in the server's obs.Registry, so /metrics rendering, quantiles and
// idempotent registration are the registry's job; this struct only keeps
// the typed handles the hot path updates. All updates are lock-free
// atomics; reads are approximate snapshots, which is all a metrics
// endpoint needs.
type Stats struct {
	OK         [numOps]*obs.Counter // completed requests per op
	ClientErr  *obs.Counter         // malformed requests (4xx)
	ComputeErr *obs.Counter         // plan/compute failures (422)
	Rejected   *obs.Counter         // admission-control rejections (429)
	Deadline   *obs.Counter         // deadline expired, queued or mid-compute (503)
	Cancelled  *obs.Counter         // client gone (disconnect): nothing written
	Panics     *obs.Counter         // recovered compute panics (500)
	WriteErr   *obs.Counter         // response-write failures after commit

	// Dispatch counts completed backward-filter executions per backend
	// (winrs_dispatch_total{backend=...}); all five series are
	// pre-registered so /metrics shows zeros before any dispatch.
	Dispatch map[string]*obs.Counter

	// Micro-batching series: Batches counts coalesced executions, Batched
	// counts requests that rode a batch with two or more members, and
	// BatchOccupancy distributes members-per-batch. All three stay zero
	// when coalescing is disabled.
	Batches        *obs.Counter
	Batched        *obs.Counter
	BatchOccupancy *obs.ValueHistogram

	hist *obs.Histogram
}

// newStats registers the serving series into reg and returns the handles.
func newStats(reg *obs.Registry) *Stats {
	s := &Stats{
		ClientErr:  reg.Counter("winrs_client_errors_total", "Malformed requests (4xx)."),
		ComputeErr: reg.Counter("winrs_compute_errors_total", "Plan or compute failures (422)."),
		Rejected:   reg.Counter("winrs_rejected_total", "Admission-control rejections (429)."),
		Deadline:   reg.Counter("winrs_deadline_total", "Requests whose deadline expired, queued or mid-compute (503)."),
		Cancelled:  reg.Counter("winrs_cancelled_total", "Requests abandoned because the client disconnected."),
		Panics:     reg.Counter("winrs_panics_total", "Compute panics recovered by the dispatcher (500)."),
		WriteErr:   reg.Counter("winrs_write_errors_total", "Response writes that failed after the response was committed."),
		Batches:    reg.Counter("winrs_batches_total", "Coalesced batch executions."),
		Batched: reg.Counter("winrs_batched_total",
			"Requests that executed inside a multi-member batch."),
		BatchOccupancy: reg.ValueHistogram("winrs_batch_occupancy",
			"Members per coalesced batch execution.",
			[]float64{1, 2, 4, 8, 16, 32, 64}),
		hist: reg.Histogram("winrs_request_latency_seconds",
			"Completed request latency (queue + compute).",
			[]float64{0.5, 0.9, 0.99}),
	}
	for op := Op(0); op < numOps; op++ {
		s.OK[op] = reg.Counter("winrs_requests_total",
			"Completed requests per operation.", obs.Label{Key: "op", Value: op.String()})
	}
	s.Dispatch = make(map[string]*obs.Counter)
	for _, name := range backend.Default().Names() {
		s.Dispatch[name] = reg.Counter("winrs_dispatch_total",
			"Backward-filter executions per backend.",
			obs.Label{Key: "backend", Value: name})
	}
	return s
}

// DispatchTo counts one backward-filter execution on the named backend.
func (s *Stats) DispatchTo(name string) {
	if c, ok := s.Dispatch[name]; ok {
		c.Add(1)
	}
}

// Observe records one successful request.
func (s *Stats) Observe(op Op, d time.Duration) {
	s.OK[op].Add(1)
	s.hist.Observe(d)
}

// Latency returns the approximate q-quantile (0 < q < 1) of completed
// request latency, in seconds, and the number of observations.
func (s *Stats) Latency(q float64) (seconds float64, count uint64) {
	return s.hist.Quantile(q)
}
