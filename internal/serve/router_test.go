package serve_test

// In-process router tests: two real serve.Servers behind httptest listeners
// with a Router fronting them. Stickiness is asserted two ways — the
// X-Winrs-Shard header must be constant per geometry, and the fleet-wide
// plans_cached sum must equal the number of distinct geometries (each plan
// built exactly once, on exactly one shard).

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"winrs"
	"winrs/internal/serve"
)

type routerFixture struct {
	router *serve.Router
	front  *httptest.Server
	nodes  []*httptest.Server
}

func newRouterFixture(t *testing.T, nodeCount int) *routerFixture {
	t.Helper()
	f := &routerFixture{}
	var urls []string
	for i := 0; i < nodeCount; i++ {
		s := serve.NewServer(serve.Config{Workers: 2, QueueDepth: 64})
		ts := httptest.NewServer(s.Handler())
		t.Cleanup(func() {
			ts.Close()
			s.Close()
		})
		f.nodes = append(f.nodes, ts)
		urls = append(urls, ts.URL)
	}
	f.router = serve.NewRouter(serve.RouterConfig{Nodes: urls})
	f.front = httptest.NewServer(f.router.Handler())
	t.Cleanup(f.front.Close)
	return f
}

// plansCached scrapes one node's /healthz for its plan-cache population.
func plansCached(t *testing.T, nodeURL string) int {
	t.Helper()
	resp, err := http.Get(nodeURL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var h struct {
		PlansCached int `json:"plans_cached"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
		t.Fatal(err)
	}
	return h.PlansCached
}

// postViaRouter posts through the front and returns status, body, and the
// shard header.
func postViaRouter(url string, body []byte) (int, []byte, string, error) {
	resp, err := http.Post(url+"/v1/backward_filter", "application/octet-stream",
		bytes.NewReader(body))
	if err != nil {
		return 0, nil, "", err
	}
	defer resp.Body.Close()
	out, err := io.ReadAll(resp.Body)
	return resp.StatusCode, out, resp.Header.Get("X-Winrs-Shard"), err
}

func routerGeos(n int) []winrs.Params {
	geos := make([]winrs.Params, n)
	for i := range geos {
		geos[i] = winrs.Params{
			N: 1, IH: 10 + 2*i, IW: 10 + 2*i, FH: 3, FW: 3,
			IC: 1 + i%3, OC: 1 + (i+1)%3, PH: 1, PW: 1,
		}
	}
	return geos
}

// TestRouterShardStickiness drives 12 distinct geometries, three requests
// each, through a 2-node fleet: every response must be correct, every
// geometry must stay on one shard, both shards must see traffic, and the
// fleet must hold exactly 12 plans total.
func TestRouterShardStickiness(t *testing.T) {
	f := newRouterFixture(t, 2)
	geos := routerGeos(12)
	shardOf := make([]string, len(geos))
	for i, p := range geos {
		x, dy := randLayer(t, int64(500+i), p)
		lib, err := winrs.BackwardFilter(p, x, dy)
		if err != nil {
			t.Fatal(err)
		}
		want := serve.AppendF32(nil, lib.Data)
		body := frameF32(t, p, x, dy)
		for rep := 0; rep < 3; rep++ {
			status, out, shard, err := postViaRouter(f.front.URL, body)
			if err != nil {
				t.Fatalf("geo %d rep %d: %v", i, rep, err)
			}
			if status != http.StatusOK {
				t.Fatalf("geo %d rep %d: status %d: %s", i, rep, status, out)
			}
			if !bytes.Equal(out, want) {
				t.Fatalf("geo %d rep %d: forwarded response differs from the library gradient", i, rep)
			}
			if shard == "" {
				t.Fatalf("geo %d rep %d: missing X-Winrs-Shard header", i, rep)
			}
			if rep == 0 {
				shardOf[i] = shard
			} else if shard != shardOf[i] {
				t.Fatalf("geo %d moved shards: %q then %q", i, shardOf[i], shard)
			}
		}
	}

	seen := map[string]bool{}
	for _, s := range shardOf {
		seen[s] = true
	}
	if len(seen) < 2 {
		t.Errorf("all 12 geometries landed on one shard; the ring is not spreading")
	}

	total := 0
	for _, n := range f.nodes {
		total += plansCached(t, n.URL)
	}
	if total != len(geos) {
		t.Errorf("fleet holds %d plans for %d distinct geometries; stickiness leaked duplicates", total, len(geos))
	}
}

// TestRouterAdminAddDrain exercises the live-membership endpoints: drain
// must stop new picks for the node while the other keeps serving, and a
// re-add must restore it.
func TestRouterAdminAddDrain(t *testing.T) {
	f := newRouterFixture(t, 2)
	drained := f.nodes[0].URL

	resp, err := http.Post(f.front.URL+"/admin/nodes/drain?node="+drained+"&timeout=5s", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("drain: status %d", resp.StatusCode)
	}

	geos := routerGeos(8)
	p0 := geos[0]
	x, dy := randLayer(t, 600, p0)
	for i, p := range geos {
		x, dy := randLayer(t, int64(600+i), p)
		body := frameF32(t, p, x, dy)
		status, out, shard, err := postViaRouter(f.front.URL, body)
		if err != nil || status != http.StatusOK {
			t.Fatalf("geo %d after drain: status %d err %v: %s", i, status, err, out)
		}
		if shard == drained {
			t.Fatalf("geo %d routed to the drained node", i)
		}
	}

	var ring struct {
		Active int `json:"active"`
		Nodes  []struct {
			Addr     string `json:"addr"`
			Draining bool   `json:"draining"`
		} `json:"nodes"`
	}
	rr, err := http.Get(f.front.URL + "/admin/ring")
	if err != nil {
		t.Fatal(err)
	}
	if err := json.NewDecoder(rr.Body).Decode(&ring); err != nil {
		t.Fatal(err)
	}
	rr.Body.Close()
	if ring.Active != 1 || len(ring.Nodes) != 2 {
		t.Errorf("ring after drain: active=%d nodes=%d, want 1 active of 2", ring.Active, len(ring.Nodes))
	}

	// Re-add restores the node; the drained geometry set must again reach
	// both shards eventually (at least serve correctly through the front).
	resp, err = http.Post(f.front.URL+"/admin/nodes/add?node="+drained, "", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("re-add: status %d", resp.StatusCode)
	}
	body := frameF32(t, p0, x, dy)
	status, out, _, err := postViaRouter(f.front.URL, body)
	if err != nil || status != http.StatusOK {
		t.Fatalf("request after re-add: status %d err %v: %s", status, err, out)
	}
}

// TestRouterDrainWaitsForInflight holds a forward in flight with a fault
// hook and asserts the drain endpoint blocks until it completes — the
// zero-dropped-requests property the loadtest exercises across processes.
func TestRouterDrainWaitsForInflight(t *testing.T) {
	s := serve.NewServer(serve.Config{Workers: 2, QueueDepth: 64})
	node := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		node.Close()
		s.Close()
	})
	rt := serve.NewRouter(serve.RouterConfig{Nodes: []string{node.URL}})
	front := httptest.NewServer(rt.Handler())
	t.Cleanup(front.Close)

	entered := make(chan struct{})
	release := make(chan struct{})
	var once sync.Once
	s.Runtime().SetFaultHook(func(ctx context.Context, key serve.PlanKey) error {
		once.Do(func() { close(entered) })
		select {
		case <-release:
		case <-ctx.Done():
		}
		return nil
	})
	defer s.Runtime().SetFaultHook(nil)

	p := winrs.Params{N: 1, IH: 12, IW: 12, FH: 3, FW: 3, IC: 2, OC: 2, PH: 1, PW: 1}
	x, dy := randLayer(t, 700, p)
	lib, err := winrs.BackwardFilter(p, x, dy)
	if err != nil {
		t.Fatal(err)
	}
	want := serve.AppendF32(nil, lib.Data)
	body := frameF32(t, p, x, dy)

	slow := make(chan error, 1)
	go func() {
		status, out, _, err := postViaRouter(front.URL, body)
		if err == nil && (status != http.StatusOK || !bytes.Equal(out, want)) {
			err = fmt.Errorf("in-flight request during drain: status %d", status)
		}
		slow <- err
	}()
	select {
	case <-entered:
	case <-time.After(10 * time.Second):
		t.Fatal("forward never reached the node")
	}

	drainDone := make(chan string, 1)
	go func() {
		resp, err := http.Post(front.URL+"/admin/nodes/drain?node="+node.URL+"&timeout=10s", "", nil)
		if err != nil {
			drainDone <- err.Error()
			return
		}
		defer resp.Body.Close()
		b, _ := io.ReadAll(resp.Body)
		if resp.StatusCode != http.StatusOK {
			drainDone <- fmt.Sprintf("status %d: %s", resp.StatusCode, b)
			return
		}
		drainDone <- ""
	}()

	// The drain must still be waiting while the forward is held.
	select {
	case msg := <-drainDone:
		t.Fatalf("drain returned (%q) while a forward was in flight", msg)
	case <-time.After(300 * time.Millisecond):
	}

	close(release)
	if err := <-slow; err != nil {
		t.Fatalf("in-flight request failed across the drain: %v", err)
	}
	select {
	case msg := <-drainDone:
		if msg != "" {
			t.Fatalf("drain failed: %s", msg)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("drain did not complete after the in-flight forward finished")
	}

	if !strings.Contains(scrapeRouterMetrics(t, front.URL), "winrs_router_nodes_active 0") {
		t.Error("router metrics do not show zero active nodes after the drain")
	}
}

func scrapeRouterMetrics(t *testing.T, url string) string {
	t.Helper()
	resp, err := http.Get(url + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

// TestRouterNoActiveNode pins the 503 + Retry-After contract when the ring
// is empty.
func TestRouterNoActiveNode(t *testing.T) {
	rt := serve.NewRouter(serve.RouterConfig{})
	front := httptest.NewServer(rt.Handler())
	t.Cleanup(front.Close)

	p := winrs.Params{N: 1, IH: 12, IW: 12, FH: 3, FW: 3, IC: 2, OC: 2, PH: 1, PW: 1}
	x, dy := randLayer(t, 701, p)
	body := frameF32(t, p, x, dy)
	resp, err := http.Post(front.URL+"/v1/backward_filter", "application/octet-stream",
		bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("status %d, want 503", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("missing Retry-After header on ring-empty rejection")
	}
}
