package serve

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
)

// ErrOverloaded is returned by Dispatcher.Do when the queue is full. The
// HTTP layer maps it to 429 Too Many Requests with Retry-After, the
// "graceful rejection" half of admission control: under overload the
// service sheds load immediately instead of queueing unboundedly.
var ErrOverloaded = errors.New("serve: queue full")

// ErrClosed is returned by Do after Close.
var ErrClosed = errors.New("serve: dispatcher closed")

// Dispatcher is a bounded worker pool with admission control: at most
// `workers` jobs run concurrently and at most `queueDepth` jobs wait.
// Submissions beyond that fail fast with ErrOverloaded, and a job whose
// context expires while still queued is abandoned without running.
type Dispatcher struct {
	jobs     chan *dispatchJob
	mu       sync.RWMutex // guards closed vs. sends on jobs
	closed   bool
	wg       sync.WaitGroup
	inflight atomic.Int64
}

type dispatchJob struct {
	// claimed is set once by whoever decides the job's fate: the worker
	// that runs it, or the submitter abandoning it on deadline.
	claimed atomic.Bool
	run     func()
	done    chan struct{}
}

// NewDispatcher starts `workers` workers (minimum 1) consuming a queue of
// depth `queueDepth` (minimum 0: admission only while a worker is free).
func NewDispatcher(workers, queueDepth int) *Dispatcher {
	if workers < 1 {
		workers = 1
	}
	if queueDepth < 0 {
		queueDepth = 0
	}
	d := &Dispatcher{jobs: make(chan *dispatchJob, queueDepth)}
	d.wg.Add(workers)
	for i := 0; i < workers; i++ {
		go d.worker()
	}
	return d
}

func (d *Dispatcher) worker() {
	defer d.wg.Done()
	for j := range d.jobs {
		if j.claimed.CompareAndSwap(false, true) {
			d.inflight.Add(1)
			j.run()
			d.inflight.Add(-1)
		}
		close(j.done)
	}
}

// Do submits fn and waits for it to finish. It returns ErrOverloaded
// immediately when the queue is full and ctx.Err() if the deadline expires
// while the job is still queued (the job then never runs). Once fn has
// started it always runs to completion, and Do waits for it even past the
// deadline — callers may therefore touch shared state from fn without
// synchronizing against an early return.
func (d *Dispatcher) Do(ctx context.Context, fn func()) error {
	j := &dispatchJob{run: fn, done: make(chan struct{})}
	d.mu.RLock()
	if d.closed {
		d.mu.RUnlock()
		return ErrClosed
	}
	select {
	case d.jobs <- j:
		d.mu.RUnlock()
	default:
		d.mu.RUnlock()
		return ErrOverloaded
	}
	select {
	case <-j.done:
		return nil
	case <-ctx.Done():
		if j.claimed.CompareAndSwap(false, true) {
			return ctx.Err() // still queued: abandoned, never runs
		}
		<-j.done // a worker claimed it first: it is running, wait it out
		return nil
	}
}

// QueueDepth returns the number of jobs currently waiting for a worker.
func (d *Dispatcher) QueueDepth() int { return len(d.jobs) }

// InFlight returns the number of jobs currently executing.
func (d *Dispatcher) InFlight() int64 { return d.inflight.Load() }

// Close rejects further submissions and waits for queued and running jobs
// to drain.
func (d *Dispatcher) Close() {
	d.mu.Lock()
	if d.closed {
		d.mu.Unlock()
		return
	}
	d.closed = true
	close(d.jobs)
	d.mu.Unlock()
	d.wg.Wait()
}
