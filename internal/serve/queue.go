package serve

import (
	"context"
	"errors"
	"fmt"
	"runtime/debug"
	"sync"
	"sync/atomic"
)

// ErrOverloaded is returned by Dispatcher.Do when the queue is full. The
// HTTP layer maps it to 429 Too Many Requests with Retry-After, the
// "graceful rejection" half of admission control: under overload the
// service sheds load immediately instead of queueing unboundedly.
var ErrOverloaded = errors.New("serve: queue full")

// ErrClosed is returned by Do after Close.
var ErrClosed = errors.New("serve: dispatcher closed")

// ErrPanic is the sentinel matched (via errors.Is) by the *PanicError
// that Do returns when the submitted job panicked. The worker that ran
// the job recovers and survives; one bad request never shrinks the pool
// or kills the daemon.
var ErrPanic = errors.New("serve: job panicked")

// PanicError carries a recovered job panic: the panic value and the stack
// of the panicking goroutine, captured inside the recovering worker.
// errors.Is(err, ErrPanic) matches it.
type PanicError struct {
	Val   any
	Stack []byte
}

func (e *PanicError) Error() string { return fmt.Sprintf("serve: job panicked: %v", e.Val) }

// Is reports ErrPanic as this error's sentinel.
func (e *PanicError) Is(target error) bool { return target == ErrPanic }

// Dispatcher is a bounded worker pool with admission control: at most
// `workers` jobs run concurrently and at most `queueDepth` jobs wait.
// Submissions beyond that fail fast with ErrOverloaded, and a job whose
// context expires while still queued is abandoned without running.
// Workers are panic-isolated: a job that panics is recovered into a
// *PanicError (returned by its Do call) and the worker keeps serving.
type Dispatcher struct {
	jobs     chan *dispatchJob
	mu       sync.RWMutex // guards closed vs. sends on jobs
	closed   bool
	wg       sync.WaitGroup
	inflight atomic.Int64
}

type dispatchJob struct {
	// claimed is set once by whoever decides the job's fate: the worker
	// that runs it, or the submitter abandoning it on deadline.
	claimed atomic.Bool
	ctx     context.Context
	run     func(context.Context)
	// panicErr is written by the running worker before done is closed and
	// read by the submitter after done; the channel provides the edge.
	panicErr *PanicError
	done     chan struct{}
}

// invoke runs the job under a recover barrier, converting a panic into the
// job's panicErr. The deferred recover also makes the unwinding run every
// defer below the job function first, so resources the job acquired under
// defer (pooled workspaces, outputs) are released before the worker moves
// on.
func (j *dispatchJob) invoke() {
	defer func() {
		if r := recover(); r != nil {
			j.panicErr = &PanicError{Val: r, Stack: debug.Stack()}
		}
	}()
	j.run(j.ctx)
}

// NewDispatcher starts `workers` workers (minimum 1) consuming a queue of
// depth `queueDepth` (minimum 0: admission only while a worker is free).
func NewDispatcher(workers, queueDepth int) *Dispatcher {
	if workers < 1 {
		workers = 1
	}
	if queueDepth < 0 {
		queueDepth = 0
	}
	d := &Dispatcher{jobs: make(chan *dispatchJob, queueDepth)}
	d.wg.Add(workers)
	for i := 0; i < workers; i++ {
		go d.worker()
	}
	return d
}

func (d *Dispatcher) worker() {
	defer d.wg.Done()
	for j := range d.jobs {
		if j.claimed.CompareAndSwap(false, true) {
			d.inflight.Add(1)
			j.invoke()
			d.inflight.Add(-1)
		}
		close(j.done)
	}
}

// Do submits fn and waits for it to finish. It returns ErrOverloaded
// immediately when the queue is full and ctx.Err() if the deadline expires
// while the job is still queued (the job then never runs). Once fn has
// started it receives ctx and always runs to its own return — cooperative
// cancellation inside fn (e.g. core.ExecuteInCtx) is how a deadline or
// client disconnect aborts mid-compute — and Do waits for it even past the
// deadline, so callers may touch shared state from fn without
// synchronizing against an early return. A panicking fn is recovered on
// the worker, which survives; Do then returns the *PanicError
// (errors.Is(err, ErrPanic)).
func (d *Dispatcher) Do(ctx context.Context, fn func(context.Context)) error {
	j := &dispatchJob{ctx: ctx, run: fn, done: make(chan struct{})}
	d.mu.RLock()
	if d.closed {
		d.mu.RUnlock()
		return ErrClosed
	}
	select {
	case d.jobs <- j:
		d.mu.RUnlock()
	default:
		d.mu.RUnlock()
		return ErrOverloaded
	}
	select {
	case <-j.done:
		return j.err()
	case <-ctx.Done():
		if j.claimed.CompareAndSwap(false, true) {
			return ctx.Err() // still queued: abandoned, never runs
		}
		<-j.done // a worker claimed it first: it is running, wait it out
		return j.err()
	}
}

// err converts a finished job's outcome into Do's return value. Only
// valid after done is closed.
func (j *dispatchJob) err() error {
	if j.panicErr != nil {
		return j.panicErr
	}
	return nil
}

// QueueDepth returns the number of jobs currently waiting for a worker.
func (d *Dispatcher) QueueDepth() int { return len(d.jobs) }

// InFlight returns the number of jobs currently executing.
func (d *Dispatcher) InFlight() int64 { return d.inflight.Load() }

// Close rejects further submissions and waits for queued and running jobs
// to drain.
func (d *Dispatcher) Close() {
	d.mu.Lock()
	if d.closed {
		d.mu.Unlock()
		return
	}
	d.closed = true
	close(d.jobs)
	d.mu.Unlock()
	d.wg.Wait()
}
