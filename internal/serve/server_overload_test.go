package serve

import (
	"bytes"
	"context"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"winrs/internal/conv"
)

// With the lone worker pinned and a zero-depth queue, any request must be
// rejected with 429 and a Retry-After hint — the deterministic admission-
// control path (no timing assumptions: the worker is provably busy).
func TestServerOverloadRejects429(t *testing.T) {
	s := NewServer(Config{Workers: 1, QueueDepth: -1, Deadline: time.Second})
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	started := make(chan struct{})
	release := make(chan struct{})
	defer close(release)
	go func() {
		for errors.Is(s.disp.Do(context.Background(), func(context.Context) {
			close(started)
			<-release
		}), ErrOverloaded) {
		}
	}()
	<-started

	p := conv.Params{N: 1, IH: 8, IW: 8, FH: 3, FW: 3, IC: 1, OC: 1, PH: 1, PW: 1}
	a := make([]byte, p.XShape().Elems()*4)
	b := make([]byte, p.DYShape().Elems()*4)
	body, err := EncodeRequest(RequestHeader{Params: p}, a, b)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(ts.URL+"/v1/backward_filter", "application/octet-stream",
		bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("429 without Retry-After")
	}
	if s.stats.Rejected.Load() != 1 {
		t.Errorf("Rejected counter = %d, want 1", s.stats.Rejected.Load())
	}

	// The rejection surfaces on /metrics.
	mresp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer mresp.Body.Close()
	metrics, err := io.ReadAll(mresp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(metrics), "winrs_rejected_total 1") {
		t.Errorf("metrics missing rejection:\n%s", metrics)
	}
}
