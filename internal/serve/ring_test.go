package serve

// Unit tests for the consistent-hash ring: deterministic picks, bounded
// remapping on membership change, and drain/remove semantics.

import (
	"fmt"
	"testing"
)

func ringWith(nodes ...string) *Ring {
	r := NewRing(0)
	for _, n := range nodes {
		r.Add(n)
	}
	return r
}

func keys(n int) []uint64 {
	out := make([]uint64, n)
	for i := range out {
		out[i] = hash64(fmt.Sprintf("key-%d", i))
	}
	return out
}

func TestRingDeterministicPicks(t *testing.T) {
	a := ringWith("n1", "n2", "n3")
	b := ringWith("n3", "n1", "n2") // insertion order must not matter
	for _, k := range keys(500) {
		na, ok := a.Pick(k)
		if !ok {
			t.Fatal("pick failed on a populated ring")
		}
		nb, _ := b.Pick(k)
		if na != nb {
			t.Fatalf("pick for %d depends on insertion order: %q vs %q", k, na, nb)
		}
		if again, _ := a.Pick(k); again != na {
			t.Fatalf("pick for %d is not stable: %q then %q", k, na, again)
		}
	}
}

func TestRingSpreadsLoad(t *testing.T) {
	r := ringWith("n1", "n2", "n3")
	counts := map[string]int{}
	ks := keys(3000)
	for _, k := range ks {
		n, _ := r.Pick(k)
		counts[n]++
	}
	for node, c := range counts {
		frac := float64(c) / float64(len(ks))
		if frac < 0.15 || frac > 0.55 {
			t.Errorf("node %s owns %.0f%% of keys; expected a rough third", node, frac*100)
		}
	}
	if len(counts) != 3 {
		t.Errorf("only %d of 3 nodes received keys", len(counts))
	}
}

// TestRingRemovalRemapsOnlyOwnedKeys is the consistent-hashing property
// itself: dropping one node must not move any key that it did not own.
func TestRingRemovalRemapsOnlyOwnedKeys(t *testing.T) {
	r := ringWith("n1", "n2", "n3")
	ks := keys(2000)
	before := make([]string, len(ks))
	for i, k := range ks {
		before[i], _ = r.Pick(k)
	}
	if !r.Remove("n2") {
		t.Fatal("Remove(n2) reported unknown node")
	}
	moved := 0
	for i, k := range ks {
		after, ok := r.Pick(k)
		if !ok {
			t.Fatal("pick failed after removal")
		}
		if after == "n2" {
			t.Fatalf("key %d still routed to removed node", k)
		}
		if before[i] != "n2" && after != before[i] {
			t.Errorf("key %d moved %q -> %q though its owner stayed", k, before[i], after)
		}
		if before[i] == "n2" {
			moved++
		}
	}
	if moved == 0 {
		t.Error("removed node owned zero keys; spread test should have caught this")
	}
}

func TestRingDrainStopsPicksButKeepsRecord(t *testing.T) {
	r := ringWith("n1", "n2")
	if !r.Drain("n2") {
		t.Fatal("Drain(n2) reported unknown node")
	}
	for _, k := range keys(300) {
		n, ok := r.Pick(k)
		if !ok || n != "n1" {
			t.Fatalf("pick after drain: got %q ok=%v, want n1", n, ok)
		}
	}
	if r.Active() != 1 {
		t.Errorf("Active() = %d after drain, want 1", r.Active())
	}
	nodes := r.Nodes()
	if len(nodes) != 2 {
		t.Fatalf("Nodes() lost the draining record: %v", nodes)
	}
	var drained *NodeState
	for i := range nodes {
		if nodes[i].Addr == "n2" {
			drained = &nodes[i]
		}
	}
	if drained == nil || !drained.Draining {
		t.Errorf("n2 not marked draining in %v", nodes)
	}

	// Re-adding a draining node restores its picks.
	r.Add("n2")
	seen := false
	for _, k := range keys(500) {
		if n, _ := r.Pick(k); n == "n2" {
			seen = true
			break
		}
	}
	if !seen {
		t.Error("re-added node receives no picks")
	}
	if r.Active() != 2 {
		t.Errorf("Active() = %d after re-add, want 2", r.Active())
	}
}

func TestRingEmpty(t *testing.T) {
	r := NewRing(0)
	if _, ok := r.Pick(42); ok {
		t.Error("empty ring produced a pick")
	}
	r.Add("n1")
	r.Remove("n1")
	if _, ok := r.Pick(42); ok {
		t.Error("fully removed ring produced a pick")
	}
	if r.Drain("ghost") {
		t.Error("Drain of unknown node reported success")
	}
	if r.Remove("ghost") {
		t.Error("Remove of unknown node reported success")
	}
}

// TestRouteHashStickiness pins that the route hash is a pure function of
// the plan-key fields: identical headers agree, any key-field change
// disagrees (so distinct geometries are free to land on distinct shards).
func TestRouteHashStickiness(t *testing.T) {
	base := RequestHeader{Op: "backward_filter"}
	base.Params.N, base.Params.IH, base.Params.IW = 1, 16, 16
	base.Params.FH, base.Params.FW = 3, 3
	base.Params.IC, base.Params.OC = 4, 4
	base.Params.PH, base.Params.PW = 1, 1

	if RouteHash(base) != RouteHash(base) {
		t.Fatal("route hash is not deterministic")
	}

	variants := []func(*RequestHeader){
		func(h *RequestHeader) { h.Params.IH = 32 },
		func(h *RequestHeader) { h.Params.OC = 8 },
		func(h *RequestHeader) { h.DType = F16 },
		func(h *RequestHeader) { h.NSM = 4 },
		func(h *RequestHeader) { h.Segments = 2 },
		func(h *RequestHeader) { h.Algo = "gemm" },
	}
	for i, mutate := range variants {
		h := base
		mutate(&h)
		if RouteHash(h) == RouteHash(base) {
			t.Errorf("variant %d: key-field change did not change the route hash", i)
		}
	}
}
