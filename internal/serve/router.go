package serve

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log"
	"net/http"
	"sync"
	"time"

	"winrs/internal/obs"
)

// Router is the winrs-router shard front: it decodes just enough of each
// framed request to compute its plan-key route hash, picks the owning node
// off a consistent-hash ring, and forwards the raw frame unmodified over
// HTTP. Because the mapping is a pure function of the key and the ring,
// every geometry keeps hitting the same node's plan/Ŵ caches; adding a
// node remaps ~1/n of the key space and draining a node stops new picks
// while in-flight forwards complete — the router exposes both operations
// as admin endpoints so membership changes are live.
type Router struct {
	cfg    RouterConfig
	ring   *Ring
	client *http.Client
	reg    *obs.Registry

	mu       sync.Mutex
	inflight map[string]*nodeTraffic // per node address

	forwardErrs *obs.Counter
	noNode      *obs.Counter
}

// nodeTraffic tracks one node's router-side traffic: the in-flight count
// gates drains, the counter feeds the per-shard metric series.
type nodeTraffic struct {
	mu       sync.Mutex
	inflight int
	idle     chan struct{} // closed when inflight drops to 0; replaced on reuse
	total    *obs.Counter
	errs     *obs.Counter
}

// RouterConfig sizes the router. Zero values select the defaults.
type RouterConfig struct {
	// Nodes seeds the ring with shard base URLs (e.g. "http://10.0.0.1:8780").
	Nodes []string
	// Replicas is the virtual-point count per node (default 64).
	Replicas int
	// MaxBodyBytes caps a forwarded request body (default 1 GiB).
	MaxBodyBytes int64
	// ForwardTimeout bounds one forwarded request (default 60s).
	ForwardTimeout time.Duration
}

func (c *RouterConfig) fillDefaults() {
	if c.MaxBodyBytes <= 0 {
		c.MaxBodyBytes = 1 << 30
	}
	if c.ForwardTimeout <= 0 {
		c.ForwardTimeout = 60 * time.Second
	}
}

// NewRouter builds a router over the seed nodes.
func NewRouter(cfg RouterConfig) *Router {
	cfg.fillDefaults()
	rt := &Router{
		cfg:      cfg,
		ring:     NewRing(cfg.Replicas),
		client:   &http.Client{Timeout: cfg.ForwardTimeout},
		reg:      obs.NewRegistry(),
		inflight: make(map[string]*nodeTraffic),
	}
	rt.forwardErrs = rt.reg.Counter("winrs_router_forward_errors_total",
		"Forwards that failed to reach their node (502).")
	rt.noNode = rt.reg.Counter("winrs_router_no_node_total",
		"Requests rejected because no active node remained (503).")
	rt.reg.GaugeFunc("winrs_router_nodes_active", "Nodes currently taking new picks.",
		func() float64 { return float64(rt.ring.Active()) })
	for _, n := range cfg.Nodes {
		rt.AddNode(n)
	}
	return rt
}

// Registry exposes the router's metric registry.
func (rt *Router) Registry() *obs.Registry { return rt.reg }

// Ring exposes the membership ring (tests, embedding).
func (rt *Router) Ring() *Ring { return rt.ring }

// traffic returns (creating if needed) the node's traffic record and its
// per-shard metric handles.
func (rt *Router) traffic(addr string) *nodeTraffic {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	n, ok := rt.inflight[addr]
	if !ok {
		n = &nodeTraffic{
			total: rt.reg.Counter("winrs_router_forwarded_total",
				"Requests forwarded per shard node.", obs.Label{Key: "node", Value: addr}),
			errs: rt.reg.Counter("winrs_router_node_errors_total",
				"Forward failures per shard node.", obs.Label{Key: "node", Value: addr}),
		}
		rt.inflight[addr] = n
	}
	return n
}

func (n *nodeTraffic) enter() {
	n.mu.Lock()
	n.inflight++
	n.mu.Unlock()
}

func (n *nodeTraffic) exit() {
	n.mu.Lock()
	n.inflight--
	if n.inflight == 0 && n.idle != nil {
		close(n.idle)
		n.idle = nil
	}
	n.mu.Unlock()
}

// awaitIdle blocks until the node has no in-flight forwards or the timeout
// expires; reports whether it went idle.
func (n *nodeTraffic) awaitIdle(timeout time.Duration) bool {
	n.mu.Lock()
	if n.inflight == 0 {
		n.mu.Unlock()
		return true
	}
	if n.idle == nil {
		n.idle = make(chan struct{})
	}
	ch := n.idle
	n.mu.Unlock()
	select {
	case <-ch:
		return true
	case <-time.After(timeout):
		return false
	}
}

// AddNode inserts (or re-activates) a shard node.
func (rt *Router) AddNode(addr string) {
	rt.traffic(addr)
	rt.ring.Add(addr)
}

// DrainNode takes addr off the ring and waits up to timeout for its
// in-flight forwards to complete. Returns an error for an unknown node or
// an expired wait.
func (rt *Router) DrainNode(addr string, timeout time.Duration) error {
	if !rt.ring.Drain(addr) {
		return fmt.Errorf("router: unknown node %q", addr)
	}
	if !rt.traffic(addr).awaitIdle(timeout) {
		return fmt.Errorf("router: node %q still has in-flight requests after %v", addr, timeout)
	}
	return nil
}

// Handler returns the router mux: the three /v1/* op routes forwarded by
// plan-key hash, the membership admin endpoints, /healthz and /metrics.
func (rt *Router) Handler() http.Handler {
	mux := http.NewServeMux()
	for _, path := range []string{"/v1/backward_filter", "/v1/forward", "/v1/backward_data"} {
		mux.HandleFunc("POST "+path, rt.forward)
	}
	mux.HandleFunc("POST /admin/nodes/add", rt.handleAdd)
	mux.HandleFunc("POST /admin/nodes/drain", rt.handleDrain)
	mux.HandleFunc("POST /admin/nodes/remove", rt.handleRemove)
	mux.HandleFunc("GET /admin/ring", rt.handleRing)
	mux.HandleFunc("GET /healthz", rt.handleHealthz)
	mux.HandleFunc("GET /metrics", rt.handleMetrics)
	return mux
}

// forward routes one framed request. The body is read once (the header
// must be parsed for the route hash) and forwarded verbatim — the node
// re-validates the frame, so a malformed frame is rejected twice, once
// here with whatever we can diagnose cheaply and once at depth.
func (rt *Router) forward(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, rt.cfg.MaxBodyBytes))
	if err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			http.Error(w, fmt.Sprintf("request body exceeds the %d-byte limit", tooBig.Limit),
				http.StatusRequestEntityTooLarge)
			return
		}
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	hdr, _, err := DecodeRequest(bytes.NewReader(body))
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	node, ok := rt.ring.Pick(RouteHash(hdr))
	if !ok {
		rt.noNode.Add(1)
		w.Header().Set("Retry-After", "1")
		http.Error(w, "no active shard node", http.StatusServiceUnavailable)
		return
	}

	tr := rt.traffic(node)
	tr.enter()
	defer tr.exit()
	tr.total.Add(1)

	req, err := http.NewRequestWithContext(r.Context(), http.MethodPost,
		node+r.URL.Path, bytes.NewReader(body))
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	req.Header.Set("Content-Type", "application/octet-stream")
	resp, err := rt.client.Do(req)
	if err != nil {
		tr.errs.Add(1)
		rt.forwardErrs.Add(1)
		log.Printf("router: forward to %s failed: %v", node, err)
		http.Error(w, fmt.Sprintf("shard node unreachable: %v", err), http.StatusBadGateway)
		return
	}
	defer resp.Body.Close()
	for k, vs := range resp.Header {
		for _, v := range vs {
			w.Header().Add(k, v)
		}
	}
	w.Header().Set("X-Winrs-Shard", node)
	w.WriteHeader(resp.StatusCode)
	io.Copy(w, resp.Body)
}

func (rt *Router) handleAdd(w http.ResponseWriter, r *http.Request) {
	node := r.URL.Query().Get("node")
	if node == "" {
		http.Error(w, "missing node parameter", http.StatusBadRequest)
		return
	}
	rt.AddNode(node)
	fmt.Fprintf(w, "added %s\n", node)
}

func (rt *Router) handleDrain(w http.ResponseWriter, r *http.Request) {
	node := r.URL.Query().Get("node")
	if node == "" {
		http.Error(w, "missing node parameter", http.StatusBadRequest)
		return
	}
	timeout := 30 * time.Second
	if s := r.URL.Query().Get("timeout"); s != "" {
		d, err := time.ParseDuration(s)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		timeout = d
	}
	if err := rt.DrainNode(node, timeout); err != nil {
		http.Error(w, err.Error(), http.StatusConflict)
		return
	}
	fmt.Fprintf(w, "drained %s\n", node)
}

func (rt *Router) handleRemove(w http.ResponseWriter, r *http.Request) {
	node := r.URL.Query().Get("node")
	if node == "" {
		http.Error(w, "missing node parameter", http.StatusBadRequest)
		return
	}
	if !rt.ring.Remove(node) {
		http.Error(w, fmt.Sprintf("unknown node %q", node), http.StatusNotFound)
		return
	}
	fmt.Fprintf(w, "removed %s\n", node)
}

func (rt *Router) handleRing(w http.ResponseWriter, r *http.Request) {
	type nodeInfo struct {
		Addr     string `json:"addr"`
		Draining bool   `json:"draining"`
		InFlight int    `json:"in_flight"`
	}
	var nodes []nodeInfo
	for _, n := range rt.ring.Nodes() {
		tr := rt.traffic(n.Addr)
		tr.mu.Lock()
		inf := tr.inflight
		tr.mu.Unlock()
		nodes = append(nodes, nodeInfo{Addr: n.Addr, Draining: n.Draining, InFlight: inf})
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(map[string]any{"nodes": nodes, "active": rt.ring.Active()})
}

func (rt *Router) handleHealthz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(map[string]any{
		"status": "ok",
		"active": rt.ring.Active(),
	})
}

func (rt *Router) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	rt.reg.WriteText(w)
}
