package serve

import (
	"fmt"
	"sort"
	"sync"
)

// Ring is a consistent-hash ring of shard-node addresses. Each node owns
// defaultRingReplicas virtual points; a key is served by the first point
// clockwise from its hash, so adding or removing one node remaps only the
// keys that node owned (~1/n of the space) and every other node's
// plan/Ŵ caches stay warm — the property the shard router exists for.
//
// Nodes have two live states: active (on the ring) and draining (off the
// ring for new picks, still tracked so in-flight work can be awaited).
// A Ring is safe for concurrent use.
type Ring struct {
	mu       sync.RWMutex
	replicas int
	points   []ringPoint // sorted by hash
	nodes    map[string]*NodeState
}

type ringPoint struct {
	hash uint64
	node string
}

// NodeState is one node's membership record.
type NodeState struct {
	Addr     string
	Draining bool
}

// defaultRingReplicas is the virtual-point count per node: 64 keeps the
// per-node share of the key space within a few percent of uniform for
// small rings while add/drain stays O(replicas·log points).
const defaultRingReplicas = 64

// NewRing returns an empty ring; replicas ≤ 0 selects the default.
func NewRing(replicas int) *Ring {
	if replicas <= 0 {
		replicas = defaultRingReplicas
	}
	return &Ring{replicas: replicas, nodes: make(map[string]*NodeState)}
}

// hash64 is FNV-1a over s.
func hash64(s string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}

// Add inserts a node (or re-activates a draining one). Adding an already
// active node is a no-op.
func (r *Ring) Add(addr string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if n, ok := r.nodes[addr]; ok {
		if !n.Draining {
			return
		}
		n.Draining = false
	} else {
		r.nodes[addr] = &NodeState{Addr: addr}
	}
	for i := 0; i < r.replicas; i++ {
		r.points = append(r.points, ringPoint{hash64(fmt.Sprintf("%s#%d", addr, i)), addr})
	}
	sort.Slice(r.points, func(i, j int) bool { return r.points[i].hash < r.points[j].hash })
}

// Drain takes the node off the ring for new picks but keeps its record;
// the router awaits its in-flight forwards separately. Returns false for
// an unknown node.
func (r *Ring) Drain(addr string) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	n, ok := r.nodes[addr]
	if !ok {
		return false
	}
	if !n.Draining {
		n.Draining = true
		r.removePointsLocked(addr)
	}
	return true
}

// Remove forgets the node entirely.
func (r *Ring) Remove(addr string) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	n, ok := r.nodes[addr]
	if !ok {
		return false
	}
	if !n.Draining {
		r.removePointsLocked(addr)
	}
	delete(r.nodes, addr)
	return true
}

func (r *Ring) removePointsLocked(addr string) {
	kept := r.points[:0]
	for _, p := range r.points {
		if p.node != addr {
			kept = append(kept, p)
		}
	}
	r.points = kept
}

// Pick returns the node owning key's hash, or false when no active node
// remains.
func (r *Ring) Pick(key uint64) (string, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	if len(r.points) == 0 {
		return "", false
	}
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= key })
	if i == len(r.points) {
		i = 0 // wrap: the first point clockwise past the top of the space
	}
	return r.points[i].node, true
}

// Nodes returns a stable-ordered snapshot of the membership.
func (r *Ring) Nodes() []NodeState {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]NodeState, 0, len(r.nodes))
	for _, n := range r.nodes {
		out = append(out, *n)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Addr < out[j].Addr })
	return out
}

// Active returns the number of nodes currently taking new picks.
func (r *Ring) Active() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	n := 0
	for _, s := range r.nodes {
		if !s.Draining {
			n++
		}
	}
	return n
}

// RouteHash hashes the request fields that feed the plan-cache key, so
// every request for one geometry (same params, dtype, tuning knobs, algo)
// lands on the same shard and finds its plan and Ŵ caches warm. The
// router hashes the wire header — it never resolves server-side algo
// defaults, which is fine: stickiness needs a stable mapping, not the
// node's final key.
func RouteHash(hdr RequestHeader) uint64 {
	p := hdr.Params
	return hash64(fmt.Sprintf("%d|%d|%d|%d|%d|%d|%d|%d|%d|%s|%d|%d|%s",
		p.N, p.IH, p.IW, p.FH, p.FW, p.IC, p.OC, p.PH, p.PW,
		hdr.DType, hdr.NSM, hdr.Segments, hdr.Algo))
}
