package serve_test

import (
	"bytes"
	"io"
	"math"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"winrs"
	"winrs/internal/backend"
	"winrs/internal/conv"
	"winrs/internal/serve"
)

// dispatchShape is covered by every backend: square 3×3, FP32 and FP16.
var dispatchShape = winrs.Params{N: 1, IH: 16, IW: 16, FH: 3, FW: 3, IC: 4, OC: 4, PH: 1, PW: 1}

func newDispatchServer(t *testing.T, cfg serve.Config) (*serve.Server, *httptest.Server) {
	t.Helper()
	if cfg.Workers == 0 {
		cfg.Workers = 2
	}
	if cfg.QueueDepth == 0 {
		cfg.QueueDepth = 16
	}
	s := serve.NewServer(cfg)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		s.Close()
	})
	return s, ts
}

func postAlgo(t *testing.T, url string, p winrs.Params, algo string, x, dy *winrs.Tensor) (*http.Response, []byte) {
	t.Helper()
	body, err := serve.EncodeRequest(
		serve.RequestHeader{Op: "backward_filter", Params: p, Algo: algo},
		serve.AppendF32(nil, x.Data), serve.AppendF32(nil, dy.Data))
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url+"/v1/backward_filter", "application/octet-stream",
		bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	out, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, out
}

// TestDispatchSmoke drives every registered backend through the serving
// path once on the same layer, asserting each result agrees with the FP64
// direct-convolution oracle under the eq.(7)-style bound and that the
// response names the backend that ran. This is the `make dispatch-smoke`
// target.
func TestDispatchSmoke(t *testing.T) {
	_, ts := newDispatchServer(t, serve.Config{DispatchMeasureOff: true})
	p := dispatchShape
	x, dy := randLayer(t, 91, p)
	ref := conv.BackwardFilterDirect64(p, x.ToFloat64(), dy.ToFloat64())
	// κ floor 16 at FW=3; L = N·OH·OW; ε = 2^-24 (see the differential
	// suites this mirrors).
	bound := 16.0 * float64(p.N*p.OH()*p.OW()) * 5.96e-8

	algos := append(backend.Default().Names(), "auto")
	for _, algo := range algos {
		resp, out := postAlgo(t, ts.URL, p, algo, x, dy)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("algo %q: status %d: %s", algo, resp.StatusCode, out)
		}
		ran := resp.Header.Get("X-Winrs-Backend")
		if algo == "auto" {
			if _, ok := backend.Default().Get(ran); !ok {
				t.Errorf("auto: X-Winrs-Backend %q is not a registered backend", ran)
			}
		} else if ran != algo {
			t.Errorf("algo %q: X-Winrs-Backend %q", algo, ran)
		}
		got := make([]float32, p.DWShape().Elems())
		if err := serve.DecodeF32(out, got); err != nil {
			t.Fatalf("algo %q: %v", algo, err)
		}
		for i := range ref.Data {
			if d := math.Abs(float64(got[i]) - ref.Data[i]); d > bound {
				t.Fatalf("algo %q: served gradient off oracle by %.3g at %d (bound %.3g)",
					algo, d, i, bound)
				break
			}
		}
	}

	// Every backend's dispatch counter must have moved.
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	raw, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	metrics := string(raw)
	for _, name := range backend.Default().Names() {
		series := `winrs_dispatch_total{backend="` + name + `"}`
		if !strings.Contains(metrics, series) {
			t.Errorf("metrics missing %s", series)
			continue
		}
		if strings.Contains(metrics, series+" 0") {
			t.Errorf("%s never incremented", series)
		}
	}
}

// An "auto" plan is dispatched once and memoized: the second request is a
// cache hit on the same backend.
func TestServeAutoMemoizesDecision(t *testing.T) {
	_, ts := newDispatchServer(t, serve.Config{DispatchMeasureOff: true})
	x, dy := randLayer(t, 92, dispatchShape)

	resp1, out1 := postAlgo(t, ts.URL, dispatchShape, "auto", x, dy)
	if resp1.StatusCode != http.StatusOK {
		t.Fatalf("first auto: status %d: %s", resp1.StatusCode, out1)
	}
	if got := resp1.Header.Get("X-Winrs-Cache"); got != "miss" {
		t.Errorf("first auto: cache %q, want miss", got)
	}
	first := resp1.Header.Get("X-Winrs-Backend")

	resp2, out2 := postAlgo(t, ts.URL, dispatchShape, "auto", x, dy)
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("second auto: status %d: %s", resp2.StatusCode, out2)
	}
	if got := resp2.Header.Get("X-Winrs-Cache"); got != "hit" {
		t.Errorf("second auto: cache %q, want hit", got)
	}
	if again := resp2.Header.Get("X-Winrs-Backend"); again != first {
		t.Errorf("auto flipped backends across cache hit: %q then %q", first, again)
	}
	if !bytes.Equal(out1, out2) {
		t.Error("memoized auto dispatch returned different bytes")
	}
}

// Explicit "winrs" canonicalizes to the default plan key, sharing its
// cache entry with header-less requests.
func TestServeExplicitWinRSSharesDefaultEntry(t *testing.T) {
	s, ts := newDispatchServer(t, serve.Config{})
	x, dy := randLayer(t, 93, dispatchShape)

	if resp, out := postBackwardFilter(t, ts.URL, dispatchShape, x, dy); resp.StatusCode != http.StatusOK {
		t.Fatalf("default request: status %d: %s", resp.StatusCode, out)
	}
	resp, out := postAlgo(t, ts.URL, dispatchShape, "winrs", x, dy)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("explicit winrs: status %d: %s", resp.StatusCode, out)
	}
	if got := resp.Header.Get("X-Winrs-Cache"); got != "hit" {
		t.Errorf("explicit winrs after default: cache %q, want hit", got)
	}
	if got := resp.Header.Get("X-Winrs-Backend"); got != "winrs" {
		t.Errorf("X-Winrs-Backend %q, want winrs", got)
	}
	if resp.Header.Get("X-Winrs-Kernel-Pair") == "" {
		t.Error("WinRS response lost its kernel-pair header")
	}
	if n := s.Runtime().Cache().Len(); n != 1 {
		t.Errorf("cache holds %d plans, want 1 shared entry", n)
	}
}

func TestServeAlgoValidation(t *testing.T) {
	_, ts := newDispatchServer(t, serve.Config{})
	p := dispatchShape
	x, dy := randLayer(t, 94, p)

	// Unknown algorithm name.
	resp, out := postAlgo(t, ts.URL, p, "cudnn", x, dy)
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("unknown algo: status %d: %s", resp.StatusCode, out)
	}

	// algo is a backward-filter-only field.
	body, err := serve.EncodeRequest(serve.RequestHeader{Params: p, Algo: "auto"},
		serve.AppendF32(nil, x.Data), serve.AppendF32(nil, winrs.NewTensor(p.DWShape()).Data))
	if err != nil {
		t.Fatal(err)
	}
	fresp, err := http.Post(ts.URL+"/v1/forward", "application/octet-stream", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, fresp.Body)
	fresp.Body.Close()
	if fresp.StatusCode != http.StatusBadRequest {
		t.Errorf("algo on forward: status %d", fresp.StatusCode)
	}

	// A backend that rejects the geometry (winnf on a non-square filter)
	// fails plan construction, not silently falls back.
	np := winrs.Params{N: 1, IH: 8, IW: 12, FH: 1, FW: 3, IC: 2, OC: 2}
	nx, ndy := randLayer(t, 95, np)
	resp, _ = postAlgo(t, ts.URL, np, "winnf", nx, ndy)
	if resp.StatusCode != http.StatusUnprocessableEntity {
		t.Errorf("winnf on 1x3: status %d, want 422", resp.StatusCode)
	}
}

// ForceAlgo overrides every request, including explicit headers;
// DefaultAlgo applies only when the header is silent.
func TestServeForceAndDefaultAlgo(t *testing.T) {
	x, dy := randLayer(t, 96, dispatchShape)

	_, forced := newDispatchServer(t, serve.Config{ForceAlgo: "gemm"})
	resp, out := postAlgo(t, forced.URL, dispatchShape, "direct", x, dy)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("forced: status %d: %s", resp.StatusCode, out)
	}
	if got := resp.Header.Get("X-Winrs-Backend"); got != "gemm" {
		t.Errorf("ForceAlgo=gemm served by %q", got)
	}

	_, defaulted := newDispatchServer(t, serve.Config{DefaultAlgo: "auto", DispatchMeasureOff: true})
	resp, out = postBackwardFilter(t, defaulted.URL, dispatchShape, x, dy)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("defaulted: status %d: %s", resp.StatusCode, out)
	}
	if got := resp.Header.Get("X-Winrs-Backend"); got == "" {
		t.Error("DefaultAlgo=auto response has no backend header")
	}
	// An explicit header still wins over DefaultAlgo.
	resp, out = postAlgo(t, defaulted.URL, dispatchShape, "direct", x, dy)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("explicit over default: status %d: %s", resp.StatusCode, out)
	}
	if got := resp.Header.Get("X-Winrs-Backend"); got != "direct" {
		t.Errorf("explicit direct over DefaultAlgo served by %q", got)
	}
}

// The memoized decision is exposed on the cache entry for introspection.
func TestServeAutoDecisionRecorded(t *testing.T) {
	s, ts := newDispatchServer(t, serve.Config{DispatchMeasureOff: true})
	x, dy := randLayer(t, 97, dispatchShape)
	if resp, out := postAlgo(t, ts.URL, dispatchShape, "auto", x, dy); resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, out)
	}
	key := serve.PlanKey{Params: conv.Params(dispatchShape), Algo: "auto"}
	e, hit, err := s.Runtime().Cache().Get(key)
	if err != nil {
		t.Fatal(err)
	}
	if !hit {
		t.Error("auto entry not cached under its plan key")
	}
	if e.Decision.Backend != e.Backend {
		t.Errorf("entry backend %q != decision backend %q", e.Backend, e.Decision.Backend)
	}
	if len(e.Decision.Candidates) == 0 {
		t.Error("decision has no candidates")
	}
	if e.Decision.Measured {
		t.Error("measurement ran with DispatchMeasureOff")
	}
}
