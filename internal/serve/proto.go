package serve

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"io"
	"math"

	"winrs/internal/conv"
	"winrs/internal/fp16"
	"winrs/internal/tensor"
)

// Wire format. Every request body is
//
//	[4]byte  magic "WRS1"
//	uint32   little-endian JSON header length
//	[]byte   JSON header (RequestHeader)
//	[]byte   the two operand tensors, raw little-endian values,
//	         concatenated in the order given by the op (see OperandShapes)
//
// Payload sizes are fully implied by params + dtype, so the framing needs
// no per-tensor lengths. Responses are the raw little-endian float32
// elements of the result tensor; its shape is echoed in X-Winrs-Shape.

// Magic is the 4-byte wire-format marker opening every request body.
var Magic = [4]byte{'W', 'R', 'S', '1'}

// maxHeaderBytes bounds the JSON header so a corrupt length prefix cannot
// force a huge allocation.
const maxHeaderBytes = 1 << 16

// Op is one of the three convolution passes the service computes.
type Op int

const (
	OpBackwardFilter Op = iota // ∇W from X, ∇Y — the paper's BFC
	OpForward                  // Y from X, W
	OpBackwardData             // ∇X from ∇Y, W
	numOps
)

var opNames = [numOps]string{"backward_filter", "forward", "backward_data"}

func (o Op) String() string {
	if o < 0 || o >= numOps {
		return fmt.Sprintf("op(%d)", int(o))
	}
	return opNames[o]
}

// ParseOp maps a wire name to an Op.
func ParseOp(s string) (Op, error) {
	for i, n := range opNames {
		if s == n {
			return Op(i), nil
		}
	}
	return 0, fmt.Errorf("serve: unknown op %q", s)
}

// DType is the tensor element encoding on the wire.
type DType string

const (
	// F32 is IEEE-754 binary32, little-endian — the default.
	F32 DType = "f32"
	// F16 is IEEE-754 binary16, little-endian; valid only for
	// backward_filter, where it selects the Tensor-Core path.
	F16 DType = "f16"
)

// elemBytes returns the per-element wire size, or 0 for an unknown dtype.
func (d DType) elemBytes() int {
	switch d {
	case F32, "":
		return 4
	case F16:
		return 2
	}
	return 0
}

// RequestHeader is the JSON metadata of one request.
type RequestHeader struct {
	// Op names the pass; optional when the URL already selects it, but
	// must agree when both are present.
	Op string `json:"op,omitempty"`
	// Params is the layer geometry (stride 1, symmetric padding), with the
	// paper's field names: N, IH, IW, FH, FW, IC, OC, PH, PW.
	Params conv.Params `json:"params"`
	// DType is the payload encoding: "f32" (default) or "f16".
	DType DType `json:"dtype,omitempty"`
	// Segments forces the segment count Z (0 = adaptive, Algorithm 1).
	Segments int `json:"segments,omitempty"`
	// NSM overrides the hardware model's SM count (0 = default, 128).
	NSM int `json:"nsm,omitempty"`
	// Algo selects the backward-filter algorithm: "" or "winrs" (the
	// paper's algorithm — the default, so existing clients are
	// unchanged), "auto" (cost-model dispatch, memoized per plan key),
	// or an explicit backend name ("gemm", "direct", "fft", "winnf").
	// Only valid for backward_filter requests.
	Algo string `json:"algo,omitempty"`
}

// OperandShapes returns the shapes of the two request tensors (in payload
// order) and of the result for the given op.
func OperandShapes(op Op, p conv.Params) (a, b, out tensor.Shape) {
	switch op {
	case OpBackwardFilter:
		return p.XShape(), p.DYShape(), p.DWShape()
	case OpForward:
		return p.XShape(), p.DWShape(), p.DYShape()
	case OpBackwardData:
		return p.DYShape(), p.DWShape(), p.XShape()
	}
	panic("serve: OperandShapes on invalid op")
}

// EncodeRequest frames a header and raw payloads into one request body.
func EncodeRequest(hdr RequestHeader, payloads ...[]byte) ([]byte, error) {
	hj, err := json.Marshal(hdr)
	if err != nil {
		return nil, err
	}
	if len(hj) > maxHeaderBytes {
		return nil, fmt.Errorf("serve: header too large (%d bytes)", len(hj))
	}
	n := 8 + len(hj)
	for _, p := range payloads {
		n += len(p)
	}
	buf := make([]byte, 0, n)
	buf = append(buf, Magic[:]...)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(hj)))
	buf = append(buf, hj...)
	for _, p := range payloads {
		buf = append(buf, p...)
	}
	return buf, nil
}

// DecodeRequest reads a framed request, returning the header and the
// undivided payload bytes (the caller splits them by OperandShapes).
func DecodeRequest(r io.Reader) (RequestHeader, []byte, error) {
	var hdr RequestHeader
	var pre [8]byte
	if _, err := io.ReadFull(r, pre[:]); err != nil {
		return hdr, nil, fmt.Errorf("serve: short request preamble: %w", err)
	}
	if [4]byte(pre[:4]) != Magic {
		return hdr, nil, fmt.Errorf("serve: bad magic %q (want %q)", pre[:4], Magic[:])
	}
	hlen := binary.LittleEndian.Uint32(pre[4:])
	if hlen == 0 || hlen > maxHeaderBytes {
		return hdr, nil, fmt.Errorf("serve: implausible header length %d", hlen)
	}
	hj := make([]byte, hlen)
	if _, err := io.ReadFull(r, hj); err != nil {
		return hdr, nil, fmt.Errorf("serve: short header: %w", err)
	}
	if err := json.Unmarshal(hj, &hdr); err != nil {
		return hdr, nil, fmt.Errorf("serve: header: %w", err)
	}
	payload, err := io.ReadAll(r)
	if err != nil {
		return hdr, nil, fmt.Errorf("serve: payload: %w", err)
	}
	return hdr, payload, nil
}

// AppendF32 appends the little-endian encoding of vals to dst.
func AppendF32(dst []byte, vals []float32) []byte {
	for _, v := range vals {
		dst = binary.LittleEndian.AppendUint32(dst, math.Float32bits(v))
	}
	return dst
}

// AppendF16 appends the little-endian encoding of binary16 values to dst.
func AppendF16(dst []byte, vals []fp16.Bits) []byte {
	for _, v := range vals {
		dst = binary.LittleEndian.AppendUint16(dst, uint16(v))
	}
	return dst
}

// DecodeF32 fills dst from src; src must hold exactly 4·len(dst) bytes.
func DecodeF32(src []byte, dst []float32) error {
	if len(src) != 4*len(dst) {
		return fmt.Errorf("serve: f32 payload %d bytes, want %d", len(src), 4*len(dst))
	}
	for i := range dst {
		dst[i] = math.Float32frombits(binary.LittleEndian.Uint32(src[4*i:]))
	}
	return nil
}

// DecodeF16 fills dst from src; src must hold exactly 2·len(dst) bytes.
func DecodeF16(src []byte, dst []fp16.Bits) error {
	if len(src) != 2*len(dst) {
		return fmt.Errorf("serve: f16 payload %d bytes, want %d", len(src), 2*len(dst))
	}
	for i := range dst {
		dst[i] = fp16.Bits(binary.LittleEndian.Uint16(src[2*i:]))
	}
	return nil
}
