package bf16

import (
	"math"
	"testing"
	"testing/quick"
)

func TestKnownValues(t *testing.T) {
	cases := []struct {
		f    float32
		bits Bits
	}{
		{0, 0x0000},
		{1, 0x3F80},
		{-1, 0xBF80},
		{2, 0x4000},
		{0.5, 0x3F00},
		{3.0, 0x4040},
	}
	for _, c := range cases {
		if got := FromFloat32(c.f); got != c.bits {
			t.Errorf("FromFloat32(%v) = %#04x, want %#04x", c.f, got, c.bits)
		}
		if got := ToFloat32(c.bits); got != c.f {
			t.Errorf("ToFloat32(%#04x) = %v, want %v", c.bits, got, c.f)
		}
	}
}

func TestSpecials(t *testing.T) {
	if !IsInf(FromFloat32(float32(math.Inf(1))), 1) {
		t.Error("+Inf must survive")
	}
	if !IsInf(FromFloat32(float32(math.Inf(-1))), -1) {
		t.Error("-Inf must survive")
	}
	if !IsNaN(FromFloat32(float32(math.NaN()))) {
		t.Error("NaN must survive")
	}
	if !math.IsNaN(float64(ToFloat32(FromFloat32(float32(math.NaN()))))) {
		t.Error("NaN round trip broken")
	}
}

// bfloat16's defining property vs binary16: the huge dynamic range. 1e30
// survives (FP16 overflows at 65504) but only ~2-3 significant digits
// remain.
func TestDynamicRangeVsPrecision(t *testing.T) {
	big := Round(1e30)
	if math.IsInf(float64(big), 0) {
		t.Fatal("1e30 must be finite in bfloat16")
	}
	rel := math.Abs(float64(big)-1e30) / 1e30
	if rel > 1.0/128 {
		t.Errorf("1e30 relative error %v exceeds epsilon", rel)
	}
	// Precision: 1 + 2^-9 collapses to 1.
	if Round(1+1.0/512) != 1 {
		t.Errorf("1+2^-9 should round to 1, got %v", Round(1+1.0/512))
	}
	if MaxValue() < 3e38 {
		t.Errorf("MaxValue = %v", MaxValue())
	}
}

// Round must be idempotent and within half an epsilon relative error.
func TestRoundProperties(t *testing.T) {
	f := func(v float32) bool {
		if v != v || math.IsInf(float64(v), 0) ||
			math.Abs(float64(v)) > float64(MaxValue()) {
			// Values beyond the max finite bfloat16 legitimately round to
			// infinity; they are covered by TestSpecials.
			return true
		}
		r := Round(v)
		if Round(r) != r {
			return false // idempotence
		}
		if v == 0 {
			return r == 0
		}
		rel := math.Abs(float64(r)-float64(v)) / math.Abs(float64(v))
		return rel <= 1.0/256+1e-9 || math.Abs(float64(v)) < 1e-38
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5000}); err != nil {
		t.Error(err)
	}
}

func TestRoundToNearestEven(t *testing.T) {
	// 256 has ULP 2 in bfloat16 (2^8 with 7 mantissa bits): 257 is halfway
	// and must round to the even 256; 259 is halfway to 258/260 -> 260.
	if got := Round(257); got != 256 {
		t.Errorf("RNE(257) = %v, want 256", got)
	}
	if got := Round(259); got != 260 {
		t.Errorf("RNE(259) = %v, want 260", got)
	}
}
