// Package bf16 implements bfloat16 ("brain float") rounding in software.
//
// The paper's conclusion names BF16 as the first porting target beyond
// FP16: bfloat16 keeps float32's 8-bit exponent (so the Ω16 transforms
// never need scaling matrices for range) but stores only 7 mantissa bits,
// trading precision for dynamic range. The package provides bit-level
// conversions plus the value-domain rounder used by WinRS's quantized
// execution path.
package bf16

import "math"

// Bits is a bfloat16 value stored as its raw 16-bit pattern (the high half
// of the equivalent float32).
type Bits uint16

// FromFloat32 converts with round-to-nearest-even.
func FromFloat32(f float32) Bits {
	b := math.Float32bits(f)
	if b&0x7F800000 == 0x7F800000 && b&0x007FFFFF != 0 {
		// NaN: keep it NaN after truncation.
		return Bits(b>>16 | 0x0040)
	}
	// RNE on the low 16 bits.
	round := uint32(0x7FFF + (b>>16)&1)
	return Bits((b + round) >> 16)
}

// ToFloat32 expands the pattern exactly.
func ToFloat32(h Bits) float32 {
	return math.Float32frombits(uint32(h) << 16)
}

// Round returns the nearest bfloat16-representable value as a float32 —
// the value-domain quantizer for WinRS's generic low-precision path.
func Round(f float32) float32 {
	return ToFloat32(FromFloat32(f))
}

// DecodeSlice converts bfloat16 src into float32 dst element-wise — the
// same slice-codec interface as fp16.DecodeSlice, so callers treat the
// storage formats uniformly. len(dst) must equal len(src).
func DecodeSlice(dst []float32, src []Bits) {
	if len(dst) != len(src) {
		panic("bf16: DecodeSlice length mismatch")
	}
	for i, h := range src {
		dst[i] = math.Float32frombits(uint32(h) << 16)
	}
}

// EncodeSlice converts float32 src into bfloat16 dst element-wise with
// round-to-nearest-even, bit-identical to the scalar FromFloat32.
// len(dst) must equal len(src). bfloat16 needs no tables: the encode is
// an add-and-shift on the float32 bits.
func EncodeSlice(dst []Bits, src []float32) {
	if len(dst) != len(src) {
		panic("bf16: EncodeSlice length mismatch")
	}
	for i, v := range src {
		b := math.Float32bits(v)
		if b&0x7F800000 == 0x7F800000 && b&0x007FFFFF != 0 {
			dst[i] = Bits(b>>16 | 0x0040)
			continue
		}
		round := uint32(0x7FFF + (b>>16)&1)
		dst[i] = Bits((b + round) >> 16)
	}
}

// RoundSlice rounds every element of vs to its nearest bfloat16 value in
// place, bit-identical to Round per element — the bulk quantizer the
// generic low-precision execution path calls on whole panels.
func RoundSlice(vs []float32) {
	for i, v := range vs {
		b := math.Float32bits(v)
		if b&0x7F800000 == 0x7F800000 && b&0x007FFFFF != 0 {
			vs[i] = math.Float32frombits((b>>16 | 0x0040) << 16)
			continue
		}
		round := uint32(0x7FFF + (b>>16)&1)
		vs[i] = math.Float32frombits((b + round) >> 16 << 16)
	}
}

// IsNaN reports whether h is a NaN pattern.
func IsNaN(h Bits) bool {
	return h&0x7F80 == 0x7F80 && h&0x007F != 0
}

// IsInf reports whether h is an infinity of the given sign (0 = either).
func IsInf(h Bits, sign int) bool {
	if h&0x7FFF != 0x7F80 {
		return false
	}
	switch {
	case sign > 0:
		return h&0x8000 == 0
	case sign < 0:
		return h&0x8000 != 0
	default:
		return true
	}
}

// MaxValue returns the largest finite bfloat16 value (≈3.39e38).
func MaxValue() float32 { return ToFloat32(0x7F7F) }

// Epsilon returns the machine epsilon (2^-8 relative spacing at 1.0 is
// 2^-7 for 7 stored mantissa bits).
func Epsilon() float32 { return 1.0 / 128 }
