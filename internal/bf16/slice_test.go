package bf16

import (
	"math"
	"math/rand"
	"testing"
)

func sameF32(a, b float32) bool {
	return math.Float32bits(a) == math.Float32bits(b)
}

// Structured boundary patterns: RNE ties on the dropped 16 bits against
// even and odd kept mantissas, subnormals, specials and NaN payloads.
var boundaryBits = []uint32{
	0x00000000, 0x80000000, // ±0
	0x3F800000, 0xBF800000, // ±1
	0x3F808000, 0x3F818000, // ties: kept mantissa even / odd
	0x3F807FFF, 0x3F808001, // just below / above a tie
	0x00008000, 0x00018000, // float32 subnormal ties
	0x00000001, 0x807FFFFF, // smallest subnormals
	0x7F7FFFFF, 0xFF7FFFFF, // ±MaxFloat32 (rounds to ±Inf in bf16)
	0x7F7F8000, 0x7F7F7FFF, // overflow tie and just below
	0x7F800000, 0xFF800000, // ±Inf
	0x7F800001, 0x7FC00000, 0xFFC12345, // NaN payloads
}

// The slice kernels must match the scalar oracle bit-for-bit on the
// boundary set and on a large random sample of the full bit domain.
func TestSliceKernelsMatchScalar(t *testing.T) {
	bits := append([]uint32(nil), boundaryBits...)
	rng := rand.New(rand.NewSource(20260805))
	for i := 0; i < 1<<20; i++ {
		bits = append(bits, rng.Uint32())
	}

	src := make([]float32, len(bits))
	for i, b := range bits {
		src[i] = math.Float32frombits(b)
	}
	enc := make([]Bits, len(src))
	EncodeSlice(enc, src)
	for i, v := range src {
		if want := FromFloat32(v); enc[i] != want {
			t.Fatalf("EncodeSlice(%#08x) = %#04x, oracle FromFloat32 = %#04x",
				bits[i], enc[i], want)
		}
	}

	dec := make([]float32, len(enc))
	DecodeSlice(dec, enc)
	for i, h := range enc {
		if want := ToFloat32(h); !sameF32(dec[i], want) {
			t.Fatalf("DecodeSlice(%#04x) = %x, oracle ToFloat32 = %x",
				h, math.Float32bits(dec[i]), math.Float32bits(want))
		}
	}

	rs := append([]float32(nil), src...)
	RoundSlice(rs)
	for i, v := range src {
		if want := Round(v); !sameF32(rs[i], want) {
			t.Fatalf("RoundSlice(%#08x) = %x, scalar Round = %x",
				bits[i], math.Float32bits(rs[i]), math.Float32bits(want))
		}
	}
}

// Exhaustive decode: every bfloat16 pattern expands exactly and
// re-encodes to itself (except NaNs, which must stay NaN).
func TestDecodeEncodeExhaustive(t *testing.T) {
	src := make([]Bits, 1<<16)
	for i := range src {
		src[i] = Bits(i)
	}
	dec := make([]float32, len(src))
	DecodeSlice(dec, src)
	back := make([]Bits, len(src))
	EncodeSlice(back, dec)
	for i, h := range src {
		if !sameF32(dec[i], ToFloat32(h)) {
			t.Fatalf("DecodeSlice(%#04x) != ToFloat32", h)
		}
		if IsNaN(h) {
			if !IsNaN(back[i]) {
				t.Fatalf("NaN pattern %#04x re-encoded to non-NaN %#04x", h, back[i])
			}
			continue
		}
		if back[i] != h {
			t.Fatalf("round trip of %#04x gave %#04x", h, back[i])
		}
	}
}

func TestSliceKernelLengthMismatchPanics(t *testing.T) {
	mustPanic := func(name string, fn func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s: length mismatch did not panic", name)
			}
		}()
		fn()
	}
	mustPanic("DecodeSlice", func() { DecodeSlice(make([]float32, 2), make([]Bits, 3)) })
	mustPanic("EncodeSlice", func() { EncodeSlice(make([]Bits, 3), make([]float32, 2)) })
}

func BenchmarkRoundSliceBulk(b *testing.B) {
	rng := rand.New(rand.NewSource(9))
	vs := make([]float32, 4096)
	for i := range vs {
		vs[i] = rng.Float32()*4 - 2
	}
	b.SetBytes(int64(len(vs) * 4))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		RoundSlice(vs)
	}
}

func BenchmarkRoundScalar(b *testing.B) {
	rng := rand.New(rand.NewSource(9))
	vs := make([]float32, 4096)
	for i := range vs {
		vs[i] = rng.Float32()*4 - 2
	}
	b.SetBytes(int64(len(vs) * 4))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j, v := range vs {
			vs[j] = Round(v)
		}
	}
}
