package kahan

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// Classic stress: summing many small values onto a large one. Naive float32
// summation loses them entirely; Kahan keeps nearly full precision.
func TestSum32BeatsNaive(t *testing.T) {
	const n = 1 << 20
	const small = float32(1e-4)
	var k Sum32
	k.Add(1e4)
	naive := float32(1e4)
	for i := 0; i < n; i++ {
		k.Add(small)
		naive += small
	}
	exact := 1e4 + float64(n)*float64(small)
	errK := math.Abs(float64(k.Value())-exact) / exact
	errN := math.Abs(float64(naive)-exact) / exact
	if errK > 1e-6 {
		t.Errorf("Kahan error %v too large", errK)
	}
	if errN < 10*errK {
		t.Errorf("expected naive (%v) to be much worse than Kahan (%v)", errN, errK)
	}
}

func TestSum64(t *testing.T) {
	var k Sum64
	for i := 0; i < 10; i++ {
		k.Add(0.1)
	}
	if math.Abs(k.Value()-1.0) > 1e-15 {
		t.Errorf("sum of ten 0.1 = %v, want 1.0 within 1e-15", k.Value())
	}
	k.Reset()
	if k.Value() != 0 {
		t.Error("Reset should zero the accumulator")
	}
}

// Neumaier handles the case Kahan famously fails: addend magnitude exceeds
// the running sum (e.g. [1, 1e30, 1, -1e30] in float32 terms).
func TestNeumaierLargeAddend(t *testing.T) {
	var n Neumaier32
	for _, v := range []float32{1, 1e30, 1, -1e30} {
		n.Add(v)
	}
	if got := n.Value(); got != 2 {
		t.Errorf("Neumaier sum = %v, want 2", got)
	}
}

func TestSumSliceHelpers(t *testing.T) {
	xs32 := []float32{0.25, 0.5, 0.125, -0.375}
	if got := SumSlice32(xs32); got != 0.5 {
		t.Errorf("SumSlice32 = %v, want 0.5", got)
	}
	xs64 := []float64{1, 2, 3, 4}
	if got := SumSlice64(xs64); got != 10 {
		t.Errorf("SumSlice64 = %v, want 10", got)
	}
	if SumSlice32(nil) != 0 || SumSlice64(nil) != 0 {
		t.Error("empty slice should sum to 0")
	}
}

// Property: for exactly representable inputs (small integers) Kahan matches
// exact integer summation.
func TestSum32ExactOnIntegers(t *testing.T) {
	f := func(vals []int8) bool {
		var k Sum32
		exact := 0
		for _, v := range vals {
			k.Add(float32(v))
			exact += int(v)
		}
		return k.Value() == float32(exact)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: Kahan float32 summation error vs float64 reference stays within
// a few ULP even for thousands of random terms.
func TestSum32ErrorBound(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 20; trial++ {
		n := 1000 + rng.Intn(4000)
		var k Sum32
		var ref float64
		for i := 0; i < n; i++ {
			v := float32(rng.Float64()*2 - 1)
			k.Add(v)
			ref += float64(v)
		}
		if math.Abs(float64(k.Value())-ref) > 1e-4 {
			t.Fatalf("trial %d: kahan %v vs ref %v", trial, k.Value(), ref)
		}
	}
}

func TestReduceBuckets(t *testing.T) {
	const z, n = 8, 64
	buckets := make([][]float32, z)
	want := make([]float64, n)
	for zi := range buckets {
		buckets[zi] = make([]float32, n)
		for i := range buckets[zi] {
			v := float32(zi+1) * float32(i) * 0.25
			buckets[zi][i] = v
			want[i] += float64(v)
		}
	}
	dst := make([]float32, n)
	ReduceBuckets(dst, buckets)
	for i := range dst {
		if math.Abs(float64(dst[i])-want[i]) > 1e-3 {
			t.Fatalf("dst[%d] = %v, want %v", i, dst[i], want[i])
		}
	}
	naive := make([]float32, n)
	ReduceBucketsNaive(naive, buckets)
	for i := range naive {
		if math.Abs(float64(naive[i])-want[i]) > 1e-2 {
			t.Fatalf("naive dst[%d] = %v, want %v", i, naive[i], want[i])
		}
	}
}

func TestReduceBucketsMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic for mismatched bucket length")
		}
	}()
	ReduceBuckets(make([]float32, 4), [][]float32{make([]float32, 3)})
}

// Kahan reduction must be at least as accurate as naive reduction when
// summing many buckets of tiny values onto one large bucket.
func TestReduceBucketsAccuracyAblation(t *testing.T) {
	const z, n = 512, 16
	buckets := make([][]float32, z)
	for zi := range buckets {
		buckets[zi] = make([]float32, n)
		for i := range buckets[zi] {
			if zi == 0 {
				buckets[zi][i] = 4096
			} else {
				buckets[zi][i] = 1.0 / 1024
			}
		}
	}
	exact := 4096 + float64(z-1)/1024
	compensated := make([]float32, n)
	naive := make([]float32, n)
	ReduceBuckets(compensated, buckets)
	ReduceBucketsNaive(naive, buckets)
	errC := math.Abs(float64(compensated[0]) - exact)
	errN := math.Abs(float64(naive[0]) - exact)
	if errC > errN {
		t.Errorf("Kahan reduction error %v exceeds naive %v", errC, errN)
	}
	if errC > 1e-3 {
		t.Errorf("Kahan reduction error %v too large", errC)
	}
}

func BenchmarkSum32(b *testing.B) {
	for i := 0; i < b.N; i++ {
		var k Sum32
		for j := 0; j < 1024; j++ {
			k.Add(float32(j) * 0.001)
		}
		_ = k.Value()
	}
}

func BenchmarkReduceBuckets(b *testing.B) {
	const z, n = 16, 4096
	buckets := make([][]float32, z)
	for zi := range buckets {
		buckets[zi] = make([]float32, n)
	}
	dst := make([]float32, n)
	b.SetBytes(int64(z * n * 4))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ReduceBuckets(dst, buckets)
	}
}
