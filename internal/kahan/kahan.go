// Package kahan provides compensated summation.
//
// WinRS sums Z partition buckets into the final filter gradient with FP32
// Kahan summation to bound the error of long accumulations (paper §5.2,
// "Accuracy Optimization"). This package implements both the classic Kahan
// accumulator and the Neumaier variant (which also handles addends larger
// than the running sum) for float32 and float64, plus slice-wise reducers
// used by the bucket-reduction kernel.
package kahan

// Sum32 is a float32 Kahan (compensated) accumulator. The zero value is an
// accumulator holding 0.
type Sum32 struct {
	sum float32
	c   float32 // running compensation for lost low-order bits
}

// Add folds v into the accumulator.
func (k *Sum32) Add(v float32) {
	y := v - k.c
	t := k.sum + y
	k.c = (t - k.sum) - y
	k.sum = t
}

// Value returns the current compensated sum.
func (k *Sum32) Value() float32 { return k.sum }

// Reset clears the accumulator to 0.
func (k *Sum32) Reset() { k.sum, k.c = 0, 0 }

// Sum64 is a float64 Kahan accumulator. The zero value holds 0.
type Sum64 struct {
	sum float64
	c   float64
}

// Add folds v into the accumulator.
func (k *Sum64) Add(v float64) {
	y := v - k.c
	t := k.sum + y
	k.c = (t - k.sum) - y
	k.sum = t
}

// Value returns the current compensated sum.
func (k *Sum64) Value() float64 { return k.sum }

// Reset clears the accumulator to 0.
func (k *Sum64) Reset() { k.sum, k.c = 0, 0 }

// Neumaier32 is Neumaier's improved compensated accumulator: unlike plain
// Kahan it stays accurate when an addend exceeds the running sum in
// magnitude. The zero value holds 0.
type Neumaier32 struct {
	sum float32
	c   float32
}

// Add folds v into the accumulator.
func (n *Neumaier32) Add(v float32) {
	t := n.sum + v
	if abs32(n.sum) >= abs32(v) {
		n.c += (n.sum - t) + v
	} else {
		n.c += (v - t) + n.sum
	}
	n.sum = t
}

// Value returns the compensated sum including the correction term.
func (n *Neumaier32) Value() float32 { return n.sum + n.c }

// Reset clears the accumulator to 0.
func (n *Neumaier32) Reset() { n.sum, n.c = 0, 0 }

func abs32(v float32) float32 {
	if v < 0 {
		return -v
	}
	return v
}

// SumSlice32 returns the Kahan-compensated sum of xs.
func SumSlice32(xs []float32) float32 {
	var k Sum32
	for _, v := range xs {
		k.Add(v)
	}
	return k.Value()
}

// SumSlice64 returns the Kahan-compensated sum of xs.
func SumSlice64(xs []float64) float64 {
	var k Sum64
	for _, v := range xs {
		k.Add(v)
	}
	return k.Value()
}

// ReduceBuckets sums Z equally-sized float32 buckets element-wise into dst
// using Kahan compensation per element. It is the scalar model of WinRS's
// bucket-reduction kernel: dst[i] = Σ_z buckets[z][i]. Every bucket must
// have len(dst) elements.
func ReduceBuckets(dst []float32, buckets [][]float32) {
	for _, b := range buckets {
		if len(b) != len(dst) {
			panic("kahan: ReduceBuckets bucket length mismatch")
		}
	}
	for i := range dst {
		var k Sum32
		for _, b := range buckets {
			k.Add(b[i])
		}
		dst[i] = k.Value()
	}
}

// ReduceBucketsNaive is ReduceBuckets without compensation; it exists for
// the accuracy ablation contrasting Kahan with naive reduction.
func ReduceBucketsNaive(dst []float32, buckets [][]float32) {
	for _, b := range buckets {
		if len(b) != len(dst) {
			panic("kahan: ReduceBucketsNaive bucket length mismatch")
		}
	}
	for i := range dst {
		var s float32
		for _, b := range buckets {
			s += b[i]
		}
		dst[i] = s
	}
}
