package autotune

import (
	"testing"
	"time"

	"winrs/internal/conv"
	"winrs/internal/core"
	"winrs/internal/winograd"
)

func TestMeasureKernelProducesThroughput(t *testing.T) {
	k, _ := winograd.Lookup(3, 6)
	r := MeasureKernel(k, 5*time.Millisecond)
	if r.GFLOPS <= 0 {
		t.Errorf("GFLOPS = %v, want positive", r.GFLOPS)
	}
	if r.Units < 16 {
		t.Errorf("only %d units measured", r.Units)
	}
	if r.Kernel.String() != "Omega8(3,6)" {
		t.Errorf("result kernel = %v", r.Kernel)
	}
}

func TestCoefficientsCoverRegistry(t *testing.T) {
	coeffs := Coefficients(2 * time.Millisecond)
	if len(coeffs) != len(winograd.Kernels) {
		t.Fatalf("%d coefficients, want %d", len(coeffs), len(winograd.Kernels))
	}
	for _, k := range winograd.Kernels {
		c, ok := coeffs[k.String()]
		if !ok {
			t.Errorf("missing coefficient for %v", k)
			continue
		}
		if c <= 0 {
			t.Errorf("%v: non-positive coefficient %v", k, c)
		}
	}
}

// The tuned coefficients must plug into pair selection: an artificial
// override that makes the residual kernel "fastest" must flip the selected
// pair.
func TestCoefficientsDriveSelection(t *testing.T) {
	p := conv.Params{N: 1, IH: 16, IW: 18, FH: 3, FW: 3, IC: 8, OC: 8}
	if p.OW() != 16 {
		t.Fatalf("setup: OW = %d", p.OW())
	}
	base, err := core.Configure(p)
	if err != nil {
		t.Fatal(err)
	}
	if base.Pair.Fast.String() != "Omega8(3,6)" {
		t.Fatalf("baseline pair = %v", base.Pair)
	}
	// Crank Ω4(3,2) far above Ω8(3,6).
	tuned, err := core.Configure(p, core.WithCoefficients(map[string]float64{
		"Omega4(3,2)": 100,
		"Omega8(3,6)": 0.1,
	}))
	if err != nil {
		t.Fatal(err)
	}
	if tuned.Pair.Fast.String() != "Omega4(3,2)" {
		t.Errorf("tuned pair = %v, want Omega4(3,2) fast", tuned.Pair)
	}
}

// End-to-end: configuring with real measured coefficients still produces
// correct results.
func TestTunedConfigurationStaysCorrect(t *testing.T) {
	coeffs := Coefficients(time.Millisecond)
	p := conv.Params{N: 1, IH: 14, IW: 14, FH: 3, FW: 3, IC: 4, OC: 4, PH: 1, PW: 1}
	cfg, err := core.Configure(p, core.WithCoefficients(coeffs))
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Pair.Fast.N == 0 {
		t.Fatal("no kernel selected")
	}
	// The realized partition must still tile the plane (correctness of the
	// plan does not depend on which kernels were picked).
	covered := make([]int, p.OH()*p.OW())
	for _, s := range cfg.Segments {
		for y := s.Row0; y < s.Row1; y++ {
			for x := s.Col0; x < s.Col1; x++ {
				covered[y*p.OW()+x]++
			}
		}
	}
	for i, c := range covered {
		if c != 1 {
			t.Fatalf("cell %d covered %d times", i, c)
		}
	}
}
