// Package autotune measures the actual throughput of every WinRS kernel
// variant on the host and derives tuned selection coefficients.
//
// The paper's fastest-kernel-pair selection (§4.1) weighs kernels by
// "throughput coefficients" — static numbers calibrated for the authors'
// GPUs. On a different machine the relative speeds shift, so a production
// deployment measures them once: this package microbenchmarks the fused
// inner loop of each Ω_α(n,r) (filter transform, input transform,
// α-batched outer product) and reports direct-convolution-equivalent
// throughput, normalized into drop-in replacements for the static
// coefficients (consumed by core.WithCoefficients).
package autotune

import (
	"time"

	"winrs/internal/winograd"
)

// MeasureOnce times a single invocation of f — the bounded one-shot
// measurement behind dispatch refinement (internal/backend): unlike
// MeasureKernel's repeated-until-duration loop, the cost is exactly one
// execution of the candidate, so a dispatcher can afford to measure its
// top predictions without multiplying the first request's latency.
func MeasureOnce(f func()) time.Duration {
	start := time.Now()
	f()
	return time.Since(start)
}

// panel sizes of the microbenchmark's channel blocks; large enough that
// the EWM dominates, small enough to stay in cache.
const (
	panelOC = 32
	panelIC = 32
)

// Result is one kernel's measurement.
type Result struct {
	Kernel winograd.Kernel
	// GFLOPS is the direct-equivalent throughput of the fused unit loop.
	GFLOPS float64
	// Units is the number of fused unit iterations timed.
	Units int
}

// MeasureKernel runs the kernel's fused unit loop for at least the given
// duration and returns its direct-equivalent throughput.
func MeasureKernel(k winograd.Kernel, minDur time.Duration) Result {
	tr := k.Transform().Balanced()
	n, r, alpha := tr.N, tr.R, tr.Alpha

	wRaw := make([]float32, r*panelOC)
	wHat := make([]float32, alpha*panelOC)
	xRaw := make([]float32, alpha*panelIC)
	xHat := make([]float32, alpha*panelIC)
	v := make([]float32, alpha*panelOC*panelIC)
	for i := range wRaw {
		wRaw[i] = float32(i%7) * 0.125
	}
	for i := range xRaw {
		xRaw[i] = float32(i%5) * 0.25
	}

	unit := func() {
		mulPanel(tr.G, wRaw, wHat, r, panelOC)
		tMulPanel(tr.D, xRaw, xHat, alpha, panelIC)
		for e := 0; e < alpha; e++ {
			we := wHat[e*panelOC : (e+1)*panelOC]
			xe := xHat[e*panelIC : (e+1)*panelIC]
			ve := v[e*panelOC*panelIC : (e+1)*panelOC*panelIC]
			for a, wv := range we {
				row := ve[a*panelIC : (a+1)*panelIC]
				for b, xv := range xe {
					row[b] += wv * xv
				}
			}
		}
	}

	// Warm up (transform caches, branch predictors).
	for i := 0; i < 8; i++ {
		unit()
	}
	units := 0
	start := time.Now()
	for time.Since(start) < minDur {
		for i := 0; i < 16; i++ {
			unit()
		}
		units += 16
	}
	elapsed := time.Since(start).Seconds()
	// Direct-equivalent work per unit: the unit covers n outputs × r taps
	// per (oc, ic) pair.
	direct := 2 * float64(n) * float64(r) * panelOC * panelIC * float64(units)
	return Result{Kernel: k, GFLOPS: direct / elapsed / 1e9, Units: units}
}

// Coefficients measures every registry kernel and returns tuned selection
// coefficients keyed by kernel name (Ω-notation), normalized so the
// fastest kernel's coefficient equals its acceleration factor — the same
// scale the static table uses.
func Coefficients(perKernel time.Duration) map[string]float64 {
	results := make([]Result, 0, len(winograd.Kernels))
	best := 0.0
	for _, k := range winograd.Kernels {
		r := MeasureKernel(k, perKernel)
		results = append(results, r)
		if r.GFLOPS > best {
			best = r.GFLOPS
		}
	}
	out := make(map[string]float64, len(results))
	for _, r := range results {
		if best <= 0 {
			out[r.Kernel.String()] = r.Kernel.Coeff
			continue
		}
		// Relative measured throughput, scaled so coefficients stay
		// comparable to the static accel·efficiency values.
		out[r.Kernel.String()] = r.GFLOPS / best * maxAccel()
	}
	return out
}

func maxAccel() float64 {
	m := 0.0
	for _, k := range winograd.Kernels {
		if a := k.Accel(); a > m {
			m = a
		}
	}
	return m
}

func mulPanel(m *winograd.Mat, in, out []float32, rows, width int) {
	for i := 0; i < m.Rows; i++ {
		dst := out[i*width : (i+1)*width]
		for x := range dst {
			dst[x] = 0
		}
		for k := 0; k < rows; k++ {
			c := float32(m.At(i, k))
			if c == 0 {
				continue
			}
			src := in[k*width : (k+1)*width]
			for x, sv := range src {
				dst[x] += c * sv
			}
		}
	}
}

func tMulPanel(m *winograd.Mat, in, out []float32, rows, width int) {
	for i := 0; i < m.Cols; i++ {
		dst := out[i*width : (i+1)*width]
		for x := range dst {
			dst[x] = 0
		}
	}
	for k := 0; k < rows; k++ {
		src := in[k*width : (k+1)*width]
		for i := 0; i < m.Cols; i++ {
			c := float32(m.At(k, i))
			if c == 0 {
				continue
			}
			dst := out[i*width : (i+1)*width]
			for x, sv := range src {
				dst[x] += c * sv
			}
		}
	}
}
