// Package conv defines the convolution-layer geometry shared by every
// algorithm in this repository and provides direct (naive) implementations
// of the three convolution passes — forward (FC), backward-data (BDC) and
// backward-filter (BFC) — in float64 (the accuracy ground truth) and
// parallel float32.
//
// All tensors are NHWC. Backward-filter convolution, the paper's target
// operation, computes filter gradients
//
//	∇W[oc,fh,fw,ic] = Σ_{n,oh,ow} X[n, oh+fh-pH, ow+fw-pW, ic] · ∇Y[n,oh,ow,oc]
//
// i.e. a correlation of the input feature maps with the output gradients
// acting as a large O_H×O_W "filter" that slides over only F_H×F_W
// positions — the large-filter/small-output regime of the paper's Figure 1.
package conv

import (
	"fmt"
	"runtime"
	"sync"

	"winrs/internal/tensor"
)

// Params describes one convolutional layer (stride 1, symmetric zero
// padding), using the paper's Table 1 notation.
type Params struct {
	N      int // batch size
	IH, IW int // input height/width
	FH, FW int // filter (gradient) height/width
	IC, OC int // input/output channels
	PH, PW int // zero padding along height/width

	// Groups partitions the channels into G independent convolutions:
	// group g connects input channels [g·I_C/G, (g+1)·I_C/G) to output
	// channels [g·O_C/G, (g+1)·O_C/G), and each filter carries only
	// I_C/G channels. Zero means 1 (ungrouped — the legacy geometry);
	// G == I_C is depthwise (one input channel per group). The json tag
	// keeps the serve wire format byte-identical for ungrouped layers.
	Groups int `json:"groups,omitempty"`
}

// G returns the effective group count (≥1).
func (p Params) G() int {
	if p.Groups < 1 {
		return 1
	}
	return p.Groups
}

// ICG returns the per-group input-channel count I_C/G — the channel depth
// of each filter.
func (p Params) ICG() int { return p.IC / p.G() }

// OCG returns the per-group output-channel count O_C/G.
func (p Params) OCG() int { return p.OC / p.G() }

// OH returns the output-gradient height O_H = I_H + 2·p_H − F_H + 1.
func (p Params) OH() int { return p.IH + 2*p.PH - p.FH + 1 }

// OW returns the output-gradient width O_W = I_W + 2·p_W − F_W + 1.
func (p Params) OW() int { return p.IW + 2*p.PW - p.FW + 1 }

// Validate checks the geometry for consistency.
func (p Params) Validate() error {
	switch {
	case p.N < 1 || p.IC < 1 || p.OC < 1:
		return fmt.Errorf("conv: non-positive batch or channels in %+v", p)
	case p.IH < 1 || p.IW < 1 || p.FH < 1 || p.FW < 1:
		return fmt.Errorf("conv: non-positive spatial extents in %+v", p)
	case p.PH < 0 || p.PW < 0:
		return fmt.Errorf("conv: negative padding in %+v", p)
	case p.OH() < 1 || p.OW() < 1:
		return fmt.Errorf("conv: empty output %dx%d in %+v", p.OH(), p.OW(), p)
	case p.Groups < 0:
		return fmt.Errorf("conv: negative group count in %+v", p)
	case p.IC%p.G() != 0 || p.OC%p.G() != 0:
		return fmt.Errorf("conv: groups %d must divide IC %d and OC %d",
			p.G(), p.IC, p.OC)
	}
	return nil
}

// XShape returns the input feature-map shape N×I_H×I_W×I_C.
func (p Params) XShape() tensor.Shape {
	return tensor.Shape{N: p.N, H: p.IH, W: p.IW, C: p.IC}
}

// DYShape returns the output-gradient shape N×O_H×O_W×O_C.
func (p Params) DYShape() tensor.Shape {
	return tensor.Shape{N: p.N, H: p.OH(), W: p.OW(), C: p.OC}
}

// DWShape returns the filter-gradient shape O_C×F_H×F_W×(I_C/G) (stored
// with N standing in for O_C in the generic Shape type). Each filter sees
// only its own group's input channels, so the channel depth is I_C/G.
func (p Params) DWShape() tensor.Shape {
	return tensor.Shape{N: p.OC, H: p.FH, W: p.FW, C: p.ICG()}
}

// FLOPs returns the BFC time complexity 2·O_C·F_H·F_W·(I_C/G)·O_H·O_W·N
// used by the paper's throughput formula; grouping divides the C-reduction
// by G.
func (p Params) FLOPs() int64 {
	return 2 * int64(p.OC) * int64(p.FH) * int64(p.FW) * int64(p.ICG()) *
		int64(p.OH()) * int64(p.OW()) * int64(p.N)
}

// DataBytes32 returns the FP32 data size (X + ∇Y + ∇W) in bytes — the
// paper's reference quantity for workspace ratios.
func (p Params) DataBytes32() int64 {
	return tensor.Bytes32(p.XShape()) + tensor.Bytes32(p.DYShape()) +
		tensor.Bytes32(p.DWShape())
}

// DataBytes16 returns the FP16 data size in bytes.
func (p Params) DataBytes16() int64 {
	return tensor.Bytes16(p.XShape()) + tensor.Bytes16(p.DYShape()) +
		tensor.Bytes16(p.DWShape())
}

// String formats the layer compactly. Grouped layers carry a G suffix;
// ungrouped layers keep the legacy format so existing bench/report keys
// are unchanged.
func (p Params) String() string {
	s := fmt.Sprintf("N%d X%dx%dx%d F%dx%d OC%d P%d,%d",
		p.N, p.IH, p.IW, p.IC, p.FH, p.FW, p.OC, p.PH, p.PW)
	if p.G() > 1 {
		s += fmt.Sprintf(" G%d", p.G())
	}
	return s
}

// xAt reads X with implicit zero padding: coordinates outside the input
// return 0.
func xAt(x *tensor.Float64, n, h, w, c int) float64 {
	if h < 0 || h >= x.Shape.H || w < 0 || w >= x.Shape.W {
		return 0
	}
	return x.At(n, h, w, c)
}

func xAt32(x *tensor.Float32, n, h, w, c int) float32 {
	if h < 0 || h >= x.Shape.H || w < 0 || w >= x.Shape.W {
		return 0
	}
	return x.At(n, h, w, c)
}

// BackwardFilterDirect64 computes ∇W from X and ∇Y by direct summation in
// float64. It is the single source of accuracy ground truth for every
// other BFC implementation in the repository.
func BackwardFilterDirect64(p Params, x *tensor.Float64, dy *tensor.Float64) *tensor.Float64 {
	checkShapes(p, x.Shape, dy.Shape)
	dw := tensor.NewFloat64(p.DWShape())
	oh, ow := p.OH(), p.OW()
	icg, ocg := p.ICG(), p.OCG()
	for oc := 0; oc < p.OC; oc++ {
		icBase := oc / ocg * icg // first input channel of oc's group
		for fh := 0; fh < p.FH; fh++ {
			for fw := 0; fw < p.FW; fw++ {
				for cg := 0; cg < icg; cg++ {
					var s float64
					for n := 0; n < p.N; n++ {
						for y := 0; y < oh; y++ {
							ih := y + fh - p.PH
							if ih < 0 || ih >= p.IH {
								continue
							}
							for xw := 0; xw < ow; xw++ {
								iw := xw + fw - p.PW
								if iw < 0 || iw >= p.IW {
									continue
								}
								s += x.At(n, ih, iw, icBase+cg) * dy.At(n, y, xw, oc)
							}
						}
					}
					dw.Set(oc, fh, fw, cg, s)
				}
			}
		}
	}
	return dw
}

// BackwardFilterDirect32 computes ∇W in float32 with parallelism over
// output channels; it models a straightforward direct-convolution kernel.
func BackwardFilterDirect32(p Params, x *tensor.Float32, dy *tensor.Float32) *tensor.Float32 {
	checkShapes(p, x.Shape, dy.Shape)
	dw := tensor.NewFloat32(p.DWShape())
	oh, ow := p.OH(), p.OW()
	icg, ocg := p.ICG(), p.OCG()
	parallelFor(p.OC, func(oc int) {
		icBase := oc / ocg * icg
		for fh := 0; fh < p.FH; fh++ {
			for fw := 0; fw < p.FW; fw++ {
				for cg := 0; cg < icg; cg++ {
					var s float32
					for n := 0; n < p.N; n++ {
						for y := 0; y < oh; y++ {
							ih := y + fh - p.PH
							if ih < 0 || ih >= p.IH {
								continue
							}
							for xw := 0; xw < ow; xw++ {
								iw := xw + fw - p.PW
								if iw < 0 || iw >= p.IW {
									continue
								}
								s += x.At(n, ih, iw, icBase+cg) * dy.At(n, y, xw, oc)
							}
						}
					}
					dw.Set(oc, fh, fw, cg, s)
				}
			}
		}
	})
	return dw
}

// Forward64 computes the forward convolution Y = X ⊛ W in float64, with
// W shaped O_C×F_H×F_W×I_C. It backs the training substrate and the FC
// block-count estimates of Algorithm 1.
func Forward64(p Params, x *tensor.Float64, w *tensor.Float64) *tensor.Float64 {
	checkShapes(p, x.Shape, tensor.Shape{})
	if w.Shape != p.DWShape() {
		panic("conv: Forward64 filter shape mismatch")
	}
	y := tensor.NewFloat64(p.DYShape())
	oh, ow := p.OH(), p.OW()
	icg, ocg := p.ICG(), p.OCG()
	for n := 0; n < p.N; n++ {
		for yy := 0; yy < oh; yy++ {
			for xx := 0; xx < ow; xx++ {
				for oc := 0; oc < p.OC; oc++ {
					icBase := oc / ocg * icg
					var s float64
					for fh := 0; fh < p.FH; fh++ {
						for fw := 0; fw < p.FW; fw++ {
							for cg := 0; cg < icg; cg++ {
								s += xAt(x, n, yy+fh-p.PH, xx+fw-p.PW, icBase+cg) *
									w.At(oc, fh, fw, cg)
							}
						}
					}
					y.Set(n, yy, xx, oc, s)
				}
			}
		}
	}
	return y
}

// Forward32 is the parallel float32 forward convolution.
func Forward32(p Params, x *tensor.Float32, w *tensor.Float32) *tensor.Float32 {
	checkShapes(p, x.Shape, tensor.Shape{})
	if w.Shape != p.DWShape() {
		panic("conv: Forward32 filter shape mismatch")
	}
	y := tensor.NewFloat32(p.DYShape())
	oh, ow := p.OH(), p.OW()
	icg, ocg := p.ICG(), p.OCG()
	parallelFor(p.N, func(n int) {
		for yy := 0; yy < oh; yy++ {
			for xx := 0; xx < ow; xx++ {
				for oc := 0; oc < p.OC; oc++ {
					icBase := oc / ocg * icg
					var s float32
					for fh := 0; fh < p.FH; fh++ {
						for fw := 0; fw < p.FW; fw++ {
							for cg := 0; cg < icg; cg++ {
								s += xAt32(x, n, yy+fh-p.PH, xx+fw-p.PW, icBase+cg) *
									w.At(oc, fh, fw, cg)
							}
						}
					}
					y.Set(n, yy, xx, oc, s)
				}
			}
		}
	})
	return y
}

// BackwardData32 computes ∇X from ∇Y and W in float32 (BDC): the full
// correlation of ∇Y with the transposed filter. It completes the layer
// triad for the training substrate.
func BackwardData32(p Params, dy *tensor.Float32, w *tensor.Float32) *tensor.Float32 {
	if dy.Shape != p.DYShape() {
		panic("conv: BackwardData32 dy shape mismatch")
	}
	if w.Shape != p.DWShape() {
		panic("conv: BackwardData32 filter shape mismatch")
	}
	dx := tensor.NewFloat32(p.XShape())
	oh, ow := p.OH(), p.OW()
	icg, ocg := p.ICG(), p.OCG()
	parallelFor(p.N, func(n int) {
		for ih := 0; ih < p.IH; ih++ {
			for iw := 0; iw < p.IW; iw++ {
				for ic := 0; ic < p.IC; ic++ {
					ocBase, cg := ic/icg*ocg, ic%icg
					var s float32
					for fh := 0; fh < p.FH; fh++ {
						y := ih - fh + p.PH
						if y < 0 || y >= oh {
							continue
						}
						for fw := 0; fw < p.FW; fw++ {
							x := iw - fw + p.PW
							if x < 0 || x >= ow {
								continue
							}
							for oc := ocBase; oc < ocBase+ocg; oc++ {
								s += dy.At(n, y, x, oc) * w.At(oc, fh, fw, cg)
							}
						}
					}
					dx.Set(n, ih, iw, ic, s)
				}
			}
		}
	})
	return dx
}

func checkShapes(p Params, xs, dys tensor.Shape) {
	if err := p.Validate(); err != nil {
		panic(err)
	}
	if xs != (tensor.Shape{}) && xs != p.XShape() {
		panic(fmt.Sprintf("conv: X shape %v, want %v", xs, p.XShape()))
	}
	if dys != (tensor.Shape{}) && dys != p.DYShape() {
		panic(fmt.Sprintf("conv: dY shape %v, want %v", dys, p.DYShape()))
	}
}

// parallelFor runs f(i) for i in [0,n) across GOMAXPROCS goroutines.
func parallelFor(n int, f func(i int)) {
	workers := runtime.GOMAXPROCS(0)
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			f(i)
		}
		return
	}
	var wg sync.WaitGroup
	next := make(chan int)
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for i := range next {
				f(i)
			}
		}()
	}
	for i := 0; i < n; i++ {
		next <- i
	}
	close(next)
	wg.Wait()
}
