package conv

import (
	"math/rand"
	"testing"

	"winrs/internal/tensor"
)

func randF64(rng *rand.Rand, s tensor.Shape) *tensor.Float64 {
	t := tensor.NewFloat64(s)
	for i := range t.Data {
		t.Data[i] = rng.Float64()*2 - 1
	}
	return t
}

// sliceC64 extracts channels [off, off+width) of every NHWC row.
func sliceC64(src *tensor.Float64, off, width int) *tensor.Float64 {
	s := src.Shape
	out := tensor.NewFloat64(tensor.Shape{N: s.N, H: s.H, W: s.W, C: width})
	for n := 0; n < s.N; n++ {
		for h := 0; h < s.H; h++ {
			for w := 0; w < s.W; w++ {
				for c := 0; c < width; c++ {
					out.Set(n, h, w, c, src.At(n, h, w, off+c))
				}
			}
		}
	}
	return out
}

// The grouped float64 oracle must agree with G independent ungrouped
// oracles over channel-sliced operands — grouping is by definition a
// block-diagonal restriction of the dense convolution.
func TestGroupedOracleMatchesPerGroupSlices(t *testing.T) {
	for _, p := range []Params{
		{N: 2, IH: 10, IW: 10, FH: 3, FW: 3, IC: 6, OC: 4, PH: 1, PW: 1, Groups: 2},
		{N: 1, IH: 8, IW: 12, FH: 3, FW: 3, IC: 4, OC: 4, Groups: 4}, // depthwise
		{N: 1, IH: 12, IW: 9, FH: 5, FW: 5, IC: 6, OC: 9, PH: 2, PW: 2, Groups: 3},
	} {
		if err := p.Validate(); err != nil {
			t.Fatalf("%v: %v", p, err)
		}
		rng := rand.New(rand.NewSource(71))
		x := randF64(rng, p.XShape())
		dy := randF64(rng, p.DYShape())
		got := BackwardFilterDirect64(p, x, dy)
		if got.Shape.C != p.ICG() {
			t.Fatalf("%v: ∇W channel depth %d, want I_C/G = %d", p, got.Shape.C, p.ICG())
		}
		icg, ocg := p.ICG(), p.OCG()
		for gi := 0; gi < p.G(); gi++ {
			pg := p
			pg.IC, pg.OC, pg.Groups = icg, ocg, 0
			want := BackwardFilterDirect64(pg, sliceC64(x, gi*icg, icg), sliceC64(dy, gi*ocg, ocg))
			for oc := 0; oc < ocg; oc++ {
				for fh := 0; fh < p.FH; fh++ {
					for fw := 0; fw < p.FW; fw++ {
						for c := 0; c < icg; c++ {
							g := got.At(gi*ocg+oc, fh, fw, c)
							w := want.At(oc, fh, fw, c)
							if g != w {
								t.Fatalf("%v group %d: ∇W[%d,%d,%d,%d] = %v, per-group oracle %v",
									p, gi, oc, fh, fw, c, g, w)
							}
						}
					}
				}
			}
		}
	}
}

// Grouped forward/backward-data must likewise reduce to per-group slices.
func TestGroupedForwardBackwardDataOracle(t *testing.T) {
	p := Params{N: 1, IH: 9, IW: 11, FH: 3, FW: 3, IC: 4, OC: 6, PH: 1, PW: 1, Groups: 2}
	rng := rand.New(rand.NewSource(72))
	x := randF64(rng, p.XShape())
	w := randF64(rng, p.DWShape())
	y := Forward64(p, x, w)
	icg, ocg := p.ICG(), p.OCG()
	for gi := 0; gi < p.G(); gi++ {
		pg := p
		pg.IC, pg.OC, pg.Groups = icg, ocg, 0
		wg := tensor.NewFloat64(pg.DWShape())
		for oc := 0; oc < ocg; oc++ {
			for fh := 0; fh < p.FH; fh++ {
				for fw := 0; fw < p.FW; fw++ {
					for c := 0; c < icg; c++ {
						wg.Set(oc, fh, fw, c, w.At(gi*ocg+oc, fh, fw, c))
					}
				}
			}
		}
		want := Forward64(pg, sliceC64(x, gi*icg, icg), wg)
		for n := 0; n < p.N; n++ {
			for oh := 0; oh < p.OH(); oh++ {
				for ow := 0; ow < p.OW(); ow++ {
					for oc := 0; oc < ocg; oc++ {
						if y.At(n, oh, ow, gi*ocg+oc) != want.At(n, oh, ow, oc) {
							t.Fatalf("group %d: forward mismatch at (%d,%d,%d,%d)", gi, n, oh, ow, oc)
						}
					}
				}
			}
		}
	}

	// ∇X of the grouped forward, against a central-difference probe.
	dy32 := randF64(rng, p.DYShape()).ToFloat32()
	w32 := w.ToFloat32()
	dx := BackwardData32(p, dy32, w32)
	if dx.Shape != p.XShape() {
		t.Fatalf("∇X shape %v, want %v", dx.Shape, p.XShape())
	}
	x32 := x.ToFloat32()
	const eps = 1e-2
	probe := func(n, ih, iw, ic int) float32 {
		orig := x32.At(n, ih, iw, ic)
		x32.Set(n, ih, iw, ic, orig+eps)
		yp := Forward32(p, x32, w32)
		x32.Set(n, ih, iw, ic, orig-eps)
		ym := Forward32(p, x32, w32)
		x32.Set(n, ih, iw, ic, orig)
		var s float32
		for i := range yp.Data {
			s += (yp.Data[i] - ym.Data[i]) / (2 * eps) * dy32.Data[i]
		}
		return s
	}
	for _, site := range [][4]int{{0, 0, 0, 0}, {0, 4, 5, 1}, {0, 8, 10, 3}} {
		want := probe(site[0], site[1], site[2], site[3])
		got := dx.At(site[0], site[1], site[2], site[3])
		if d := got - want; d < -2e-2 || d > 2e-2 {
			t.Errorf("∇X[%v] = %v, finite-difference %v", site, got, want)
		}
	}
}

// Grouped geometry validation and derived quantities.
func TestGroupedValidate(t *testing.T) {
	base := Params{N: 1, IH: 8, IW: 8, FH: 3, FW: 3, IC: 6, OC: 4, PH: 1, PW: 1}
	for _, bad := range []int{-1, 4, 5} { // 4 does not divide IC=6; 5 divides neither
		p := base
		p.Groups = bad
		if err := p.Validate(); err == nil {
			t.Errorf("Groups=%d accepted, want rejection", bad)
		}
	}
	p := base
	p.Groups = 2
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	if p.ICG() != 3 || p.OCG() != 2 {
		t.Errorf("per-group channels %d×%d, want 3×2", p.ICG(), p.OCG())
	}
	if p.DWShape().C != 3 {
		t.Errorf("∇W channel depth %d, want I_C/G = 3", p.DWShape().C)
	}
	pu := base
	if p.FLOPs()*int64(p.G()) != pu.FLOPs() {
		t.Errorf("grouped FLOPs %d, want ungrouped/G = %d", p.FLOPs(), pu.FLOPs()/int64(p.G()))
	}

	sp := StridedParams{N: 1, IH: 9, IW: 9, FH: 3, FW: 3, IC: 4, OC: 4, SH: 2, SW: 2, Groups: 3}
	if err := sp.Validate(); err == nil {
		t.Error("strided Groups=3 with IC=OC=4 accepted, want rejection")
	}
	sp.Groups = 4
	if err := sp.Validate(); err != nil {
		t.Fatal(err)
	}
	sp.SH, sp.SW = 1, 1
	u, ok := sp.Unit()
	if !ok {
		t.Fatal("unit-stride params did not short-circuit to Params")
	}
	if u.Groups != 4 {
		t.Errorf("Unit() dropped Groups: %+v", u)
	}
}
