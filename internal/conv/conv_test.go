package conv

import (
	"math"
	"math/rand"
	"testing"

	"winrs/internal/tensor"
)

func randParams(rng *rand.Rand) Params {
	for {
		p := Params{
			N:  1 + rng.Intn(3),
			IH: 3 + rng.Intn(8),
			IW: 3 + rng.Intn(8),
			FH: 1 + rng.Intn(4),
			FW: 1 + rng.Intn(4),
			IC: 1 + rng.Intn(4),
			OC: 1 + rng.Intn(4),
			PH: rng.Intn(2),
			PW: rng.Intn(2),
		}
		if p.Validate() == nil {
			return p
		}
	}
}

func fillRand64(t *tensor.Float64, rng *rand.Rand) {
	for i := range t.Data {
		t.Data[i] = rng.Float64()*2 - 1
	}
}

func TestParamsGeometry(t *testing.T) {
	p := Params{N: 32, IH: 224, IW: 224, FH: 3, FW: 3, IC: 64, OC: 64, PH: 1, PW: 1}
	if p.OH() != 224 || p.OW() != 224 {
		t.Errorf("same-padding 3x3 should keep 224x224, got %dx%d", p.OH(), p.OW())
	}
	if err := p.Validate(); err != nil {
		t.Errorf("valid params rejected: %v", err)
	}
	if p.XShape() != (tensor.Shape{N: 32, H: 224, W: 224, C: 64}) {
		t.Errorf("XShape = %v", p.XShape())
	}
	if p.DWShape() != (tensor.Shape{N: 64, H: 3, W: 3, C: 64}) {
		t.Errorf("DWShape = %v", p.DWShape())
	}
	// FLOPs: 2*64*3*3*64*224*224*32.
	want := int64(2) * 64 * 3 * 3 * 64 * 224 * 224 * 32
	if p.FLOPs() != want {
		t.Errorf("FLOPs = %d, want %d", p.FLOPs(), want)
	}
	if p.DataBytes32() != 2*p.DataBytes16() {
		t.Error("FP32 data size should be twice FP16")
	}
}

func TestValidateRejections(t *testing.T) {
	bad := []Params{
		{},
		{N: 1, IH: 4, IW: 4, FH: 3, FW: 3, IC: 1, OC: 1, PH: -1},
		{N: 1, IH: 2, IW: 2, FH: 5, FW: 5, IC: 1, OC: 1}, // empty output
		{N: 0, IH: 4, IW: 4, FH: 3, FW: 3, IC: 1, OC: 1},
	}
	for i, p := range bad {
		if p.Validate() == nil {
			t.Errorf("case %d: expected validation error for %+v", i, p)
		}
	}
}

// BFC must agree with an independent scalar summation written from the
// definition, including zero padding.
func TestBackwardFilterDirect64Definition(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 10; trial++ {
		p := randParams(rng)
		x := tensor.NewFloat64(p.XShape())
		dy := tensor.NewFloat64(p.DYShape())
		fillRand64(x, rng)
		fillRand64(dy, rng)
		dw := BackwardFilterDirect64(p, x, dy)
		// Independent re-derivation with explicit padded input.
		for oc := 0; oc < p.OC; oc++ {
			for fh := 0; fh < p.FH; fh++ {
				for fw := 0; fw < p.FW; fw++ {
					for ic := 0; ic < p.IC; ic++ {
						var s float64
						for n := 0; n < p.N; n++ {
							for oh := 0; oh < p.OH(); oh++ {
								for ow := 0; ow < p.OW(); ow++ {
									s += xAt(x, n, oh+fh-p.PH, ow+fw-p.PW, ic) * dy.At(n, oh, ow, oc)
								}
							}
						}
						if math.Abs(dw.At(oc, fh, fw, ic)-s) > 1e-12 {
							t.Fatalf("trial %d %v: dw[%d,%d,%d,%d] = %v, want %v",
								trial, p, oc, fh, fw, ic, dw.At(oc, fh, fw, ic), s)
						}
					}
				}
			}
		}
	}
}

func TestBackwardFilter32MatchesFloat64(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 8; trial++ {
		p := randParams(rng)
		x64 := tensor.NewFloat64(p.XShape())
		dy64 := tensor.NewFloat64(p.DYShape())
		fillRand64(x64, rng)
		fillRand64(dy64, rng)
		want := BackwardFilterDirect64(p, x64, dy64)
		got := BackwardFilterDirect32(p, x64.ToFloat32(), dy64.ToFloat32())
		if m := tensor.MARE(got, want); m > 1e-5 {
			t.Errorf("trial %d %v: MARE %v", trial, p, m)
		}
	}
}

// Gradient check: BFC must be the true gradient of the forward pass.
// Perturbing W[idx] by ε changes Σ(Y⊙∇Y) by ε·∇W[idx].
func TestBFCIsGradientOfForward(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	p := Params{N: 2, IH: 6, IW: 5, FH: 3, FW: 3, IC: 2, OC: 3, PH: 1, PW: 1}
	x := tensor.NewFloat64(p.XShape())
	w := tensor.NewFloat64(p.DWShape())
	dy := tensor.NewFloat64(p.DYShape())
	fillRand64(x, rng)
	fillRand64(w, rng)
	fillRand64(dy, rng)

	dot := func(a, b *tensor.Float64) float64 {
		var s float64
		for i := range a.Data {
			s += a.Data[i] * b.Data[i]
		}
		return s
	}
	dw := BackwardFilterDirect64(p, x, dy)
	const eps = 1e-6
	for _, idx := range []int{0, 7, len(w.Data) - 1} {
		wPlus := tensor.NewFloat64(p.DWShape())
		copy(wPlus.Data, w.Data)
		wPlus.Data[idx] += eps
		lPlus := dot(Forward64(p, x, wPlus), dy)
		wMinus := tensor.NewFloat64(p.DWShape())
		copy(wMinus.Data, w.Data)
		wMinus.Data[idx] -= eps
		lMinus := dot(Forward64(p, x, wMinus), dy)
		numeric := (lPlus - lMinus) / (2 * eps)
		if math.Abs(numeric-dw.Data[idx]) > 1e-5 {
			t.Errorf("grad check idx %d: numeric %v vs BFC %v", idx, numeric, dw.Data[idx])
		}
	}
}

func TestForward32MatchesFloat64(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	p := Params{N: 2, IH: 7, IW: 7, FH: 3, FW: 3, IC: 3, OC: 4, PH: 1, PW: 1}
	x := tensor.NewFloat64(p.XShape())
	w := tensor.NewFloat64(p.DWShape())
	fillRand64(x, rng)
	fillRand64(w, rng)
	want := Forward64(p, x, w)
	got := Forward32(p, x.ToFloat32(), w.ToFloat32())
	if m := tensor.MARE(got, want); m > 1e-5 {
		t.Errorf("MARE %v", m)
	}
}

// BDC gradient check: ∇X must be the gradient of Σ(Y⊙∇Y) w.r.t. X.
func TestBDCIsGradientOfForward(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	p := Params{N: 1, IH: 5, IW: 5, FH: 3, FW: 3, IC: 2, OC: 2, PH: 1, PW: 1}
	x := tensor.NewFloat64(p.XShape())
	w := tensor.NewFloat64(p.DWShape())
	dy := tensor.NewFloat64(p.DYShape())
	fillRand64(x, rng)
	fillRand64(w, rng)
	fillRand64(dy, rng)
	dx := BackwardData32(p, dy.ToFloat32(), w.ToFloat32())

	dot := func(a, b *tensor.Float64) float64 {
		var s float64
		for i := range a.Data {
			s += a.Data[i] * b.Data[i]
		}
		return s
	}
	const eps = 1e-5
	for _, idx := range []int{0, 13, len(x.Data) - 1} {
		xp := tensor.NewFloat64(p.XShape())
		copy(xp.Data, x.Data)
		xp.Data[idx] += eps
		lp := dot(Forward64(p, xp, w), dy)
		xm := tensor.NewFloat64(p.XShape())
		copy(xm.Data, x.Data)
		xm.Data[idx] -= eps
		lm := dot(Forward64(p, xm, w), dy)
		numeric := (lp - lm) / (2 * eps)
		if math.Abs(numeric-float64(dx.Data[idx])) > 1e-3 {
			t.Errorf("BDC grad check idx %d: numeric %v vs BDC %v", idx, numeric, dx.Data[idx])
		}
	}
}

func TestShapeMismatchPanics(t *testing.T) {
	p := Params{N: 1, IH: 4, IW: 4, FH: 3, FW: 3, IC: 1, OC: 1}
	wrong := tensor.NewFloat64(tensor.Shape{N: 1, H: 5, W: 4, C: 1})
	dy := tensor.NewFloat64(p.DYShape())
	defer func() {
		if recover() == nil {
			t.Error("expected panic on X shape mismatch")
		}
	}()
	BackwardFilterDirect64(p, wrong, dy)
}

func TestParallelForCoversAll(t *testing.T) {
	n := 100
	hits := make([]int32, n)
	parallelFor(n, func(i int) { hits[i]++ })
	for i, h := range hits {
		if h != 1 {
			t.Fatalf("index %d visited %d times", i, h)
		}
	}
	parallelFor(0, func(int) { t.Error("should not be called") })
}

func BenchmarkBackwardFilterDirect32(b *testing.B) {
	p := Params{N: 4, IH: 32, IW: 32, FH: 3, FW: 3, IC: 16, OC: 16, PH: 1, PW: 1}
	rng := rand.New(rand.NewSource(1))
	x := tensor.NewFloat32(p.XShape())
	dy := tensor.NewFloat32(p.DYShape())
	x.FillUniform(rng, 0, 1)
	dy.FillUniform(rng, 0, 1)
	b.SetBytes(p.DataBytes32())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = BackwardFilterDirect32(p, x, dy)
	}
}
