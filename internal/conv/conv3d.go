package conv

import (
	"fmt"

	"winrs/internal/tensor"
)

// Params3D describes a volumetric (3-D) convolutional layer with stride 1
// and symmetric zero padding — the substrate for the paper's N-D BFC
// extension (§3 Level 2). Tensors are NDHWC.
type Params3D struct {
	N          int // batch
	ID, IH, IW int // input depth/height/width
	FD, FH, FW int // filter extents
	IC, OC     int // channels
	PD, PH, PW int // padding
}

// OD returns the output depth.
func (p Params3D) OD() int { return p.ID + 2*p.PD - p.FD + 1 }

// OH returns the output height.
func (p Params3D) OH() int { return p.IH + 2*p.PH - p.FH + 1 }

// OW returns the output width.
func (p Params3D) OW() int { return p.IW + 2*p.PW - p.FW + 1 }

// Validate checks the geometry.
func (p Params3D) Validate() error {
	switch {
	case p.N < 1 || p.IC < 1 || p.OC < 1:
		return fmt.Errorf("conv: non-positive batch or channels in %+v", p)
	case p.ID < 1 || p.IH < 1 || p.IW < 1 || p.FD < 1 || p.FH < 1 || p.FW < 1:
		return fmt.Errorf("conv: non-positive extents in %+v", p)
	case p.PD < 0 || p.PH < 0 || p.PW < 0:
		return fmt.Errorf("conv: negative padding in %+v", p)
	case p.OD() < 1 || p.OH() < 1 || p.OW() < 1:
		return fmt.Errorf("conv: empty output in %+v", p)
	}
	return nil
}

// XShape returns N×I_D×I_H×I_W×I_C.
func (p Params3D) XShape() tensor.Shape5 {
	return tensor.Shape5{N: p.N, D: p.ID, H: p.IH, W: p.IW, C: p.IC}
}

// DYShape returns N×O_D×O_H×O_W×O_C.
func (p Params3D) DYShape() tensor.Shape5 {
	return tensor.Shape5{N: p.N, D: p.OD(), H: p.OH(), W: p.OW(), C: p.OC}
}

// DWShape returns O_C×F_D×F_H×F_W×I_C (N slot holds O_C).
func (p Params3D) DWShape() tensor.Shape5 {
	return tensor.Shape5{N: p.OC, D: p.FD, H: p.FH, W: p.FW, C: p.IC}
}

// FLOPs returns the direct 3-D BFC complexity.
func (p Params3D) FLOPs() int64 {
	return 2 * int64(p.OC) * int64(p.FD) * int64(p.FH) * int64(p.FW) *
		int64(p.IC) * int64(p.OD()) * int64(p.OH()) * int64(p.OW()) * int64(p.N)
}

// BackwardFilter3DDirect64 is the float64 direct 3-D BFC ground truth:
//
//	∇W[oc,fd,fh,fw,ic] =
//	  Σ_{n,od,oh,ow} X[n, od+fd−pD, oh+fh−pH, ow+fw−pW, ic]·∇Y[n,od,oh,ow,oc]
func BackwardFilter3DDirect64(p Params3D, x, dy *tensor.Float645) *tensor.Float645 {
	if err := p.Validate(); err != nil {
		panic(err)
	}
	if x.Shape != p.XShape() || dy.Shape != p.DYShape() {
		panic("conv: BackwardFilter3DDirect64 shape mismatch")
	}
	dw := tensor.NewFloat645(p.DWShape())
	od, oh, ow := p.OD(), p.OH(), p.OW()
	for oc := 0; oc < p.OC; oc++ {
		for fd := 0; fd < p.FD; fd++ {
			for fh := 0; fh < p.FH; fh++ {
				for fw := 0; fw < p.FW; fw++ {
					for ic := 0; ic < p.IC; ic++ {
						var s float64
						for n := 0; n < p.N; n++ {
							for zd := 0; zd < od; zd++ {
								id := zd + fd - p.PD
								if id < 0 || id >= p.ID {
									continue
								}
								for y := 0; y < oh; y++ {
									ih := y + fh - p.PH
									if ih < 0 || ih >= p.IH {
										continue
									}
									for xw := 0; xw < ow; xw++ {
										iw := xw + fw - p.PW
										if iw < 0 || iw >= p.IW {
											continue
										}
										s += x.At(n, id, ih, iw, ic) *
											dy.At(n, zd, y, xw, oc)
									}
								}
							}
						}
						dw.Set(oc, fd, fh, fw, ic, s)
					}
				}
			}
		}
	}
	return dw
}
