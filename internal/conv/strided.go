package conv

import (
	"fmt"

	"winrs/internal/tensor"
)

// StridedParams describes a strided convolutional layer. Strided
// convolutions (stride 2 downsampling layers in ResNet/VGG-style nets) are
// outside the paper's evaluation but inside its related work ([16], [20]:
// stride-2 Winograd via decomposition); the core package extends WinRS to
// them by phase decimation.
type StridedParams struct {
	N      int
	IH, IW int
	FH, FW int
	IC, OC int
	PH, PW int
	SH, SW int // strides; 0 is treated as 1

	// Groups partitions channels exactly as Params.Groups: 0 means 1.
	Groups int `json:"groups,omitempty"`
}

// G returns the effective group count (≥1).
func (p StridedParams) G() int {
	if p.Groups < 1 {
		return 1
	}
	return p.Groups
}

// ICG returns the per-group input-channel count I_C/G.
func (p StridedParams) ICG() int { return p.IC / p.G() }

// OCG returns the per-group output-channel count O_C/G.
func (p StridedParams) OCG() int { return p.OC / p.G() }

// StrideH returns the effective height stride (≥1).
func (p StridedParams) StrideH() int {
	if p.SH < 1 {
		return 1
	}
	return p.SH
}

// StrideW returns the effective width stride (≥1).
func (p StridedParams) StrideW() int {
	if p.SW < 1 {
		return 1
	}
	return p.SW
}

// OH returns the output height ⌊(I_H + 2p_H − F_H)/s_H⌋ + 1.
func (p StridedParams) OH() int {
	return (p.IH+2*p.PH-p.FH)/p.StrideH() + 1
}

// OW returns the output width.
func (p StridedParams) OW() int {
	return (p.IW+2*p.PW-p.FW)/p.StrideW() + 1
}

// Validate checks the geometry.
func (p StridedParams) Validate() error {
	switch {
	case p.N < 1 || p.IC < 1 || p.OC < 1:
		return fmt.Errorf("conv: non-positive batch or channels in %+v", p)
	case p.IH < 1 || p.IW < 1 || p.FH < 1 || p.FW < 1:
		return fmt.Errorf("conv: non-positive extents in %+v", p)
	case p.PH < 0 || p.PW < 0 || p.SH < 0 || p.SW < 0:
		return fmt.Errorf("conv: negative padding or stride in %+v", p)
	case p.IH+2*p.PH < p.FH || p.IW+2*p.PW < p.FW:
		return fmt.Errorf("conv: filter larger than padded input in %+v", p)
	case p.Groups < 0:
		return fmt.Errorf("conv: negative group count in %+v", p)
	case p.IC%p.G() != 0 || p.OC%p.G() != 0:
		return fmt.Errorf("conv: groups %d must divide IC %d and OC %d",
			p.G(), p.IC, p.OC)
	}
	return nil
}

// XShape returns N×I_H×I_W×I_C.
func (p StridedParams) XShape() tensor.Shape {
	return tensor.Shape{N: p.N, H: p.IH, W: p.IW, C: p.IC}
}

// DYShape returns N×O_H×O_W×O_C.
func (p StridedParams) DYShape() tensor.Shape {
	return tensor.Shape{N: p.N, H: p.OH(), W: p.OW(), C: p.OC}
}

// DWShape returns O_C×F_H×F_W×(I_C/G).
func (p StridedParams) DWShape() tensor.Shape {
	return tensor.Shape{N: p.OC, H: p.FH, W: p.FW, C: p.ICG()}
}

// Unit returns the equivalent stride-1 Params when both strides are 1.
func (p StridedParams) Unit() (Params, bool) {
	if p.StrideH() != 1 || p.StrideW() != 1 {
		return Params{}, false
	}
	return Params{N: p.N, IH: p.IH, IW: p.IW, FH: p.FH, FW: p.FW,
		IC: p.IC, OC: p.OC, PH: p.PH, PW: p.PW, Groups: p.Groups}, true
}

// BackwardFilterStridedDirect64 is the float64 strided BFC ground truth:
//
//	∇W[oc,fh,fw,ic] =
//	  Σ_{n,oh,ow} X[n, s_H·oh+fh−pH, s_W·ow+fw−pW, ic]·∇Y[n,oh,ow,oc]
func BackwardFilterStridedDirect64(p StridedParams, x, dy *tensor.Float64) *tensor.Float64 {
	if err := p.Validate(); err != nil {
		panic(err)
	}
	if x.Shape != p.XShape() || dy.Shape != p.DYShape() {
		panic("conv: BackwardFilterStridedDirect64 shape mismatch")
	}
	sh, sw := p.StrideH(), p.StrideW()
	dw := tensor.NewFloat64(p.DWShape())
	oh, ow := p.OH(), p.OW()
	icg, ocg := p.ICG(), p.OCG()
	for oc := 0; oc < p.OC; oc++ {
		icBase := oc / ocg * icg
		for fh := 0; fh < p.FH; fh++ {
			for fw := 0; fw < p.FW; fw++ {
				for cg := 0; cg < icg; cg++ {
					var s float64
					for n := 0; n < p.N; n++ {
						for y := 0; y < oh; y++ {
							ih := sh*y + fh - p.PH
							if ih < 0 || ih >= p.IH {
								continue
							}
							for xw := 0; xw < ow; xw++ {
								iw := sw*xw + fw - p.PW
								if iw < 0 || iw >= p.IW {
									continue
								}
								s += x.At(n, ih, iw, icBase+cg) * dy.At(n, y, xw, oc)
							}
						}
					}
					dw.Set(oc, fh, fw, cg, s)
				}
			}
		}
	}
	return dw
}

// ForwardStridedDirect64 is the float64 strided forward reference:
//
//	Y[n,oh,ow,oc] = Σ_{fh,fw,ic} X[n, s_H·oh+fh−pH, s_W·ow+fw−pW, ic]·W[oc,fh,fw,ic]
func ForwardStridedDirect64(p StridedParams, x, w *tensor.Float64) *tensor.Float64 {
	if err := p.Validate(); err != nil {
		panic(err)
	}
	if x.Shape != p.XShape() || w.Shape != p.DWShape() {
		panic("conv: ForwardStridedDirect64 shape mismatch")
	}
	sh, sw := p.StrideH(), p.StrideW()
	y := tensor.NewFloat64(p.DYShape())
	oh, ow := p.OH(), p.OW()
	icg, ocg := p.ICG(), p.OCG()
	for n := 0; n < p.N; n++ {
		for yy := 0; yy < oh; yy++ {
			for xx := 0; xx < ow; xx++ {
				for oc := 0; oc < p.OC; oc++ {
					icBase := oc / ocg * icg
					var s float64
					for fh := 0; fh < p.FH; fh++ {
						ih := sh*yy + fh - p.PH
						if ih < 0 || ih >= p.IH {
							continue
						}
						for fw := 0; fw < p.FW; fw++ {
							iw := sw*xx + fw - p.PW
							if iw < 0 || iw >= p.IW {
								continue
							}
							for cg := 0; cg < icg; cg++ {
								s += x.At(n, ih, iw, icBase+cg) * w.At(oc, fh, fw, cg)
							}
						}
					}
					y.Set(n, yy, xx, oc, s)
				}
			}
		}
	}
	return y
}
