package conv

import (
	"math"
	"math/rand"
	"testing"

	"winrs/internal/tensor"
)

func TestParams3DGeometry(t *testing.T) {
	p := Params3D{N: 2, ID: 8, IH: 16, IW: 16, FD: 3, FH: 3, FW: 3,
		IC: 4, OC: 8, PD: 1, PH: 1, PW: 1}
	if p.OD() != 8 || p.OH() != 16 || p.OW() != 16 {
		t.Errorf("same-padded output %dx%dx%d", p.OD(), p.OH(), p.OW())
	}
	if err := p.Validate(); err != nil {
		t.Error(err)
	}
	if p.XShape() != (tensor.Shape5{N: 2, D: 8, H: 16, W: 16, C: 4}) {
		t.Errorf("XShape = %v", p.XShape())
	}
	if p.DWShape() != (tensor.Shape5{N: 8, D: 3, H: 3, W: 3, C: 4}) {
		t.Errorf("DWShape = %v", p.DWShape())
	}
	want := int64(2) * 8 * 27 * 4 * 8 * 16 * 16 * 2
	if p.FLOPs() != want {
		t.Errorf("FLOPs = %d, want %d", p.FLOPs(), want)
	}
}

func TestParams3DValidateRejections(t *testing.T) {
	bad := []Params3D{
		{},
		{N: 1, ID: 2, IH: 4, IW: 4, FD: 5, FH: 1, FW: 1, IC: 1, OC: 1}, // empty OD
		{N: 1, ID: 4, IH: 4, IW: 4, FD: 1, FH: 1, FW: 1, IC: 1, OC: 1, PD: -1},
	}
	for i, p := range bad {
		if p.Validate() == nil {
			t.Errorf("case %d should be invalid: %+v", i, p)
		}
	}
}

// A 3-D BFC with F_D = 1 and I_D = 1 must reduce exactly to the 2-D case.
func TestBackwardFilter3DReducesTo2D(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	p2 := Params{N: 2, IH: 7, IW: 9, FH: 3, FW: 3, IC: 2, OC: 3, PH: 1, PW: 1}
	p3 := Params3D{N: 2, ID: 1, IH: 7, IW: 9, FD: 1, FH: 3, FW: 3,
		IC: 2, OC: 3, PH: 1, PW: 1}

	x2 := tensor.NewFloat64(p2.XShape())
	dy2 := tensor.NewFloat64(p2.DYShape())
	for i := range x2.Data {
		x2.Data[i] = rng.Float64()*2 - 1
	}
	for i := range dy2.Data {
		dy2.Data[i] = rng.Float64()*2 - 1
	}
	x3 := tensor.NewFloat645(p3.XShape())
	copy(x3.Data, x2.Data) // same NDHWC layout with D=1
	dy3 := tensor.NewFloat645(p3.DYShape())
	copy(dy3.Data, dy2.Data)

	dw2 := BackwardFilterDirect64(p2, x2, dy2)
	dw3 := BackwardFilter3DDirect64(p3, x3, dy3)
	for i := range dw2.Data {
		if math.Abs(dw2.Data[i]-dw3.Data[i]) > 1e-12 {
			t.Fatalf("2D/3D mismatch at %d: %v vs %v", i, dw2.Data[i], dw3.Data[i])
		}
	}
}

// Hand-checkable tiny case: 1×1×1 filter over a 1-voxel input.
func TestBackwardFilter3DTinyExact(t *testing.T) {
	p := Params3D{N: 1, ID: 2, IH: 2, IW: 2, FD: 2, FH: 2, FW: 2, IC: 1, OC: 1}
	x := tensor.NewFloat645(p.XShape())
	dy := tensor.NewFloat645(p.DYShape()) // 1×1×1 output
	for i := range x.Data {
		x.Data[i] = float64(i + 1)
	}
	dy.Data[0] = 2
	dw := BackwardFilter3DDirect64(p, x, dy)
	// ∇W[fd,fh,fw] = X[fd,fh,fw]·2.
	for i := range dw.Data {
		if dw.Data[i] != x.Data[i]*2 {
			t.Fatalf("dw[%d] = %v, want %v", i, dw.Data[i], x.Data[i]*2)
		}
	}
}

func TestBackwardFilter3DShapePanics(t *testing.T) {
	p := Params3D{N: 1, ID: 2, IH: 2, IW: 2, FD: 1, FH: 1, FW: 1, IC: 1, OC: 1}
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	BackwardFilter3DDirect64(p, tensor.NewFloat645(tensor.Shape5{N: 1, D: 1, H: 2, W: 2, C: 1}),
		tensor.NewFloat645(p.DYShape()))
}
