package train

import (
	"math"
	"testing"

	"winrs/internal/conv"
	"winrs/internal/tensor"
)

func avgTail(losses []float64, n int) float64 {
	if len(losses) < n {
		n = len(losses)
	}
	var s float64
	for _, v := range losses[len(losses)-n:] {
		s += v
	}
	return s / float64(n)
}

func TestDatasetShapeAndLabels(t *testing.T) {
	ds := NewDataset(3, 8, 8, 2, 1)
	x, labels := ds.Batch(16)
	if x.Shape != (tensor.Shape{N: 16, H: 8, W: 8, C: 2}) {
		t.Fatalf("batch shape %v", x.Shape)
	}
	seen := map[int]bool{}
	for _, l := range labels {
		if l < 0 || l >= 3 {
			t.Fatalf("label %d out of range", l)
		}
		seen[l] = true
	}
	if len(seen) < 2 {
		t.Error("16 samples should span multiple classes")
	}
}

// The Fig 13 core claim, FP32: training with WinRS gradients converges like
// training with exact gradients.
func TestWinRSTrainingMatchesExact(t *testing.T) {
	const steps, batch = 400, 8
	ds1 := NewDataset(3, 8, 8, 2, 7)
	exact := NewNet(8, 8, 2, 4, 6, 3, DirectBFC, 99)
	exact.LR = 0.5
	lossExact, err := Run(exact, ds1, steps, batch)
	if err != nil {
		t.Fatal(err)
	}
	ds2 := NewDataset(3, 8, 8, 2, 7) // identical stream
	wrs := NewNet(8, 8, 2, 4, 6, 3, WinRSBFC, 99)
	wrs.LR = 0.5
	lossWinRS, err := Run(wrs, ds2, steps, batch)
	if err != nil {
		t.Fatal(err)
	}
	e0, e1 := avgTail(lossExact, 20), avgTail(lossWinRS, 20)
	if e0 > 0.8*lossExact[0] {
		t.Fatalf("exact training failed to reduce loss: %v -> %v", lossExact[0], e0)
	}
	if math.Abs(e1-e0) > 0.15*math.Max(e0, 0.05)+0.05 {
		t.Errorf("WinRS final loss %v diverges from exact %v", e1, e0)
	}
	// Accuracy parity on a held-out batch.
	x, labels := ds1.Batch(64)
	accE, accW := exact.Accuracy(x, labels), wrs.Accuracy(x, labels)
	if math.Abs(accE-accW) > 0.2 {
		t.Errorf("accuracy gap too large: exact %v vs WinRS %v", accE, accW)
	}
	if accE < 0.6 {
		t.Errorf("exact accuracy %v too low for a separable task", accE)
	}
}

// FP16 with loss scaling must also converge (the Fig 13 FP16 curve).
func TestFP16LossScalingConverges(t *testing.T) {
	const steps, batch = 400, 8
	ds := NewDataset(3, 8, 8, 2, 11)
	net := NewNet(8, 8, 2, 4, 6, 3, WinRSHalfBFC(128), 99)
	net.LR = 0.5
	losses, err := Run(net, ds, steps, batch)
	if err != nil {
		t.Fatal(err)
	}
	if tail := avgTail(losses, 20); tail > 0.6*losses[0] {
		t.Errorf("FP16 training failed to converge: %v -> %v", losses[0], tail)
	}
}

// Without loss scaling, tiny FP16 gradients underflow; with scaling they
// survive — the mechanism loss scaling exists for.
func TestLossScalingPreservesSmallGradients(t *testing.T) {
	p := conv.Params{N: 1, IH: 8, IW: 8, FH: 3, FW: 3, IC: 2, OC: 2, PH: 1, PW: 1}
	x := tensor.NewFloat32(p.XShape())
	dy := tensor.NewFloat32(p.DYShape())
	for i := range x.Data {
		x.Data[i] = 0.5
	}
	for i := range dy.Data {
		dy.Data[i] = 1e-8 // rounds to zero in binary16 (subnormal floor ~6e-8)
	}
	unscaled, err := WinRSHalfBFC(1)(p, x, dy)
	if err != nil {
		t.Fatal(err)
	}
	scaled, err := WinRSHalfBFC(1024)(p, x, dy)
	if err != nil {
		t.Fatal(err)
	}
	var sumU, sumS float64
	for i := range unscaled.Data {
		sumU += math.Abs(float64(unscaled.Data[i]))
		sumS += math.Abs(float64(scaled.Data[i]))
	}
	if sumU != 0 {
		t.Errorf("unscaled FP16 gradients should underflow to zero, got %v", sumU)
	}
	if sumS == 0 {
		t.Error("loss-scaled FP16 gradients must survive")
	}
}

func TestRunRejectsMismatchedDataset(t *testing.T) {
	ds := NewDataset(2, 8, 8, 2, 1)
	net := NewNet(10, 10, 2, 2, 2, 2, DirectBFC, 1)
	if _, err := Run(net, ds, 1, 2); err == nil {
		t.Error("expected geometry mismatch error")
	}
}

func TestSoftmaxXentGradient(t *testing.T) {
	logits := []float32{1, 2, 3, 0.5, 0.5, 0.5}
	labels := []int{2, 0}
	loss, grad := softmaxXent(logits, labels, 3)
	if loss <= 0 {
		t.Error("loss must be positive")
	}
	// Gradient rows sum to zero (softmax minus one-hot).
	for b := 0; b < 2; b++ {
		var s float64
		for k := 0; k < 3; k++ {
			s += float64(grad[b*3+k])
		}
		if math.Abs(s) > 1e-6 {
			t.Errorf("row %d gradient sum %v, want 0", b, s)
		}
	}
	// Finite-difference check on logit (0,0).
	const eps = 1e-3
	lp := make([]float32, len(logits))
	copy(lp, logits)
	lp[0] += eps
	lossP, _ := softmaxXent(lp, labels, 3)
	lm := make([]float32, len(logits))
	copy(lm, logits)
	lm[0] -= eps
	lossM, _ := softmaxXent(lm, labels, 3)
	numeric := (lossP - lossM) / (2 * eps) * 2 // mean over batch of 2
	if math.Abs(numeric-float64(grad[0])) > 1e-3 {
		t.Errorf("grad[0] = %v, numeric %v", grad[0], numeric)
	}
}

func TestGlobalAvgPool(t *testing.T) {
	x := tensor.NewFloat32(tensor.Shape{N: 1, H: 2, W: 2, C: 2})
	copy(x.Data, []float32{1, 10, 2, 20, 3, 30, 4, 40})
	out := globalAvgPool(x)
	if out[0] != 2.5 || out[1] != 25 {
		t.Errorf("pool = %v, want [2.5 25]", out)
	}
}

// The all-WinRS training loop (FC, BDC and BFC all on WinRS kernels) must
// converge like the all-direct loop.
func TestAllWinRSTrainingConverges(t *testing.T) {
	const steps, batch = 300, 8
	dsA := NewDataset(3, 8, 8, 2, 17)
	direct := NewNet(8, 8, 2, 4, 6, 3, DirectBFC, 99)
	direct.LR = 0.5
	lossDirect, err := Run(direct, dsA, steps, batch)
	if err != nil {
		t.Fatal(err)
	}
	dsB := NewDataset(3, 8, 8, 2, 17)
	all := NewNet(8, 8, 2, 4, 6, 3, DirectBFC, 99)
	all.UseWinRSEverywhere()
	all.LR = 0.5
	lossAll, err := Run(all, dsB, steps, batch)
	if err != nil {
		t.Fatal(err)
	}
	d0, d1 := avgTail(lossDirect, 20), avgTail(lossAll, 20)
	if d1 > 0.6*lossAll[0] {
		t.Fatalf("all-WinRS training failed to converge: %v -> %v", lossAll[0], d1)
	}
	if diff := math.Abs(d1 - d0); diff > 0.1*math.Max(d0, 0.05)+0.05 {
		t.Errorf("all-WinRS final loss %v diverges from direct %v", d1, d0)
	}
}
