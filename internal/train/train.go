// Package train is a minimal CNN training substrate for the paper's
// Figure 13 experiment: it shows that networks trained with WinRS-computed
// filter gradients converge like networks trained with exact (direct)
// gradients, in FP32 and in FP16 with loss scaling.
//
// The paper trains VGG/ResNet on ImageNet-1K; the convergence-equivalence
// claim is architecture- and dataset-independent, so this substrate uses a
// small two-conv CNN on a synthetic separable classification task — enough
// to expose any systematic gradient error while staying laptop-scale.
package train

import (
	"fmt"
	"math"
	"math/rand"

	"winrs/internal/conv"
	"winrs/internal/core"
	"winrs/internal/tensor"
)

// BFC computes filter gradients for one layer; the trainer is parameterized
// over it so exact, WinRS-FP32 and WinRS-FP16 gradients are interchangeable.
type BFC func(p conv.Params, x, dy *tensor.Float32) (*tensor.Float32, error)

// FC computes a forward convolution; BDC a data gradient. Both are
// pluggable like BFC so the trainer can run every convolution pass on
// WinRS kernels (the paper's "supports FC and BDC" claim, end to end).
type FC func(p conv.Params, x, w *tensor.Float32) (*tensor.Float32, error)

// BDC computes the input gradient from the output gradient and filter.
type BDC func(p conv.Params, dy, w *tensor.Float32) (*tensor.Float32, error)

// DirectFC is the exact float32 forward reference.
func DirectFC(p conv.Params, x, w *tensor.Float32) (*tensor.Float32, error) {
	return conv.Forward32(p, x, w), nil
}

// DirectBDC is the exact float32 data-gradient reference.
func DirectBDC(p conv.Params, dy, w *tensor.Float32) (*tensor.Float32, error) {
	return conv.BackwardData32(p, dy, w), nil
}

// WinRSFC runs the forward pass on fused 1-D Winograd kernels.
func WinRSFC(p conv.Params, x, w *tensor.Float32) (*tensor.Float32, error) {
	return core.Forward(p, x, w)
}

// WinRSBDC runs the data gradient on the flipped-filter forward kernel.
func WinRSBDC(p conv.Params, dy, w *tensor.Float32) (*tensor.Float32, error) {
	return core.BackwardData(p, dy, w)
}

// DirectBFC is the exact float32 reference gradient.
func DirectBFC(p conv.Params, x, dy *tensor.Float32) (*tensor.Float32, error) {
	return conv.BackwardFilterDirect32(p, x, dy), nil
}

// WinRSBFC computes gradients with the FP32 WinRS pipeline.
func WinRSBFC(p conv.Params, x, dy *tensor.Float32) (*tensor.Float32, error) {
	return core.BackwardFilter(p, x, dy)
}

// WinRSHalfBFC returns a BFC running the FP16 Tensor-Core emulation with
// the given loss scale: ∇Y is scaled up before the binary16 conversion
// (keeping small gradients above the FP16 underflow threshold) and the
// result is scaled back down — the paper's Loss Scaling setup for Fig 13.
//
// The returned closure keeps per-layer-shape operand buffers and converts
// into them with the bulk binary16 kernels, so steady-state training steps
// stop paying a Clone plus two tensor allocations per layer. Like a *Net,
// the closure is for a single training loop — not concurrent use.
func WinRSHalfBFC(lossScale float32) BFC {
	type halfOperands struct {
		x16, dy16 *tensor.Half
		scaled    *tensor.Float32
	}
	bufs := make(map[conv.Params]*halfOperands)
	return func(p conv.Params, x, dy *tensor.Float32) (*tensor.Float32, error) {
		b := bufs[p]
		if b == nil {
			b = &halfOperands{
				x16:    tensor.NewHalf(p.XShape()),
				dy16:   tensor.NewHalf(p.DYShape()),
				scaled: tensor.NewFloat32(p.DYShape()),
			}
			bufs[p] = b
		}
		copy(b.scaled.Data, dy.Data)
		b.scaled.Scale(lossScale)
		x.ToHalfInto(b.x16)
		b.scaled.ToHalfInto(b.dy16)
		dw, err := core.BackwardFilterHalf(p, b.x16, b.dy16)
		if err != nil {
			return nil, err
		}
		dw.Scale(1 / lossScale)
		return dw, nil
	}
}

// Dataset is a synthetic classification task: each class has a smooth
// random template; samples are the template plus Gaussian-ish noise. The
// task is linearly separable enough that a two-conv network learns it in a
// few hundred steps.
type Dataset struct {
	Classes   int
	H, W, C   int
	templates []*tensor.Float32
	rng       *rand.Rand
}

// NewDataset builds the task with the given geometry and seed.
func NewDataset(classes, h, w, c int, seed int64) *Dataset {
	rng := rand.New(rand.NewSource(seed))
	d := &Dataset{Classes: classes, H: h, W: w, C: c, rng: rng}
	for k := 0; k < classes; k++ {
		t := tensor.NewFloat32(tensor.Shape{N: 1, H: h, W: w, C: c})
		// Smooth template: sum of a few random low-frequency waves.
		for ch := 0; ch < c; ch++ {
			fx := rng.Float64()*2 + 0.5
			fy := rng.Float64()*2 + 0.5
			ph := rng.Float64() * 2 * math.Pi
			for y := 0; y < h; y++ {
				for x := 0; x < w; x++ {
					v := math.Sin(fx*float64(x)/float64(w)*2*math.Pi+ph) *
						math.Cos(fy*float64(y)/float64(h)*2*math.Pi)
					t.Set(0, y, x, ch, float32(0.5*v))
				}
			}
		}
		d.templates = append(d.templates, t)
	}
	return d
}

// Batch samples n labelled examples.
func (d *Dataset) Batch(n int) (*tensor.Float32, []int) {
	x := tensor.NewFloat32(tensor.Shape{N: n, H: d.H, W: d.W, C: d.C})
	labels := make([]int, n)
	for i := 0; i < n; i++ {
		k := d.rng.Intn(d.Classes)
		labels[i] = k
		tpl := d.templates[k]
		for y := 0; y < d.H; y++ {
			for xx := 0; xx < d.W; xx++ {
				for ch := 0; ch < d.C; ch++ {
					noise := float32(d.rng.NormFloat64() * 0.2)
					x.Set(i, y, xx, ch, tpl.At(0, y, xx, ch)+noise)
				}
			}
		}
	}
	return x, labels
}

// Net is a two-conv CNN: conv3x3 → ReLU → conv3x3 → ReLU → global average
// pool → dense → softmax. The second conv layer can be grouped (Groups2),
// exercising the grouped/depthwise gradient paths inside a real training
// loop.
type Net struct {
	H, W, InC  int
	C1, C2     int
	Groups2    int // channel groups of the second conv (0/1 = ungrouped)
	Classes    int
	W1, W2     *tensor.Float32 // conv filters, O_C×3×3×(I_C/G)
	Dense      []float32       // Classes×C2
	DenseBias  []float32
	LR         float32
	BFCForward BFC
	// Forward and DataGrad default to the exact references; set them to
	// WinRSFC/WinRSBDC for an all-WinRS training loop.
	Forward  FC
	DataGrad BDC
}

// UseWinRSEverywhere switches every convolution pass (FC, BDC, BFC) to the
// WinRS kernels.
func (n *Net) UseWinRSEverywhere() {
	n.BFCForward = WinRSBFC
	n.Forward = WinRSFC
	n.DataGrad = WinRSBDC
}

// NewNet initializes a network with He-style scaled random weights.
func NewNet(h, w, inC, c1, c2, classes int, bfc BFC, seed int64) *Net {
	return NewNetGrouped(h, w, inC, c1, c2, 1, classes, bfc, seed)
}

// NewNetGrouped is NewNet with a grouped second conv layer: groups2 must
// divide both c1 and c2 (groups2 == c1 with c2 == c1 is depthwise). The
// second filter then carries c1/groups2 channels per output.
func NewNetGrouped(h, w, inC, c1, c2, groups2, classes int, bfc BFC, seed int64) *Net {
	if groups2 < 1 {
		groups2 = 1
	}
	rng := rand.New(rand.NewSource(seed))
	n := &Net{
		H: h, W: w, InC: inC, C1: c1, C2: c2, Groups2: groups2, Classes: classes,
		W1:         tensor.NewFloat32(tensor.Shape{N: c1, H: 3, W: 3, C: inC}),
		W2:         tensor.NewFloat32(tensor.Shape{N: c2, H: 3, W: 3, C: c1 / groups2}),
		Dense:      make([]float32, classes*c2),
		DenseBias:  make([]float32, classes),
		LR:         0.1,
		BFCForward: bfc,
		Forward:    DirectFC,
		DataGrad:   DirectBDC,
	}
	initScale := func(fanIn int) float32 {
		return float32(math.Sqrt(2 / float64(fanIn)))
	}
	s1 := initScale(9 * inC)
	for i := range n.W1.Data {
		n.W1.Data[i] = float32(rng.NormFloat64()) * s1
	}
	s2 := initScale(9 * c1 / groups2)
	for i := range n.W2.Data {
		n.W2.Data[i] = float32(rng.NormFloat64()) * s2
	}
	sd := initScale(c2)
	for i := range n.Dense {
		n.Dense[i] = float32(rng.NormFloat64()) * sd
	}
	return n
}

func (n *Net) convParams(batch, ic, oc, groups int) conv.Params {
	return conv.Params{N: batch, IH: n.H, IW: n.W, FH: 3, FW: 3,
		IC: ic, OC: oc, PH: 1, PW: 1, Groups: groups}
}

// params12 returns the two layers' geometries for a batch.
func (n *Net) params12(batch int) (p1, p2 conv.Params) {
	g2 := n.Groups2
	if g2 < 1 {
		g2 = 1
	}
	return n.convParams(batch, n.InC, n.C1, 1), n.convParams(batch, n.C1, n.C2, g2)
}

// Step runs one SGD step on a batch and returns the cross-entropy loss. The
// forward and backward-data passes are exact float32; the filter gradients
// come from the pluggable BFC (the quantity under test in Fig 13).
func (n *Net) Step(x *tensor.Float32, labels []int) (float64, error) {
	batch := x.Shape.N
	p1, p2 := n.params12(batch)

	// Forward.
	a1, err := n.Forward(p1, x, n.W1)
	if err != nil {
		return 0, err
	}
	relu(a1)
	a2, err := n.Forward(p2, a1, n.W2)
	if err != nil {
		return 0, err
	}
	relu(a2)
	pooled := globalAvgPool(a2) // [batch][C2]
	logits := make([]float32, batch*n.Classes)
	for b := 0; b < batch; b++ {
		for k := 0; k < n.Classes; k++ {
			s := n.DenseBias[k]
			for c := 0; c < n.C2; c++ {
				s += n.Dense[k*n.C2+c] * pooled[b*n.C2+c]
			}
			logits[b*n.Classes+k] = s
		}
	}
	loss, dLogits := softmaxXent(logits, labels, n.Classes)

	// Backward through dense.
	dPooled := make([]float32, batch*n.C2)
	gDense := make([]float32, len(n.Dense))
	gBias := make([]float32, n.Classes)
	for b := 0; b < batch; b++ {
		for k := 0; k < n.Classes; k++ {
			g := dLogits[b*n.Classes+k]
			gBias[k] += g
			for c := 0; c < n.C2; c++ {
				gDense[k*n.C2+c] += g * pooled[b*n.C2+c]
				dPooled[b*n.C2+c] += g * n.Dense[k*n.C2+c]
			}
		}
	}
	// Backward through global average pool.
	da2 := tensor.NewFloat32(a2.Shape)
	inv := 1 / float32(n.H*n.W)
	for b := 0; b < batch; b++ {
		for y := 0; y < n.H; y++ {
			for xx := 0; xx < n.W; xx++ {
				for c := 0; c < n.C2; c++ {
					da2.Set(b, y, xx, c, dPooled[b*n.C2+c]*inv)
				}
			}
		}
	}
	reluBackward(da2, a2)

	// Layer 2 gradients: BFC under test + exact BDC.
	gW2, err := n.BFCForward(p2, a1, da2)
	if err != nil {
		return 0, err
	}
	da1, err := n.DataGrad(p2, da2, n.W2)
	if err != nil {
		return 0, err
	}
	reluBackward(da1, a1)

	// Layer 1 filter gradient.
	gW1, err := n.BFCForward(p1, x, da1)
	if err != nil {
		return 0, err
	}

	// SGD update (mean over batch).
	scale := n.LR / float32(batch)
	for i := range n.W1.Data {
		n.W1.Data[i] -= scale * gW1.Data[i]
	}
	for i := range n.W2.Data {
		n.W2.Data[i] -= scale * gW2.Data[i]
	}
	for i := range n.Dense {
		n.Dense[i] -= scale * gDense[i]
	}
	for k := range n.DenseBias {
		n.DenseBias[k] -= scale * gBias[k]
	}
	return loss, nil
}

// Accuracy evaluates classification accuracy on a batch.
func (n *Net) Accuracy(x *tensor.Float32, labels []int) float64 {
	batch := x.Shape.N
	p1, p2 := n.params12(batch)
	a1, err := n.Forward(p1, x, n.W1)
	if err != nil {
		return 0
	}
	relu(a1)
	a2, err := n.Forward(p2, a1, n.W2)
	if err != nil {
		return 0
	}
	relu(a2)
	pooled := globalAvgPool(a2)
	correct := 0
	for b := 0; b < batch; b++ {
		bestK, bestV := 0, float32(math.Inf(-1))
		for k := 0; k < n.Classes; k++ {
			s := n.DenseBias[k]
			for c := 0; c < n.C2; c++ {
				s += n.Dense[k*n.C2+c] * pooled[b*n.C2+c]
			}
			if s > bestV {
				bestK, bestV = k, s
			}
		}
		if bestK == labels[b] {
			correct++
		}
	}
	return float64(correct) / float64(batch)
}

// Run trains for steps steps with the given batch size and returns the loss
// curve.
func Run(net *Net, ds *Dataset, steps, batch int) ([]float64, error) {
	if ds.H != net.H || ds.W != net.W || ds.C != net.InC {
		return nil, fmt.Errorf("train: dataset %dx%dx%d does not match net %dx%dx%d",
			ds.H, ds.W, ds.C, net.H, net.W, net.InC)
	}
	losses := make([]float64, 0, steps)
	for s := 0; s < steps; s++ {
		x, labels := ds.Batch(batch)
		loss, err := net.Step(x, labels)
		if err != nil {
			return nil, err
		}
		losses = append(losses, loss)
	}
	return losses, nil
}

func relu(t *tensor.Float32) {
	for i, v := range t.Data {
		if v < 0 {
			t.Data[i] = 0
		}
	}
}

// reluBackward zeroes gradient entries where the activation was clipped.
func reluBackward(grad, act *tensor.Float32) {
	for i := range grad.Data {
		if act.Data[i] <= 0 {
			grad.Data[i] = 0
		}
	}
}

// globalAvgPool reduces N×H×W×C to a flat [N][C] feature matrix.
func globalAvgPool(t *tensor.Float32) []float32 {
	s := t.Shape
	out := make([]float32, s.N*s.C)
	inv := 1 / float32(s.H*s.W)
	for n := 0; n < s.N; n++ {
		for y := 0; y < s.H; y++ {
			for x := 0; x < s.W; x++ {
				base := s.Index(n, y, x, 0)
				for c := 0; c < s.C; c++ {
					out[n*s.C+c] += t.Data[base+c] * inv
				}
			}
		}
	}
	return out
}

// softmaxXent returns the mean cross-entropy loss and the logits gradient
// (softmax − one-hot).
func softmaxXent(logits []float32, labels []int, classes int) (float64, []float32) {
	batch := len(labels)
	grad := make([]float32, len(logits))
	var loss float64
	for b := 0; b < batch; b++ {
		row := logits[b*classes : (b+1)*classes]
		mx := row[0]
		for _, v := range row[1:] {
			if v > mx {
				mx = v
			}
		}
		var sum float64
		for _, v := range row {
			sum += math.Exp(float64(v - mx))
		}
		logSum := math.Log(sum)
		for k, v := range row {
			pk := math.Exp(float64(v-mx)) / sum
			grad[b*classes+k] = float32(pk)
			if k == labels[b] {
				grad[b*classes+k] -= 1
				loss += -(float64(v-mx) - logSum)
			}
		}
	}
	return loss / float64(batch), grad
}
