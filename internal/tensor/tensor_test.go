package tensor

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestShapeBasics(t *testing.T) {
	s := Shape{N: 2, H: 3, W: 4, C: 5}
	if s.Elems() != 120 {
		t.Errorf("Elems = %d, want 120", s.Elems())
	}
	if !s.Valid() {
		t.Error("shape should be valid")
	}
	if (Shape{N: 0, H: 3, W: 4, C: 5}).Valid() {
		t.Error("zero extent should be invalid")
	}
	if s.String() != "2:3:4:5" {
		t.Errorf("String = %q", s.String())
	}
}

// Property: Index is a bijection onto [0, Elems) matching NHWC order.
func TestIndexBijection(t *testing.T) {
	s := Shape{N: 3, H: 4, W: 5, C: 7}
	seen := make(map[int]bool, s.Elems())
	prev := -1
	for n := 0; n < s.N; n++ {
		for h := 0; h < s.H; h++ {
			for w := 0; w < s.W; w++ {
				for c := 0; c < s.C; c++ {
					idx := s.Index(n, h, w, c)
					if idx != prev+1 {
						t.Fatalf("Index(%d,%d,%d,%d) = %d, want %d (row-major NHWC)",
							n, h, w, c, idx, prev+1)
					}
					if seen[idx] {
						t.Fatalf("duplicate index %d", idx)
					}
					seen[idx] = true
					prev = idx
				}
			}
		}
	}
	if len(seen) != s.Elems() {
		t.Fatalf("covered %d indices, want %d", len(seen), s.Elems())
	}
}

func TestFloat32AccessorsAndClone(t *testing.T) {
	s := Shape{N: 2, H: 2, W: 2, C: 3}
	a := NewFloat32(s)
	a.Set(1, 0, 1, 2, 42)
	if a.At(1, 0, 1, 2) != 42 {
		t.Error("Set/At round trip failed")
	}
	b := a.Clone()
	b.Set(1, 0, 1, 2, 7)
	if a.At(1, 0, 1, 2) != 42 {
		t.Error("Clone must be deep")
	}
	a.Fill(3)
	for _, v := range a.Data {
		if v != 3 {
			t.Fatal("Fill failed")
		}
	}
	a.Scale(2)
	if a.Data[0] != 6 {
		t.Error("Scale failed")
	}
	a.Zero()
	if a.Data[0] != 0 {
		t.Error("Zero failed")
	}
}

func TestFillUniformRange(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	a := NewFloat32(Shape{N: 1, H: 8, W: 8, C: 8})
	a.FillUniform(rng, -2, 5)
	var lo, hi float32 = 5, -2
	for _, v := range a.Data {
		if v < -2 || v >= 5 {
			t.Fatalf("value %v out of [-2,5)", v)
		}
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	if hi-lo < 3 {
		t.Errorf("suspiciously narrow spread [%v,%v] for uniform fill", lo, hi)
	}
}

func TestConversions(t *testing.T) {
	s := Shape{N: 1, H: 2, W: 2, C: 2}
	a := NewFloat32(s)
	for i := range a.Data {
		a.Data[i] = float32(i) * 0.25
	}
	d := a.ToFloat64()
	for i := range d.Data {
		if d.Data[i] != float64(a.Data[i]) {
			t.Fatal("ToFloat64 mismatch")
		}
	}
	back := d.ToFloat32()
	if !AllClose(back, a, 0, 0) {
		t.Error("Float64 round trip mismatch")
	}
	h := a.ToHalf()
	hf := h.ToFloat32()
	// 0..1.75 in steps of .25 are exactly representable in binary16.
	if !AllClose(hf, a, 0, 0) {
		t.Error("Half round trip should be exact for quarter-integers")
	}
	h.Set(0, 1, 1, 1, 1.5)
	if h.At(0, 1, 1, 1) != 1.5 {
		t.Error("Half Set/At failed")
	}
	d.Set(0, 0, 0, 1, 9)
	if d.At(0, 0, 0, 1) != 9 {
		t.Error("Float64 Set/At failed")
	}
}

func TestMARE(t *testing.T) {
	s := Shape{N: 1, H: 1, W: 1, C: 4}
	exact := NewFloat64(s)
	approx := NewFloat32(s)
	copy(exact.Data, []float64{1, 2, 4, 0}) // zero entry must be skipped
	copy(approx.Data, []float32{1.01, 1.98, 4, 5})
	want := (0.01 + 0.01 + 0) / 3
	// Tolerance covers the float32 representation error of 1.01 and 1.98.
	if got := MARE(approx, exact); math.Abs(got-want) > 1e-7 {
		t.Errorf("MARE = %v, want %v", got, want)
	}
	allZero := NewFloat64(s)
	if MARE(approx, allZero) != 0 {
		t.Error("MARE against all-zero exact should be 0")
	}
}

func TestMaxAbsDiffAndAllClose(t *testing.T) {
	s := Shape{N: 1, H: 1, W: 2, C: 2}
	a := NewFloat32(s)
	b := NewFloat32(s)
	copy(a.Data, []float32{1, 2, 3, 4})
	copy(b.Data, []float32{1, 2.5, 3, 4})
	if got := MaxAbsDiff(a, b); got != 0.5 {
		t.Errorf("MaxAbsDiff = %v, want 0.5", got)
	}
	if !AllClose(a, b, 0.25, 0) {
		t.Error("AllClose with rtol 0.25 should pass (0.5 <= 0.25*2.5)")
	}
	if AllClose(a, b, 0.01, 0.01) {
		t.Error("AllClose with tight tolerances should fail")
	}
	c := NewFloat32(Shape{N: 1, H: 1, W: 1, C: 4})
	if AllClose(a, c, 1, 1) {
		t.Error("AllClose across shapes must be false")
	}
}

func TestBytes(t *testing.T) {
	s := Shape{N: 2, H: 4, W: 4, C: 8}
	if Bytes32(s) != 1024 {
		t.Errorf("Bytes32 = %d, want 1024", Bytes32(s))
	}
	if Bytes16(s) != 512 {
		t.Errorf("Bytes16 = %d, want 512", Bytes16(s))
	}
}

func TestInvalidShapePanics(t *testing.T) {
	for _, f := range []func(){
		func() { NewFloat32(Shape{}) },
		func() { NewFloat64(Shape{N: 1, H: -1, W: 1, C: 1}) },
		func() { NewHalf(Shape{N: 1, H: 1, W: 0, C: 1}) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic on invalid shape")
				}
			}()
			f()
		}()
	}
}

func TestMAREShapeMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	MARE(NewFloat32(Shape{N: 1, H: 1, W: 1, C: 2}), NewFloat64(Shape{N: 1, H: 1, W: 1, C: 3}))
}

// Property: MARE of a tensor against itself (widened) is 0, and MARE scales
// linearly with a uniform relative perturbation.
func TestMAREProperties(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a := NewFloat32(Shape{N: 1, H: 3, W: 3, C: 4})
		a.FillUniform(rng, 0.5, 2)
		exact := a.ToFloat64()
		if MARE(a, exact) != 0 {
			return false
		}
		perturbed := a.Clone()
		perturbed.Scale(1.01)
		got := MARE(perturbed, exact)
		return math.Abs(got-0.01) < 1e-4
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
