package tensor

import (
	"math"
	"math/rand"
	"testing"
)

func TestShape5Basics(t *testing.T) {
	s := Shape5{N: 2, D: 3, H: 4, W: 5, C: 6}
	if s.Elems() != 720 {
		t.Errorf("Elems = %d", s.Elems())
	}
	if !s.Valid() {
		t.Error("should be valid")
	}
	if (Shape5{N: 1, D: 0, H: 1, W: 1, C: 1}).Valid() {
		t.Error("zero depth should be invalid")
	}
	if s.String() != "2:3:4:5:6" {
		t.Errorf("String = %q", s.String())
	}
}

func TestShape5IndexRowMajor(t *testing.T) {
	s := Shape5{N: 2, D: 2, H: 3, W: 2, C: 2}
	prev := -1
	for n := 0; n < s.N; n++ {
		for d := 0; d < s.D; d++ {
			for h := 0; h < s.H; h++ {
				for w := 0; w < s.W; w++ {
					for c := 0; c < s.C; c++ {
						idx := s.Index(n, d, h, w, c)
						if idx != prev+1 {
							t.Fatalf("Index(%d,%d,%d,%d,%d) = %d, want %d",
								n, d, h, w, c, idx, prev+1)
						}
						prev = idx
					}
				}
			}
		}
	}
}

func TestFloat325RoundTrip(t *testing.T) {
	s := Shape5{N: 1, D: 2, H: 2, W: 2, C: 2}
	a := NewFloat325(s)
	a.Set(0, 1, 0, 1, 1, 42)
	if a.At(0, 1, 0, 1, 1) != 42 {
		t.Error("Set/At failed")
	}
	d := a.ToFloat645()
	if d.At(0, 1, 0, 1, 1) != 42 {
		t.Error("ToFloat645 failed")
	}
	d.Set(0, 0, 0, 0, 0, 7)
	back := d.ToFloat325()
	if back.At(0, 0, 0, 0, 0) != 7 {
		t.Error("ToFloat325 failed")
	}
	rng := rand.New(rand.NewSource(1))
	a.FillUniform(rng, -1, 1)
	for _, v := range a.Data {
		if v < -1 || v >= 1 {
			t.Fatalf("FillUniform out of range: %v", v)
		}
	}
}

func TestMARE5(t *testing.T) {
	s := Shape5{N: 1, D: 1, H: 1, W: 1, C: 4}
	exact := NewFloat645(s)
	approx := NewFloat325(s)
	copy(exact.Data, []float64{1, 2, 4, 0})
	copy(approx.Data, []float32{1.01, 1.98, 4, 5})
	want := (0.01 + 0.01 + 0) / 3
	if got := MARE5(approx, exact); math.Abs(got-want) > 1e-7 {
		t.Errorf("MARE5 = %v, want %v", got, want)
	}
	defer func() {
		if recover() == nil {
			t.Error("expected shape-mismatch panic")
		}
	}()
	MARE5(NewFloat325(Shape5{N: 1, D: 1, H: 1, W: 1, C: 3}), exact)
}

func TestNewFloat5InvalidPanics(t *testing.T) {
	for _, f := range []func(){
		func() { NewFloat325(Shape5{}) },
		func() { NewFloat645(Shape5{N: 1, D: 1, H: -1, W: 1, C: 1}) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			f()
		}()
	}
}
