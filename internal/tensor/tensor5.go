package tensor

import (
	"fmt"
	"math"
	"math/rand"
)

// Shape5 describes an N×D×H×W×C tensor extent (NDHWC layout) for the
// volumetric (3-D convolution) extension of WinRS — the paper's §3
// Level-2 claim that dimension reduction generalizes BFC to N-D.
type Shape5 struct {
	N, D, H, W, C int
}

// Elems returns the total element count.
func (s Shape5) Elems() int { return s.N * s.D * s.H * s.W * s.C }

// Valid reports whether every extent is positive.
func (s Shape5) Valid() bool {
	return s.N > 0 && s.D > 0 && s.H > 0 && s.W > 0 && s.C > 0
}

// Index returns the flat NDHWC offset of (n,d,h,w,c).
func (s Shape5) Index(n, d, h, w, c int) int {
	return (((n*s.D+d)*s.H+h)*s.W+w)*s.C + c
}

// String formats the shape as N:D:H:W:C.
func (s Shape5) String() string {
	return fmt.Sprintf("%d:%d:%d:%d:%d", s.N, s.D, s.H, s.W, s.C)
}

// Float325 is a dense NDHWC float32 tensor.
type Float325 struct {
	Shape Shape5
	Data  []float32
}

// NewFloat325 allocates a zeroed 5-D float32 tensor.
func NewFloat325(shape Shape5) *Float325 {
	if !shape.Valid() {
		panic(fmt.Sprintf("tensor: invalid shape %v", shape))
	}
	return &Float325{Shape: shape, Data: make([]float32, shape.Elems())}
}

// At returns the element at (n,d,h,w,c).
func (t *Float325) At(n, d, h, w, c int) float32 {
	return t.Data[t.Shape.Index(n, d, h, w, c)]
}

// Set stores v at (n,d,h,w,c).
func (t *Float325) Set(n, d, h, w, c int, v float32) {
	t.Data[t.Shape.Index(n, d, h, w, c)] = v
}

// FillUniform fills with U[lo,hi) values.
func (t *Float325) FillUniform(rng *rand.Rand, lo, hi float32) {
	for i := range t.Data {
		t.Data[i] = lo + (hi-lo)*rng.Float32()
	}
}

// ToFloat645 widens into a fresh float64 tensor.
func (t *Float325) ToFloat645() *Float645 {
	d := NewFloat645(t.Shape)
	for i, v := range t.Data {
		d.Data[i] = float64(v)
	}
	return d
}

// Float645 is a dense NDHWC float64 tensor (3-D ground truth).
type Float645 struct {
	Shape Shape5
	Data  []float64
}

// NewFloat645 allocates a zeroed 5-D float64 tensor.
func NewFloat645(shape Shape5) *Float645 {
	if !shape.Valid() {
		panic(fmt.Sprintf("tensor: invalid shape %v", shape))
	}
	return &Float645{Shape: shape, Data: make([]float64, shape.Elems())}
}

// At returns the element at (n,d,h,w,c).
func (t *Float645) At(n, d, h, w, c int) float64 {
	return t.Data[t.Shape.Index(n, d, h, w, c)]
}

// Set stores v at (n,d,h,w,c).
func (t *Float645) Set(n, d, h, w, c int, v float64) {
	t.Data[t.Shape.Index(n, d, h, w, c)] = v
}

// ToFloat325 narrows into a fresh float32 tensor.
func (t *Float645) ToFloat325() *Float325 {
	f := NewFloat325(t.Shape)
	for i, v := range t.Data {
		f.Data[i] = float32(v)
	}
	return f
}

// MARE5 computes mean absolute relative error for 5-D tensors.
func MARE5(approx *Float325, exact *Float645) float64 {
	if approx.Shape != exact.Shape {
		panic("tensor: MARE5 shape mismatch")
	}
	var sum float64
	n := 0
	for i, e := range exact.Data {
		if e == 0 {
			continue
		}
		sum += math.Abs(float64(approx.Data[i])-e) / math.Abs(e)
		n++
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}
