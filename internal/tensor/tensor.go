// Package tensor provides the NHWC 4-D tensors used throughout WinRS.
//
// The paper stores all operands in NHWC layout (batch, height, width,
// channels), which makes the channel axis contiguous — the property WinRS
// kernels exploit for vectorized loads. The package offers float32 tensors
// (the working precision), float64 tensors (the accuracy ground truth), and
// binary16 tensors (the Tensor-Core emulation path), plus the error metrics
// used by the paper's accuracy evaluation (MARE).
package tensor

import (
	"fmt"
	"math"
	"math/rand"

	"winrs/internal/fp16"
)

// Shape describes an N×H×W×C tensor extent.
type Shape struct {
	N, H, W, C int
}

// Elems returns the total number of elements.
func (s Shape) Elems() int { return s.N * s.H * s.W * s.C }

// Valid reports whether every extent is positive.
func (s Shape) Valid() bool { return s.N > 0 && s.H > 0 && s.W > 0 && s.C > 0 }

// String formats the shape in the paper's N:H:W:C style.
func (s Shape) String() string {
	return fmt.Sprintf("%d:%d:%d:%d", s.N, s.H, s.W, s.C)
}

// Index returns the flat NHWC offset of (n,h,w,c). It performs no bounds
// checking; callers in hot loops index Data directly.
func (s Shape) Index(n, h, w, c int) int {
	return ((n*s.H+h)*s.W+w)*s.C + c
}

// Float32 is a dense NHWC float32 tensor.
type Float32 struct {
	Shape Shape
	Data  []float32
}

// NewFloat32 allocates a zeroed tensor of the given shape.
func NewFloat32(shape Shape) *Float32 {
	if !shape.Valid() {
		panic(fmt.Sprintf("tensor: invalid shape %v", shape))
	}
	return &Float32{Shape: shape, Data: make([]float32, shape.Elems())}
}

// At returns the element at (n,h,w,c).
func (t *Float32) At(n, h, w, c int) float32 {
	return t.Data[t.Shape.Index(n, h, w, c)]
}

// Set stores v at (n,h,w,c).
func (t *Float32) Set(n, h, w, c int, v float32) {
	t.Data[t.Shape.Index(n, h, w, c)] = v
}

// Fill sets every element to v.
func (t *Float32) Fill(v float32) {
	for i := range t.Data {
		t.Data[i] = v
	}
}

// Zero clears the tensor.
func (t *Float32) Zero() { t.Fill(0) }

// FillUniform fills the tensor with U[lo,hi) values from rng.
func (t *Float32) FillUniform(rng *rand.Rand, lo, hi float32) {
	for i := range t.Data {
		t.Data[i] = lo + (hi-lo)*rng.Float32()
	}
}

// Scale multiplies every element by s.
func (t *Float32) Scale(s float32) {
	for i := range t.Data {
		t.Data[i] *= s
	}
}

// Clone returns a deep copy.
func (t *Float32) Clone() *Float32 {
	c := NewFloat32(t.Shape)
	copy(c.Data, t.Data)
	return c
}

// ToFloat64 widens into a fresh float64 tensor.
func (t *Float32) ToFloat64() *Float64 {
	d := NewFloat64(t.Shape)
	for i, v := range t.Data {
		d.Data[i] = float64(v)
	}
	return d
}

// ToHalf rounds into a fresh binary16 tensor (round-to-nearest-even).
func (t *Float32) ToHalf() *Half {
	h := NewHalf(t.Shape)
	fp16.EncodeSlice(h.Data, t.Data)
	return h
}

// ToHalfInto rounds into dst, which must have the same shape — the
// allocation-free variant for steady-state loops (training steps, the
// serving ingest path).
func (t *Float32) ToHalfInto(dst *Half) {
	if dst.Shape != t.Shape {
		panic(fmt.Sprintf("tensor: ToHalfInto shape mismatch: %v vs %v", dst.Shape, t.Shape))
	}
	fp16.EncodeSlice(dst.Data, t.Data)
}

// Float64 is a dense NHWC float64 tensor used as accuracy ground truth.
type Float64 struct {
	Shape Shape
	Data  []float64
}

// NewFloat64 allocates a zeroed tensor of the given shape.
func NewFloat64(shape Shape) *Float64 {
	if !shape.Valid() {
		panic(fmt.Sprintf("tensor: invalid shape %v", shape))
	}
	return &Float64{Shape: shape, Data: make([]float64, shape.Elems())}
}

// At returns the element at (n,h,w,c).
func (t *Float64) At(n, h, w, c int) float64 {
	return t.Data[t.Shape.Index(n, h, w, c)]
}

// Set stores v at (n,h,w,c).
func (t *Float64) Set(n, h, w, c int, v float64) {
	t.Data[t.Shape.Index(n, h, w, c)] = v
}

// ToFloat32 narrows into a fresh float32 tensor.
func (t *Float64) ToFloat32() *Float32 {
	f := NewFloat32(t.Shape)
	for i, v := range t.Data {
		f.Data[i] = float32(v)
	}
	return f
}

// Half is a dense NHWC binary16 tensor for the FP16 Tensor-Core path.
type Half struct {
	Shape Shape
	Data  []fp16.Bits
}

// NewHalf allocates a zeroed binary16 tensor of the given shape.
func NewHalf(shape Shape) *Half {
	if !shape.Valid() {
		panic(fmt.Sprintf("tensor: invalid shape %v", shape))
	}
	return &Half{Shape: shape, Data: make([]fp16.Bits, shape.Elems())}
}

// At returns the element at (n,h,w,c) widened to float32.
func (t *Half) At(n, h, w, c int) float32 {
	return fp16.ToFloat32(t.Data[t.Shape.Index(n, h, w, c)])
}

// Set rounds v to binary16 and stores it at (n,h,w,c).
func (t *Half) Set(n, h, w, c int, v float32) {
	t.Data[t.Shape.Index(n, h, w, c)] = fp16.FromFloat32(v)
}

// ToFloat32 widens into a fresh float32 tensor.
func (t *Half) ToFloat32() *Float32 {
	f := NewFloat32(t.Shape)
	fp16.DecodeSlice(f.Data, t.Data)
	return f
}

// ToFloat32Into widens into dst, which must have the same shape — the
// allocation-free variant of ToFloat32.
func (t *Half) ToFloat32Into(dst *Float32) {
	if dst.Shape != t.Shape {
		panic(fmt.Sprintf("tensor: ToFloat32Into shape mismatch: %v vs %v", dst.Shape, t.Shape))
	}
	fp16.DecodeSlice(dst.Data, t.Data)
}

// MARE computes the Mean Absolute Relative Error of approx against the
// float64 ground truth exact, the paper's accuracy metric:
//
//	MARE = mean_i |approx_i - exact_i| / |exact_i|
//
// Elements whose exact value is zero are skipped (relative error is
// undefined there); if every element is zero MARE returns 0.
func MARE(approx *Float32, exact *Float64) float64 {
	if approx.Shape != exact.Shape {
		panic("tensor: MARE shape mismatch")
	}
	var sum float64
	n := 0
	for i, e := range exact.Data {
		if e == 0 {
			continue
		}
		sum += math.Abs(float64(approx.Data[i])-e) / math.Abs(e)
		n++
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

// MaxAbsDiff returns the largest absolute element-wise difference between
// two float32 tensors of identical shape.
func MaxAbsDiff(a, b *Float32) float64 {
	if a.Shape != b.Shape {
		panic("tensor: MaxAbsDiff shape mismatch")
	}
	var m float64
	for i := range a.Data {
		d := math.Abs(float64(a.Data[i]) - float64(b.Data[i]))
		if d > m {
			m = d
		}
	}
	return m
}

// AllClose reports whether every element of a is within atol + rtol*|b| of b.
func AllClose(a, b *Float32, rtol, atol float64) bool {
	if a.Shape != b.Shape {
		return false
	}
	for i := range a.Data {
		av, bv := float64(a.Data[i]), float64(b.Data[i])
		if math.Abs(av-bv) > atol+rtol*math.Abs(bv) {
			return false
		}
	}
	return true
}

// Bytes32 returns the storage footprint of a float32 tensor with the given
// shape, in bytes.
func Bytes32(s Shape) int64 { return int64(s.Elems()) * 4 }

// Bytes16 returns the storage footprint of a binary16 tensor with the given
// shape, in bytes.
func Bytes16(s Shape) int64 { return int64(s.Elems()) * 2 }
