package fp16

import (
	"math"
	"testing"
	"testing/quick"
)

func TestKnownValues(t *testing.T) {
	cases := []struct {
		f    float32
		bits Bits
	}{
		{0, 0x0000},
		{float32(math.Copysign(0, -1)), 0x8000},
		{1, 0x3C00},
		{-1, 0xBC00},
		{2, 0x4000},
		{0.5, 0x3800},
		{65504, 0x7BFF},                 // max finite
		{-65504, 0xFBFF},                // min finite
		{6.103515625e-05, 0x0400},       // smallest normal 2^-14
		{5.960464477539063e-08, 0x0001}, // smallest subnormal 2^-24
		{0.333251953125, 0x3555},        // nearest half to 1/3
	}
	for _, c := range cases {
		if got := FromFloat32(c.f); got != c.bits {
			t.Errorf("FromFloat32(%v) = %#04x, want %#04x", c.f, got, c.bits)
		}
		if got := ToFloat32(c.bits); got != c.f {
			t.Errorf("ToFloat32(%#04x) = %v, want %v", c.bits, got, c.f)
		}
	}
}

func TestSpecialValues(t *testing.T) {
	if !IsInf(FromFloat32(float32(math.Inf(1))), 1) {
		t.Error("+Inf should convert to +Inf")
	}
	if !IsInf(FromFloat32(float32(math.Inf(-1))), -1) {
		t.Error("-Inf should convert to -Inf")
	}
	if !IsNaN(FromFloat32(float32(math.NaN()))) {
		t.Error("NaN should convert to NaN")
	}
	if !math.IsNaN(ToFloat64(NaN())) {
		t.Error("NaN bits should decode to NaN")
	}
	if !math.IsInf(ToFloat64(PositiveInfinity()), 1) {
		t.Error("+Inf bits should decode to +Inf")
	}
	if !math.IsInf(ToFloat64(NegativeInfinity()), -1) {
		t.Error("-Inf bits should decode to -Inf")
	}
	if IsFinite(PositiveInfinity()) || IsFinite(NaN()) {
		t.Error("Inf/NaN must not be finite")
	}
	if !IsFinite(FromFloat32(1.5)) {
		t.Error("1.5 must be finite")
	}
}

func TestOverflowToInf(t *testing.T) {
	if got := FromFloat32(65520); !IsInf(got, 1) {
		// 65520 rounds up past max finite (65504 + half-ULP boundary).
		t.Errorf("FromFloat32(65520) = %#04x, want +Inf", got)
	}
	if got := FromFloat32(65519.99); IsInf(got, 1) {
		t.Errorf("FromFloat32(65519.99) overflowed, want max finite rounding")
	}
	if got := FromFloat32(-1e6); !IsInf(got, -1) {
		t.Errorf("FromFloat32(-1e6) = %#04x, want -Inf", got)
	}
}

func TestUnderflowToZero(t *testing.T) {
	tiny := float32(1e-9) // below half subnormal range
	got := FromFloat32(tiny)
	if got != 0 {
		t.Errorf("FromFloat32(%v) = %#04x, want +0", tiny, got)
	}
	got = FromFloat32(-tiny)
	if got != 0x8000 {
		t.Errorf("FromFloat32(%v) = %#04x, want -0", -tiny, got)
	}
}

func TestRoundToNearestEven(t *testing.T) {
	// 2048 is exactly representable; 2049 is exactly halfway between 2048
	// and 2050 in binary16 (ULP = 2 at this magnitude) and must round to
	// the even mantissa, i.e. 2048.
	if got := ToFloat32(FromFloat32(2049)); got != 2048 {
		t.Errorf("RNE(2049) = %v, want 2048", got)
	}
	// 2051 is halfway between 2050 and 2052; even neighbour is 2052.
	if got := ToFloat32(FromFloat32(2051)); got != 2052 {
		t.Errorf("RNE(2051) = %v, want 2052", got)
	}
}

// Round-trip: every binary16 bit pattern must survive conversion to float32
// and back unchanged (modulo NaN payload canonicalisation).
func TestRoundTripAllPatterns(t *testing.T) {
	for i := 0; i <= 0xFFFF; i++ {
		h := Bits(i)
		if IsNaN(h) {
			if !IsNaN(FromFloat32(ToFloat32(h))) {
				t.Fatalf("NaN pattern %#04x lost NaN-ness", i)
			}
			continue
		}
		if got := FromFloat32(ToFloat32(h)); got != h {
			t.Fatalf("round trip %#04x -> %v -> %#04x", i, ToFloat32(h), got)
		}
	}
}

// Property: conversion error of FromFloat32 is at most half a ULP for values
// within the finite binary16 range.
func TestConversionErrorBound(t *testing.T) {
	f := func(v float32) bool {
		if v != v || v > 65504 || v < -65504 {
			return true // out of scope
		}
		h := FromFloat32(v)
		back := ToFloat32(h)
		// ULP at magnitude of v: for normals 2^(e-10), measure via neighbours.
		diff := math.Abs(float64(back) - float64(v))
		ulp := math.Max(float64(ulpAt(v)), 5.9604644775390625e-08)
		return diff <= ulp/2+1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5000}); err != nil {
		t.Error(err)
	}
}

func ulpAt(v float32) float32 {
	av := float32(math.Abs(float64(v)))
	if av < 6.103515625e-05 {
		return 5.9604644775390625e-08 // subnormal spacing 2^-24
	}
	e := math.Floor(math.Log2(float64(av)))
	return float32(math.Pow(2, e-10))
}

func TestArithmetic(t *testing.T) {
	a, b := FromFloat32(1.5), FromFloat32(2.25)
	if got := ToFloat32(Add(a, b)); got != 3.75 {
		t.Errorf("1.5+2.25 = %v", got)
	}
	if got := ToFloat32(Sub(a, b)); got != -0.75 {
		t.Errorf("1.5-2.25 = %v", got)
	}
	if got := ToFloat32(Mul(a, b)); got != 3.375 {
		t.Errorf("1.5*2.25 = %v", got)
	}
	if got := ToFloat32(Div(b, a)); got != 1.5 {
		t.Errorf("2.25/1.5 = %v", got)
	}
	if got := ToFloat32(Neg(a)); got != -1.5 {
		t.Errorf("-1.5 = %v", got)
	}
	if got := ToFloat32(FMA(a, b, FromFloat32(1))); got != 4.375 {
		t.Errorf("fma(1.5,2.25,1) = %v", got)
	}
}

// Property: Add is commutative and Neg is an involution at the bit level.
func TestAlgebraicProperties(t *testing.T) {
	f := func(x, y float32) bool {
		a, b := FromFloat32(x), FromFloat32(y)
		if IsNaN(a) || IsNaN(b) {
			return true
		}
		return Add(a, b) == Add(b, a) && Neg(Neg(a)) == a
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

// FP32 accumulation must beat FP16 accumulation on long sums of small terms:
// FP16 accumulation stagnates once the running sum dwarfs each addend.
func TestDotAccumulationModes(t *testing.T) {
	n := 4096
	a := make([]Bits, n)
	b := make([]Bits, n)
	one := FromFloat32(1)
	small := FromFloat32(0.5)
	for i := range a {
		a[i] = one
		b[i] = small
	}
	exact := 0.5 * float64(n)
	f32acc := float64(DotF32Acc(a, b))
	f16acc := ToFloat64(DotF16Acc(a, b))
	errF32 := math.Abs(f32acc-exact) / exact
	errF16 := math.Abs(f16acc-exact) / exact
	if errF32 > 1e-6 {
		t.Errorf("FP32-accumulated dot error %v too large", errF32)
	}
	if errF16 <= errF32 {
		t.Errorf("expected FP16 accumulation (%v) to be worse than FP32 (%v)",
			errF16, errF32)
	}
	// FP16 accumulation stops growing at 2048 (+0.5 is below half-ULP).
	if f16acc >= exact {
		t.Errorf("FP16 accumulation %v should stagnate below exact %v", f16acc, exact)
	}
}

func TestSliceConversions(t *testing.T) {
	src := []float32{0, 1, -2, 0.25, 65504}
	h := SliceFromFloat32(src)
	back := SliceToFloat32(h)
	for i := range src {
		if back[i] != src[i] {
			t.Errorf("slice round trip [%d]: got %v want %v", i, back[i], src[i])
		}
	}
}

func TestDotLengthMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic on length mismatch")
		}
	}()
	DotF32Acc(make([]Bits, 2), make([]Bits, 3))
}

func BenchmarkFromFloat32(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_ = FromFloat32(float32(i) * 0.001)
	}
}

func BenchmarkDotF32Acc(b *testing.B) {
	n := 1024
	x := make([]Bits, n)
	y := make([]Bits, n)
	for i := range x {
		x[i] = FromFloat32(float32(i%7) * 0.125)
		y[i] = FromFloat32(float32(i%5) * 0.25)
	}
	b.SetBytes(int64(2 * n * 2))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = DotF32Acc(x, y)
	}
}
