package fp16

import (
	"math"
	"testing"
)

// FuzzConversion checks the binary16 conversion invariants on arbitrary
// float32 bit patterns: idempotent rounding, sign preservation, and
// ordering preservation for finite values.
func FuzzConversion(f *testing.F) {
	for _, seed := range []uint32{
		0, 0x3F800000, 0xBF800000, 0x7F800000, 0x7FC00000, 0x00000001,
		0x477FE000, 0x33800000, 0x38800000, 0x42DE4355,
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, bits uint32) {
		v := math.Float32frombits(bits)
		h := FromFloat32(v)
		back := ToFloat32(h)
		if v != v { // NaN in
			if !IsNaN(h) || back == back {
				t.Fatalf("NaN %#08x must stay NaN", bits)
			}
			return
		}
		// Idempotence: re-converting the rounded value is a fixed point.
		if h2 := FromFloat32(back); h2 != h {
			t.Fatalf("rounding not idempotent: %v -> %#04x -> %v -> %#04x",
				v, h, back, h2)
		}
		// Sign preservation (zero keeps its sign bit).
		if math.Signbit(float64(v)) != math.Signbit(float64(back)) {
			t.Fatalf("sign flipped: %v -> %v", v, back)
		}
		// Magnitude error bound for in-range values: relative 2^-11 or
		// the subnormal quantum.
		av := math.Abs(float64(v))
		if av <= 65504 {
			diff := math.Abs(float64(back) - float64(v))
			bound := math.Max(av/2048, 2.980232238769531e-08)
			if diff > bound {
				t.Fatalf("error %v exceeds bound %v for %v", diff, bound, v)
			}
		}
	})
}

// FuzzEncodeMatchesScalar pins the table-driven bulk codec to the scalar
// oracle on arbitrary float32 bit patterns: EncodeSlice must produce the
// exact FromFloat32 pattern, and decoding the result back through the LUT
// must match ToFloat32 bit-for-bit. Seeds cover RNE tie cases (midpoints
// at 2049/2051 and the subnormal tie 2^-25), the 65504→65520 overflow
// boundary, subnormal boundaries (2^-14, 2^-24), and NaN payloads.
func FuzzEncodeMatchesScalar(f *testing.F) {
	for _, seed := range []uint32{
		0x00000000, 0x80000000, // ±0
		0x45000800, 0x45002800, // 2049, 2051: RNE ties at ULP 2
		0x33000000, 0xB3000000, // ±2^-25: tie at half the smallest subnormal
		0x477FE000, 0x477FF000, // 65504 (max finite), 65520 (overflow tie)
		0x38800000, 0x33800000, // 2^-14 (min normal), 2^-24 (min subnormal)
		0x387FC000, 0x337FFFFF, // just below min normal / subnormal boundary
		0x7F800001, 0xFFC12345, // NaN payloads
		0x7F7FFFFF, 0x00000001, // float32 extremes
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, bits uint32) {
		v := math.Float32frombits(bits)
		var enc [1]Bits
		EncodeSlice(enc[:], []float32{v})
		want := FromFloat32(v)
		if enc[0] != want {
			t.Fatalf("EncodeSlice(%#08x) = %#04x, oracle FromFloat32 = %#04x",
				bits, enc[0], want)
		}
		var dec [1]float32
		DecodeSlice(dec[:], enc[:])
		if math.Float32bits(dec[0]) != math.Float32bits(ToFloat32(want)) {
			t.Fatalf("DecodeSlice(%#04x) = %#08x, oracle ToFloat32 = %#08x",
				want, math.Float32bits(dec[0]), math.Float32bits(ToFloat32(want)))
		}
		var round [1]float32
		round[0] = v
		RoundSlice(round[:])
		if math.Float32bits(round[0]) != math.Float32bits(ToFloat32(want)) {
			t.Fatalf("RoundSlice(%#08x) = %#08x, scalar round trip = %#08x",
				bits, math.Float32bits(round[0]), math.Float32bits(ToFloat32(want)))
		}
	})
}

// FuzzOrdering: conversion must be monotone — a larger finite float32
// never converts to a smaller half.
func FuzzOrdering(f *testing.F) {
	f.Add(float32(1.0), float32(2.0))
	f.Add(float32(-5.5), float32(0.125))
	f.Add(float32(60000), float32(70000))
	f.Fuzz(func(t *testing.T, a, b float32) {
		if a != a || b != b {
			return
		}
		if a > b {
			a, b = b, a
		}
		ha, hb := ToFloat32(FromFloat32(a)), ToFloat32(FromFloat32(b))
		if !(ha <= hb) {
			t.Fatalf("ordering violated: %v<=%v but %v>%v", a, b, ha, hb)
		}
	})
}
