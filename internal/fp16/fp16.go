// Package fp16 implements IEEE 754 binary16 ("half precision") arithmetic in
// software.
//
// The package exists because WinRS's FP16 Tensor-Core kernels must be
// reproduced without GPU hardware. Values are stored as uint16 bit patterns
// and every arithmetic operation is performed in float32 and then rounded
// back to binary16 with round-to-nearest-even, which matches the per-operation
// rounding behaviour of native FP16 ALUs. Dot products offered by this
// package accumulate in float32, matching the MMA (m16n8k8) semantics of
// NVIDIA Tensor Cores that the paper's FP16 kernels rely on.
package fp16

import "math"

// Bits is an IEEE 754 binary16 value stored as its raw bit pattern.
type Bits uint16

const (
	signMask     = 0x8000
	expMask      = 0x7C00
	fracMask     = 0x03FF
	expBias      = 15
	infBits      = Bits(expMask)
	negInfBits   = Bits(signMask | expMask)
	nanBits      = Bits(expMask | 0x0200)
	maxFiniteF32 = 65504.0 // largest finite binary16 value
)

// PositiveInfinity returns the binary16 +Inf pattern.
func PositiveInfinity() Bits { return infBits }

// NegativeInfinity returns the binary16 -Inf pattern.
func NegativeInfinity() Bits { return negInfBits }

// NaN returns a quiet binary16 NaN pattern.
func NaN() Bits { return nanBits }

// FromFloat32 converts a float32 to binary16 with round-to-nearest-even,
// overflowing to ±Inf and flushing tiny values to (sub)normals as IEEE
// requires.
func FromFloat32(f float32) Bits {
	b := math.Float32bits(f)
	sign := uint16(b>>16) & signMask
	exp := int32(b>>23) & 0xFF
	frac := b & 0x7FFFFF

	switch {
	case exp == 0xFF: // Inf or NaN
		if frac != 0 {
			return Bits(sign | expMask | 0x0200 | uint16(frac>>13))
		}
		return Bits(sign | expMask)
	case exp == 0 && frac == 0: // signed zero
		return Bits(sign)
	}

	// Unbiased exponent of the float32 value.
	e := exp - 127
	switch {
	case e > 15: // overflow to infinity
		return Bits(sign | expMask)
	case e >= -14: // normal binary16 range
		// 10-bit mantissa; keep 13 dropped bits for rounding.
		he := uint16(e+expBias) << 10
		hf := uint16(frac >> 13)
		rem := frac & 0x1FFF
		half := uint32(0x1000)
		if rem > half || (rem == half && hf&1 == 1) {
			// Round up; carry may bump the exponent, which the bit layout
			// handles naturally (mantissa overflow increments exponent).
			return Bits(sign|he|hf) + 1
		}
		return Bits(sign | he | hf)
	case e >= -25: // subnormal binary16 range
		// Implicit leading 1 becomes explicit. The 24-bit significand
		// represents sig·2^(e-23); the target subnormal unit is 2^-24,
		// so the subnormal mantissa is round(sig·2^(e+1)) = sig >> (-e-1).
		frac |= 0x800000
		shift := uint32(-e - 1)
		hf := uint16(frac >> shift)
		rem := frac & ((1 << shift) - 1)
		half := uint32(1) << (shift - 1)
		if rem > half || (rem == half && hf&1 == 1) {
			hf++
		}
		return Bits(sign | hf)
	default: // underflow to signed zero
		return Bits(sign)
	}
}

// ToFloat32 converts a binary16 bit pattern to float32 exactly (binary16 is
// a subset of float32, so no rounding occurs).
func ToFloat32(h Bits) float32 {
	sign := uint32(h&signMask) << 16
	exp := uint32(h&expMask) >> 10
	frac := uint32(h & fracMask)

	switch {
	case exp == 0x1F: // Inf / NaN
		return math.Float32frombits(sign | 0x7F800000 | frac<<13)
	case exp == 0:
		if frac == 0 {
			return math.Float32frombits(sign)
		}
		// Subnormal: normalize into float32 representation.
		e := int32(-14)
		for frac&0x400 == 0 {
			frac <<= 1
			e--
		}
		frac &= fracMask
		return math.Float32frombits(sign | uint32(e+127)<<23 | frac<<13)
	default:
		return math.Float32frombits(sign | (exp-expBias+127)<<23 | frac<<13)
	}
}

// FromFloat64 converts a float64 to binary16 via float32 (double rounding is
// harmless here because float32 has more than twice the binary16 precision).
func FromFloat64(f float64) Bits { return FromFloat32(float32(f)) }

// ToFloat64 converts a binary16 bit pattern to float64 exactly.
func ToFloat64(h Bits) float64 { return float64(ToFloat32(h)) }

// IsNaN reports whether h is a NaN pattern.
func IsNaN(h Bits) bool { return h&expMask == expMask && h&fracMask != 0 }

// IsInf reports whether h is +Inf (sign > 0), -Inf (sign < 0) or either
// (sign == 0).
func IsInf(h Bits, sign int) bool {
	if h&expMask != expMask || h&fracMask != 0 {
		return false
	}
	switch {
	case sign > 0:
		return h&signMask == 0
	case sign < 0:
		return h&signMask != 0
	default:
		return true
	}
}

// IsFinite reports whether h encodes a finite value.
func IsFinite(h Bits) bool { return h&expMask != expMask }

// MaxValue returns the largest finite binary16 value as float32 (65504).
func MaxValue() float32 { return maxFiniteF32 }

// Add returns RN16(a+b): the binary16 result of adding two halves with a
// single rounding, emulating a native FP16 adder.
func Add(a, b Bits) Bits { return FromFloat32(ToFloat32(a) + ToFloat32(b)) }

// Sub returns RN16(a-b).
func Sub(a, b Bits) Bits { return FromFloat32(ToFloat32(a) - ToFloat32(b)) }

// Mul returns RN16(a*b).
func Mul(a, b Bits) Bits { return FromFloat32(ToFloat32(a) * ToFloat32(b)) }

// Div returns RN16(a/b).
func Div(a, b Bits) Bits { return FromFloat32(ToFloat32(a) / ToFloat32(b)) }

// Neg flips the sign bit.
func Neg(a Bits) Bits { return a ^ signMask }

// FMA returns RN16(a*b+c) with the product and sum computed in float32
// before the single final rounding, as an FP16 fused multiply-add does.
func FMA(a, b, c Bits) Bits {
	return FromFloat32(ToFloat32(a)*ToFloat32(b) + ToFloat32(c))
}

// DotF32Acc computes the dot product of two binary16 vectors with float32
// accumulation and returns the float32 accumulator. This is the Tensor-Core
// MMA contract: FP16 inputs, FP32 products and accumulation.
func DotF32Acc(a, b []Bits) float32 {
	if len(a) != len(b) {
		panic("fp16: DotF32Acc length mismatch")
	}
	var acc float32
	for i := range a {
		acc += ToFloat32(a[i]) * ToFloat32(b[i])
	}
	return acc
}

// DotF16Acc computes the dot product with binary16 accumulation (every
// partial sum rounded to half), modelling pure-FP16 accumulation. It exists
// so tests and benchmarks can contrast FP32-accumulate against the lossier
// mode the paper avoids.
func DotF16Acc(a, b []Bits) Bits {
	if len(a) != len(b) {
		panic("fp16: DotF16Acc length mismatch")
	}
	var acc Bits
	for i := range a {
		acc = FMA(a[i], b[i], acc)
	}
	return acc
}

// SliceFromFloat32 converts src into a freshly allocated binary16 slice.
// Hot paths should prefer the dst-reusing EncodeSlice.
func SliceFromFloat32(src []float32) []Bits {
	dst := make([]Bits, len(src))
	EncodeSlice(dst, src)
	return dst
}

// SliceToFloat32 converts src into a freshly allocated float32 slice.
// Hot paths should prefer the dst-reusing DecodeSlice.
func SliceToFloat32(src []Bits) []float32 {
	dst := make([]float32, len(src))
	DecodeSlice(dst, src)
	return dst
}
