package fp16

import (
	"fmt"
	"math"
	"math/rand"
	"os"
	"sync"
	"testing"
)

// TestMain asserts the decode LUT is NOT built at package init: an
// FP32-only process importing fp16 must pay neither the 256 KiB nor the
// construction loop. It runs before any test can touch the codec, so a
// non-zero counter here can only come from an init-time build.
func TestMain(m *testing.M) {
	if n := decodeLUTBuilds.Load(); n != 0 {
		fmt.Fprintf(os.Stderr, "fp16: decode LUT built %d times at init, want 0 (must be lazy)\n", n)
		os.Exit(1)
	}
	os.Exit(m.Run())
}

// The LUT must be built exactly once even under concurrent first use.
func TestDecodeLUTBuiltLazilyOnce(t *testing.T) {
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			dst := make([]float32, 16)
			src := make([]Bits, 16)
			for i := range src {
				src[i] = Bits(i * 257)
			}
			for iter := 0; iter < 100; iter++ {
				DecodeSlice(dst, src)
			}
		}()
	}
	wg.Wait()
	if n := decodeLUTBuilds.Load(); n != 1 {
		t.Fatalf("decode LUT built %d times, want exactly 1", n)
	}
}

// sameF32 compares float32 values bit-for-bit (so NaN payloads and zero
// signs count).
func sameF32(a, b float32) bool {
	return math.Float32bits(a) == math.Float32bits(b)
}

// Exhaustive decode equivalence: every one of the 65536 binary16
// patterns — all NaN payloads, ±Inf, every subnormal — must decode
// through the LUT to the exact bits the scalar oracle produces.
func TestDecodeSliceExhaustive(t *testing.T) {
	src := make([]Bits, 1<<16)
	for i := range src {
		src[i] = Bits(i)
	}
	dst := make([]float32, len(src))
	DecodeSlice(dst, src)
	for i, got := range dst {
		want := ToFloat32(Bits(i))
		if !sameF32(got, want) {
			t.Fatalf("DecodeSlice(%#04x) = %x, oracle ToFloat32 = %x",
				i, math.Float32bits(got), math.Float32bits(want))
		}
	}
}

// encodeOne runs the table-driven encoder on a single value.
func encodeOne(v float32) Bits {
	var dst [1]Bits
	EncodeSlice(dst[:], []float32{v})
	return dst[0]
}

// checkEncode compares the table encoder against the scalar oracle for
// one value.
func checkEncode(t *testing.T, v float32) {
	t.Helper()
	if got, want := encodeOne(v), FromFloat32(v); got != want {
		t.Fatalf("EncodeSlice(%x = %v) = %#04x, oracle FromFloat32 = %#04x",
			math.Float32bits(v), v, got, want)
	}
}

// Encode differential sweep over the half domain: every binary16 value
// (decoded exactly to float32) must re-encode to the scalar oracle's
// pattern, and so must the float32 values straddling each rounding
// boundary: the exact midpoint between every pair of adjacent halves and
// its float32 neighbours on both sides — the RNE tie cases, subnormal
// boundaries and the 65504/65520 overflow edge all arise here.
func TestEncodeSliceBoundarySweep(t *testing.T) {
	for i := 0; i <= 0xFFFF; i++ {
		h := Bits(i)
		v := ToFloat32(h)
		checkEncode(t, v)
		if IsNaN(h) || IsInf(h, 0) {
			continue
		}
		// Midpoint to the next-larger-magnitude half (same sign).
		next := h + 1
		if !IsFinite(next) {
			// Midpoint between max finite and the overflow threshold.
			for _, edge := range []float32{65520, -65520} {
				checkEncode(t, edge)
				checkEncode(t, math.Nextafter32(edge, 0))
				checkEncode(t, math.Nextafter32(edge, float32(math.Inf(1))))
				checkEncode(t, math.Nextafter32(edge, float32(math.Inf(-1))))
			}
			continue
		}
		nv := ToFloat32(next)
		mid := float32((float64(v) + float64(nv)) / 2) // exact in float32
		checkEncode(t, mid)
		checkEncode(t, math.Nextafter32(mid, 0))
		checkEncode(t, math.Nextafter32(mid, float32(math.Inf(1))))
	}
}

// Encode differential fuzz over random float32 bit patterns, including
// NaN payloads, float32 subnormals and the full exponent range.
func TestEncodeSliceRandomDifferential(t *testing.T) {
	rng := rand.New(rand.NewSource(20260805))
	const n = 1 << 20
	src := make([]float32, n)
	for i := range src {
		src[i] = math.Float32frombits(rng.Uint32())
	}
	dst := make([]Bits, n)
	EncodeSlice(dst, src)
	for i, got := range dst {
		if want := FromFloat32(src[i]); got != want {
			t.Fatalf("EncodeSlice(%x) = %#04x, oracle = %#04x",
				math.Float32bits(src[i]), got, want)
		}
	}
}

// RoundSlice must equal the scalar encode→decode round trip bit-for-bit.
func TestRoundSliceMatchesScalar(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	vals := []float32{0, float32(math.Copysign(0, -1)), 1, -1, 2049, 2051,
		65504, 65520, 1e-9, -1e-9, 6.103515625e-05, 5.960464477539063e-08,
		float32(math.Inf(1)), float32(math.Inf(-1)), float32(math.NaN())}
	for i := 0; i < 1<<16; i++ {
		vals = append(vals, math.Float32frombits(rng.Uint32()))
	}
	got := append([]float32(nil), vals...)
	RoundSlice(got)
	for i, v := range vals {
		want := ToFloat32(FromFloat32(v))
		if !sameF32(got[i], want) {
			t.Fatalf("RoundSlice(%x) = %x, scalar round trip = %x",
				math.Float32bits(v), math.Float32bits(got[i]), math.Float32bits(want))
		}
	}
}

func TestSliceKernelLengthMismatchPanics(t *testing.T) {
	mustPanic := func(name string, fn func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s: length mismatch did not panic", name)
			}
		}()
		fn()
	}
	mustPanic("DecodeSlice", func() { DecodeSlice(make([]float32, 2), make([]Bits, 3)) })
	mustPanic("EncodeSlice", func() { EncodeSlice(make([]Bits, 3), make([]float32, 2)) })
	mustPanic("RoundInto", func() { RoundInto(make([]float32, 2), make([]float32, 3)) })
}

// The allocating wrappers must stay equivalent to the kernels.
func TestSliceWrappersMatchKernels(t *testing.T) {
	src32 := []float32{0, 1, -2.5, 65504, 1e-8, float32(math.NaN())}
	h := SliceFromFloat32(src32)
	for i, v := range src32 {
		if h[i] != FromFloat32(v) {
			t.Fatalf("SliceFromFloat32[%d] = %#04x, want %#04x", i, h[i], FromFloat32(v))
		}
	}
	f := SliceToFloat32(h)
	for i, hb := range h {
		if !sameF32(f[i], ToFloat32(hb)) {
			t.Fatalf("SliceToFloat32[%d] mismatch", i)
		}
	}
}

func BenchmarkDecodeSliceLUT(b *testing.B) {
	src := make([]Bits, 4096)
	for i := range src {
		src[i] = Bits(i * 13)
	}
	dst := make([]float32, len(src))
	b.SetBytes(int64(len(src) * 2))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		DecodeSlice(dst, src)
	}
}

func BenchmarkDecodeSliceScalar(b *testing.B) {
	src := make([]Bits, 4096)
	for i := range src {
		src[i] = Bits(i * 13)
	}
	dst := make([]float32, len(src))
	b.SetBytes(int64(len(src) * 2))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j, h := range src {
			dst[j] = ToFloat32(h)
		}
	}
}

func BenchmarkEncodeSliceTable(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	src := make([]float32, 4096)
	for i := range src {
		src[i] = rng.Float32()*4 - 2
	}
	dst := make([]Bits, len(src))
	b.SetBytes(int64(len(src) * 4))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		EncodeSlice(dst, src)
	}
}

func BenchmarkEncodeSliceScalar(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	src := make([]float32, 4096)
	for i := range src {
		src[i] = rng.Float32()*4 - 2
	}
	dst := make([]Bits, len(src))
	b.SetBytes(int64(len(src) * 4))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j, v := range src {
			dst[j] = FromFloat32(v)
		}
	}
}

func BenchmarkRoundSliceTable(b *testing.B) {
	rng := rand.New(rand.NewSource(4))
	vs := make([]float32, 4096)
	for i := range vs {
		vs[i] = rng.Float32()*4 - 2
	}
	b.SetBytes(int64(len(vs) * 4))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		RoundSlice(vs)
	}
}

func BenchmarkRoundSliceScalar(b *testing.B) {
	rng := rand.New(rand.NewSource(4))
	vs := make([]float32, 4096)
	for i := range vs {
		vs[i] = rng.Float32()*4 - 2
	}
	b.SetBytes(int64(len(vs) * 4))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j, v := range vs {
			vs[j] = ToFloat32(FromFloat32(v))
		}
	}
}

// RoundInto is RoundSlice fused with the copy (the decoded-operand Ŵ-cache
// store): same scalar round-trip oracle, separate destination, and the
// source must come through untouched.
func TestRoundIntoMatchesScalar(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	vals := []float32{0, float32(math.Copysign(0, -1)), 1, -1, 2049, 2051,
		65504, 65520, 1e-9, -1e-9, 6.103515625e-05, 5.960464477539063e-08,
		float32(math.Inf(1)), float32(math.Inf(-1)), float32(math.NaN())}
	for i := 0; i < 1<<16; i++ {
		vals = append(vals, math.Float32frombits(rng.Uint32()))
	}
	src := append([]float32(nil), vals...)
	got := make([]float32, len(vals))
	RoundInto(got, src)
	for i, v := range vals {
		if !sameF32(src[i], v) {
			t.Fatalf("RoundInto mutated src[%d]: %x -> %x",
				i, math.Float32bits(v), math.Float32bits(src[i]))
		}
		want := ToFloat32(FromFloat32(v))
		if !sameF32(got[i], want) {
			t.Fatalf("RoundInto(%x) = %x, scalar round trip = %x",
				math.Float32bits(v), math.Float32bits(got[i]), math.Float32bits(want))
		}
	}
	// Exact aliasing is allowed and must equal RoundSlice.
	alias := append([]float32(nil), vals...)
	RoundInto(alias, alias)
	for i := range alias {
		if !sameF32(alias[i], got[i]) {
			t.Fatalf("aliased RoundInto differs at %d", i)
		}
	}
}

// Exhaustive decodeBits equivalence: the arithmetic decode behind the
// rounding kernels must match the scalar oracle on all 65536 patterns.
func TestDecodeBitsMatchesScalarExhaustive(t *testing.T) {
	for i := 0; i < 1<<16; i++ {
		if got, want := decodeBits(uint32(i)), ToFloat32(Bits(i)); !sameF32(got, want) {
			t.Fatalf("decodeBits(%#04x) = %x, want %x",
				i, math.Float32bits(got), math.Float32bits(want))
		}
	}
}
