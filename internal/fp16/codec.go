package fp16

// Table-driven bulk conversion kernels.
//
// The scalar FromFloat32/ToFloat32 pair in fp16.go is the rounding
// *specification*: a branchy, obviously-correct implementation of IEEE
// binary16 conversion with round-to-nearest-even. It stays in the tree as
// the oracle for the equivalence tests. The kernels here implement the
// exact same mapping with tables so the hot loops (the Ŵ-cache fill, the
// X-gather and the SMEM-rounding step of ExecuteHalf) convert whole rows
// per call instead of paying a branch tree per element:
//
//   - Decoding uses a 65536-entry float32 LUT (256 KiB): every binary16
//     pattern maps to exactly one float32, so ToFloat32 becomes a single
//     indexed load. The LUT is built lazily, once, on first use — an
//     FP32-only process never pays the 256 KiB or the build. The rounding
//     kernels instead decode arithmetically (decodeBits): their half
//     patterns are data-dependent transform outputs, where the indexed
//     load misses L1 and a handful of ALU ops wins.
//   - Encoding uses the Giesen-style class-table scheme: the 9-bit
//     sign+exponent field of the float32 picks a base pattern, a mantissa
//     shift and an implicit-bit OR from three 512-entry tables, followed by
//     a two-instruction round-to-nearest-even fixup on the dropped bits.
//     Inf/NaN inputs take one (almost never taken) branch so NaN payloads
//     survive exactly as the scalar encoder preserves them.
//
// Both kernels are bit-for-bit identical to the scalar pair across the
// full input domain; codec_test.go proves decode exhaustively and encode
// by exhaustive half-domain round-trip plus midpoint/tie sweeps and fuzz.

import (
	"math"
	"sync"
	"sync/atomic"
)

// decodeLUTBuilds counts decode-LUT constructions; the laziness tests
// assert it is 0 at process start and exactly 1 after concurrent use.
var decodeLUTBuilds atomic.Int32

var (
	decodeOnce sync.Once
	decodeLUT  *[1 << 16]float32
)

// decodeTable returns the binary16 → float32 LUT, building it on first
// use from the scalar oracle (so the table *is* ToFloat32 by
// construction; the exhaustive test pins the equality against drift).
func decodeTable() *[1 << 16]float32 {
	decodeOnce.Do(func() {
		decodeLUTBuilds.Add(1)
		t := new([1 << 16]float32)
		for i := range t {
			t[i] = ToFloat32(Bits(i))
		}
		decodeLUT = t
	})
	return decodeLUT
}

// Encode class tables, indexed by the 9-bit sign+exponent field of the
// float32 (b >> 23). encBase holds the sign/exponent bits of the result,
// encShift the right-shift applied to the (implicit-bit-extended)
// mantissa, and encOr the implicit leading one for classes that land in
// the binary16 subnormal range. Classes that must not round (underflow,
// overflow, zero) use shift 24 with no implicit bit: the shifted mantissa
// is 0 and the remainder (< 2^23) can never reach the 2^23 rounding
// half-point.
var (
	encodeOnce sync.Once
	encBase    *[512]uint16
	encShift   *[512]uint8
	encOr      *[512]uint32
)

func encodeTables() (*[512]uint16, *[512]uint8, *[512]uint32) {
	encodeOnce.Do(func() {
		base := new([512]uint16)
		shift := new([512]uint8)
		or := new([512]uint32)
		for c := 0; c < 512; c++ {
			exp := c & 0xFF            // float32 biased exponent
			sign := uint16(c>>8) << 15 // sign bit in binary16 position
			e := exp - 127             // unbiased exponent
			switch {
			case exp == 0 || e < -25:
				// Signed zero, float32 subnormals, and everything below
				// half the smallest binary16 subnormal: signed zero.
				base[c] = sign
				shift[c] = 24
			case e <= -15:
				// Binary16 subnormal range (e in [-25, -15]): the implicit
				// one becomes explicit and the significand is shifted so
				// the result unit is 2^-24, exactly as the scalar encoder
				// computes hf = (frac|0x800000) >> (-e-1).
				base[c] = sign
				shift[c] = uint8(-e - 1)
				or[c] = 0x800000
			case e <= 15:
				// Normal range: exponent re-biased, 13 mantissa bits
				// dropped with RNE.
				base[c] = sign | uint16(e+expBias)<<10
				shift[c] = 13
			default:
				// e > 15 (including the float32 Inf/NaN class, whose NaNs
				// are intercepted before the tables): overflow to ±Inf.
				base[c] = sign | expMask
				shift[c] = 24
			}
		}
		encBase, encShift, encOr = base, shift, or
	})
	return encBase, encShift, encOr
}

// DecodeSlice converts binary16 src into float32 dst element-wise,
// bit-identical to the scalar ToFloat32. len(dst) must equal len(src).
func DecodeSlice(dst []float32, src []Bits) {
	if len(dst) != len(src) {
		panic("fp16: DecodeSlice length mismatch")
	}
	lut := decodeTable()
	for i, h := range src {
		dst[i] = lut[h]
	}
}

// EncodeSlice converts float32 src into binary16 dst element-wise with
// round-to-nearest-even, bit-identical to the scalar FromFloat32
// (including NaN payload truncation and overflow to ±Inf). len(dst) must
// equal len(src).
func EncodeSlice(dst []Bits, src []float32) {
	if len(dst) != len(src) {
		panic("fp16: EncodeSlice length mismatch")
	}
	base, shift, or := encodeTables()
	for i, v := range src {
		b := math.Float32bits(v)
		if b&0x7F800000 == 0x7F800000 { // Inf/NaN: same path as the oracle
			sign := uint16(b>>16) & signMask
			if frac := b & 0x7FFFFF; frac != 0 {
				dst[i] = Bits(sign | expMask | 0x0200 | uint16(frac>>13))
			} else {
				dst[i] = Bits(sign | expMask)
			}
			continue
		}
		c := b >> 23
		m := b&0x7FFFFF | or[c]
		sh := uint32(shift[c])
		h := uint32(base[c]) + m>>sh
		// RNE fixup: round up when the dropped bits exceed half an ULP, or
		// equal it and the kept pattern is odd. rem+(h&1) > half folds both
		// conditions into one compare; the mantissa-overflow carry bumps
		// the exponent naturally, exactly like the scalar encoder.
		rem := m & (1<<sh - 1)
		if rem+(h&1) > 1<<(sh-1) {
			h++
		}
		dst[i] = Bits(h)
	}
}

// decodeBits is the arithmetic form of ToFloat32: normals re-bias in pure
// bit operations, subnormals reconstruct as the exact product frac·2⁻²⁴
// (both factors and the result are exactly representable), Inf/NaN shift
// the payload. Bit-identical to the scalar oracle and the LUT — the
// rounding kernels below use it instead of the 256 KiB decode table
// because their half patterns arrive data-dependent (transform outputs),
// where a per-element LUT load misses L1 while these few ALU ops stay in
// registers. The equivalence is pinned by the exhaustive decode test plus
// the RoundSlice/RoundInto scalar round-trip sweeps.
func decodeBits(h uint32) float32 {
	sign := (h & 0x8000) << 16
	exp := h >> 10 & 0x1F
	frac := h & 0x3FF
	switch {
	case exp == 0x1F: // Inf / NaN
		return math.Float32frombits(sign | 0x7F800000 | frac<<13)
	case exp == 0: // signed zero / subnormal
		if frac == 0 {
			return math.Float32frombits(sign)
		}
		return math.Float32frombits(math.Float32bits(float32(frac)*0x1p-24) | sign)
	default:
		return math.Float32frombits(sign | (exp+112)<<23 | frac<<13)
	}
}

// RoundSlice rounds every element of vs to its nearest binary16 value in
// place — the fused encode+decode used for the "SMEM storage" rounding
// step, bit-identical to ToFloat32(FromFloat32(v)) per element.
func RoundSlice(vs []float32) {
	base, shift, or := encodeTables()
	for i, v := range vs {
		b := math.Float32bits(v)
		if b&0x7F800000 == 0x7F800000 {
			h := uint32(b>>16) & 0x8000
			if frac := b & 0x7FFFFF; frac != 0 {
				h |= uint32(expMask) | 0x0200 | frac>>13
			} else {
				h |= uint32(expMask)
			}
			vs[i] = decodeBits(h)
			continue
		}
		c := b >> 23
		m := b&0x7FFFFF | or[c]
		sh := uint32(shift[c])
		h := uint32(base[c]) + m>>sh
		rem := m & (1<<sh - 1)
		if rem+(h&1) > 1<<(sh-1) {
			h++
		}
		vs[i] = decodeBits(h)
	}
}

// Round returns v rounded through binary16 storage — the scalar form of
// RoundSlice, same tables and RNE fixup, for hot paths whose rows are
// single floats (the depthwise X̂ row) where the slice call's table fetch
// and loop prologue would dominate the one element's work.
func Round(v float32) float32 {
	base, shift, or := encodeTables()
	b := math.Float32bits(v)
	if b&0x7F800000 == 0x7F800000 {
		h := uint32(b>>16) & 0x8000
		if frac := b & 0x7FFFFF; frac != 0 {
			h |= uint32(expMask) | 0x0200 | frac>>13
		} else {
			h |= uint32(expMask)
		}
		return decodeBits(h)
	}
	c := b >> 23
	m := b&0x7FFFFF | or[c]
	sh := uint32(shift[c])
	h := uint32(base[c]) + m>>sh
	rem := m & (1<<sh - 1)
	if rem+(h&1) > 1<<(sh-1) {
		h++
	}
	return decodeBits(h)
}

// RoundInto writes the nearest binary16 value of every src element into
// dst — RoundSlice fused with the copy, bit-identical to
// ToFloat32(FromFloat32(v)) per element. It is the one-pass kernel behind
// the decoded-operand Ŵ cache: the transformed panel is rounded through
// binary16 while being stored in float32 form, so later uses skip the
// decode entirely without changing a single bit of the cached values.
// len(dst) must equal len(src); dst and src may alias only exactly.
func RoundInto(dst, src []float32) {
	if len(dst) != len(src) {
		panic("fp16: RoundInto length mismatch")
	}
	base, shift, or := encodeTables()
	for i, v := range src {
		b := math.Float32bits(v)
		if b&0x7F800000 == 0x7F800000 {
			h := uint32(b>>16) & 0x8000
			if frac := b & 0x7FFFFF; frac != 0 {
				h |= uint32(expMask) | 0x0200 | frac>>13
			} else {
				h |= uint32(expMask)
			}
			dst[i] = decodeBits(h)
			continue
		}
		c := b >> 23
		m := b&0x7FFFFF | or[c]
		sh := uint32(shift[c])
		h := uint32(base[c]) + m>>sh
		rem := m & (1<<sh - 1)
		if rem+(h&1) > 1<<(sh-1) {
			h++
		}
		dst[i] = decodeBits(h)
	}
}
