package core

import (
	"winrs/internal/conv"
	"winrs/internal/fp16"
	"winrs/internal/sched"
	"winrs/internal/tensor"
)

// Grouped execution (G > 1) runs the adapted per-group plan (Config.group)
// once per channel group. NHWC keeps channels innermost, so one group's
// operands are strided row-gathers (rows of width I_C/G at stride I_C);
// the per-group ∇W block, by contrast, is a contiguous slab of the full
// gradient (∇W is O_C-major and each group owns a contiguous O_C/G range),
// so outputs are written through zero-copy views.
//
// Two dispatch modes exist (WINRS_GROUP_DISPATCH, groupedinterleave.go):
// the default interleaved dispatch fuses all G groups into ONE sched batch
// over a (group, unit) index space with a small ring of in-flight staging
// slots, recovering pool occupancy when per-group work is tiny (depthwise);
// the sequential mode below runs the G passes one after another through a
// single group-sized workspace — the PR 9 baseline the interleaved path is
// pinned bit-identical to. Either way the tiny-workspace property the
// paper's reduce-split buys shrinks by ~G²/ring vs the ungrouped plan, and
// depthwise (G == I_C) is its limiting case.

// sliceChannels gathers channels [off, off+width) of every row of src
// (rows × srcC, dense) into dst (rows × width, dense). A full-width slice
// (width == srcC, the G == 1 fallthrough and full-width staging) is one
// contiguous block, so it collapses to a single bulk copy.
func sliceChannels[E any](dst, src []E, rows, srcC, off, width int) {
	if width == srcC {
		copy(dst[:rows*width], src[off:off+rows*width])
		return
	}
	for r := 0; r < rows; r++ {
		copy(dst[r*width:(r+1)*width], src[r*srcC+off:r*srcC+off+width])
	}
}

// scatterChannels writes src (rows × width, dense) into channels
// [off, off+width) of every row of dst (rows × dstC, dense) — the inverse
// of sliceChannels, with the same full-width bulk-copy fast path.
func scatterChannels[E any](dst, src []E, rows, dstC, off, width int) {
	if width == dstC {
		copy(dst[off:off+rows*width], src[:rows*width])
		return
	}
	for r := 0; r < rows; r++ {
		copy(dst[r*dstC+off:r*dstC+off+width], src[r*width:(r+1)*width])
	}
}

// sliceDecodeChannels is sliceChannels fused with the binary16 → float32
// bulk decode: the gathered group slice lands directly in its decoded
// float32 mirror (the fp16Resident operand form). Decoding is exact, so
// the values are bit-identical to gather-then-decode.
func sliceDecodeChannels(dst []float32, src []fp16.Bits, rows, srcC, off, width int) {
	if width == srcC {
		fp16.DecodeSlice(dst[:rows*width], src[off:off+rows*width])
		return
	}
	for r := 0; r < rows; r++ {
		fp16.DecodeSlice(dst[r*width:(r+1)*width], src[r*srcC+off:r*srcC+off+width])
	}
}

// groupSlab returns the zero-copy view of group gi's contiguous ∇W block.
func groupSlab(dst *tensor.Float32, shape tensor.Shape, gi int) *tensor.Float32 {
	n := shape.Elems()
	return &tensor.Float32{Shape: shape, Data: dst.Data[gi*n : (gi+1)*n : (gi+1)*n]}
}

// executeGroupedIn is the FP32 grouped BFC driver behind executeIn.
func executeGroupedIn(cfg *Config, ws *Workspace, x, dy, dst *tensor.Float32, cancel *sched.Batch) (*tensor.Float32, bool) {
	p := cfg.Params
	if x.Shape != p.XShape() || dy.Shape != p.DYShape() {
		panic("core: Execute operand shape mismatch")
	}
	if dst == nil {
		dst = tensor.NewFloat32(p.DWShape())
	} else if dst.Shape != p.DWShape() {
		panic("core: reduce destination shape mismatch")
	}
	gcfg := cfg.group
	if ws == nil {
		ws = NewWorkspace(cfg) // group-sized, shared by all G passes
	}
	if InterleavedGroups() {
		if ok := runGroupedInterleaved(cfg, ws, x, dy, nil, nil, dst, cancel); !ok {
			return nil, false
		}
		return dst, true
	}
	g, icg, ocg := p.G(), p.ICG(), p.OCG()
	pg := gcfg.Params
	xRows := p.N * p.IH * p.IW
	dyRows := p.N * p.OH() * p.OW()
	xg := &tensor.Float32{Shape: pg.XShape(), Data: growF32(&ws.xg32, xRows*icg)}
	dyg := &tensor.Float32{Shape: pg.DYShape(), Data: growF32(&ws.dyg32, dyRows*ocg)}
	for gi := 0; gi < g; gi++ {
		if cancel.Cancelled() {
			return nil, false
		}
		sliceChannels(xg.Data, x.Data, xRows, p.IC, gi*icg, icg)
		sliceChannels(dyg.Data, dy.Data, dyRows, p.OC, gi*ocg, ocg)
		if _, ok := executeIn(gcfg, ws, xg, dyg, groupSlab(dst, pg.DWShape(), gi), cancel); !ok {
			return nil, false
		}
	}
	return dst, true
}

// executeGroupedHalfIn is the FP16 grouped BFC driver behind executeHalfIn.
// Gathers stay in binary16 (bit-exact channel copies); each per-group pass
// then runs the regular FP16 pipeline, so the eq.(7) error model applies
// per group with the reduced C = I_C/G reduction depth.
func executeGroupedHalfIn(cfg *Config, ws *Workspace, x, dy *tensor.Half, dst *tensor.Float32, cancel *sched.Batch) (*tensor.Float32, bool) {
	p := cfg.Params
	if x.Shape != p.XShape() || dy.Shape != p.DYShape() {
		panic("core: ExecuteHalf operand shape mismatch")
	}
	if dst == nil {
		dst = tensor.NewFloat32(p.DWShape())
	} else if dst.Shape != p.DWShape() {
		panic("core: reduce destination shape mismatch")
	}
	gcfg := cfg.group
	if ws == nil {
		ws = NewWorkspace(cfg)
	}
	if InterleavedGroups() {
		if ok := runGroupedInterleaved(cfg, ws, nil, nil, x, dy, dst, cancel); !ok {
			return nil, false
		}
		return dst, true
	}
	g, icg, ocg := p.G(), p.ICG(), p.OCG()
	pg := gcfg.Params
	xRows := p.N * p.IH * p.IW
	dyRows := p.N * p.OH() * p.OW()
	xg := &tensor.Half{Shape: pg.XShape(), Data: growHalf(&ws.xg16, xRows*icg)}
	dyg := &tensor.Half{Shape: pg.DYShape(), Data: growHalf(&ws.dyg16, dyRows*ocg)}
	for gi := 0; gi < g; gi++ {
		if cancel.Cancelled() {
			return nil, false
		}
		sliceChannels(xg.Data, x.Data, xRows, p.IC, gi*icg, icg)
		sliceChannels(dyg.Data, dy.Data, dyRows, p.OC, gi*ocg, ocg)
		if _, ok := executeHalfIn(gcfg, ws, xg, dyg, groupSlab(dst, pg.DWShape(), gi), cancel); !ok {
			return nil, false
		}
	}
	return dst, true
}

// forwardGrouped runs the fused forward pass per group: gather the group's
// input channels, run the ungrouped kernel against the group's contiguous
// filter slab, scatter its output channels back.
func forwardGrouped(p conv.Params, x, w *tensor.Float32) (*tensor.Float32, error) {
	g, icg, ocg := p.G(), p.ICG(), p.OCG()
	pg := p
	pg.IC, pg.OC, pg.Groups = icg, ocg, 0
	xRows := p.N * p.IH * p.IW
	yRows := p.N * p.OH() * p.OW()
	xg := &tensor.Float32{Shape: pg.XShape(), Data: make([]float32, xRows*icg)}
	y := tensor.NewFloat32(p.DYShape())
	slab := pg.DWShape()
	for gi := 0; gi < g; gi++ {
		sliceChannels(xg.Data, x.Data, xRows, p.IC, gi*icg, icg)
		yg, err := Forward(pg, xg, groupSlab(w, slab, gi))
		if err != nil {
			return nil, err
		}
		scatterChannels(y.Data, yg.Data, yRows, p.OC, gi*ocg, ocg)
	}
	return y, nil
}
