package core

import (
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"winrs/internal/conv"
	"winrs/internal/fp16"
	"winrs/internal/obs"
	"winrs/internal/tensor"
	"winrs/internal/winograd"
)

// Execute runs the configured FP32 WinRS plan: every segment executes the
// fully-fused Ω_α(n,r) kernel into its own ∇W bucket, and the buckets are
// reduced with Kahan summation. Work units (segment × f_h × width-tile)
// map to goroutines the way block groups map to SMs; no two units touch
// the same accumulator, so the execution is lock-free. Each call allocates
// fresh buckets and a fresh result; see ExecuteIn for the reusing variant.
func Execute(cfg *Config, x, dy *tensor.Float32) *tensor.Float32 {
	return ExecuteIn(cfg, nil, x, dy, nil)
}

// ExecuteHalf runs the FP16 Tensor-Core path: transforms computed in FP32
// and rounded to binary16 ("SMEM storage"), EWM products of binary16 values
// accumulated in FP32 (the MMA contract), output transform in FP32 with
// the eq. (7) scaling matrices for α = 16 kernels. Buckets and the Kahan
// reduction stay FP32.
func ExecuteHalf(cfg *Config, x, dy *tensor.Half) *tensor.Float32 {
	return ExecuteHalfIn(cfg, nil, x, dy, nil)
}

// unitOffsets builds the prefix table of per-segment work-unit counts:
// entry i is the first global unit index of segment i, and the final entry
// is the total unit count. Segment si contributes F_H·(F_W/r_si) units.
func unitOffsets(fw, fh int, segs []Segment) []int {
	off := make([]int, len(segs)+1)
	for i, seg := range segs {
		off[i+1] = off[i] + fh*(fw/seg.K.N)
	}
	return off
}

// schedule returns the unit prefix table and total unit count for cfg,
// deriving them locally for hand-built configs (tests).
func schedule(cfg *Config) ([]int, int) {
	off := cfg.unitOff
	if off == nil {
		off = unitOffsets(cfg.Params.FW, cfg.Params.FH, cfg.Segments)
	}
	return off, off[len(off)-1]
}

// runsSerial reports whether executions of cfg run every work unit on the
// calling goroutine (a single unit, or a single-CPU process). Callers use
// it to pick runSegmentsInline, whose unit closure never escapes.
func runsSerial(cfg *Config) bool {
	_, total := schedule(cfg)
	return total <= 1 || runtime.GOMAXPROCS(0) <= 1
}

// runSegmentsInline is the single-worker unit loop as its own function:
// with no goroutine literal in the call graph the unit closure does not
// escape, so the serial steady-state execution allocates nothing at all
// (the property TestObservabilityAllocsPinned pins).
func runSegmentsInline(cfg *Config, unit func(si int, seg Segment, fh, j int)) {
	off, total := schedule(cfg)
	fw := cfg.Params.FW
	for i, si := 0, 0; i < total; i++ {
		for i >= off[si+1] {
			si++
		}
		seg := cfg.Segments[si]
		jTiles := fw / seg.K.N
		local := i - off[si]
		unit(si, seg, local/jTiles, local%jTiles)
	}
}

// runSegments schedules every (segment, f_h, width-tile) unit onto a worker
// pool. Workers pull unit indices from a shared atomic counter (work
// stealing degenerates to striding), so scheduling allocates no task list —
// only the fixed goroutine bookkeeping. Results are order-independent:
// units write disjoint bucket regions and the reduction is sequential.
func runSegments(cfg *Config, unit func(si int, seg Segment, fh, j int)) {
	off, total := schedule(cfg)
	if total == 0 {
		return
	}
	fw := cfg.Params.FW
	// run executes global unit i, which belongs to segment si.
	run := func(i, si int) {
		seg := cfg.Segments[si]
		jTiles := fw / seg.K.N
		local := i - off[si]
		unit(si, seg, local/jTiles, local%jTiles)
	}
	workers := runtime.GOMAXPROCS(0)
	if workers > total {
		workers = total
	}
	if workers <= 1 {
		for i, si := 0, 0; i < total; i++ {
			for i >= off[si+1] {
				si++
			}
			run(i, si)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			si := 0
			for {
				i := int(next.Add(1)) - 1
				if i >= total {
					return
				}
				for i >= off[si+1] { // i only grows, so si scans forward
					si++
				}
				run(i, si)
			}
		}()
	}
	wg.Wait()
}

// tile32Unit runs one FP32 fused unit, recording its stage durations when
// traceOn. A top-level function (not a closure) so the trace scratch stays
// on the stack and the disabled path is branch-only.
func tile32Unit(p conv.Params, seg Segment, fh, j int, x, dy *tensor.Float32, bucket []float32, traceOn bool) {
	if !traceOn {
		segmentTile32(p, seg, fh, j, x, dy, bucket, nil)
		return
	}
	var ut obs.UnitTimes
	t0 := time.Now()
	segmentTile32(p, seg, fh, j, x, dy, bucket, &ut)
	obs.RecordUnit(time.Since(t0), ut)
}

// tileHalfUnit is tile32Unit for the FP16 path.
func tileHalfUnit(p conv.Params, seg Segment, fh, j int, x, dy *tensor.Half, bucket []float32, traceOn bool) {
	if !traceOn {
		segmentTileHalf(p, seg, fh, j, x, dy, bucket, nil)
		return
	}
	var ut obs.UnitTimes
	t0 := time.Now()
	segmentTileHalf(p, seg, fh, j, x, dy, bucket, &ut)
	obs.RecordUnit(time.Since(t0), ut)
}

// segmentTile32 executes the fused FP32 kernel for one (segment, f_h,
// width-tile) unit: it produces the ∇W rows [j·n, (j+1)·n) at height f_h
// for all (oc, ic), accumulating the EWM over the segment's rows, units and
// the batch.
//
// Per inner unit the four fused stages appear in order: dimension reduction
// (the row loop), filter split (the ow0 loop), Winograd transforms + the
// α-batched outer-product "GEMM", and the final output transform.
//
// ut, when non-nil, accumulates the intra-unit transform and EWM durations
// for the observability layer; the nil path adds only predictable
// never-taken branches.
func segmentTile32(p conv.Params, seg Segment, fh, j int, x, dy *tensor.Float32, bucket []float32, ut *obs.UnitTimes) {
	k := seg.K
	// Balanced transforms keep FP32 cancellation in the paper's accuracy
	// band for the α = 16 kernels; the symmetric panel plans implement the
	// Figure 8 transform simplification (shared ± products).
	tr := k.Transform().Balanced()
	gPlan, dtPlan := tr.PanelPlans()
	n, r, alpha := tr.N, tr.R, tr.Alpha
	oc, ic := p.OC, p.IC

	s := getTileScratch()
	defer putTileScratch(s)
	// Accumulators v[α][OC][IC] (the register tile of Algorithm 3).
	v := growF32Zero(&s.v, alpha*oc*ic)
	wRaw := growF32(&s.wRaw, r*oc)      // gathered ∇Y unit, [r][OC]
	wHat := growF32(&s.wHatF, alpha*oc) // G·W, [α][OC]
	xRaw := growF32(&s.xRaw, alpha*ic)  // gathered X tile, [α][IC]
	xHat := growF32(&s.xHatF, alpha*ic) // Dᵀ·X, [α][IC]
	colBase := j * n

	for oh := seg.Row0; oh < seg.Row1; oh++ {
		ih := oh + fh - p.PH
		if ih < 0 || ih >= p.IH {
			continue // height-axis clipping (Figure 7)
		}
		for ow0 := seg.Col0; ow0 < seg.Col1; ow0 += r {
			for nb := 0; nb < p.N; nb++ {
				var t0 time.Time
				if ut != nil {
					t0 = time.Now()
				}
				// Gather + filter transform: Ŵ = G·W.
				for u := 0; u < r; u++ {
					base := dy.Shape.Index(nb, oh, ow0+u, 0)
					copy(wRaw[u*oc:(u+1)*oc], dy.Data[base:base+oc])
				}
				gPlan.MulPanel(wRaw, wHat, r, oc)
				// Gather (with implicit width zero padding) + input
				// transform: X̂ = Dᵀ·X.
				for u := 0; u < alpha; u++ {
					iw := ow0 + colBase + u - p.PW
					dst := xRaw[u*ic : (u+1)*ic]
					if iw < 0 || iw >= p.IW {
						for i := range dst {
							dst[i] = 0
						}
						continue
					}
					base := x.Shape.Index(nb, ih, iw, 0)
					copy(dst, x.Data[base:base+ic])
				}
				dtPlan.MulPanel(xRaw, xHat, alpha, ic)
				if ut != nil {
					now := time.Now()
					ut.Transform += now.Sub(t0)
					t0 = now
				}
				// α-batched outer products: v[e] += Ŵ[e] ⊗ X̂[e].
				for e := 0; e < alpha; e++ {
					we := wHat[e*oc : (e+1)*oc]
					xe := xHat[e*ic : (e+1)*ic]
					ve := v[e*oc*ic : (e+1)*oc*ic]
					for a, wv := range we {
						if wv == 0 {
							continue
						}
						row := ve[a*ic : (a+1)*ic]
						for b, xv := range xe {
							row[b] += wv * xv
						}
					}
				}
				if ut != nil {
					ut.EWM += time.Since(t0)
				}
			}
		}
	}

	// Output transform: y = Aᵀ·v[:, oc, ic], written into the bucket.
	writeOutput(p, tr.A, v, bucket, fh, colBase, n, alpha, oc, ic, growF32(&s.acc, alpha))
}

// segmentTileHalf is the FP16 variant of segmentTile32 (see ExecuteHalf).
func segmentTileHalf(p conv.Params, seg Segment, fh, j int, x, dy *tensor.Half, bucket []float32, ut *obs.UnitTimes) {
	k := seg.K
	tr := k.Transform()
	// Balanced transforms for the small-α kernels; for α ≥ 16 the eq. (7)
	// scaling matrices (unit-L1 G rows and Dᵀ rows) keep the transformed
	// binary16 values inside the half-precision dynamic range.
	bal := tr.Balanced()
	gMat, dMat, aMat := bal.G, bal.D, bal.A
	if tr.Alpha >= 16 {
		sc := tr.Scaled()
		gMat, dMat, aMat = sc.G, sc.D, sc.A
	}
	n, r, alpha := tr.N, tr.R, tr.Alpha
	oc, ic := p.OC, p.IC

	s := getTileScratch()
	defer putTileScratch(s)
	v := growF32Zero(&s.v, alpha*oc*ic)
	wRaw := growF32(&s.wRaw, r*oc)
	wHatF := growF32(&s.wHatF, alpha*oc)
	wHat := growHalf(&s.wHat, alpha*oc)
	xRaw := growF32(&s.xRaw, alpha*ic)
	xHatF := growF32(&s.xHatF, alpha*ic)
	xHat := growHalf(&s.xHat, alpha*ic)
	colBase := j * n

	for oh := seg.Row0; oh < seg.Row1; oh++ {
		ih := oh + fh - p.PH
		if ih < 0 || ih >= p.IH {
			continue
		}
		for ow0 := seg.Col0; ow0 < seg.Col1; ow0 += r {
			for nb := 0; nb < p.N; nb++ {
				var t0 time.Time
				if ut != nil {
					t0 = time.Now()
				}
				for u := 0; u < r; u++ {
					base := dy.Shape.Index(nb, oh, ow0+u, 0)
					dst := wRaw[u*oc : (u+1)*oc]
					for c := 0; c < oc; c++ {
						dst[c] = fp16.ToFloat32(dy.Data[base+c])
					}
				}
				// Mixed-precision FT: FP32 transform, binary16 storage.
				matMulF32(gMat, wRaw, wHatF, r, oc)
				for i, vv := range wHatF {
					wHat[i] = fp16.FromFloat32(vv)
				}
				for u := 0; u < alpha; u++ {
					iw := ow0 + colBase + u - p.PW
					dst := xRaw[u*ic : (u+1)*ic]
					if iw < 0 || iw >= p.IW {
						for i := range dst {
							dst[i] = 0
						}
						continue
					}
					base := x.Shape.Index(nb, ih, iw, 0)
					for c := 0; c < ic; c++ {
						dst[c] = fp16.ToFloat32(x.Data[base+c])
					}
				}
				matTMulF32(dMat, xRaw, xHatF, alpha, ic)
				for i, vv := range xHatF {
					xHat[i] = fp16.FromFloat32(vv)
				}
				if ut != nil {
					now := time.Now()
					ut.Transform += now.Sub(t0)
					t0 = now
				}
				// Tensor-Core EWM: binary16 operands, FP32 accumulate.
				for e := 0; e < alpha; e++ {
					we := wHat[e*oc : (e+1)*oc]
					xe := xHat[e*ic : (e+1)*ic]
					ve := v[e*oc*ic : (e+1)*oc*ic]
					for a, wb := range we {
						wv := fp16.ToFloat32(wb)
						if wv == 0 {
							continue
						}
						row := ve[a*ic : (a+1)*ic]
						for b, xb := range xe {
							row[b] += wv * fp16.ToFloat32(xb)
						}
					}
				}
				if ut != nil {
					ut.EWM += time.Since(t0)
				}
			}
		}
	}
	writeOutput(p, aMat, v, bucket, fh, colBase, n, alpha, oc, ic, growF32(&s.acc, alpha))
}

// writeOutput applies the FP32 output transform Aᵀ to the accumulators and
// adds the n output columns into the bucket at (·, fh, colBase…, ·). acc is
// α-length scratch for the per-(oc,ic) accumulator column.
func writeOutput(p conv.Params, aMat *winograd.Mat, v []float32, bucket []float32,
	fh, colBase, n, alpha, oc, ic int, acc []float32) {
	dwShape := p.DWShape()
	for a := 0; a < oc; a++ {
		for b := 0; b < ic; b++ {
			for e := 0; e < alpha; e++ {
				acc[e] = v[(e*oc+a)*ic+b]
			}
			for i := 0; i < n; i++ {
				var s float32
				for e := 0; e < alpha; e++ {
					s += float32(aMat.At(e, i)) * acc[e]
				}
				idx := dwShape.Index(a, fh, colBase+i, b)
				bucket[idx] += s
			}
		}
	}
}

// matMulF32 computes out = m·in for in laid out [m.Cols][width] and out
// [m.Rows][width], in float32.
func matMulF32(m *winograd.Mat, in, out []float32, rows, width int) {
	if rows != m.Cols {
		panic("core: matMulF32 dimension mismatch")
	}
	for i := 0; i < m.Rows; i++ {
		dst := out[i*width : (i+1)*width]
		for x := range dst {
			dst[x] = 0
		}
		for k := 0; k < rows; k++ {
			c := float32(m.At(i, k))
			if c == 0 {
				continue
			}
			src := in[k*width : (k+1)*width]
			for x, sv := range src {
				dst[x] += c * sv
			}
		}
	}
}

// matTMulF32 computes out = mᵀ·in for in laid out [m.Rows][width] and out
// [m.Cols][width], in float32.
func matTMulF32(m *winograd.Mat, in, out []float32, rows, width int) {
	if rows != m.Rows {
		panic("core: matTMulF32 dimension mismatch")
	}
	for i := 0; i < m.Cols; i++ {
		dst := out[i*width : (i+1)*width]
		for x := range dst {
			dst[x] = 0
		}
	}
	for k := 0; k < rows; k++ {
		src := in[k*width : (k+1)*width]
		for i := 0; i < m.Cols; i++ {
			c := float32(m.At(k, i))
			if c == 0 {
				continue
			}
			dst := out[i*width : (i+1)*width]
			for x, sv := range src {
				dst[x] += c * sv
			}
		}
	}
}

// BackwardFilter is the one-call convenience API: configure and execute in
// FP32.
func BackwardFilter(p conv.Params, x, dy *tensor.Float32, opts ...Option) (*tensor.Float32, error) {
	cfg, err := Configure(p, opts...)
	if err != nil {
		return nil, err
	}
	return Execute(cfg, x, dy), nil
}

// BackwardFilterHalf is the one-call FP16 path.
func BackwardFilterHalf(p conv.Params, x, dy *tensor.Half, opts ...Option) (*tensor.Float32, error) {
	opts = append(opts, WithFP16())
	cfg, err := Configure(p, opts...)
	if err != nil {
		return nil, err
	}
	return ExecuteHalf(cfg, x, dy), nil
}
