package core

import (
	"time"

	"winrs/internal/conv"
	"winrs/internal/fp16"
	"winrs/internal/obs"
	"winrs/internal/sched"
	"winrs/internal/tensor"
	"winrs/internal/winograd"
)

// Execute runs the configured FP32 WinRS plan: a pre-pass gathers and
// transforms every ∇Y unit once into the workspace's Ŵ cache, every
// segment then executes the fused Ω_α(n,r) kernel into its own ∇W bucket,
// and the buckets are reduced with Kahan summation. Work units
// (segment × f_h × width-tile) schedule onto the persistent sched pool
// the way block groups map to SMs; no two units touch the same
// accumulator, so the execution is lock-free. Each call allocates fresh
// buckets and a fresh result; see ExecuteIn for the reusing variant.
func Execute(cfg *Config, x, dy *tensor.Float32) *tensor.Float32 {
	return ExecuteIn(cfg, nil, x, dy, nil)
}

// ExecuteHalf runs the FP16 Tensor-Core path: transforms computed in FP32
// and rounded to binary16 ("SMEM storage"), EWM products of binary16 values
// accumulated in FP32 (the MMA contract), output transform in FP32 with
// the eq. (7) scaling matrices for α = 16 kernels. Buckets and the Kahan
// reduction stay FP32.
func ExecuteHalf(cfg *Config, x, dy *tensor.Half) *tensor.Float32 {
	return ExecuteHalfIn(cfg, nil, x, dy, nil)
}

// unitOffsets builds the prefix table of per-segment work-unit counts:
// entry i is the first global unit index of segment i, and the final entry
// is the total unit count. Segment si contributes F_H·(F_W/r_si) units.
func unitOffsets(fw, fh int, segs []Segment) []int {
	off := make([]int, len(segs)+1)
	for i, seg := range segs {
		off[i+1] = off[i] + fh*(fw/seg.K.N)
	}
	return off
}

// schedule returns the unit prefix table and total unit count for cfg,
// deriving them locally for hand-built configs (tests).
func schedule(cfg *Config) ([]int, int) {
	off := cfg.unitOff
	if off == nil {
		off = unitOffsets(cfg.Params.FW, cfg.Params.FH, cfg.Segments)
	}
	return off, off[len(off)-1]
}

// testPool, when non-nil, overrides the shared scheduling pool; the
// pool-vs-inline determinism tests inject widths the host machine does
// not have. Production always runs on sched.Default().
var testPool *sched.Pool

// execPool returns the worker pool every execution path schedules onto.
// One process-wide pool means concurrent callers (the serving runtime's
// request workers, parallel trainers) co-schedule on GOMAXPROCS workers
// instead of oversubscribing the machine with per-call goroutine sets.
func execPool() *sched.Pool {
	if testPool != nil {
		return testPool
	}
	return sched.Default()
}

// runUnitsFunc schedules every (segment, f_h, width-tile) unit of cfg onto
// the shared pool via a closure — the convenience form used by the
// quantized path (the FP32/FP16 hot paths use the Workspace's pooled
// execJob instead, which boxes nothing).
func runUnitsFunc(cfg *Config, unit func(si int, seg Segment, fh, j int)) {
	off, total := schedule(cfg)
	fw := cfg.Params.FW
	execPool().RunFunc(total, 0, func(lo, hi int) {
		si := 0
		for i := lo; i < hi; i++ {
			for i >= off[si+1] {
				si++ // i only grows, so si scans forward
			}
			seg := cfg.Segments[si]
			jTiles := fw / seg.K.N
			local := i - off[si]
			unit(si, seg, local/jTiles, local%jTiles)
		}
	})
}

// execJob is the pooled unit-grid task of one ExecuteIn/ExecuteHalfIn
// call. It lives inside the Workspace so the steady-state dispatch
// allocates nothing: the fields are rewritten per call and the same
// *execJob is handed to the sched pool as a Task.
type execJob struct {
	cfg       *Config
	ws        *Workspace
	x32, dy32 *tensor.Float32
	x16, dy16 *tensor.Half
	half      bool
	resident  bool // FP16 decoded-operand mode (see fp16Resident)
	traceOn   bool
}

// Run executes global units [lo, hi) — the sched.Task contract.
func (j *execJob) Run(lo, hi int) {
	cfg, ws := j.cfg, j.ws
	off := ws.unitOff
	fw := cfg.Params.FW
	si := 0
	for i := lo; i < hi; i++ {
		for i >= off[si+1] {
			si++
		}
		seg := cfg.Segments[si]
		jTiles := fw / seg.K.N
		local := i - off[si]
		fh, jt := local/jTiles, local%jTiles
		switch {
		case j.half && j.resident:
			what := ws.what32[ws.whatOff[si]:ws.whatOff[si+1]]
			tileHalfResUnit(cfg.Params, seg, fh, jt, j.x16, ws.xDec, what, ws.buckets[si], j.traceOn)
		case j.half:
			what := ws.what16[ws.whatOff[si]:ws.whatOff[si+1]]
			tileHalfUnit(cfg.Params, seg, fh, jt, j.x16, what, ws.buckets[si], j.traceOn)
		default:
			what := ws.what32[ws.whatOff[si]:ws.whatOff[si+1]]
			tile32Unit(cfg.Params, seg, fh, jt, j.x32, what, ws.buckets[si], j.traceOn)
		}
	}
}

// fillJob is the pooled Ŵ-cache pre-pass task: items are global segment
// rows (prefix table ws.rowOff), and each item gathers + filter-transforms
// every (width-tile, batch) ∇Y unit of that row into the cache. Like
// execJob it is embedded in the Workspace and reused across calls.
type fillJob struct {
	cfg      *Config
	ws       *Workspace
	dy32     *tensor.Float32
	dy16     *tensor.Half
	half     bool
	resident bool
}

// Run fills global segment rows [lo, hi).
func (f *fillJob) Run(lo, hi int) {
	cfg, ws := f.cfg, f.ws
	p := cfg.Params
	s := getTileScratch()
	defer putTileScratch(s)

	si := 0
	for i := lo; i < hi; i++ {
		for i >= ws.rowOff[si+1] {
			si++
		}
		seg := cfg.Segments[si]
		oh := seg.Row0 + (i - ws.rowOff[si])
		switch {
		case f.half && f.resident:
			fillRowHalfRes(p, seg, oh, f.dy16, ws.dyDec, s,
				ws.what32[ws.whatOff[si]:ws.whatOff[si+1]])
		case f.half:
			fillRowHalf(p, seg, oh, f.dy16, s,
				ws.what16[ws.whatOff[si]:ws.whatOff[si+1]])
		default:
			fillRow32(p, seg, oh, f.dy32,
				ws.what32[ws.whatOff[si]:ws.whatOff[si+1]])
		}
	}
}

// fillRow32 computes the FP32 Ŵ panels of one segment row: for every
// width tile and batch image, gather the r-wide ∇Y unit and apply the
// filter transform Ŵ = G·W directly into the cache slot. These values are
// what the pre-restructuring kernel recomputed F_H·(F_W/n) times per
// (oh, ow0, nb); computing them exactly once here keeps the execution
// bit-identical while amortizing the transform.
func fillRow32(p conv.Params, seg Segment, oh int, dy *tensor.Float32,
	what []float32) {
	tr := seg.K.Transform().Balanced()
	gPlan, _ := tr.PanelPlans()
	r, alpha, oc := tr.R, tr.Alpha, p.OC
	entry := alpha * oc
	tiles := seg.Cols() / r
	rowBase := (oh - seg.Row0) * tiles

	for t, ow0 := 0, seg.Col0; ow0 < seg.Col1; t, ow0 = t+1, ow0+r {
		for nb := 0; nb < p.N; nb++ {
			// In the (N,H,W,C) layout the r unit rows are one contiguous
			// [r][O_C] block — ∇Y is unpadded and segments tile O_W exactly,
			// so the unit never clips. Transform straight from the tensor;
			// the gather copy the pre-tier code paid per unit is free.
			base := dy.Shape.Index(nb, oh, ow0, 0)
			dst := what[((rowBase+t)*p.N+nb)*entry:]
			gPlan.MulPanel(dy.Data[base:base+r*oc], dst[:entry], r, oc)
		}
	}
}

// halfMats returns the transform matrices of the FP16 path: balanced for
// the small-α kernels, the eq. (7) scaling matrices for α ≥ 16 (unit-L1 G
// and Dᵀ rows keep transformed binary16 values in dynamic range).
func halfMats(tr *winograd.Transform) (g, d, a *winograd.Mat) {
	bal := tr.Balanced()
	g, d, a = bal.G, bal.D, bal.A
	if tr.Alpha >= 16 {
		sc := tr.Scaled()
		g, d, a = sc.G, sc.D, sc.A
	}
	return g, d, a
}

// fillRowHalf is fillRow32 for the FP16 path: mixed-precision filter
// transform (FP32 arithmetic, binary16 storage) into the half-width cache.
// The gathered ∇Y rows bulk-decode through the binary16 LUT into the
// workspace scratch and the transformed panel bulk-encodes into the cache
// — both kernels are bit-identical to the scalar codec, so the cache
// contents are unchanged.
func fillRowHalf(p conv.Params, seg Segment, oh int, dy *tensor.Half,
	s *tileScratch, what []fp16.Bits) {
	tr := seg.K.Transform()
	gMat, _, _ := halfMats(tr)
	r, alpha, oc := tr.R, tr.Alpha, p.OC
	wRaw := growF32(&s.wRaw, r*oc)
	wHatF := growF32(&s.wHatF, alpha*oc)
	entry := alpha * oc
	tiles := seg.Cols() / r
	rowBase := (oh - seg.Row0) * tiles

	for t, ow0 := 0, seg.Col0; ow0 < seg.Col1; t, ow0 = t+1, ow0+r {
		for nb := 0; nb < p.N; nb++ {
			for u := 0; u < r; u++ {
				base := dy.Shape.Index(nb, oh, ow0+u, 0)
				fp16.DecodeSlice(wRaw[u*oc:(u+1)*oc], dy.Data[base:base+oc])
			}
			matMulF32(gMat, wRaw, wHatF, r, oc)
			dst := what[((rowBase+t)*p.N+nb)*entry:]
			fp16.EncodeSlice(dst[:entry], wHatF)
		}
	}
}

// fillRowHalfRes is the decoded-operand variant of fillRowHalf: the ∇Y
// unit reads straight from the bulk-decoded dyDec mirror (one contiguous
// [r][O_C] block, like fillRow32), and the transformed panel is rounded
// through binary16 while being stored in float32 form (fp16.RoundInto).
// Cache values are bit-identical to decode(encode(panel)), so every
// execution-side use skips the per-unit decode without changing a bit.
func fillRowHalfRes(p conv.Params, seg Segment, oh int, dy *tensor.Half,
	dyDec []float32, s *tileScratch, what []float32) {
	tr := seg.K.Transform()
	gMat, _, _ := halfMats(tr)
	r, alpha, oc := tr.R, tr.Alpha, p.OC
	wHatF := growF32(&s.wHatF, alpha*oc)
	entry := alpha * oc
	tiles := seg.Cols() / r
	rowBase := (oh - seg.Row0) * tiles

	for t, ow0 := 0, seg.Col0; ow0 < seg.Col1; t, ow0 = t+1, ow0+r {
		for nb := 0; nb < p.N; nb++ {
			base := dy.Shape.Index(nb, oh, ow0, 0)
			matMulF32(gMat, dyDec[base:base+r*oc], wHatF, r, oc)
			dst := what[((rowBase+t)*p.N+nb)*entry:]
			fp16.RoundInto(dst[:entry], wHatF)
		}
	}
}

// traceSampleEvery is the 1-in-N sampling stride of the intra-unit stage
// timers: with tracing on, only every N-th (oh, ow0, nb) iteration is
// timed and the sampled durations are scaled by the realized iteration/
// sample ratio, so -trace no longer pays two time.Now() calls per inner
// iteration — the overhead that used to perturb the very stage shares it
// reports. Power of two so the sample test is a mask.
const traceSampleEvery = 8

// tile32Unit runs one FP32 fused unit, recording its stage durations when
// traceOn. A top-level function (not a closure) so the trace scratch stays
// on the stack and the disabled path is branch-only.
func tile32Unit(p conv.Params, seg Segment, fh, j int, x *tensor.Float32,
	what []float32, bucket []float32, traceOn bool) {
	if !traceOn {
		segmentTile32(p, seg, fh, j, x, what, bucket, nil)
		return
	}
	var ut obs.UnitTimes
	t0 := time.Now()
	segmentTile32(p, seg, fh, j, x, what, bucket, &ut)
	obs.RecordUnit(time.Since(t0), ut)
}

// tileHalfUnit is tile32Unit for the legacy (codec-per-unit) FP16 path.
func tileHalfUnit(p conv.Params, seg Segment, fh, j int, x *tensor.Half,
	what []fp16.Bits, bucket []float32, traceOn bool) {
	if !traceOn {
		segmentTileHalf(p, seg, fh, j, x, what, bucket, nil)
		return
	}
	var ut obs.UnitTimes
	t0 := time.Now()
	segmentTileHalf(p, seg, fh, j, x, what, bucket, &ut)
	obs.RecordUnit(time.Since(t0), ut)
}

// tileHalfResUnit is tile32Unit for the decoded-operand FP16 path.
func tileHalfResUnit(p conv.Params, seg Segment, fh, j int, x *tensor.Half,
	xDec []float32, what []float32, bucket []float32, traceOn bool) {
	if !traceOn {
		segmentTileHalfRes(p, seg, fh, j, x, xDec, what, bucket, nil)
		return
	}
	var ut obs.UnitTimes
	t0 := time.Now()
	segmentTileHalfRes(p, seg, fh, j, x, xDec, what, bucket, &ut)
	obs.RecordUnit(time.Since(t0), ut)
}

// unitSampler implements the scaled 1-in-N stage timing of one fused
// unit (see traceSampleEvery). The zero value is ready to use; all state
// stays on the caller's stack.
type unitSampler struct {
	iters, samples int
	transform, ewm time.Duration
	t0             time.Time
	sampling       bool
}

// begin starts one inner iteration, arming the timers on sampled ones.
func (u *unitSampler) begin(ut *obs.UnitTimes) {
	u.sampling = ut != nil && u.iters&(traceSampleEvery-1) == 0
	u.iters++
	if u.sampling {
		u.t0 = time.Now()
	}
}

// mark records the transform span of a sampled iteration and re-arms for
// the EWM span.
func (u *unitSampler) mark() {
	if u.sampling {
		now := time.Now()
		u.transform += now.Sub(u.t0)
		u.t0 = now
	}
}

// end closes a sampled iteration's EWM span.
func (u *unitSampler) end() {
	if u.sampling {
		u.ewm += time.Since(u.t0)
		u.samples++
	}
}

// flush scales the sampled spans to the full iteration count and adds
// them to ut.
func (u *unitSampler) flush(ut *obs.UnitTimes) {
	if ut == nil || u.samples == 0 {
		return
	}
	scale := int64(u.iters) / int64(u.samples)
	rem := int64(u.iters) % int64(u.samples)
	ut.Transform += time.Duration(int64(u.transform)*scale + int64(u.transform)*rem/int64(u.samples))
	ut.EWM += time.Duration(int64(u.ewm)*scale + int64(u.ewm)*rem/int64(u.samples))
}

// segmentTile32 executes the fused FP32 kernel for one (segment, f_h,
// width-tile) unit: it produces the ∇W rows [j·n, (j+1)·n) at height f_h
// for all (oc, ic), accumulating the EWM over the segment's rows, units and
// the batch.
//
// The gathered + filter-transformed ∇Y panels (Ŵ, α·O_C each) come from
// the workspace cache filled by the pre-pass — they depend only on
// (oh, ow0, nb), so one fill amortizes across all F_H·(F_W/n) units of the
// segment instead of being recomputed per unit. Per inner iteration the
// remaining fused stages appear in order: X gather + input transform
// X̂ = Dᵀ·X, the register-blocked α-batched outer-product "GEMM", and (per
// unit) the final output transform.
//
// ut, when non-nil, accumulates sampled, scaled intra-unit transform and
// EWM durations for the observability layer; the nil path adds only
// predictable never-taken branches.
func segmentTile32(p conv.Params, seg Segment, fh, j int, x *tensor.Float32,
	what []float32, bucket []float32, ut *obs.UnitTimes) {
	k := seg.K
	// Balanced transforms keep FP32 cancellation in the paper's accuracy
	// band for the α = 16 kernels; the symmetric panel plans implement the
	// Figure 8 transform simplification (shared ± products).
	tr := k.Transform().Balanced()
	_, dtPlan := tr.PanelPlans()
	n, r, alpha := tr.N, tr.R, tr.Alpha
	oc, ic := p.OC, p.IC
	sel := selectEWM(k, false, oc, ic)

	s := getTileScratch()
	defer putTileScratch(s)
	// Accumulators v[α][OC][IC] (the register tile of Algorithm 3).
	v := growF32Zero(&s.v, alpha*oc*ic)
	xRaw := growF32(&s.xRaw, alpha*ic)  // gathered X tile, [α][IC]
	xHat := growF32(&s.xHatF, alpha*ic) // Dᵀ·X, [α][IC]
	colBase := j * n
	entry := alpha * oc
	tiles := seg.Cols() / r

	var smp unitSampler
	var wHat []float32
	// emit multiplies each X̂ row into the accumulators the moment the
	// input transform finalizes it — the fused transform+EWM mode, which
	// consumes rows while they are still cache-hot instead of storing the
	// whole panel and reloading it. Each v element still receives exactly
	// one fused add per e, so fusion is bit-identical to the unfused order.
	// MulPanelEmit never retains the closure, so it stays on the stack.
	emit := func(u, w int) {
		sel.panel(v[u*oc*ic:(u+1)*oc*ic], wHat[u*oc:(u+1)*oc], xHat[u*ic:(u+1)*ic], oc, ic)
		if w >= 0 {
			sel.panel(v[w*oc*ic:(w+1)*oc*ic], wHat[w*oc:(w+1)*oc], xHat[w*ic:(w+1)*ic], oc, ic)
		}
	}
	if !sel.fused {
		emit = nil
	}
	for oh := seg.Row0; oh < seg.Row1; oh++ {
		ih := oh + fh - p.PH
		if ih < 0 || ih >= p.IH {
			continue // height-axis clipping (Figure 7)
		}
		rowBase := (oh - seg.Row0) * tiles
		for t, ow0 := 0, seg.Col0; ow0 < seg.Col1; t, ow0 = t+1, ow0+r {
			for nb := 0; nb < p.N; nb++ {
				smp.begin(ut)
				// Cached Ŵ panel (filled once per (oh, ow0, nb)).
				wHat = what[((rowBase+t)*p.N+nb)*entry:]
				wHat = wHat[:entry]
				// X source: an interior tile is one contiguous [α][I_C]
				// block in the (N,H,W,C) layout and feeds the transform
				// in place; only width-clipped tiles gather through xRaw
				// (with implicit zero padding).
				iw0 := ow0 + colBase - p.PW
				xSrc := xRaw
				if iw0 >= 0 && iw0+alpha <= p.IW {
					base := x.Shape.Index(nb, ih, iw0, 0)
					xSrc = x.Data[base : base+alpha*ic]
				} else {
					for u := 0; u < alpha; u++ {
						iw := iw0 + u
						dst := xRaw[u*ic : (u+1)*ic]
						if iw < 0 || iw >= p.IW {
							for i := range dst {
								dst[i] = 0
							}
							continue
						}
						base := x.Shape.Index(nb, ih, iw, 0)
						copy(dst, x.Data[base:base+ic])
					}
				}
				if emit != nil {
					// Fused: the transform span folds into the EWM share
					// (StageShares stays informational).
					smp.mark()
					dtPlan.MulPanelEmit(xSrc, xHat, alpha, ic, emit)
				} else {
					dtPlan.MulPanel(xSrc, xHat, alpha, ic)
					smp.mark()
					ewmPanelsSel(sel.panel, v, wHat, xHat, alpha, oc, ic)
				}
				smp.end()
			}
		}
	}
	smp.flush(ut)

	// Output transform: y = Aᵀ·v[:, oc, ic], written into the bucket.
	writeOutput(p, tr.A, v, bucket, fh, colBase, n, alpha, oc, ic, growF32(&s.acc, alpha))
}

// segmentTileHalf is the FP16 variant of segmentTile32 (see ExecuteHalf):
// the cached Ŵ panels are binary16 and decoded to FP32 per use (binary16
// → FP32 is exact, so products match the pre-restructuring path bit for
// bit), X̂ is transformed in FP32, rounded to binary16 and decoded back —
// the "SMEM storage" rounding — and the EWM accumulates in FP32.
func segmentTileHalf(p conv.Params, seg Segment, fh, j int, x *tensor.Half,
	what []fp16.Bits, bucket []float32, ut *obs.UnitTimes) {
	k := seg.K
	tr := k.Transform()
	_, dMat, aMat := halfMats(tr)
	n, r, alpha := tr.N, tr.R, tr.Alpha
	oc, ic := p.OC, p.IC

	s := getTileScratch()
	defer putTileScratch(s)
	v := growF32Zero(&s.v, alpha*oc*ic)
	wDec := growF32(&s.wHatF, alpha*oc) // decoded cached Ŵ panel
	xRaw := growF32(&s.xRaw, alpha*ic)
	xHat := growF32(&s.xHatF, alpha*ic)
	colBase := j * n
	entry := alpha * oc
	tiles := seg.Cols() / r

	var smp unitSampler
	for oh := seg.Row0; oh < seg.Row1; oh++ {
		ih := oh + fh - p.PH
		if ih < 0 || ih >= p.IH {
			continue
		}
		rowBase := (oh - seg.Row0) * tiles
		for t, ow0 := 0, seg.Col0; ow0 < seg.Col1; t, ow0 = t+1, ow0+r {
			for nb := 0; nb < p.N; nb++ {
				smp.begin(ut)
				hw := what[((rowBase+t)*p.N+nb)*entry:]
				hw = hw[:entry]
				fp16.DecodeSlice(wDec, hw)
				for u := 0; u < alpha; u++ {
					iw := ow0 + colBase + u - p.PW
					dst := xRaw[u*ic : (u+1)*ic]
					if iw < 0 || iw >= p.IW {
						for i := range dst {
							dst[i] = 0
						}
						continue
					}
					base := x.Shape.Index(nb, ih, iw, 0)
					fp16.DecodeSlice(dst, x.Data[base:base+ic])
				}
				matTMulF32(dMat, xRaw, xHat, alpha, ic)
				// Round to binary16 storage and decode in place: the
				// decoded values are exactly the binary16 operands, so the
				// FP32-accumulated EWM below is the Tensor-Core contract
				// without a per-product conversion.
				fp16.RoundSlice(xHat)
				smp.mark()
				ewmPanels(v, wDec, xHat, alpha, oc, ic)
				smp.end()
			}
		}
	}
	smp.flush(ut)
	writeOutput(p, aMat, v, bucket, fh, colBase, n, alpha, oc, ic, growF32(&s.acc, alpha))
}

// segmentTileHalfRes is the decoded-operand FP16 unit of the kernel tier:
// the Ŵ cache is float32-resident (binary16-rounded values stored already
// decoded, see fillRowHalfRes) and X reads from the bulk-decoded xDec
// mirror, so the per-unit codec work shrinks to the one mandatory X̂ "SMEM
// storage" rounding. Operand values are bit-identical to the codec path:
// binary16 → float32 decoding is exact, and every resident store rounded
// through binary16 on the way in. The fused mode transforms, rounds and
// multiplies one X̂ row at a time — matTMulRowF32 reproduces the panel
// transform's per-row ascending-k accumulation exactly, and rounding is
// element-wise, so the row-at-a-time order changes no bits either.
func segmentTileHalfRes(p conv.Params, seg Segment, fh, j int, x *tensor.Half,
	xDec []float32, what []float32, bucket []float32, ut *obs.UnitTimes) {
	k := seg.K
	tr := k.Transform()
	_, dMat, aMat := halfMats(tr)
	n, r, alpha := tr.N, tr.R, tr.Alpha
	oc, ic := p.OC, p.IC
	sel := selectEWM(k, true, oc, ic)

	s := getTileScratch()
	defer putTileScratch(s)
	v := growF32Zero(&s.v, alpha*oc*ic)
	xRaw := growF32(&s.xRaw, alpha*ic)
	xHat := growF32(&s.xHatF, alpha*ic)
	colBase := j * n
	entry := alpha * oc
	tiles := seg.Cols() / r

	// Depthwise fused tier: hoist Dᵀ into a transposed float32 copy once
	// per unit, so the per-tile row transforms below walk it contiguously
	// instead of paying a strided float64 load + convert per coefficient.
	var dT []float32
	if sel.fused && ic == 1 {
		dT = growF32(&s.dT, alpha*alpha)
		for e := 0; e < alpha; e++ {
			for kk := 0; kk < alpha; kk++ {
				dT[e*alpha+kk] = float32(dMat.At(kk, e))
			}
		}
	}

	var smp unitSampler
	for oh := seg.Row0; oh < seg.Row1; oh++ {
		ih := oh + fh - p.PH
		if ih < 0 || ih >= p.IH {
			continue
		}
		rowBase := (oh - seg.Row0) * tiles
		for t, ow0 := 0, seg.Col0; ow0 < seg.Col1; t, ow0 = t+1, ow0+r {
			for nb := 0; nb < p.N; nb++ {
				smp.begin(ut)
				wHat := what[((rowBase+t)*p.N+nb)*entry:]
				wHat = wHat[:entry]
				iw0 := ow0 + colBase - p.PW
				xSrc := xRaw
				if iw0 >= 0 && iw0+alpha <= p.IW {
					base := x.Shape.Index(nb, ih, iw0, 0)
					xSrc = xDec[base : base+alpha*ic]
				} else {
					for u := 0; u < alpha; u++ {
						iw := iw0 + u
						dst := xRaw[u*ic : (u+1)*ic]
						if iw < 0 || iw >= p.IW {
							for i := range dst {
								dst[i] = 0
							}
							continue
						}
						base := x.Shape.Index(nb, ih, iw, 0)
						copy(dst, xDec[base:base+ic])
					}
				}
				if sel.fused && ic == 1 {
					// Depthwise fused unit: the X̂ row is ONE float, so the
					// row transform collapses to a dot product against a
					// per-unit transposed float32 copy of Dᵀ (same constant
					// conversion, ascending-k order and zero skip as
					// matTMulRowF32), the storage rounding to the scalar
					// fp16.Round, and the EWM to ewmPanelDW1's zero-skipping
					// column sweep — every step bit-identical to the generic
					// calls it replaces, without their per-element call and
					// slice overhead.
					smp.mark()
					for e := 0; e < alpha; e++ {
						var s float32
						for kk, c := range dT[e*alpha : (e+1)*alpha] {
							if c != 0 {
								s += c * xSrc[kk]
							}
						}
						s = fp16.Round(s)
						ve := v[e*oc : (e+1)*oc]
						for a, wv := range wHat[e*oc : (e+1)*oc] {
							if wv != 0 {
								ve[a] += wv * s
							}
						}
					}
				} else if sel.fused {
					smp.mark()
					for e := 0; e < alpha; e++ {
						row := xHat[e*ic : (e+1)*ic]
						matTMulRowF32(dMat, xSrc, row, e, alpha, ic)
						fp16.RoundSlice(row)
						sel.panel(v[e*oc*ic:(e+1)*oc*ic], wHat[e*oc:(e+1)*oc], row, oc, ic)
					}
				} else {
					matTMulF32(dMat, xSrc, xHat, alpha, ic)
					fp16.RoundSlice(xHat)
					smp.mark()
					ewmPanelsSel(sel.panel, v, wHat, xHat, alpha, oc, ic)
				}
				smp.end()
			}
		}
	}
	smp.flush(ut)
	writeOutput(p, aMat, v, bucket, fh, colBase, n, alpha, oc, ic, growF32(&s.acc, alpha))
}

// writeOutput applies the FP32 output transform Aᵀ to the accumulators and
// adds the n output columns into the bucket at (·, fh, colBase…, ·). acc is
// α-length scratch for the per-(oc,ic) accumulator column.
func writeOutput(p conv.Params, aMat *winograd.Mat, v []float32, bucket []float32,
	fh, colBase, n, alpha, oc, ic int, acc []float32) {
	dwShape := p.DWShape()
	for a := 0; a < oc; a++ {
		for b := 0; b < ic; b++ {
			for e := 0; e < alpha; e++ {
				acc[e] = v[(e*oc+a)*ic+b]
			}
			for i := 0; i < n; i++ {
				var s float32
				for e := 0; e < alpha; e++ {
					s += float32(aMat.At(e, i)) * acc[e]
				}
				idx := dwShape.Index(a, fh, colBase+i, b)
				bucket[idx] += s
			}
		}
	}
}

// matMulF32 computes out = m·in for in laid out [m.Cols][width] and out
// [m.Rows][width], in float32.
func matMulF32(m *winograd.Mat, in, out []float32, rows, width int) {
	if rows != m.Cols {
		panic("core: matMulF32 dimension mismatch")
	}
	if width == 1 {
		// Depthwise column shape (the grouped Ŵ fill's O_C/G == 1 panel):
		// scalar accumulators, same ascending-k order and zero skip.
		for i := 0; i < m.Rows; i++ {
			var s float32
			for k := 0; k < rows; k++ {
				if c := float32(m.At(i, k)); c != 0 {
					s += c * in[k]
				}
			}
			out[i] = s
		}
		return
	}
	for i := 0; i < m.Rows; i++ {
		dst := out[i*width : (i+1)*width]
		for x := range dst {
			dst[x] = 0
		}
		for k := 0; k < rows; k++ {
			c := float32(m.At(i, k))
			if c == 0 {
				continue
			}
			src := in[k*width : (k+1)*width]
			for x, sv := range src {
				dst[x] += c * sv
			}
		}
	}
}

// matTMulF32 computes out = mᵀ·in for in laid out [m.Rows][width] and out
// [m.Cols][width], in float32.
func matTMulF32(m *winograd.Mat, in, out []float32, rows, width int) {
	if rows != m.Rows {
		panic("core: matTMulF32 dimension mismatch")
	}
	for i := 0; i < m.Cols; i++ {
		dst := out[i*width : (i+1)*width]
		for x := range dst {
			dst[x] = 0
		}
	}
	for k := 0; k < rows; k++ {
		src := in[k*width : (k+1)*width]
		for i := 0; i < m.Cols; i++ {
			c := float32(m.At(k, i))
			if c == 0 {
				continue
			}
			dst := out[i*width : (i+1)*width]
			for x, sv := range src {
				dst[x] += c * sv
			}
		}
	}
}

// BackwardFilter is the one-call convenience API: configure and execute in
// FP32.
func BackwardFilter(p conv.Params, x, dy *tensor.Float32, opts ...Option) (*tensor.Float32, error) {
	cfg, err := Configure(p, opts...)
	if err != nil {
		return nil, err
	}
	return Execute(cfg, x, dy), nil
}

// BackwardFilterHalf is the one-call FP16 path.
func BackwardFilterHalf(p conv.Params, x, dy *tensor.Half, opts ...Option) (*tensor.Float32, error) {
	// Clone before appending: opts aliases the caller's variadic slice,
	// and appending in place would clobber its backing array when the
	// caller passed a shared slice with spare capacity via opts... .
	opts = append(append([]Option(nil), opts...), WithFP16())
	cfg, err := Configure(p, opts...)
	if err != nil {
		return nil, err
	}
	return ExecuteHalf(cfg, x, dy), nil
}
