package core

import (
	"math/rand"
	"testing"

	"winrs/internal/conv"
	"winrs/internal/tensor"
)

// ExecuteIn with a reused workspace and destination must be bit-identical
// to the allocating Execute path, across repeated reuses.
func TestExecuteInMatchesExecute(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	p := conv.Params{N: 2, IH: 20, IW: 20, FH: 3, FW: 3, IC: 8, OC: 8, PH: 1, PW: 1}
	x64, dy64, _ := randLayer64(rng, p)
	x, dy := x64.ToFloat32(), dy64.ToFloat32()
	cfg, err := Configure(p, WithSegments(4))
	if err != nil {
		t.Fatal(err)
	}
	want := Execute(cfg, x, dy)
	ws := NewWorkspace(cfg)
	if !ws.Fits(cfg) {
		t.Fatal("fresh workspace should fit its config")
	}
	// The arena holds Z buckets; the paper's workspace figure counts the
	// Z−1 extra copies beyond ∇W itself.
	if ws.Bytes() < cfg.WorkspaceBytes() {
		t.Errorf("workspace %d bytes, below config's %d", ws.Bytes(), cfg.WorkspaceBytes())
	}
	dst := tensor.NewFloat32(p.DWShape())
	for step := 0; step < 3; step++ {
		got := ExecuteIn(cfg, ws, x, dy, dst)
		if got != dst {
			t.Fatal("ExecuteIn should return the provided destination")
		}
		for i := range want.Data {
			if got.Data[i] != want.Data[i] {
				t.Fatalf("step %d: pooled path diverged at %d: %v vs %v",
					step, i, got.Data[i], want.Data[i])
			}
		}
	}
	// nil workspace and nil destination allocate fresh ones.
	got := ExecuteIn(cfg, nil, x, dy, nil)
	for i := range want.Data {
		if got.Data[i] != want.Data[i] {
			t.Fatalf("nil-ws path diverged at %d", i)
		}
	}
}

func TestExecuteHalfInMatchesExecuteHalf(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	p := conv.Params{N: 1, IH: 16, IW: 16, FH: 3, FW: 3, IC: 4, OC: 4, PH: 1, PW: 1}
	x64 := tensor.NewFloat64(p.XShape())
	dy64 := tensor.NewFloat64(p.DYShape())
	for i := range x64.Data {
		x64.Data[i] = rng.Float64()
	}
	for i := range dy64.Data {
		dy64.Data[i] = rng.Float64() * 0.01
	}
	xh := x64.ToFloat32().ToHalf()
	dyh := dy64.ToFloat32().ToHalf()
	cfg, err := Configure(p, WithFP16(), WithSegments(3))
	if err != nil {
		t.Fatal(err)
	}
	want := ExecuteHalf(cfg, xh, dyh)
	ws := NewWorkspace(cfg)
	dst := tensor.NewFloat32(p.DWShape())
	for step := 0; step < 3; step++ {
		got := ExecuteHalfIn(cfg, ws, xh, dyh, dst)
		for i := range want.Data {
			if got.Data[i] != want.Data[i] {
				t.Fatalf("step %d: pooled half path diverged at %d", step, i)
			}
		}
	}
}

// A workspace sized for a different configuration must be rejected rather
// than silently corrupting buckets.
func TestExecuteInMisfitWorkspacePanics(t *testing.T) {
	p := conv.Params{N: 1, IH: 12, IW: 12, FH: 3, FW: 3, IC: 2, OC: 2, PH: 1, PW: 1}
	cfgA, err := Configure(p, WithSegments(2))
	if err != nil {
		t.Fatal(err)
	}
	cfgB, err := Configure(p, WithSegments(7))
	if err != nil {
		t.Fatal(err)
	}
	if cfgA.Z() == cfgB.Z() {
		t.Skip("segment counts coincide; no misfit to test")
	}
	x := tensor.NewFloat32(p.XShape())
	dy := tensor.NewFloat32(p.DYShape())
	defer func() {
		if recover() == nil {
			t.Error("expected panic for misfit workspace")
		}
	}()
	ExecuteIn(cfgB, NewWorkspace(cfgA), x, dy, nil)
}

// Steady-state allocations of the fully pooled path: caller-held workspace
// and destination, warm scratch pool. AllocsPerRun runs with GOMAXPROCS=1,
// which drives the serial scheduler — the path a pool-warm server hits per
// worker. Allow a few stray allocations for runtime noise, but the seed
// path's per-call bucket arena (Z−1 slices + result) must be gone.
func TestExecuteInAllocsSteadyState(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are inflated under the race detector")
	}
	rng := rand.New(rand.NewSource(43))
	p := conv.Params{N: 1, IH: 24, IW: 24, FH: 3, FW: 3, IC: 8, OC: 8, PH: 1, PW: 1}
	x64, dy64, _ := randLayer64(rng, p)
	x, dy := x64.ToFloat32(), dy64.ToFloat32()
	cfg, err := Configure(p, WithSegments(6))
	if err != nil {
		t.Fatal(err)
	}
	ws := NewWorkspace(cfg)
	dst := tensor.NewFloat32(p.DWShape())
	ExecuteIn(cfg, ws, x, dy, dst) // warm the scratch pool
	allocs := testing.AllocsPerRun(20, func() {
		ExecuteIn(cfg, ws, x, dy, dst)
	})
	t.Logf("pooled ExecuteIn: %v allocs/run (serial path)", allocs)
	if allocs > 2 {
		t.Errorf("pooled ExecuteIn allocates %v objects/run, want ≤2", allocs)
	}
}

// Seed-style path: fresh buckets and result every call.
func BenchmarkExecuteAlloc(b *testing.B) {
	p := conv.Params{N: 2, IH: 32, IW: 32, FH: 3, FW: 3, IC: 16, OC: 16, PH: 1, PW: 1}
	rng := rand.New(rand.NewSource(2))
	x := tensor.NewFloat32(p.XShape())
	dy := tensor.NewFloat32(p.DYShape())
	x.FillUniform(rng, 0, 1)
	dy.FillUniform(rng, 0, 1)
	cfg, err := Configure(p)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = Execute(cfg, x, dy)
	}
}

// Pooled path: reused workspace and destination.
func BenchmarkExecuteInPooled(b *testing.B) {
	p := conv.Params{N: 2, IH: 32, IW: 32, FH: 3, FW: 3, IC: 16, OC: 16, PH: 1, PW: 1}
	rng := rand.New(rand.NewSource(2))
	x := tensor.NewFloat32(p.XShape())
	dy := tensor.NewFloat32(p.DYShape())
	x.FillUniform(rng, 0, 1)
	dy.FillUniform(rng, 0, 1)
	cfg, err := Configure(p)
	if err != nil {
		b.Fatal(err)
	}
	ws := NewWorkspace(cfg)
	dst := tensor.NewFloat32(p.DWShape())
	ExecuteIn(cfg, ws, x, dy, dst)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = ExecuteIn(cfg, ws, x, dy, dst)
	}
}
