package core

import (
	"math/rand"

	"winrs/internal/winograd"
)

// EWMMicroCell is one EWM-only microbenchmark cell: a closed workload that
// exercises a single kernel-tier variant on one Ω kernel's tile geometry,
// without the surrounding gather, cache or scheduling machinery. winrs-bench
// times the cells into "ewm/<Ω>/<variant>" rows so kernel-tier regressions
// are attributable without a full grid run.
type EWMMicroCell struct {
	Kernel  string // Ω_α(n,r) notation
	Variant string // kernel-tier variant name (matches ewm_kernel values)
	Run     func() // one tile pass (α panels)
}

// EWMMicroCells builds the microbenchmark grid: one hot kernel per α
// family (Ω4(3,2), Ω8(3,6), Ω16(9,8)) × the block shapes, plus
// transform+EWM unfused-vs-fused pairs that isolate the fusion benefit.
// All cells run on O_C = I_C = 16 panels — the register-blocking sweet
// spot the grid shapes exercise.
func EWMMicroCells() []EWMMicroCell {
	const oc, ic = 16, 16
	type nr struct{ n, r int }
	var cells []EWMMicroCell
	for _, kr := range []nr{{3, 2}, {3, 6}, {9, 8}} {
		k, ok := winograd.Lookup(kr.n, kr.r)
		if !ok {
			continue
		}
		alpha := k.Alpha
		rng := rand.New(rand.NewSource(int64(alpha)))
		wHat := make([]float32, alpha*oc)
		xRaw := make([]float32, alpha*ic)
		xHat := make([]float32, alpha*ic)
		v := make([]float32, alpha*oc*ic)
		for i := range wHat {
			wHat[i] = rng.Float32() - 0.5
		}
		for i := range xRaw {
			xRaw[i] = rng.Float32() - 0.5
		}
		copy(xHat, xRaw)
		tr := k.Transform().Balanced()
		_, dtPlan := tr.PanelPlans()
		kn := k.String()
		panelCell := func(variant string, panel ewmPanelFunc) EWMMicroCell {
			return EWMMicroCell{Kernel: kn, Variant: variant, Run: func() {
				ewmPanelsSel(panel, v, wHat, xHat, alpha, oc, ic)
			}}
		}
		emit := func(u, w int) {
			ewmPanel8x8Arch(v[u*oc*ic:(u+1)*oc*ic], wHat[u*oc:(u+1)*oc], xHat[u*ic:(u+1)*ic], oc, ic)
			if w >= 0 {
				ewmPanel8x8Arch(v[w*oc*ic:(w+1)*oc*ic], wHat[w*oc:(w+1)*oc], xHat[w*ic:(w+1)*ic], oc, ic)
			}
		}
		cells = append(cells,
			// Pure EWM: per block shape.
			panelCell("block4x4", ewmPanel),
			panelCell("block8x4", ewmPanel8x4),
			panelCell("block8x8"+ewmArchSuffix, ewmPanel8x8Arch),
			// Transform+EWM, store/reload vs fused: same arithmetic, the
			// delta is exactly the intermediate-panel round trip.
			EWMMicroCell{Kernel: kn, Variant: "xform+block8x8" + ewmArchSuffix, Run: func() {
				dtPlan.MulPanel(xRaw, xHat, alpha, ic)
				ewmPanelsSel(ewmPanel8x8Arch, v, wHat, xHat, alpha, oc, ic)
			}},
			EWMMicroCell{Kernel: kn, Variant: "fused8x8" + ewmArchSuffix, Run: func() {
				dtPlan.MulPanelEmit(xRaw, xHat, alpha, ic, emit)
			}},
		)
	}
	return cells
}
