package core

import (
	"sync"
	"time"

	"winrs/internal/fp16"
	"winrs/internal/kahan"
	"winrs/internal/obs"
	"winrs/internal/sched"
	"winrs/internal/tensor"
)

// Workspace is the reusable scratch arena of one plan: the Z ∇W-sized FP32
// buckets of the paper's partitioning phase plus the Ŵ cache — the
// gathered, filter-transformed ∇Y panels that every fused unit reads (one
// α·O_C panel per (segment row, width tile, batch image), filled once per
// execution and reused across all F_H·(F_W/n) units of a segment).
// Executions through ExecuteIn reuse it across steps, so a steady-state
// caller (the serving runtime's workspace pool, the training Executor)
// pays the allocations once instead of per gradient.
//
// A Workspace is NOT safe for concurrent use; the Config it was built for
// is read-only and may be shared freely.
type Workspace struct {
	z, elems int
	buckets  [][]float32

	// Schedule tables of the bound config: global unit, Ŵ-cache element
	// and global segment-row prefixes per segment. Rebuilt only when the
	// workspace is used with a different *Config (rebind).
	cfg     *Config
	unitOff []int
	whatOff []int
	rowOff  []int

	// Ŵ cache arenas, grown lazily per executed precision (one workspace
	// may serve both ExecuteIn and ExecuteHalfIn). In the decoded-operand
	// FP16 mode (fp16Resident) the Ŵ cache lives in what32 as
	// binary16-rounded float32 values; what16 is used only by the legacy
	// codec-per-unit path.
	what32 []float32
	what16 []fp16.Bits

	// Decoded-operand mirrors of the binary16 inputs (fp16Resident mode):
	// X and ∇Y bulk-decode once per execution, replacing the per-unit
	// row decodes of the legacy path. Grown lazily like the Ŵ arenas.
	xDec, dyDec []float32

	// Channel-sliced operand copies for grouped execution: one group's
	// I_C/G input and O_C/G output-gradient channels gathered contiguously
	// (NHWC keeps channels innermost, so a group slice is a strided
	// row-gather). Reused across the G per-group passes and across
	// executions. Empty for ungrouped plans; the sequential dispatch only —
	// the interleaved dispatch stages through the ring slots below.
	xg32, dyg32 []float32
	xg16, dyg16 []fp16.Bits

	// Interleaved grouped dispatch state (groupedinterleave.go): the
	// bounded ring of in-flight per-group slots — each holding its own
	// buckets, staging slabs and Ŵ cache so groups execute concurrently —
	// and the per-group phase ledger. Grown lazily on the first interleaved
	// execution, then reused. Empty for ungrouped plans or forced
	// sequential dispatch.
	ring   []groupSlot
	gphase []groupPhase

	// Reusable pool tasks: rewritten per call so the steady-state dispatch
	// passes a pointer-to-field as sched.Task without boxing allocations.
	job  execJob
	fill fillJob
	gjob groupJob
}

// groupSlot is one ring entry of the interleaved grouped dispatch: the
// complete per-group arena (Z buckets, staging operands, Ŵ cache) of one
// in-flight group. Groups map to slots round-robin (gi mod ring); the prep
// unit of a group re-zeroes the buckets after the previous occupant's
// reduce retires the slot.
type groupSlot struct {
	x32, dy32   []float32   // FP32 staging (xT/dyT views alias these)
	x16, dy16   []fp16.Bits // legacy FP16 staging
	xDec, dyDec []float32   // resident-FP16 decoded staging
	what32      []float32
	what16      []fp16.Bits
	buckets     [][]float32

	// Pre-bound operand views handed to the fill/tile helpers, so per-unit
	// dispatch allocates nothing. Data aliases the staging slices above; in
	// resident mode the Half views carry only the per-group shape.
	xT, dyT   tensor.Float32
	xTH, dyTH tensor.Half
}

// ensureBuckets sizes the slot's bucket set to z buckets of elems each.
// Contents are unspecified — the prep unit zeroes them before use.
func (s *groupSlot) ensureBuckets(z, elems int) {
	if len(s.buckets) == z && (z == 0 || len(s.buckets[0]) == elems) {
		return
	}
	s.buckets = make([][]float32, z)
	for i := range s.buckets {
		s.buckets[i] = make([]float32, elems)
	}
}

// ensureRing sizes the slot ring to n entries, keeping existing arenas.
func (ws *Workspace) ensureRing(n int) {
	if cap(ws.ring) < n {
		r := make([]groupSlot, n)
		copy(r, ws.ring)
		ws.ring = r
	}
	ws.ring = ws.ring[:n]
}

// NewWorkspace allocates the bucket arena for cfg and binds its schedule
// tables. For a grouped plan the arena is sized for ONE group's ∇W slab —
// the per-group passes share it — which is exactly the shrinkage
// Config.WorkspaceBytes reports.
func NewWorkspace(cfg *Config) *Workspace {
	e := cfg.exec()
	elems := e.Params.DWShape().Elems()
	ws := &Workspace{z: e.Z(), elems: elems, buckets: make([][]float32, e.Z())}
	for i := range ws.buckets {
		ws.buckets[i] = make([]float32, elems)
	}
	ws.rebind(e)
	return ws
}

// rebind (re)derives the schedule tables for cfg. A no-op when the
// workspace already serves this exact config — the steady-state path.
func (ws *Workspace) rebind(cfg *Config) {
	if ws.cfg == cfg {
		return
	}
	ws.cfg = cfg
	off, _ := schedule(cfg)
	ws.unitOff = off
	nseg := len(cfg.Segments)
	if cap(ws.whatOff) < nseg+1 {
		ws.whatOff = make([]int, nseg+1)
		ws.rowOff = make([]int, nseg+1)
	}
	ws.whatOff = ws.whatOff[:nseg+1]
	ws.rowOff = ws.rowOff[:nseg+1]
	for i, seg := range cfg.Segments {
		tiles := seg.Cols() / seg.K.R
		ws.whatOff[i+1] = ws.whatOff[i] +
			seg.Rows()*tiles*cfg.Params.N*seg.K.Alpha*cfg.Params.OC
		ws.rowOff[i+1] = ws.rowOff[i] + seg.Rows()
	}
}

// Fits reports whether the workspace matches cfg's bucket geometry (same
// segment count and gradient size; the per-group geometry for grouped
// plans). Schedule tables rebind automatically.
func (ws *Workspace) Fits(cfg *Config) bool {
	e := cfg.exec()
	return ws != nil && ws.z == e.Z() && ws.elems == e.Params.DWShape().Elems()
}

// Bytes returns the arena footprint: buckets plus whatever Ŵ-cache arenas
// the executed precisions have materialized, plus the interleaved-dispatch
// ring slots when grouped executions grew them. The cache stays within the
// analytic bound documented on Config.WHatCacheBytes.
func (ws *Workspace) Bytes() int64 {
	b := int64(ws.z)*int64(ws.elems)*4 +
		int64(cap(ws.what32))*4 + int64(cap(ws.what16))*2 +
		int64(cap(ws.xDec))*4 + int64(cap(ws.dyDec))*4 +
		int64(cap(ws.xg32))*4 + int64(cap(ws.dyg32))*4 +
		int64(cap(ws.xg16))*2 + int64(cap(ws.dyg16))*2
	for i := range ws.ring {
		s := &ws.ring[i]
		b += int64(len(s.buckets)) * int64(ws.elems) * 4
		b += int64(cap(s.x32)+cap(s.dy32)+cap(s.xDec)+cap(s.dyDec)+cap(s.what32)) * 4
		b += int64(cap(s.x16)+cap(s.dy16)+cap(s.what16)) * 2
	}
	return b
}

func (ws *Workspace) zero() {
	for _, b := range ws.buckets {
		for i := range b {
			b[i] = 0
		}
	}
}

// ensureWorkspace returns a zeroed workspace for cfg: the caller's if it
// fits (rebinding its schedule tables when cfg changed), a fresh one when
// ws is nil.
func ensureWorkspace(cfg *Config, ws *Workspace) *Workspace {
	if ws == nil {
		return NewWorkspace(cfg) // fresh arenas are already zero
	}
	if !ws.Fits(cfg) {
		panic("core: workspace does not fit configuration")
	}
	ws.rebind(cfg)
	ws.zero()
	return ws
}

// reduceInto is phase 3: Kahan-compensated summation of the Z buckets into
// dst (allocated when nil).
func reduceInto(cfg *Config, buckets [][]float32, dst *tensor.Float32) *tensor.Float32 {
	if dst == nil {
		dst = tensor.NewFloat32(cfg.Params.DWShape())
	} else if dst.Shape != cfg.Params.DWShape() {
		panic("core: reduce destination shape mismatch")
	}
	if len(buckets) == 1 {
		copy(dst.Data, buckets[0])
		return dst
	}
	kahan.ReduceBuckets(dst.Data, buckets)
	return dst
}

// fillWHat runs the Ŵ-cache pre-pass over all global segment rows on the
// shared pool, recording it as the what_transform stage when tracing.
func fillWHat(ws *Workspace, traceOn bool, cancel *sched.Batch) {
	total := ws.rowOff[len(ws.rowOff)-1]
	if !traceOn {
		execPool().RunBatch(total, 0, &ws.fill, cancel)
		return
	}
	t0 := time.Now()
	execPool().RunBatch(total, 0, &ws.fill, cancel)
	obs.RecordStage(obs.StageWHat, time.Since(t0))
}

// ExecuteIn runs the configured FP32 plan with caller-provided scratch: ws
// supplies the buckets and Ŵ cache (nil allocates fresh) and dst receives
// the gradient (nil allocates fresh). With both provided, the steady-state
// execution allocates nothing — the serving runtime's zero-allocation hot
// path: the pre-pass and the unit grid both schedule onto the persistent
// sched pool through tasks embedded in the workspace.
//
// When obs.TraceEnabled, the pre-pass records the what_transform stage,
// every fused unit records segment-tile plus sampled transform and EWM
// durations, and the reduction records the reduce stage; the disabled path
// costs one atomic load per call.
func ExecuteIn(cfg *Config, ws *Workspace, x, dy, dst *tensor.Float32) *tensor.Float32 {
	out, _ := executeIn(cfg, ws, x, dy, dst, nil)
	return out
}

// executeIn is ExecuteIn with an optional cancel handle (nil = never
// cancelled, the exact pre-cancellation code path). It reports ok=false
// when cancellation stopped the run; the workspace is then quiescent — no
// pool participant still touches it — but its buckets hold partial sums,
// and no result is produced.
func executeIn(cfg *Config, ws *Workspace, x, dy, dst *tensor.Float32, cancel *sched.Batch) (out *tensor.Float32, ok bool) {
	if cfg.group != nil {
		return executeGroupedIn(cfg, ws, x, dy, dst, cancel)
	}
	p := cfg.Params
	if x.Shape != p.XShape() || dy.Shape != p.DYShape() {
		panic("core: Execute operand shape mismatch")
	}
	ws = ensureWorkspace(cfg, ws)
	traceOn := obs.TraceEnabled()

	growF32(&ws.what32, ws.whatOff[len(ws.whatOff)-1])
	ws.fill = fillJob{cfg: cfg, ws: ws, dy32: dy}
	fillWHat(ws, traceOn, cancel)

	ws.job = execJob{cfg: cfg, ws: ws, x32: x, traceOn: traceOn}
	execPool().RunBatch(ws.unitOff[len(ws.unitOff)-1], 0, &ws.job, cancel)
	ws.job = execJob{}
	ws.fill = fillJob{}
	if cancel.Cancelled() {
		return nil, false
	}
	return reduceTraced(cfg, ws.buckets, dst, traceOn), true
}

// ExecuteHalfIn is ExecuteIn for the emulated FP16 Tensor-Core path.
// Buckets and the reduction stay FP32 (paper §5.2), so the same Workspace
// type serves both precisions; the Ŵ cache is binary16 here.
func ExecuteHalfIn(cfg *Config, ws *Workspace, x, dy *tensor.Half, dst *tensor.Float32) *tensor.Float32 {
	out, _ := executeHalfIn(cfg, ws, x, dy, dst, nil)
	return out
}

// executeHalfIn is executeIn for the FP16 path.
func executeHalfIn(cfg *Config, ws *Workspace, x, dy *tensor.Half, dst *tensor.Float32, cancel *sched.Batch) (out *tensor.Float32, ok bool) {
	if cfg.group != nil {
		return executeGroupedHalfIn(cfg, ws, x, dy, dst, cancel)
	}
	p := cfg.Params
	if x.Shape != p.XShape() || dy.Shape != p.DYShape() {
		panic("core: ExecuteHalf operand shape mismatch")
	}
	ws = ensureWorkspace(cfg, ws)
	traceOn := obs.TraceEnabled()

	resident := fp16Resident
	if resident {
		// Decoded-operand mode: the Ŵ cache is float32-resident and the
		// binary16 inputs bulk-decode once up front (exact, so values
		// match the legacy per-unit decodes bit for bit).
		growF32(&ws.what32, ws.whatOff[len(ws.whatOff)-1])
		fp16.DecodeSlice(growF32(&ws.xDec, len(x.Data)), x.Data)
		fp16.DecodeSlice(growF32(&ws.dyDec, len(dy.Data)), dy.Data)
	} else {
		growHalf(&ws.what16, ws.whatOff[len(ws.whatOff)-1])
	}
	ws.fill = fillJob{cfg: cfg, ws: ws, dy16: dy, half: true, resident: resident}
	fillWHat(ws, traceOn, cancel)

	ws.job = execJob{cfg: cfg, ws: ws, x16: x, half: true, resident: resident, traceOn: traceOn}
	execPool().RunBatch(ws.unitOff[len(ws.unitOff)-1], 0, &ws.job, cancel)
	ws.job = execJob{}
	ws.fill = fillJob{}
	if cancel.Cancelled() {
		return nil, false
	}
	return reduceTraced(cfg, ws.buckets, dst, traceOn), true
}

// reduceTraced runs the Kahan reduction, recording the reduce stage when
// tracing is on.
func reduceTraced(cfg *Config, buckets [][]float32, dst *tensor.Float32, traceOn bool) *tensor.Float32 {
	if !traceOn {
		return reduceInto(cfg, buckets, dst)
	}
	t0 := time.Now()
	out := reduceInto(cfg, buckets, dst)
	obs.RecordStage(obs.StageReduce, time.Since(t0))
	return out
}

// tileScratch holds the per-unit transform scratch of one fused kernel
// invocation: the register tile v, the gather/transform panels and the
// output-transform accumulator. Units borrow it from a process-wide pool so
// steady-state executions allocate no transform scratch at all; the slices
// grow to the largest geometry seen and are then reused as-is.
type tileScratch struct {
	v, wRaw, wHatF, xRaw, xHatF, acc, dT []float32
}

var tileScratchPool = sync.Pool{New: func() any { return new(tileScratch) }}

func getTileScratch() *tileScratch  { return tileScratchPool.Get().(*tileScratch) }
func putTileScratch(s *tileScratch) { tileScratchPool.Put(s) }

// growF32 resizes *buf to length n, reusing its backing array when large
// enough. Contents are unspecified; callers overwrite or zero as needed.
func growF32(buf *[]float32, n int) []float32 {
	if cap(*buf) < n {
		*buf = make([]float32, n)
	}
	*buf = (*buf)[:n]
	return *buf
}

// growF32Zero is growF32 plus zeroing, for accumulators.
func growF32Zero(buf *[]float32, n int) []float32 {
	s := growF32(buf, n)
	for i := range s {
		s[i] = 0
	}
	return s
}

func growHalf(buf *[]fp16.Bits, n int) []fp16.Bits {
	if cap(*buf) < n {
		*buf = make([]fp16.Bits, n)
	}
	*buf = (*buf)[:n]
	return *buf
}
