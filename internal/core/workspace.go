package core

import (
	"sync"
	"time"

	"winrs/internal/fp16"
	"winrs/internal/kahan"
	"winrs/internal/obs"
	"winrs/internal/tensor"
)

// Workspace is the reusable bucket arena of one plan: the Z ∇W-sized FP32
// buckets of the paper's partitioning phase. Executions through ExecuteIn
// reuse it across steps, so a steady-state caller (the serving runtime's
// workspace pool, the training Executor) pays the (Z−1)·|∇W| allocation
// once instead of per gradient.
//
// A Workspace is NOT safe for concurrent use; the Config it was built for
// is read-only and may be shared freely.
type Workspace struct {
	z, elems int
	buckets  [][]float32
}

// NewWorkspace allocates the bucket arena for cfg.
func NewWorkspace(cfg *Config) *Workspace {
	elems := cfg.Params.DWShape().Elems()
	ws := &Workspace{z: cfg.Z(), elems: elems, buckets: make([][]float32, cfg.Z())}
	for i := range ws.buckets {
		ws.buckets[i] = make([]float32, elems)
	}
	return ws
}

// Fits reports whether the workspace matches cfg's bucket geometry (same
// segment count and gradient size).
func (ws *Workspace) Fits(cfg *Config) bool {
	return ws != nil && ws.z == cfg.Z() && ws.elems == cfg.Params.DWShape().Elems()
}

// Bytes returns the arena footprint.
func (ws *Workspace) Bytes() int64 { return int64(ws.z) * int64(ws.elems) * 4 }

func (ws *Workspace) zero() {
	for _, b := range ws.buckets {
		for i := range b {
			b[i] = 0
		}
	}
}

// ensureWorkspace returns a zeroed workspace for cfg: the caller's if it
// fits, a fresh one when ws is nil.
func ensureWorkspace(cfg *Config, ws *Workspace) *Workspace {
	if ws == nil {
		return NewWorkspace(cfg) // fresh arenas are already zero
	}
	if !ws.Fits(cfg) {
		panic("core: workspace does not fit configuration")
	}
	ws.zero()
	return ws
}

// reduceInto is phase 3: Kahan-compensated summation of the Z buckets into
// dst (allocated when nil).
func reduceInto(cfg *Config, buckets [][]float32, dst *tensor.Float32) *tensor.Float32 {
	if dst == nil {
		dst = tensor.NewFloat32(cfg.Params.DWShape())
	} else if dst.Shape != cfg.Params.DWShape() {
		panic("core: reduce destination shape mismatch")
	}
	if len(buckets) == 1 {
		copy(dst.Data, buckets[0])
		return dst
	}
	kahan.ReduceBuckets(dst.Data, buckets)
	return dst
}

// ExecuteIn runs the configured FP32 plan with caller-provided scratch: ws
// supplies the buckets (nil allocates fresh) and dst receives the gradient
// (nil allocates fresh). With both provided, the steady-state execution
// allocates nothing beyond per-call goroutine bookkeeping — the serving
// runtime's zero-allocation hot path.
//
// When obs.TraceEnabled, every fused unit records segment-tile, transform
// and EWM durations and the reduction records the reduce stage; the
// disabled path costs one atomic load per call.
func ExecuteIn(cfg *Config, ws *Workspace, x, dy, dst *tensor.Float32) *tensor.Float32 {
	p := cfg.Params
	if x.Shape != p.XShape() || dy.Shape != p.DYShape() {
		panic("core: Execute operand shape mismatch")
	}
	ws = ensureWorkspace(cfg, ws)
	traceOn := obs.TraceEnabled()
	if runsSerial(cfg) {
		// Distinct closure literal on purpose: runSegmentsInline never leaks
		// it, so this path stays allocation-free.
		runSegmentsInline(cfg, func(si int, seg Segment, fh, j int) {
			tile32Unit(p, seg, fh, j, x, dy, ws.buckets[si], traceOn)
		})
	} else {
		runSegments(cfg, func(si int, seg Segment, fh, j int) {
			tile32Unit(p, seg, fh, j, x, dy, ws.buckets[si], traceOn)
		})
	}
	return reduceTraced(cfg, ws.buckets, dst, traceOn)
}

// ExecuteHalfIn is ExecuteIn for the emulated FP16 Tensor-Core path.
// Buckets and the reduction stay FP32 (paper §5.2), so the same Workspace
// type serves both precisions.
func ExecuteHalfIn(cfg *Config, ws *Workspace, x, dy *tensor.Half, dst *tensor.Float32) *tensor.Float32 {
	p := cfg.Params
	if x.Shape != p.XShape() || dy.Shape != p.DYShape() {
		panic("core: ExecuteHalf operand shape mismatch")
	}
	ws = ensureWorkspace(cfg, ws)
	traceOn := obs.TraceEnabled()
	if runsSerial(cfg) {
		runSegmentsInline(cfg, func(si int, seg Segment, fh, j int) {
			tileHalfUnit(p, seg, fh, j, x, dy, ws.buckets[si], traceOn)
		})
	} else {
		runSegments(cfg, func(si int, seg Segment, fh, j int) {
			tileHalfUnit(p, seg, fh, j, x, dy, ws.buckets[si], traceOn)
		})
	}
	return reduceTraced(cfg, ws.buckets, dst, traceOn)
}

// reduceTraced runs the Kahan reduction, recording the reduce stage when
// tracing is on.
func reduceTraced(cfg *Config, buckets [][]float32, dst *tensor.Float32, traceOn bool) *tensor.Float32 {
	if !traceOn {
		return reduceInto(cfg, buckets, dst)
	}
	t0 := time.Now()
	out := reduceInto(cfg, buckets, dst)
	obs.RecordStage(obs.StageReduce, time.Since(t0))
	return out
}

// tileScratch holds the per-unit transform scratch of one fused kernel
// invocation: the register tile v, the gather/transform panels and the
// output-transform accumulator. Units borrow it from a process-wide pool so
// steady-state executions allocate no transform scratch at all; the slices
// grow to the largest geometry seen and are then reused as-is.
type tileScratch struct {
	v, wRaw, wHatF, xRaw, xHatF, acc []float32
	wHat, xHat                       []fp16.Bits
}

var tileScratchPool = sync.Pool{New: func() any { return new(tileScratch) }}

func getTileScratch() *tileScratch  { return tileScratchPool.Get().(*tileScratch) }
func putTileScratch(s *tileScratch) { tileScratchPool.Put(s) }

// growF32 resizes *buf to length n, reusing its backing array when large
// enough. Contents are unspecified; callers overwrite or zero as needed.
func growF32(buf *[]float32, n int) []float32 {
	if cap(*buf) < n {
		*buf = make([]float32, n)
	}
	*buf = (*buf)[:n]
	return *buf
}

// growF32Zero is growF32 plus zeroing, for accumulators.
func growF32Zero(buf *[]float32, n int) []float32 {
	s := growF32(buf, n)
	for i := range s {
		s[i] = 0
	}
	return s
}

func growHalf(buf *[]fp16.Bits, n int) []fp16.Bits {
	if cap(*buf) < n {
		*buf = make([]fp16.Bits, n)
	}
	*buf = (*buf)[:n]
	return *buf
}
