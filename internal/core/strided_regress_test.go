package core

import (
	"math/rand"
	"reflect"
	"testing"

	"winrs/internal/conv"
	"winrs/internal/fp16"
	"winrs/internal/tensor"
)

// scalarGatherRef is the plain per-column walk that defines X_q: the shared
// production gather (with its s_W = 1 contiguous-run fast path) must be
// bit-identical to it for both element types.
func scalarGatherRef[E any](p conv.StridedParams, pq conv.Params,
	srcShape tensor.Shape, src []E, dstShape tensor.Shape, dst []E, qh, qw int) {
	sh, sw := p.StrideH(), p.StrideW()
	for n := 0; n < p.N; n++ {
		for a := 0; a < pq.IH; a++ {
			ih := sh*a + qh - p.PH
			if ih < 0 || ih >= p.IH {
				continue
			}
			for b := 0; b < pq.IW; b++ {
				iw := sw*b + qw - p.PW
				if iw < 0 || iw >= p.IW {
					continue
				}
				s := srcShape.Index(n, ih, iw, 0)
				d := dstShape.Index(n, a, b, 0)
				copy(dst[d:d+p.IC], src[s:s+p.IC])
			}
		}
	}
}

// The shared generic phase gather must match the scalar walk bit for bit in
// FP32 and binary16, across every phase — including s_W = 1, where the
// contiguous-run fast path replaces the per-column copies.
func TestGatherPhasePlaneMatchesScalarWalk(t *testing.T) {
	cases := []conv.StridedParams{
		{N: 2, IH: 11, IW: 13, FH: 3, FW: 3, IC: 3, OC: 2, PH: 1, PW: 1, SH: 2, SW: 1}, // fast path
		{N: 1, IH: 9, IW: 17, FH: 3, FW: 3, IC: 2, OC: 2, PH: 1, PW: 2, SH: 3, SW: 1},  // fast path, pad > stride
		{N: 1, IH: 12, IW: 12, FH: 5, FW: 5, IC: 4, OC: 2, PH: 2, PW: 2, SH: 2, SW: 2},
		{N: 2, IH: 10, IW: 14, FH: 3, FW: 3, IC: 2, OC: 2, SH: 1, SW: 3},
	}
	rng := rand.New(rand.NewSource(81))
	for _, p := range cases {
		x := tensor.NewFloat32(p.XShape())
		x.FillUniform(rng, -1, 1)
		xh := tensor.NewHalf(p.XShape())
		for i := range xh.Data {
			xh.Data[i] = fp16.Bits(rng.Intn(1<<16) &^ 0x7c00) // finite bit patterns
		}
		for qh := 0; qh < p.StrideH() && qh < p.FH; qh++ {
			for qw := 0; qw < p.StrideW() && qw < p.FW; qw++ {
				pq, _, _ := phaseGeometry(p, qh, qw)
				got := gatherPhaseInput(p, pq, x, qh, qw)
				want := tensor.NewFloat32(pq.XShape())
				scalarGatherRef(p, pq, x.Shape, x.Data, want.Shape, want.Data, qh, qw)
				for i := range want.Data {
					if got.Data[i] != want.Data[i] {
						t.Fatalf("%v phase (%d,%d): fp32 gather differs at %d", p, qh, qw, i)
					}
				}

				gotH := gatherPhaseInputHalf(p, pq, xh, qh, qw)
				wantH := tensor.NewHalf(pq.XShape())
				scalarGatherRef(p, pq, xh.Shape, xh.Data, wantH.Shape, wantH.Data, qh, qw)
				for i := range wantH.Data {
					if gotH.Data[i] != wantH.Data[i] {
						t.Fatalf("%v phase (%d,%d): fp16 gather differs at %d", p, qh, qw, i)
					}
				}
			}
		}
	}
}

// Regression: the FP16 entry points append WithFP16 to the caller's opts.
// Passing a shared slice with spare capacity must not clobber the caller's
// backing array — the append must go to a clone.
func TestHalfEntryPointsDoNotClobberSharedOpts(t *testing.T) {
	backing := make([]Option, 1, 4)
	backing[0] = WithSegments(2)
	backing = append(backing, WithHardware(Hardware{NSM: 64}))
	sentinel := reflect.ValueOf(backing[1]).Pointer()
	shared := backing[:1] // spare capacity: an in-place append would overwrite backing[1]

	p := conv.Params{N: 1, IH: 10, IW: 10, FH: 3, FW: 3, IC: 2, OC: 2, PH: 1, PW: 1}
	x, dy := poolLayer(t, 82, p)
	xh, dyh := x.ToHalf(), dy.ToHalf()
	if _, err := BackwardFilterHalf(p, xh, dyh, shared...); err != nil {
		t.Fatal(err)
	}
	if reflect.ValueOf(backing[1]).Pointer() != sentinel {
		t.Fatal("BackwardFilterHalf clobbered the caller's opts backing array")
	}

	sp := conv.StridedParams{N: 1, IH: 11, IW: 11, FH: 3, FW: 3, IC: 2, OC: 2, PH: 1, PW: 1, SH: 2, SW: 2}
	xs := tensor.NewFloat32(sp.XShape())
	dys := tensor.NewFloat32(sp.DYShape())
	rng := rand.New(rand.NewSource(83))
	xs.FillUniform(rng, 0, 1)
	dys.FillUniform(rng, 0, 1)
	xsh, dysh := xs.ToHalf(), dys.ToHalf()
	a, err := BackwardFilterStridedHalf(sp, xsh, dysh, shared...)
	if err != nil {
		t.Fatal(err)
	}
	if reflect.ValueOf(backing[1]).Pointer() != sentinel {
		t.Fatal("BackwardFilterStridedHalf clobbered the caller's opts backing array")
	}
	// The same shared slice must keep producing identical results.
	b, err := BackwardFilterStridedHalf(sp, xsh, dysh, shared...)
	if err != nil {
		t.Fatal(err)
	}
	equalBits(t, "shared-opts-repeat", b.Data, a.Data)
}
