package core

import (
	"winrs/internal/kahan"
	"winrs/internal/tensor"
)

// Executor owns a configuration plus reusable scratch (the Z gradient
// buckets and the output tensor), so steady-state training loops compute
// gradients without per-step allocations of the workspace. An Executor is
// NOT safe for concurrent use — create one per goroutine; the underlying
// Config is read-only and may be shared.
type Executor struct {
	cfg     *Config
	buckets [][]float32
	out     *tensor.Float32
}

// NewExecutor allocates the scratch for the configuration once.
func NewExecutor(cfg *Config) *Executor {
	elems := cfg.Params.DWShape().Elems()
	e := &Executor{
		cfg:     cfg,
		buckets: make([][]float32, cfg.Z()),
		out:     tensor.NewFloat32(cfg.Params.DWShape()),
	}
	for i := range e.buckets {
		e.buckets[i] = make([]float32, elems)
	}
	return e
}

// Config returns the underlying (read-only) plan.
func (e *Executor) Config() *Config { return e.cfg }

// Execute computes ∇W into the executor's reused output tensor. The
// returned tensor is owned by the executor and overwritten by the next
// call; clone it to retain results across steps.
func (e *Executor) Execute(x, dy *tensor.Float32) *tensor.Float32 {
	p := e.cfg.Params
	if x.Shape != p.XShape() || dy.Shape != p.DYShape() {
		panic("core: Executor.Execute operand shape mismatch")
	}
	for _, b := range e.buckets {
		for i := range b {
			b[i] = 0
		}
	}
	runSegments(e.cfg, func(si int, seg Segment, fh, j int) {
		segmentTile32(p, seg, fh, j, x, dy, e.buckets[si])
	})
	if len(e.buckets) == 1 {
		copy(e.out.Data, e.buckets[0])
		return e.out
	}
	kahan.ReduceBuckets(e.out.Data, e.buckets)
	return e.out
}
