package core

import (
	"winrs/internal/tensor"
)

// Executor owns a configuration plus reusable scratch (a Workspace holding
// the Z gradient buckets, and the output tensor), so steady-state training
// loops compute gradients without per-step allocations of the workspace.
// An Executor is NOT safe for concurrent use — create one per goroutine;
// the underlying Config is read-only and may be shared.
type Executor struct {
	cfg *Config
	ws  *Workspace
	out *tensor.Float32
}

// NewExecutor allocates the scratch for the configuration once.
func NewExecutor(cfg *Config) *Executor {
	return &Executor{
		cfg: cfg,
		ws:  NewWorkspace(cfg),
		out: tensor.NewFloat32(cfg.Params.DWShape()),
	}
}

// Config returns the underlying (read-only) plan.
func (e *Executor) Config() *Config { return e.cfg }

// Execute computes ∇W into the executor's reused output tensor. The
// returned tensor is owned by the executor and overwritten by the next
// call; clone it to retain results across steps.
func (e *Executor) Execute(x, dy *tensor.Float32) *tensor.Float32 {
	return ExecuteIn(e.cfg, e.ws, x, dy, e.out)
}
