package core

import (
	"fmt"

	"winrs/internal/conv"
	"winrs/internal/tensor"
	"winrs/internal/winograd"
)

// This file implements the paper's §8 claim that "with moderate
// modifications, WinRS can support FC and BDC": the same fused 1-D
// Winograd machinery applied to the forward and backward-data passes,
// where filters are small and outputs large (no reduce-split or
// segmentation is needed — standard blocking already saturates the
// device, cf. Figure 2).
//
// For the forward pass the width axis carries the F(n, r=F_W) convolution:
// each output row is produced in n-wide tiles from α-wide input tiles,
// with the transformed filters precomputed once (they are reused by every
// spatial position) and the F_H and I_C axes accumulated in FP32 inside
// the fused loop.

// selectForwardKernel picks the registry kernel with r = F_W and the best
// throughput coefficient.
func selectForwardKernel(fw int) (winograd.Kernel, error) {
	var best winograd.Kernel
	found := false
	for _, k := range winograd.Kernels {
		if k.R != fw {
			continue
		}
		if !found || k.Coeff > best.Coeff {
			best, found = k, true
		}
	}
	if !found {
		if fw >= 1 && fw <= 20 {
			return winograd.DirectKernel(fw), nil
		}
		return winograd.Kernel{}, fmt.Errorf("core: no forward kernel for F_W=%d", fw)
	}
	return best, nil
}

// Forward computes the forward convolution Y = X ⊛ W (W shaped
// O_C×F_H×F_W×I_C) with fused 1-D Winograd along the width axis.
func Forward(p conv.Params, x, w *tensor.Float32) (*tensor.Float32, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if x.Shape != p.XShape() {
		return nil, fmt.Errorf("core: Forward X shape %v, want %v", x.Shape, p.XShape())
	}
	if w.Shape != p.DWShape() {
		return nil, fmt.Errorf("core: Forward W shape %v, want %v", w.Shape, p.DWShape())
	}
	if p.G() > 1 {
		return forwardGrouped(p, x, w)
	}
	k, err := selectForwardKernel(p.FW)
	if err != nil {
		return nil, err
	}
	tr := k.Transform().Balanced()
	n, alpha := tr.N, tr.Alpha
	oh, ow := p.OH(), p.OW()
	oc, ic := p.OC, p.IC

	// Filter transform, hoisted: U[fh][e][oc][ic] = (G·W[oc,fh,:,ic])[e].
	u := make([]float32, p.FH*alpha*oc*ic)
	for fh := 0; fh < p.FH; fh++ {
		for a := 0; a < oc; a++ {
			for b := 0; b < ic; b++ {
				row := make([]float32, p.FW)
				for fw := 0; fw < p.FW; fw++ {
					row[fw] = w.At(a, fh, fw, b)
				}
				ghat := tr.G.MulVec32(row)
				for e := 0; e < alpha; e++ {
					u[((fh*alpha+e)*oc+a)*ic+b] = ghat[e]
				}
			}
		}
	}

	y := tensor.NewFloat32(p.DYShape())
	tiles := (ow + n - 1) / n
	// One unit per (batch, output row), scheduled in chunks on the shared
	// persistent pool; the grid is large for FC (the opposite of BFC), so
	// no segmentation is required. Scratch is per chunk, not per row.
	execPool().RunFunc(p.N*oh, 0, func(lo, hi int) {
		xRaw := make([]float32, alpha*ic)
		xHat := make([]float32, alpha*ic)
		v := make([]float32, alpha*oc)
		for idx := lo; idx < hi; idx++ {
			nb, oy := idx/oh, idx%oh
			runForwardRow(p, tr, y, x, u, xRaw, xHat, v, nb, oy, tiles, n, alpha, oc, ic, ow)
		}
	})
	return y, nil
}

// runForwardRow computes one (batch, output row) of the forward pass using
// the caller's scratch.
func runForwardRow(p conv.Params, tr *winograd.Transform, y, x *tensor.Float32,
	u, xRaw, xHat, v []float32, nb, oy, tiles, n, alpha, oc, ic, ow int) {
	for j := 0; j < tiles; j++ {
		for i := range v {
			v[i] = 0
		}
		for fh := 0; fh < p.FH; fh++ {
			ih := oy + fh - p.PH
			if ih < 0 || ih >= p.IH {
				continue // height clipping, as in the BFC kernels
			}
			// Gather the α-wide input tile with implicit width padding.
			for e := 0; e < alpha; e++ {
				iw := j*n + e - p.PW
				dst := xRaw[e*ic : (e+1)*ic]
				if iw < 0 || iw >= p.IW {
					for i := range dst {
						dst[i] = 0
					}
					continue
				}
				base := x.Shape.Index(nb, ih, iw, 0)
				copy(dst, x.Data[base:base+ic])
			}
			matTMulF32(tr.D, xRaw, xHat, alpha, ic)
			// EWM: v[e][oc] += Σ_ic U[fh][e][oc][ic]·X̂[e][ic].
			for e := 0; e < alpha; e++ {
				xe := xHat[e*ic : (e+1)*ic]
				ue := u[(fh*alpha+e)*oc*ic : (fh*alpha+e+1)*oc*ic]
				ve := v[e*oc : (e+1)*oc]
				for a := 0; a < oc; a++ {
					var s float32
					row := ue[a*ic : (a+1)*ic]
					for b, xv := range xe {
						s += row[b] * xv
					}
					ve[a] += s
				}
			}
		}
		// Output transform: y[jn+i][oc] = Σ_e A[e][i]·v[e][oc], with
		// ragged final tiles clipped.
		for i := 0; i < n; i++ {
			oxw := j*n + i
			if oxw >= ow {
				break
			}
			base := y.Shape.Index(nb, oy, oxw, 0)
			for a := 0; a < oc; a++ {
				var s float32
				for e := 0; e < alpha; e++ {
					s += float32(tr.A.At(e, i)) * v[e*oc+a]
				}
				y.Data[base+a] = s
			}
		}
	}
}

// BackwardData computes ∇X from ∇Y and W via the forward kernel: BDC is a
// forward convolution of ∇Y with the spatially flipped, channel-transposed
// filter and complementary padding (F−1−p).
func BackwardData(p conv.Params, dy, w *tensor.Float32) (*tensor.Float32, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if dy.Shape != p.DYShape() {
		return nil, fmt.Errorf("core: BackwardData dY shape %v, want %v", dy.Shape, p.DYShape())
	}
	if w.Shape != p.DWShape() {
		return nil, fmt.Errorf("core: BackwardData W shape %v, want %v", w.Shape, p.DWShape())
	}
	// The equivalent forward problem: input ∇Y (O_H×O_W×O_C), output
	// ∇X (I_H×I_W×I_C), same filter extent. Grouping carries over: the
	// channel transpose keeps every (oc, ic) pair within its group.
	pb := conv.Params{
		N: p.N, IH: p.OH(), IW: p.OW(), FH: p.FH, FW: p.FW,
		IC: p.OC, OC: p.IC,
		PH: p.FH - 1 - p.PH, PW: p.FW - 1 - p.PW,
		Groups: p.Groups,
	}
	if err := pb.Validate(); err != nil {
		return nil, fmt.Errorf("core: BackwardData derived geometry invalid: %w", err)
	}
	if pb.OH() != p.IH || pb.OW() != p.IW {
		return nil, fmt.Errorf("core: BackwardData geometry mismatch: got %dx%d, want %dx%d",
			pb.OH(), pb.OW(), p.IH, p.IW)
	}
	icg, ocg := p.ICG(), p.OCG()
	flipped := tensor.NewFloat32(pb.DWShape()) // I_C×F_H×F_W×(O_C/G)
	for a := 0; a < p.OC; a++ {
		gi := a / ocg
		for fh := 0; fh < p.FH; fh++ {
			for fw := 0; fw < p.FW; fw++ {
				for b := gi * icg; b < (gi+1)*icg; b++ {
					flipped.Set(b, p.FH-1-fh, p.FW-1-fw, a-gi*ocg,
						w.At(a, fh, fw, b-gi*icg))
				}
			}
		}
	}
	return Forward(pb, dy, flipped)
}
