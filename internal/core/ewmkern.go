package core

import (
	"fmt"
	"os"

	"winrs/internal/winograd"
)

// The EWM kernel tier: shape-specialized register-blocked panel kernels
// selected per Ω kernel and precision, plus the fused transform+EWM
// execution mode. Every variant is bit-identical to the base 4×4 kernel
// (the scalar-oracle tier of ewm.go) because each v element still receives
// exactly one fused add per e — register blocking and row interleaving
// only reorder independent accumulators — and the fused mode replicates
// the transform's per-row arithmetic exactly (see MulPanelEmit and
// matTMulRowF32). The differential suites force every mode through the
// codecref/pool oracles to pin this.

// ewmMode is the kernel-tier forcing knob: auto (per-kernel selection),
// or one of the force values the differential sweeps pin each variant
// with. Settable via WINRS_EWM_KERNEL=auto|block4|block8|fused|dw1.
type ewmMode uint8

const (
	ewmAuto   ewmMode = iota
	ewmBlock4         // force the base 4×4 tier (the oracle's kernel)
	ewmBlock8         // force 8-row blocking, fusion disabled
	ewmFused          // force the fused transform+EWM mode (any α)
	ewmDW1            // force the depthwise I_C == 1 panel (no-op when I_C > 1)
)

// ewmForce is the process-wide forcing mode; tests swap it via forceEWM.
var ewmForce = parseEWMMode(os.Getenv("WINRS_EWM_KERNEL"))

// fp16Resident selects the decoded-operand FP16 mode: the Ŵ cache and the
// gathered operands stay in float32 form across filter units instead of
// round-tripping through the binary16 codec per use. Identical bits either
// way (binary16→float32 decode is exact); WINRS_FP16_RESIDENT=0 forces the
// legacy codec-per-unit path.
var fp16Resident = parseFP16Resident(os.Getenv("WINRS_FP16_RESIDENT"))

// envWarnf reports a malformed environment knob; tests swap it to capture
// the diagnostics.
var envWarnf = func(format string, args ...any) {
	fmt.Fprintf(os.Stderr, format+"\n", args...)
}

// parseEWMMode maps WINRS_EWM_KERNEL to a forcing mode. An unrecognized
// value warns and falls back to auto — silently treating a typoed forcing
// as auto would make a differential run that believes it pinned a variant
// test nothing.
func parseEWMMode(s string) ewmMode {
	switch s {
	case "", "auto":
		return ewmAuto
	case "block4":
		return ewmBlock4
	case "block8":
		return ewmBlock8
	case "fused":
		return ewmFused
	case "dw1":
		return ewmDW1
	default:
		envWarnf("winrs: unrecognized WINRS_EWM_KERNEL=%q; valid values are auto, block4, block8, fused, dw1 — using auto", s)
		return ewmAuto
	}
}

// parseFP16Resident maps WINRS_FP16_RESIDENT to the decoded-operand flag:
// unset/"1" selects the resident mode, "0" the legacy codec-per-unit path.
// Anything else warns and keeps the default.
func parseFP16Resident(s string) bool {
	switch s {
	case "", "1":
		return true
	case "0":
		return false
	default:
		envWarnf("winrs: unrecognized WINRS_FP16_RESIDENT=%q; valid values are 0, 1 — using 1", s)
		return true
	}
}

// ewmPanelFunc is one register-blocked EWM panel kernel:
// ve[a][b] += we[a]·xe[b].
type ewmPanelFunc func(ve, we, xe []float32, oc, ic int)

// ewmSel is the resolved kernel-tier selection for one segment kernel.
type ewmSel struct {
	panel ewmPanelFunc
	fused bool
	name  string
}

// selectEWM resolves the kernel-tier variant for a segment kernel. The
// block shape follows the kernel's cache-block table: 8-row blocking
// whenever O_C can fill a block row (every Ω kernel has B_N ≥ 64), and the
// column width widens from 4 to 8 when B_M ≥ 64 and I_C fills it — the
// same footnote-3 trade-off that shrinks GPU cache blocks as α grows
// shrinks the profitable host register block. Fusion (transform+EWM in one
// tile pass) applies to the small-α kernels, where the X̂ panel is small
// enough that consuming each row immediately after its transform keeps the
// whole chain in L1.
// ewmNames holds the pre-concatenated attribution strings ([fused][shape])
// so selectEWM never builds a string at runtime — it runs on the per-unit
// zero-allocation hot path. The expressions are compile-time constants
// (ewmArchSuffix is a build-tagged const).
var ewmNames = [2][4]string{
	{"block4x4", "block8x4", "block8x8" + ewmArchSuffix, "dw1"},
	{"fused4x4", "fused8x4", "fused8x8" + ewmArchSuffix, "fuseddw1"},
}

func selectEWM(k winograd.Kernel, fp16 bool, oc, ic int) ewmSel {
	mode := ewmForce
	var sel ewmSel
	shape := 0
	bn, bm := k.CacheBlock(fp16)
	switch {
	case ic == 1 && mode != ewmBlock4 && mode != ewmBlock8:
		// Depthwise regime (I_C/G == 1): the accumulator panel is a single
		// column, so the register blocks above degenerate into their scalar
		// tails. The dedicated panel drops the channel-reduction loop; auto
		// selects it, WINRS_EWM_KERNEL=dw1 pins it for differential sweeps,
		// and the explicit block forcings still win for oracle comparisons.
		sel.panel, shape = ewmPanelDW1, 3
	case mode == ewmBlock4 || oc < 8 || bn < 64:
		sel.panel = ewmPanel
	case ic >= 8 && bm >= 64:
		sel.panel, shape = ewmPanel8x8Arch, 2
	default:
		sel.panel, shape = ewmPanel8x4, 1
	}
	switch mode {
	case ewmAuto, ewmDW1:
		// Forcing dw1 on a non-depthwise shape keeps auto's fusion choice;
		// the force only means "use the depthwise panel where it is legal".
		sel.fused = k.Alpha <= 8
	case ewmFused:
		sel.fused = true
	}
	if sel.fused {
		sel.name = ewmNames[1][shape]
	} else {
		sel.name = ewmNames[0][shape]
	}
	return sel
}

// EWMKernel reports the kernel-tier selection the plan's fast kernel
// resolves to under the current process knobs — the per-plan attribution
// recorded by winrs-info and the bench JSON's ewm_kernel field.
func (c *Config) EWMKernel() string {
	if c.FP16 && !fp16Resident {
		// The legacy codec-per-unit FP16 path stays on the unfused base
		// kernel — it is the knob-off compatibility tier.
		return "block4x4+codec"
	}
	e := c.exec() // grouped plans attribute the per-group operand shape
	sel := selectEWM(e.Pair.Fast, c.FP16, e.Params.OC, e.Params.IC)
	return sel.name
}

// ewmPanelsSel is ewmPanels with a selected panel kernel.
func ewmPanelsSel(panel ewmPanelFunc, v, wHat, xHat []float32, alpha, oc, ic int) {
	for e := 0; e < alpha; e++ {
		panel(v[e*oc*ic:(e+1)*oc*ic], wHat[e*oc:(e+1)*oc], xHat[e*ic:(e+1)*ic], oc, ic)
	}
}

// ewmPanel8x4 is the 8-row × 4-column register block: eight Ŵ values held
// across a 32-FMA body so each X̂ load amortizes over 8 rows. Row blocks
// whose eight Ŵ values are all zero are skipped wholesale; the O_C
// remainder falls through to the 4×4 tail. Identical accumulation per
// element as the base kernel (one fused add per (a, b)).
func ewmPanel8x4(ve, we, xe []float32, oc, ic int) {
	a := 0
	for ; a+8 <= oc; a += 8 {
		w0, w1, w2, w3 := we[a], we[a+1], we[a+2], we[a+3]
		w4, w5, w6, w7 := we[a+4], we[a+5], we[a+6], we[a+7]
		if w0 == 0 && w1 == 0 && w2 == 0 && w3 == 0 &&
			w4 == 0 && w5 == 0 && w6 == 0 && w7 == 0 {
			continue
		}
		r0 := ve[(a+0)*ic : (a+0)*ic+ic : (a+0)*ic+ic]
		r1 := ve[(a+1)*ic : (a+1)*ic+ic : (a+1)*ic+ic]
		r2 := ve[(a+2)*ic : (a+2)*ic+ic : (a+2)*ic+ic]
		r3 := ve[(a+3)*ic : (a+3)*ic+ic : (a+3)*ic+ic]
		r4 := ve[(a+4)*ic : (a+4)*ic+ic : (a+4)*ic+ic]
		r5 := ve[(a+5)*ic : (a+5)*ic+ic : (a+5)*ic+ic]
		r6 := ve[(a+6)*ic : (a+6)*ic+ic : (a+6)*ic+ic]
		r7 := ve[(a+7)*ic : (a+7)*ic+ic : (a+7)*ic+ic]
		b := 0
		for ; b+4 <= ic; b += 4 {
			x0, x1, x2, x3 := xe[b], xe[b+1], xe[b+2], xe[b+3]
			r0[b] += w0 * x0
			r0[b+1] += w0 * x1
			r0[b+2] += w0 * x2
			r0[b+3] += w0 * x3
			r1[b] += w1 * x0
			r1[b+1] += w1 * x1
			r1[b+2] += w1 * x2
			r1[b+3] += w1 * x3
			r2[b] += w2 * x0
			r2[b+1] += w2 * x1
			r2[b+2] += w2 * x2
			r2[b+3] += w2 * x3
			r3[b] += w3 * x0
			r3[b+1] += w3 * x1
			r3[b+2] += w3 * x2
			r3[b+3] += w3 * x3
			r4[b] += w4 * x0
			r4[b+1] += w4 * x1
			r4[b+2] += w4 * x2
			r4[b+3] += w4 * x3
			r5[b] += w5 * x0
			r5[b+1] += w5 * x1
			r5[b+2] += w5 * x2
			r5[b+3] += w5 * x3
			r6[b] += w6 * x0
			r6[b+1] += w6 * x1
			r6[b+2] += w6 * x2
			r6[b+3] += w6 * x3
			r7[b] += w7 * x0
			r7[b+1] += w7 * x1
			r7[b+2] += w7 * x2
			r7[b+3] += w7 * x3
		}
		for ; b < ic; b++ {
			xv := xe[b]
			r0[b] += w0 * xv
			r1[b] += w1 * xv
			r2[b] += w2 * xv
			r3[b] += w3 * xv
			r4[b] += w4 * xv
			r5[b] += w5 * xv
			r6[b] += w6 * xv
			r7[b] += w7 * xv
		}
	}
	if a < oc {
		ewmPanelTail(ve, we, xe, a, oc, ic)
	}
}

// ewmPanelTail handles the O_C remainder of the 8-row kernels with the
// base kernel's 4-row blocks and per-row zero skip, starting at row a0.
func ewmPanelTail(ve, we, xe []float32, a0, oc, ic int) {
	a := a0
	for ; a+4 <= oc; a += 4 {
		w0, w1, w2, w3 := we[a], we[a+1], we[a+2], we[a+3]
		if w0 == 0 && w1 == 0 && w2 == 0 && w3 == 0 {
			continue
		}
		r0 := ve[(a+0)*ic : (a+0)*ic+ic : (a+0)*ic+ic]
		r1 := ve[(a+1)*ic : (a+1)*ic+ic : (a+1)*ic+ic]
		r2 := ve[(a+2)*ic : (a+2)*ic+ic : (a+2)*ic+ic]
		r3 := ve[(a+3)*ic : (a+3)*ic+ic : (a+3)*ic+ic]
		b := 0
		for ; b+4 <= ic; b += 4 {
			x0, x1, x2, x3 := xe[b], xe[b+1], xe[b+2], xe[b+3]
			r0[b] += w0 * x0
			r0[b+1] += w0 * x1
			r0[b+2] += w0 * x2
			r0[b+3] += w0 * x3
			r1[b] += w1 * x0
			r1[b+1] += w1 * x1
			r1[b+2] += w1 * x2
			r1[b+3] += w1 * x3
			r2[b] += w2 * x0
			r2[b+1] += w2 * x1
			r2[b+2] += w2 * x2
			r2[b+3] += w2 * x3
			r3[b] += w3 * x0
			r3[b+1] += w3 * x1
			r3[b+2] += w3 * x2
			r3[b+3] += w3 * x3
		}
		for ; b < ic; b++ {
			xv := xe[b]
			r0[b] += w0 * xv
			r1[b] += w1 * xv
			r2[b] += w2 * xv
			r3[b] += w3 * xv
		}
	}
	for ; a < oc; a++ {
		wv := we[a]
		if wv == 0 {
			continue
		}
		row := ve[a*ic : a*ic+ic : a*ic+ic]
		for b, xv := range xe {
			row[b] += wv * xv
		}
	}
}

// ewmPanel8x8 is the 8×8 register block for the kernels whose cache block
// sustains it: 64 FMAs per 16 loads, with the same wholesale zero skip on
// all-zero row octets. Column remainder narrows to 4 then 1; row remainder
// falls through to the 4×4 tail.
func ewmPanel8x8(ve, we, xe []float32, oc, ic int) {
	a := 0
	for ; a+8 <= oc; a += 8 {
		w0, w1, w2, w3 := we[a], we[a+1], we[a+2], we[a+3]
		w4, w5, w6, w7 := we[a+4], we[a+5], we[a+6], we[a+7]
		if w0 == 0 && w1 == 0 && w2 == 0 && w3 == 0 &&
			w4 == 0 && w5 == 0 && w6 == 0 && w7 == 0 {
			continue
		}
		r0 := ve[(a+0)*ic : (a+0)*ic+ic : (a+0)*ic+ic]
		r1 := ve[(a+1)*ic : (a+1)*ic+ic : (a+1)*ic+ic]
		r2 := ve[(a+2)*ic : (a+2)*ic+ic : (a+2)*ic+ic]
		r3 := ve[(a+3)*ic : (a+3)*ic+ic : (a+3)*ic+ic]
		r4 := ve[(a+4)*ic : (a+4)*ic+ic : (a+4)*ic+ic]
		r5 := ve[(a+5)*ic : (a+5)*ic+ic : (a+5)*ic+ic]
		r6 := ve[(a+6)*ic : (a+6)*ic+ic : (a+6)*ic+ic]
		r7 := ve[(a+7)*ic : (a+7)*ic+ic : (a+7)*ic+ic]
		b := 0
		for ; b+8 <= ic; b += 8 {
			x0, x1, x2, x3 := xe[b], xe[b+1], xe[b+2], xe[b+3]
			x4, x5, x6, x7 := xe[b+4], xe[b+5], xe[b+6], xe[b+7]
			r0[b] += w0 * x0
			r0[b+1] += w0 * x1
			r0[b+2] += w0 * x2
			r0[b+3] += w0 * x3
			r0[b+4] += w0 * x4
			r0[b+5] += w0 * x5
			r0[b+6] += w0 * x6
			r0[b+7] += w0 * x7
			r1[b] += w1 * x0
			r1[b+1] += w1 * x1
			r1[b+2] += w1 * x2
			r1[b+3] += w1 * x3
			r1[b+4] += w1 * x4
			r1[b+5] += w1 * x5
			r1[b+6] += w1 * x6
			r1[b+7] += w1 * x7
			r2[b] += w2 * x0
			r2[b+1] += w2 * x1
			r2[b+2] += w2 * x2
			r2[b+3] += w2 * x3
			r2[b+4] += w2 * x4
			r2[b+5] += w2 * x5
			r2[b+6] += w2 * x6
			r2[b+7] += w2 * x7
			r3[b] += w3 * x0
			r3[b+1] += w3 * x1
			r3[b+2] += w3 * x2
			r3[b+3] += w3 * x3
			r3[b+4] += w3 * x4
			r3[b+5] += w3 * x5
			r3[b+6] += w3 * x6
			r3[b+7] += w3 * x7
			r4[b] += w4 * x0
			r4[b+1] += w4 * x1
			r4[b+2] += w4 * x2
			r4[b+3] += w4 * x3
			r4[b+4] += w4 * x4
			r4[b+5] += w4 * x5
			r4[b+6] += w4 * x6
			r4[b+7] += w4 * x7
			r5[b] += w5 * x0
			r5[b+1] += w5 * x1
			r5[b+2] += w5 * x2
			r5[b+3] += w5 * x3
			r5[b+4] += w5 * x4
			r5[b+5] += w5 * x5
			r5[b+6] += w5 * x6
			r5[b+7] += w5 * x7
			r6[b] += w6 * x0
			r6[b+1] += w6 * x1
			r6[b+2] += w6 * x2
			r6[b+3] += w6 * x3
			r6[b+4] += w6 * x4
			r6[b+5] += w6 * x5
			r6[b+6] += w6 * x6
			r6[b+7] += w6 * x7
			r7[b] += w7 * x0
			r7[b+1] += w7 * x1
			r7[b+2] += w7 * x2
			r7[b+3] += w7 * x3
			r7[b+4] += w7 * x4
			r7[b+5] += w7 * x5
			r7[b+6] += w7 * x6
			r7[b+7] += w7 * x7
		}
		for ; b+4 <= ic; b += 4 {
			x0, x1, x2, x3 := xe[b], xe[b+1], xe[b+2], xe[b+3]
			r0[b] += w0 * x0
			r0[b+1] += w0 * x1
			r0[b+2] += w0 * x2
			r0[b+3] += w0 * x3
			r1[b] += w1 * x0
			r1[b+1] += w1 * x1
			r1[b+2] += w1 * x2
			r1[b+3] += w1 * x3
			r2[b] += w2 * x0
			r2[b+1] += w2 * x1
			r2[b+2] += w2 * x2
			r2[b+3] += w2 * x3
			r3[b] += w3 * x0
			r3[b+1] += w3 * x1
			r3[b+2] += w3 * x2
			r3[b+3] += w3 * x3
			r4[b] += w4 * x0
			r4[b+1] += w4 * x1
			r4[b+2] += w4 * x2
			r4[b+3] += w4 * x3
			r5[b] += w5 * x0
			r5[b+1] += w5 * x1
			r5[b+2] += w5 * x2
			r5[b+3] += w5 * x3
			r6[b] += w6 * x0
			r6[b+1] += w6 * x1
			r6[b+2] += w6 * x2
			r6[b+3] += w6 * x3
			r7[b] += w7 * x0
			r7[b+1] += w7 * x1
			r7[b+2] += w7 * x2
			r7[b+3] += w7 * x3
		}
		for ; b < ic; b++ {
			xv := xe[b]
			r0[b] += w0 * xv
			r1[b] += w1 * xv
			r2[b] += w2 * xv
			r3[b] += w3 * xv
			r4[b] += w4 * xv
			r5[b] += w5 * xv
			r6[b] += w6 * xv
			r7[b] += w7 * xv
		}
	}
	if a < oc {
		ewmPanelTail(ve, we, xe, a, oc, ic)
	}
}

// ewmPanelDW1 is the depthwise specialization: with I_C == 1 the [O_C][I_C]
// accumulator panel collapses to one column, ve[a] += we[a]·xe[0], so the
// channel-reduction loop of the blocked kernels disappears — one FMA per
// output channel against the lone X̂ value held in a register. Each element
// still receives exactly one fused add per e, and the per-row zero skip
// matches the base kernel's scalar tail, so the accumulation is
// bit-identical to every other tier. Falls back to the base kernel when
// forced onto a shape with I_C > 1 (the force is advisory, never wrong).
func ewmPanelDW1(ve, we, xe []float32, oc, ic int) {
	if ic != 1 {
		ewmPanel(ve, we, xe, oc, ic)
		return
	}
	xv := xe[0]
	ve = ve[:oc]
	for a, wv := range we[:oc] {
		if wv == 0 {
			continue
		}
		ve[a] += wv * xv
	}
}

// matTMulRowF32 computes output row i of matTMulF32 alone: dst is zeroed,
// then accumulated in the same ascending-k order with the same zero skip,
// so the row's value is bit-identical to the full-panel evaluation (rows
// of out = mᵀ·in are independent; only the per-row accumulation order
// matters). This is the FP16 fused path's row-at-a-time input transform.
func matTMulRowF32(m *winograd.Mat, in, dst []float32, i, rows, width int) {
	if rows != m.Rows {
		panic("core: matTMulRowF32 dimension mismatch")
	}
	if width == 1 {
		// Depthwise column shape: one scalar accumulator, same ascending-k
		// order and zero skip, none of the per-k slice bookkeeping.
		var s float32
		for k := 0; k < rows; k++ {
			if c := float32(m.At(k, i)); c != 0 {
				s += c * in[k]
			}
		}
		dst[0] = s
		return
	}
	for x := range dst {
		dst[x] = 0
	}
	for k := 0; k < rows; k++ {
		c := float32(m.At(k, i))
		if c == 0 {
			continue
		}
		src := in[k*width : (k+1)*width]
		for x, sv := range src {
			dst[x] += c * sv
		}
	}
}
