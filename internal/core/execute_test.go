package core

import (
	"math/rand"
	"testing"

	"winrs/internal/conv"
	"winrs/internal/tensor"
)

func randLayer64(rng *rand.Rand, p conv.Params) (*tensor.Float64, *tensor.Float64, *tensor.Float64) {
	x := tensor.NewFloat64(p.XShape())
	dy := tensor.NewFloat64(p.DYShape())
	for i := range x.Data {
		x.Data[i] = rng.Float64()*2 - 1
	}
	for i := range dy.Data {
		dy.Data[i] = rng.Float64()*2 - 1
	}
	return x, dy, conv.BackwardFilterDirect64(p, x, dy)
}

// The end-to-end FP32 pipeline must match direct float64 BFC across filter
// sizes, paddings, odd output widths and forced segment counts.
func TestExecuteMatchesDirect(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	cases := []conv.Params{
		{N: 2, IH: 16, IW: 16, FH: 3, FW: 3, IC: 4, OC: 4, PH: 1, PW: 1},
		{N: 1, IH: 20, IW: 20, FH: 5, FW: 5, IC: 3, OC: 5, PH: 2, PW: 2},
		{N: 2, IH: 12, IW: 14, FH: 2, FW: 2, IC: 2, OC: 3},
		{N: 1, IH: 18, IW: 18, FH: 4, FW: 4, IC: 2, OC: 2, PH: 2, PW: 2},
		{N: 1, IH: 15, IW: 19, FH: 7, FW: 7, IC: 2, OC: 2, PH: 3, PW: 3},
		{N: 2, IH: 13, IW: 13, FH: 3, FW: 3, IC: 3, OC: 3, PH: 1, PW: 1}, // odd O_W
		{N: 1, IH: 17, IW: 21, FH: 6, FW: 6, IC: 2, OC: 2, PH: 3, PW: 3},
		{N: 1, IH: 24, IW: 24, FH: 9, FW: 9, IC: 2, OC: 2, PH: 4, PW: 4},
		{N: 1, IH: 21, IW: 23, FH: 8, FW: 8, IC: 1, OC: 2, PH: 4, PW: 4},
		{N: 1, IH: 12, IW: 30, FH: 3, FW: 6, IC: 2, OC: 2, PH: 1, PW: 2}, // non-square filter
	}
	for _, p := range cases {
		if err := p.Validate(); err != nil {
			t.Fatalf("%v: %v", p, err)
		}
		// Positive inputs (the paper's Table 4 setup): with signed inputs,
		// exact gradients land near zero and relative error loses meaning.
		x64 := tensor.NewFloat64(p.XShape())
		dy64 := tensor.NewFloat64(p.DYShape())
		for i := range x64.Data {
			x64.Data[i] = rng.Float64()
		}
		for i := range dy64.Data {
			dy64.Data[i] = rng.Float64()
		}
		want := conv.BackwardFilterDirect64(p, x64, dy64)
		x, dy := x64.ToFloat32(), dy64.ToFloat32()
		for _, forceZ := range []int{0, 1, 3, 8} {
			opts := []Option{}
			if forceZ > 0 {
				opts = append(opts, WithSegments(forceZ))
			}
			cfg, err := Configure(p, opts...)
			if err != nil {
				t.Fatalf("%v forceZ=%d: %v", p, forceZ, err)
			}
			got := Execute(cfg, x, dy)
			// α = 16 kernels carry the paper's looser FP32 band (~1e-5).
			tol := 1e-5
			if cfg.Pair.Fast.Alpha >= 16 || cfg.Pair.Resid.Alpha >= 16 {
				tol = 2e-4
			}
			if m := tensor.MARE(got, want); m > tol {
				t.Errorf("%v forceZ=%d (pair %v, Z=%d): MARE %v > %v",
					p, forceZ, cfg.Pair, cfg.Z(), m, tol)
			}
		}
	}
}

// FP32 accuracy band on uniform [0,1) data: Ω4/Ω8 pairs should reach
// ~1e-7..1e-6 MARE (paper Table 4).
func TestExecuteAccuracyBand(t *testing.T) {
	rng := rand.New(rand.NewSource(32))
	p := conv.Params{N: 4, IH: 24, IW: 24, FH: 3, FW: 3, IC: 8, OC: 8, PH: 1, PW: 1}
	x64 := tensor.NewFloat64(p.XShape())
	dy64 := tensor.NewFloat64(p.DYShape())
	for i := range x64.Data {
		x64.Data[i] = rng.Float64()
	}
	for i := range dy64.Data {
		dy64.Data[i] = rng.Float64()
	}
	want := conv.BackwardFilterDirect64(p, x64, dy64)
	got, err := BackwardFilter(p, x64.ToFloat32(), dy64.ToFloat32())
	if err != nil {
		t.Fatal(err)
	}
	if m := tensor.MARE(got, want); m > 2e-6 {
		t.Errorf("FP32 MARE %v, want <2e-6 (paper band ~1e-7)", m)
	}
}

func TestExecuteHalfMatchesDirect(t *testing.T) {
	rng := rand.New(rand.NewSource(33))
	for _, p := range []conv.Params{
		{N: 2, IH: 14, IW: 14, FH: 3, FW: 3, IC: 4, OC: 4, PH: 1, PW: 1},
		{N: 1, IH: 20, IW: 20, FH: 5, FW: 5, IC: 3, OC: 3, PH: 2, PW: 2},
		{N: 1, IH: 18, IW: 18, FH: 7, FW: 7, IC: 2, OC: 2, PH: 3, PW: 3},
		{N: 1, IH: 26, IW: 26, FH: 9, FW: 9, IC: 2, OC: 2, PH: 4, PW: 4},
	} {
		x64 := tensor.NewFloat64(p.XShape())
		dy64 := tensor.NewFloat64(p.DYShape())
		for i := range x64.Data {
			x64.Data[i] = rng.Float64()
		}
		for i := range dy64.Data {
			dy64.Data[i] = rng.Float64() * 0.01 // the paper's FP16 ∇Y scaling
		}
		xh := x64.ToFloat32().ToHalf()
		dyh := dy64.ToFloat32().ToHalf()
		// Ground truth against the quantized inputs.
		want := conv.BackwardFilterDirect64(p, xh.ToFloat32().ToFloat64(),
			dyh.ToFloat32().ToFloat64())
		got, err := BackwardFilterHalf(p, xh, dyh)
		if err != nil {
			t.Fatalf("%v: %v", p, err)
		}
		tol := 5e-3
		if p.FH >= 8 { // Ω16 kernels: paper band ~1e-2
			tol = 5e-2
		}
		if m := tensor.MARE(got, want); m > tol {
			t.Errorf("%v: FP16 MARE %v > %v", p, m, tol)
		}
	}
}

// Determinism: the lock-free parallel execution must produce bit-identical
// results across runs (tasks write disjoint regions; reduction order is
// fixed).
func TestExecuteDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(34))
	p := conv.Params{N: 2, IH: 20, IW: 20, FH: 3, FW: 3, IC: 8, OC: 8, PH: 1, PW: 1}
	x64, dy64, _ := randLayer64(rng, p)
	x, dy := x64.ToFloat32(), dy64.ToFloat32()
	cfg, err := Configure(p, WithSegments(6))
	if err != nil {
		t.Fatal(err)
	}
	a := Execute(cfg, x, dy)
	for run := 0; run < 3; run++ {
		b := Execute(cfg, x, dy)
		for i := range a.Data {
			if a.Data[i] != b.Data[i] {
				t.Fatalf("run %d: nondeterministic at %d: %v vs %v",
					run, i, a.Data[i], b.Data[i])
			}
		}
	}
}

// Different forced segment counts change only rounding, never the math.
func TestSegmentCountInvariance(t *testing.T) {
	rng := rand.New(rand.NewSource(35))
	p := conv.Params{N: 2, IH: 24, IW: 24, FH: 3, FW: 3, IC: 4, OC: 4, PH: 1, PW: 1}
	x64, dy64, want := randLayer64(rng, p)
	x, dy := x64.ToFloat32(), dy64.ToFloat32()
	for _, z := range []int{1, 2, 4, 8, 16, 24} {
		cfg, err := Configure(p, WithSegments(z))
		if err != nil {
			t.Fatal(err)
		}
		got := Execute(cfg, x, dy)
		if m := tensor.MARE(got, want); m > 1e-5 {
			t.Errorf("forceZ=%d (Z=%d): MARE %v", z, cfg.Z(), m)
		}
	}
}

// Height-axis clipping (Figure 7) is exercised whenever p_H > 0; compare a
// padded case against the direct reference to prove clipped rows are
// neither dropped nor double counted.
func TestHeightClippingCorrectness(t *testing.T) {
	rng := rand.New(rand.NewSource(36))
	p := conv.Params{N: 1, IH: 8, IW: 12, FH: 5, FW: 3, IC: 2, OC: 2, PH: 2, PW: 1}
	x64, dy64, want := randLayer64(rng, p)
	got, err := BackwardFilter(p, x64.ToFloat32(), dy64.ToFloat32())
	if err != nil {
		t.Fatal(err)
	}
	if m := tensor.MARE(got, want); m > 1e-5 {
		t.Errorf("MARE %v", m)
	}
}

func TestExecuteShapeMismatchPanics(t *testing.T) {
	p := conv.Params{N: 1, IH: 8, IW: 8, FH: 3, FW: 3, IC: 2, OC: 2, PH: 1, PW: 1}
	cfg, err := Configure(p)
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	Execute(cfg, tensor.NewFloat32(tensor.Shape{N: 1, H: 7, W: 8, C: 2}),
		tensor.NewFloat32(p.DYShape()))
}

func BenchmarkExecuteWinRS(b *testing.B) {
	p := conv.Params{N: 4, IH: 32, IW: 32, FH: 3, FW: 3, IC: 16, OC: 16, PH: 1, PW: 1}
	rng := rand.New(rand.NewSource(1))
	x := tensor.NewFloat32(p.XShape())
	dy := tensor.NewFloat32(p.DYShape())
	x.FillUniform(rng, 0, 1)
	dy.FillUniform(rng, 0, 1)
	cfg, err := Configure(p)
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(p.DataBytes32())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = Execute(cfg, x, dy)
	}
}

func BenchmarkExecuteHalfWinRS(b *testing.B) {
	p := conv.Params{N: 4, IH: 32, IW: 32, FH: 3, FW: 3, IC: 16, OC: 16, PH: 1, PW: 1}
	rng := rand.New(rand.NewSource(1))
	x := tensor.NewFloat32(p.XShape())
	dy := tensor.NewFloat32(p.DYShape())
	x.FillUniform(rng, 0, 1)
	dy.FillUniform(rng, 0, 1)
	xh, dyh := x.ToHalf(), dy.ToHalf()
	cfg, err := Configure(p, WithFP16())
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(p.DataBytes32())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = ExecuteHalf(cfg, xh, dyh)
	}
}

// The reusable Executor must produce the same bits as the allocating path
// and keep steady-state allocations flat.
func TestExecutorMatchesExecute(t *testing.T) {
	rng := rand.New(rand.NewSource(37))
	p := conv.Params{N: 2, IH: 20, IW: 20, FH: 3, FW: 3, IC: 8, OC: 8, PH: 1, PW: 1}
	x64, dy64, _ := randLayer64(rng, p)
	x, dy := x64.ToFloat32(), dy64.ToFloat32()
	cfg, err := Configure(p, WithSegments(4))
	if err != nil {
		t.Fatal(err)
	}
	ex := NewExecutor(cfg)
	if ex.Config() != cfg {
		t.Error("Config accessor broken")
	}
	want := Execute(cfg, x, dy)
	for step := 0; step < 3; step++ { // reuse across steps
		got := ex.Execute(x, dy)
		for i := range want.Data {
			if got.Data[i] != want.Data[i] {
				t.Fatalf("step %d: executor diverged at %d", step, i)
			}
		}
	}
	// Output tensor is reused (same backing array across calls).
	a := ex.Execute(x, dy)
	b := ex.Execute(x, dy)
	if &a.Data[0] != &b.Data[0] {
		t.Error("executor should reuse its output buffer")
	}
}

func TestExecutorShapePanics(t *testing.T) {
	p := conv.Params{N: 1, IH: 8, IW: 8, FH: 3, FW: 3, IC: 2, OC: 2, PH: 1, PW: 1}
	cfg, err := Configure(p)
	if err != nil {
		t.Fatal(err)
	}
	ex := NewExecutor(cfg)
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	ex.Execute(tensor.NewFloat32(tensor.Shape{N: 1, H: 7, W: 8, C: 2}),
		tensor.NewFloat32(p.DYShape()))
}

func BenchmarkExecutorReuse(b *testing.B) {
	p := conv.Params{N: 4, IH: 32, IW: 32, FH: 3, FW: 3, IC: 16, OC: 16, PH: 1, PW: 1}
	rng := rand.New(rand.NewSource(1))
	x := tensor.NewFloat32(p.XShape())
	dy := tensor.NewFloat32(p.DYShape())
	x.FillUniform(rng, 0, 1)
	dy.FillUniform(rng, 0, 1)
	cfg, err := Configure(p)
	if err != nil {
		b.Fatal(err)
	}
	ex := NewExecutor(cfg)
	b.SetBytes(p.DataBytes32())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = ex.Execute(x, dy)
	}
}
