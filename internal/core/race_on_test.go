//go:build race

package core

// raceEnabled reports whether the race detector is active; allocation
// tests skip under it (instrumentation allocates, and sync.Pool sheds
// items on purpose).
const raceEnabled = true
