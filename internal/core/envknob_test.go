package core

import (
	"fmt"
	"strings"
	"testing"
)

// captureEnvWarn swaps the env-knob warning sink for the test's duration
// and returns the captured messages.
func captureEnvWarn(t *testing.T) *[]string {
	t.Helper()
	var got []string
	prev := envWarnf
	envWarnf = func(format string, args ...any) {
		got = append(got, fmt.Sprintf(format, args...))
	}
	t.Cleanup(func() { envWarnf = prev })
	return &got
}

// An unrecognized WINRS_EWM_KERNEL must fall back to auto loudly, listing
// the valid values — not silently, which hid typos like "block-8".
func TestParseEWMModeWarnsOnUnknown(t *testing.T) {
	warns := captureEnvWarn(t)
	for val, want := range map[string]ewmMode{
		"": ewmAuto, "auto": ewmAuto, "block4": ewmBlock4,
		"block8": ewmBlock8, "fused": ewmFused, "dw1": ewmDW1,
	} {
		if got := parseEWMMode(val); got != want {
			t.Errorf("parseEWMMode(%q) = %v, want %v", val, got, want)
		}
	}
	if len(*warns) != 0 {
		t.Fatalf("valid values warned: %v", *warns)
	}
	if got := parseEWMMode("block-8"); got != ewmAuto {
		t.Errorf("unknown value mapped to %v, want auto", got)
	}
	if len(*warns) != 1 ||
		!strings.Contains((*warns)[0], `"block-8"`) ||
		!strings.Contains((*warns)[0], "WINRS_EWM_KERNEL") ||
		!strings.Contains((*warns)[0], "block4") {
		t.Fatalf("warning should name the knob, the bad value and the valid set; got %v", *warns)
	}
}

// Same contract for WINRS_FP16_RESIDENT: only "0", "1" and empty are
// silent; anything else warns and keeps the default (on).
func TestParseFP16ResidentWarnsOnUnknown(t *testing.T) {
	warns := captureEnvWarn(t)
	for val, want := range map[string]bool{"": true, "1": true, "0": false} {
		if got := parseFP16Resident(val); got != want {
			t.Errorf("parseFP16Resident(%q) = %v, want %v", val, got, want)
		}
	}
	if len(*warns) != 0 {
		t.Fatalf("valid values warned: %v", *warns)
	}
	if got := parseFP16Resident("yes"); got != true {
		t.Error("unknown value should keep the default (resident on)")
	}
	if len(*warns) != 1 || !strings.Contains((*warns)[0], "WINRS_FP16_RESIDENT") ||
		!strings.Contains((*warns)[0], `"yes"`) {
		t.Fatalf("warning should name the knob and value; got %v", *warns)
	}
}
