package core

import (
	"math/rand"
	"testing"

	"winrs/internal/conv"
	"winrs/internal/tensor"
)

func rand3DCase(rng *rand.Rand, p conv.Params3D) (*tensor.Float325, *tensor.Float325, *tensor.Float645) {
	x64 := tensor.NewFloat645(p.XShape())
	dy64 := tensor.NewFloat645(p.DYShape())
	for i := range x64.Data {
		x64.Data[i] = rng.Float64()
	}
	for i := range dy64.Data {
		dy64.Data[i] = rng.Float64()
	}
	want := conv.BackwardFilter3DDirect64(p, x64, dy64)
	return x64.ToFloat325(), dy64.ToFloat325(), want
}

// The N-D extension (k = 3) must match the direct 3-D reference across
// filter shapes and paddings on both spatial padding axes.
func TestBackwardFilter3DMatchesDirect(t *testing.T) {
	rng := rand.New(rand.NewSource(51))
	cases := []conv.Params3D{
		{N: 1, ID: 6, IH: 8, IW: 8, FD: 3, FH: 3, FW: 3, IC: 2, OC: 2,
			PD: 1, PH: 1, PW: 1},
		{N: 2, ID: 4, IH: 6, IW: 10, FD: 2, FH: 2, FW: 2, IC: 2, OC: 3},
		{N: 1, ID: 5, IH: 9, IW: 12, FD: 3, FH: 5, FW: 5, IC: 2, OC: 2,
			PD: 1, PH: 2, PW: 2},
		{N: 1, ID: 7, IH: 7, IW: 13, FD: 1, FH: 3, FW: 3, IC: 3, OC: 2,
			PH: 1, PW: 1},
	}
	for _, p := range cases {
		if err := p.Validate(); err != nil {
			t.Fatalf("%+v: %v", p, err)
		}
		x, dy, want := rand3DCase(rng, p)
		for _, forceZ := range []int{0, 1, 4} {
			opts := []Option{}
			if forceZ > 0 {
				opts = append(opts, WithSegments(forceZ))
			}
			got, err := BackwardFilter3D(p, x, dy, opts...)
			if err != nil {
				t.Fatalf("%+v forceZ=%d: %v", p, forceZ, err)
			}
			if m := tensor.MARE5(got, want); m > 1e-5 {
				t.Errorf("%+v forceZ=%d: MARE %v", p, forceZ, m)
			}
		}
	}
}

// Segments must partition the flattened (O_D·O_H) × O_W plane exactly.
func TestConfigure3DPartition(t *testing.T) {
	p := conv.Params3D{N: 2, ID: 6, IH: 10, IW: 14, FD: 3, FH: 3, FW: 3,
		IC: 4, OC: 4, PD: 1, PH: 1, PW: 1}
	for _, forceZ := range []int{0, 1, 6, 32} {
		opts := []Option{}
		if forceZ > 0 {
			opts = append(opts, WithSegments(forceZ))
		}
		cfg, err := Configure3D(p, opts...)
		if err != nil {
			t.Fatal(err)
		}
		rows := p.OD() * p.OH()
		covered := make([]int, rows*p.OW())
		for _, s := range cfg.Segments {
			if s.Cols()%s.K.R != 0 {
				t.Errorf("segment width %d not a multiple of r=%d", s.Cols(), s.K.R)
			}
			for y := s.Row0; y < s.Row1; y++ {
				for x := s.Col0; x < s.Col1; x++ {
					covered[y*p.OW()+x]++
				}
			}
		}
		for i, c := range covered {
			if c != 1 {
				t.Fatalf("forceZ=%d: cell %d covered %d times", forceZ, i, c)
			}
		}
		if cfg.WorkspaceBytes() != int64(cfg.Z()-1)*int64(p.DWShape().Elems())*4 {
			t.Error("3D workspace accounting mismatch")
		}
	}
}

// Depth-axis clipping: a layer padded on D only must still be exact.
func TestBackwardFilter3DDepthClipping(t *testing.T) {
	rng := rand.New(rand.NewSource(52))
	p := conv.Params3D{N: 1, ID: 4, IH: 6, IW: 8, FD: 5, FH: 1, FW: 2,
		IC: 2, OC: 2, PD: 2}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	x, dy, want := rand3DCase(rng, p)
	got, err := BackwardFilter3D(p, x, dy)
	if err != nil {
		t.Fatal(err)
	}
	if m := tensor.MARE5(got, want); m > 1e-5 {
		t.Errorf("MARE %v", m)
	}
}

func TestConfigure3DRejectsInvalid(t *testing.T) {
	if _, err := Configure3D(conv.Params3D{}); err == nil {
		t.Error("expected error for zero params")
	}
}

func TestExecute3DShapeMismatchPanics(t *testing.T) {
	p := conv.Params3D{N: 1, ID: 4, IH: 4, IW: 6, FD: 2, FH: 2, FW: 2, IC: 1, OC: 1}
	cfg, err := Configure3D(p)
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	Execute3D(cfg, tensor.NewFloat325(tensor.Shape5{N: 1, D: 3, H: 4, W: 6, C: 1}),
		tensor.NewFloat325(p.DYShape()))
}

func BenchmarkBackwardFilter3D(b *testing.B) {
	p := conv.Params3D{N: 1, ID: 8, IH: 16, IW: 16, FD: 3, FH: 3, FW: 3,
		IC: 8, OC: 8, PD: 1, PH: 1, PW: 1}
	rng := rand.New(rand.NewSource(1))
	x := tensor.NewFloat325(p.XShape())
	dy := tensor.NewFloat325(p.DYShape())
	x.FillUniform(rng, 0, 1)
	dy.FillUniform(rng, 0, 1)
	cfg, err := Configure3D(p)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = Execute3D(cfg, x, dy)
	}
}
