package core

import (
	"context"
	"errors"
	"testing"
	"time"

	"winrs/internal/conv"
)

// An uncancelled ExecuteInCtx must be bit-identical to ExecuteIn on every
// differential-sweep shape, FP32 and FP16.
func TestExecuteInCtxMatchesExecuteIn(t *testing.T) {
	ctx := context.Background()
	for _, tc := range poolSweepCases {
		cfg, err := Configure(tc.p)
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		x, dy := poolLayer(t, 91, tc.p)
		want := ExecuteIn(cfg, nil, x, dy, nil)
		got, err := ExecuteInCtx(ctx, cfg, nil, x, dy, nil)
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		equalBits(t, tc.name, got.Data, want.Data)

		cfgH, err := Configure(tc.p, WithFP16())
		if err != nil {
			continue // geometry has no FP16 kernel pair
		}
		xh, dyh := x.ToHalf(), dy.ToHalf()
		wantH := ExecuteHalfIn(cfgH, nil, xh, dyh, nil)
		gotH, err := ExecuteHalfInCtx(ctx, cfgH, nil, xh, dyh, nil)
		if err != nil {
			t.Fatalf("%s fp16: %v", tc.name, err)
		}
		equalBits(t, tc.name+"_fp16", gotH.Data, wantH.Data)
	}
}

// A context that is already done must abort before any work, returning its
// error and a nil result.
func TestExecuteInCtxPreCancelled(t *testing.T) {
	p := conv.Params{N: 1, IH: 12, IW: 12, FH: 3, FW: 3, IC: 3, OC: 3, PH: 1, PW: 1}
	cfg, err := Configure(p)
	if err != nil {
		t.Fatal(err)
	}
	x, dy := poolLayer(t, 92, p)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	out, err := ExecuteInCtx(ctx, cfg, nil, x, dy, nil)
	if !errors.Is(err, context.Canceled) || out != nil {
		t.Fatalf("pre-cancelled: out=%v err=%v, want nil + context.Canceled", out, err)
	}

	dctx, dcancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer dcancel()
	out, err = ExecuteInCtx(dctx, cfg, nil, x, dy, nil)
	if !errors.Is(err, context.DeadlineExceeded) || out != nil {
		t.Fatalf("expired deadline: out=%v err=%v, want nil + DeadlineExceeded", out, err)
	}

	xh, dyh := x.ToHalf(), dy.ToHalf()
	cfgH, err := Configure(p, WithFP16())
	if err != nil {
		t.Fatal(err)
	}
	outH, err := ExecuteHalfInCtx(ctx, cfgH, nil, xh, dyh, nil)
	if !errors.Is(err, context.Canceled) || outH != nil {
		t.Fatalf("pre-cancelled fp16: out=%v err=%v", outH, err)
	}
}

// Cancelling mid-execution must abandon the run — context.Canceled, nil
// result — and leave the workspace reusable: a follow-up uncancelled run
// on the same workspace must produce the exact uncancelled result (the
// re-zeroing contract that lets the serving runtime recycle arenas after a
// cancelled request).
func TestExecuteInCtxCancelMidRunWorkspaceReusable(t *testing.T) {
	// Geometry sized so a warm run takes ~60ms across 10 grid units: on a
	// single-CPU host a parked timer goroutine only gets scheduled at an
	// async-preemption point (~10-25ms in), so the run must comfortably
	// outlast that latency for the cancel to land mid-grid with units left
	// to skip.
	p := conv.Params{N: 8, IH: 64, IW: 64, FH: 5, FW: 5, IC: 16, OC: 16, PH: 2, PW: 2}
	cfg, err := Configure(p)
	if err != nil {
		t.Fatal(err)
	}
	x, dy := poolLayer(t, 93, p)
	want := ExecuteIn(cfg, nil, x, dy, nil)
	ws := NewWorkspace(cfg)
	ExecuteIn(cfg, ws, x, dy, nil) // warm the workspace and caches

	const maxAttempts = 10
	cancelled, attempts := 0, 0
	for ; attempts < maxAttempts && cancelled < 2; attempts++ {
		ctx, cancel := context.WithCancel(context.Background())
		go func() {
			time.Sleep(time.Millisecond)
			cancel()
		}()
		out, err := ExecuteInCtx(ctx, cfg, ws, x, dy, nil)
		cancel()
		switch {
		case err == nil:
			equalBits(t, "raced-but-completed", out.Data, want.Data)
		case errors.Is(err, context.Canceled):
			if out != nil {
				t.Fatal("cancelled run returned a partial result")
			}
			cancelled++
			// The workspace must be quiescent and fully reusable right
			// away: the next run on it must match the uncancelled result
			// bit for bit (the re-zeroing contract the serving runtime
			// relies on to recycle arenas after a cancelled request).
			got, err := ExecuteInCtx(context.Background(), cfg, ws, x, dy, nil)
			if err != nil {
				t.Fatalf("attempt %d: reuse after cancel: %v", attempts, err)
			}
			equalBits(t, "reuse-after-cancel", got.Data, want.Data)
		default:
			t.Fatalf("attempt %d: unexpected error %v", attempts, err)
		}
	}
	if cancelled == 0 {
		t.Errorf("no run cancelled mid-grid in %d attempts; compute too fast for the cancel window", attempts)
	}
	t.Logf("%d/%d attempts cancelled mid-run", cancelled, attempts)
}

// Executor.ExecuteCtx routes through the same cancellation machinery.
func TestExecutorExecuteCtx(t *testing.T) {
	p := conv.Params{N: 1, IH: 10, IW: 10, FH: 3, FW: 3, IC: 2, OC: 2, PH: 1, PW: 1}
	cfg, err := Configure(p)
	if err != nil {
		t.Fatal(err)
	}
	e := NewExecutor(cfg)
	x, dy := poolLayer(t, 94, p)
	want := e.Execute(x, dy)
	wantCopy := append([]float32(nil), want.Data...)

	got, err := e.ExecuteCtx(context.Background(), x, dy)
	if err != nil {
		t.Fatal(err)
	}
	equalBits(t, "executor-ctx", got.Data, wantCopy)

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := e.ExecuteCtx(ctx, x, dy); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}
