package core

import (
	"context"
	"errors"
	"math/rand"
	"runtime/debug"
	"strings"
	"testing"
	"time"

	"winrs/internal/conv"
	"winrs/internal/fp16"
	"winrs/internal/tensor"
)

// forceGroupDispatch overrides the grouped-dispatch forcing mode for the
// test's duration — the test-process form of WINRS_GROUP_DISPATCH.
func forceGroupDispatch(t testing.TB, mode groupDispatchMode) {
	t.Helper()
	prev := groupDispatchForce
	groupDispatchForce = mode
	t.Cleanup(func() { groupDispatchForce = prev })
}

// forceGroupWidth pins the interleave's effective co-scheduling width so
// the pooled pipeline (phase gates, ring hand-off, unit claims) runs even
// on CI machines with fewer CPUs than the test pool's width — without it
// the NumCPU clamp would route every run through the inline path there.
func forceGroupWidth(t testing.TB, width int) {
	t.Helper()
	prev := groupWidthForce
	groupWidthForce = width
	t.Cleanup(func() { groupWidthForce = prev })
}

// The interleaved dispatch must be bit-identical to the sequential
// per-group passes on every grouped sweep shape, FP32 and FP16 (both
// operand forms), across forced segmentations, inline and through a
// width-4 pool — and both must stay within the oracle band. Run under
// -race this is the interleaved co-scheduling differential.
func TestGroupedInterleavedMatchesSequential(t *testing.T) {
	for _, width := range []int{1, 4} {
		withTestPool(t, width, func() {
			forceGroupWidth(t, width)
			for _, tc := range groupedSweepCases {
				x64, dy64 := groupedLayer64(t, 71, tc.p)
				want := conv.BackwardFilterDirect64(tc.p, x64, dy64)
				x, dy := x64.ToFloat32(), dy64.ToFloat32()
				xh, dyh := x.ToHalf(), dy.ToHalf()
				for _, z := range tc.segs {
					opts := []Option{}
					if z > 0 {
						opts = append(opts, WithSegments(z))
					}
					cfg, err := Configure(tc.p, opts...)
					if err != nil {
						t.Fatalf("%s z=%d: %v", tc.name, z, err)
					}
					cfg16, err := Configure(tc.p, append(opts, WithFP16())...)
					if err != nil {
						t.Fatalf("%s z=%d fp16: %v", tc.name, z, err)
					}

					forceGroupDispatch(t, groupDispatchSeq)
					seq := Execute(cfg, x, dy)
					seqH := ExecuteHalfIn(cfg16, nil, xh, dyh, nil)
					forceResident(t, false)
					seqHC := ExecuteHalfIn(cfg16, nil, xh, dyh, nil)
					forceResident(t, true)

					forceGroupDispatch(t, groupDispatchInterleaved)
					il := Execute(cfg, x, dy)
					equalBits(t, tc.name+"-fp32", il.Data, seq.Data)
					if m := tensor.MARE(il, want); m > 1e-5 {
						t.Errorf("%s width=%d z=%d: interleaved MARE %v > 1e-5", tc.name, width, z, m)
					}
					ilH := ExecuteHalfIn(cfg16, nil, xh, dyh, nil)
					equalBits(t, tc.name+"-fp16", ilH.Data, seqH.Data)
					forceResident(t, false)
					ilHC := ExecuteHalfIn(cfg16, nil, xh, dyh, nil)
					forceResident(t, true)
					equalBits(t, tc.name+"-fp16-codec", ilHC.Data, seqHC.Data)
				}
			}
		})
	}
}

// Every EWM kernel-tier forcing must produce bit-identical gradients on
// depthwise shapes (I_C/G == 1), where auto resolves to the dedicated dw1
// panel — the forced-kernel differential sweep of the depthwise
// specialization, inline and pooled.
func TestDepthwiseEWMKernelSweep(t *testing.T) {
	shapes := []conv.Params{
		{N: 1, IH: 16, IW: 16, FH: 3, FW: 3, IC: 8, OC: 8, PH: 1, PW: 1, Groups: 8},
		{N: 2, IH: 12, IW: 14, FH: 5, FW: 5, IC: 4, OC: 4, PH: 2, PW: 2, Groups: 4},
	}
	for _, width := range []int{1, 4} {
		withTestPool(t, width, func() {
			for _, p := range shapes {
				x64, dy64 := groupedLayer64(t, 72, p)
				want := conv.BackwardFilterDirect64(p, x64, dy64)
				x, dy := x64.ToFloat32(), dy64.ToFloat32()
				cfg, err := Configure(p, WithSegments(2))
				if err != nil {
					t.Fatal(err)
				}
				if k := cfg.EWMKernel(); !strings.Contains(k, "dw1") {
					t.Errorf("depthwise auto selection is %q, want the dw1 panel", k)
				}
				var base *tensor.Float32
				for _, m := range ewmVariantModes {
					forceEWM(t, m.mode)
					got := Execute(cfg, x, dy)
					if mare := tensor.MARE(got, want); mare > 1e-5 {
						t.Errorf("%v width=%d %s: MARE %v > 1e-5", p, width, m.name, mare)
					}
					if base == nil {
						base = got
						continue
					}
					equalBits(t, m.name, got.Data, base.Data)
				}
				forceEWM(t, ewmAuto)
			}
		})
	}
}

// Cancellation mid-interleave must never leave partial-group bytes in the
// destination: a group's ∇W slab is written only by the last fused unit of
// a fully executed group, so every slab is either untouched (the sentinel
// prefill survives) or bit-identical to the uncancelled result.
func TestGroupedInterleavedCancelNoPartialGroups(t *testing.T) {
	forceGroupDispatch(t, groupDispatchInterleaved)
	p := conv.Params{N: 2, IH: 20, IW: 20, FH: 3, FW: 3, IC: 8, OC: 8, PH: 1, PW: 1, Groups: 8}
	cfg, err := Configure(p, WithSegments(3))
	if err != nil {
		t.Fatal(err)
	}
	x, dy := poolLayer(t, 73, p)
	want := ExecuteIn(cfg, nil, x, dy, nil)
	n := cfg.GroupConfig().Params.DWShape().Elems()
	const sentinel = float32(-12345.5)

	withTestPool(t, 4, func() {
		forceGroupWidth(t, 4)
		ws := NewWorkspace(cfg)
		dst := tensor.NewFloat32(p.DWShape())
		cancelled := 0
		for attempt := 0; attempt < 40; attempt++ {
			for i := range dst.Data {
				dst.Data[i] = sentinel
			}
			ctx, cancel := context.WithCancel(context.Background())
			go func(delay time.Duration) {
				time.Sleep(delay)
				cancel()
			}(time.Duration(attempt%8) * 20 * time.Microsecond)
			out, err := ExecuteInCtx(ctx, cfg, ws, x, dy, dst)
			cancel()
			if err == nil {
				// Cancel arrived too late: the run completed and must be
				// bit-identical to the plain path.
				equalBits(t, "late-cancel", out.Data, want.Data)
				continue
			}
			if !errors.Is(err, context.Canceled) {
				t.Fatalf("unexpected error: %v", err)
			}
			cancelled++
			for gi := 0; gi < p.G(); gi++ {
				slab := dst.Data[gi*n : (gi+1)*n]
				if slab[0] == sentinel {
					for i, v := range slab {
						if v != sentinel {
							t.Fatalf("group %d: partial slab — sentinel at 0 but %v at %d", gi, v, i)
						}
					}
					continue
				}
				equalBits(t, "cancelled-complete-group", slab, want.Data[gi*n:(gi+1)*n])
			}
		}
		t.Logf("caught %d cancelled runs out of 40", cancelled)
	})
}

// Steady-state interleaved grouped dispatch through a warm pool must not
// allocate: the groupJob is embedded in the Workspace, the slot ring and
// phase ledger are grown once, and batch descriptors are pooled.
func TestGroupedInterleavedAllocsZeroWithPool(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation allocates; alloc pinning runs without -race")
	}
	forceGroupDispatch(t, groupDispatchInterleaved)
	p := conv.Params{N: 1, IH: 24, IW: 24, FH: 3, FW: 3, IC: 8, OC: 8, PH: 1, PW: 1, Groups: 8}
	cfg, err := Configure(p, WithSegments(2))
	if err != nil {
		t.Fatal(err)
	}
	cfg16, err := Configure(p, WithSegments(2), WithFP16())
	if err != nil {
		t.Fatal(err)
	}
	x, dy := poolLayer(t, 74, p)
	xh, dyh := x.ToHalf(), dy.ToHalf()
	ws := NewWorkspace(cfg)
	ws16 := NewWorkspace(cfg16)
	dst := tensor.NewFloat32(p.DWShape())

	withTestPool(t, 4, func() {
		for i := 0; i < 8; i++ {
			ExecuteIn(cfg, ws, x, dy, dst)
			ExecuteHalfIn(cfg16, ws16, xh, dyh, dst)
		}
		defer debug.SetGCPercent(debug.SetGCPercent(-1))
		allocs := testing.AllocsPerRun(50, func() { ExecuteIn(cfg, ws, x, dy, dst) })
		if allocs != 0 {
			t.Errorf("steady-state interleaved ExecuteIn allocates %v per run, want 0", allocs)
		}
		allocs16 := testing.AllocsPerRun(50, func() { ExecuteHalfIn(cfg16, ws16, xh, dyh, dst) })
		if allocs16 != 0 {
			t.Errorf("steady-state interleaved ExecuteHalfIn allocates %v per run, want 0", allocs16)
		}
	})
}

// sliceChannels/scatterChannels on both branches: the strided per-row
// gather and the width == srcC single-bulk-copy fast path, which must be
// exact inverses.
func TestSliceScatterChannelsBothBranches(t *testing.T) {
	const rows, srcC = 5, 6
	rng := rand.New(rand.NewSource(75))
	src := make([]float32, rows*srcC)
	for i := range src {
		src[i] = rng.Float32()
	}
	// Strided branch: every (off, width) window with width < srcC.
	for off := 0; off < srcC; off++ {
		for width := 1; off+width < srcC; width++ {
			got := make([]float32, rows*width)
			sliceChannels(got, src, rows, srcC, off, width)
			for r := 0; r < rows; r++ {
				for c := 0; c < width; c++ {
					if got[r*width+c] != src[r*srcC+off+c] {
						t.Fatalf("slice off=%d width=%d row=%d ch=%d: %v != %v",
							off, width, r, c, got[r*width+c], src[r*srcC+off+c])
					}
				}
			}
			back := make([]float32, rows*srcC)
			copy(back, src)
			scatterChannels(back, got, rows, srcC, off, width)
			for i := range back {
				if back[i] != src[i] {
					t.Fatalf("scatter off=%d width=%d is not the inverse at %d", off, width, i)
				}
			}
		}
	}
	// Fast path: width == srcC collapses to one bulk copy.
	full := make([]float32, rows*srcC)
	sliceChannels(full, src, rows, srcC, 0, srcC)
	for i := range full {
		if full[i] != src[i] {
			t.Fatalf("full-width slice differs at %d", i)
		}
	}
	out := make([]float32, rows*srcC)
	scatterChannels(out, full, rows, srcC, 0, srcC)
	for i := range out {
		if out[i] != src[i] {
			t.Fatalf("full-width scatter differs at %d", i)
		}
	}
}

// sliceDecodeChannels must equal gather-then-decode bit for bit on both
// branches (decode is exact, so fusing it with the gather changes nothing).
func TestSliceDecodeChannelsMatchesUnfused(t *testing.T) {
	const rows, srcC = 4, 5
	rng := rand.New(rand.NewSource(76))
	f := make([]float32, rows*srcC)
	for i := range f {
		f[i] = rng.Float32()
	}
	src := make([]fp16.Bits, len(f))
	fp16.EncodeSlice(src, f)
	for _, tc := range []struct{ off, width int }{{1, 2}, {0, 3}, {0, srcC}} {
		fused := make([]float32, rows*tc.width)
		sliceDecodeChannels(fused, src, rows, srcC, tc.off, tc.width)
		gathered := make([]fp16.Bits, rows*tc.width)
		sliceChannels(gathered, src, rows, srcC, tc.off, tc.width)
		unfused := make([]float32, rows*tc.width)
		fp16.DecodeSlice(unfused, gathered)
		for i := range fused {
			if fused[i] != unfused[i] {
				t.Fatalf("off=%d width=%d: fused decode differs at %d: %v != %v",
					tc.off, tc.width, i, fused[i], unfused[i])
			}
		}
	}
}

// An unrecognized WINRS_GROUP_DISPATCH must fall back to auto loudly,
// naming the knob, the bad value and the valid set.
func TestParseGroupDispatchWarnsOnUnknown(t *testing.T) {
	warns := captureEnvWarn(t)
	for val, want := range map[string]groupDispatchMode{
		"": groupDispatchAuto, "auto": groupDispatchAuto,
		"seq": groupDispatchSeq, "sequential": groupDispatchSeq,
		"interleaved": groupDispatchInterleaved,
	} {
		if got := parseGroupDispatch(val); got != want {
			t.Errorf("parseGroupDispatch(%q) = %v, want %v", val, got, want)
		}
	}
	if len(*warns) != 0 {
		t.Fatalf("valid values warned: %v", *warns)
	}
	if got := parseGroupDispatch("interleave"); got != groupDispatchAuto {
		t.Errorf("unknown value mapped to %v, want auto", got)
	}
	if len(*warns) != 1 ||
		!strings.Contains((*warns)[0], `"interleave"`) ||
		!strings.Contains((*warns)[0], "WINRS_GROUP_DISPATCH") ||
		!strings.Contains((*warns)[0], "seq") {
		t.Fatalf("warning should name the knob, the bad value and the valid set; got %v", *warns)
	}
}

// Describe must attribute the dispatch mode, the realized ring budget and
// the sequential per-group arena on grouped plans — and stay silent on
// ungrouped ones.
func TestDescribeGroupDispatch(t *testing.T) {
	p := conv.Params{N: 1, IH: 16, IW: 16, FH: 3, FW: 3, IC: 8, OC: 8, PH: 1, PW: 1, Groups: 4}
	cfg, err := Configure(p, WithSegments(3))
	if err != nil {
		t.Fatal(err)
	}
	forceGroupDispatch(t, groupDispatchInterleaved)
	d := cfg.Describe()
	if d.GroupDispatch != "interleaved" {
		t.Errorf("GroupDispatch = %q, want interleaved", d.GroupDispatch)
	}
	if d.GroupRing != groupRingSlots {
		t.Errorf("GroupRing = %d, want %d", d.GroupRing, groupRingSlots)
	}
	if d.WorkspaceSeqBytes <= 0 || d.WorkspaceBytes != d.WorkspaceSeqBytes*int64(d.GroupRing) {
		t.Errorf("workspace accounting: total %d, seq %d, ring %d",
			d.WorkspaceBytes, d.WorkspaceSeqBytes, d.GroupRing)
	}
	forceGroupDispatch(t, groupDispatchSeq)
	d = cfg.Describe()
	if d.GroupDispatch != "sequential" || d.GroupRing != 1 {
		t.Errorf("sequential forcing: dispatch %q ring %d", d.GroupDispatch, d.GroupRing)
	}
	if d.WorkspaceBytes != d.WorkspaceSeqBytes {
		t.Errorf("sequential workspace %d != per-group arena %d", d.WorkspaceBytes, d.WorkspaceSeqBytes)
	}

	pu := p
	pu.Groups = 0
	ucfg, err := Configure(pu)
	if err != nil {
		t.Fatal(err)
	}
	if du := ucfg.Describe(); du.GroupDispatch != "" || du.GroupRing != 0 || du.WorkspaceSeqBytes != 0 {
		t.Errorf("ungrouped plan carries group attribution: %+v", du)
	}
}

// BenchmarkGroupedDispatch pits the interleaved dispatch against the
// sequential per-group passes on a production depthwise shape — the
// occupancy case the interleaved dispatch exists for. Run with
// -cpu 1,4 to see the pool-width dependence.
func BenchmarkGroupedDispatch(b *testing.B) {
	p := conv.Params{N: 1, IH: 56, IW: 56, FH: 3, FW: 3, IC: 64, OC: 64, PH: 1, PW: 1, Groups: 64}
	cfg, err := Configure(p)
	if err != nil {
		b.Fatal(err)
	}
	x, dy := poolLayer(b, 81, p)
	ws := NewWorkspace(cfg)
	dst := tensor.NewFloat32(p.DWShape())
	cfg16, err := Configure(p, WithFP16())
	if err != nil {
		b.Fatal(err)
	}
	ws16 := NewWorkspace(cfg16)
	xh, dyh := x.ToHalf(), dy.ToHalf()
	for _, m := range []struct {
		name string
		mode groupDispatchMode
	}{{"seq", groupDispatchSeq}, {"interleaved", groupDispatchInterleaved}} {
		b.Run(m.name, func(b *testing.B) {
			forceGroupDispatch(b, m.mode)
			ExecuteIn(cfg, ws, x, dy, dst)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				ExecuteIn(cfg, ws, x, dy, dst)
			}
		})
		b.Run(m.name+"16", func(b *testing.B) {
			forceGroupDispatch(b, m.mode)
			ExecuteHalfIn(cfg16, ws16, xh, dyh, dst)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				ExecuteHalfIn(cfg16, ws16, xh, dyh, dst)
			}
		})
	}
}
