package core

import (
	"math/rand"
	"testing"

	"winrs/internal/conv"
	"winrs/internal/tensor"
)

// FuzzConfigurePartition feeds arbitrary layer geometries through
// configuration adaptation and checks the structural invariants: the
// segment grid tiles the output plane exactly, every segment width is a
// multiple of its kernel's unit width, and the workspace accounting holds.
func FuzzConfigurePartition(f *testing.F) {
	f.Add(uint8(32), uint8(32), uint8(3), uint8(3), uint8(16), uint8(1), uint8(0))
	f.Add(uint8(224), uint8(224), uint8(3), uint8(3), uint8(64), uint8(1), uint8(0))
	f.Add(uint8(17), uint8(33), uint8(7), uint8(5), uint8(8), uint8(2), uint8(12))
	f.Add(uint8(14), uint8(12), uint8(9), uint8(9), uint8(4), uint8(4), uint8(64))
	f.Fuzz(func(t *testing.T, ihB, iwB, fhB, fwB, cB, padB, forceZB uint8) {
		p := conv.Params{
			N:  1 + int(ihB%4),
			IH: 3 + int(ihB%60),
			IW: 3 + int(iwB%60),
			FH: 1 + int(fhB%10),
			FW: 1 + int(fwB%10),
			IC: 1 + int(cB%32),
			OC: 1 + int(cB%16),
			PH: int(padB % 4),
			PW: int(padB>>2) % 4,
		}
		if p.Validate() != nil {
			return
		}
		opts := []Option{}
		if forceZB > 0 {
			opts = append(opts, WithSegments(int(forceZB)))
		}
		cfg, err := Configure(p, opts...)
		if err != nil {
			// Only degenerate widths may fail, and the direct fallback
			// covers any O_W in [1, 20]; O_W ≥ 1 always holds here.
			t.Fatalf("Configure(%v) failed: %v", p, err)
		}
		covered := make([]int, p.OH()*p.OW())
		for _, s := range cfg.Segments {
			if s.Rows() < 1 || s.Cols() < 1 {
				t.Fatalf("%v: empty segment %+v", p, s)
			}
			if s.Cols()%s.K.R != 0 {
				t.Fatalf("%v: segment width %d not multiple of r=%d", p, s.Cols(), s.K.R)
			}
			if p.FW%s.K.N != 0 {
				t.Fatalf("%v: kernel n=%d does not divide F_W=%d", p, s.K.N, p.FW)
			}
			for y := s.Row0; y < s.Row1; y++ {
				for x := s.Col0; x < s.Col1; x++ {
					covered[y*p.OW()+x]++
				}
			}
		}
		for i, c := range covered {
			if c != 1 {
				t.Fatalf("%v: cell %d covered %d times", p, i, c)
			}
		}
		if cfg.WorkspaceBytes() != int64(cfg.Z()-1)*int64(p.DWShape().Elems())*4 {
			t.Fatalf("%v: workspace accounting mismatch", p)
		}
	})
}

// FuzzExecuteMatchesDirect runs the full numeric pipeline on small fuzzed
// geometries against the float64 reference.
func FuzzExecuteMatchesDirect(f *testing.F) {
	f.Add(int64(1), uint8(10), uint8(3), uint8(1))
	f.Add(int64(7), uint8(16), uint8(5), uint8(2))
	f.Add(int64(42), uint8(13), uint8(2), uint8(0))
	// IH=IW=8, F=3, pad 1 → OW=8 pairs Ω8(3,6)+Ω4(3,2): both α ≤ 8, so
	// this seed drives the fused transform+EWM small-α path.
	f.Add(int64(8), uint8(16), uint8(2), uint8(1))
	// fB ≥ 32 flips the group bit: G=2 with IC=OC=2 is the depthwise
	// grouped pipeline (per-group planning, channel-sliced operands).
	f.Add(int64(5), uint8(12), uint8(35), uint8(1))
	f.Fuzz(func(t *testing.T, seed int64, hwB, fB, padB uint8) {
		p := conv.Params{
			N:  1,
			IH: 6 + int(hwB%14),
			IW: 6 + int(hwB%14),
			FH: 1 + int(fB%6),
			FW: 1 + int(fB%6),
			IC: 2, OC: 2,
			PH: int(padB % 3), PW: int(padB % 3),
			// The filter byte's unused high bits select grouping, so the
			// existing corpus keeps its meaning (high bits were zero).
			Groups: 1 + int(fB>>5)%2,
		}
		if p.Validate() != nil {
			return
		}
		rng := rand.New(rand.NewSource(seed))
		x64 := tensor.NewFloat64(p.XShape())
		dy64 := tensor.NewFloat64(p.DYShape())
		for i := range x64.Data {
			x64.Data[i] = rng.Float64()
		}
		for i := range dy64.Data {
			dy64.Data[i] = rng.Float64()
		}
		want := conv.BackwardFilterDirect64(p, x64, dy64)
		got, err := BackwardFilter(p, x64.ToFloat32(), dy64.ToFloat32())
		if err != nil {
			t.Fatalf("%v: %v", p, err)
		}
		tol := 1e-5
		if p.FW >= 6 {
			tol = 5e-4
		}
		if m := tensor.MARE(got, want); m > tol {
			t.Fatalf("%v: MARE %v", p, m)
		}
	})
}
