// Package core implements the WinRS algorithm — the paper's contribution.
//
// WinRS computes backward-filter convolution in three phases (paper §3):
//
//  1. Partitioning: ∇Y is divided into Z segments whose widths are
//     multiples of the selected kernels' unit widths r0/r1, and a workspace
//     of Z−1 extra ∇W-sized buckets is allocated.
//  2. Kernel execution: each segment runs a fully-fused Ω_α(n,r) kernel —
//     dimension reduction (rows of the segment become 1-D filters), filter
//     split (rows split into r-wide units), F(n,r) Winograd convolution
//     against the matching region of X, and accumulation into the
//     segment's bucket.
//  3. Reduction: the Z buckets are summed into ∇W with FP32 Kahan
//     summation.
//
// Configuration adaptation (paper §4) picks the fastest kernel pair for
// (F_W, O_W), estimates the baseline segment count from FC/BDC/BFC block
// counts (Algorithm 1), and derives the segment shape (Algorithm 2).
package core

import (
	"fmt"
	"math"

	"winrs/internal/conv"
	"winrs/internal/tensor"
	"winrs/internal/winograd"
)

// Hardware carries the device properties configuration adaptation needs.
// It deliberately stays smaller than gpusim.Device: Algorithm 1 only cares
// about how many block groups keep the machine busy.
type Hardware struct {
	// NSM is the streaming-multiprocessor count.
	NSM int
}

// DefaultHardware models the paper's primary device (RTX 4090, 128 SMs).
var DefaultHardware = Hardware{NSM: 128}

// Pair is the fastest kernel pair of §4.1: Fast handles the bulk of O_W in
// FastUnits units of width Fast.R; Resid covers the remainder in ResidUnits
// units of width Resid.R. When O_W is a multiple of Fast.R, ResidUnits is
// zero and Resid is the zero Kernel (not meaningful).
type Pair struct {
	Fast, Resid           winograd.Kernel
	FastUnits, ResidUnits int
}

// Coverage returns the O_W span of each sub-region.
func (pr Pair) Coverage() (fastW, residW int) {
	return pr.FastUnits * pr.Fast.R, pr.ResidUnits * pr.Resid.R
}

// WeightedCoeff is the selection objective: unit-width-weighted sum of the
// kernel throughput coefficients.
func (pr Pair) WeightedCoeff() float64 {
	fw, rw := pr.Coverage()
	total := fw + rw
	if total == 0 {
		return 0
	}
	return (float64(fw)*pr.Fast.Coeff + float64(rw)*pr.Resid.Coeff) / float64(total)
}

// String renders the pair in Ω-notation.
func (pr Pair) String() string {
	if pr.ResidUnits == 0 {
		return pr.Fast.String()
	}
	return fmt.Sprintf("%v+%v", pr.Fast, pr.Resid)
}

// SelectPair chooses the fastest kernel pair for the layer (paper §4.1):
// both kernels' n must divide F_W, the unit widths must tile O_W exactly
// (k0·r0 + k1·r1 = O_W with k0 maximal for the faster kernel), and the
// weighted throughput coefficient is maximized. With fp16 set, only the
// Tensor-Core-ported kernels are considered first; if they cannot tile
// O_W, the search falls back to the full registry (the FP32 kernels then
// run in emulated mixed precision).
func SelectPair(p conv.Params, fp16 bool) (Pair, error) {
	return selectPairCoeff(p, fp16, nil)
}

// selectPairCoeff is SelectPair with optional per-kernel coefficient
// overrides (host-measured autotuning).
func selectPairCoeff(p conv.Params, fp16 bool, coeffs map[string]float64) (Pair, error) {
	ow := p.OW()
	if ow < 1 {
		return Pair{}, fmt.Errorf("core: empty output width for %v", p)
	}
	if pr, ok := searchPair(p.FW, ow, fp16, coeffs); ok {
		return pr, nil
	}
	if fp16 {
		if pr, ok := searchPair(p.FW, ow, false, coeffs); ok {
			return pr, nil
		}
	}
	// No registry pair tiles O_W (e.g. odd O_W with only even unit widths
	// available): cover the bulk with the best registry kernel and the
	// untileable remainder with one direct-convolution unit.
	if pr, ok := fallbackPair(p.FW, ow, fp16); ok {
		return pr, nil
	}
	return Pair{}, fmt.Errorf("core: no kernel pair tiles F_W=%d, O_W=%d", p.FW, ow)
}

func fallbackPair(fw, ow int, fp16 bool) (Pair, bool) {
	var k0 winograd.Kernel
	found := false
	pick := func(fp16Only bool) {
		for _, k := range winograd.Kernels {
			if fw%k.N != 0 || k.R > ow {
				continue
			}
			if fp16Only && !k.FP16 {
				continue
			}
			if !found || k.Coeff > k0.Coeff {
				k0, found = k, true
			}
		}
	}
	if fp16 {
		pick(true)
	}
	if !found {
		pick(false)
	}
	if !found {
		// O_W smaller than every registry r: a single direct unit.
		if ow > 20 {
			return Pair{}, false
		}
		return Pair{Fast: winograd.DirectKernel(ow), FastUnits: 1}, true
	}
	a := ow / k0.R
	rem := ow % k0.R
	if rem == 0 {
		return Pair{Fast: k0, FastUnits: a}, true
	}
	return Pair{Fast: k0, FastUnits: a,
		Resid: winograd.DirectKernel(rem), ResidUnits: 1}, true
}

func searchPair(fw, ow int, fp16Only bool, coeffs map[string]float64) (Pair, bool) {
	var best Pair
	found := false
	candidates := make([]winograd.Kernel, 0, len(winograd.Kernels))
	for _, k := range winograd.Kernels {
		if fw%k.N != 0 {
			continue
		}
		if fp16Only && !k.FP16 {
			continue
		}
		if c, ok := coeffs[k.String()]; ok {
			k.Coeff = c // tuned coefficient (Kernel is a value copy)
		}
		candidates = append(candidates, k)
	}
	for _, k0 := range candidates {
		for _, k1 := range candidates {
			// Maximize the fast kernel's share: the largest a with
			// a·r0 ≤ O_W and (O_W − a·r0) divisible by r1.
			for a := ow / k0.R; a >= 0; a-- {
				rem := ow - a*k0.R
				if rem%k1.R != 0 {
					continue
				}
				b := rem / k1.R
				if a == 0 && b == 0 {
					continue
				}
				pr := Pair{Fast: k0, Resid: k1, FastUnits: a, ResidUnits: b}
				if pr.FastUnits == 0 {
					// All coverage landed on the residual kernel; present
					// it as the fast kernel (ties otherwise depend on
					// registry order).
					pr = Pair{Fast: k1, FastUnits: b}
				}
				better := pr.WeightedCoeff() > best.WeightedCoeff() ||
					(pr.WeightedCoeff() == best.WeightedCoeff() &&
						pr.FastUnits*pr.Fast.R > best.FastUnits*best.Fast.R)
				if !found || better {
					best, found = pr, true
				}
				break // smaller a only lowers the weighted coefficient
			}
		}
	}
	return best, found
}

// BlocksPerSegment returns the block-group size of one Ω_α(n,r) segment
// launch: ⌈O_C/B_N⌉·⌈I_C/B_M⌉·(F_H·F_W/n) (paper §5.1).
func BlocksPerSegment(k winograd.Kernel, p conv.Params, fp16 bool) int {
	bn, bm := k.CacheBlock(fp16)
	return ceilDiv(p.OC, bn) * ceilDiv(p.IC, bm) * ceilDiv(p.FH*p.FW, k.N)
}

// fcBlocks and bdcBlocks estimate the block counts of the layer's forward
// and backward-data convolutions with the reference F(2×2,3×3) kernel and a
// 64×32×8 cache block (the Figure 2 setup); they feed Algorithm 1 line 1.
func fcBlocks(p conv.Params) int {
	spatial := p.N * ceilDiv(p.OH(), 2) * ceilDiv(p.OW(), 2)
	return ceilDiv(p.OC, 64) * ceilDiv(spatial, 32)
}

func bdcBlocks(p conv.Params) int {
	spatial := p.N * ceilDiv(p.IH, 2) * ceilDiv(p.IW, 2)
	return ceilDiv(p.IC, 64) * ceilDiv(spatial, 32)
}

// latencyBlocksPerSM mirrors the simulator's calibration: a kernel with
// computation intensity ρ needs about 24/ρ resident blocks per SM (clamped
// to [1,6]) to hide most memory latency.
func latencyBlocksPerSM(intensity float64) float64 {
	if intensity <= 0 {
		return 6
	}
	return math.Min(6, math.Max(1, 24/intensity))
}

// EstimateZ implements Algorithm 1: the baseline segment count balancing
// parallelism against partitioning overhead.
func EstimateZ(p conv.Params, pr Pair, hw Hardware, fp16 bool) int {
	b0 := fcBlocks(p)
	b1 := bdcBlocks(p)
	b2 := BlocksPerSegment(pr.Fast, p, fp16)

	// Line 1: initialize from the FC/BDC block budget.
	zHat := float64(b0+b1) / (1.45 * float64(b2))

	// Line 2: thresholds from N_SM and data size.
	k := latencyBlocksPerSM(pr.Fast.Intensity(fp16))
	b2Full := k * float64(hw.NSM) // blocks for full utilization
	dwBytes := tensor.Bytes32(p.DWShape())
	dataBytes := p.DataBytes32()
	if fp16 {
		dwBytes = tensor.Bytes16(p.DWShape())
		dataBytes = p.DataBytes16()
	}
	zMax := 1 + int(2*dataBytes/maxI64(1, dwBytes)) // workspace ≤ ~2× data
	if zMax > 128 {
		zMax = 128
	}

	// Line 3: one segment already saturates the device.
	if zHat < 2 && float64(b2) >= b2Full {
		return 1
	}

	// Line 4: beyond Z1 extra segments stop improving latency hiding.
	z1 := ceilDiv(int(2*b2Full), b2)

	// Line 5: keep per-segment work above a quantum so tiny workloads
	// don't fragment.
	const workQuantum = 1e9 // direct-equivalent FLOPs per segment
	z2 := int(math.Ceil(float64(p.FLOPs()) / workQuantum))

	// Line 6.
	z := int(zHat)
	if z < 1 {
		z = 1
	}
	z = minInt(z, z1, z2, p.N*p.OH()*p.OW()/512)
	if z < 1 {
		z = 1
	}

	// Line 7: pad to a GPU-friendly multiple of 2/4/8 and clamp.
	pp := 1 << bits(z)
	if pp > 8 {
		pp = 8
	}
	z = pp * ceilDiv(z, pp)
	if z > zMax {
		z = zMax
	}
	if z < 1 {
		z = 1
	}
	return z
}

// bits returns ⌈log2 z⌉ for z ≥ 1.
func bits(z int) int {
	b := 0
	for 1<<b < z {
		b++
	}
	return b
}

// SegmentShape implements Algorithm 2: the expected segment height and
// width for a target segment count ẑ. The returned width is a multiple of
// the fast kernel's r; the height is at least p_H+1 so no segment is
// swallowed by zero padding.
func SegmentShape(p conv.Params, pr Pair, zHat int) (sh, sw int) {
	oh, ow := p.OH(), p.OW()
	r0 := pr.Fast.R
	minSH := p.PH + 1
	if minSH > oh {
		minSH = oh
	}
	hMax := oh / minSH
	wMax := ceilDiv(ow, r0)

	clampSH := func(v int) int {
		if v < minSH {
			return minSH
		}
		if v > oh {
			return oh
		}
		return v
	}
	fullW := r0 * (ow / r0)
	if fullW == 0 {
		fullW = r0
	}

	// Line 1.
	if zHat > hMax*wMax {
		zHat = hMax * wMax
	}
	if zHat < 1 {
		zHat = 1
	}
	// Line 2: single segment spans everything.
	if zHat == 1 {
		return oh, fullW
	}
	// Line 3: more segments than width slots — minimum width, split rows.
	if zHat >= wMax {
		return clampSH(oh * ow / (zHat * r0)), r0
	}
	// Line 4: width slots divide evenly.
	if wMax%zHat == 0 {
		return oh, r0 * (wMax / zHat)
	}
	// Lines 5-6: smallest factor x of wMax with ⌊wMax/x⌋ ≤ ẑ ≤ hMax·⌊wMax/x⌋.
	lo := wMax / zHat
	if lo < 1 {
		lo = 1
	}
	hi := hMax * wMax / zHat
	for x := lo; x <= hi; x++ {
		if wMax%x == 0 {
			return clampSH(oh * ow / (zHat * x * r0)), x * r0
		}
	}
	// Line 7: fallback.
	return oh, fullW
}

// Segment is one partition of ∇Y: rows [Row0,Row1) × columns [Col0,Col1),
// executed by kernel K (Col1−Col0 is a multiple of K.R).
type Segment struct {
	Row0, Row1 int
	Col0, Col1 int
	K          winograd.Kernel
}

// Rows returns the segment height.
func (s Segment) Rows() int { return s.Row1 - s.Row0 }

// Cols returns the segment width.
func (s Segment) Cols() int { return s.Col1 - s.Col0 }

// Config is a fully-adapted WinRS execution plan for one layer.
type Config struct {
	Params   conv.Params
	FP16     bool
	Pair     Pair
	ZTarget  int // Algorithm 1 baseline segment count
	SegH     int // Algorithm 2 expected segment height
	SegW     int // Algorithm 2 expected segment width
	Segments []Segment
	Hardware Hardware

	// unitOff is the precomputed work-unit schedule (see unitOffsets),
	// built by Configure so executions need not re-derive it. Hand-built
	// configs may leave it nil; schedule then derives it per call.
	unitOff []int

	// group is the per-group execution plan when Params.Groups > 1: the
	// WinRS pipeline for one group's channel slice (I_C/G inputs, O_C/G
	// outputs). Execution runs it G times over channel-sliced operands
	// sharing one group-sized workspace; Pair/Segments/unitOff above
	// mirror it so inspection of the outer config reports the plan that
	// actually runs. Nil for ungrouped layers.
	group *Config
}

// exec returns the plan execution operates on: the per-group plan for
// grouped layers, the config itself otherwise.
func (c *Config) exec() *Config {
	if c.group != nil {
		return c.group
	}
	return c
}

// GroupConfig returns the per-group plan for grouped layers (nil for
// ungrouped ones).
func (c *Config) GroupConfig() *Config { return c.group }

// Z returns the realized segment count.
func (c *Config) Z() int { return len(c.Segments) }

// WorkspaceBytes returns the bucket workspace the plan executes with.
// Ungrouped: (Z−1) × sizeof(∇W) — the final gradient itself is not
// workspace (bucket 0 aliases it). Buckets are FP32 on both precision
// paths: accumulators and the Kahan reduction run in FP32 (paper §5.2).
// Grouped layers report GroupRing() × the per-group arena: the default
// interleaved dispatch keeps a bounded ring of in-flight per-group bucket
// sets (≤ groupRingSlots, i.e. at most 2× the sequential dispatch's single
// shared arena, which WorkspaceSeqBytes reports) — still ~G²/ring below
// the ungrouped layer of the same outer geometry (1/G from the sliced
// C-reduction, 1/G from the sliced O_C), the paper's tiny-workspace regime
// at its most favorable.
func (c *Config) WorkspaceBytes() int64 {
	return c.WorkspaceSeqBytes() * int64(c.GroupRing())
}

// WorkspaceSeqBytes returns one per-group bucket arena, (Z−1) × the
// per-group ∇W slab — the whole workspace of the sequential grouped
// dispatch (and of ungrouped plans, where it equals WorkspaceBytes).
func (c *Config) WorkspaceSeqBytes() int64 {
	e := c.exec()
	return int64(e.Z()-1) * int64(e.Params.DWShape().Elems()) * 4
}

// GroupRing returns the staging-slot ring depth the plan's grouped
// dispatch budgets: min(G, groupRingSlots) under the interleaved dispatch
// (an upper bound — execution additionally clamps to the pool width), 1
// for ungrouped plans or forced sequential dispatch.
func (c *Config) GroupRing() int {
	if c.group == nil || !InterleavedGroups() {
		return 1
	}
	if g := c.Params.G(); g < groupRingSlots {
		return g
	}
	return groupRingSlots
}

// WHatCacheBytes returns the exact footprint of the Ŵ cache — the
// gathered, filter-transformed ∇Y panels the execution computes once per
// (segment row, width tile, batch image) and reuses across all
// F_H·(F_W/n) units of a segment:
//
//	Σ_seg Rows(seg) · (Cols(seg)/r_seg) · N · α_seg · O_C  elements,
//
// at 4 bytes per element in FP32 and, for FP16, 2 on the legacy
// codec-per-unit path or 4 in the default decoded-operand mode (the
// kernel tier keeps the binary16-rounded panels stored as float32 so
// units skip the per-use decode; see fillRowHalfRes). Because α/r ≤ max_s(α_s/r_s)
// and Σ_seg Rows·Cols·N·O_C = |∇Y|, the cache is bounded by
// (max_s α_s/r_s)·sizeof(∇Y) regardless of Z — it rides the "tiny
// workspace" axis (≈3× |∇Y| for Ω₁₆(2,14), ≈2× for Ω₆(4,3)) and is not
// counted against WithWorkspaceLimit, which budgets the Z-dependent
// buckets.
func (c *Config) WHatCacheBytes() int64 {
	e := c.exec()
	var elems int64
	for _, seg := range e.Segments {
		elems += int64(seg.Rows()) * int64(seg.Cols()/seg.K.R) *
			int64(e.Params.N) * int64(seg.K.Alpha) * int64(e.Params.OC)
	}
	if c.FP16 && !fp16Resident {
		return elems * 2
	}
	return elems * 4
}

// Option customizes Configure.
type Option func(*configOpts)

type configOpts struct {
	hw         Hardware
	fp16       bool
	forceZ     int
	coeffs     map[string]float64
	wsLimit    int64
	wsLimitSet bool
}

// WithHardware overrides the device model used by Algorithm 1.
func WithHardware(hw Hardware) Option { return func(o *configOpts) { o.hw = hw } }

// WithFP16 selects the Tensor-Core (emulated binary16) path.
func WithFP16() Option { return func(o *configOpts) { o.fp16 = true } }

// WithSegments forces the segment count, bypassing Algorithm 1 — used by
// the segmentation ablation.
func WithSegments(z int) Option { return func(o *configOpts) { o.forceZ = z } }

// WithCoefficients overrides the kernel throughput coefficients used by
// the fastest-pair selection, keyed by kernel name (Ω-notation). Pass the
// output of autotune.Coefficients to adapt selection to measured host
// throughput instead of the static table.
func WithCoefficients(coeffs map[string]float64) Option {
	return func(o *configOpts) { o.coeffs = coeffs }
}

// WithWorkspaceLimit caps the bucket workspace at the given byte budget
// (the cuDNN-style workspace-limit knob): the segment count is clamped so
// (Z−1)·sizeof(∇W) never exceeds it. A zero limit forces single-segment
// execution — always correct, at reduced parallelism.
func WithWorkspaceLimit(bytes int64) Option {
	return func(o *configOpts) { o.wsLimit, o.wsLimitSet = bytes, true }
}

// Configure runs the full adaptation pipeline of §4 and returns an
// executable plan.
func Configure(p conv.Params, opts ...Option) (*Config, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if p.G() > 1 {
		// Grouped layer: adapt the pipeline for one group's channel slice
		// and wrap it. Execution iterates the per-group plan G times over
		// channel-sliced operands, reusing one group-sized workspace.
		pg := p
		pg.IC, pg.OC, pg.Groups = p.ICG(), p.OCG(), 0
		gcfg, err := Configure(pg, opts...)
		if err != nil {
			return nil, fmt.Errorf("core: grouped plan (G=%d): %w", p.G(), err)
		}
		return &Config{
			Params: p, FP16: gcfg.FP16, Pair: gcfg.Pair,
			ZTarget: gcfg.ZTarget, SegH: gcfg.SegH, SegW: gcfg.SegW,
			Segments: gcfg.Segments, Hardware: gcfg.Hardware,
			unitOff: gcfg.unitOff, group: gcfg,
		}, nil
	}
	o := configOpts{hw: DefaultHardware}
	for _, f := range opts {
		f(&o)
	}
	pr, err := selectPairCoeff(p, o.fp16, o.coeffs)
	if err != nil {
		return nil, err
	}
	zHat := o.forceZ
	if zHat <= 0 {
		zHat = EstimateZ(p, pr, o.hw, o.fp16)
	}
	if o.wsLimitSet {
		dwBytes := int64(p.DWShape().Elems()) * 4
		zCap := 1 + int(o.wsLimit/maxI64(1, dwBytes))
		if zHat > zCap {
			zHat = zCap
		}
	}
	sh, sw := SegmentShape(p, pr, zHat)
	segs := layoutSegments(p, pr, sh, sw)
	if o.wsLimitSet {
		// Algorithm 2 realizes Z ≈ Ẑ, which can overshoot the byte budget;
		// walk the target down until the realized partition fits. zHat = 1
		// always fits a single-kernel layout; a residual column can force a
		// second segment, in which case the final fallback merges rows.
		dwBytes := int64(p.DWShape().Elems()) * 4
		for zHat > 1 && int64(len(segs)-1)*dwBytes > o.wsLimit {
			zHat--
			sh, sw = SegmentShape(p, pr, zHat)
			segs = layoutSegments(p, pr, sh, sw)
		}
	}
	cfg := &Config{
		Params: p, FP16: o.fp16, Pair: pr,
		ZTarget: zHat, SegH: sh, SegW: sw,
		Hardware: o.hw,
	}
	cfg.Segments = segs
	cfg.unitOff = unitOffsets(p.FW, p.FH, segs)
	return cfg, nil
}

// layoutSegments materializes the partition: the fast region [0, a·r0) is
// chunked into columns of width segW, the residual region [a·r0, O_W) forms
// one column for the residual kernel, and every column is chunked into rows
// of height segH (bottom rows absorb the remainder, per §4.3).
func layoutSegments(p conv.Params, pr Pair, segH, segW int) []Segment {
	oh, ow := p.OH(), p.OW()
	fastW, _ := pr.Coverage()

	type colSpan struct {
		c0, c1 int
		k      winograd.Kernel
	}
	var cols []colSpan
	for c := 0; c < fastW; c += segW {
		c1 := c + segW
		if fastW-c1 < segW { // absorb the remainder into the last column
			c1 = fastW
		}
		cols = append(cols, colSpan{c, c1, pr.Fast})
		if c1 == fastW {
			break
		}
	}
	if fastW < ow {
		cols = append(cols, colSpan{fastW, ow, pr.Resid})
	}

	rowChunks := oh / segH
	if rowChunks < 1 {
		rowChunks = 1
	}
	var segs []Segment
	for ri := 0; ri < rowChunks; ri++ {
		r0 := ri * segH
		r1 := r0 + segH
		if ri == rowChunks-1 {
			r1 = oh
		}
		for _, c := range cols {
			segs = append(segs, Segment{Row0: r0, Row1: r1, Col0: c.c0, Col1: c.c1, K: c.k})
		}
	}
	return segs
}

func ceilDiv(a, b int) int { return (a + b - 1) / b }

func minInt(vs ...int) int {
	m := vs[0]
	for _, v := range vs[1:] {
		if v < m {
			m = v
		}
	}
	return m
}

func maxI64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
