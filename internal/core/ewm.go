package core

// ewmPanels accumulates the α-batched outer products of one fused unit:
// v[e] += Ŵ[e] ⊗ X̂[e] for e in [0, α), with v laid out [α][OC][IC], wHat
// [α][OC] and xHat [α][IC]. This is the emulated Tensor-Core MMA shared by
// the FP32, FP16 (operands pre-decoded to float32) and quantized paths.
//
// Each v element receives exactly one fused add per e, in the same (e, a,
// b) order as a naive triple loop, so register blocking leaves the
// accumulation bit-identical per element.
func ewmPanels(v, wHat, xHat []float32, alpha, oc, ic int) {
	for e := 0; e < alpha; e++ {
		ewmPanel(v[e*oc*ic:(e+1)*oc*ic], wHat[e*oc:(e+1)*oc], xHat[e*ic:(e+1)*ic], oc, ic)
	}
}

// ewmPanel computes ve[a][b] += we[a]·xe[b] with 4×4 register blocking:
// four Ŵ values and four X̂ values are held across a 16-FMA inner body, so
// each Ŵ load amortizes over 4 columns and each X̂ load over 4 rows. Row
// blocks whose four Ŵ values are all zero are skipped wholesale (the
// common case under Winograd sparsity); remainder rows keep the per-row
// zero skip. The three-index slice expressions pin each row's length to ic
// so the compiler can hoist the bounds checks out of the inner loop.
func ewmPanel(ve, we, xe []float32, oc, ic int) {
	a := 0
	for ; a+4 <= oc; a += 4 {
		w0, w1, w2, w3 := we[a], we[a+1], we[a+2], we[a+3]
		if w0 == 0 && w1 == 0 && w2 == 0 && w3 == 0 {
			continue
		}
		r0 := ve[(a+0)*ic : (a+0)*ic+ic : (a+0)*ic+ic]
		r1 := ve[(a+1)*ic : (a+1)*ic+ic : (a+1)*ic+ic]
		r2 := ve[(a+2)*ic : (a+2)*ic+ic : (a+2)*ic+ic]
		r3 := ve[(a+3)*ic : (a+3)*ic+ic : (a+3)*ic+ic]
		b := 0
		for ; b+4 <= ic; b += 4 {
			x0, x1, x2, x3 := xe[b], xe[b+1], xe[b+2], xe[b+3]
			r0[b] += w0 * x0
			r0[b+1] += w0 * x1
			r0[b+2] += w0 * x2
			r0[b+3] += w0 * x3
			r1[b] += w1 * x0
			r1[b+1] += w1 * x1
			r1[b+2] += w1 * x2
			r1[b+3] += w1 * x3
			r2[b] += w2 * x0
			r2[b+1] += w2 * x1
			r2[b+2] += w2 * x2
			r2[b+3] += w2 * x3
			r3[b] += w3 * x0
			r3[b+1] += w3 * x1
			r3[b+2] += w3 * x2
			r3[b+3] += w3 * x3
		}
		for ; b < ic; b++ {
			xv := xe[b]
			r0[b] += w0 * xv
			r1[b] += w1 * xv
			r2[b] += w2 * xv
			r3[b] += w3 * xv
		}
	}
	for ; a < oc; a++ {
		wv := we[a]
		if wv == 0 {
			continue
		}
		row := ve[a*ic : a*ic+ic : a*ic+ic]
		for b, xv := range xe {
			row[b] += wv * xv
		}
	}
}
