package core

import (
	"math/rand"
	"testing"

	"winrs/internal/conv"
	"winrs/internal/tensor"
)

func fwdCase(t *testing.T, rng *rand.Rand, p conv.Params) (*tensor.Float32, *tensor.Float32, *tensor.Float64, *tensor.Float64) {
	t.Helper()
	x64 := tensor.NewFloat64(p.XShape())
	w64 := tensor.NewFloat64(p.DWShape())
	for i := range x64.Data {
		x64.Data[i] = rng.Float64()*2 - 1
	}
	for i := range w64.Data {
		w64.Data[i] = rng.Float64()*2 - 1
	}
	return x64.ToFloat32(), w64.ToFloat32(), x64, w64
}

// The fused 1-D Winograd forward pass must match the direct float64
// forward convolution across filter sizes and paddings.
func TestForwardMatchesDirect(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	cases := []conv.Params{
		{N: 2, IH: 12, IW: 12, FH: 3, FW: 3, IC: 3, OC: 4, PH: 1, PW: 1},
		{N: 1, IH: 14, IW: 17, FH: 5, FW: 5, IC: 2, OC: 3, PH: 2, PW: 2},
		{N: 2, IH: 9, IW: 11, FH: 2, FW: 2, IC: 2, OC: 2},
		{N: 1, IH: 16, IW: 16, FH: 7, FW: 7, IC: 2, OC: 2, PH: 3, PW: 3},
		{N: 1, IH: 10, IW: 13, FH: 3, FW: 4, IC: 2, OC: 2, PH: 1, PW: 2},
		{N: 1, IH: 20, IW: 20, FH: 9, FW: 9, IC: 1, OC: 2, PH: 4, PW: 4},
		{N: 1, IH: 8, IW: 8, FH: 1, FW: 1, IC: 3, OC: 3},
	}
	for _, p := range cases {
		if err := p.Validate(); err != nil {
			t.Fatalf("%v: %v", p, err)
		}
		x, w, x64, w64 := fwdCase(t, rng, p)
		want := conv.Forward64(p, x64, w64)
		got, err := Forward(p, x, w)
		if err != nil {
			t.Fatalf("%v: %v", p, err)
		}
		tol := 1e-5
		if p.FW >= 8 {
			tol = 5e-4 // α = 16 conditioning band (signed inputs)
		}
		if m := tensor.MARE(got, want); m > tol {
			t.Errorf("%v: MARE %v > %v", p, m, tol)
		}
	}
}

// BDC through the forward kernel must be the true gradient of the forward
// pass with respect to X.
func TestBackwardDataMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for _, p := range []conv.Params{
		{N: 2, IH: 10, IW: 10, FH: 3, FW: 3, IC: 3, OC: 4, PH: 1, PW: 1},
		{N: 1, IH: 12, IW: 14, FH: 5, FW: 5, IC: 2, OC: 2, PH: 2, PW: 2},
	} {
		x, w, _, _ := fwdCase(t, rng, p)
		_ = x
		dy64 := tensor.NewFloat64(p.DYShape())
		for i := range dy64.Data {
			dy64.Data[i] = rng.Float64()*2 - 1
		}
		dy := dy64.ToFloat32()
		want := conv.BackwardData32(p, dy, w)
		got, err := BackwardData(p, dy, w)
		if err != nil {
			t.Fatalf("%v: %v", p, err)
		}
		if m := tensor.MaxAbsDiff(got, want); m > 1e-3 {
			t.Errorf("%v: max diff %v", p, m)
		}
	}
}

// BDC with asymmetric padding: valid geometry where F−1−p stays
// non-negative.
func TestBackwardDataZeroPadding(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	p := conv.Params{N: 1, IH: 9, IW: 9, FH: 3, FW: 3, IC: 2, OC: 2}
	_, w, _, _ := fwdCase(t, rng, p)
	dy := tensor.NewFloat32(p.DYShape())
	dy.FillUniform(rng, -1, 1)
	want := conv.BackwardData32(p, dy, w)
	got, err := BackwardData(p, dy, w)
	if err != nil {
		t.Fatal(err)
	}
	if m := tensor.MaxAbsDiff(got, want); m > 1e-3 {
		t.Errorf("max diff %v", m)
	}
}

func TestForwardShapeErrors(t *testing.T) {
	p := conv.Params{N: 1, IH: 8, IW: 8, FH: 3, FW: 3, IC: 2, OC: 2, PH: 1, PW: 1}
	good := tensor.NewFloat32(p.XShape())
	w := tensor.NewFloat32(p.DWShape())
	if _, err := Forward(p, tensor.NewFloat32(tensor.Shape{N: 1, H: 7, W: 8, C: 2}), w); err == nil {
		t.Error("expected X shape error")
	}
	if _, err := Forward(p, good, tensor.NewFloat32(tensor.Shape{N: 2, H: 3, W: 4, C: 2})); err == nil {
		t.Error("expected W shape error")
	}
	if _, err := Forward(conv.Params{}, good, w); err == nil {
		t.Error("expected invalid-params error")
	}
}

// The forward kernel must pick a higher-throughput variant than the
// residual fallback for common widths.
func TestSelectForwardKernel(t *testing.T) {
	k, err := selectForwardKernel(3)
	if err != nil {
		t.Fatal(err)
	}
	if k.String() != "Omega8(6,3)" {
		t.Errorf("F_W=3 forward kernel = %v, want Omega8(6,3)", k)
	}
	k, err = selectForwardKernel(1)
	if err != nil || k.N != 1 {
		t.Errorf("F_W=1 should fall back to direct, got %v, %v", k, err)
	}
	if _, err := selectForwardKernel(99); err == nil {
		t.Error("expected error for absurd width")
	}
}

// End-to-end: a full layer triad computed by WinRS kernels only (FC by the
// forward kernel, BFC by reduce-split) must satisfy the gradient check.
func TestFullLayerTriadConsistency(t *testing.T) {
	rng := rand.New(rand.NewSource(44))
	p := conv.Params{N: 1, IH: 8, IW: 8, FH: 3, FW: 3, IC: 2, OC: 2, PH: 1, PW: 1}
	x, w, x64, w64 := fwdCase(t, rng, p)
	dy64 := tensor.NewFloat64(p.DYShape())
	for i := range dy64.Data {
		dy64.Data[i] = rng.Float64()*2 - 1
	}
	dy := dy64.ToFloat32()

	// Forward agreement.
	yWin, err := Forward(p, x, w)
	if err != nil {
		t.Fatal(err)
	}
	yRef := conv.Forward64(p, x64, w64)
	if m := tensor.MARE(yWin, yRef); m > 1e-5 {
		t.Fatalf("forward MARE %v", m)
	}
	// Filter-gradient agreement.
	dwWin, err := BackwardFilter(p, x, dy)
	if err != nil {
		t.Fatal(err)
	}
	dwRef := conv.BackwardFilterDirect64(p, x64, dy64)
	if m := tensor.MARE(dwWin, dwRef); m > 1e-4 {
		t.Fatalf("BFC MARE %v", m)
	}
	// Data-gradient agreement.
	dxWin, err := BackwardData(p, dy, w)
	if err != nil {
		t.Fatal(err)
	}
	dxRef := conv.BackwardData32(p, dy, w)
	if m := tensor.MaxAbsDiff(dxWin, dxRef); m > 1e-3 {
		t.Fatalf("BDC max diff %v", m)
	}
}

func BenchmarkForwardWinograd(b *testing.B) {
	p := conv.Params{N: 4, IH: 32, IW: 32, FH: 3, FW: 3, IC: 16, OC: 16, PH: 1, PW: 1}
	rng := rand.New(rand.NewSource(1))
	x := tensor.NewFloat32(p.XShape())
	w := tensor.NewFloat32(p.DWShape())
	x.FillUniform(rng, 0, 1)
	w.FillUniform(rng, 0, 1)
	b.SetBytes(p.DataBytes32())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Forward(p, x, w); err != nil {
			b.Fatal(err)
		}
	}
}
