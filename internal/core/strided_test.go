package core

import (
	"math/rand"
	"testing"

	"winrs/internal/conv"
	"winrs/internal/tensor"
)

func stridedCase(rng *rand.Rand, p conv.StridedParams) (*tensor.Float32, *tensor.Float32, *tensor.Float64) {
	x64 := tensor.NewFloat64(p.XShape())
	dy64 := tensor.NewFloat64(p.DYShape())
	for i := range x64.Data {
		x64.Data[i] = rng.Float64()
	}
	for i := range dy64.Data {
		dy64.Data[i] = rng.Float64()
	}
	want := conv.BackwardFilterStridedDirect64(p, x64, dy64)
	return x64.ToFloat32(), dy64.ToFloat32(), want
}

// Phase-decimated WinRS must match the strided direct reference across
// strides, filter sizes and paddings.
func TestBackwardFilterStridedMatchesDirect(t *testing.T) {
	rng := rand.New(rand.NewSource(81))
	cases := []conv.StridedParams{
		{N: 2, IH: 16, IW: 16, FH: 3, FW: 3, IC: 3, OC: 3, PH: 1, PW: 1, SH: 2, SW: 2},
		{N: 1, IH: 17, IW: 19, FH: 5, FW: 5, IC: 2, OC: 3, PH: 2, PW: 2, SH: 2, SW: 2},
		{N: 1, IH: 15, IW: 15, FH: 3, FW: 3, IC: 2, OC: 2, SH: 2, SW: 2}, // no padding
		{N: 1, IH: 20, IW: 20, FH: 7, FW: 7, IC: 2, OC: 2, PH: 3, PW: 3, SH: 2, SW: 2},
		{N: 1, IH: 18, IW: 18, FH: 4, FW: 4, IC: 2, OC: 2, PH: 1, PW: 1, SH: 3, SW: 3},
		{N: 1, IH: 16, IW: 20, FH: 3, FW: 5, IC: 2, OC: 2, PH: 1, PW: 2, SH: 2, SW: 3}, // mixed strides
		{N: 1, IH: 12, IW: 12, FH: 2, FW: 2, IC: 2, OC: 2, SH: 2, SW: 2},               // patchify (ViT-style)
	}
	for _, p := range cases {
		if err := p.Validate(); err != nil {
			t.Fatalf("%+v: %v", p, err)
		}
		x, dy, want := stridedCase(rng, p)
		got, err := BackwardFilterStrided(p, x, dy)
		if err != nil {
			t.Fatalf("%+v: %v", p, err)
		}
		if m := tensor.MARE(got, want); m > 1e-5 {
			t.Errorf("%+v: MARE %v", p, m)
		}
	}
}

// Stride 1 must short-circuit to the standard path bit-for-bit.
func TestBackwardFilterStridedUnitStride(t *testing.T) {
	rng := rand.New(rand.NewSource(82))
	ps := conv.StridedParams{N: 1, IH: 12, IW: 12, FH: 3, FW: 3, IC: 2, OC: 2,
		PH: 1, PW: 1, SH: 1, SW: 1}
	x, dy, _ := stridedCase(rng, ps)
	got, err := BackwardFilterStrided(ps, x, dy)
	if err != nil {
		t.Fatal(err)
	}
	unit, ok := ps.Unit()
	if !ok {
		t.Fatal("Unit() should succeed at stride 1")
	}
	ref, err := BackwardFilter(unit, x, dy)
	if err != nil {
		t.Fatal(err)
	}
	for i := range got.Data {
		if got.Data[i] != ref.Data[i] {
			t.Fatalf("stride-1 short circuit diverged at %d", i)
		}
	}
}

// Strides larger than the filter leave high-phase taps untouched: every
// tap must still be covered exactly once by the phase interleave.
func TestBackwardFilterStridedLargeStride(t *testing.T) {
	rng := rand.New(rand.NewSource(83))
	p := conv.StridedParams{N: 1, IH: 13, IW: 13, FH: 2, FW: 2, IC: 2, OC: 2,
		SH: 4, SW: 4}
	x, dy, want := stridedCase(rng, p)
	got, err := BackwardFilterStrided(p, x, dy)
	if err != nil {
		t.Fatal(err)
	}
	if m := tensor.MARE(got, want); m > 1e-5 {
		t.Errorf("MARE %v", m)
	}
}

func TestStridedParamsGeometry(t *testing.T) {
	p := conv.StridedParams{N: 1, IH: 224, IW: 224, FH: 7, FW: 7, IC: 3, OC: 64,
		PH: 3, PW: 3, SH: 2, SW: 2}
	// The ResNet stem: 224 -> 112.
	if p.OH() != 112 || p.OW() != 112 {
		t.Errorf("ResNet stem output %dx%d, want 112x112", p.OH(), p.OW())
	}
	if p.StrideH() != 2 || (conv.StridedParams{}).StrideH() != 1 {
		t.Error("stride defaulting wrong")
	}
	bad := conv.StridedParams{N: 1, IH: 2, IW: 2, FH: 5, FW: 5, IC: 1, OC: 1}
	if bad.Validate() == nil {
		t.Error("filter larger than input must be invalid")
	}
}

func TestBackwardFilterStridedShapeErrors(t *testing.T) {
	p := conv.StridedParams{N: 1, IH: 8, IW: 8, FH: 3, FW: 3, IC: 1, OC: 1,
		SH: 2, SW: 2}
	wrong := tensor.NewFloat32(tensor.Shape{N: 1, H: 7, W: 8, C: 1})
	if _, err := BackwardFilterStrided(p, wrong, tensor.NewFloat32(p.DYShape())); err == nil {
		t.Error("expected shape error")
	}
	if _, err := BackwardFilterStrided(conv.StridedParams{}, nil, nil); err == nil {
		t.Error("expected validation error")
	}
}

// The ResNet downsampling layer, end to end at reduced size.
func TestBackwardFilterStridedResNetStyle(t *testing.T) {
	rng := rand.New(rand.NewSource(84))
	p := conv.StridedParams{N: 2, IH: 28, IW: 28, FH: 3, FW: 3, IC: 4, OC: 8,
		PH: 1, PW: 1, SH: 2, SW: 2}
	x, dy, want := stridedCase(rng, p)
	got, err := BackwardFilterStrided(p, x, dy)
	if err != nil {
		t.Fatal(err)
	}
	if m := tensor.MARE(got, want); m > 1e-5 {
		t.Errorf("MARE %v", m)
	}
}

// The strided forward pass (phase sum of fused-Winograd forwards) must
// match the direct strided reference.
func TestForwardStridedMatchesDirect(t *testing.T) {
	rng := rand.New(rand.NewSource(85))
	for _, p := range []conv.StridedParams{
		{N: 2, IH: 16, IW: 16, FH: 3, FW: 3, IC: 3, OC: 3, PH: 1, PW: 1, SH: 2, SW: 2},
		{N: 1, IH: 15, IW: 17, FH: 5, FW: 5, IC: 2, OC: 2, PH: 2, PW: 2, SH: 2, SW: 2},
		{N: 1, IH: 14, IW: 14, FH: 7, FW: 7, IC: 2, OC: 2, PH: 3, PW: 3, SH: 2, SW: 2},
		{N: 1, IH: 13, IW: 16, FH: 3, FW: 4, IC: 2, OC: 2, PH: 1, PW: 1, SH: 3, SW: 2},
		{N: 1, IH: 12, IW: 12, FH: 3, FW: 3, IC: 2, OC: 2, PH: 1, PW: 1, SH: 1, SW: 1},
	} {
		if err := p.Validate(); err != nil {
			t.Fatalf("%+v: %v", p, err)
		}
		x64 := tensor.NewFloat64(p.XShape())
		w64 := tensor.NewFloat64(p.DWShape())
		for i := range x64.Data {
			x64.Data[i] = rng.Float64()*2 - 1
		}
		for i := range w64.Data {
			w64.Data[i] = rng.Float64()*2 - 1
		}
		want := conv.ForwardStridedDirect64(p, x64, w64)
		got, err := ForwardStrided(p, x64.ToFloat32(), w64.ToFloat32())
		if err != nil {
			t.Fatalf("%+v: %v", p, err)
		}
		if m := tensor.MARE(got, want.ToFloat32().ToFloat64()); m > 1e-4 {
			t.Errorf("%+v: MARE %v", p, m)
		}
	}
}

// BackwardDataStrided must be the true gradient of the strided forward
// pass (finite-difference check through the direct reference).
func TestBackwardDataStridedGradientCheck(t *testing.T) {
	rng := rand.New(rand.NewSource(86))
	p := conv.StridedParams{N: 1, IH: 9, IW: 9, FH: 3, FW: 3, IC: 2, OC: 2,
		PH: 1, PW: 1, SH: 2, SW: 2}
	x64 := tensor.NewFloat64(p.XShape())
	w64 := tensor.NewFloat64(p.DWShape())
	dy64 := tensor.NewFloat64(p.DYShape())
	for i := range x64.Data {
		x64.Data[i] = rng.Float64()*2 - 1
	}
	for i := range w64.Data {
		w64.Data[i] = rng.Float64()*2 - 1
	}
	for i := range dy64.Data {
		dy64.Data[i] = rng.Float64()*2 - 1
	}
	dx, err := BackwardDataStrided(p, dy64.ToFloat32(), w64.ToFloat32())
	if err != nil {
		t.Fatal(err)
	}
	dot := func(xt *tensor.Float64) float64 {
		y := conv.ForwardStridedDirect64(p, xt, w64)
		var s float64
		for i := range y.Data {
			s += y.Data[i] * dy64.Data[i]
		}
		return s
	}
	const eps = 1e-6
	for _, idx := range []int{0, 17, 40, len(x64.Data) - 1} {
		xp := tensor.NewFloat64(p.XShape())
		copy(xp.Data, x64.Data)
		xp.Data[idx] += eps
		xm := tensor.NewFloat64(p.XShape())
		copy(xm.Data, x64.Data)
		xm.Data[idx] -= eps
		numeric := (dot(xp) - dot(xm)) / (2 * eps)
		if d := numeric - float64(dx.Data[idx]); d > 1e-3 || d < -1e-3 {
			t.Errorf("grad check idx %d: numeric %v vs strided BDC %v",
				idx, numeric, dx.Data[idx])
		}
	}
}

// A full strided layer step must be self-consistent: descending X along
// BackwardDataStrided reduces the quadratic loss through ForwardStrided.
func TestStridedLayerDescent(t *testing.T) {
	rng := rand.New(rand.NewSource(87))
	p := conv.StridedParams{N: 1, IH: 12, IW: 12, FH: 3, FW: 3, IC: 2, OC: 2,
		PH: 1, PW: 1, SH: 2, SW: 2}
	x := tensor.NewFloat32(p.XShape())
	w := tensor.NewFloat32(p.DWShape())
	target := tensor.NewFloat32(p.DYShape())
	x.FillUniform(rng, -1, 1)
	w.FillUniform(rng, -0.5, 0.5)
	target.FillUniform(rng, -1, 1)
	loss := func() (float64, *tensor.Float32) {
		y, err := ForwardStrided(p, x, w)
		if err != nil {
			t.Fatal(err)
		}
		var s float64
		g := tensor.NewFloat32(p.DYShape())
		for i := range y.Data {
			d := y.Data[i] - target.Data[i]
			s += 0.5 * float64(d) * float64(d)
			g.Data[i] = d
		}
		return s, g
	}
	before, g := loss()
	dx, err := BackwardDataStrided(p, g, w)
	if err != nil {
		t.Fatal(err)
	}
	for i := range x.Data {
		x.Data[i] -= 0.1 * dx.Data[i]
	}
	if after, _ := loss(); after >= before {
		t.Errorf("descent failed: %v -> %v", before, after)
	}
}

// The FP16 strided path must stay in the FP16 accuracy band against the
// quantized-input ground truth.
func TestBackwardFilterStridedHalf(t *testing.T) {
	rng := rand.New(rand.NewSource(88))
	p := conv.StridedParams{N: 2, IH: 16, IW: 16, FH: 3, FW: 3, IC: 3, OC: 3,
		PH: 1, PW: 1, SH: 2, SW: 2}
	x64 := tensor.NewFloat64(p.XShape())
	dy64 := tensor.NewFloat64(p.DYShape())
	for i := range x64.Data {
		x64.Data[i] = rng.Float64()
	}
	for i := range dy64.Data {
		dy64.Data[i] = rng.Float64() * 0.01
	}
	xh := x64.ToFloat32().ToHalf()
	dyh := dy64.ToFloat32().ToHalf()
	// Ground truth from the quantized operands.
	want := conv.BackwardFilterStridedDirect64(p,
		xh.ToFloat32().ToFloat64(), dyh.ToFloat32().ToFloat64())
	got, err := BackwardFilterStridedHalf(p, xh, dyh)
	if err != nil {
		t.Fatal(err)
	}
	if m := tensor.MARE(got, want); m > 5e-3 {
		t.Errorf("FP16 strided MARE %v", m)
	}
	// Stride-1 short circuit.
	p1 := conv.StridedParams{N: 1, IH: 10, IW: 10, FH: 3, FW: 3, IC: 2, OC: 2,
		PH: 1, PW: 1}
	xh1 := tensor.NewHalf(p1.XShape())
	dyh1 := tensor.NewHalf(p1.DYShape())
	if _, err := BackwardFilterStridedHalf(p1, xh1, dyh1); err != nil {
		t.Errorf("stride-1 FP16 short circuit failed: %v", err)
	}
}
