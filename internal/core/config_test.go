package core

import (
	"encoding/json"
	"math/rand"
	"testing"

	"winrs/internal/conv"
	"winrs/internal/tensor"
	"winrs/internal/winograd"
)

func layer(n, hw, f, c int) conv.Params {
	return conv.Params{N: n, IH: hw, IW: hw, FH: f, FW: f, IC: c, OC: c,
		PH: f / 2, PW: f / 2}
}

// Figure 3/5: F_W=3, O_W=16 selects Ω8(3,6) for 12 columns and Ω4(3,2) for
// the remaining 4.
func TestSelectPairPaperExample(t *testing.T) {
	p := conv.Params{N: 32, IH: 16, IW: 18, FH: 3, FW: 3, IC: 64, OC: 64, PH: 0, PW: 0}
	if p.OW() != 16 {
		t.Fatalf("setup: OW = %d, want 16", p.OW())
	}
	pr, err := SelectPair(p, false)
	if err != nil {
		t.Fatal(err)
	}
	if pr.Fast.String() != "Omega8(3,6)" || pr.Resid.String() != "Omega4(3,2)" {
		t.Errorf("pair = %v, want Omega8(3,6)+Omega4(3,2)", pr)
	}
	fastW, residW := pr.Coverage()
	if fastW != 12 || residW != 4 {
		t.Errorf("coverage = %d+%d, want 12+4", fastW, residW)
	}
}

// Every supported F_W (multiples of 2..9) with a range of O_W values must
// yield a pair that exactly tiles O_W with divisor-of-F_W output tiles.
func TestSelectPairInvariants(t *testing.T) {
	for _, fw := range []int{2, 3, 4, 5, 6, 7, 8, 9, 12, 14, 18, 27} {
		for ow := 2; ow <= 64; ow++ {
			p := conv.Params{N: 1, IH: 8, IW: fw + ow - 1, FH: 3, FW: fw,
				IC: 8, OC: 8}
			if p.Validate() != nil {
				continue
			}
			pr, err := SelectPair(p, false)
			if err != nil {
				t.Errorf("F_W=%d O_W=%d: %v", fw, ow, err)
				continue
			}
			if fw%pr.Fast.N != 0 {
				t.Errorf("F_W=%d O_W=%d: pair %v fast n does not divide F_W", fw, ow, pr)
			}
			if pr.ResidUnits > 0 && fw%pr.Resid.N != 0 {
				t.Errorf("F_W=%d O_W=%d: pair %v resid n does not divide F_W", fw, ow, pr)
			}
			fastW, residW := pr.Coverage()
			if fastW+residW != ow {
				t.Errorf("F_W=%d O_W=%d: pair %v covers %d", fw, ow, pr, fastW+residW)
			}
		}
	}
}

func TestSelectPairFP16RestrictsToPortedKernels(t *testing.T) {
	p := conv.Params{N: 32, IH: 16, IW: 20, FH: 3, FW: 3, IC: 64, OC: 64}
	// OW = 18 = 3·6: the FP16 set {r=6, r=2 with n=3} tiles it.
	pr, err := SelectPair(p, true)
	if err != nil {
		t.Fatal(err)
	}
	if !pr.Fast.FP16 || (pr.ResidUnits > 0 && !pr.Resid.FP16) {
		t.Errorf("FP16 selection returned non-FP16 kernel: %v", pr)
	}
}

// When the FP16 subset cannot tile O_W (odd widths with only even r
// available for n=3), selection must fall back to the full registry.
func TestSelectPairFP16Fallback(t *testing.T) {
	p := conv.Params{N: 1, IH: 8, IW: 9, FH: 3, FW: 3, IC: 8, OC: 8}
	if p.OW()%2 == 0 {
		t.Fatalf("setup: OW = %d should be odd", p.OW())
	}
	pr, err := SelectPair(p, true)
	if err != nil {
		t.Fatalf("fallback failed: %v", err)
	}
	fastW, residW := pr.Coverage()
	if fastW+residW != p.OW() {
		t.Errorf("fallback pair %v covers %d, want %d", pr, fastW+residW, p.OW())
	}
}

func TestSelectPairDirectFallback(t *testing.T) {
	// O_W = 1 is below every registry r: covered by one direct unit.
	p := conv.Params{N: 1, IH: 3, IW: 3, FH: 3, FW: 3, IC: 1, OC: 1}
	if p.OW() != 1 {
		t.Fatalf("setup: OW = %d", p.OW())
	}
	pr, err := SelectPair(p, false)
	if err != nil {
		t.Fatal(err)
	}
	if pr.Fast.N != 1 || pr.Fast.R != 1 || pr.FastUnits != 1 {
		t.Errorf("pair = %+v, want single direct F(1,1) unit", pr)
	}
}

// Algorithm 1, Figure 9 behaviour: with large channels a single segment
// saturates the device (Z = 1, zero workspace); shrinking channels raises
// the segment count. The ladder follows the paper's constant-complexity
// rule (channels doubled when feature maps halve).
func TestEstimateZChannelTrend(t *testing.T) {
	hw := DefaultHardware
	zOf := func(hwDim, c int) int {
		p := layer(32, hwDim, 3, c)
		pr, err := SelectPair(p, false)
		if err != nil {
			t.Fatal(err)
		}
		return EstimateZ(p, pr, hw, false)
	}
	ladder := [][2]int{{224, 64}, {112, 128}, {56, 256}, {28, 512}, {14, 1024}}
	zs := make([]int, len(ladder))
	for i, hc := range ladder {
		zs[i] = zOf(hc[0], hc[1])
	}
	for i := 1; i < len(zs); i++ {
		if zs[i] > zs[i-1] {
			t.Errorf("segment counts not non-increasing with channel growth: %v", zs)
			break
		}
	}
	if zs[0] < 8 {
		t.Errorf("64 channels @224: Z = %d, expected substantial segmentation", zs[0])
	}
	if zs[len(zs)-1] != 1 {
		t.Errorf("1024 channels @14: Z = %d, want 1 (paper Fig 9)", zs[len(zs)-1])
	}
}

func TestEstimateZRespectsWorkloadFloor(t *testing.T) {
	// A tiny workload must not fragment into many segments.
	p := layer(1, 16, 3, 8)
	pr, err := SelectPair(p, false)
	if err != nil {
		t.Fatal(err)
	}
	z := EstimateZ(p, pr, DefaultHardware, false)
	if z > 2 {
		t.Errorf("tiny workload Z = %d, want <= 2", z)
	}
}

func TestBlocksPerSegment(t *testing.T) {
	p := layer(32, 224, 3, 64)
	k := mustKernel(t, 3, 6)
	// FP32 cache block 64×32: 1·2·3 = 6 blocks (⌈9/3⌉ = 3 width tiles).
	if got := BlocksPerSegment(k, p, false); got != 6 {
		t.Errorf("BlocksPerSegment = %d, want 6", got)
	}
}

func TestSegmentShapeInvariants(t *testing.T) {
	for _, c := range []struct {
		p    conv.Params
		zHat int
	}{
		{layer(32, 224, 3, 64), 16},
		{layer(32, 112, 5, 128), 8},
		{layer(8, 56, 7, 256), 4},
		{layer(1, 16, 3, 8), 1},
		{layer(4, 64, 9, 64), 32},
		{layer(2, 33, 3, 16), 6}, // odd output width
	} {
		pr, err := SelectPair(c.p, false)
		if err != nil {
			t.Fatalf("%v: %v", c.p, err)
		}
		sh, sw := SegmentShape(c.p, pr, c.zHat)
		if sh < 1 || sh > c.p.OH() {
			t.Errorf("%v zHat=%d: SH=%d outside [1,%d]", c.p, c.zHat, sh, c.p.OH())
		}
		if sw < pr.Fast.R || sw%pr.Fast.R != 0 {
			t.Errorf("%v zHat=%d: SW=%d not a positive multiple of r0=%d",
				c.p, c.zHat, sw, pr.Fast.R)
		}
		if sh <= c.p.PH && c.p.OH() > c.p.PH {
			t.Errorf("%v zHat=%d: SH=%d does not exceed padding %d", c.p, c.zHat, sh, c.p.PH)
		}
	}
}

// The realized segment layout must partition ∇Y exactly: disjoint cover of
// [0,O_H)×[0,O_W), each segment's width a multiple of its kernel's r.
func TestLayoutSegmentsPartition(t *testing.T) {
	for _, p := range []conv.Params{
		layer(32, 224, 3, 64),
		layer(32, 112, 5, 128),
		layer(16, 56, 4, 256),
		layer(2, 33, 3, 16),
		layer(1, 17, 2, 8),
		layer(4, 64, 9, 64),
	} {
		for _, forceZ := range []int{0, 1, 4, 17, 64} {
			opts := []Option{}
			if forceZ > 0 {
				opts = append(opts, WithSegments(forceZ))
			}
			cfg, err := Configure(p, opts...)
			if err != nil {
				t.Fatalf("%v: %v", p, err)
			}
			covered := make([]int, p.OH()*p.OW())
			for _, s := range cfg.Segments {
				if s.Cols()%s.K.R != 0 {
					t.Errorf("%v: segment width %d not multiple of r=%d", p, s.Cols(), s.K.R)
				}
				if s.Rows() < 1 {
					t.Errorf("%v: empty segment rows", p)
				}
				for y := s.Row0; y < s.Row1; y++ {
					for x := s.Col0; x < s.Col1; x++ {
						covered[y*p.OW()+x]++
					}
				}
			}
			for i, c := range covered {
				if c != 1 {
					t.Fatalf("%v forceZ=%d: cell %d covered %d times", p, forceZ, i, c)
				}
			}
			if cfg.WorkspaceBytes() != int64(cfg.Z()-1)*int64(p.DWShape().Elems())*4 {
				t.Errorf("%v: workspace accounting mismatch", p)
			}
		}
	}
}

// Large channels on the paper's Figure 9 sweep must produce Z = 1 and hence
// zero workspace. O_W is kept a multiple of the fast r so no residual
// column forces a second segment.
func TestConfigureZeroWorkspaceAtLargeChannels(t *testing.T) {
	p := conv.Params{N: 32, IH: 14, IW: 12, FH: 3, FW: 3, IC: 1024, OC: 1024,
		PH: 1, PW: 1} // OW = 12, a multiple of 6
	cfg, err := Configure(p)
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Z() != 1 || cfg.WorkspaceBytes() != 0 {
		t.Errorf("Z = %d, workspace = %d; want 1 segment, 0 bytes (pair %v, target %d)",
			cfg.Z(), cfg.WorkspaceBytes(), cfg.Pair, cfg.ZTarget)
	}
}

func TestConfigureRejectsInvalid(t *testing.T) {
	if _, err := Configure(conv.Params{}); err == nil {
		t.Error("expected error for zero params")
	}
}

func mustKernel(t *testing.T, n, r int) winograd.Kernel {
	t.Helper()
	k, ok := winograd.Lookup(n, r)
	if !ok {
		t.Fatalf("kernel (%d,%d) missing", n, r)
	}
	return k
}

// The workspace-limit knob must clamp segmentation: a zero budget forces
// single-segment execution (plus any residual column), and the realized
// workspace never exceeds the budget.
func TestWorkspaceLimit(t *testing.T) {
	p := conv.Params{N: 32, IH: 224, IW: 222, FH: 3, FW: 3, IC: 64, OC: 64,
		PH: 1, PW: 1} // OW multiple of 6: no residual column
	free, err := Configure(p)
	if err != nil {
		t.Fatal(err)
	}
	if free.Z() < 8 {
		t.Fatalf("expected heavy segmentation without a limit, got %d", free.Z())
	}
	zero, err := Configure(p, WithWorkspaceLimit(0))
	if err != nil {
		t.Fatal(err)
	}
	if zero.Z() != 1 || zero.WorkspaceBytes() != 0 {
		t.Errorf("zero budget: Z=%d ws=%d, want 1 and 0", zero.Z(), zero.WorkspaceBytes())
	}
	budget := int64(4 << 20)
	capped, err := Configure(p, WithWorkspaceLimit(budget))
	if err != nil {
		t.Fatal(err)
	}
	if capped.WorkspaceBytes() > budget {
		t.Errorf("workspace %d exceeds budget %d", capped.WorkspaceBytes(), budget)
	}
	if capped.Z() <= zero.Z() || capped.Z() >= free.Z() {
		t.Errorf("capped Z=%d should sit between 1 and %d", capped.Z(), free.Z())
	}
	// Results stay correct under any budget.
	rng := rand.New(rand.NewSource(9))
	ps := conv.Params{N: 2, IH: 20, IW: 18, FH: 3, FW: 3, IC: 4, OC: 4, PH: 1, PW: 1}
	x64 := tensor.NewFloat64(ps.XShape())
	dy64 := tensor.NewFloat64(ps.DYShape())
	for i := range x64.Data {
		x64.Data[i] = rng.Float64()
	}
	for i := range dy64.Data {
		dy64.Data[i] = rng.Float64()
	}
	want := conv.BackwardFilterDirect64(ps, x64, dy64)
	cfg, err := Configure(ps, WithWorkspaceLimit(0))
	if err != nil {
		t.Fatal(err)
	}
	got := Execute(cfg, x64.ToFloat32(), dy64.ToFloat32())
	if m := tensor.MARE(got, want); m > 1e-5 {
		t.Errorf("zero-workspace execution MARE %v", m)
	}
}

// Inequality (5) of §4.3: when O_W is not a multiple of the segment width,
// shrinking S_W reduces the total segment count Z (boundary redundancy).
// Verify the realized layout follows the monotonicity the paper derives.
func TestSegmentWidthInequality5(t *testing.T) {
	p := conv.Params{N: 8, IH: 46, IW: 46, FH: 3, FW: 3, IC: 16, OC: 16,
		PH: 1, PW: 1} // OW = 46: not a multiple of 12 (2 fast units)
	pr, err := SelectPair(p, false)
	if err != nil {
		t.Fatal(err)
	}
	r0 := pr.Fast.R
	count := func(sw int) int {
		return len(layoutSegments(p, pr, p.OH(), sw))
	}
	// With a fixed single row chunk, the column count (hence Z) must be
	// non-increasing as S_W grows, and minimal S_W = r0 maximizes Z.
	prev := count(r0)
	for sw := 2 * r0; sw <= 6*r0; sw += r0 {
		cur := count(sw)
		if cur > prev {
			t.Errorf("S_W=%d produced more segments (%d) than S_W=%d (%d)",
				sw, cur, sw-r0, prev)
		}
		prev = cur
	}
}

func TestDescribeAndJSON(t *testing.T) {
	p := conv.Params{N: 32, IH: 224, IW: 224, FH: 3, FW: 3, IC: 64, OC: 64,
		PH: 1, PW: 1}
	cfg, err := Configure(p)
	if err != nil {
		t.Fatal(err)
	}
	d := cfg.Describe()
	if d.KernelPair != cfg.Pair.String() || d.Segments != cfg.Z() {
		t.Errorf("description mismatch: %+v", d)
	}
	if d.Layer.OH != 224 || d.Layer.DirectGFLOPs < 100 {
		t.Errorf("layer summary wrong: %+v", d.Layer)
	}
	if d.WorkspaceBytes != cfg.WorkspaceBytes() || d.TotalBlocks < cfg.Z() {
		t.Errorf("accounting wrong: %+v", d)
	}
	blob, err := json.Marshal(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var back Description
	if err := json.Unmarshal(blob, &back); err != nil {
		t.Fatal(err)
	}
	if back.KernelPair != d.KernelPair || back.Segments != d.Segments {
		t.Errorf("JSON round trip mismatch: %+v", back)
	}
}

// Algorithm 1 line 3: when one segment already provides enough blocks for
// full utilization and the FC/BDC budget is small, the estimate must short-
// circuit to Z = 1 without padding games.
func TestEstimateZLine3EarlyExit(t *testing.T) {
	// Huge channels, tiny maps: b2 is enormous, zHat below 2.
	p := conv.Params{N: 8, IH: 8, IW: 8, FH: 3, FW: 3, IC: 1024, OC: 1024,
		PH: 1, PW: 1}
	pr, err := SelectPair(p, false)
	if err != nil {
		t.Fatal(err)
	}
	if b2 := BlocksPerSegment(pr.Fast, p, false); b2 < 512 {
		t.Fatalf("setup: b2 = %d too small for the early-exit regime", b2)
	}
	if z := EstimateZ(p, pr, DefaultHardware, false); z != 1 {
		t.Errorf("Z = %d, want 1 (line 3 early exit)", z)
	}
}
