package core

import (
	"math"

	"winrs/internal/bf16"
	"winrs/internal/conv"
	"winrs/internal/fp8"
	"winrs/internal/tensor"
	"winrs/internal/winograd"
)

// Quantizer models a reduced-precision storage format in the value domain:
// Round maps a float32 to the nearest representable value of the format.
// The quantized execution path mirrors the FP16 Tensor-Core pipeline —
// operands and transformed tiles are stored in the format, products
// accumulate in FP32, output transform and bucket reduction stay FP32 —
// which is exactly how the paper says the FP16 kernels "can be ported to
// BF16, and further to FP8 and INT8" (§8).
type Quantizer struct {
	// Name labels the format in reports.
	Name string
	// Round quantizes one value (must be idempotent).
	Round func(float32) float32
	// RoundSlice, when set, quantizes a whole slice in place and must be
	// bit-identical to Round per element. The execution path uses it to
	// round gathered panels in bulk (the formats' table-driven kernels);
	// when nil the path falls back to per-element Round.
	RoundSlice func([]float32)
	// UseScaling selects the eq. (7) scaling matrices for α ≥ 16
	// transforms; formats with a narrow dynamic range (FP16, FP8) need
	// them, wide-exponent formats (BF16) do not.
	UseScaling bool
}

// QuantBF16 is the bfloat16 storage format: float32 range, 8-bit mantissa.
var QuantBF16 = Quantizer{Name: "BF16", Round: bf16.Round, RoundSlice: bf16.RoundSlice}

// QuantFP8E4M3 is the OCP FP8 E4M3 format (max 448), scaled transforms on.
var QuantFP8E4M3 = Quantizer{Name: "FP8-E4M3", Round: fp8.E4M3.Round, RoundSlice: fp8.E4M3.RoundSlice, UseScaling: true}

// QuantFP8E5M2 is the OCP FP8 E5M2 format (max 57344), scaled transforms on.
var QuantFP8E5M2 = Quantizer{Name: "FP8-E5M2", Round: fp8.E5M2.Round, RoundSlice: fp8.E5M2.RoundSlice, UseScaling: true}

// QuantInt8 returns a symmetric INT8 quantizer with the given absolute
// maximum: values snap to the 255-level grid absmax·{-127..127}/127,
// saturating beyond ±absmax.
func QuantInt8(absmax float32) Quantizer {
	scale := absmax / 127
	return Quantizer{
		Name: "INT8",
		Round: func(v float32) float32 {
			if scale == 0 {
				return 0
			}
			q := float32(math.RoundToEven(float64(v / scale)))
			if q > 127 {
				q = 127
			}
			if q < -127 {
				q = -127
			}
			return q * scale
		},
		UseScaling: true,
	}
}

// ExecuteQuantized runs the configured plan with the given storage format.
// x and dy are float32 tensors whose values are quantized on load (a
// pre-quantized tensor passes through unchanged because Round is
// idempotent). The result is FP32, like the FP16 path.
func ExecuteQuantized(cfg *Config, x, dy *tensor.Float32, q Quantizer) *tensor.Float32 {
	p := cfg.Params
	if x.Shape != p.XShape() || dy.Shape != p.DYShape() {
		panic("core: ExecuteQuantized operand shape mismatch")
	}
	if q.Round == nil {
		panic("core: ExecuteQuantized requires a Round function")
	}
	ws := NewWorkspace(cfg)
	runUnitsFunc(cfg, func(si int, seg Segment, fh, j int) {
		segmentTileQuantized(p, seg, fh, j, x, dy, ws.buckets[si], q)
	})
	return reduceInto(cfg, ws.buckets, nil)
}

// BackwardFilterQuantized is the one-call quantized path.
func BackwardFilterQuantized(p conv.Params, x, dy *tensor.Float32, q Quantizer, opts ...Option) (*tensor.Float32, error) {
	cfg, err := Configure(p, opts...)
	if err != nil {
		return nil, err
	}
	return ExecuteQuantized(cfg, x, dy, q), nil
}

// segmentTileQuantized mirrors segmentTileHalf for an arbitrary storage
// format: gather → quantize → FP32 transform → quantize ("SMEM storage in
// the format") → FP32-accumulated EWM → FP32 output transform.
func segmentTileQuantized(p conv.Params, seg Segment, fh, j int,
	x, dy *tensor.Float32, bucket []float32, q Quantizer) {
	k := seg.K
	tr := k.Transform()
	bal := tr.Balanced()
	gMat, dMat, aMat := bal.G, bal.D, bal.A
	if q.UseScaling && tr.Alpha >= 16 {
		sc := tr.Scaled()
		gMat, dMat, aMat = sc.G, sc.D, sc.A
	}
	gPlan, dtPlan := winograd.PanelPlansFor(gMat, dMat)
	n, r, alpha := tr.N, tr.R, tr.Alpha
	oc, ic := p.OC, p.IC

	s := getTileScratch()
	defer putTileScratch(s)
	v := growF32Zero(&s.v, alpha*oc*ic)
	wRaw := growF32(&s.wRaw, r*oc)
	wHat := growF32(&s.wHatF, alpha*oc)
	xRaw := growF32(&s.xRaw, alpha*ic)
	xHat := growF32(&s.xHatF, alpha*ic)
	colBase := j * n

	for oh := seg.Row0; oh < seg.Row1; oh++ {
		ih := oh + fh - p.PH
		if ih < 0 || ih >= p.IH {
			continue // height-axis clipping
		}
		for ow0 := seg.Col0; ow0 < seg.Col1; ow0 += r {
			for nb := 0; nb < p.N; nb++ {
				// Gather the rows as raw float32, then quantize the whole
				// panel in one bulk call — bit-identical to per-element
				// rounding during the gather (Round is element-wise and
				// Round(0) = 0 for every format, so the zero-filled clipped
				// rows are unaffected).
				for u := 0; u < r; u++ {
					base := dy.Shape.Index(nb, oh, ow0+u, 0)
					copy(wRaw[u*oc:(u+1)*oc], dy.Data[base:base+oc])
				}
				quantizeSlice(wRaw, q)
				gPlan.MulPanel(wRaw, wHat, r, oc)
				quantizeSlice(wHat, q)
				for u := 0; u < alpha; u++ {
					iw := ow0 + colBase + u - p.PW
					dst := xRaw[u*ic : (u+1)*ic]
					if iw < 0 || iw >= p.IW {
						for i := range dst {
							dst[i] = 0
						}
						continue
					}
					base := x.Shape.Index(nb, ih, iw, 0)
					copy(dst, x.Data[base:base+ic])
				}
				quantizeSlice(xRaw, q)
				dtPlan.MulPanel(xRaw, xHat, alpha, ic)
				quantizeSlice(xHat, q)
				ewmPanels(v, wHat, xHat, alpha, oc, ic)
			}
		}
	}
	writeOutput(p, aMat, v, bucket, fh, colBase, n, alpha, oc, ic, growF32(&s.acc, alpha))
}

// quantizeSlice rounds vs in place, preferring the format's bulk kernel.
// INT8 (and any caller-supplied Quantizer without a bulk kernel) takes
// the per-element fallback.
func quantizeSlice(vs []float32, q Quantizer) {
	if q.RoundSlice != nil {
		q.RoundSlice(vs)
		return
	}
	for i, v := range vs {
		vs[i] = q.Round(v)
	}
}
