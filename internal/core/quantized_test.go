package core

import (
	"math/rand"
	"testing"

	"winrs/internal/conv"
	"winrs/internal/tensor"
)

func quantLayer() conv.Params {
	return conv.Params{N: 2, IH: 16, IW: 16, FH: 3, FW: 3, IC: 4, OC: 4, PH: 1, PW: 1}
}

func quantOperands(t testing.TB, p conv.Params, seed int64) (*tensor.Float32, *tensor.Float32, *tensor.Float64) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	x64 := tensor.NewFloat64(p.XShape())
	dy64 := tensor.NewFloat64(p.DYShape())
	for i := range x64.Data {
		x64.Data[i] = rng.Float64()
	}
	for i := range dy64.Data {
		dy64.Data[i] = rng.Float64() * 0.01
	}
	return x64.ToFloat32(), dy64.ToFloat32(),
		conv.BackwardFilterDirect64(p, x64, dy64)
}

// Identity quantizer must reproduce the FP32 path bit-for-bit.
func TestQuantizedIdentityMatchesFP32(t *testing.T) {
	p := quantLayer()
	x, dy, _ := quantOperands(t, p, 1)
	cfg, err := Configure(p)
	if err != nil {
		t.Fatal(err)
	}
	ident := Quantizer{Name: "ident", Round: func(v float32) float32 { return v }}
	a := Execute(cfg, x, dy)
	b := ExecuteQuantized(cfg, x, dy, ident)
	for i := range a.Data {
		if a.Data[i] != b.Data[i] {
			t.Fatalf("identity quantizer diverged at %d: %v vs %v",
				i, a.Data[i], b.Data[i])
		}
	}
}

// Accuracy ordering across formats on unit-range data: FP32 best, then
// BF16/FP8-E4M3, with FP8-E5M2 (2 mantissa bits) the coarsest float format.
func TestQuantizedAccuracyOrdering(t *testing.T) {
	p := quantLayer()
	x, dy, want := quantOperands(t, p, 2)
	cfg, err := Configure(p)
	if err != nil {
		t.Fatal(err)
	}
	mare := func(q Quantizer) float64 {
		return tensor.MARE(ExecuteQuantized(cfg, x, dy, q), want)
	}
	fp32 := tensor.MARE(Execute(cfg, x, dy), want)
	bf := mare(QuantBF16)
	e4m3 := mare(QuantFP8E4M3)
	e5m2 := mare(QuantFP8E5M2)

	if fp32 >= bf {
		t.Errorf("FP32 (%v) should beat BF16 (%v)", fp32, bf)
	}
	if bf >= e4m3 {
		t.Errorf("BF16 (%v) should beat FP8-E4M3 (%v)", bf, e4m3)
	}
	if e4m3 >= e5m2 {
		t.Errorf("FP8-E4M3 (%v) should beat FP8-E5M2 (%v)", e4m3, e5m2)
	}
	// Sanity bands: BF16 ~1e-2 mantissa → MARE well below 1e-1; all
	// formats produce usable gradients.
	if bf > 5e-2 || e5m2 > 0.5 {
		t.Errorf("quantized MAREs out of band: bf16=%v e5m2=%v", bf, e5m2)
	}
}

func TestQuantizedInt8(t *testing.T) {
	p := quantLayer()
	// Symmetric INT8 uses one grid for both operands, so both must live at
	// a comparable scale (per-tensor scales are the caller's job, as in
	// INT8 training frameworks): use unit-range dY rather than the FP16
	// test's 1e-2 scaling.
	rng := rand.New(rand.NewSource(3))
	x64 := tensor.NewFloat64(p.XShape())
	dy64 := tensor.NewFloat64(p.DYShape())
	for i := range x64.Data {
		x64.Data[i] = rng.Float64()
	}
	for i := range dy64.Data {
		dy64.Data[i] = rng.Float64()
	}
	want := conv.BackwardFilterDirect64(p, x64, dy64)
	x, dy := x64.ToFloat32(), dy64.ToFloat32()
	cfg, err := Configure(p)
	if err != nil {
		t.Fatal(err)
	}
	// absmax chosen from the transformed-value range of unit-scale inputs.
	got := ExecuteQuantized(cfg, x, dy, QuantInt8(4))
	m := tensor.MARE(got, want)
	if m > 0.2 {
		t.Errorf("INT8 MARE %v unusable", m)
	}
	// Degenerate quantizer: absmax 0 produces all-zero gradients, not NaN.
	zero := ExecuteQuantized(cfg, x, dy, QuantInt8(0))
	for i, v := range zero.Data {
		if v != 0 {
			t.Fatalf("zero-scale INT8 should produce zeros, got %v at %d", v, i)
		}
	}
}

// BF16's wide exponent must survive inputs that overflow binary16.
func TestBF16SurvivesFP16OverflowRange(t *testing.T) {
	p := quantLayer()
	rng := rand.New(rand.NewSource(4))
	x64 := tensor.NewFloat64(p.XShape())
	dy64 := tensor.NewFloat64(p.DYShape())
	for i := range x64.Data {
		x64.Data[i] = rng.Float64() * 1e6 // far beyond binary16's 65504
	}
	for i := range dy64.Data {
		dy64.Data[i] = rng.Float64() * 1e-6
	}
	want := conv.BackwardFilterDirect64(p, x64, dy64)
	got, err := BackwardFilterQuantized(p, x64.ToFloat32(), dy64.ToFloat32(), QuantBF16)
	if err != nil {
		t.Fatal(err)
	}
	if m := tensor.MARE(got, want); m > 5e-2 {
		t.Errorf("BF16 MARE %v on large-range inputs", m)
	}
}

func TestQuantizedPanicsWithoutRound(t *testing.T) {
	p := quantLayer()
	cfg, err := Configure(p)
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Error("expected panic for nil Round")
		}
	}()
	ExecuteQuantized(cfg, tensor.NewFloat32(p.XShape()),
		tensor.NewFloat32(p.DYShape()), Quantizer{Name: "broken"})
}

// The Ω16 kernels must stay finite under FP8 thanks to the scaling
// matrices (UseScaling path).
func TestQuantizedFP8LargeAlpha(t *testing.T) {
	p := conv.Params{N: 1, IH: 24, IW: 24, FH: 9, FW: 9, IC: 2, OC: 2, PH: 4, PW: 4}
	x, dy, want := quantOperands(t, p, 5)
	got, err := BackwardFilterQuantized(p, x, dy, QuantFP8E4M3)
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range got.Data {
		if v != v {
			t.Fatalf("NaN at %d", i)
		}
	}
	// FP8's 3-bit mantissa plus α = 16 output-transform cancellation is
	// genuinely marginal (a finding of this port, consistent with FP8
	// Winograd literature sticking to small tiles); assert only that the
	// result stays bounded and finite.
	if m := tensor.MARE(got, want); m > 1.5 {
		t.Errorf("FP8 Omega16 MARE %v", m)
	}
}

// The bulk RoundSlice kernels must leave the quantized execution
// bit-identical to the per-element fallback (RoundSlice stripped from the
// same quantizer) for every format that ships one.
func TestQuantizedBulkMatchesScalarFallback(t *testing.T) {
	p := quantLayer()
	x, dy, _ := quantOperands(t, p, 7)
	cfg, err := Configure(p)
	if err != nil {
		t.Fatal(err)
	}
	for _, q := range []Quantizer{QuantBF16, QuantFP8E4M3, QuantFP8E5M2} {
		if q.RoundSlice == nil {
			t.Fatalf("%s: expected a bulk kernel", q.Name)
		}
		scalar := q
		scalar.RoundSlice = nil
		want := ExecuteQuantized(cfg, x, dy, scalar)
		got := ExecuteQuantized(cfg, x, dy, q)
		for i := range want.Data {
			if got.Data[i] != want.Data[i] {
				t.Fatalf("%s: bulk path diverged from scalar fallback at %d: %v vs %v",
					q.Name, i, got.Data[i], want.Data[i])
			}
		}
	}
}
