package core

import (
	"math"

	"winrs/internal/conv"
	"winrs/internal/kahan"
	"winrs/internal/tensor"
)

// This file implements the paper's N-D extension (§3 Level 2) for k = 3:
// "in Partitioning, divide ∇Y ∈ R^{N×D1×…×Dk×OC} into Z segments; in
// Dimension Reduction, decompose ∇Y(z) into 1-D filters ∈ R^{N×Sk(z)×OC}".
// Concretely, the depth and height axes are flattened into the row axis of
// the 2-D machinery — every (o_d, o_h) pair is one 1-D filter — and the
// width axis carries the reduce-split F(n,r) kernels unchanged. Height- and
// depth-axis zero padding are both clipped (the Figure 7 optimization,
// applied per axis).

// Config3D is the adapted plan for one volumetric layer.
type Config3D struct {
	Params   conv.Params3D
	Pair     Pair
	ZTarget  int
	Segments []Segment // Row indices span the flattened (o_d·O_H + o_h) axis
	Hardware Hardware
}

// Z returns the realized segment count.
func (c *Config3D) Z() int { return len(c.Segments) }

// WorkspaceBytes returns the bucket workspace (Z−1 × sizeof(∇W)).
func (c *Config3D) WorkspaceBytes() int64 {
	return int64(c.Z()-1) * int64(c.Params.DWShape().Elems()) * 4
}

// Configure3D runs configuration adaptation for a 3-D layer: the kernel
// pair comes from (F_W, O_W) exactly as in 2-D; the segment count follows
// Algorithm 1 with 3-D block counts; the segment grid partitions the
// flattened (O_D·O_H) × O_W plane.
func Configure3D(p conv.Params3D, opts ...Option) (*Config3D, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	o := configOpts{hw: DefaultHardware}
	for _, f := range opts {
		f(&o)
	}
	p2 := flat2D(p)
	pr, err := SelectPair(p2, o.fp16)
	if err != nil {
		return nil, err
	}
	zHat := o.forceZ
	if zHat <= 0 {
		zHat = estimateZ3D(p, pr, o.hw)
	}
	// Segment-shape calculation on the flattened plane; padding rows are
	// interleaved (each o_h strip repeats per o_d), so the minimum segment
	// height guard uses p_H only.
	sh, sw := SegmentShape(p2, pr, zHat)
	cfg := &Config3D{Params: p, Pair: pr, ZTarget: zHat, Hardware: o.hw}
	cfg.Segments = layoutSegments(p2, pr, sh, sw)
	return cfg, nil
}

// flat2D folds the depth axis into the height axis for the planning
// helpers: the flattened output plane is (O_D·O_H) × O_W. Only the fields
// the planners read (channels, batch, output extents via IH/FH/PH back-
// derivation) need to be consistent.
func flat2D(p conv.Params3D) conv.Params {
	ohFlat := p.OD() * p.OH()
	return conv.Params{
		N:  p.N,
		IH: ohFlat + p.FH - 1 - 2*p.PH, // OH() == ohFlat
		IW: p.IW,
		FH: p.FH, FW: p.FW,
		IC: p.IC, OC: p.OC,
		PH: p.PH, PW: p.PW,
	}
}

// estimateZ3D mirrors Algorithm 1 with volumetric block counts.
func estimateZ3D(p conv.Params3D, pr Pair, hw Hardware) int {
	spatialOut := p.N * ceilDiv(p.OD()*p.OH(), 2) * ceilDiv(p.OW(), 2)
	spatialIn := p.N * ceilDiv(p.ID*p.IH, 2) * ceilDiv(p.IW, 2)
	b0 := ceilDiv(p.OC, 64) * ceilDiv(spatialOut, 32)
	b1 := ceilDiv(p.IC, 64) * ceilDiv(spatialIn, 32)
	bn, bm := pr.Fast.CacheBlock(false)
	b2 := ceilDiv(p.OC, bn) * ceilDiv(p.IC, bm) *
		ceilDiv(p.FD*p.FH*p.FW, pr.Fast.N)

	zHat := float64(b0+b1) / (1.45 * float64(b2))
	k := latencyBlocksPerSM(pr.Fast.Intensity(false))
	b2Full := k * float64(hw.NSM)
	dwBytes := int64(p.DWShape().Elems()) * 4
	dataBytes := int64(p.XShape().Elems()+p.DYShape().Elems())*4 + dwBytes
	zMax := 1 + int(2*dataBytes/maxI64(1, dwBytes))
	if zMax > 128 {
		zMax = 128
	}
	if zHat < 2 && float64(b2) >= b2Full {
		return 1
	}
	z1 := ceilDiv(int(2*b2Full), b2)
	z2 := int(math.Ceil(float64(p.FLOPs()) / 1e9))
	z := int(zHat)
	if z < 1 {
		z = 1
	}
	z = minInt(z, z1, z2, p.N*p.OD()*p.OH()*p.OW()/512)
	if z < 1 {
		z = 1
	}
	pp := 1 << bits(z)
	if pp > 8 {
		pp = 8
	}
	z = pp * ceilDiv(z, pp)
	if z > zMax {
		z = zMax
	}
	if z < 1 {
		z = 1
	}
	return z
}

// Execute3D runs the fused FP32 3-D pipeline: tasks are
// (segment, f_d, f_h, width-tile) units writing disjoint bucket regions.
func Execute3D(cfg *Config3D, x, dy *tensor.Float325) *tensor.Float325 {
	p := cfg.Params
	if x.Shape != p.XShape() || dy.Shape != p.DYShape() {
		panic("core: Execute3D operand shape mismatch")
	}
	elems := p.DWShape().Elems()
	buckets := make([][]float32, cfg.Z())
	for i := range buckets {
		buckets[i] = make([]float32, elems)
	}
	// Per-segment unit counts as a prefix table; global indices decode
	// arithmetically, so no task slice is materialized.
	off := make([]int, len(cfg.Segments)+1)
	for si, seg := range cfg.Segments {
		off[si+1] = off[si] + p.FD*p.FH*(p.FW/seg.K.N)
	}
	execPool().RunFunc(off[len(off)-1], 0, func(lo, hi int) {
		si := 0
		for i := lo; i < hi; i++ {
			for i >= off[si+1] {
				si++ // i only grows, so si scans forward
			}
			seg := cfg.Segments[si]
			jTiles := p.FW / seg.K.N
			local := i - off[si]
			fd := local / (p.FH * jTiles)
			fh := local / jTiles % p.FH
			segmentTile3D(p, seg, fd, fh, local%jTiles, x, dy, buckets[si])
		}
	})

	dw := tensor.NewFloat325(p.DWShape())
	if len(buckets) == 1 {
		copy(dw.Data, buckets[0])
		return dw
	}
	kahan.ReduceBuckets(dw.Data, buckets)
	return dw
}

// BackwardFilter3D is the one-call volumetric API.
func BackwardFilter3D(p conv.Params3D, x, dy *tensor.Float325, opts ...Option) (*tensor.Float325, error) {
	cfg, err := Configure3D(p, opts...)
	if err != nil {
		return nil, err
	}
	return Execute3D(cfg, x, dy), nil
}

// segmentTile3D is segmentTile32 with the flattened (o_d, o_h) row axis
// and two clipped padding axes.
func segmentTile3D(p conv.Params3D, seg Segment, fd, fh, j int,
	x, dy *tensor.Float325, bucket []float32) {
	k := seg.K
	tr := k.Transform().Balanced()
	gPlan, dtPlan := tr.PanelPlans()
	n, r, alpha := tr.N, tr.R, tr.Alpha
	oc, ic := p.OC, p.IC
	oh := p.OH()

	s := getTileScratch()
	defer putTileScratch(s)
	v := growF32Zero(&s.v, alpha*oc*ic)
	wRaw := growF32(&s.wRaw, r*oc)
	wHat := growF32(&s.wHatF, alpha*oc)
	xRaw := growF32(&s.xRaw, alpha*ic)
	xHat := growF32(&s.xHatF, alpha*ic)
	colBase := j * n
	dwShape := p.DWShape()

	for row := seg.Row0; row < seg.Row1; row++ {
		od, oyh := row/oh, row%oh
		id := od + fd - p.PD
		if id < 0 || id >= p.ID {
			continue // depth-axis clipping
		}
		ih := oyh + fh - p.PH
		if ih < 0 || ih >= p.IH {
			continue // height-axis clipping
		}
		for ow0 := seg.Col0; ow0 < seg.Col1; ow0 += r {
			for nb := 0; nb < p.N; nb++ {
				for u := 0; u < r; u++ {
					base := dy.Shape.Index(nb, od, oyh, ow0+u, 0)
					copy(wRaw[u*oc:(u+1)*oc], dy.Data[base:base+oc])
				}
				gPlan.MulPanel(wRaw, wHat, r, oc)
				for u := 0; u < alpha; u++ {
					iw := ow0 + colBase + u - p.PW
					dst := xRaw[u*ic : (u+1)*ic]
					if iw < 0 || iw >= p.IW {
						for i := range dst {
							dst[i] = 0
						}
						continue
					}
					base := x.Shape.Index(nb, id, ih, iw, 0)
					copy(dst, x.Data[base:base+ic])
				}
				dtPlan.MulPanel(xRaw, xHat, alpha, ic)
				ewmPanels(v, wHat, xHat, alpha, oc, ic)
			}
		}
	}

	// Output transform into the (oc, fd, fh, colBase+i, ic) bucket slots.
	acc := growF32(&s.acc, alpha)
	for a := 0; a < oc; a++ {
		for b := 0; b < ic; b++ {
			for e := 0; e < alpha; e++ {
				acc[e] = v[(e*oc+a)*ic+b]
			}
			for i := 0; i < n; i++ {
				var s float32
				for e := 0; e < alpha; e++ {
					s += float32(tr.A.At(e, i)) * acc[e]
				}
				bucket[dwShape.Index(a, fd, fh, colBase+i, b)] += s
			}
		}
	}
}
