package core

import (
	"math/rand"
	"runtime"
	"runtime/debug"
	"sync"
	"testing"

	"winrs/internal/conv"
	"winrs/internal/sched"
	"winrs/internal/tensor"
)

// withTestPool runs fn with the shared execution pool replaced by a fresh
// pool of the given width and GOMAXPROCS raised to match (Run caps its
// effective width at runtime GOMAXPROCS, so a 1-CPU test host would
// otherwise silently take the inline path).
func withTestPool(t testing.TB, width int, fn func()) {
	t.Helper()
	prev := runtime.GOMAXPROCS(width)
	p := sched.NewPool(width)
	testPool = p
	defer func() {
		testPool = nil
		p.Close()
		runtime.GOMAXPROCS(prev)
	}()
	fn()
}

// poolSweepCases mirrors the top-level differential sweep grid: filter
// shapes, paddings, channel counts and the r=1/tiny-O_W edge shapes that
// exercise the fallback kernel pairs.
var poolSweepCases = []struct {
	name string
	p    conv.Params
	segs []int
}{
	{"3x3_pad1", conv.Params{N: 1, IH: 12, IW: 12, FH: 3, FW: 3, IC: 3, OC: 5, PH: 1, PW: 1}, []int{0, 1, 2, 4}},
	{"3x3_batched", conv.Params{N: 3, IH: 10, IW: 10, FH: 3, FW: 3, IC: 2, OC: 2, PH: 1, PW: 1}, []int{0, 2}},
	{"5x5_pad2", conv.Params{N: 2, IH: 14, IW: 16, FH: 5, FW: 5, IC: 2, OC: 3, PH: 2, PW: 2}, []int{0, 2}},
	{"7x7", conv.Params{N: 1, IH: 16, IW: 18, FH: 7, FW: 7, IC: 2, OC: 2}, []int{0}},
	{"1x3_row_filter", conv.Params{N: 1, IH: 6, IW: 14, FH: 1, FW: 3, IC: 4, OC: 4}, []int{0, 1}},
	{"3x1_col_filter", conv.Params{N: 1, IH: 14, IW: 9, FH: 3, FW: 1, IC: 3, OC: 2}, []int{0}},
	{"1x1_pointwise", conv.Params{N: 2, IH: 8, IW: 11, FH: 1, FW: 1, IC: 3, OC: 4}, []int{0}},
	{"nonpow2_channels", conv.Params{N: 1, IH: 13, IW: 17, FH: 3, FW: 3, IC: 5, OC: 7, PH: 1, PW: 1}, []int{0, 3}},
	{"tiny_ow", conv.Params{N: 2, IH: 7, IW: 5, FH: 3, FW: 3, IC: 2, OC: 2}, []int{0}},
	{"wide_row", conv.Params{N: 1, IH: 4, IW: 50, FH: 3, FW: 3, IC: 2, OC: 2, PW: 1}, []int{0, 2}},
}

func poolLayer(t testing.TB, seed int64, p conv.Params) (*tensor.Float32, *tensor.Float32) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	x := tensor.NewFloat32(p.XShape())
	dy := tensor.NewFloat32(p.DYShape())
	x.FillUniform(rng, 0, 1)
	dy.FillUniform(rng, 0, 1)
	return x, dy
}

func equalBits(t *testing.T, name string, got, want []float32) {
	t.Helper()
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("%s: pool result differs from inline at %d: %v vs %v",
				name, i, got[i], want[i])
		}
	}
}

// Pooled execution must be bit-identical to the inline (GOMAXPROCS=1)
// path on every differential-sweep shape: units write disjoint bucket
// regions and the reduction is sequential, so scheduling order cannot
// matter. Covers FP32 and FP16, across forced segmentations.
func TestPoolMatchesInline2D(t *testing.T) {
	for _, tc := range poolSweepCases {
		for _, z := range tc.segs {
			opts := []Option{}
			if z > 0 {
				opts = append(opts, WithSegments(z))
			}
			cfg, err := Configure(tc.p, opts...)
			if err != nil {
				t.Fatalf("%s z=%d: %v", tc.name, z, err)
			}
			cfg16, err := Configure(tc.p, append(opts, WithFP16())...)
			if err != nil {
				t.Fatalf("%s z=%d fp16: %v", tc.name, z, err)
			}
			x, dy := poolLayer(t, 91, tc.p)
			xh, dyh := x.ToHalf(), dy.ToHalf()

			want := Execute(cfg, x, dy)
			wantH := ExecuteHalf(cfg16, xh, dyh)
			withTestPool(t, 4, func() {
				got := Execute(cfg, x, dy)
				equalBits(t, tc.name+"/fp32", got.Data, want.Data)
				gotH := ExecuteHalf(cfg16, xh, dyh)
				equalBits(t, tc.name+"/fp16", gotH.Data, wantH.Data)
			})
		}
	}
}

// Strided execution (phase decimation over the 2-D kernels) through the
// pool must match the inline path bitwise.
func TestPoolMatchesInlineStrided(t *testing.T) {
	cases := []conv.StridedParams{
		{N: 1, IH: 13, IW: 13, FH: 3, FW: 3, IC: 3, OC: 4, PH: 1, PW: 1, SH: 2, SW: 2},
		{N: 2, IH: 11, IW: 15, FH: 3, FW: 3, IC: 2, OC: 3, SH: 2, SW: 1},
	}
	for _, p := range cases {
		rng := rand.New(rand.NewSource(92))
		x := tensor.NewFloat32(p.XShape())
		dy := tensor.NewFloat32(p.DYShape())
		x.FillUniform(rng, 0, 1)
		dy.FillUniform(rng, 0, 1)
		want, err := BackwardFilterStrided(p, x, dy)
		if err != nil {
			t.Fatal(err)
		}
		withTestPool(t, 4, func() {
			got, err := BackwardFilterStrided(p, x, dy)
			if err != nil {
				t.Fatal(err)
			}
			equalBits(t, "strided", got.Data, want.Data)
		})
	}
}

// The 3-D path through the pool must match the inline path bitwise.
func TestPoolMatchesInline3D(t *testing.T) {
	cases := []conv.Params3D{
		{N: 1, ID: 6, IH: 8, IW: 8, FD: 3, FH: 3, FW: 3, IC: 2, OC: 2, PD: 1, PH: 1, PW: 1},
		{N: 2, ID: 4, IH: 6, IW: 10, FD: 2, FH: 2, FW: 2, IC: 2, OC: 3},
	}
	for _, p := range cases {
		rng := rand.New(rand.NewSource(93))
		x := tensor.NewFloat325(p.XShape())
		dy := tensor.NewFloat325(p.DYShape())
		for i := range x.Data {
			x.Data[i] = rng.Float32()
		}
		for i := range dy.Data {
			dy.Data[i] = rng.Float32()
		}
		want, err := BackwardFilter3D(p, x, dy)
		if err != nil {
			t.Fatal(err)
		}
		withTestPool(t, 4, func() {
			got, err := BackwardFilter3D(p, x, dy)
			if err != nil {
				t.Fatal(err)
			}
			equalBits(t, "3d", got.Data, want.Data)
		})
	}
}

// Steady-state ExecuteIn with the pool active must allocate nothing: the
// dispatch tasks live inside the Workspace, batch descriptors are pooled,
// and per-unit scratch comes from the tile-scratch pool.
func TestExecuteInAllocsZeroWithPool(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation allocates; alloc pinning runs without -race")
	}
	p := conv.Params{N: 1, IH: 24, IW: 24, FH: 3, FW: 3, IC: 8, OC: 8, PH: 1, PW: 1}
	cfg, err := Configure(p, WithSegments(4))
	if err != nil {
		t.Fatal(err)
	}
	x, dy := poolLayer(t, 94, p)
	ws := NewWorkspace(cfg)
	dst := tensor.NewFloat32(p.DWShape())

	withTestPool(t, 4, func() {
		// Warm every per-worker cache (tile scratch, batch descriptors),
		// then freeze the GC so the pools cannot be drained mid-measurement.
		for i := 0; i < 8; i++ {
			ExecuteIn(cfg, ws, x, dy, dst)
		}
		defer debug.SetGCPercent(debug.SetGCPercent(-1))
		allocs := testing.AllocsPerRun(50, func() { ExecuteIn(cfg, ws, x, dy, dst) })
		if allocs != 0 {
			t.Errorf("steady-state pooled ExecuteIn allocates %v per run, want 0", allocs)
		}
	})
}

// Concurrent Execute calls sharing one pool must not interfere: each gets
// its own workspace, results stay bit-identical to the serial reference.
// Run with -race, this is the co-scheduling safety test.
func TestConcurrentExecuteSharedPool(t *testing.T) {
	p := conv.Params{N: 1, IH: 16, IW: 16, FH: 3, FW: 3, IC: 4, OC: 6, PH: 1, PW: 1}
	cfg, err := Configure(p, WithSegments(2))
	if err != nil {
		t.Fatal(err)
	}
	x, dy := poolLayer(t, 95, p)
	want := Execute(cfg, x, dy)

	withTestPool(t, 4, func() {
		var wg sync.WaitGroup
		errs := make(chan string, 8)
		for g := 0; g < 8; g++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				ws := NewWorkspace(cfg)
				dst := tensor.NewFloat32(p.DWShape())
				for iter := 0; iter < 10; iter++ {
					got := ExecuteIn(cfg, ws, x, dy, dst)
					for i := range want.Data {
						if got.Data[i] != want.Data[i] {
							errs <- "concurrent pooled result differs from serial reference"
							return
						}
					}
				}
			}()
		}
		wg.Wait()
		close(errs)
		for e := range errs {
			t.Error(e)
		}
	})
}
