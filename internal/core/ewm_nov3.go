//go:build !amd64.v3

package core

// Default (non-v3) leg: the arch-dispatched 8×8 block is the portable one
// and the attribution carries no suffix.

const ewmArchSuffix = ""

// ewmPanel8x8Arch aliases the portable 8×8 block when no arch variant is
// compiled in.
func ewmPanel8x8Arch(ve, we, xe []float32, oc, ic int) {
	ewmPanel8x8(ve, we, xe, oc, ic)
}
