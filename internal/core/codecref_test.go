package core

import (
	"math/rand"
	"testing"

	"winrs/internal/conv"
	"winrs/internal/fp16"
	"winrs/internal/tensor"
)

// This file pins the table-driven binary16 codec's integration into the
// execution pipeline: a serial reference executor that replicates the
// pre-bulk-kernel FP16 path — one scalar fp16.ToFloat32/FromFloat32 call
// per element, exactly the code the bulk kernels replaced — must produce
// bit-identical gradients to ExecuteHalf on every differential-sweep
// shape, inline and through the pool.

// fillRowHalfScalar is fillRowHalf with the per-element scalar codec (the
// original implementation, kept verbatim as the oracle).
func fillRowHalfScalar(p conv.Params, seg Segment, oh int, dy *tensor.Half,
	s *tileScratch, what []fp16.Bits) {
	tr := seg.K.Transform()
	gMat, _, _ := halfMats(tr)
	r, alpha, oc := tr.R, tr.Alpha, p.OC
	wRaw := growF32(&s.wRaw, r*oc)
	wHatF := growF32(&s.wHatF, alpha*oc)
	entry := alpha * oc
	tiles := seg.Cols() / r
	rowBase := (oh - seg.Row0) * tiles

	for t, ow0 := 0, seg.Col0; ow0 < seg.Col1; t, ow0 = t+1, ow0+r {
		for nb := 0; nb < p.N; nb++ {
			for u := 0; u < r; u++ {
				base := dy.Shape.Index(nb, oh, ow0+u, 0)
				dst := wRaw[u*oc : (u+1)*oc]
				for c := 0; c < oc; c++ {
					dst[c] = fp16.ToFloat32(dy.Data[base+c])
				}
			}
			matMulF32(gMat, wRaw, wHatF, r, oc)
			dst := what[((rowBase+t)*p.N+nb)*entry:]
			for i, vv := range wHatF {
				dst[i] = fp16.FromFloat32(vv)
			}
		}
	}
}

// segmentTileHalfScalar is segmentTileHalf with the per-element scalar
// codec: scalar Ŵ decode, scalar X gather decode, scalar encode→decode
// pair for the SMEM rounding.
func segmentTileHalfScalar(p conv.Params, seg Segment, fh, j int, x *tensor.Half,
	what []fp16.Bits, bucket []float32) {
	k := seg.K
	tr := k.Transform()
	_, dMat, aMat := halfMats(tr)
	n, r, alpha := tr.N, tr.R, tr.Alpha
	oc, ic := p.OC, p.IC

	s := getTileScratch()
	defer putTileScratch(s)
	v := growF32Zero(&s.v, alpha*oc*ic)
	wDec := growF32(&s.wHatF, alpha*oc)
	xRaw := growF32(&s.xRaw, alpha*ic)
	xHat := growF32(&s.xHatF, alpha*ic)
	colBase := j * n
	entry := alpha * oc
	tiles := seg.Cols() / r

	for oh := seg.Row0; oh < seg.Row1; oh++ {
		ih := oh + fh - p.PH
		if ih < 0 || ih >= p.IH {
			continue
		}
		rowBase := (oh - seg.Row0) * tiles
		for t, ow0 := 0, seg.Col0; ow0 < seg.Col1; t, ow0 = t+1, ow0+r {
			for nb := 0; nb < p.N; nb++ {
				hw := what[((rowBase+t)*p.N+nb)*entry:]
				hw = hw[:entry]
				for i, hb := range hw {
					wDec[i] = fp16.ToFloat32(hb)
				}
				for u := 0; u < alpha; u++ {
					iw := ow0 + colBase + u - p.PW
					dst := xRaw[u*ic : (u+1)*ic]
					if iw < 0 || iw >= p.IW {
						for i := range dst {
							dst[i] = 0
						}
						continue
					}
					base := x.Shape.Index(nb, ih, iw, 0)
					for c := 0; c < ic; c++ {
						dst[c] = fp16.ToFloat32(x.Data[base+c])
					}
				}
				matTMulF32(dMat, xRaw, xHat, alpha, ic)
				for i, vv := range xHat {
					xHat[i] = fp16.ToFloat32(fp16.FromFloat32(vv))
				}
				ewmPanels(v, wDec, xHat, alpha, oc, ic)
			}
		}
	}
	writeOutput(p, aMat, v, bucket, fh, colBase, n, alpha, oc, ic, growF32(&s.acc, alpha))
}

// executeHalfScalarRef runs the full FP16 plan serially with the scalar
// codec everywhere: Ŵ-cache fill, fused units, Kahan reduction.
func executeHalfScalarRef(cfg *Config, x, dy *tensor.Half) *tensor.Float32 {
	ws := NewWorkspace(cfg)
	growHalf(&ws.what16, ws.whatOff[len(ws.whatOff)-1])
	s := getTileScratch()
	for si, seg := range cfg.Segments {
		what := ws.what16[ws.whatOff[si]:ws.whatOff[si+1]]
		for oh := seg.Row0; oh < seg.Row1; oh++ {
			fillRowHalfScalar(cfg.Params, seg, oh, dy, s, what)
		}
	}
	putTileScratch(s)

	fw := cfg.Params.FW
	for si, seg := range cfg.Segments {
		what := ws.what16[ws.whatOff[si]:ws.whatOff[si+1]]
		jTiles := fw / seg.K.N
		for fh := 0; fh < cfg.Params.FH; fh++ {
			for jt := 0; jt < jTiles; jt++ {
				segmentTileHalfScalar(cfg.Params, seg, fh, jt, x, what, ws.buckets[si])
			}
		}
	}
	return reduceInto(cfg, ws.buckets, nil)
}

// halfLayer builds binary16 operands with a value mix that exercises the
// codec's interesting classes: normals across the layer's dynamic range,
// subnormal-scale values, exact zeros and negatives.
func halfLayer(t testing.TB, seed int64, p conv.Params) (*tensor.Half, *tensor.Half) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	fill := func(f *tensor.Float32) {
		for i := range f.Data {
			switch rng.Intn(8) {
			case 0:
				f.Data[i] = 0
			case 1:
				f.Data[i] = (rng.Float32() - 0.5) * 1e-6 // near/below fp16 subnormal scale
			case 2:
				f.Data[i] = (rng.Float32() - 0.5) * 1024
			default:
				f.Data[i] = rng.Float32()*2 - 1
			}
		}
	}
	x := tensor.NewFloat32(p.XShape())
	dy := tensor.NewFloat32(p.DYShape())
	fill(x)
	fill(dy)
	return x.ToHalf(), dy.ToHalf()
}

// ExecuteHalf with the table-driven codec must be bit-identical to the
// scalar-codec reference executor on every sweep shape and forced
// segmentation, both inline (GOMAXPROCS 1) and through a width-4 pool.
// Run under -race via `make race`, this also pins that the lazily built
// decode LUT is safe under concurrent first use from pool workers.
func TestExecuteHalfMatchesScalarCodecRef(t *testing.T) {
	for _, tc := range poolSweepCases {
		for _, z := range tc.segs {
			opts := []Option{WithFP16()}
			if z > 0 {
				opts = append(opts, WithSegments(z))
			}
			cfg, err := Configure(tc.p, opts...)
			if err != nil {
				t.Fatalf("%s z=%d: %v", tc.name, z, err)
			}
			xh, dyh := halfLayer(t, 171, tc.p)
			want := executeHalfScalarRef(cfg, xh, dyh)

			got := ExecuteHalf(cfg, xh, dyh)
			equalBits(t, tc.name+"/inline", got.Data, want.Data)

			withTestPool(t, 4, func() {
				got := ExecuteHalf(cfg, xh, dyh)
				equalBits(t, tc.name+"/pool4", got.Data, want.Data)
			})
		}
	}
}

// The strided FP16 path routes through the same fillRowHalf and
// segmentTileHalf kernels per phase; its results must be unchanged by the
// codec swap. The reference here is phase decomposition over the scalar
// reference executor — mirroring BackwardFilterStridedHalf's structure.
func TestStridedHalfMatchesScalarCodecRef(t *testing.T) {
	cases := []conv.StridedParams{
		{N: 1, IH: 13, IW: 13, FH: 3, FW: 3, IC: 3, OC: 4, PH: 1, PW: 1, SH: 2, SW: 2},
		{N: 2, IH: 11, IW: 15, FH: 3, FW: 3, IC: 2, OC: 3, SH: 2, SW: 1},
	}
	for _, p := range cases {
		rng := rand.New(rand.NewSource(172))
		x := tensor.NewFloat32(p.XShape())
		dy := tensor.NewFloat32(p.DYShape())
		x.FillUniform(rng, -1, 1)
		dy.FillUniform(rng, -1, 1)
		xh, dyh := x.ToHalf(), dy.ToHalf()

		want, err := BackwardFilterStridedHalf(p, xh, dyh)
		if err != nil {
			t.Fatal(err)
		}
		withTestPool(t, 4, func() {
			got, err := BackwardFilterStridedHalf(p, xh, dyh)
			if err != nil {
				t.Fatal(err)
			}
			equalBits(t, "strided-half", got.Data, want.Data)
		})
	}
}
