package core

import (
	"context"

	"winrs/internal/sched"
	"winrs/internal/tensor"
)

// ExecuteInCtx is ExecuteIn with cooperative cancellation: when ctx is
// cancelled or its deadline expires, the execution stops at the next chunk
// claim of the shared sched pool — the pre-pass, the unit grid and the
// reduction all abandon their remaining work — and ctx.Err() is returned.
// The partial result is discarded (the returned tensor is nil) and the
// workspace is quiescent on return: no pool participant still touches it,
// so pooled callers may recycle it immediately (the next execution
// re-zeroes the buckets).
//
// An uncancelled ExecuteInCtx produces a result bit-identical to
// ExecuteIn. Unlike ExecuteIn, each call arms one context watcher, so the
// ctx path is not allocation-free; latency-critical loops that never
// cancel should keep calling ExecuteIn.
func ExecuteInCtx(ctx context.Context, cfg *Config, ws *Workspace, x, dy, dst *tensor.Float32) (*tensor.Float32, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	var cancel sched.Batch
	stop := context.AfterFunc(ctx, cancel.Cancel)
	defer stop()
	out, ok := executeIn(cfg, ws, x, dy, dst, &cancel)
	if !ok {
		return nil, ctx.Err()
	}
	return out, nil
}

// ExecuteHalfInCtx is ExecuteInCtx for the emulated FP16 Tensor-Core path.
func ExecuteHalfInCtx(ctx context.Context, cfg *Config, ws *Workspace, x, dy *tensor.Half, dst *tensor.Float32) (*tensor.Float32, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	var cancel sched.Batch
	stop := context.AfterFunc(ctx, cancel.Cancel)
	defer stop()
	out, ok := executeHalfIn(cfg, ws, x, dy, dst, &cancel)
	if !ok {
		return nil, ctx.Err()
	}
	return out, nil
}

// ExecuteCtx is Executor.Execute with cooperative cancellation; see
// ExecuteInCtx for the semantics. The returned tensor is owned by the
// executor and overwritten by the next call.
func (e *Executor) ExecuteCtx(ctx context.Context, x, dy *tensor.Float32) (*tensor.Float32, error) {
	return ExecuteInCtx(ctx, e.cfg, e.ws, x, dy, e.out)
}
