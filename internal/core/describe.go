package core

import "encoding/json"

// Description is a serializable snapshot of an adapted plan, for tooling
// (winrs-info -json) and experiment logging.
type Description struct {
	Layer struct {
		N, IH, IW, FH, FW, IC, OC, PH, PW int
		OH, OW                            int
		Groups                            int `json:",omitempty"`
		DirectGFLOPs                      float64
		DataMB                            float64
	} `json:"layer"`
	FP16       bool   `json:"fp16"`
	KernelPair string `json:"kernelPair"`
	Fast       struct {
		Name  string  `json:"name"`
		N     int     `json:"n"`
		R     int     `json:"r"`
		Alpha int     `json:"alpha"`
		Accel float64 `json:"accel"`
	} `json:"fast"`
	FastColumns     int     `json:"fastColumns"`
	ResidualColumns int     `json:"residualColumns"`
	SegmentTarget   int     `json:"segmentTarget"`
	SegmentHeight   int     `json:"segmentHeight"`
	SegmentWidth    int     `json:"segmentWidth"`
	Segments        int     `json:"segments"`
	WorkspaceBytes  int64   `json:"workspaceBytes"`
	WorkspaceRatio  float64 `json:"workspaceRatio"`
	// Grouped-dispatch attribution (grouped plans only): the dispatch mode
	// under the current process knobs, the budgeted staging-slot ring depth,
	// and the single per-group arena of the sequential dispatch —
	// WorkspaceBytes is WorkspaceSeqBytes × GroupRing.
	GroupDispatch     string `json:"groupDispatch,omitempty"`
	GroupRing         int    `json:"groupRing,omitempty"`
	WorkspaceSeqBytes int64  `json:"workspaceSeqBytes,omitempty"`
	WHatCacheBytes  int64   `json:"wHatCacheBytes"`
	WHatCacheRatio  float64 `json:"wHatCacheRatio"`
	TotalBlocks     int     `json:"totalBlocks"`
	// EWMKernel is the kernel-tier variant the fast kernel's units resolve
	// to under the current process knobs (e.g. "fused8x4", "block8x8+v3").
	EWMKernel string `json:"ewmKernel"`
}

// Describe summarizes the configuration.
func (c *Config) Describe() Description {
	var d Description
	p := c.Params
	d.Layer.N, d.Layer.IH, d.Layer.IW = p.N, p.IH, p.IW
	d.Layer.FH, d.Layer.FW = p.FH, p.FW
	d.Layer.IC, d.Layer.OC = p.IC, p.OC
	d.Layer.PH, d.Layer.PW = p.PH, p.PW
	d.Layer.OH, d.Layer.OW = p.OH(), p.OW()
	if p.G() > 1 {
		d.Layer.Groups = p.G()
		if InterleavedGroups() {
			d.GroupDispatch = "interleaved"
		} else {
			d.GroupDispatch = "sequential"
		}
		d.GroupRing = c.GroupRing()
		d.WorkspaceSeqBytes = c.WorkspaceSeqBytes()
	}
	d.Layer.DirectGFLOPs = float64(p.FLOPs()) / 1e9
	d.Layer.DataMB = float64(p.DataBytes32()) / (1 << 20)
	d.FP16 = c.FP16
	d.KernelPair = c.Pair.String()
	d.Fast.Name = c.Pair.Fast.String()
	d.Fast.N, d.Fast.R, d.Fast.Alpha = c.Pair.Fast.N, c.Pair.Fast.R, c.Pair.Fast.Alpha
	d.Fast.Accel = c.Pair.Fast.Accel()
	d.FastColumns, d.ResidualColumns = c.Pair.Coverage()
	d.SegmentTarget = c.ZTarget
	d.SegmentHeight, d.SegmentWidth = c.SegH, c.SegW
	d.Segments = c.Z()
	d.WorkspaceBytes = c.WorkspaceBytes()
	d.WHatCacheBytes = c.WHatCacheBytes()
	if data := p.DataBytes32(); data > 0 {
		d.WorkspaceRatio = float64(c.WorkspaceBytes()) / float64(data)
		d.WHatCacheRatio = float64(c.WHatCacheBytes()) / float64(data)
	}
	// Grouped plans launch the per-group block grid once per group.
	e := c.exec()
	for _, s := range e.Segments {
		d.TotalBlocks += BlocksPerSegment(s.K, e.Params, c.FP16) * p.G()
	}
	d.EWMKernel = c.EWMKernel()
	return d
}

// MarshalJSON serializes the configuration snapshot.
func (c *Config) MarshalJSON() ([]byte, error) {
	return json.Marshal(c.Describe())
}
