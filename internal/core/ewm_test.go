package core

import (
	"math/rand"
	"runtime/debug"
	"testing"

	"winrs/internal/conv"
	"winrs/internal/tensor"
	"winrs/internal/winograd"
)

// Kernel-tier differential tests: every block-shape variant, the fused
// transform+EWM mode and the FP16 decoded-operand mode must be
// bit-identical to the base 4×4 unfused path (FP32) and to the serial
// scalar-codec reference (FP16), inline and through a width-4 pool.

// forceEWM overrides the kernel-tier forcing mode for the duration of the
// test — the test-process form of the WINRS_EWM_KERNEL env knob.
func forceEWM(t testing.TB, mode ewmMode) {
	t.Helper()
	prev := ewmForce
	ewmForce = mode
	t.Cleanup(func() { ewmForce = prev })
}

// forceResident overrides the FP16 decoded-operand knob
// (WINRS_FP16_RESIDENT) for the duration of the test.
func forceResident(t testing.TB, on bool) {
	t.Helper()
	prev := fp16Resident
	fp16Resident = on
	t.Cleanup(func() { fp16Resident = prev })
}

// ewmVariantModes is the force matrix of the differential sweeps: every
// kernel-tier mode, each pinned against the base/oracle tier.
var ewmVariantModes = []struct {
	name string
	mode ewmMode
}{
	{"auto", ewmAuto},
	{"block4", ewmBlock4},
	{"block8", ewmBlock8},
	{"fused", ewmFused},
	{"dw1", ewmDW1},
}

// randPanels builds Ŵ/X̂ panels with planted zero rows (the zero-skip
// paths) and a sign/magnitude mix.
func randPanels(rng *rand.Rand, alpha, oc, ic int) (wHat, xHat []float32) {
	wHat = make([]float32, alpha*oc)
	xHat = make([]float32, alpha*ic)
	for i := range wHat {
		if rng.Intn(4) == 0 {
			continue // zeros, often in runs that zero whole 4/8-row blocks
		}
		wHat[i] = (rng.Float32() - 0.5) * 4
	}
	for i := range xHat {
		xHat[i] = (rng.Float32() - 0.5) * 4
	}
	return wHat, xHat
}

// Every register-blocked panel variant must produce bit-identical
// accumulators to the base 4×4 kernel across row/column remainders
// (including oc < 8 tails and ic % 8 ≠ 0) and planted zero rows: each v
// element receives exactly one fused add per e in every variant, so any
// difference is a real indexing bug.
func TestEWMPanelVariantsMatchBase(t *testing.T) {
	variants := []struct {
		name  string
		panel ewmPanelFunc
	}{
		{"8x4", ewmPanel8x4},
		{"8x8", ewmPanel8x8},
		{"8x8arch", ewmPanel8x8Arch},
	}
	rng := rand.New(rand.NewSource(41))
	for _, alpha := range []int{2, 4, 8, 16} {
		for _, oc := range []int{1, 3, 4, 7, 8, 9, 11, 16} {
			for _, ic := range []int{1, 3, 4, 5, 8, 9, 16} {
				wHat, xHat := randPanels(rng, alpha, oc, ic)
				// Accumulate into a shared random prior — variants must
				// agree on the += behaviour, not just on fresh zeros.
				prior := make([]float32, alpha*oc*ic)
				for i := range prior {
					prior[i] = rng.Float32()
				}
				base := make([]float32, len(prior))
				copy(base, prior)
				ewmPanelsSel(ewmPanel, base, wHat, xHat, alpha, oc, ic)
				for _, vr := range variants {
					got := make([]float32, len(prior))
					copy(got, prior)
					ewmPanelsSel(vr.panel, got, wHat, xHat, alpha, oc, ic)
					for i := range base {
						if got[i] != base[i] {
							t.Fatalf("%s α=%d oc=%d ic=%d: element %d differs: %v vs %v",
								vr.name, alpha, oc, ic, i, got[i], base[i])
						}
					}
				}
			}
		}
	}
}

// matTMulRowF32 (the FP16 fused path's row-at-a-time input transform)
// must reproduce each row of matTMulF32 exactly: per output row the
// ascending-k accumulation order is identical.
func TestMatTMulRowMatchesPanel(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for _, kr := range []struct{ n, r int }{{3, 2}, {3, 6}, {9, 8}} {
		k, ok := winograd.Lookup(kr.n, kr.r)
		if !ok {
			t.Fatalf("kernel Ω(%d,%d) missing from registry", kr.n, kr.r)
		}
		tr := k.Transform()
		_, dMat, _ := halfMats(tr)
		alpha, ic := tr.Alpha, 5
		in := make([]float32, alpha*ic)
		for i := range in {
			in[i] = (rng.Float32() - 0.5) * 8
		}
		want := make([]float32, alpha*ic)
		matTMulF32(dMat, in, want, alpha, ic)
		row := make([]float32, ic)
		for e := 0; e < alpha; e++ {
			matTMulRowF32(dMat, in, row, e, alpha, ic)
			for x := 0; x < ic; x++ {
				if row[x] != want[e*ic+x] {
					t.Fatalf("Ω%d row %d col %d: %v vs %v", alpha, e, x, row[x], want[e*ic+x])
				}
			}
		}
	}
}

// ewmSweepCases is the forced-variant differential subset: shapes chosen
// to cover α ∈ {4, 8, 16} kernels, padding clip paths, O_C/I_C remainders
// and multi-segment scheduling, while keeping the mode × precision ×
// pool matrix affordable under -race.
var ewmSweepCases = []struct {
	name string
	p    conv.Params
	segs int
}{
	{"3x3_pad1", conv.Params{N: 1, IH: 12, IW: 12, FH: 3, FW: 3, IC: 3, OC: 5, PH: 1, PW: 1}, 2},
	{"5x5_pad2", conv.Params{N: 2, IH: 14, IW: 16, FH: 5, FW: 5, IC: 2, OC: 3, PH: 2, PW: 2}, 2},
	{"nonpow2_channels", conv.Params{N: 1, IH: 13, IW: 17, FH: 3, FW: 3, IC: 5, OC: 7, PH: 1, PW: 1}, 3},
	{"c16_interior", conv.Params{N: 1, IH: 16, IW: 24, FH: 3, FW: 3, IC: 16, OC: 16, PH: 1, PW: 1}, 2},
	{"9x9_alpha16", conv.Params{N: 1, IH: 20, IW: 20, FH: 9, FW: 9, IC: 3, OC: 9, PH: 4, PW: 4}, 0},
}

// Forcing each kernel-tier mode must not change a single output bit on
// the FP32 path: the oracle is the forced base tier (block4 = the 4×4
// unfused kernel the pre-tier code ran), compared inline and pooled.
func TestEWMForcedVariantsMatchBaseFP32(t *testing.T) {
	for _, tc := range ewmSweepCases {
		opts := []Option{}
		if tc.segs > 0 {
			opts = append(opts, WithSegments(tc.segs))
		}
		cfg, err := Configure(tc.p, opts...)
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		x, dy := poolLayer(t, 43, tc.p)

		var want *tensor.Float32
		func() {
			forceEWM(t, ewmBlock4)
			want = Execute(cfg, x, dy)
		}()

		for _, vm := range ewmVariantModes {
			t.Run(tc.name+"/"+vm.name, func(t *testing.T) {
				forceEWM(t, vm.mode)
				got := Execute(cfg, x, dy)
				equalBits(t, "inline", got.Data, want.Data)
				withTestPool(t, 4, func() {
					got := Execute(cfg, x, dy)
					equalBits(t, "pool4", got.Data, want.Data)
				})
			})
		}
	}
}

// The FP16 force matrix: every kernel-tier mode × resident/codec operand
// mode must match the serial scalar-codec reference executor bit for bit.
// This is the oracle pinning of the decoded-operand residency claim: the
// float32-resident Ŵ cache and bulk-decoded operands hold exactly the
// values the per-unit scalar codec round trips produce.
func TestEWMForcedVariantsMatchScalarRefFP16(t *testing.T) {
	for _, tc := range ewmSweepCases {
		opts := []Option{WithFP16()}
		if tc.segs > 0 {
			opts = append(opts, WithSegments(tc.segs))
		}
		cfg, err := Configure(tc.p, opts...)
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		xh, dyh := halfLayer(t, 44, tc.p)
		want := executeHalfScalarRef(cfg, xh, dyh)

		for _, vm := range ewmVariantModes {
			for _, res := range []struct {
				name string
				on   bool
			}{{"resident", true}, {"codec", false}} {
				t.Run(tc.name+"/"+vm.name+"/"+res.name, func(t *testing.T) {
					forceEWM(t, vm.mode)
					forceResident(t, res.on)
					got := ExecuteHalf(cfg, xh, dyh)
					equalBits(t, "inline", got.Data, want.Data)
					withTestPool(t, 4, func() {
						got := ExecuteHalf(cfg, xh, dyh)
						equalBits(t, "pool4", got.Data, want.Data)
					})
				})
			}
		}
	}
}

// Steady-state pooled ExecuteHalfIn must allocate nothing in the default
// decoded-operand mode: the resident Ŵ cache, the xDec/dyDec mirrors and
// the fused-path closure all live in reused arenas or on the stack.
func TestExecuteHalfAllocsZeroWithPool(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation allocates; alloc pinning runs without -race")
	}
	p := conv.Params{N: 1, IH: 24, IW: 24, FH: 3, FW: 3, IC: 8, OC: 8, PH: 1, PW: 1}
	cfg, err := Configure(p, WithSegments(4), WithFP16())
	if err != nil {
		t.Fatal(err)
	}
	xh, dyh := halfLayer(t, 45, p)
	ws := NewWorkspace(cfg)
	dst := tensor.NewFloat32(p.DWShape())

	withTestPool(t, 4, func() {
		for i := 0; i < 8; i++ {
			ExecuteHalfIn(cfg, ws, xh, dyh, dst)
		}
		defer debug.SetGCPercent(debug.SetGCPercent(-1))
		allocs := testing.AllocsPerRun(50, func() { ExecuteHalfIn(cfg, ws, xh, dyh, dst) })
		if allocs != 0 {
			t.Errorf("steady-state pooled ExecuteHalfIn allocates %v per run, want 0", allocs)
		}
	})
}

// EWMKernel must report the selection the executing units actually
// resolve, including force modes and the codec fallback tag.
func TestEWMKernelReporting(t *testing.T) {
	p := conv.Params{N: 1, IH: 16, IW: 24, FH: 3, FW: 3, IC: 16, OC: 16, PH: 1, PW: 1}
	cfg, err := Configure(p) // fast kernel Ω8(3,6): fp32 block (64, 32)
	if err != nil {
		t.Fatal(err)
	}
	cfg16, err := Configure(p, WithFP16()) // fp16 block (128, 64)
	if err != nil {
		t.Fatal(err)
	}

	forceEWM(t, ewmAuto)
	forceResident(t, true)
	if got, want := cfg.EWMKernel(), "fused8x4"; got != want {
		t.Errorf("fp32 auto: %q, want %q (B_M 32 keeps the 4-wide column block)", got, want)
	}
	if got, want := cfg16.EWMKernel(), "fused8x8"+ewmArchSuffix; got != want {
		t.Errorf("fp16 auto: %q, want %q (precision-aware B_M 64 widens the block)", got, want)
	}

	forceEWM(t, ewmBlock4)
	if got, want := cfg.EWMKernel(), "block4x4"; got != want {
		t.Errorf("forced block4: %q, want %q", got, want)
	}

	forceResident(t, false)
	forceEWM(t, ewmAuto)
	if got, want := cfg16.EWMKernel(), "block4x4+codec"; got != want {
		t.Errorf("fp16 codec fallback: %q, want %q", got, want)
	}

	if d := cfg.Describe(); d.EWMKernel == "" {
		t.Error("Describe() leaves EWMKernel empty")
	}
}
