package core

import (
	"fmt"

	"winrs/internal/conv"
	"winrs/internal/tensor"
)

// BackwardFilterStrided extends WinRS to strided convolutions by phase
// decimation. Writing the filter coordinates as f_h = s_H·m_h + q_h and
// f_w = s_W·m_w + q_w, the strided gradient factors into s_H·s_W
// independent *stride-1* BFC problems over phase-decimated inputs:
//
//	∇W[s_H·m_h+q_h, s_W·m_w+q_w] = Σ_{oh,ow} X_q[oh+m_h, ow+m_w]·∇Y[oh,ow]
//	X_q[a, b] = X[s_H·a + q_h − p_H, s_W·b + q_w − p_W]   (0 outside)
//
// Each phase runs the full stride-1 WinRS pipeline (configuration
// adaptation, reduce-split, segmentation, Kahan reduction) on the
// decimated input, and the per-phase gradients interleave back into ∇W.
// Stride 1 short-circuits to the standard path. The same decimation is the
// stride-2 Winograd decomposition of the paper's related work ([16], [20]).
func BackwardFilterStrided(p conv.StridedParams, x, dy *tensor.Float32, opts ...Option) (*tensor.Float32, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if x.Shape != p.XShape() || dy.Shape != p.DYShape() {
		return nil, fmt.Errorf("core: BackwardFilterStrided operand shapes %v/%v, want %v/%v",
			x.Shape, dy.Shape, p.XShape(), p.DYShape())
	}
	if unit, ok := p.Unit(); ok {
		return BackwardFilter(unit, x, dy, opts...)
	}
	sh, sw := p.StrideH(), p.StrideW()
	dw := tensor.NewFloat32(p.DWShape())

	for qh := 0; qh < sh && qh < p.FH; qh++ {
		for qw := 0; qw < sw && qw < p.FW; qw++ {
			// The decimated stride-1 problem: padding is folded into the
			// decimated gather, so the phase problem is padding-free.
			pq, fqh, fqw := phaseGeometry(p, qh, qw)
			if err := pq.Validate(); err != nil {
				return nil, fmt.Errorf("core: phase (%d,%d) geometry: %w", qh, qw, err)
			}
			xq := gatherPhaseInput(p, pq, x, qh, qw)
			dwq, err := BackwardFilter(pq, xq, dy, opts...)
			if err != nil {
				return nil, fmt.Errorf("core: phase (%d,%d): %w", qh, qw, err)
			}
			// Interleave the phase gradient back: ∇W[s·m+q] = ∇W_q[m].
			// Filter rows carry I_C/G channels under grouping.
			icg := p.ICG()
			for oc := 0; oc < p.OC; oc++ {
				for mh := 0; mh < fqh; mh++ {
					for mw := 0; mw < fqw; mw++ {
						src := dwq.Shape.Index(oc, mh, mw, 0)
						dst := dw.Shape.Index(oc, sh*mh+qh, sw*mw+qw, 0)
						copy(dw.Data[dst:dst+icg], dwq.Data[src:src+icg])
					}
				}
			}
		}
	}
	return dw, nil
}

// phaseGeometry returns the stride-1 problem of phase (qh, qw) and its
// decimated filter tap counts.
func phaseGeometry(p conv.StridedParams, qh, qw int) (conv.Params, int, int) {
	sh, sw := p.StrideH(), p.StrideW()
	fqh := ceilDiv(p.FH-qh, sh)
	fqw := ceilDiv(p.FW-qw, sw)
	pq := conv.Params{
		N:  p.N,
		IH: p.OH() + fqh - 1, IW: p.OW() + fqw - 1,
		FH: fqh, FW: fqw,
		IC: p.IC, OC: p.OC,
		Groups: p.Groups,
	}
	return pq, fqh, fqw
}

// gatherPhasePlane materializes X_q: the stride-decimated input plane with
// the original zero padding folded in. Generic over the element type so
// the FP32 and binary16 paths share one gather — including the s_W = 1
// contiguous-run fast path — and cannot drift apart.
func gatherPhasePlane[E any](p conv.StridedParams, pq conv.Params,
	srcShape tensor.Shape, src []E, dstShape tensor.Shape, dst []E, qh, qw int) {
	sh, sw := p.StrideH(), p.StrideW()
	for n := 0; n < p.N; n++ {
		for a := 0; a < pq.IH; a++ {
			ih := sh*a + qh - p.PH
			if ih < 0 || ih >= p.IH {
				continue
			}
			if sw == 1 {
				// Unit width stride: the in-bounds run of phase columns is
				// one contiguous [cols][I_C] block in both layouts — copy
				// it wholesale instead of per column. Pure copy, so the
				// gathered plane is bit-identical to the scalar walk.
				b0 := 0
				if qw < p.PW {
					b0 = p.PW - qw
				}
				b1 := pq.IW
				if max := p.IW + p.PW - qw; b1 > max {
					b1 = max
				}
				if b0 < b1 {
					s := srcShape.Index(n, ih, b0+qw-p.PW, 0)
					d := dstShape.Index(n, a, b0, 0)
					copy(dst[d:d+(b1-b0)*p.IC], src[s:s+(b1-b0)*p.IC])
				}
				continue
			}
			for b := 0; b < pq.IW; b++ {
				iw := sw*b + qw - p.PW
				if iw < 0 || iw >= p.IW {
					continue
				}
				s := srcShape.Index(n, ih, iw, 0)
				d := dstShape.Index(n, a, b, 0)
				copy(dst[d:d+p.IC], src[s:s+p.IC])
			}
		}
	}
}

func gatherPhaseInput(p conv.StridedParams, pq conv.Params, x *tensor.Float32, qh, qw int) *tensor.Float32 {
	xq := tensor.NewFloat32(pq.XShape())
	gatherPhasePlane(p, pq, x.Shape, x.Data, xq.Shape, xq.Data, qh, qw)
	return xq
}

func gatherPhaseInputHalf(p conv.StridedParams, pq conv.Params, x *tensor.Half, qh, qw int) *tensor.Half {
	xq := tensor.NewHalf(pq.XShape())
	gatherPhasePlane(p, pq, x.Shape, x.Data, xq.Shape, xq.Data, qh, qw)
	return xq
}

// decimateFilter extracts W_q[oc, m_h, m_w, ic] = W[oc, s·m_h+q_h, s·m_w+q_w, ic].
func decimateFilter(p conv.StridedParams, pq conv.Params, w *tensor.Float32, qh, qw int) *tensor.Float32 {
	sh, sw := p.StrideH(), p.StrideW()
	icg := p.ICG() // filter channel depth under grouping
	wq := tensor.NewFloat32(pq.DWShape())
	for oc := 0; oc < p.OC; oc++ {
		for mh := 0; mh < pq.FH; mh++ {
			for mw := 0; mw < pq.FW; mw++ {
				src := w.Shape.Index(oc, sh*mh+qh, sw*mw+qw, 0)
				dst := wq.Shape.Index(oc, mh, mw, 0)
				copy(wq.Data[dst:dst+icg], w.Data[src:src+icg])
			}
		}
	}
	return wq
}

// ForwardStrided computes the strided forward convolution as the phase sum
// of stride-1 fused-Winograd forward passes over decimated inputs and
// filters — the forward counterpart of BackwardFilterStrided.
func ForwardStrided(p conv.StridedParams, x, w *tensor.Float32) (*tensor.Float32, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if x.Shape != p.XShape() || w.Shape != p.DWShape() {
		return nil, fmt.Errorf("core: ForwardStrided operand shapes %v/%v", x.Shape, w.Shape)
	}
	if unit, ok := p.Unit(); ok {
		return Forward(unit, x, w)
	}
	sh, sw := p.StrideH(), p.StrideW()
	y := tensor.NewFloat32(p.DYShape())
	for qh := 0; qh < sh && qh < p.FH; qh++ {
		for qw := 0; qw < sw && qw < p.FW; qw++ {
			pq, _, _ := phaseGeometry(p, qh, qw)
			if err := pq.Validate(); err != nil {
				return nil, fmt.Errorf("core: phase (%d,%d): %w", qh, qw, err)
			}
			xq := gatherPhaseInput(p, pq, x, qh, qw)
			wq := decimateFilter(p, pq, w, qh, qw)
			yq, err := Forward(pq, xq, wq)
			if err != nil {
				return nil, fmt.Errorf("core: phase (%d,%d): %w", qh, qw, err)
			}
			for i, v := range yq.Data {
				y.Data[i] += v
			}
		}
	}
	return y, nil
}

// BackwardDataStrided computes the input gradient of a strided convolution:
// per phase, the stride-1 data gradient with the decimated filter lands on
// the phase's (disjoint) decimation sites of ∇X.
func BackwardDataStrided(p conv.StridedParams, dy, w *tensor.Float32) (*tensor.Float32, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if dy.Shape != p.DYShape() || w.Shape != p.DWShape() {
		return nil, fmt.Errorf("core: BackwardDataStrided operand shapes %v/%v", dy.Shape, w.Shape)
	}
	if unit, ok := p.Unit(); ok {
		return BackwardData(unit, dy, w)
	}
	sh, sw := p.StrideH(), p.StrideW()
	dx := tensor.NewFloat32(p.XShape())
	for qh := 0; qh < sh && qh < p.FH; qh++ {
		for qw := 0; qw < sw && qw < p.FW; qw++ {
			pq, _, _ := phaseGeometry(p, qh, qw)
			if err := pq.Validate(); err != nil {
				return nil, fmt.Errorf("core: phase (%d,%d): %w", qh, qw, err)
			}
			wq := decimateFilter(p, pq, w, qh, qw)
			dxq, err := BackwardData(pq, dy, wq)
			if err != nil {
				return nil, fmt.Errorf("core: phase (%d,%d): %w", qh, qw, err)
			}
			// Scatter onto the phase's decimation sites (disjoint across
			// phases: ih + p_H ≡ q_h mod s_H uniquely determines the phase).
			for n := 0; n < p.N; n++ {
				for a := 0; a < pq.IH; a++ {
					ih := sh*a + qh - p.PH
					if ih < 0 || ih >= p.IH {
						continue
					}
					for b := 0; b < pq.IW; b++ {
						iw := sw*b + qw - p.PW
						if iw < 0 || iw >= p.IW {
							continue
						}
						src := dxq.Shape.Index(n, a, b, 0)
						dst := dx.Shape.Index(n, ih, iw, 0)
						copy(dx.Data[dst:dst+p.IC], dxq.Data[src:src+p.IC])
					}
				}
			}
		}
	}
	return dx, nil
}

// BackwardFilterStridedHalf is the FP16 Tensor-Core variant of
// BackwardFilterStrided: each phase's decimated input is gathered in
// binary16 and runs the stride-1 FP16 pipeline (mixed-precision transforms,
// FP32 accumulation, scaling matrices for α = 16).
func BackwardFilterStridedHalf(p conv.StridedParams, x, dy *tensor.Half, opts ...Option) (*tensor.Float32, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if x.Shape != p.XShape() || dy.Shape != p.DYShape() {
		return nil, fmt.Errorf("core: BackwardFilterStridedHalf operand shapes %v/%v",
			x.Shape, dy.Shape)
	}
	if unit, ok := p.Unit(); ok {
		return BackwardFilterHalf(unit, x, dy, opts...)
	}
	// Clone before appending: opts aliases the caller's variadic slice, and
	// appending in place would clobber its backing array when the caller
	// passed a shared slice with spare capacity via opts... .
	opts = append(append([]Option(nil), opts...), WithFP16())
	sh, sw := p.StrideH(), p.StrideW()
	icg := p.ICG()
	dw := tensor.NewFloat32(p.DWShape())
	for qh := 0; qh < sh && qh < p.FH; qh++ {
		for qw := 0; qw < sw && qw < p.FW; qw++ {
			pq, fqh, fqw := phaseGeometry(p, qh, qw)
			if err := pq.Validate(); err != nil {
				return nil, fmt.Errorf("core: phase (%d,%d) geometry: %w", qh, qw, err)
			}
			xq := gatherPhaseInputHalf(p, pq, x, qh, qw)
			dwq, err := BackwardFilterHalf(pq, xq, dy, opts...)
			if err != nil {
				return nil, fmt.Errorf("core: phase (%d,%d): %w", qh, qw, err)
			}
			for oc := 0; oc < p.OC; oc++ {
				for mh := 0; mh < fqh; mh++ {
					for mw := 0; mw < fqw; mw++ {
						src := dwq.Shape.Index(oc, mh, mw, 0)
						dst := dw.Shape.Index(oc, sh*mh+qh, sw*mw+qw, 0)
						copy(dw.Data[dst:dst+icg], dwq.Data[src:src+icg])
					}
				}
			}
		}
	}
	return dw, nil
}
