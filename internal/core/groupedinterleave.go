package core

import (
	"os"
	"runtime"
	"sync/atomic"
	"time"

	"winrs/internal/kahan"
	"winrs/internal/obs"
	"winrs/internal/sched"
	"winrs/internal/tensor"
)

// Interleaved group dispatch: instead of G sequential per-group WinRS
// passes (each paying its own gather, two pool barriers and a serial
// reduce — ruinous when per-group work is tiny, i.e. depthwise), ALL
// groups' work units are fused into one sched batch over an interleaved
// (group, unit) index space. One chunk-self-scheduling run, one
// cancellation poll domain.
//
// Per group the unit stream is: 1 prep unit (zero the slot's buckets),
// 2 gather units (sliceChannels of X and ∇Y into the slot's staging
// slabs), the Ŵ-cache fill rows, then the fused execution units; the last
// execution unit to finish reduces the slot's buckets into the group's
// contiguous ∇W slab. Groups are assigned round-robin to a bounded ring of
// min(G, pool width, groupRingSlots) staging slots, so group gi+1's gather
// overlaps group gi's compute (double buffering) while the workspace grows
// only by the ring factor — still G²/ring below the ungrouped plan.
//
// Ordering is enforced with per-group atomic phase counters and bounded
// spin waits. Deadlock freedom rests on the sched contract: chunks are
// claimed in strictly increasing index order, and every wait condition
// depends only on lower-indexed units, so the earliest incomplete unit is
// always runnable and its (already determined) owner is positioned at or
// before it. The inline pool path runs chunks in index order, where every
// wait is pre-satisfied. Waits poll the cancellation handle because a
// cancelled batch drains chunks without running them — a dependency
// counter may then never complete, and the waiter must bail instead.
//
// Bit-identity with the sequential dispatch: each (segment, f_h, j) unit
// writes a disjoint element range of its segment's bucket, segments use
// distinct buckets, and the per-group Kahan reduce visits buckets in the
// same order as reduceInto — so the interleaving changes no accumulation
// order within any group.

// groupDispatchMode is the WINRS_GROUP_DISPATCH forcing knob.
type groupDispatchMode uint8

const (
	groupDispatchAuto        groupDispatchMode = iota
	groupDispatchSeq                           // force the PR 9 sequential per-group passes
	groupDispatchInterleaved                   // force the fused single-batch dispatch (the auto choice)
)

// groupDispatchForce is the process-wide dispatch mode; tests swap it via
// forceGroupDispatch.
var groupDispatchForce = parseGroupDispatch(os.Getenv("WINRS_GROUP_DISPATCH"))

// groupWidthForce, when positive, overrides the effective co-scheduling
// width (still capped at the pool's width). Tests set it to drive the
// pooled pipeline — phase gates, ring hand-off, chunked claims — on
// machines whose CPU count would otherwise select the inline path.
var groupWidthForce = 0

// parseGroupDispatch maps WINRS_GROUP_DISPATCH to a dispatch mode. Like
// parseEWMMode, unknown values warn and fall back to auto so a typoed
// forcing never silently tests the wrong path.
func parseGroupDispatch(s string) groupDispatchMode {
	switch s {
	case "", "auto":
		return groupDispatchAuto
	case "seq", "sequential":
		return groupDispatchSeq
	case "interleaved":
		return groupDispatchInterleaved
	default:
		envWarnf("winrs: unrecognized WINRS_GROUP_DISPATCH=%q; valid values are auto, interleaved, seq — using auto", s)
		return groupDispatchAuto
	}
}

// InterleavedGroups reports whether grouped plans dispatch interleaved
// (the default; WINRS_GROUP_DISPATCH=seq selects the sequential passes).
// The backend cost model keys its grain accounting off this.
func InterleavedGroups() bool { return groupDispatchForce != groupDispatchSeq }

// groupRingSlots bounds the staging-slot ring: two slots double-buffer the
// pipeline (group gi+1 stages and fills while gi executes and reduces) and
// cap the workspace at 2× the sequential per-group arena — the growth
// budget Config.WorkspaceBytes reports.
const groupRingSlots = 2

// groupRing returns the realized ring depth: min(G, pool width,
// groupRingSlots). A width-1 pool cannot overlap anything, so it keeps
// the single sequential-sized slot.
func groupRing(g, width int) int {
	r := groupRingSlots
	if width < r {
		r = width
	}
	if g < r {
		r = g
	}
	if r < 1 {
		r = 1
	}
	return r
}

// groupPhase is the per-group progress ledger of one interleaved run.
// Plain atomics (no mutex, no channel): completions count down, waiters
// poll with backoff. Reset by the driver before each batch. Padded to a
// cache line so one group's waiters polling and the neighbor group's
// count-downs never ping-pong the same line.
type groupPhase struct {
	prep   atomic.Int32 // 1 once the group's slot buckets are zeroed
	gather atomic.Int32 // staging gathers outstanding (X and ∇Y)
	fill   atomic.Int32 // Ŵ-cache rows outstanding
	exec   atomic.Int32 // fused units outstanding
	done   atomic.Int32 // 1 once reduced into the ∇W slab (slot is free)
	_      [44]byte     // pad to 64 B
}

// groupJob is the pooled sched.Task of one interleaved grouped execution.
// Like execJob it is embedded in the Workspace, so steady-state dispatch
// allocates nothing.
type groupJob struct {
	cfg, gcfg *Config
	ws        *Workspace
	x32, dy32 *tensor.Float32
	x16, dy16 *tensor.Half
	dst       *tensor.Float32
	cancel    *sched.Batch
	half      bool
	resident  bool
	traceOn   bool

	ring          int
	perGroup      int // units per group: 3 + fillRows + execUnits
	fillRows      int
	execUnits     int
	slabElems     int // one group's ∇W slab size
	xRows, dyRows int
}

// Run executes interleaved units [lo, hi) — the sched.Task contract.
func (j *groupJob) Run(lo, hi int) {
	for i := lo; i < hi; i++ {
		gi := i / j.perGroup
		j.runUnit(gi, i-gi*j.perGroup)
	}
}

// wait polls until c reaches want, with staged backoff: a short busy
// poll catches the µs-scale intra-group handoffs (prep → gather →
// fill → exec resolve almost immediately once claims track the runnable
// frontier), an occasional Gosched covers oversubscription, and waits
// that are genuinely long (a ring slot still held by a group two behind)
// fall back to brief sleeps. Tight Gosched loops are specifically what
// this avoids: each Gosched round-trips the global scheduler lock, and
// several workers spinning there starve the productive ones — profiled
// at >90% of batch CPU before the backoff. Returns false when the batch
// was cancelled — the counter may then never complete because cancelled
// chunks are drained without running.
func (j *groupJob) wait(c *atomic.Int32, want int32) bool {
	for spins := 0; c.Load() != want; spins++ {
		if j.cancel.Cancelled() {
			return false
		}
		switch {
		case spins < 256:
			// busy poll: the load above is the whole body
		case spins < 1024:
			runtime.Gosched()
		default:
			time.Sleep(10 * time.Microsecond)
		}
	}
	return true
}

// runUnit executes local unit `local` of group gi. The per-group unit
// order (prep → gathers → fill rows → exec units) carries the intra-group
// dependencies; the ring hand-off (prep waits for group gi−ring to
// retire) carries the cross-group one.
func (j *groupJob) runUnit(gi, local int) {
	ws := j.ws
	st := &ws.gphase[gi]
	slot := &ws.ring[gi%j.ring]
	switch {
	case local == 0:
		// Prep: claim the slot once its previous occupant has reduced,
		// then zero its buckets (fresh slots and slots left dirty by a
		// cancelled run are handled alike).
		if gi >= j.ring && !j.wait(&ws.gphase[gi-j.ring].done, 1) {
			return
		}
		for _, b := range slot.buckets {
			for i := range b {
				b[i] = 0
			}
		}
		st.prep.Store(1)
	case local <= 2:
		if !j.wait(&st.prep, 1) {
			return
		}
		j.gatherUnit(gi, local == 1, slot)
		st.gather.Add(-1)
	case local < 3+j.fillRows:
		if !j.wait(&st.gather, 0) {
			return
		}
		j.fillRowUnit(local-3, slot)
		st.fill.Add(-1)
	default:
		if !j.wait(&st.fill, 0) {
			return
		}
		j.execUnit(local-3-j.fillRows, slot)
		if st.exec.Add(-1) == 0 {
			// Last fused unit of the group: reduce the slot into the
			// group's ∇W slab and retire the slot. The reduce only ever
			// runs when EVERY unit of the group actually executed, so a
			// cancelled run never writes a partial group.
			j.reduceGroup(gi, slot)
			st.done.Store(1)
		}
	}
}

// gatherUnit stages one operand of group gi into the slot: the
// channel-sliced copy (FP32/legacy FP16) or the gather fused with the
// binary16 decode (resident FP16 — exact, so bits match the sequential
// gather-then-decode).
func (j *groupJob) gatherUnit(gi int, isX bool, slot *groupSlot) {
	var t0 time.Time
	if j.traceOn {
		t0 = time.Now()
	}
	p := j.cfg.Params
	icg, ocg := p.ICG(), p.OCG()
	switch {
	case !j.half:
		if isX {
			sliceChannels(slot.xT.Data, j.x32.Data, j.xRows, p.IC, gi*icg, icg)
		} else {
			sliceChannels(slot.dyT.Data, j.dy32.Data, j.dyRows, p.OC, gi*ocg, ocg)
		}
	case j.resident:
		if isX {
			sliceDecodeChannels(slot.xDec, j.x16.Data, j.xRows, p.IC, gi*icg, icg)
		} else {
			sliceDecodeChannels(slot.dyDec, j.dy16.Data, j.dyRows, p.OC, gi*ocg, ocg)
		}
	default:
		if isX {
			sliceChannels(slot.xTH.Data, j.x16.Data, j.xRows, p.IC, gi*icg, icg)
		} else {
			sliceChannels(slot.dyTH.Data, j.dy16.Data, j.dyRows, p.OC, gi*ocg, ocg)
		}
	}
	if j.traceOn {
		obs.RecordStage(obs.StageGroupGather, time.Since(t0))
	}
}

// fillRowUnit is one Ŵ-cache row of the group — fillJob.Run for a single
// row, against the slot's staging operands and cache arena. Recorded per
// row under what_transform when tracing (the sequential dispatch records
// the whole pre-pass once; the histograms label the granularity).
func (j *groupJob) fillRowUnit(row int, slot *groupSlot) {
	cfg, ws := j.gcfg, j.ws
	p := cfg.Params
	si := 0
	for row >= ws.rowOff[si+1] {
		si++
	}
	seg := cfg.Segments[si]
	oh := seg.Row0 + (row - ws.rowOff[si])
	switch {
	case j.half && j.resident:
		s := getTileScratch()
		fillRowHalfRes(p, seg, oh, &slot.dyTH, slot.dyDec, s,
			slot.what32[ws.whatOff[si]:ws.whatOff[si+1]])
		putTileScratch(s)
	case j.half:
		s := getTileScratch()
		fillRowHalf(p, seg, oh, &slot.dyTH, s,
			slot.what16[ws.whatOff[si]:ws.whatOff[si+1]])
		putTileScratch(s)
	default:
		fillRow32(p, seg, oh, &slot.dyT,
			slot.what32[ws.whatOff[si]:ws.whatOff[si+1]])
	}
}

// execUnit is one fused (segment, f_h, width-tile) unit of the group —
// execJob.Run for a single global unit, against the slot's arenas.
func (j *groupJob) execUnit(u int, slot *groupSlot) {
	cfg, ws := j.gcfg, j.ws
	off := ws.unitOff
	fw := cfg.Params.FW
	si := 0
	for u >= off[si+1] {
		si++
	}
	seg := cfg.Segments[si]
	jTiles := fw / seg.K.N
	local := u - off[si]
	fh, jt := local/jTiles, local%jTiles
	switch {
	case j.half && j.resident:
		what := slot.what32[ws.whatOff[si]:ws.whatOff[si+1]]
		tileHalfResUnit(cfg.Params, seg, fh, jt, &slot.xTH, slot.xDec, what, slot.buckets[si], j.traceOn)
	case j.half:
		what := slot.what16[ws.whatOff[si]:ws.whatOff[si+1]]
		tileHalfUnit(cfg.Params, seg, fh, jt, &slot.xTH, what, slot.buckets[si], j.traceOn)
	default:
		what := slot.what32[ws.whatOff[si]:ws.whatOff[si+1]]
		tile32Unit(cfg.Params, seg, fh, jt, &slot.xT, what, slot.buckets[si], j.traceOn)
	}
}

// reduceGroup is phase 3 for one group: Kahan-reduce the slot's buckets
// into the group's contiguous ∇W slab — the same bucket order and copy
// fast path as reduceInto, so the result is bit-identical to the
// sequential dispatch.
func (j *groupJob) reduceGroup(gi int, slot *groupSlot) {
	var t0 time.Time
	if j.traceOn {
		t0 = time.Now()
	}
	n := j.slabElems
	dst := j.dst.Data[gi*n : (gi+1)*n : (gi+1)*n]
	if len(slot.buckets) == 1 {
		copy(dst, slot.buckets[0])
	} else {
		kahan.ReduceBuckets(dst, slot.buckets)
	}
	if j.traceOn {
		obs.RecordStage(obs.StageReduce, time.Since(t0))
	}
}

// runGroupedInterleaved executes a grouped plan as one interleaved sched
// batch. Exactly one operand pair is non-nil: (x32, dy32) for FP32,
// (x16, dy16) for FP16. Reports ok=false when cancellation stopped the
// run; groups then either hold their complete gradient slab or were never
// written — no partial-group bytes.
func runGroupedInterleaved(cfg *Config, ws *Workspace, x32, dy32 *tensor.Float32, x16, dy16 *tensor.Half, dst *tensor.Float32, cancel *sched.Batch) bool {
	gcfg := cfg.group
	if !ws.Fits(cfg) {
		panic("core: workspace does not fit configuration")
	}
	ws.rebind(gcfg)
	p := cfg.Params
	pg := gcfg.Params
	half := x16 != nil
	resident := half && fp16Resident
	traceOn := obs.TraceEnabled()

	pool := execPool()
	g := p.G()
	// Effective co-scheduling width: the pool's width clamped by both
	// GOMAXPROCS (a runtime drop degrades wide pools, mirroring
	// sched.RunBatch) and the machine's actual CPU count. The interleave's
	// phase gates assume a wait resolves on another core; when only one
	// hardware thread exists (GOMAXPROCS oversubscription, cgroup-pinned
	// containers), every wait is a forced reschedule and the pipeline runs
	// strictly better inline.
	width := pool.Workers()
	if n := runtime.GOMAXPROCS(0); width > n {
		width = n
	}
	if n := runtime.NumCPU(); width > n {
		width = n
	}
	if groupWidthForce > 0 {
		width = groupWidthForce
		if w := pool.Workers(); width > w {
			width = w
		}
	}
	ring := groupRing(g, width)
	fillRows := ws.rowOff[len(ws.rowOff)-1]
	execUnits := ws.unitOff[len(ws.unitOff)-1]
	perGroup := 3 + fillRows + execUnits
	icg, ocg := p.ICG(), p.OCG()
	xRows := p.N * p.IH * p.IW
	dyRows := p.N * p.OH() * p.OW()
	whatElems := ws.whatOff[len(ws.whatOff)-1]

	// Size the slot ring: buckets (zeroed by each group's prep unit) plus
	// the precision's staging and Ŵ-cache arenas, with operand tensor views
	// bound so units allocate nothing.
	ws.ensureRing(ring)
	for s := 0; s < ring; s++ {
		slot := &ws.ring[s]
		slot.ensureBuckets(ws.z, ws.elems)
		switch {
		case !half:
			slot.xT = tensor.Float32{Shape: pg.XShape(), Data: growF32(&slot.x32, xRows*icg)}
			slot.dyT = tensor.Float32{Shape: pg.DYShape(), Data: growF32(&slot.dy32, dyRows*ocg)}
			growF32(&slot.what32, whatElems)
		case resident:
			// Decoded-operand mode: staging IS the decoded mirror; the Half
			// views carry only the per-group shape (units index through it).
			slot.xTH = tensor.Half{Shape: pg.XShape()}
			slot.dyTH = tensor.Half{Shape: pg.DYShape()}
			growF32(&slot.xDec, xRows*icg)
			growF32(&slot.dyDec, dyRows*ocg)
			growF32(&slot.what32, whatElems)
		default:
			slot.xTH = tensor.Half{Shape: pg.XShape(), Data: growHalf(&slot.x16, xRows*icg)}
			slot.dyTH = tensor.Half{Shape: pg.DYShape(), Data: growHalf(&slot.dy16, dyRows*ocg)}
			growHalf(&slot.what16, whatElems)
		}
	}

	if cap(ws.gphase) < g {
		ws.gphase = make([]groupPhase, g)
	}
	ws.gphase = ws.gphase[:g]
	for i := range ws.gphase {
		st := &ws.gphase[i]
		st.prep.Store(0)
		st.gather.Store(2)
		st.fill.Store(int32(fillRows))
		st.exec.Store(int32(execUnits))
		st.done.Store(0)
	}

	ws.gjob = groupJob{
		cfg: cfg, gcfg: gcfg, ws: ws,
		x32: x32, dy32: dy32, x16: x16, dy16: dy16,
		dst: dst, cancel: cancel,
		half: half, resident: resident, traceOn: traceOn,
		ring: ring, perGroup: perGroup,
		fillRows: fillRows, execUnits: execUnits,
		slabElems: pg.DWShape().Elems(),
		xRows:     xRows, dyRows: dyRows,
	}
	total := g * perGroup
	if width == 1 {
		// Single effective thread: run the whole unit stream in index
		// order on this goroutine (every wait is pre-satisfied), checking
		// cancellation at group boundaries — the same full-or-nothing
		// granularity the pooled path has, without recruiting helpers that
		// could only time-slice one core.
		for lo := 0; lo < total && !cancel.Cancelled(); lo += perGroup {
			ws.gjob.Run(lo, lo+perGroup)
		}
	} else {
		// Claim unit-by-unit. The batch is a dependency pipeline, not an
		// embarrassingly parallel grid: a multi-unit chunk hands one worker
		// a serial span whose later units wait on the earlier ones, so its
		// co-workers stall behind gates only the span owner can open. With
		// chunk=1 every worker keeps converging on the runnable frontier
		// and waits stay µs-scale. The claim cost (one atomic add per unit)
		// is noise next to the cheapest unit.
		pool.RunBatch(total, 1, &ws.gjob, cancel)
	}
	ws.gjob = groupJob{}
	return !cancel.Cancelled()
}
