//go:build amd64.v3

package core

// GOAMD64=v3 leg of the kernel tier. Go's compiler does not contract
// separate mul+add float32 expressions into FMA even at v3 (verified on
// the generated assembly: MULSS+ADDSS), and an explicit
// float32(math.FMA(...)) double-rounds through float64 — so a "true" FMA
// variant cannot be bit-identical to the oracle. What v3 *does* buy is the
// AVX2 register file and better scheduling headroom, so the arch variant
// keeps the exact same one-fused-add-per-element arithmetic and only
// changes the instruction schedule: the inner body walks the 8×8 block
// column-major (all eight rows per X̂ value) instead of row-major, keeping
// the eight Ŵ broadcasts pinned while streaming X̂. Per element the single
// r[b] += w*x is unchanged, so results are bit-identical by construction;
// the differential suites pin it on the v3 CI leg.

// ewmArchSuffix tags the per-plan kernel attribution when the arch variant
// is compiled in.
const ewmArchSuffix = "+v3"

// ewmPanel8x8Arch is the v3-scheduled 8×8 block: same blocking, same zero
// skip, same tail, column-major inner order.
func ewmPanel8x8Arch(ve, we, xe []float32, oc, ic int) {
	a := 0
	for ; a+8 <= oc; a += 8 {
		w0, w1, w2, w3 := we[a], we[a+1], we[a+2], we[a+3]
		w4, w5, w6, w7 := we[a+4], we[a+5], we[a+6], we[a+7]
		if w0 == 0 && w1 == 0 && w2 == 0 && w3 == 0 &&
			w4 == 0 && w5 == 0 && w6 == 0 && w7 == 0 {
			continue
		}
		r0 := ve[(a+0)*ic : (a+0)*ic+ic : (a+0)*ic+ic]
		r1 := ve[(a+1)*ic : (a+1)*ic+ic : (a+1)*ic+ic]
		r2 := ve[(a+2)*ic : (a+2)*ic+ic : (a+2)*ic+ic]
		r3 := ve[(a+3)*ic : (a+3)*ic+ic : (a+3)*ic+ic]
		r4 := ve[(a+4)*ic : (a+4)*ic+ic : (a+4)*ic+ic]
		r5 := ve[(a+5)*ic : (a+5)*ic+ic : (a+5)*ic+ic]
		r6 := ve[(a+6)*ic : (a+6)*ic+ic : (a+6)*ic+ic]
		r7 := ve[(a+7)*ic : (a+7)*ic+ic : (a+7)*ic+ic]
		b := 0
		for ; b+8 <= ic; b += 8 {
			for o := b; o < b+8; o++ {
				xv := xe[o]
				r0[o] += w0 * xv
				r1[o] += w1 * xv
				r2[o] += w2 * xv
				r3[o] += w3 * xv
				r4[o] += w4 * xv
				r5[o] += w5 * xv
				r6[o] += w6 * xv
				r7[o] += w7 * xv
			}
		}
		for ; b < ic; b++ {
			xv := xe[b]
			r0[b] += w0 * xv
			r1[b] += w1 * xv
			r2[b] += w2 * xv
			r3[b] += w3 * xv
			r4[b] += w4 * xv
			r5[b] += w5 * xv
			r6[b] += w6 * xv
			r7[b] += w7 * xv
		}
	}
	if a < oc {
		ewmPanelTail(ve, we, xe, a, oc, ic)
	}
}
