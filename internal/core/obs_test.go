package core

import (
	"math/rand"
	"runtime/debug"
	"testing"

	"winrs/internal/conv"
	"winrs/internal/obs"
	"winrs/internal/tensor"
)

// obsTestLayer is a single-unit, single-segment geometry (F_H=1, F_W=3,
// one width tile, Z forced to 1), so the sched dispatch degenerates to the
// inline path and the steady-state execution has no goroutine bookkeeping
// at all — the strictest surface to pin allocation behavior on.
func obsTestLayer(t testing.TB) (*Config, *tensor.Float32, *tensor.Float32, *tensor.Half, *tensor.Half) {
	t.Helper()
	p := conv.Params{N: 1, IH: 6, IW: 14, FH: 1, FW: 3, IC: 4, OC: 4}
	cfg, err := Configure(p, WithSegments(1), WithFP16())
	if err != nil {
		t.Fatal(err)
	}
	if got := cfg.unitOff[len(cfg.unitOff)-1]; got != 1 {
		t.Fatalf("geometry realizes %d work units, want 1 (test needs the serial path)", got)
	}
	rng := rand.New(rand.NewSource(51))
	x := tensor.NewFloat32(p.XShape())
	dy := tensor.NewFloat32(p.DYShape())
	x.FillUniform(rng, 0, 1)
	dy.FillUniform(rng, 0, 1)
	return cfg, x, dy, x.ToHalf(), dy.ToHalf()
}

// The disabled-observability path must add exactly 0 allocations per
// steady-state ExecuteIn/ExecuteHalfIn, and the enabled path a bounded
// constant (in practice also 0: timers and UnitTimes stay on the stack).
// GC is paused during measurement so sync.Pool contents are stable.
func TestObservabilityAllocsPinned(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation allocates; alloc pinning runs without -race")
	}
	cfg, x, dy, xh, dyh := obsTestLayer(t)
	ws := NewWorkspace(cfg)
	dst := tensor.NewFloat32(cfg.Params.DWShape())

	// Warm the tile-scratch pool, then freeze the GC so the pool cannot be
	// drained mid-measurement.
	ExecuteIn(cfg, ws, x, dy, dst)
	ExecuteHalfIn(cfg, ws, xh, dyh, dst)
	defer debug.SetGCPercent(debug.SetGCPercent(-1))

	obs.EnableTrace(false)
	disabled32 := testing.AllocsPerRun(50, func() { ExecuteIn(cfg, ws, x, dy, dst) })
	disabled16 := testing.AllocsPerRun(50, func() { ExecuteHalfIn(cfg, ws, xh, dyh, dst) })
	if disabled32 != 0 {
		t.Errorf("disabled-trace ExecuteIn allocates %v per run, want 0", disabled32)
	}
	if disabled16 != 0 {
		t.Errorf("disabled-trace ExecuteHalfIn allocates %v per run, want 0", disabled16)
	}

	obs.EnableTrace(true)
	defer obs.EnableTrace(false)
	defer obs.ResetTrace()
	enabled32 := testing.AllocsPerRun(50, func() { ExecuteIn(cfg, ws, x, dy, dst) })
	enabled16 := testing.AllocsPerRun(50, func() { ExecuteHalfIn(cfg, ws, xh, dyh, dst) })
	const maxEnabledAllocs = 4 // bounded constant; currently 0 in practice
	if enabled32-disabled32 > maxEnabledAllocs {
		t.Errorf("enabled-trace ExecuteIn adds %v allocs per run, want ≤ %d",
			enabled32-disabled32, maxEnabledAllocs)
	}
	if enabled16-disabled16 > maxEnabledAllocs {
		t.Errorf("enabled-trace ExecuteHalfIn adds %v allocs per run, want ≤ %d",
			enabled16-disabled16, maxEnabledAllocs)
	}
}

// Tracing must observe every stage of an execution: units on both precision
// paths, nested transform/EWM times that fit inside the unit, and one
// reduce record per call.
func TestExecuteRecordsStages(t *testing.T) {
	cfg, x, dy, xh, dyh := obsTestLayer(t)
	obs.ResetTrace()
	obs.EnableTrace(true)
	defer obs.EnableTrace(false)
	defer obs.ResetTrace()

	const calls = 3
	for i := 0; i < calls; i++ {
		Execute(cfg, x, dy)
		ExecuteHalf(cfg, xh, dyh)
	}
	snap := obs.TraceSnapshot()
	units := snap[obs.StageSegmentTile]
	if units.Count != 2*calls { // one unit per call per precision
		t.Fatalf("segment_tile count = %d, want %d", units.Count, 2*calls)
	}
	if snap[obs.StageReduce].Count != 2*calls {
		t.Errorf("reduce count = %d, want %d", snap[obs.StageReduce].Count, 2*calls)
	}
	if snap[obs.StageWHat].Count != 2*calls { // one Ŵ pre-pass per execution
		t.Errorf("what_transform count = %d, want %d", snap[obs.StageWHat].Count, 2*calls)
	}
	if snap[obs.StageTransform].Count != 2*calls || snap[obs.StageEWM].Count != 2*calls {
		t.Errorf("transform/ewm counts = %d/%d, want %d",
			snap[obs.StageTransform].Count, snap[obs.StageEWM].Count, 2*calls)
	}
	// Nesting invariant: the intra-unit stages are sampled 1-in-N and
	// scaled, so the estimate carries noise; allow 25% estimator slack over
	// the measured unit total.
	if nested := snap[obs.StageTransform].Total + snap[obs.StageEWM].Total; float64(nested) > 1.25*float64(units.Total) {
		t.Errorf("transform+ewm %v exceeds segment_tile total %v by more than 25%%", nested, units.Total)
	}
	if units.Total <= 0 {
		t.Error("segment_tile total duration not recorded")
	}
}

// Tracing must not change results: the traced execution is bit-identical
// to the untraced one.
func TestTracingDoesNotPerturbResults(t *testing.T) {
	rng := rand.New(rand.NewSource(52))
	p := conv.Params{N: 2, IH: 18, IW: 20, FH: 3, FW: 3, IC: 5, OC: 6, PH: 1, PW: 1}
	cfg, err := Configure(p)
	if err != nil {
		t.Fatal(err)
	}
	x := tensor.NewFloat32(p.XShape())
	dy := tensor.NewFloat32(p.DYShape())
	x.FillUniform(rng, 0, 1)
	dy.FillUniform(rng, 0, 1)

	obs.EnableTrace(false)
	want := Execute(cfg, x, dy)
	obs.EnableTrace(true)
	defer obs.EnableTrace(false)
	defer obs.ResetTrace()
	got := Execute(cfg, x, dy)
	for i := range want.Data {
		if got.Data[i] != want.Data[i] {
			t.Fatalf("traced result differs at %d: %v vs %v", i, got.Data[i], want.Data[i])
		}
	}
}
