package core

import (
	"context"
	"errors"
	"math/rand"
	"testing"

	"winrs/internal/conv"
	"winrs/internal/tensor"
)

// groupedSweepCases is the grouped differential grid: split and depthwise
// variants of the standard sweep shapes, including strides-unfriendly
// channel counts, padding, batching and a 5×5 filter.
var groupedSweepCases = []struct {
	name string
	p    conv.Params
	segs []int
}{
	{"3x3_G2", conv.Params{N: 1, IH: 12, IW: 12, FH: 3, FW: 3, IC: 6, OC: 8, PH: 1, PW: 1, Groups: 2}, []int{0, 1, 3}},
	{"3x3_G4_batched", conv.Params{N: 2, IH: 10, IW: 10, FH: 3, FW: 3, IC: 8, OC: 4, PH: 1, PW: 1, Groups: 4}, []int{0, 2}},
	{"5x5_G2", conv.Params{N: 1, IH: 14, IW: 16, FH: 5, FW: 5, IC: 4, OC: 6, PH: 2, PW: 2, Groups: 2}, []int{0, 2}},
	{"3x3_depthwise", conv.Params{N: 1, IH: 16, IW: 16, FH: 3, FW: 3, IC: 4, OC: 4, PH: 1, PW: 1, Groups: 4}, []int{0, 2}},
	{"3x3_depthwise_mult", conv.Params{N: 2, IH: 9, IW: 13, FH: 3, FW: 3, IC: 3, OC: 6, Groups: 3}, []int{0}},
	{"2x2_G2_nopad", conv.Params{N: 1, IH: 11, IW: 15, FH: 2, FW: 2, IC: 4, OC: 4, Groups: 2}, []int{0, 1}},
}

func groupedLayer64(t testing.TB, seed int64, p conv.Params) (*tensor.Float64, *tensor.Float64) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	x64 := tensor.NewFloat64(p.XShape())
	dy64 := tensor.NewFloat64(p.DYShape())
	for i := range x64.Data {
		x64.Data[i] = rng.Float64()
	}
	for i := range dy64.Data {
		dy64.Data[i] = rng.Float64()
	}
	return x64, dy64
}

// Grouped FP32 BFC must match the grouped float64 direct oracle on every
// sweep shape, across forced segment counts, inline and through a width-4
// pool (run under -race, this is the grouped co-scheduling differential).
func TestGroupedMatchesDirect(t *testing.T) {
	for _, width := range []int{1, 4} {
		withTestPool(t, width, func() {
			for _, tc := range groupedSweepCases {
				if err := tc.p.Validate(); err != nil {
					t.Fatalf("%s: %v", tc.name, err)
				}
				x64, dy64 := groupedLayer64(t, 61, tc.p)
				want := conv.BackwardFilterDirect64(tc.p, x64, dy64)
				x, dy := x64.ToFloat32(), dy64.ToFloat32()
				for _, z := range tc.segs {
					opts := []Option{}
					if z > 0 {
						opts = append(opts, WithSegments(z))
					}
					cfg, err := Configure(tc.p, opts...)
					if err != nil {
						t.Fatalf("%s z=%d: %v", tc.name, z, err)
					}
					if cfg.GroupConfig() == nil {
						t.Fatalf("%s: grouped geometry planned without a per-group config", tc.name)
					}
					got := Execute(cfg, x, dy)
					if m := tensor.MARE(got, want); m > 1e-5 {
						t.Errorf("%s width=%d z=%d: MARE %v > 1e-5", tc.name, width, z, m)
					}
				}
			}
		})
	}
}

// Grouped FP16 BFC against the grouped oracle on the quantized inputs,
// within the paper's eq.(7) FP16 band, at pool widths 1 and 4.
func TestGroupedHalfMatchesDirect(t *testing.T) {
	for _, width := range []int{1, 4} {
		withTestPool(t, width, func() {
			for _, tc := range groupedSweepCases {
				rng := rand.New(rand.NewSource(62))
				x64 := tensor.NewFloat64(tc.p.XShape())
				dy64 := tensor.NewFloat64(tc.p.DYShape())
				for i := range x64.Data {
					x64.Data[i] = rng.Float64()
				}
				for i := range dy64.Data {
					dy64.Data[i] = rng.Float64() * 0.01 // the paper's FP16 ∇Y scaling
				}
				xh := x64.ToFloat32().ToHalf()
				dyh := dy64.ToFloat32().ToHalf()
				want := conv.BackwardFilterDirect64(tc.p, xh.ToFloat32().ToFloat64(),
					dyh.ToFloat32().ToFloat64())
				got, err := BackwardFilterHalf(tc.p, xh, dyh)
				if err != nil {
					t.Fatalf("%s: %v", tc.name, err)
				}
				if m := tensor.MARE(got, want); m > 5e-3 {
					t.Errorf("%s width=%d: FP16 MARE %v > 5e-3", tc.name, width, m)
				}
			}
		})
	}
}

// Grouped strided BFC — every phase runs the grouped stride-1 pipeline —
// against the grouped strided float64 oracle, FP32 and FP16.
func TestGroupedStridedMatchesDirect(t *testing.T) {
	cases := []conv.StridedParams{
		{N: 1, IH: 13, IW: 13, FH: 3, FW: 3, IC: 4, OC: 6, PH: 1, PW: 1, SH: 2, SW: 2, Groups: 2},
		{N: 2, IH: 11, IW: 15, FH: 3, FW: 3, IC: 4, OC: 4, SH: 2, SW: 1, Groups: 4}, // depthwise, sw==1 fast path
		{N: 1, IH: 16, IW: 12, FH: 5, FW: 5, IC: 6, OC: 3, PH: 2, PW: 2, SH: 1, SW: 2, Groups: 3},
	}
	for _, width := range []int{1, 4} {
		withTestPool(t, width, func() {
			for _, p := range cases {
				if err := p.Validate(); err != nil {
					t.Fatal(err)
				}
				rng := rand.New(rand.NewSource(63))
				x64 := tensor.NewFloat64(p.XShape())
				dy64 := tensor.NewFloat64(p.DYShape())
				for i := range x64.Data {
					x64.Data[i] = rng.Float64()
				}
				for i := range dy64.Data {
					dy64.Data[i] = rng.Float64()
				}
				want := conv.BackwardFilterStridedDirect64(p, x64, dy64)
				got, err := BackwardFilterStrided(p, x64.ToFloat32(), dy64.ToFloat32())
				if err != nil {
					t.Fatalf("%v: %v", p, err)
				}
				if m := tensor.MARE(got, want); m > 1e-5 {
					t.Errorf("%v width=%d: strided MARE %v > 1e-5", p, width, m)
				}

				xh := x64.ToFloat32().ToHalf()
				dyh := dy64.ToFloat32().ToHalf()
				wantH := conv.BackwardFilterStridedDirect64(p, xh.ToFloat32().ToFloat64(),
					dyh.ToFloat32().ToFloat64())
				gotH, err := BackwardFilterStridedHalf(p, xh, dyh)
				if err != nil {
					t.Fatalf("%v fp16: %v", p, err)
				}
				if m := tensor.MARE(gotH, wantH); m > 5e-3 {
					t.Errorf("%v width=%d: strided FP16 MARE %v > 5e-3", p, width, m)
				}
			}
		})
	}
}

// Depthwise (G == I_C) must run the planned WinRS path — a real fast
// kernel, not the direct fallback — and its shared per-group workspace
// must shrink versus the ungrouped plan of the same outer geometry at
// equal Z. This is the paper's headline quantity under grouping.
func TestDepthwisePlannedPathWorkspaceShrinks(t *testing.T) {
	p := conv.Params{N: 2, IH: 24, IW: 24, FH: 3, FW: 3, IC: 16, OC: 16, PH: 1, PW: 1, Groups: 16}
	// Force Z > 1 on both plans: the workspace is (Z-1)·sizeof(∇W) slabs,
	// so at Z = 1 both report zero and the comparison is vacuous.
	cfg, err := Configure(p, WithSegments(4))
	if err != nil {
		t.Fatal(err)
	}
	g := cfg.GroupConfig()
	if g == nil {
		t.Fatal("depthwise plan has no per-group config")
	}
	if g.Pair.Fast.N <= 1 {
		t.Errorf("depthwise runs fallback kernel %v, want a planned fast kernel (n > 1)", g.Pair.Fast)
	}
	pu := p
	pu.Groups = 0
	ucfg, err := Configure(pu, WithSegments(cfg.Z()))
	if err != nil {
		t.Fatal(err)
	}
	gw, uw := cfg.WorkspaceBytes(), ucfg.WorkspaceBytes()
	if gw <= 0 || uw <= 0 {
		t.Fatalf("degenerate workspaces: grouped %d, ungrouped %d", gw, uw)
	}
	if gw >= uw {
		t.Errorf("grouped workspace %d B >= ungrouped %d B; want per-group shrinkage", gw, uw)
	}
	// Per-group ∇W slab is (O_C/G)·F_H·F_W·(I_C/G): the single sequential
	// arena shrinks exactly G² at equal Z (both sides round Z the same way
	// under WithSegments), and the executed workspace grows by at most the
	// interleaved dispatch's ring factor — the ISSUE 10 ≤ 2× budget.
	sw := cfg.WorkspaceSeqBytes()
	if cfg.Z() == ucfg.Z() && uw != sw*int64(p.G())*int64(p.G()) {
		t.Errorf("workspace shrink %d/%d, want exactly G²=%d at equal Z", uw, sw, p.G()*p.G())
	}
	if gw > 2*sw {
		t.Errorf("interleaved workspace %d B > 2× the sequential per-group arena %d B", gw, sw)
	}
	if ring := cfg.GroupRing(); gw != sw*int64(ring) {
		t.Errorf("WorkspaceBytes %d != WorkspaceSeqBytes %d × ring %d", gw, sw, ring)
	}
	if d := cfg.Describe(); d.Layer.Groups != p.G() {
		t.Errorf("Describe reports groups %d, want %d", d.Layer.Groups, p.G())
	}
}

// Grouped forward and data-gradient siblings against the conv references.
func TestGroupedForwardBackwardData(t *testing.T) {
	p := conv.Params{N: 1, IH: 12, IW: 12, FH: 3, FW: 3, IC: 6, OC: 4, PH: 1, PW: 1, Groups: 2}
	x64, _ := groupedLayer64(t, 64, p)
	rng := rand.New(rand.NewSource(65))
	w64 := tensor.NewFloat64(p.DWShape())
	for i := range w64.Data {
		w64.Data[i] = rng.Float64()*2 - 1
	}
	want := conv.Forward64(p, x64, w64)
	got, err := Forward(p, x64.ToFloat32(), w64.ToFloat32())
	if err != nil {
		t.Fatal(err)
	}
	if m := tensor.MARE(got, want); m > 1e-4 {
		t.Errorf("grouped forward MARE %v > 1e-4", m)
	}

	dy64 := tensor.NewFloat64(p.DYShape())
	for i := range dy64.Data {
		dy64.Data[i] = rng.Float64()*2 - 1
	}
	dy, w := dy64.ToFloat32(), w64.ToFloat32()
	wantDX := conv.BackwardData32(p, dy, w)
	gotDX, err := BackwardData(p, dy, w)
	if err != nil {
		t.Fatal(err)
	}
	for i := range wantDX.Data {
		d := gotDX.Data[i] - wantDX.Data[i]
		if d < -1e-3 || d > 1e-3 {
			t.Fatalf("grouped backward-data diverges at %d: %v vs %v",
				i, gotDX.Data[i], wantDX.Data[i])
		}
	}
}

// The cancellable grouped path: uncancelled runs are bit-identical to the
// plain path; a pre-cancelled context aborts before any group executes.
func TestGroupedCtxCancellable(t *testing.T) {
	p := conv.Params{N: 1, IH: 12, IW: 12, FH: 3, FW: 3, IC: 6, OC: 6, PH: 1, PW: 1, Groups: 3}
	cfg, err := Configure(p, WithSegments(2))
	if err != nil {
		t.Fatal(err)
	}
	x, dy := poolLayer(t, 66, p)
	want := ExecuteIn(cfg, nil, x, dy, nil)
	got, err := ExecuteInCtx(context.Background(), cfg, nil, x, dy, nil)
	if err != nil {
		t.Fatal(err)
	}
	equalBits(t, "grouped-ctx", got.Data, want.Data)

	cfg16, err := Configure(p, WithSegments(2), WithFP16())
	if err != nil {
		t.Fatal(err)
	}
	xh, dyh := x.ToHalf(), dy.ToHalf()
	wantH := ExecuteHalfIn(cfg16, nil, xh, dyh, nil)
	gotH, err := ExecuteHalfInCtx(context.Background(), cfg16, nil, xh, dyh, nil)
	if err != nil {
		t.Fatal(err)
	}
	equalBits(t, "grouped-ctx-fp16", gotH.Data, wantH.Data)

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if out, err := ExecuteInCtx(ctx, cfg, nil, x, dy, nil); !errors.Is(err, context.Canceled) || out != nil {
		t.Fatalf("pre-cancelled grouped: out=%v err=%v", out, err)
	}
	if out, err := ExecuteHalfInCtx(ctx, cfg16, nil, xh, dyh, nil); !errors.Is(err, context.Canceled) || out != nil {
		t.Fatalf("pre-cancelled grouped fp16: out=%v err=%v", out, err)
	}
}

// A shared workspace must be reusable across grouped runs and across
// grouped/ungrouped plans of matching per-group size (ExecuteIn re-zeroes
// buckets per pass), and grouped execution must stay deterministic.
func TestGroupedWorkspaceReuseDeterministic(t *testing.T) {
	p := conv.Params{N: 1, IH: 16, IW: 16, FH: 3, FW: 3, IC: 8, OC: 8, PH: 1, PW: 1, Groups: 2}
	cfg, err := Configure(p, WithSegments(3))
	if err != nil {
		t.Fatal(err)
	}
	x, dy := poolLayer(t, 67, p)
	ws := NewWorkspace(cfg)
	a := ExecuteIn(cfg, ws, x, dy, nil)
	for run := 0; run < 3; run++ {
		b := ExecuteIn(cfg, ws, x, dy, nil)
		equalBits(t, "grouped-reuse", b.Data, a.Data)
	}
}
