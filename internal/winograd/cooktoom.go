package winograd

import (
	"fmt"
	"math/big"
	"sync"
)

// Transform holds the three Winograd transform matrices of F(n,r):
//
//	A ∈ R^{α×n}  — output transform (applied as Aᵀ)
//	G ∈ R^{α×r}  — filter transform
//	D ∈ R^{α×α}  — input transform (applied as Dᵀ)
//
// with α = N + R - 1. The matrices are generated exactly with rational
// arithmetic and converted once to float64, so their entries carry no
// construction rounding beyond the final conversion.
type Transform struct {
	N, R, Alpha int
	A, G, D     *Mat
}

// interpolation point sequence used by the paper (§5.2 "Transform
// Simplification"): 0, then ±p pairs with growing complexity. Ordering
// points as {0, 1, -1, 2, -2, ...} pairs rows 2k/2k+1 into the ± symmetry
// of Figure 8.
// The ±3/2 and ±2/3 pairs are preferred over ±4 and ±1/4 for the α = 16
// transforms: keeping point magnitudes near 1 roughly halves the float32
// error of the generated matrices (measured on F(6,11), F(9,8), F(5,12)).
var pointSequence = []*big.Rat{
	big.NewRat(0, 1),
	big.NewRat(1, 1), big.NewRat(-1, 1),
	big.NewRat(2, 1), big.NewRat(-2, 1),
	big.NewRat(1, 2), big.NewRat(-1, 2),
	big.NewRat(3, 1), big.NewRat(-3, 1),
	big.NewRat(1, 3), big.NewRat(-1, 3),
	big.NewRat(3, 2), big.NewRat(-3, 2),
	big.NewRat(2, 3), big.NewRat(-2, 3),
	big.NewRat(4, 1), big.NewRat(-4, 1),
	big.NewRat(1, 4), big.NewRat(-1, 4),
}

// Points returns the k finite interpolation points used for a transform of
// size α = k+1 (the last point is the point at infinity). It panics if more
// points are requested than the sequence provides (α > 20).
func Points(k int) []*big.Rat {
	if k > len(pointSequence) {
		panic(fmt.Sprintf("winograd: %d interpolation points requested, only %d available",
			k, len(pointSequence)))
	}
	return pointSequence[:k]
}

// ratPoly is a dense polynomial with rational coefficients, index = degree.
type ratPoly []*big.Rat

func newRatPoly(deg int) ratPoly {
	p := make(ratPoly, deg+1)
	for i := range p {
		p[i] = new(big.Rat)
	}
	return p
}

// mulLinear returns p(s)·(s - root).
func (p ratPoly) mulLinear(root *big.Rat) ratPoly {
	q := newRatPoly(len(p)) // degree grows by one
	negRoot := new(big.Rat).Neg(root)
	for i, c := range p {
		// s term: shifts coefficient up by one degree.
		q[i+1].Add(q[i+1], c)
		// -root term.
		t := new(big.Rat).Mul(c, negRoot)
		q[i].Add(q[i], t)
	}
	return q
}

// GenerateExact constructs the F(n,r) transform matrices with exact
// rational arithmetic and returns them as rational matrices
// (row-major [][]*big.Rat). The construction is the classic Cook–Toom /
// Winograd method with α-1 finite points plus the point at infinity:
//
//   - A (α×n): row i evaluates a degree-(n-1) polynomial at point pᵢ
//     ([1, pᵢ, pᵢ², …]); the ∞ row selects the leading coefficient.
//   - G (α×r): same Vandermonde structure with r columns.
//   - D (α×α): column i holds the coefficients of the scaled Lagrange basis
//     L̂ᵢ(s) = Π_{k≠i}(s−p_k)/Nᵢ  (Nᵢ = Π_{k≠i}(pᵢ−p_k)); the ∞ column
//     holds the coefficients of m̂(s) = Π_k(s−p_k).
//
// With these definitions the full linear convolution of u (len n) and
// v (len r) is C[(A·u) ⊙ (G·v)] with C = D, and by the transposition
// principle Y = Aᵀ[(G·W) ⊙ (Dᵀ·X)] computes the n-output r-tap valid
// correlation of X (len α). GenerateExact panics for n < 1, r < 1 or an α
// beyond the available point sequence.
func GenerateExact(n, r int) (aRat, gRat, dRat [][]*big.Rat) {
	if n < 1 || r < 1 {
		panic(fmt.Sprintf("winograd: invalid F(%d,%d)", n, r))
	}
	alpha := n + r - 1
	pts := Points(alpha - 1)

	// Vandermonde evaluation matrices A (α×n) and G (α×r).
	vander := func(cols int) [][]*big.Rat {
		m := make([][]*big.Rat, alpha)
		for i := 0; i < alpha-1; i++ {
			m[i] = make([]*big.Rat, cols)
			pw := big.NewRat(1, 1)
			for j := 0; j < cols; j++ {
				m[i][j] = new(big.Rat).Set(pw)
				pw = new(big.Rat).Mul(pw, pts[i])
			}
		}
		// Point at infinity: leading coefficient.
		inf := make([]*big.Rat, cols)
		for j := range inf {
			inf[j] = new(big.Rat)
		}
		inf[cols-1].SetInt64(1)
		m[alpha-1] = inf
		return m
	}
	aRat = vander(n)
	gRat = vander(r)

	// Interpolation matrix D (α×α).
	dRat = make([][]*big.Rat, alpha)
	for i := range dRat {
		dRat[i] = make([]*big.Rat, alpha)
		for j := range dRat[i] {
			dRat[i][j] = new(big.Rat)
		}
	}
	// Finite columns: coefficients of Π_{k≠i}(s−p_k)/Nᵢ.
	for i := 0; i < alpha-1; i++ {
		poly := ratPoly{big.NewRat(1, 1)}
		ni := big.NewRat(1, 1)
		for k := 0; k < alpha-1; k++ {
			if k == i {
				continue
			}
			poly = poly.mulLinear(pts[k])
			diff := new(big.Rat).Sub(pts[i], pts[k])
			ni.Mul(ni, diff)
		}
		inv := new(big.Rat).Inv(ni)
		for deg, c := range poly {
			dRat[deg][i].Mul(c, inv)
		}
	}
	// Infinity column: coefficients of m̂(s) = Π_k(s−p_k), monic deg α-1.
	mhat := ratPoly{big.NewRat(1, 1)}
	for k := 0; k < alpha-1; k++ {
		mhat = mhat.mulLinear(pts[k])
	}
	for deg, c := range mhat {
		dRat[deg][alpha-1].Set(c)
	}
	return aRat, gRat, dRat
}

func ratMatToFloat(m [][]*big.Rat) *Mat {
	out := NewMat(len(m), len(m[0]))
	for i, row := range m {
		for j, v := range row {
			f, _ := v.Float64()
			out.Set(i, j, f)
		}
	}
	return out
}

var (
	transformCacheMu sync.Mutex
	transformCache   = map[[2]int]*Transform{}
)

// Generate returns the float64 transform matrices of F(n,r). Results are
// cached; the returned Transform is shared and must be treated as
// read-only (use Clone on the matrices before mutating).
func Generate(n, r int) *Transform {
	key := [2]int{n, r}
	transformCacheMu.Lock()
	defer transformCacheMu.Unlock()
	if t, ok := transformCache[key]; ok {
		return t
	}
	aR, gR, dR := GenerateExact(n, r)
	t := &Transform{
		N: n, R: r, Alpha: n + r - 1,
		A: ratMatToFloat(aR),
		G: ratMatToFloat(gR),
		D: ratMatToFloat(dR),
	}
	transformCache[key] = t
	return t
}

// Multiplies returns the number of element-wise multiplications F(n,r)
// needs per tile (α), the quantity direct convolution would need (n·r),
// and the acceleration factor n·r/α of the paper's footnote 2.
func (t *Transform) Multiplies() (ewm, direct int, accel float64) {
	return t.Alpha, t.N * t.R, float64(t.N*t.R) / float64(t.Alpha)
}

// Accel1DMax returns (α+1)²/(4α): the best acceleration factor n·r/α any
// 1-D F(n,r) with tile size α can reach, attained at n = r = (α+1)/2. This
// is the paper's eq. (3) left-hand side (the paper states both sides divided
// by the common factor α).
func Accel1DMax(alpha int) float64 {
	a := float64(alpha)
	return (a + 1) * (a + 1) / (4 * a)
}

// Accel2DMax returns the best acceleration factor of a nested 2-D
// F(n0×n1, r0×r1) with tile sizes α0, α1 — the paper's eq. (3) right-hand
// side under the equivalent space limit α = α0·α1. For any factorization
// α = α0·α1 with α0,α1 ≥ 1, Accel1DMax(α) ≥ Accel2DMax(α0, α1).
func Accel2DMax(alpha0, alpha1 int) float64 {
	return Accel1DMax(alpha0) * Accel1DMax(alpha1)
}

// Intensity1D returns the paper's eq. (4) computation intensity ρ_1D of a
// fused F(n,r) kernel with cache block B_N×B_M: 2·B_N·B_M / (B_N·r + B_M·α).
func Intensity1D(bn, bm, r, alpha int) float64 {
	return 2 * float64(bn) * float64(bm) /
		(float64(bn)*float64(r) + float64(bm)*float64(alpha))
}

// Intensity2D returns the eq. (4) computation intensity ρ_2D of a fused
// nested F(n0×n1, r0×r1) kernel: 2·B_N·B_M / (B_N·r0·r1 + B_M·α0·α1).
func Intensity2D(bn, bm, r0, r1, alpha0, alpha1 int) float64 {
	return 2 * float64(bn) * float64(bm) /
		(float64(bn)*float64(r0)*float64(r1) + float64(bm)*float64(alpha0)*float64(alpha1))
}
