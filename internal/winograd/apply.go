package winograd

import (
	"winrs/internal/fp16"
)

// Conv1D computes the F(n,r) Winograd correlation in float64:
// y[i] = Σ_k x[i+k]·w[k] for i in [0,n), with len(x) = α and len(w) = r.
func (t *Transform) Conv1D(x, w []float64) []float64 {
	if len(x) != t.Alpha || len(w) != t.R {
		panic("winograd: Conv1D operand size mismatch")
	}
	gw := t.G.MulVec(w)  // filter transform, length α
	dx := t.D.TMulVec(x) // input transform, length α
	for i := range gw {
		gw[i] *= dx[i] // element-wise multiplication
	}
	return t.A.TMulVec(gw) // output transform, length n
}

// Conv1D32 computes the F(n,r) correlation in float32 arithmetic, matching
// the paper's FP32 CUDA-core kernels (transforms, EWM and accumulation all
// rounded to float32 per operation).
func (t *Transform) Conv1D32(x, w []float32) []float32 {
	if len(x) != t.Alpha || len(w) != t.R {
		panic("winograd: Conv1D32 operand size mismatch")
	}
	gw := t.G.MulVec32(w)
	dx := t.D.TMulVec32(x)
	for i := range gw {
		gw[i] *= dx[i]
	}
	return t.A.TMulVec32(gw)
}

// Direct1D is the direct (non-Winograd) correlation reference used for
// validation: y[i] = Σ_k x[i+k]·w[k].
func Direct1D(x, w []float64, n int) []float64 {
	r := len(w)
	if len(x) < n+r-1 {
		panic("winograd: Direct1D input too short")
	}
	y := make([]float64, n)
	for i := 0; i < n; i++ {
		var s float64
		for k := 0; k < r; k++ {
			s += x[i+k] * w[k]
		}
		y[i] = s
	}
	return y
}

// Direct1D32 is the float32 direct correlation reference.
func Direct1D32(x, w []float32, n int) []float32 {
	r := len(w)
	if len(x) < n+r-1 {
		panic("winograd: Direct1D32 input too short")
	}
	y := make([]float32, n)
	for i := 0; i < n; i++ {
		var s float32
		for k := 0; k < r; k++ {
			s += x[i+k] * w[k]
		}
		y[i] = s
	}
	return y
}

// Conv2D computes the nested 2-D Winograd correlation
// F(n0×n1, r0×r1) in float64 per the paper's eq. (2):
//
//	Y = A0ᵀ[(G0·W·G1ᵀ) ⊙ (D0ᵀ·X·D1)]·A1
//
// x is an α0×α1 row-major tile, w an r0×r1 row-major tile; the result is
// n0×n1 row-major. It is used by the non-fused 2-D Winograd baseline.
func Conv2D(t0, t1 *Transform, x, w []float64) []float64 {
	a0, a1 := t0.Alpha, t1.Alpha
	if len(x) != a0*a1 || len(w) != t0.R*t1.R {
		panic("winograd: Conv2D operand size mismatch")
	}
	// Filter transform: G0·W·G1ᵀ (α0×α1).
	gw := matSandwich(t0.G, w, t0.R, t1.R, t1.G)
	// Input transform: D0ᵀ·X·D1 = (D0ᵀ X) then ·D1; using the same helper
	// with transposed application.
	dx := matSandwichT(t0.D, x, a0, a1, t1.D)
	for i := range gw {
		gw[i] *= dx[i]
	}
	// Output transform: A0ᵀ·Ŷ·A1 (n0×n1).
	return matSandwichT(t0.A, gw, a0, a1, t1.A)
}

// matSandwich computes L·M·Rᵀ where M is rows×cols row-major, L is
// (l.Rows×rows) and R is (r.Rows×cols); the result is l.Rows×r.Rows.
func matSandwich(l *Mat, m []float64, rows, cols int, r *Mat) []float64 {
	if l.Cols != rows || r.Cols != cols {
		panic("winograd: matSandwich dimension mismatch")
	}
	// tmp = L·M (l.Rows×cols)
	tmp := make([]float64, l.Rows*cols)
	for i := 0; i < l.Rows; i++ {
		for k := 0; k < rows; k++ {
			lv := l.At(i, k)
			if lv == 0 {
				continue
			}
			for j := 0; j < cols; j++ {
				tmp[i*cols+j] += lv * m[k*cols+j]
			}
		}
	}
	// out = tmp·Rᵀ (l.Rows×r.Rows)
	out := make([]float64, l.Rows*r.Rows)
	for i := 0; i < l.Rows; i++ {
		for j := 0; j < r.Rows; j++ {
			var s float64
			for k := 0; k < cols; k++ {
				s += tmp[i*cols+k] * r.At(j, k)
			}
			out[i*r.Rows+j] = s
		}
	}
	return out
}

// matSandwichT computes Lᵀ·M·R where M is rows×cols row-major, L is
// (rows×l.Cols) and R is (cols×r.Cols); the result is l.Cols×r.Cols.
func matSandwichT(l *Mat, m []float64, rows, cols int, r *Mat) []float64 {
	if l.Rows != rows || r.Rows != cols {
		panic("winograd: matSandwichT dimension mismatch")
	}
	// tmp = Lᵀ·M (l.Cols×cols)
	tmp := make([]float64, l.Cols*cols)
	for k := 0; k < rows; k++ {
		for i := 0; i < l.Cols; i++ {
			lv := l.At(k, i)
			if lv == 0 {
				continue
			}
			for j := 0; j < cols; j++ {
				tmp[i*cols+j] += lv * m[k*cols+j]
			}
		}
	}
	// out = tmp·R (l.Cols×r.Cols)
	out := make([]float64, l.Cols*r.Cols)
	for i := 0; i < l.Cols; i++ {
		for j := 0; j < r.Cols; j++ {
			var s float64
			for k := 0; k < cols; k++ {
				s += tmp[i*cols+k] * r.At(k, j)
			}
			out[i*r.Cols+j] = s
		}
	}
	return out
}

// Conv1DHalf computes the F(n,r) correlation with the paper's FP16
// Tensor-Core semantics (§5.2 "Accuracy Optimization"):
//
//   - FT and IT are computed in FP32 ("mixed-precision transforms") and
//     then rounded to binary16,
//   - the EWM multiplies binary16 operands and accumulates in FP32
//     (Tensor-Core MMA contract),
//   - the OT runs in FP32 on the accumulators.
//
// When s is non-nil its scaling matrices are used (eq. 7), which keeps the
// Ω16 transforms inside the binary16 dynamic range.
func (t *Transform) Conv1DHalf(x, w []fp16.Bits, s *ScaledTransform) []float32 {
	if len(x) != t.Alpha || len(w) != t.R {
		panic("winograd: Conv1DHalf operand size mismatch")
	}
	gMat, dMat, aMat := t.G, t.D, t.A
	if s != nil {
		gMat, dMat, aMat = s.G, s.D, s.A
	}
	// FP32 transforms on widened inputs, rounded once to binary16 via the
	// fused bulk rounder (bit-identical to an encode/decode pair).
	xf := fp16.SliceToFloat32(x)
	wf := fp16.SliceToFloat32(w)
	gw := gMat.MulVec32(wf)
	dx := dMat.TMulVec32(xf)
	fp16.RoundSlice(gw)
	fp16.RoundSlice(dx)
	// EWM with FP32 accumulation surrogate: products of binary16 values
	// kept in float32 (no binary16 rounding of the products — Tensor
	// Cores form exact FP16×FP16 products into FP32 accumulators).
	acc := make([]float32, t.Alpha)
	for i := range acc {
		acc[i] = gw[i] * dx[i]
	}
	// FP32 output transform on the accumulators.
	return aMat.TMulVec32(acc)
}
