package winograd

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"winrs/internal/fp16"
)

func maxAbsErr(a, b []float64) float64 {
	var m float64
	for i := range a {
		if d := math.Abs(a[i] - b[i]); d > m {
			m = d
		}
	}
	return m
}

// Float64 application must match direct correlation to near machine
// precision for every registry kernel.
func TestConv1DMatchesDirect(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for _, k := range Kernels {
		tr := Generate(k.N, k.R)
		for trial := 0; trial < 5; trial++ {
			x := make([]float64, tr.Alpha)
			w := make([]float64, tr.R)
			for i := range x {
				x[i] = rng.Float64()*2 - 1
			}
			for i := range w {
				w[i] = rng.Float64()*2 - 1
			}
			got := tr.Conv1D(x, w)
			want := Direct1D(x, w, tr.N)
			// Larger α has worse conditioning; scale tolerance with the
			// transform magnitude.
			tol := 1e-12 * math.Max(1, tr.D.MaxAbs())
			if err := maxAbsErr(got, want); err > tol {
				t.Errorf("%v trial %d: max err %v > %v", k, trial, err, tol)
			}
		}
	}
}

// Property-based: random shapes and inputs, float64 path.
func TestConv1DQuick(t *testing.T) {
	tr := Generate(3, 6)
	f := func(xa [8]float64, wa [6]float64) bool {
		x, w := xa[:], wa[:]
		for i := range x {
			x[i] = math.Mod(x[i], 4)
			if math.IsNaN(x[i]) {
				x[i] = 0
			}
		}
		for i := range w {
			w[i] = math.Mod(w[i], 4)
			if math.IsNaN(w[i]) {
				w[i] = 0
			}
		}
		got := tr.Conv1D(x, w)
		want := Direct1D(x, w, 3)
		return maxAbsErr(got, want) < 1e-10
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Float32 path: relative accuracy around 1e-6 for the small-α kernels
// (paper Table 4 reports ~1e-7 MARE for Ω4/Ω8 and ~1e-5 for Ω16).
func TestConv1D32Accuracy(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for _, k := range Kernels {
		tr := Generate(k.N, k.R)
		tol := 1e-5
		if k.Alpha == 16 {
			tol = 1e-3
		}
		for trial := 0; trial < 5; trial++ {
			x64 := make([]float64, tr.Alpha)
			w64 := make([]float64, tr.R)
			x32 := make([]float32, tr.Alpha)
			w32 := make([]float32, tr.R)
			for i := range x64 {
				x64[i] = rng.Float64()
				x32[i] = float32(x64[i])
			}
			for i := range w64 {
				w64[i] = rng.Float64()
				w32[i] = float32(w64[i])
			}
			got := tr.Conv1D32(x32, w32)
			want := Direct1D(x64, w64, tr.N)
			for i := range got {
				rel := math.Abs(float64(got[i])-want[i]) / math.Max(1e-9, math.Abs(want[i]))
				if rel > tol {
					t.Errorf("%v trial %d out %d: rel err %v > %v", k, trial, i, rel, tol)
				}
			}
		}
	}
}

func TestConv2DMatchesDirect(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	t0 := Generate(2, 3)
	t1 := Generate(2, 3)
	a0, a1 := t0.Alpha, t1.Alpha
	x := make([]float64, a0*a1)
	w := make([]float64, 9)
	for i := range x {
		x[i] = rng.Float64()*2 - 1
	}
	for i := range w {
		w[i] = rng.Float64()*2 - 1
	}
	got := Conv2D(t0, t1, x, w)
	// Direct 2-D valid correlation.
	for i := 0; i < 2; i++ {
		for j := 0; j < 2; j++ {
			var s float64
			for u := 0; u < 3; u++ {
				for v := 0; v < 3; v++ {
					s += x[(i+u)*a1+(j+v)] * w[u*3+v]
				}
			}
			if math.Abs(got[i*2+j]-s) > 1e-12 {
				t.Errorf("Conv2D[%d,%d] = %v, want %v", i, j, got[i*2+j], s)
			}
		}
	}
}

func TestConv2DAsymmetric(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	t0 := Generate(2, 3) // rows
	t1 := Generate(3, 2) // cols
	x := make([]float64, t0.Alpha*t1.Alpha)
	w := make([]float64, t0.R*t1.R)
	for i := range x {
		x[i] = rng.Float64()
	}
	for i := range w {
		w[i] = rng.Float64()
	}
	got := Conv2D(t0, t1, x, w)
	for i := 0; i < t0.N; i++ {
		for j := 0; j < t1.N; j++ {
			var s float64
			for u := 0; u < t0.R; u++ {
				for v := 0; v < t1.R; v++ {
					s += x[(i+u)*t1.Alpha+(j+v)] * w[u*t1.R+v]
				}
			}
			if math.Abs(got[i*t1.N+j]-s) > 1e-12 {
				t.Errorf("[%d,%d] = %v, want %v", i, j, got[i*t1.N+j], s)
			}
		}
	}
}

// FP16 path with scaling matrices: all six ported kernels must stay finite,
// and their mean relative error on unit-scale inputs must sit in the
// paper's Table 4 band (~1e-3 for Ω8, up to ~1e-2 and worse per single tile
// for Ω16 — single tiles lack the FP32-accumulation averaging of full BFC,
// so the per-tile bound is looser than the system-level MARE).
func TestConv1DHalfAccuracy(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for _, k := range Kernels {
		if !k.FP16 {
			continue
		}
		tr := Generate(k.N, k.R)
		var sc *ScaledTransform
		if k.Alpha >= 16 {
			sc = tr.Scaled()
		}
		meanTol := 1e-2
		if k.Alpha == 16 {
			meanTol = 8e-2
		}
		var errSum float64
		samples := 0
		for trial := 0; trial < 20; trial++ {
			x64 := make([]float64, tr.Alpha)
			w64 := make([]float64, tr.R)
			x16 := make([]fp16.Bits, tr.Alpha)
			w16 := make([]fp16.Bits, tr.R)
			for i := range x64 {
				x64[i] = rng.Float64()
				x16[i] = fp16.FromFloat64(x64[i])
				x64[i] = fp16.ToFloat64(x16[i]) // quantized ground truth input
			}
			for i := range w64 {
				w64[i] = rng.Float64() * 0.01 // paper scales ∇Y by 1e-2
				w16[i] = fp16.FromFloat64(w64[i])
				w64[i] = fp16.ToFloat64(w16[i])
			}
			got := tr.Conv1DHalf(x16, w16, sc)
			want := Direct1D(x64, w64, tr.N)
			for i := range got {
				if math.IsNaN(float64(got[i])) || math.IsInf(float64(got[i]), 0) {
					t.Fatalf("%v: non-finite output %v", k, got[i])
				}
				errSum += math.Abs(float64(got[i])-want[i]) / math.Max(1e-6, math.Abs(want[i]))
				samples++
			}
		}
		if mean := errSum / float64(samples); mean > meanTol {
			t.Errorf("%v: mean rel err %v > %v", k, mean, meanTol)
		}
	}
}

// The Ω16 FP16 kernels without scaling matrices must be measurably worse
// than with them — the ablation motivating eq. (7).
func TestScalingMatricesAblation(t *testing.T) {
	rng := rand.New(rand.NewSource(29))
	tr := Generate(9, 8)
	sc := tr.Scaled()
	var errScaled, errRaw float64
	n := 0
	for trial := 0; trial < 50; trial++ {
		x64 := make([]float64, tr.Alpha)
		w64 := make([]float64, tr.R)
		x16 := make([]fp16.Bits, tr.Alpha)
		w16 := make([]fp16.Bits, tr.R)
		for i := range x64 {
			x64[i] = rng.Float64()
			x16[i] = fp16.FromFloat64(x64[i])
			x64[i] = fp16.ToFloat64(x16[i])
		}
		for i := range w64 {
			w64[i] = rng.Float64() * 0.01
			w16[i] = fp16.FromFloat64(w64[i])
			w64[i] = fp16.ToFloat64(w16[i])
		}
		want := Direct1D(x64, w64, tr.N)
		gs := tr.Conv1DHalf(x16, w16, sc)
		gr := tr.Conv1DHalf(x16, w16, nil)
		for i := range want {
			d := math.Max(1e-6, math.Abs(want[i]))
			errScaled += math.Abs(float64(gs[i])-want[i]) / d
			errRaw += math.Abs(float64(gr[i])-want[i]) / d
			n++
		}
	}
	if errScaled >= errRaw {
		t.Errorf("scaling matrices did not help: scaled %v vs raw %v",
			errScaled/float64(n), errRaw/float64(n))
	}
}

// The scaling matrices must leave the algebra unchanged: in float64 the
// scaled transform reproduces the unscaled result exactly (up to rounding).
func TestScaledTransformPreservesResult(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for _, k := range Kernels {
		tr := Generate(k.N, k.R)
		sc := tr.Scaled()
		x := make([]float64, tr.Alpha)
		w := make([]float64, tr.R)
		for i := range x {
			x[i] = rng.Float64()*2 - 1
		}
		for i := range w {
			w[i] = rng.Float64()*2 - 1
		}
		gw := sc.G.MulVec(w)
		dx := sc.D.TMulVec(x)
		for i := range gw {
			gw[i] *= dx[i]
		}
		got := sc.A.TMulVec(gw)
		want := tr.Conv1D(x, w)
		tol := 1e-9 * math.Max(1, sc.A.MaxAbs())
		if err := maxAbsErr(got, want); err > tol {
			t.Errorf("%v: scaled result differs by %v (tol %v)", k, err, tol)
		}
	}
}

// After scaling, every row of G and every column of D must have unit L1
// norm (the eq. 7 normalization), so transformed binary16 values cannot
// exceed the input magnitude times α.
func TestScaledTransformUnitNorms(t *testing.T) {
	tr := Generate(9, 8) // Ω16(9,8), the worst dynamic range
	sc := tr.Scaled()
	for i, n := range sc.G.RowL1Norms() {
		if math.Abs(n-1) > 1e-12 {
			t.Errorf("G row %d L1 norm %v, want 1", i, n)
		}
	}
	for j := 0; j < sc.D.Cols; j++ {
		var n float64
		for i := 0; i < sc.D.Rows; i++ {
			n += math.Abs(sc.D.At(i, j))
		}
		if math.Abs(n-1) > 1e-12 {
			t.Errorf("D column %d L1 norm %v, want 1", j, n)
		}
	}
	// Unscaled Ω16 transforms overflow binary16's max normal (65504) or
	// underflow its precision; the paper motivates scaling by the 1e-8 to
	// 1e5 magnitude span.
	unscaledSpan := tr.D.MaxAbs() / tr.D.MinAbsNonZero()
	scaledSpan := sc.D.MaxAbs() / sc.D.MinAbsNonZero()
	if scaledSpan >= unscaledSpan {
		t.Errorf("scaling did not reduce dynamic range: %v -> %v", unscaledSpan, scaledSpan)
	}
}

func TestScaledCaching(t *testing.T) {
	a := Generate(3, 2).Scaled()
	b := Generate(3, 2).Scaled()
	if a != b {
		t.Error("Scaled should return the cached instance")
	}
}

func TestDirect1DShortInputPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	Direct1D([]float64{1, 2}, []float64{1, 1, 1}, 2)
}

func TestOperandSizeMismatchPanics(t *testing.T) {
	tr := Generate(2, 3)
	for _, f := range []func(){
		func() { tr.Conv1D(make([]float64, 3), make([]float64, 3)) },
		func() { tr.Conv1D32(make([]float32, 4), make([]float32, 2)) },
		func() { tr.Conv1DHalf(make([]fp16.Bits, 4), make([]fp16.Bits, 2), nil) },
		func() { Conv2D(tr, tr, make([]float64, 15), make([]float64, 9)) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic on size mismatch")
				}
			}()
			f()
		}()
	}
}

func BenchmarkConv1D32_F36(b *testing.B) {
	tr := Generate(3, 6)
	x := make([]float32, tr.Alpha)
	w := make([]float32, tr.R)
	for i := range x {
		x[i] = float32(i) * 0.1
	}
	for i := range w {
		w[i] = float32(i) * 0.2
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = tr.Conv1D32(x, w)
	}
}
