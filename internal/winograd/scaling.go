package winograd

import (
	"math"
	"sync"
)

// ScaledTransform is the paper's eq. (7) reparameterization
//
//	Y = (A_s·A)ᵀ[((G_s·G)·W) ⊙ ((D_s·D)ᵀ·X)]
//
// where G_s and D_s are diagonal matrices normalizing each row of G and
// each row of Dᵀ (i.e. each column of D) to unit L1 norm, and A_s rescales
// the accumulators to correct values in the output transform. Because the
// EWM result index i picks up the factor g_i·d_i, correctness requires the
// i-th row of A to be scaled by 1/(g_i·d_i); A_s has the wider FP32 dynamic
// range, so the huge compensation factors of the Ω16 transforms never touch
// binary16 storage.
//
// The struct stores the already-multiplied matrices G = G_s·G, D with
// scaled columns, and A = A_s·A, plus the diagonal scale vectors for
// inspection and tests.
type ScaledTransform struct {
	Base    *Transform
	A, G, D *Mat
	// GScale[i] and DScale[i] are the diagonal entries of G_s and D_s
	// (the reciprocal L1 norms); AScale[i] = 1/(GScale[i]·DScale[i]).
	GScale, DScale, AScale []float64
}

var (
	scaledCacheMu sync.Mutex
	scaledCache   = map[[2]int]*ScaledTransform{}

	balancedCacheMu sync.Mutex
	balancedCache   = map[[2]int]*Transform{}
)

// Balanced returns a numerically re-balanced copy of the transform: for
// every EWM index i the scale freedom (G row i × sᵢ, D column i × tᵢ,
// A row i ÷ sᵢtᵢ leaves the result invariant) is used to equalize the L1
// norms of the three rows at (gᵢ·dᵢ·aᵢ)^(1/3). For the large-α transforms,
// whose raw construction concentrates Vandermonde powers in G and Lagrange
// denominators in D, balancing removes catastrophic cancellation in FP32:
// Ω16 kernels improve from ~1e-3 to the paper's ~1e-5 MARE band. The
// result is cached and read-only.
func (t *Transform) Balanced() *Transform {
	key := [2]int{t.N, t.R}
	balancedCacheMu.Lock()
	defer balancedCacheMu.Unlock()
	if b, ok := balancedCache[key]; ok {
		return b
	}
	b := &Transform{
		N: t.N, R: t.R, Alpha: t.Alpha,
		A: t.A.Clone(), G: t.G.Clone(), D: t.D.Clone(),
	}
	gNorms := t.G.RowL1Norms()
	aNorms := t.A.RowL1Norms()
	for i := 0; i < t.Alpha; i++ {
		var dNorm float64
		for r := 0; r < t.Alpha; r++ {
			v := t.D.At(r, i)
			if v < 0 {
				v = -v
			}
			dNorm += v
		}
		g, d, a := gNorms[i], dNorm, aNorms[i]
		if g == 0 || d == 0 || a == 0 {
			continue
		}
		target := math.Cbrt(g * d * a)
		s, u := target/g, target/d
		for j := 0; j < b.G.Cols; j++ {
			b.G.Set(i, j, b.G.At(i, j)*s)
		}
		for r := 0; r < t.Alpha; r++ {
			b.D.Set(r, i, b.D.At(r, i)*u)
		}
		inv := 1 / (s * u)
		for j := 0; j < b.A.Cols; j++ {
			b.A.Set(i, j, b.A.At(i, j)*inv)
		}
	}
	balancedCache[key] = b
	return b
}

// Scaled returns the scaling-matrix variant of the transform, cached and
// read-only like Generate results.
func (t *Transform) Scaled() *ScaledTransform {
	key := [2]int{t.N, t.R}
	scaledCacheMu.Lock()
	defer scaledCacheMu.Unlock()
	if s, ok := scaledCache[key]; ok {
		return s
	}

	s := &ScaledTransform{
		Base:   t,
		G:      t.G.Clone(),
		D:      t.D.Clone(),
		A:      t.A.Clone(),
		GScale: make([]float64, t.Alpha),
		DScale: make([]float64, t.Alpha),
		AScale: make([]float64, t.Alpha),
	}
	gNorms := t.G.RowL1Norms()
	// Rows of Dᵀ are columns of D: compute per-column L1 norms.
	dNorms := make([]float64, t.Alpha)
	for j := 0; j < t.Alpha; j++ {
		var n float64
		for i := 0; i < t.Alpha; i++ {
			v := t.D.At(i, j)
			if v < 0 {
				v = -v
			}
			n += v
		}
		dNorms[j] = n
	}
	for i := 0; i < t.Alpha; i++ {
		gs, ds := 1.0, 1.0
		if gNorms[i] != 0 {
			gs = 1 / gNorms[i]
		}
		if dNorms[i] != 0 {
			ds = 1 / dNorms[i]
		}
		s.GScale[i], s.DScale[i] = gs, ds
		s.AScale[i] = 1 / (gs * ds)
	}
	s.G.ScaleRows(s.GScale)
	for j := 0; j < t.Alpha; j++ { // scale column j of D by DScale[j]
		for i := 0; i < t.Alpha; i++ {
			s.D.Set(i, j, s.D.At(i, j)*s.DScale[j])
		}
	}
	s.A.ScaleRows(s.AScale)
	scaledCache[key] = s
	return s
}
