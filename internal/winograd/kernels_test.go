package winograd

import "testing"

func TestRegistryHas13Kernels(t *testing.T) {
	if len(Kernels) != 13 {
		t.Fatalf("registry has %d kernels, want 13 (Figure 6)", len(Kernels))
	}
	fp16Count := 0
	for _, k := range Kernels {
		if k.Alpha != k.N+k.R-1 {
			t.Errorf("%v: alpha %d != n+r-1", k, k.Alpha)
		}
		switch k.Alpha {
		case 2, 4, 8, 16:
		default:
			t.Errorf("%v: alpha %d outside {2,4,8,16}", k, k.Alpha)
		}
		if k.FP16 {
			fp16Count++
		}
		if k.BN32 <= 0 || k.BM32 <= 0 || k.BN16 <= 0 || k.BM16 <= 0 {
			t.Errorf("%v: missing cache-block sizes", k)
		}
		if k.Coeff <= 0 {
			t.Errorf("%v: non-positive throughput coefficient", k)
		}
	}
	if fp16Count != 6 {
		t.Errorf("%d FP16 kernels, want 6", fp16Count)
	}
}

func TestFP16PortedSet(t *testing.T) {
	want := map[string]bool{
		"Omega4(3,2)": true, "Omega8(3,6)": true, "Omega8(5,4)": true,
		"Omega8(7,2)": true, "Omega16(7,10)": true, "Omega16(9,8)": true,
	}
	for _, k := range Kernels {
		if k.FP16 != want[k.String()] {
			t.Errorf("%v: FP16 = %v, want %v", k, k.FP16, want[k.String()])
		}
	}
}

func TestSupportedNCoversPaperRange(t *testing.T) {
	ns := SupportedN()
	have := map[int]bool{}
	for _, n := range ns {
		have[n] = true
	}
	// The paper supports F_W as a multiple of 2..9.
	for n := 2; n <= 9; n++ {
		if !have[n] {
			t.Errorf("no kernel with n = %d; paper requires multiples of 2..9", n)
		}
	}
	if !have[1] {
		t.Error("missing n = 1 direct fallback")
	}
}

func TestLookup(t *testing.T) {
	k, ok := Lookup(3, 6)
	if !ok || k.Alpha != 8 {
		t.Errorf("Lookup(3,6) = %v, %v", k, ok)
	}
	if _, ok := Lookup(9, 9); ok {
		t.Error("Lookup(9,9) should not exist")
	}
}

func TestKernelsForNSortedByCoeff(t *testing.T) {
	ks := KernelsForN(3)
	if len(ks) < 2 {
		t.Fatalf("expected multiple kernels with n=3, got %d", len(ks))
	}
	for i := 1; i < len(ks); i++ {
		if ks[i-1].Coeff < ks[i].Coeff {
			t.Errorf("KernelsForN not sorted: %v before %v", ks[i-1], ks[i])
		}
	}
	// Ω8(3,6) reduces complexity 2.25× and should outrank Ω4(3,2) (1.5×).
	if ks[0].String() != "Omega8(3,6)" {
		t.Errorf("fastest n=3 kernel = %v, want Omega8(3,6)", ks[0])
	}
}

func TestSupportsWidth(t *testing.T) {
	cases := []struct {
		fw    int
		ok    bool
		bestN int
	}{
		{3, true, 3}, {4, true, 4}, {9, true, 9}, {12, true, 6},
		{14, true, 7}, {63, true, 9}, {11, true, 1}, {1, true, 1},
		{0, false, 0},
	}
	for _, c := range cases {
		ok, n := SupportsWidth(c.fw)
		if ok != c.ok || n != c.bestN {
			t.Errorf("SupportsWidth(%d) = (%v,%d), want (%v,%d)", c.fw, ok, n, c.ok, c.bestN)
		}
	}
}

func TestCacheBlockAndIntensity(t *testing.T) {
	k, _ := Lookup(3, 6)
	bn, bm := k.CacheBlock(false)
	if bn != 64 || bm != 32 {
		t.Errorf("FP32 cache block = %dx%d, want 64x32", bn, bm)
	}
	bn, bm = k.CacheBlock(true)
	if bn != 128 || bm != 64 {
		t.Errorf("FP16 cache block = %dx%d, want 128x64", bn, bm)
	}
	// FP16 blocks are larger, so intensity must not drop.
	if k.Intensity(true) < k.Intensity(false) {
		t.Errorf("FP16 intensity %v < FP32 %v", k.Intensity(true), k.Intensity(false))
	}
}

func TestAccelRange(t *testing.T) {
	// Paper: WinRS reduces time complexity by 1.5× to 4.5×.
	minA, maxA := 100.0, 0.0
	for _, k := range Kernels {
		a := k.Accel()
		if k.Alpha == 2 {
			continue // direct fallback, accel 1
		}
		if a < minA {
			minA = a
		}
		if a > maxA {
			maxA = a
		}
	}
	if minA < 1.5 || maxA > 4.6 {
		t.Errorf("acceleration range [%v,%v] outside the paper's 1.5x..4.5x", minA, maxA)
	}
}

// Footnote 3 validation: every kernel's double-buffered SMEM footprint must
// fit a 100 KB shared-memory partition (the Ada/Ampere per-SM budget), in
// both precisions — the constraint that dictates the cache-block table.
func TestCacheBlocksFitSharedMemory(t *testing.T) {
	const smemBudget = 100 << 10
	for _, k := range Kernels {
		for _, fp16 := range []bool{false, true} {
			if got := k.SMEMBytes(fp16); got > smemBudget {
				t.Errorf("%v fp16=%v: SMEM %d bytes exceeds %d", k, fp16, got, smemBudget)
			}
		}
	}
	// And the constraint is tight somewhere: the largest FP32 footprint
	// should use more than half the budget, otherwise the paper's blocks
	// would be needlessly small.
	maxB := 0
	for _, k := range Kernels {
		if b := k.SMEMBytes(false); b > maxB {
			maxB = b
		}
	}
	if maxB < smemBudget/2 {
		t.Errorf("largest FP32 SMEM footprint %d suspiciously small", maxB)
	}
}

// The cache-block table must be precision-aware: binary16 operands occupy
// half the bytes, so every kernel's FP16 block must cover at least its
// FP32 block's area (more reuse from the same shared-memory budget) while
// its SMEM footprint stays within the FP32 one. A kernel that returns its
// FP32 block unchanged for FP16 wastes half the budget; one that shrinks
// area regresses intensity. Pinned for the registry and the direct
// fallback, per the CacheBlock doc comment.
func TestCacheBlockPrecisionAware(t *testing.T) {
	ks := append([]Kernel{DirectKernel(3), DirectKernel(11)}, Kernels...)
	for _, k := range ks {
		bn32, bm32 := k.CacheBlock(false)
		bn16, bm16 := k.CacheBlock(true)
		if bn16*bm16 < bn32*bm32 {
			t.Errorf("%v: FP16 block %dx%d covers less area than FP32 %dx%d",
				k, bn16, bm16, bn32, bm32)
		}
		if f16, f32 := k.SMEMBytes(true), k.SMEMBytes(false); f16 > f32 {
			t.Errorf("%v: FP16 SMEM footprint %d exceeds FP32 footprint %d",
				k, f16, f32)
		}
	}
}
