// Package winograd generates and applies Winograd minimal-filtering
// transforms.
//
// WinRS builds on 1-D Winograd convolution F(n,r): n outputs of an r-tap
// correlation over an α = n+r-1 input tile, computed with only α
// multiplications as
//
//	Y = Aᵀ[(G·W) ⊙ (Dᵀ·X)]
//
// where A ∈ R^{α×n}, G ∈ R^{α×r} and D ∈ R^{α×α} are the transform
// matrices (the paper's eq. 1; D is often called B in the literature). This
// package constructs those matrices for arbitrary (n, r) using the
// Cook–Toom method over exact rational arithmetic, exposes the 13 WinRS
// kernel variants of the paper's Figure 6, and applies the transforms in
// float64, float32 and emulated FP16 with the paper's scaling matrices.
package winograd

import (
	"fmt"
	"math"
)

// Mat is a small dense row-major float64 matrix, sized for transform
// matrices (at most 16×16); it is not a general linear-algebra type.
type Mat struct {
	Rows, Cols int
	Data       []float64
}

// NewMat allocates a zeroed rows×cols matrix.
func NewMat(rows, cols int) *Mat {
	if rows <= 0 || cols <= 0 {
		panic(fmt.Sprintf("winograd: invalid matrix size %dx%d", rows, cols))
	}
	return &Mat{Rows: rows, Cols: cols, Data: make([]float64, rows*cols)}
}

// At returns element (i,j).
func (m *Mat) At(i, j int) float64 { return m.Data[i*m.Cols+j] }

// Set stores v at (i,j).
func (m *Mat) Set(i, j int, v float64) { m.Data[i*m.Cols+j] = v }

// Clone returns a deep copy.
func (m *Mat) Clone() *Mat {
	c := NewMat(m.Rows, m.Cols)
	copy(c.Data, m.Data)
	return c
}

// T returns the transpose as a new matrix.
func (m *Mat) T() *Mat {
	t := NewMat(m.Cols, m.Rows)
	for i := 0; i < m.Rows; i++ {
		for j := 0; j < m.Cols; j++ {
			t.Set(j, i, m.At(i, j))
		}
	}
	return t
}

// MulVec computes m·x for a vector x of length m.Cols.
func (m *Mat) MulVec(x []float64) []float64 {
	if len(x) != m.Cols {
		panic("winograd: MulVec dimension mismatch")
	}
	y := make([]float64, m.Rows)
	for i := 0; i < m.Rows; i++ {
		var s float64
		row := m.Data[i*m.Cols : (i+1)*m.Cols]
		for j, v := range row {
			s += v * x[j]
		}
		y[i] = s
	}
	return y
}

// TMulVec computes mᵀ·x for a vector x of length m.Rows, without
// materializing the transpose.
func (m *Mat) TMulVec(x []float64) []float64 {
	if len(x) != m.Rows {
		panic("winograd: TMulVec dimension mismatch")
	}
	y := make([]float64, m.Cols)
	for i := 0; i < m.Rows; i++ {
		xi := x[i]
		if xi == 0 {
			continue
		}
		row := m.Data[i*m.Cols : (i+1)*m.Cols]
		for j, v := range row {
			y[j] += v * xi
		}
	}
	return y
}

// MulVec32 computes m·x in float32 arithmetic (each product and each
// partial sum rounded to float32), modelling an FP32 CUDA-core transform.
func (m *Mat) MulVec32(x []float32) []float32 {
	if len(x) != m.Cols {
		panic("winograd: MulVec32 dimension mismatch")
	}
	y := make([]float32, m.Rows)
	for i := 0; i < m.Rows; i++ {
		var s float32
		row := m.Data[i*m.Cols : (i+1)*m.Cols]
		for j, v := range row {
			s += float32(v) * x[j]
		}
		y[i] = s
	}
	return y
}

// TMulVec32 computes mᵀ·x in float32 arithmetic.
func (m *Mat) TMulVec32(x []float32) []float32 {
	if len(x) != m.Rows {
		panic("winograd: TMulVec32 dimension mismatch")
	}
	y := make([]float32, m.Cols)
	for i := 0; i < m.Rows; i++ {
		xi := x[i]
		if xi == 0 {
			continue
		}
		row := m.Data[i*m.Cols : (i+1)*m.Cols]
		for j, v := range row {
			y[j] += float32(v) * xi
		}
	}
	return y
}

// RowL1Norms returns the L1 norm of every row.
func (m *Mat) RowL1Norms() []float64 {
	norms := make([]float64, m.Rows)
	for i := 0; i < m.Rows; i++ {
		var s float64
		for j := 0; j < m.Cols; j++ {
			s += math.Abs(m.At(i, j))
		}
		norms[i] = s
	}
	return norms
}

// ScaleRows multiplies row i by s[i] in place.
func (m *Mat) ScaleRows(s []float64) {
	if len(s) != m.Rows {
		panic("winograd: ScaleRows dimension mismatch")
	}
	for i := 0; i < m.Rows; i++ {
		for j := 0; j < m.Cols; j++ {
			m.Set(i, j, m.At(i, j)*s[i])
		}
	}
}

// MaxAbs returns the largest absolute element.
func (m *Mat) MaxAbs() float64 {
	var mx float64
	for _, v := range m.Data {
		if a := math.Abs(v); a > mx {
			mx = a
		}
	}
	return mx
}

// MinAbsNonZero returns the smallest non-zero absolute element, or 0 when
// the matrix is entirely zero.
func (m *Mat) MinAbsNonZero() float64 {
	mn := math.Inf(1)
	for _, v := range m.Data {
		if v == 0 {
			continue
		}
		if a := math.Abs(v); a < mn {
			mn = a
		}
	}
	if math.IsInf(mn, 1) {
		return 0
	}
	return mn
}
