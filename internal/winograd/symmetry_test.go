package winograd

import (
	"math"
	"math/rand"
	"testing"
)

// Every registry kernel's G matrix must pair its ±point rows, and the
// shared-product evaluation must agree with the plain one.
func TestSymPlanMatchesPlainMulVec(t *testing.T) {
	rng := rand.New(rand.NewSource(71))
	for _, k := range Kernels {
		tr := Generate(k.N, k.R)
		sp := NewSymPlan(tr.G)
		x := make([]float32, tr.G.Cols)
		for trial := 0; trial < 5; trial++ {
			for i := range x {
				x[i] = rng.Float32()*2 - 1
			}
			plain := tr.G.MulVec32(x)
			sym := sp.MulVec32(x)
			for i := range plain {
				// Different summation order: allow a few ULP.
				if math.Abs(float64(plain[i]-sym[i])) > 1e-4*math.Max(1, math.Abs(float64(plain[i]))) {
					t.Fatalf("%v row %d: plain %v vs sym %v", k, i, plain[i], sym[i])
				}
			}
		}
	}
}

// The paper: "this property enables the reuse of multiplication results,
// which nearly halves the required multiplications". With the ±-ordered
// points, all rows except the 0 row and the ∞ row pair up.
func TestSymPlanHalvesMultiplications(t *testing.T) {
	for _, k := range Kernels {
		if k.Alpha < 4 {
			continue // F(1,2)/F(2,3)-class transforms have too few rows
		}
		tr := Generate(k.N, k.R)
		sp := NewSymPlan(tr.G)
		wantPairs := MaxPairableRows(k.Alpha) / 2
		if sp.Pairs() < wantPairs {
			t.Errorf("%v: %d symmetric pairs, want >= %d", k, sp.Pairs(), wantPairs)
		}
		ratio := sp.SavingsRatio()
		// α=8: 3 pairs + 2 singles → 5/8 = 0.625; α=16: 7+2 → 9/16 = 0.5625.
		wantMax := (float64(k.Alpha)/2 + 1) / float64(k.Alpha)
		if ratio > wantMax+1e-9 {
			t.Errorf("%v: savings ratio %v, want <= %v", k, ratio, wantMax)
		}
	}
}

func TestSymPlanArbitraryMatrixFallsBack(t *testing.T) {
	m := NewMat(3, 2)
	m.Set(0, 0, 1)
	m.Set(1, 0, 2)
	m.Set(2, 1, 3)
	sp := NewSymPlan(m)
	if sp.Pairs() != 0 {
		t.Errorf("asymmetric matrix produced %d pairs", sp.Pairs())
	}
	got := sp.MulVec32([]float32{2, 5})
	want := m.MulVec32([]float32{2, 5})
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("fallback MulVec mismatch at %d", i)
		}
	}
}

func TestSymPlanDimensionPanics(t *testing.T) {
	sp := NewSymPlan(NewMat(2, 3))
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	sp.MulVec32(make([]float32, 2))
}

func TestSymGCaching(t *testing.T) {
	tr := Generate(3, 6)
	if tr.SymG() != tr.SymG() {
		t.Error("SymG should return the cached plan")
	}
}

func TestMaxPairableRows(t *testing.T) {
	cases := map[int]int{2: 0, 4: 2, 8: 6, 16: 14}
	for alpha, want := range cases {
		if got := MaxPairableRows(alpha); got != want {
			t.Errorf("MaxPairableRows(%d) = %d, want %d", alpha, got, want)
		}
	}
}

func BenchmarkTransformPlainVsSymmetric(b *testing.B) {
	tr := Generate(9, 8) // α = 16, the biggest win
	sp := NewSymPlan(tr.G)
	x := make([]float32, tr.G.Cols)
	for i := range x {
		x[i] = float32(i) * 0.25
	}
	b.Run("plain", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			_ = tr.G.MulVec32(x)
		}
	})
	b.Run("symmetric", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			_ = sp.MulVec32(x)
		}
	})
}

// MulPanel must agree with the plain panel multiply for both G and the
// transposed D of every registry kernel (including balanced variants, whose
// per-row scaling preserves the pair symmetry).
func TestMulPanelMatchesPlain(t *testing.T) {
	rng := rand.New(rand.NewSource(91))
	const width = 8
	plainMul := func(m *Mat, in []float32) []float32 {
		out := make([]float32, m.Rows*width)
		for i := 0; i < m.Rows; i++ {
			for c := 0; c < m.Cols; c++ {
				cv := float32(m.At(i, c))
				for x := 0; x < width; x++ {
					out[i*width+x] += cv * in[c*width+x]
				}
			}
		}
		return out
	}
	for _, k := range Kernels {
		for _, tr := range []*Transform{Generate(k.N, k.R), Generate(k.N, k.R).Balanced()} {
			gPlan, dtPlan := tr.PanelPlans()
			for _, tc := range []struct {
				plan *SymPlan
				m    *Mat
				rows int
			}{
				{gPlan, tr.G, tr.R},
				{dtPlan, tr.D.T(), tr.Alpha},
			} {
				in := make([]float32, tc.rows*width)
				for i := range in {
					in[i] = rng.Float32()*2 - 1
				}
				out := make([]float32, tc.m.Rows*width)
				tc.plan.MulPanel(in, out, tc.rows, width)
				want := plainMul(tc.m, in)
				for i := range want {
					d := float64(out[i] - want[i])
					if d > 1e-4 || d < -1e-4 {
						bound := 1e-4 * (1 + math.Abs(float64(want[i])))
						if math.Abs(d) > bound {
							t.Fatalf("%v: panel mismatch at %d: %v vs %v", k, i, out[i], want[i])
						}
					}
				}
			}
		}
	}
}

// The balanced transforms must keep their symmetric pairs (per-row scaling
// applies identical factors to ± pairs), so the hot path really does get
// the savings.
func TestBalancedKeepsPairs(t *testing.T) {
	for _, k := range Kernels {
		if k.Alpha < 8 {
			continue
		}
		g, dt := k.Transform().Balanced().PanelPlans()
		if g.Pairs() < 2 {
			t.Errorf("%v balanced G: only %d pairs", k, g.Pairs())
		}
		if dt.Pairs() < 2 {
			t.Errorf("%v balanced Dᵀ: only %d pairs", k, dt.Pairs())
		}
	}
}

func TestMulPanelDimensionPanics(t *testing.T) {
	sp := NewSymPlan(NewMat(2, 3))
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	sp.MulPanel(make([]float32, 8), make([]float32, 8), 2, 4)
}

// MulPanelEmit is the fusion seam of the kernel tier: the emission must
// visit every output row exactly once, each emitted row must already hold
// its final bits (so work folded into the callback sees exactly what a
// transform-then-consume pass would read), and the emitting run must leave
// the same output as MulPanel bit for bit.
func TestMulPanelEmitRowsFinalAndComplete(t *testing.T) {
	rng := rand.New(rand.NewSource(92))
	const width = 4
	for _, k := range Kernels {
		tr := Generate(k.N, k.R).Balanced()
		gPlan, dtPlan := tr.PanelPlans()
		for _, tc := range []struct {
			plan *SymPlan
			rows int
		}{
			{gPlan, tr.R},
			{dtPlan, tr.Alpha},
		} {
			in := make([]float32, tc.rows*width)
			for i := range in {
				in[i] = rng.Float32()*2 - 1
			}
			outRows := tc.plan.m.Rows
			want := make([]float32, outRows*width)
			tc.plan.MulPanel(in, want, tc.rows, width)

			got := make([]float32, len(want))
			seen := make([]int, outRows)
			check := func(r int) {
				seen[r]++
				for x := 0; x < width; x++ {
					if got[r*width+x] != want[r*width+x] {
						t.Fatalf("%v: row %d not final at emission: col %d %v vs %v",
							k, r, x, got[r*width+x], want[r*width+x])
					}
				}
			}
			tc.plan.MulPanelEmit(in, got, tc.rows, width, func(u, v int) {
				check(u)
				if v >= 0 {
					check(v)
				}
			})
			for r, n := range seen {
				if n != 1 {
					t.Errorf("%v: row %d emitted %d times, want exactly once", k, r, n)
				}
			}
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("%v: emitting run differs from MulPanel at %d", k, i)
				}
			}
		}
	}
}
