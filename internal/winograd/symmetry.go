package winograd

import (
	"math"
	"sync"
)

// SymPlan is the paper's §5.2 "Transform Simplification": with
// interpolation points ordered {0, 1, −1, 2, −2, …}, the rows of A, G and
// Dᵀ generated for a ±p point pair hold equal elements in even column
// positions and opposite elements in odd positions (Figure 8). For such a
// pair (u, v) the products u⊙x need computing only once:
//
//	yᵤ = Σ even + Σ odd,   y_v = Σ even − Σ odd
//
// which nearly halves the transform multiplications (the paper measures a
// ~6% kernel throughput gain). A SymPlan detects the pairs of a matrix
// once and applies the shared-product evaluation.
type SymPlan struct {
	m       *Mat
	pairs   [][2]int // row index pairs with even/odd ± symmetry
	singles []int    // rows without a partner
}

// NewSymPlan analyses the matrix rows and returns the shared-product
// evaluation plan. Detection is exact (float equality), so it works on the
// rationally-generated transforms but degrades gracefully to all-singles
// for arbitrary matrices.
func NewSymPlan(m *Mat) *SymPlan {
	sp := &SymPlan{m: m}
	used := make([]bool, m.Rows)
	for i := 0; i < m.Rows; i++ {
		if used[i] {
			continue
		}
		partner := -1
		for j := i + 1; j < m.Rows && partner < 0; j++ {
			if used[j] {
				continue
			}
			if rowsSymmetric(m, i, j) {
				partner = j
			}
		}
		if partner >= 0 {
			sp.pairs = append(sp.pairs, [2]int{i, partner})
			used[i], used[partner] = true, true
		} else {
			sp.singles = append(sp.singles, i)
			used[i] = true
		}
	}
	return sp
}

// rowsSymmetric reports whether rows i and j satisfy the Figure 8 pattern:
// equal at even columns, opposite at odd columns, with at least one
// non-zero element (all-zero pairs are pointless).
func rowsSymmetric(m *Mat, i, j int) bool {
	nonZero := false
	for c := 0; c < m.Cols; c++ {
		a, b := m.At(i, c), m.At(j, c)
		if c%2 == 0 {
			if a != b {
				return false
			}
		} else {
			if a != -b {
				return false
			}
		}
		if a != 0 {
			nonZero = true
		}
	}
	return nonZero
}

// Pairs returns how many row pairs share products.
func (sp *SymPlan) Pairs() int { return len(sp.pairs) }

// Mults returns the number of scalar multiplications one MulVec32
// evaluation performs (zero coefficients still count; the comparison
// target is the plain m.Rows·m.Cols).
func (sp *SymPlan) Mults() int {
	return (len(sp.pairs) + len(sp.singles)) * sp.m.Cols
}

// MulVec32 computes m·x with shared products across symmetric row pairs.
func (sp *SymPlan) MulVec32(x []float32) []float32 {
	m := sp.m
	if len(x) != m.Cols {
		panic("winograd: SymPlan.MulVec32 dimension mismatch")
	}
	y := make([]float32, m.Rows)
	for _, pr := range sp.pairs {
		u := pr[0]
		row := m.Data[u*m.Cols : (u+1)*m.Cols]
		var even, odd float32
		for c, v := range row {
			p := float32(v) * x[c]
			if c%2 == 0 {
				even += p
			} else {
				odd += p
			}
		}
		y[pr[0]] = even + odd
		y[pr[1]] = even - odd
	}
	for _, i := range sp.singles {
		row := m.Data[i*m.Cols : (i+1)*m.Cols]
		var s float32
		for c, v := range row {
			s += float32(v) * x[c]
		}
		y[i] = s
	}
	return y
}

// SavingsRatio returns multiplications used / plain multiplications — the
// paper's "nearly halves" metric (→ ~0.5 + 1/(2·pairs) as pairs dominate).
func (sp *SymPlan) SavingsRatio() float64 {
	plain := sp.m.Rows * sp.m.Cols
	return float64(sp.Mults()) / float64(plain)
}

// The plan cache keys on matrix identity: transforms are cached and
// read-only, so pointer identity is a safe key.
var (
	symPlanCacheMu sync.Mutex
	symPlanCache   = map[*Mat]*SymPlan{}
)

// SymG returns the shared-product plan for the transform's G matrix,
// cached and safe for concurrent use.
func (t *Transform) SymG() *SymPlan {
	symPlanCacheMu.Lock()
	defer symPlanCacheMu.Unlock()
	if sp, ok := symPlanCache[t.G]; ok {
		return sp
	}
	sp := NewSymPlan(t.G)
	symPlanCache[t.G] = sp
	return sp
}

// MaxPairableRows returns how many of the α rows can pair given the point
// sequence: with points {0, ±1, ±2, …} plus ∞, α−2 rows pair (all but the
// 0 row and the ∞ row) when α is even.
func MaxPairableRows(alpha int) int {
	if alpha < 4 {
		return 0
	}
	return int(2 * math.Floor(float64(alpha-2)/2))
}

// MulPanel computes out = m·in for a panel in laid out [m.Cols][width] and
// out [m.Rows][width], sharing even/odd products across symmetric row
// pairs — the panel form of the Figure 8 optimization used by the fused
// kernels' filter and input transforms.
func (sp *SymPlan) MulPanel(in, out []float32, rows, width int) {
	sp.MulPanelEmit(in, out, rows, width, nil)
}

// MulPanelEmit is MulPanel with a row-consumption callback: emit(u, v) runs
// right after the two rows of a symmetric pair are finalized, and emit(i, -1)
// after each single row. The per-row arithmetic — shared even/odd product
// accumulation in ascending column order, zero coefficients skipped, then the
// ±combine — is exactly MulPanel's, so consumers that fold further work into
// the emission (the fused transform+EWM kernel tier) stay bit-identical to
// the transform-then-consume path. A nil emit degrades to MulPanel.
//
// Row emission order is plan order (pairs first, then singles), not row
// order; callers must only depend on each row being complete when emitted.
func (sp *SymPlan) MulPanelEmit(in, out []float32, rows, width int, emit func(u, v int)) {
	if width == 1 {
		sp.mulColEmit(in, out, rows, emit)
		return
	}
	m := sp.m
	if rows != m.Cols {
		panic("winograd: MulPanel dimension mismatch")
	}
	for _, pr := range sp.pairs {
		u := pr[0]
		row := m.Data[u*m.Cols : (u+1)*m.Cols]
		dstU := out[pr[0]*width : (pr[0]+1)*width : (pr[0]+1)*width]
		dstV := out[pr[1]*width : (pr[1]+1)*width : (pr[1]+1)*width]
		for x := range dstU {
			dstU[x] = 0
			dstV[x] = 0 // reused below as the odd accumulator
		}
		// Even columns feed dstU, odd columns dstV: two independent
		// accumulation chains, so one pass can carry an (even, odd) column
		// pair at a time — same per-chain ascending-column order, so the
		// bits match the one-column-at-a-time walk exactly, at twice the
		// FMA-level parallelism.
		c := 0
		for ; c+2 <= len(row); c += 2 {
			c0, c1 := float32(row[c]), float32(row[c+1])
			s0 := in[c*width : (c+1)*width : (c+1)*width]
			switch {
			case c0 != 0 && c1 != 0:
				s1 := in[(c+1)*width : (c+2)*width : (c+2)*width]
				dU, dV := dstU[:len(s0)], dstV[:len(s0)]
				s1 = s1[:len(s0)]
				for x, sv := range s0 {
					dU[x] += c0 * sv
					dV[x] += c1 * s1[x]
				}
			case c0 != 0:
				for x, sv := range s0 {
					dstU[x] += c0 * sv
				}
			case c1 != 0:
				s1 := in[(c+1)*width : (c+2)*width : (c+2)*width]
				for x, sv := range s1 {
					dstV[x] += c1 * sv
				}
			}
		}
		if c < len(row) {
			if cv := float32(row[c]); cv != 0 {
				for x, sv := range in[c*width : (c+1)*width] {
					dstU[x] += cv * sv
				}
			}
		}
		// dstU holds Σeven, dstV holds Σodd: combine in place.
		for x := range dstU {
			even, odd := dstU[x], dstV[x]
			dstU[x] = even + odd
			dstV[x] = even - odd
		}
		if emit != nil {
			emit(pr[0], pr[1])
		}
	}
	for _, i := range sp.singles {
		row := m.Data[i*m.Cols : (i+1)*m.Cols]
		dst := out[i*width : (i+1)*width : (i+1)*width]
		for x := range dst {
			dst[x] = 0
		}
		// Single rows own one accumulator; a two-column pass keeps the
		// per-element operation sequence (column c, then c+1) identical to
		// the one-column walk, so the bits are unchanged.
		c := 0
		for ; c+2 <= len(row); c += 2 {
			c0, c1 := float32(row[c]), float32(row[c+1])
			switch {
			case c0 != 0 && c1 != 0:
				s0 := in[c*width : (c+1)*width : (c+1)*width]
				s1 := in[(c+1)*width : (c+2)*width : (c+2)*width]
				d := dst[:len(s0)]
				s1 = s1[:len(s0)]
				for x, sv := range s0 {
					d[x] += c0 * sv
					d[x] += c1 * s1[x]
				}
			case c0 != 0:
				for x, sv := range in[c*width : (c+1)*width] {
					dst[x] += c0 * sv
				}
			case c1 != 0:
				for x, sv := range in[(c+1)*width : (c+2)*width] {
					dst[x] += c1 * sv
				}
			}
		}
		if c < len(row) {
			if cv := float32(row[c]); cv != 0 {
				for x, sv := range in[c*width : (c+1)*width] {
					dst[x] += cv * sv
				}
			}
		}
		if emit != nil {
			emit(i, -1)
		}
	}
}

// mulColEmit is the width == 1 panel — a column vector, the shape every
// depthwise (I_C/G = O_C/G = 1) transform reduces to. The generic kernel
// pays three slice headers and a loop prologue per single multiply there;
// this scalar walk keeps the exact per-chain accumulation order (even and
// odd column chains ascending, zero coefficients skipped, then the
// ±combine; singles one chain in column order), so its bits match the
// panel kernel's width-1 execution exactly.
func (sp *SymPlan) mulColEmit(in, out []float32, rows int, emit func(u, v int)) {
	m := sp.m
	if rows != m.Cols {
		panic("winograd: MulPanel dimension mismatch")
	}
	for _, pr := range sp.pairs {
		row := m.Data[pr[0]*m.Cols : (pr[0]+1)*m.Cols]
		var even, odd float32
		c := 0
		for ; c+2 <= len(row); c += 2 {
			if c0 := float32(row[c]); c0 != 0 {
				even += c0 * in[c]
			}
			if c1 := float32(row[c+1]); c1 != 0 {
				odd += c1 * in[c+1]
			}
		}
		if c < len(row) {
			if cv := float32(row[c]); cv != 0 {
				even += cv * in[c]
			}
		}
		out[pr[0]] = even + odd
		out[pr[1]] = even - odd
		if emit != nil {
			emit(pr[0], pr[1])
		}
	}
	for _, i := range sp.singles {
		row := m.Data[i*m.Cols : (i+1)*m.Cols]
		var s float32
		for c, v := range row {
			if v != 0 {
				s += float32(v) * in[c]
			}
		}
		out[i] = s
		if emit != nil {
			emit(i, -1)
		}
	}
}

// panelPlans caches the (G, Dᵀ) symmetric panel plans per matrix pair.
type panelPlans struct {
	G, DT *SymPlan
}

var (
	panelPlanCacheMu sync.Mutex
	panelPlanCache   = map[[2]*Mat]*panelPlans{}
)

// PanelPlansFor returns cached shared-product plans for a (G, D) matrix
// pair: the G plan applies the filter transform, the Dᵀ plan (built from
// the cached transpose) the input transform. The matrices must be the
// read-only cached instances (plain, balanced or scaled transforms), whose
// pointer identity keys the cache. Safe for concurrent use.
func PanelPlansFor(g, d *Mat) (gPlan, dtPlan *SymPlan) {
	key := [2]*Mat{g, d}
	panelPlanCacheMu.Lock()
	defer panelPlanCacheMu.Unlock()
	if pp, ok := panelPlanCache[key]; ok {
		return pp.G, pp.DT
	}
	pp := &panelPlans{G: NewSymPlan(g), DT: NewSymPlan(d.T())}
	panelPlanCache[key] = pp
	return pp.G, pp.DT
}

// PanelPlans returns the plans for the transform's own G and D matrices.
func (t *Transform) PanelPlans() (g, dt *SymPlan) {
	return PanelPlansFor(t.G, t.D)
}
