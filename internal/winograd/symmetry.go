package winograd

import (
	"math"
	"sync"
)

// SymPlan is the paper's §5.2 "Transform Simplification": with
// interpolation points ordered {0, 1, −1, 2, −2, …}, the rows of A, G and
// Dᵀ generated for a ±p point pair hold equal elements in even column
// positions and opposite elements in odd positions (Figure 8). For such a
// pair (u, v) the products u⊙x need computing only once:
//
//	yᵤ = Σ even + Σ odd,   y_v = Σ even − Σ odd
//
// which nearly halves the transform multiplications (the paper measures a
// ~6% kernel throughput gain). A SymPlan detects the pairs of a matrix
// once and applies the shared-product evaluation.
type SymPlan struct {
	m       *Mat
	pairs   [][2]int // row index pairs with even/odd ± symmetry
	singles []int    // rows without a partner
}

// NewSymPlan analyses the matrix rows and returns the shared-product
// evaluation plan. Detection is exact (float equality), so it works on the
// rationally-generated transforms but degrades gracefully to all-singles
// for arbitrary matrices.
func NewSymPlan(m *Mat) *SymPlan {
	sp := &SymPlan{m: m}
	used := make([]bool, m.Rows)
	for i := 0; i < m.Rows; i++ {
		if used[i] {
			continue
		}
		partner := -1
		for j := i + 1; j < m.Rows && partner < 0; j++ {
			if used[j] {
				continue
			}
			if rowsSymmetric(m, i, j) {
				partner = j
			}
		}
		if partner >= 0 {
			sp.pairs = append(sp.pairs, [2]int{i, partner})
			used[i], used[partner] = true, true
		} else {
			sp.singles = append(sp.singles, i)
			used[i] = true
		}
	}
	return sp
}

// rowsSymmetric reports whether rows i and j satisfy the Figure 8 pattern:
// equal at even columns, opposite at odd columns, with at least one
// non-zero element (all-zero pairs are pointless).
func rowsSymmetric(m *Mat, i, j int) bool {
	nonZero := false
	for c := 0; c < m.Cols; c++ {
		a, b := m.At(i, c), m.At(j, c)
		if c%2 == 0 {
			if a != b {
				return false
			}
		} else {
			if a != -b {
				return false
			}
		}
		if a != 0 {
			nonZero = true
		}
	}
	return nonZero
}

// Pairs returns how many row pairs share products.
func (sp *SymPlan) Pairs() int { return len(sp.pairs) }

// Mults returns the number of scalar multiplications one MulVec32
// evaluation performs (zero coefficients still count; the comparison
// target is the plain m.Rows·m.Cols).
func (sp *SymPlan) Mults() int {
	return (len(sp.pairs) + len(sp.singles)) * sp.m.Cols
}

// MulVec32 computes m·x with shared products across symmetric row pairs.
func (sp *SymPlan) MulVec32(x []float32) []float32 {
	m := sp.m
	if len(x) != m.Cols {
		panic("winograd: SymPlan.MulVec32 dimension mismatch")
	}
	y := make([]float32, m.Rows)
	for _, pr := range sp.pairs {
		u := pr[0]
		row := m.Data[u*m.Cols : (u+1)*m.Cols]
		var even, odd float32
		for c, v := range row {
			p := float32(v) * x[c]
			if c%2 == 0 {
				even += p
			} else {
				odd += p
			}
		}
		y[pr[0]] = even + odd
		y[pr[1]] = even - odd
	}
	for _, i := range sp.singles {
		row := m.Data[i*m.Cols : (i+1)*m.Cols]
		var s float32
		for c, v := range row {
			s += float32(v) * x[c]
		}
		y[i] = s
	}
	return y
}

// SavingsRatio returns multiplications used / plain multiplications — the
// paper's "nearly halves" metric (→ ~0.5 + 1/(2·pairs) as pairs dominate).
func (sp *SymPlan) SavingsRatio() float64 {
	plain := sp.m.Rows * sp.m.Cols
	return float64(sp.Mults()) / float64(plain)
}

// The plan cache keys on matrix identity: transforms are cached and
// read-only, so pointer identity is a safe key.
var (
	symPlanCacheMu sync.Mutex
	symPlanCache   = map[*Mat]*SymPlan{}
)

// SymG returns the shared-product plan for the transform's G matrix,
// cached and safe for concurrent use.
func (t *Transform) SymG() *SymPlan {
	symPlanCacheMu.Lock()
	defer symPlanCacheMu.Unlock()
	if sp, ok := symPlanCache[t.G]; ok {
		return sp
	}
	sp := NewSymPlan(t.G)
	symPlanCache[t.G] = sp
	return sp
}

// MaxPairableRows returns how many of the α rows can pair given the point
// sequence: with points {0, ±1, ±2, …} plus ∞, α−2 rows pair (all but the
// 0 row and the ∞ row) when α is even.
func MaxPairableRows(alpha int) int {
	if alpha < 4 {
		return 0
	}
	return int(2 * math.Floor(float64(alpha-2)/2))
}

// MulPanel computes out = m·in for a panel in laid out [m.Cols][width] and
// out [m.Rows][width], sharing even/odd products across symmetric row
// pairs — the panel form of the Figure 8 optimization used by the fused
// kernels' filter and input transforms.
func (sp *SymPlan) MulPanel(in, out []float32, rows, width int) {
	m := sp.m
	if rows != m.Cols {
		panic("winograd: MulPanel dimension mismatch")
	}
	for _, pr := range sp.pairs {
		u := pr[0]
		row := m.Data[u*m.Cols : (u+1)*m.Cols]
		dstU := out[pr[0]*width : (pr[0]+1)*width]
		dstV := out[pr[1]*width : (pr[1]+1)*width]
		for x := range dstU {
			dstU[x] = 0
			dstV[x] = 0 // reused below as the odd accumulator
		}
		for c, v := range row {
			cv := float32(v)
			if cv == 0 {
				continue
			}
			src := in[c*width : (c+1)*width]
			if c%2 == 0 {
				for x, sv := range src {
					dstU[x] += cv * sv
				}
			} else {
				for x, sv := range src {
					dstV[x] += cv * sv
				}
			}
		}
		// dstU holds Σeven, dstV holds Σodd: combine in place.
		for x := range dstU {
			even, odd := dstU[x], dstV[x]
			dstU[x] = even + odd
			dstV[x] = even - odd
		}
	}
	for _, i := range sp.singles {
		row := m.Data[i*m.Cols : (i+1)*m.Cols]
		dst := out[i*width : (i+1)*width]
		for x := range dst {
			dst[x] = 0
		}
		for c, v := range row {
			cv := float32(v)
			if cv == 0 {
				continue
			}
			src := in[c*width : (c+1)*width]
			for x, sv := range src {
				dst[x] += cv * sv
			}
		}
	}
}

// panelPlans caches the (G, Dᵀ) symmetric panel plans per matrix pair.
type panelPlans struct {
	G, DT *SymPlan
}

var (
	panelPlanCacheMu sync.Mutex
	panelPlanCache   = map[[2]*Mat]*panelPlans{}
)

// PanelPlansFor returns cached shared-product plans for a (G, D) matrix
// pair: the G plan applies the filter transform, the Dᵀ plan (built from
// the cached transpose) the input transform. The matrices must be the
// read-only cached instances (plain, balanced or scaled transforms), whose
// pointer identity keys the cache. Safe for concurrent use.
func PanelPlansFor(g, d *Mat) (gPlan, dtPlan *SymPlan) {
	key := [2]*Mat{g, d}
	panelPlanCacheMu.Lock()
	defer panelPlanCacheMu.Unlock()
	if pp, ok := panelPlanCache[key]; ok {
		return pp.G, pp.DT
	}
	pp := &panelPlans{G: NewSymPlan(g), DT: NewSymPlan(d.T())}
	panelPlanCache[key] = pp
	return pp.G, pp.DT
}

// PanelPlans returns the plans for the transform's own G and D matrices.
func (t *Transform) PanelPlans() (g, dt *SymPlan) {
	return PanelPlansFor(t.G, t.D)
}
