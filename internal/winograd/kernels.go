package winograd

import (
	"fmt"
	"sort"
)

// Kernel describes one of the 13 WinRS kernel variants Ω_α(n, r) of the
// paper's Figure 6: a fused 1-D Winograd convolution plus its hardware
// configuration (cache-block sizes per footnote 3) and a throughput
// coefficient used by the fastest-kernel-pair selection of §4.1.
type Kernel struct {
	// N and R define the underlying F(n,r): n outputs per tile from r
	// filter taps. Alpha = N+R-1 is the tile (and EWM batch) size.
	N, R, Alpha int

	// FP16 reports whether the paper ported this kernel to Tensor Cores.
	FP16 bool

	// BN32, BM32 are the FP32 CUDA-core cache-block sizes B_N×B_M; BN16,
	// BM16 the FP16 Tensor-Core ones (footnote 3). B_K is always 8.
	BN32, BM32 int
	BN16, BM16 int

	// Coeff is the kernel throughput coefficient: the acceleration factor
	// n·r/α discounted by a transform-overhead efficiency that shrinks as
	// α grows (larger transform matrices spend more non-EWM instructions
	// and shrink cache blocks). Pair selection maximizes the workload-
	// weighted sum of coefficients.
	Coeff float64
}

// BK is the cache-block depth B_K shared by all kernels.
const BK = 8

// String renders the kernel in the paper's Ω_α(n,r) notation.
func (k Kernel) String() string { return fmt.Sprintf("Omega%d(%d,%d)", k.Alpha, k.N, k.R) }

// Transform returns the (cached) F(n,r) transform matrices for the kernel.
func (k Kernel) Transform() *Transform { return Generate(k.N, k.R) }

// Accel returns the kernel's time-complexity reduction factor n·r/α.
func (k Kernel) Accel() float64 { return float64(k.N*k.R) / float64(k.Alpha) }

// CacheBlock returns the B_N×B_M cache-block size for the precision. The
// table is precision-aware: binary16 operands occupy half the bytes, so
// every kernel's FP16 block covers at least its FP32 block's area within
// the same shared-memory budget (pinned by TestCacheBlockPrecisionAware;
// the budget itself by TestCacheBlocksFitSharedMemory). Beyond the GPU
// model, the host kernel tier keys its EWM block-shape selection off B_M
// (see core's selectEWM).
func (k Kernel) CacheBlock(fp16 bool) (bn, bm int) {
	if fp16 {
		return k.BN16, k.BM16
	}
	return k.BN32, k.BM32
}

// Intensity returns the eq. (4) computation intensity of the fused kernel
// at its cache-block size for the given precision.
func (k Kernel) Intensity(fp16 bool) float64 {
	bn, bm := k.CacheBlock(fp16)
	return Intensity1D(bn, bm, k.R, k.Alpha)
}

// efficiency discounts for transform overhead by α; tuned so that, per the
// paper, the Ω8 family is the throughput sweet spot, Ω4 is close behind,
// Ω16 trades throughput for coverage of huge taps, and Ω2 is plain direct
// convolution.
var alphaEfficiency = map[int]float64{2: 1.00, 4: 0.92, 8: 0.85, 16: 0.60}

func newKernel(n, r int, fp16 bool) Kernel {
	alpha := n + r - 1
	k := Kernel{N: n, R: r, Alpha: alpha, FP16: fp16}
	switch alpha {
	case 2:
		// Halved element size doubles the budget: the FP16 block must never
		// cover less area than the FP32 one (it holds the same values in
		// half the bytes), so α = 2 keeps the full 128×128 block at FP16 too.
		k.BN32, k.BM32 = 128, 128
		k.BN16, k.BM16 = 128, 128
	case 4:
		k.BN32, k.BM32 = 64, 64
		k.BN16, k.BM16 = 128, 64
	case 8:
		k.BN32, k.BM32 = 64, 32
		k.BN16, k.BM16 = 128, 64
	case 16:
		k.BN32, k.BM32 = 64, 32
		k.BN16, k.BM16 = 64, 64
	default:
		panic(fmt.Sprintf("winograd: unsupported alpha %d", alpha))
	}
	k.Coeff = k.Accel() * alphaEfficiency[alpha]
	return k
}

// Kernels is the registry of the 13 WinRS kernel variants (Figure 6),
// ordered by α then n. The FP16 flag marks the six kernels the paper ported
// to Tensor Cores: Ω4(3,2), Ω8(3,6), Ω8(5,4), Ω8(7,2), Ω16(7,10), Ω16(9,8).
var Kernels = []Kernel{
	newKernel(1, 2, false), // Ω2(1,2): direct convolution fallback
	newKernel(2, 3, false),
	newKernel(3, 2, true),
	newKernel(3, 6, true),
	newKernel(6, 3, false),
	newKernel(4, 5, false),
	newKernel(5, 4, true),
	newKernel(7, 2, true),
	newKernel(5, 12, false),
	newKernel(6, 11, false),
	newKernel(7, 10, true),
	newKernel(8, 9, false),
	newKernel(9, 8, true),
}

// DirectKernel returns the direct-convolution fallback F(1,r): one output
// per tile, r taps, acceleration factor 1. It covers residual widths that
// no registry kernel pair can tile exactly (e.g. odd O_W when every
// candidate r is even), extending WinRS to arbitrary O_W ≥ 1 without zero
// padding. n = 1 divides every F_W, and with n = 1 the "transform" is the
// identity-weight direct product, so numerical accuracy matches direct
// convolution. r must be at most 20 (the interpolation-point budget).
func DirectKernel(r int) Kernel {
	if r < 1 || r > 20 {
		panic(fmt.Sprintf("winograd: DirectKernel width %d out of range", r))
	}
	return Kernel{
		N: 1, R: r, Alpha: r, FP16: true,
		BN32: 64, BM32: 32, BN16: 64, BM16: 64,
		Coeff: 1,
	}
}

// Lookup returns the registry kernel Ω(n,r) and whether it exists.
func Lookup(n, r int) (Kernel, bool) {
	for _, k := range Kernels {
		if k.N == n && k.R == r {
			return k, true
		}
	}
	return Kernel{}, false
}

// SupportedN returns the sorted distinct output-tile heights n available in
// the registry. WinRS supports filter-gradient widths F_W that are multiples
// of any supported n ≥ 2 (the paper's "multiples of 2 to 9"), with n = 1 as
// the universal direct fallback.
func SupportedN() []int {
	set := map[int]bool{}
	for _, k := range Kernels {
		set[k.N] = true
	}
	ns := make([]int, 0, len(set))
	for n := range set {
		ns = append(ns, n)
	}
	sort.Ints(ns)
	return ns
}

// KernelsForN returns all registry kernels with the given n, sorted by
// descending throughput coefficient (fastest first).
func KernelsForN(n int) []Kernel {
	var out []Kernel
	for _, k := range Kernels {
		if k.N == n {
			out = append(out, k)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Coeff > out[j].Coeff })
	return out
}

// SupportsWidth reports whether some registry kernel's n ≥ 2 divides fw, or
// fw is handled by the n = 1 fallback only (in which case it returns true as
// well, since Ω2(1,2) covers any width at direct-convolution speed). The
// second result is the largest n that divides fw.
func SupportsWidth(fw int) (ok bool, bestN int) {
	if fw < 1 {
		return false, 0
	}
	bestN = 1
	for _, n := range SupportedN() {
		if n >= 2 && fw%n == 0 && n > bestN {
			bestN = n
		}
	}
	return true, bestN
}

// SMEMBytes returns the shared-memory footprint of the kernel's
// double-buffered tile stores (the Gs and Ds arrays of Algorithm 3):
// N_buf · α · B_K · (B_N + B_M) elements. The paper's footnote-3
// cache-block table exists precisely because this footprint must fit the
// SM's shared memory — larger α forces smaller B_N×B_M.
func (k Kernel) SMEMBytes(fp16 bool) int {
	bn, bm := k.CacheBlock(fp16)
	elem := 4
	if fp16 {
		elem = 2
	}
	const nBuf = 2 // double buffering (§5.2 software pipelining)
	return nBuf * k.Alpha * BK * (bn + bm) * elem
}
