package winograd

import (
	"math/big"
	"math/rand"
	"testing"
)

// exactConv1D checks, entirely in rational arithmetic, that the generated
// matrices satisfy y = Aᵀ[(G·w) ⊙ (Dᵀ·x)] = valid correlation of x and w.
// With exact arithmetic this is a proof of correctness of the construction
// for the tested (n, r) — there is no tolerance to hide behind.
func exactConv1D(t *testing.T, n, r int, rng *rand.Rand) {
	t.Helper()
	alpha := n + r - 1
	aR, gR, dR := GenerateExact(n, r)

	randVec := func(ln int) []*big.Rat {
		v := make([]*big.Rat, ln)
		for i := range v {
			v[i] = big.NewRat(int64(rng.Intn(19)-9), int64(1+rng.Intn(4)))
		}
		return v
	}
	x := randVec(alpha)
	w := randVec(r)

	mulVec := func(m [][]*big.Rat, v []*big.Rat) []*big.Rat {
		out := make([]*big.Rat, len(m))
		for i, row := range m {
			s := new(big.Rat)
			for j, c := range row {
				s.Add(s, new(big.Rat).Mul(c, v[j]))
			}
			out[i] = s
		}
		return out
	}
	tMulVec := func(m [][]*big.Rat, v []*big.Rat) []*big.Rat {
		cols := len(m[0])
		out := make([]*big.Rat, cols)
		for j := 0; j < cols; j++ {
			out[j] = new(big.Rat)
		}
		for i, row := range m {
			for j, c := range row {
				out[j].Add(out[j], new(big.Rat).Mul(c, v[i]))
			}
		}
		return out
	}

	gw := mulVec(gR, w)
	dx := tMulVec(dR, x)
	ewm := make([]*big.Rat, alpha)
	for i := range ewm {
		ewm[i] = new(big.Rat).Mul(gw[i], dx[i])
	}
	y := tMulVec(aR, ewm)

	for i := 0; i < n; i++ {
		want := new(big.Rat)
		for k := 0; k < r; k++ {
			want.Add(want, new(big.Rat).Mul(x[i+k], w[k]))
		}
		if y[i].Cmp(want) != 0 {
			t.Fatalf("F(%d,%d): y[%d] = %v, want %v (exact rational mismatch)",
				n, r, i, y[i], want)
		}
	}
}

// TestExactCorrectnessAllKernels proves, with exact rational arithmetic,
// that every registry kernel's transform computes the correlation exactly.
func TestExactCorrectnessAllKernels(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for _, k := range Kernels {
		for trial := 0; trial < 3; trial++ {
			exactConv1D(t, k.N, k.R, rng)
		}
	}
}

// The construction must also hold for (n, r) pairs outside the registry.
func TestExactCorrectnessArbitraryShapes(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, nr := range [][2]int{{1, 1}, {1, 3}, {2, 2}, {4, 4}, {2, 9}, {10, 3}, {4, 13}} {
		exactConv1D(t, nr[0], nr[1], rng)
	}
}

func TestGenerateDimensions(t *testing.T) {
	for _, k := range Kernels {
		tr := Generate(k.N, k.R)
		if tr.Alpha != k.Alpha {
			t.Errorf("%v: alpha %d, want %d", k, tr.Alpha, k.Alpha)
		}
		if tr.A.Rows != k.Alpha || tr.A.Cols != k.N {
			t.Errorf("%v: A is %dx%d, want %dx%d", k, tr.A.Rows, tr.A.Cols, k.Alpha, k.N)
		}
		if tr.G.Rows != k.Alpha || tr.G.Cols != k.R {
			t.Errorf("%v: G is %dx%d, want %dx%d", k, tr.G.Rows, tr.G.Cols, k.Alpha, k.R)
		}
		if tr.D.Rows != k.Alpha || tr.D.Cols != k.Alpha {
			t.Errorf("%v: D is %dx%d, want square %d", k, tr.D.Rows, tr.D.Cols, k.Alpha)
		}
	}
}

func TestGenerateCaching(t *testing.T) {
	a := Generate(3, 6)
	b := Generate(3, 6)
	if a != b {
		t.Error("Generate should return the cached instance")
	}
}

func TestMultipliesAndAccel(t *testing.T) {
	tr := Generate(2, 3) // F(2,3): 4 multiplies vs 6 direct
	ewm, direct, accel := tr.Multiplies()
	if ewm != 4 || direct != 6 || accel != 1.5 {
		t.Errorf("F(2,3) Multiplies = (%d,%d,%v), want (4,6,1.5)", ewm, direct, accel)
	}
}

// Eq. (3): the 1-D acceleration limit dominates every 2-D factorization of
// the same α.
func TestAccelLimits1DBeats2D(t *testing.T) {
	for _, f := range [][2]int{{2, 8}, {4, 4}, {2, 2}, {4, 2}, {8, 2}} {
		alpha := f[0] * f[1]
		a1 := Accel1DMax(alpha)
		a2 := Accel2DMax(f[0], f[1])
		if a1 < a2 {
			t.Errorf("alpha=%d=%dx%d: Accel1DMax %v < Accel2DMax %v",
				alpha, f[0], f[1], a1, a2)
		}
	}
	// Spot value: α=16 → (17)²/64 = 4.515625.
	if got := Accel1DMax(16); got != 289.0/64.0 {
		t.Errorf("Accel1DMax(16) = %v, want %v", got, 289.0/64.0)
	}
}

// Eq. (4): fused 1-D kernels have computation intensity at least that of
// the 2-D factorization with the same cache block.
func TestIntensity1DBeats2D(t *testing.T) {
	for _, c := range []struct{ bn, bm, r0, r1, a0, a1 int }{
		{64, 32, 3, 3, 4, 4},
		{64, 32, 2, 3, 4, 4},
		{64, 64, 3, 2, 2, 8},
	} {
		r1d := Intensity1D(c.bn, c.bm, c.r0, c.a0*c.a1)
		r2d := Intensity2D(c.bn, c.bm, c.r0, c.r1, c.a0, c.a1)
		if r1d < r2d {
			t.Errorf("%+v: 1D intensity %v < 2D %v", c, r1d, r2d)
		}
	}
}

func TestPointsPanicsBeyondSequence(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic for too many points")
		}
	}()
	Points(len(pointSequence) + 1)
}

func TestGenerateExactInvalidPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic for F(0,3)")
		}
	}()
	GenerateExact(0, 3)
}

// Figure 8 symmetry: with the point ordering {0, 1, -1, 2, -2, …}, rows
// 2k-1 and 2k of the Vandermonde matrices (the ±p pairs) agree in even
// positions and are opposite in odd positions.
func TestTransformRowSymmetry(t *testing.T) {
	tr := Generate(3, 6)
	for pair := 1; pair+1 < tr.Alpha-1; pair += 2 {
		for j := 0; j < tr.G.Cols; j++ {
			a, b := tr.G.At(pair, j), tr.G.At(pair+1, j)
			if j%2 == 0 && a != b {
				t.Errorf("G rows %d,%d even col %d: %v vs %v", pair, pair+1, j, a, b)
			}
			if j%2 == 1 && a != -b {
				t.Errorf("G rows %d,%d odd col %d: %v vs %v", pair, pair+1, j, a, b)
			}
		}
	}
}
