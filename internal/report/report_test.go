package report

import (
	"bytes"
	"strings"
	"testing"
)

func TestTableFormatting(t *testing.T) {
	tab := NewTable("Demo", "name", "value", "note")
	tab.AddRow("alpha", 1.23456789, "first")
	tab.AddRow("a-much-longer-name", 42, "second row")
	if tab.Len() != 2 {
		t.Fatalf("Len = %d", tab.Len())
	}
	var buf bytes.Buffer
	tab.Write(&buf)
	out := buf.String()
	if !strings.Contains(out, "== Demo ==") {
		t.Error("missing title")
	}
	if !strings.Contains(out, "a-much-longer-name") {
		t.Error("missing long row")
	}
	// Floats use compact %.4g.
	if !strings.Contains(out, "1.235") {
		t.Errorf("float formatting wrong:\n%s", out)
	}
	// Every line of the body should be column-aligned: the header and
	// separator must be the same width.
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) < 4 {
		t.Fatalf("unexpected line count %d", len(lines))
	}
	header, sep := lines[1], lines[2]
	if len(strings.TrimRight(header, " ")) > len(sep) {
		t.Errorf("separator shorter than header:\n%q\n%q", header, sep)
	}
}

func TestTableWithoutTitle(t *testing.T) {
	tab := NewTable("", "x")
	tab.AddRow(1)
	var buf bytes.Buffer
	tab.Write(&buf)
	if strings.Contains(buf.String(), "==") {
		t.Error("untitled table should not print a title banner")
	}
}

func TestSeries(t *testing.T) {
	var buf bytes.Buffer
	Series(&buf, "throughput", []string{"a", "b"}, []float64{1.5, 2.5})
	out := buf.String()
	if !strings.Contains(out, "throughput:") ||
		!strings.Contains(out, "a") || !strings.Contains(out, "2.5") {
		t.Errorf("series output malformed:\n%s", out)
	}
}

func TestSummaryStats(t *testing.T) {
	avg, min, max := SummaryStats([]float64{1, 2, 3, 4})
	if avg != 2.5 || min != 1 || max != 4 {
		t.Errorf("stats = %v %v %v", avg, min, max)
	}
	avg, min, max = SummaryStats(nil)
	if avg != 0 || min != 0 || max != 0 {
		t.Error("empty stats should be zero")
	}
	avg, min, max = SummaryStats([]float64{-7})
	if avg != -7 || min != -7 || max != -7 {
		t.Error("single-element stats wrong")
	}
}
