// Package report renders aligned ASCII tables and series for the
// experiment binaries, matching the row/column structure of the paper's
// tables and figures.
package report

import (
	"fmt"
	"io"
	"strings"
)

// Table accumulates rows and prints them with aligned columns.
type Table struct {
	Title   string
	Headers []string
	rows    [][]string
}

// NewTable creates a table with the given title and column headers.
func NewTable(title string, headers ...string) *Table {
	return &Table{Title: title, Headers: headers}
}

// AddRow appends one row; values are formatted with %v.
func (t *Table) AddRow(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.4g", v)
		case string:
			row[i] = v
		default:
			row[i] = fmt.Sprintf("%v", c)
		}
	}
	t.rows = append(t.rows, row)
}

// Len returns the number of data rows.
func (t *Table) Len() int { return len(t.rows) }

// Write renders the table.
func (t *Table) Write(w io.Writer) {
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, r := range t.rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	if t.Title != "" {
		fmt.Fprintf(w, "\n== %s ==\n", t.Title)
	}
	line := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			parts[i] = pad(c, widths[i])
		}
		fmt.Fprintln(w, strings.Join(parts, "  "))
	}
	line(t.Headers)
	sep := make([]string, len(t.Headers))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, r := range t.rows {
		line(r)
	}
}

func pad(s string, w int) string {
	if len(s) >= w {
		return s
	}
	return s + strings.Repeat(" ", w-len(s))
}

// Series prints one labelled numeric series (a figure line) as
// "label: v1 v2 v3 …".
func Series(w io.Writer, label string, xs []string, ys []float64) {
	fmt.Fprintf(w, "%s:\n", label)
	for i := range xs {
		fmt.Fprintf(w, "  %-18s %10.4g\n", xs[i], ys[i])
	}
}

// SummaryStats returns (avg, min, max) of a slice.
func SummaryStats(vs []float64) (avg, min, max float64) {
	if len(vs) == 0 {
		return 0, 0, 0
	}
	min, max = vs[0], vs[0]
	var sum float64
	for _, v := range vs {
		sum += v
		if v < min {
			min = v
		}
		if v > max {
			max = v
		}
	}
	return sum / float64(len(vs)), min, max
}
