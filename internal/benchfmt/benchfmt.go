// Package benchfmt holds the schema of the machine-readable benchmark
// reports (BENCH_*.json): winrs-bench writes and gates them, and the
// multi-process load test appends saturation rows to the same files. The
// types live here, outside cmd/winrs-bench, so both producers agree on
// the layout by construction.
package benchfmt

import (
	"encoding/json"
	"fmt"
	"os"

	"winrs/internal/backend"
)

// SchemaVersion identifies the BENCH_*.json layout. Bump it on any
// incompatible field change so compare mode can refuse to diff mismatched
// files; purely additive fields (Saturation) do not bump it.
const SchemaVersion = 1

// Report is one machine-readable benchmark run: CI archives these as
// BENCH_<date>.json and `winrs-bench -compare old new` diffs two of them.
type Report struct {
	SchemaVersion int     `json:"schema_version"`
	Date          string  `json:"date"`
	GoVersion     string  `json:"go_version"`
	GOMAXPROCS    int     `json:"gomaxprocs"`
	NumCPU        int     `json:"num_cpu,omitempty"`
	CalibrationNs float64 `json:"calibration_ns_per_op"`

	Results []Result `json:"results"`

	// Dispatch records the cost-model dispatch decision per grid shape
	// (additive schema-1 field: absent from older baselines, in which case
	// compare mode simply skips the flip check).
	Dispatch []Dispatch `json:"dispatch,omitempty"`

	// Saturation records serving-throughput scenarios (additive schema-1
	// field, written by `winrs-bench -saturate` and by the multi-process
	// load test). Compare mode warns — never fails — on regressions here:
	// serving throughput is scheduler- and machine-noise-bound in a way
	// the calibrated compute grid is not.
	Saturation []Saturation `json:"saturation,omitempty"`
}

// Dispatch is one shape's dispatch audit: what the dispatcher chose
// versus what a full measurement of every eligible backend says, plus the
// prediction ranking that produced the choice. WithinBest is the
// chosen/best measured ns/op ratio — the acceptance criterion is ≤ 1.10.
type Dispatch struct {
	Shape         string              `json:"shape"`
	Chosen        string              `json:"chosen"`
	Measured      bool                `json:"measured"` // refinement ran
	BestBackend   string              `json:"best_backend"`
	BestNsPerOp   float64             `json:"best_ns_per_op"`
	ChosenNsPerOp float64             `json:"chosen_ns_per_op"`
	WithinBest    float64             `json:"within_best"`
	BackendNs     map[string]float64  `json:"backend_ns_per_op"`
	Candidates    []backend.Candidate `json:"candidates"`
}

// Result measures one (shape, algorithm) cell.
type Result struct {
	Name           string             `json:"name"` // "<algo>/<shape>", the compare key
	Algo           string             `json:"algo"`
	Shape          string             `json:"shape"`
	NsPerOp        float64            `json:"ns_per_op"`
	AllocsPerOp    float64            `json:"allocs_per_op"`
	WorkspaceBytes int64              `json:"workspace_bytes"`
	WHatCacheBytes int64              `json:"what_cache_bytes,omitempty"`
	HotPath        bool               `json:"hot_path"` // gated by -compare
	StageShares    map[string]float64 `json:"stage_shares,omitempty"`
	// EWMKernel attributes the row to a kernel-tier variant (WinRS rows
	// and EWM micro rows): e.g. "fused8x4", "block8x8+v3". Additive field,
	// absent in pre-tier baselines — no schema bump.
	EWMKernel string `json:"ewm_kernel,omitempty"`
}

// Saturation is one serving-throughput scenario: a client fleet driving a
// server (in-process for -saturate, real processes behind the shard
// router for the load test) to saturation. Scenario is the compare key.
type Saturation struct {
	Scenario string `json:"scenario"`
	Nodes    int    `json:"nodes"`   // serving processes (1 for in-process)
	Clients  int    `json:"clients"` // concurrent client goroutines
	Requests int    `json:"requests"`
	Failed   int    `json:"failed"` // non-200 responses

	DurationSec float64 `json:"duration_sec"`
	Throughput  float64 `json:"requests_per_sec"`
	P50Ms       float64 `json:"p50_ms"`
	P99Ms       float64 `json:"p99_ms"`

	// BatchOccupancyMean is the mean members-per-batch over the run (0
	// when batching was off); BatchedFrac is the fraction of requests that
	// shared a batch with at least one other.
	BatchOccupancyMean float64 `json:"batch_occupancy_mean,omitempty"`
	BatchedFrac        float64 `json:"batched_frac,omitempty"`

	// Drained is set by scenarios that drain a node mid-run;
	// FailedInFlight counts requests that were in flight across the drain
	// and did not complete successfully — the acceptance criterion is 0.
	Drained        bool `json:"drained,omitempty"`
	FailedInFlight int  `json:"failed_in_flight,omitempty"`
}

// Read loads and validates a report.
func Read(path string) (*Report, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var rep Report
	if err := json.Unmarshal(raw, &rep); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if rep.SchemaVersion != SchemaVersion {
		return nil, fmt.Errorf("%s: schema_version %d, this binary speaks %d",
			path, rep.SchemaVersion, SchemaVersion)
	}
	if rep.CalibrationNs <= 0 {
		return nil, fmt.Errorf("%s: missing calibration benchmark", path)
	}
	return &rep, nil
}

// Write marshals the report to path ("-" for stdout).
func (rep *Report) Write(path string) error {
	out, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	out = append(out, '\n')
	if path == "-" {
		_, err = os.Stdout.Write(out)
		return err
	}
	return os.WriteFile(path, out, 0o644)
}
