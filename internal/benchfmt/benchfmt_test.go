package benchfmt

import (
	"path/filepath"
	"strings"
	"testing"
)

func TestReportRoundTrip(t *testing.T) {
	rep := &Report{
		SchemaVersion: SchemaVersion,
		Date:          "2026-08-08",
		GoVersion:     "go1.22",
		GOMAXPROCS:    4,
		CalibrationNs: 12345,
		Results:       []Result{{Name: "winrs_fp32/shape", NsPerOp: 100, HotPath: true}},
		Saturation: []Saturation{{
			Scenario: "inproc_batch", Nodes: 1, Clients: 8, Requests: 400,
			Throughput: 5000, P50Ms: 1.5, P99Ms: 4.2,
			BatchOccupancyMean: 3.3, BatchedFrac: 0.8,
		}},
	}
	path := filepath.Join(t.TempDir(), "BENCH_test.json")
	if err := rep.Write(path); err != nil {
		t.Fatal(err)
	}
	got, err := Read(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.CalibrationNs != rep.CalibrationNs || len(got.Results) != 1 || len(got.Saturation) != 1 {
		t.Fatalf("round-trip mismatch: %+v", got)
	}
	if got.Saturation[0] != rep.Saturation[0] {
		t.Errorf("saturation row mismatch: %+v vs %+v", got.Saturation[0], rep.Saturation[0])
	}
}

func TestReadRejectsBadReports(t *testing.T) {
	dir := t.TempDir()
	if _, err := Read(filepath.Join(dir, "absent.json")); err == nil {
		t.Error("Read of a missing file succeeded")
	}

	wrong := &Report{SchemaVersion: SchemaVersion + 1, CalibrationNs: 1}
	path := filepath.Join(dir, "wrong.json")
	if err := wrong.Write(path); err != nil {
		t.Fatal(err)
	}
	if _, err := Read(path); err == nil || !strings.Contains(err.Error(), "schema_version") {
		t.Errorf("wrong schema version accepted: %v", err)
	}

	nocal := &Report{SchemaVersion: SchemaVersion}
	path = filepath.Join(dir, "nocal.json")
	if err := nocal.Write(path); err != nil {
		t.Fatal(err)
	}
	if _, err := Read(path); err == nil || !strings.Contains(err.Error(), "calibration") {
		t.Errorf("missing calibration accepted: %v", err)
	}
}
