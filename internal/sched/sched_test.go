package sched

import (
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
)

// Every unit index must be executed exactly once, whatever the pool
// width, chunk size and total.
func TestRunExecutesEachUnitOnce(t *testing.T) {
	for _, width := range []int{1, 2, 4, 8} {
		p := NewPool(width)
		for _, total := range []int{0, 1, 2, 3, 7, 64, 1000} {
			for _, chunk := range []int{0, 1, 3, 1000} {
				counts := make([]atomic.Int32, total)
				p.RunFunc(total, chunk, func(lo, hi int) {
					if lo < 0 || hi > total || lo >= hi {
						t.Errorf("width=%d total=%d chunk=%d: bad range [%d,%d)", width, total, chunk, lo, hi)
					}
					for i := lo; i < hi; i++ {
						counts[i].Add(1)
					}
				})
				for i := range counts {
					if got := counts[i].Load(); got != 1 {
						t.Fatalf("width=%d total=%d chunk=%d: unit %d ran %d times", width, total, chunk, i, got)
					}
				}
			}
		}
		p.Close()
	}
}

// Run must return only after every unit has completed (happens-before):
// writes to a plain slice from worker goroutines must be visible.
func TestRunHappensBefore(t *testing.T) {
	p := NewPool(4)
	defer p.Close()
	const total = 500
	for iter := 0; iter < 50; iter++ {
		out := make([]int, total)
		p.RunFunc(total, 7, func(lo, hi int) {
			for i := lo; i < hi; i++ {
				out[i] = i * i
			}
		})
		for i := range out {
			if out[i] != i*i {
				t.Fatalf("iter %d: unit %d result not visible after Run", iter, i)
			}
		}
	}
}

// Concurrent submitters must co-schedule on one pool without interference.
func TestConcurrentRuns(t *testing.T) {
	p := NewPool(4)
	defer p.Close()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for iter := 0; iter < 20; iter++ {
				const total = 257
				var sum atomic.Int64
				p.RunFunc(total, 0, func(lo, hi int) {
					s := int64(0)
					for i := lo; i < hi; i++ {
						s += int64(i)
					}
					sum.Add(s)
				})
				if want := int64(total * (total - 1) / 2); sum.Load() != want {
					t.Errorf("goroutine %d iter %d: sum %d, want %d", g, iter, sum.Load(), want)
				}
			}
		}(g)
	}
	wg.Wait()
}

// A nil pool and a width-1 pool both run inline.
func TestInlineDegenerateCases(t *testing.T) {
	for _, p := range []*Pool{nil, NewPool(1), NewPool(0)} {
		if got := p.Workers(); got != 1 {
			t.Errorf("Workers() = %d, want 1", got)
		}
		ran := 0
		p.RunFunc(10, 0, func(lo, hi int) { ran += hi - lo })
		if ran != 10 {
			t.Errorf("inline pool ran %d units, want 10", ran)
		}
	}
}

// The default pool is process-wide and sized to GOMAXPROCS at first use.
func TestDefaultPool(t *testing.T) {
	p := Default()
	if p != Default() {
		t.Error("Default() is not a singleton")
	}
	if p.Workers() < 1 || p.Workers() > runtime.NumCPU()+64 {
		t.Errorf("default pool width %d out of range", p.Workers())
	}
}

// Steady-state Run through a warmed pool must not allocate: descriptors
// are pooled and the Task is caller-owned.
func TestRunAllocsSteadyState(t *testing.T) {
	p := NewPool(4)
	defer p.Close()
	task := &countTask{}
	p.Run(64, 4, task) // warm the descriptor pool
	allocs := testing.AllocsPerRun(100, func() { p.Run(64, 4, task) })
	// One batch descriptor may still be minted when the sync.Pool was
	// drained by GC mid-measurement; more than that is a leak.
	if allocs > 1 {
		t.Errorf("steady-state Run allocates %v per run, want ≤ 1", allocs)
	}
}

type countTask struct{ n atomic.Int64 }

func (c *countTask) Run(lo, hi int) { c.n.Add(int64(hi - lo)) }

// A nil cancel handle must leave RunBatch identical to Run, and an
// uncancelled handle must not change what executes.
func TestRunBatchUncancelled(t *testing.T) {
	for _, width := range []int{1, 4} {
		p := NewPool(width)
		task := &countTask{}
		var c Batch
		p.RunBatch(1000, 7, task, &c)
		p.RunBatch(1000, 7, task, nil)
		if got := task.n.Load(); got != 2000 {
			t.Errorf("width %d: ran %d units, want 2000", width, got)
		}
		p.Close()
	}
}

// A handle cancelled before submission must prevent any unit from running.
func TestRunBatchCancelledUpfront(t *testing.T) {
	for _, width := range []int{1, 4} {
		p := NewPool(width)
		task := &countTask{}
		var c Batch
		c.Cancel()
		if !c.Cancelled() {
			t.Fatal("Cancelled() false after Cancel")
		}
		p.RunBatch(1000, 7, task, &c)
		if got := task.n.Load(); got != 0 {
			t.Errorf("width %d: cancelled batch ran %d units", width, got)
		}
		p.Close()
	}
}

// cancelTask cancels its own batch during the trip-th executed chunk, so
// cancellation deterministically lands mid-run.
type cancelTask struct {
	c      *Batch
	chunks atomic.Int64
	units  atomic.Int64
	trip   int64
}

func (s *cancelTask) Run(lo, hi int) {
	if s.chunks.Add(1) == s.trip {
		s.c.Cancel()
	}
	s.units.Add(int64(hi - lo))
}

// Cancelling mid-run must stop the batch within chunk-claim granularity:
// chunks already claimed finish, everything after is skipped, and RunBatch
// still returns through the normal completion protocol. With W
// participants, at most trip+W−1 chunks can be in flight when the cancel
// lands.
func TestRunBatchCancelMidRun(t *testing.T) {
	const total, chunk = 100000, 10
	for _, width := range []int{1, 4} {
		p := NewPool(width)
		task := &cancelTask{c: &Batch{}, trip: 3}
		p.RunBatch(total, chunk, task, task.c)
		ran := task.units.Load()
		limit := int64(chunk) * (task.trip + int64(width) - 1)
		if ran > limit {
			t.Errorf("width %d: %d units ran after mid-run cancel, want ≤ %d", width, ran, limit)
		}
		if ran < int64(chunk)*task.trip {
			t.Errorf("width %d: only %d units ran, want ≥ %d (claimed chunks must finish)",
				width, ran, int64(chunk)*task.trip)
		}
		p.Close()
	}
}

// After a cancelled RunBatch returns, the happens-before edge must hold:
// no participant touches the task again, so its state is safe to reuse
// immediately (what the serving runtime relies on to recycle workspaces).
func TestRunBatchCancelQuiescent(t *testing.T) {
	p := NewPool(4)
	defer p.Close()
	for iter := 0; iter < 50; iter++ {
		task := &cancelTask{c: &Batch{}, trip: 2}
		p.RunBatch(10000, 5, task, task.c)
		before := task.units.Load()
		// Any straggler still inside Run would bump units after return;
		// the read-read pair under -race is the real assertion.
		if after := task.units.Load(); after != before {
			t.Fatalf("iter %d: task still running after cancelled RunBatch returned", iter)
		}
	}
}
