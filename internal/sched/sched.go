// Package sched provides the process-wide persistent worker pool behind
// every parallel execution path: the BFC unit grids, the Ŵ-cache fill
// pass, the forward/backward-data row loops and the 3-D task grids all
// schedule onto the same parked workers, so concurrent callers (e.g.
// simultaneous winrs-serve requests) co-schedule instead of each spawning
// and tearing down a private goroutine set per call.
//
// The design mirrors GPU-style persistent blocks with chunked
// self-scheduling: a Pool of width W keeps W−1 goroutines parked on a
// channel (the submitting goroutine is the W-th participant), and a
// submitted batch is claimed in chunks of consecutive indices — one
// atomic add per chunk, not per unit — until the index space is
// exhausted. Helpers are recruited best-effort: when every worker is busy
// with other batches the submitter still drives its own batch to
// completion alone, so admission never deadlocks and tail latency under
// load degrades to the serial time of one request rather than to
// oversubscription collapse.
//
// The steady-state hot path allocates nothing: batch descriptors are
// pooled, publication is a pointer send on a buffered channel, and
// completion is an atomic unit count plus one buffered-channel signal.
package sched

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// Task is a batch of units indexed [0, total) whose sub-ranges can run
// independently and in any order. Implementations must be safe for
// concurrent Run calls on disjoint ranges.
type Task interface {
	// Run executes units [lo, hi).
	Run(lo, hi int)
}

// funcTask adapts a closure to Task (convenience paths; boxing may
// allocate, so zero-alloc callers implement Task on a reused struct).
type funcTask func(lo, hi int)

func (f funcTask) Run(lo, hi int) { f(lo, hi) }

// Batch is the cancellation handle of one (or several chained) submitted
// runs. The zero value is ready to use: pass it to RunBatch, and Cancel it
// from any goroutine to stop the run at the next chunk claim. Cancellation
// is cooperative and chunk-granular — chunks already claimed finish, every
// later claim is skipped (but still accounted, so RunBatch returns through
// the normal completion protocol and the caller may immediately reuse or
// recycle the task's state). A cancelled run's partial results are
// unspecified; callers discard them.
type Batch struct {
	cancelled atomic.Bool
}

// Cancel requests the batch stop at the next chunk claim. Idempotent and
// safe from any goroutine.
func (b *Batch) Cancel() { b.cancelled.Store(true) }

// Cancelled reports whether Cancel has been called. A nil handle is never
// cancelled, so unconditional checks need no guard.
func (b *Batch) Cancelled() bool { return b != nil && b.cancelled.Load() }

// batch is one submitted run. Participants claim chunks off next until it
// passes total; whoever completes the final unit signals done. refs
// counts everyone holding a pointer to the batch (submitter + delivered
// channel tokens) so the descriptor returns to the pool only when no
// goroutine can still touch it.
type batch struct {
	task      Task
	cancel    *Batch // optional cancellation handle; nil = not cancellable
	next      atomic.Int64
	completed atomic.Int64
	total     int64
	chunk     int64
	refs      atomic.Int64
	done      chan struct{}
}

var batchPool = sync.Pool{
	New: func() any { return &batch{done: make(chan struct{}, 1)} },
}

// runChunks claims and executes chunks until the index space is
// exhausted, reporting whether this participant completed the final unit.
// Once the batch is cancelled, claims keep draining the index space
// without running the task — one atomic add per skipped chunk — so the
// completion count still reaches total and every waiter unblocks.
func (b *batch) runChunks() (finishedLast bool) {
	for {
		hi := b.next.Add(b.chunk)
		lo := hi - b.chunk
		if lo >= b.total {
			return false
		}
		if hi > b.total {
			hi = b.total
		}
		if !b.cancel.Cancelled() {
			b.task.Run(int(lo), int(hi))
		}
		if b.completed.Add(hi-lo) == b.total {
			return true
		}
	}
}

// release drops one reference and recycles the descriptor when it was the
// last. Safe to call from any participant; by construction the last
// release happens after every chunk has finished.
func (b *batch) release() {
	if b.refs.Add(-1) == 0 {
		b.task = nil
		b.cancel = nil
		batchPool.Put(b)
	}
}

// Pool is a persistent worker pool of the given width: width−1 goroutines
// parked on a channel plus the submitting goroutine. A nil or width-1
// Pool runs every batch inline on the caller.
type Pool struct {
	ch    chan *batch
	width int
}

// NewPool starts a pool of the given width (clamped to ≥1). The parked
// workers live for the life of the process unless Close is called.
func NewPool(width int) *Pool {
	if width < 1 {
		width = 1
	}
	p := &Pool{width: width}
	if width > 1 {
		// Buffered so recruiting helpers never blocks the submitter; a
		// token that is never picked up costs one stale receive later.
		p.ch = make(chan *batch, 8*width)
		for i := 0; i < width-1; i++ {
			go p.worker()
		}
	}
	return p
}

var (
	defaultOnce sync.Once
	defaultPool *Pool
)

// Default returns the shared process-wide pool, sized to GOMAXPROCS at
// first use.
func Default() *Pool {
	defaultOnce.Do(func() { defaultPool = NewPool(runtime.GOMAXPROCS(0)) })
	return defaultPool
}

// Workers returns the pool's parallelism width (including the submitter).
func (p *Pool) Workers() int {
	if p == nil {
		return 1
	}
	return p.width
}

// Close parks no more work and lets the worker goroutines exit. It must
// only be called after every Run has returned (tests; production pools
// live for the process lifetime).
func (p *Pool) Close() {
	if p != nil && p.ch != nil {
		close(p.ch)
	}
}

// worker is one parked participant: it sleeps on the channel, helps drive
// whatever batch it receives to exhaustion, and goes back to sleep.
func (p *Pool) worker() {
	for b := range p.ch {
		if b.runChunks() {
			b.done <- struct{}{}
		}
		b.release()
	}
}

// Run executes task over the index range [0, total), splitting it into
// chunks that participants claim with one atomic add each. chunk ≤ 0
// selects an automatic grain (≈4 chunks per participant, so stragglers
// re-balance without per-unit contention). The calling goroutine always
// participates and Run returns only when every unit has completed;
// results therefore have the same happens-before edge as a serial loop.
func (p *Pool) Run(total, chunk int, task Task) {
	p.RunBatch(total, chunk, task, nil)
}

// RunBatch is Run with a cancellation handle: while c stays uncancelled
// the execution is identical to Run (a nil c costs one predictable branch
// per chunk), and once c.Cancel is called — from any goroutine, typically
// a context watcher — no further chunk starts. RunBatch still returns only
// when every claimed chunk has finished and the remaining index space has
// been drained, so the happens-before edge of Run is preserved: after a
// cancelled RunBatch returns, no participant touches the task again.
func (p *Pool) RunBatch(total, chunk int, task Task, c *Batch) {
	if total <= 0 || c.Cancelled() {
		return
	}
	width := p.Workers()
	// Respect a runtime GOMAXPROCS drop: a wide pool in a single-proc
	// process (the CI GOMAXPROCS=1 leg) degrades to the inline path.
	if g := runtime.GOMAXPROCS(0); width > g {
		width = g
	}
	if chunk < 1 {
		// Ceiling division: flooring undersizes the chunk whenever
		// width·4 does not divide total, producing up to width·4 extra
		// queue transitions per batch — measurable on the fused kernel
		// tier, whose per-unit work is now short enough that dispatch
		// overhead shows. Ceil keeps at most 4·width chunks.
		chunk = (total + width*4 - 1) / (width * 4)
		if chunk < 1 {
			chunk = 1
		}
	}
	helpers := width - 1
	if maxHelpers := (total+chunk-1)/chunk - 1; helpers > maxHelpers {
		helpers = maxHelpers
	}
	if helpers <= 0 || p == nil || p.ch == nil {
		if c == nil {
			task.Run(0, total)
			return
		}
		// Inline, but chunked: a cancel from another goroutine still takes
		// effect at chunk granularity instead of after the whole range.
		for lo := 0; lo < total && !c.Cancelled(); lo += chunk {
			hi := lo + chunk
			if hi > total {
				hi = total
			}
			task.Run(lo, hi)
		}
		return
	}

	b := batchPool.Get().(*batch)
	b.task = task
	b.cancel = c
	b.total = int64(total)
	b.chunk = int64(chunk)
	b.next.Store(0)
	b.completed.Store(0)
	// Publish refs before any token is visible to a worker, then correct
	// for tokens that did not fit the channel. The submitter's own
	// reference keeps the count positive throughout the adjustment.
	b.refs.Store(int64(helpers) + 1)
	sent := 0
	for i := 0; i < helpers; i++ {
		select {
		case p.ch <- b:
			sent++
		default:
			// Every worker is busy and the queue is full: the submitter
			// (plus already-recruited helpers) carries the batch.
			i = helpers
		}
	}
	if sent < helpers {
		b.refs.Add(int64(sent - helpers))
	}

	if !b.runChunks() {
		// Some helper is still inside a claimed chunk; it signals done
		// after completing the final unit.
		<-b.done
	}
	b.release()
}

// RunFunc is Run with a plain function (boxing the closure may allocate;
// hot paths implement Task instead).
func (p *Pool) RunFunc(total, chunk int, f func(lo, hi int)) {
	p.Run(total, chunk, funcTask(f))
}
