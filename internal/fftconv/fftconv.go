package fftconv

import (
	"winrs/internal/conv"
	"winrs/internal/sched"
	"winrs/internal/tensor"
)

// PlaneSize returns the FFT plane extents (Lh, Lw): powers of two covering
// the zero-padded input, which keeps the circular correlation free of
// wraparound for all filter offsets.
func PlaneSize(p conv.Params) (lh, lw int) {
	return NextPow2(p.IH + 2*p.PH), NextPow2(p.IW + 2*p.PW)
}

// planeSize is the internal alias of PlaneSize.
func planeSize(p conv.Params) (lh, lw int) { return PlaneSize(p) }

// ModelWorkspace returns the workspace the modelled GPU FFT algorithm
// allocates, in bytes: complex64 spectrum planes for every (n, ic) input,
// every (n, oc) gradient and every (oc, ic) accumulator — the fbfft layout.
// This is the quantity entering the Table 2 comparison.
func ModelWorkspace(p conv.Params) int64 {
	lh, lw := planeSize(p)
	planes := int64(p.N)*int64(p.IC) + int64(p.N)*int64(p.OC) +
		int64(p.OC)*int64(p.IC)
	return planes * int64(lh) * int64(lw) * 8 // complex64
}

// BackwardFilter computes ∇W via FFT correlation. Arithmetic runs in
// complex128 for spectral stability (cuDNN's FP32 FFT achieves ~1e-7 MARE;
// ours is bounded by the float32 quantization of inputs and outputs), and
// the result is rounded to float32.
func BackwardFilter(p conv.Params, x, dy *tensor.Float32) *tensor.Float32 {
	if err := p.Validate(); err != nil {
		panic(err)
	}
	if x.Shape != p.XShape() || dy.Shape != p.DYShape() {
		panic("fftconv: operand shape mismatch")
	}
	lh, lw := planeSize(p)
	plane := lh * lw
	oh, ow := p.OH(), p.OW()

	// Stage 1: forward transforms of all X planes (with explicit zero
	// padding) and all ∇Y planes.
	xSpec := make([]complex128, p.N*p.IC*plane)
	ySpec := make([]complex128, p.N*p.OC*plane)
	parallelFor(p.N*p.IC, func(idx int) {
		n, ic := idx/p.IC, idx%p.IC
		buf := xSpec[idx*plane : (idx+1)*plane]
		for ih := 0; ih < p.IH; ih++ {
			for iw := 0; iw < p.IW; iw++ {
				buf[(ih+p.PH)*lw+(iw+p.PW)] = complex(float64(x.At(n, ih, iw, ic)), 0)
			}
		}
		FFT2D(buf, lh, lw)
	})
	parallelFor(p.N*p.OC, func(idx int) {
		n, oc := idx/p.OC, idx%p.OC
		buf := ySpec[idx*plane : (idx+1)*plane]
		for y := 0; y < oh; y++ {
			for xw := 0; xw < ow; xw++ {
				buf[y*lw+xw] = complex(float64(dy.At(n, y, xw, oc)), 0)
			}
		}
		FFT2D(buf, lh, lw)
	})

	// Stage 2+3: per (oc, ic) pair, accumulate X̂ ⊙ conj(Ŷ) over the batch
	// (the EWM), then inverse-transform and read the F_H×F_W corner (the
	// correlation at filter offsets).
	dw := tensor.NewFloat32(p.DWShape())
	parallelFor(p.OC*p.IC, func(idx int) {
		oc, ic := idx/p.IC, idx%p.IC
		acc := make([]complex128, plane)
		for n := 0; n < p.N; n++ {
			xb := xSpec[(n*p.IC+ic)*plane : (n*p.IC+ic+1)*plane]
			yb := ySpec[(n*p.OC+oc)*plane : (n*p.OC+oc+1)*plane]
			for i := 0; i < plane; i++ {
				yc := yb[i]
				acc[i] += xb[i] * complex(real(yc), -imag(yc))
			}
		}
		IFFT2D(acc, lh, lw)
		for fh := 0; fh < p.FH; fh++ {
			for fw := 0; fw < p.FW; fw++ {
				dw.Set(oc, fh, fw, ic, float32(real(acc[fh*lw+fw])))
			}
		}
	})
	return dw
}

// testPool, when non-nil, overrides the shared pool — tests inject a
// fixed-width pool to exercise parallel execution regardless of the host
// GOMAXPROCS (mirroring internal/core's pattern).
var testPool *sched.Pool

// parallelFor runs f(i) for i in [0,n) on the process-wide persistent
// sched pool: FFT stages co-schedule with every other parallel path
// instead of spawning an ad-hoc goroutine set per call, and effective
// width tracks the pool's GOMAXPROCS sizing. A chunk of 1 keeps the
// previous work distribution — each claim is one FFT plane (or one
// (oc,ic) accumulation), and planes are coarse enough that per-unit
// claims beat chunking for tail balance.
func parallelFor(n int, f func(i int)) {
	pool := testPool
	if pool == nil {
		pool = sched.Default()
	}
	pool.RunFunc(n, 1, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			f(i)
		}
	})
}
