package fftconv

import (
	"math"
	"math/cmplx"
	"math/rand"
	"testing"

	"winrs/internal/conv"
	"winrs/internal/tensor"
)

func TestNextPow2(t *testing.T) {
	cases := map[int]int{1: 1, 2: 2, 3: 4, 4: 4, 5: 8, 17: 32, 224: 256, 1024: 1024}
	for in, want := range cases {
		if got := NextPow2(in); got != want {
			t.Errorf("NextPow2(%d) = %d, want %d", in, got, want)
		}
	}
}

// naiveDFT is the O(n²) reference.
func naiveDFT(x []complex128, inverse bool) []complex128 {
	n := len(x)
	out := make([]complex128, n)
	sign := -1.0
	if inverse {
		sign = 1.0
	}
	for k := 0; k < n; k++ {
		var s complex128
		for j := 0; j < n; j++ {
			ang := sign * 2 * math.Pi * float64(k) * float64(j) / float64(n)
			s += x[j] * cmplx.Exp(complex(0, ang))
		}
		out[k] = s
	}
	return out
}

func maxCDiff(a, b []complex128) float64 {
	var m float64
	for i := range a {
		if d := cmplx.Abs(a[i] - b[i]); d > m {
			m = d
		}
	}
	return m
}

func randComplex(n int, rng *rand.Rand) []complex128 {
	x := make([]complex128, n)
	for i := range x {
		x[i] = complex(rng.Float64()*2-1, rng.Float64()*2-1)
	}
	return x
}

func TestFFTMatchesNaiveDFT(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, n := range []int{1, 2, 4, 8, 16, 64, 256} {
		x := randComplex(n, rng)
		got := make([]complex128, n)
		copy(got, x)
		FFT(got)
		want := naiveDFT(x, false)
		if d := maxCDiff(got, want); d > 1e-9*float64(n) {
			t.Errorf("n=%d: max diff %v", n, d)
		}
	}
}

func TestIFFTInvertsFFT(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for _, n := range []int{2, 8, 128, 1024} {
		x := randComplex(n, rng)
		y := make([]complex128, n)
		copy(y, x)
		FFT(y)
		IFFT(y)
		if d := maxCDiff(x, y); d > 1e-10*float64(n) {
			t.Errorf("n=%d: round trip diff %v", n, d)
		}
	}
}

func TestFFTNonPow2Panics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic for length 6")
		}
	}()
	FFT(make([]complex128, 6))
}

// Bluestein path: arbitrary lengths against the naive DFT.
func TestFFTAnyArbitraryLengths(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for _, n := range []int{1, 3, 5, 6, 7, 12, 15, 17, 100, 224} {
		x := randComplex(n, rng)
		got := FFTAny(x)
		want := naiveDFT(x, false)
		if d := maxCDiff(got, want); d > 1e-8*float64(n) {
			t.Errorf("FFTAny n=%d: max diff %v", n, d)
		}
		back := IFFTAny(got)
		if d := maxCDiff(back, x); d > 1e-8*float64(n) {
			t.Errorf("IFFTAny n=%d: round trip diff %v", n, d)
		}
	}
}

// Parseval: energy preserved (with 1/N on inverse convention, forward grows
// by N).
func TestParseval(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	n := 256
	x := randComplex(n, rng)
	var eTime float64
	for _, v := range x {
		eTime += real(v)*real(v) + imag(v)*imag(v)
	}
	y := make([]complex128, n)
	copy(y, x)
	FFT(y)
	var eFreq float64
	for _, v := range y {
		eFreq += real(v)*real(v) + imag(v)*imag(v)
	}
	if math.Abs(eFreq/float64(n)-eTime) > 1e-8*eTime {
		t.Errorf("Parseval violated: time %v, freq/N %v", eTime, eFreq/float64(n))
	}
}

func TestFFT2DRoundTripAndImpulse(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	rows, cols := 8, 16
	x := randComplex(rows*cols, rng)
	y := make([]complex128, len(x))
	copy(y, x)
	FFT2D(y, rows, cols)
	IFFT2D(y, rows, cols)
	if d := maxCDiff(x, y); d > 1e-10*float64(rows*cols) {
		t.Errorf("2D round trip diff %v", d)
	}
	// Impulse at origin transforms to all-ones.
	imp := make([]complex128, rows*cols)
	imp[0] = 1
	FFT2D(imp, rows, cols)
	for i, v := range imp {
		if cmplx.Abs(v-1) > 1e-12 {
			t.Fatalf("impulse spectrum[%d] = %v, want 1", i, v)
		}
	}
}

func TestBackwardFilterMatchesDirect(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	for trial := 0; trial < 6; trial++ {
		p := conv.Params{
			N:  1 + rng.Intn(3),
			IH: 5 + rng.Intn(10),
			IW: 5 + rng.Intn(10),
			FH: 1 + rng.Intn(4),
			FW: 1 + rng.Intn(4),
			IC: 1 + rng.Intn(3),
			OC: 1 + rng.Intn(3),
			PH: rng.Intn(2),
			PW: rng.Intn(2),
		}
		if p.Validate() != nil {
			continue
		}
		x64 := tensor.NewFloat64(p.XShape())
		dy64 := tensor.NewFloat64(p.DYShape())
		for i := range x64.Data {
			x64.Data[i] = rng.Float64()*2 - 1
		}
		for i := range dy64.Data {
			dy64.Data[i] = rng.Float64()*2 - 1
		}
		want := conv.BackwardFilterDirect64(p, x64, dy64)
		got := BackwardFilter(p, x64.ToFloat32(), dy64.ToFloat32())
		if m := tensor.MARE(got, want); m > 1e-5 {
			t.Errorf("trial %d %v: MARE %v", trial, p, m)
		}
	}
}

// FFT BFC accuracy on uniform [0,1) inputs should be in the Cu-FFT band
// (~1e-7 or better), clearly better than a long sequential float32 sum.
func TestBackwardFilterAccuracyBand(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	p := conv.Params{N: 4, IH: 16, IW: 16, FH: 3, FW: 3, IC: 4, OC: 4, PH: 1, PW: 1}
	x64 := tensor.NewFloat64(p.XShape())
	dy64 := tensor.NewFloat64(p.DYShape())
	for i := range x64.Data {
		x64.Data[i] = rng.Float64()
	}
	for i := range dy64.Data {
		dy64.Data[i] = rng.Float64()
	}
	want := conv.BackwardFilterDirect64(p, x64, dy64)
	got := BackwardFilter(p, x64.ToFloat32(), dy64.ToFloat32())
	if m := tensor.MARE(got, want); m > 5e-7 {
		t.Errorf("MARE %v, want Cu-FFT band (<5e-7)", m)
	}
}

// Workspace model: the fbfft layout and its explosive growth for small
// channels / large features (the paper's Observation 1 driver).
func TestModelWorkspace(t *testing.T) {
	p := conv.Params{N: 32, IH: 56, IW: 56, FH: 3, FW: 3, IC: 64, OC: 64, PH: 1, PW: 1}
	lh, lw := NextPow2(58), NextPow2(58) // 64x64
	want := int64(32*64+32*64+64*64) * int64(lh*lw) * 8
	if got := ModelWorkspace(p); got != want {
		t.Errorf("ModelWorkspace = %d, want %d", got, want)
	}
	// The workspace must be several times the data size (paper: ≥3.11×).
	if ratio := float64(ModelWorkspace(p)) / float64(p.DataBytes32()); ratio < 3 {
		t.Errorf("FFT workspace ratio %v, expected >3x data size", ratio)
	}
}

func TestBackwardFilterShapeMismatchPanics(t *testing.T) {
	p := conv.Params{N: 1, IH: 4, IW: 4, FH: 3, FW: 3, IC: 1, OC: 1, PH: 1, PW: 1}
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	BackwardFilter(p, tensor.NewFloat32(tensor.Shape{N: 1, H: 3, W: 4, C: 1}),
		tensor.NewFloat32(p.DYShape()))
}

func BenchmarkFFT1024(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	x := randComplex(1024, rng)
	buf := make([]complex128, len(x))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		copy(buf, x)
		FFT(buf)
	}
}

func BenchmarkBackwardFilterFFT(b *testing.B) {
	p := conv.Params{N: 2, IH: 32, IW: 32, FH: 3, FW: 3, IC: 8, OC: 8, PH: 1, PW: 1}
	rng := rand.New(rand.NewSource(1))
	x := tensor.NewFloat32(p.XShape())
	dy := tensor.NewFloat32(p.DYShape())
	x.FillUniform(rng, 0, 1)
	dy.FillUniform(rng, 0, 1)
	b.SetBytes(p.DataBytes32())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = BackwardFilter(p, x, dy)
	}
}
