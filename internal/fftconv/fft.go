// Package fftconv implements backward-filter convolution via the Fast
// Fourier Transform — the stand-in for cuDNN's FFT BFC algorithm (Cu-FFT).
//
// The algorithm follows the fbfft structure: every input plane X[n,:,:,ic]
// and gradient plane ∇Y[n,:,:,oc] is transformed once, the spectra are
// multiplied and accumulated per (oc, ic) pair across the batch, and one
// inverse transform per (oc, ic) recovers the correlation, from which the
// F_H×F_W filter gradient is read. The three spectrum arrays — input,
// gradient and accumulated output — are exactly the "several times the
// data size" workspace the paper criticizes (Table 2: 3.11× to 30.4×).
package fftconv

import (
	"math"
	"math/bits"
	"math/cmplx"
)

// NextPow2 returns the smallest power of two ≥ n (n ≥ 1).
func NextPow2(n int) int {
	if n <= 1 {
		return 1
	}
	return 1 << bits.Len(uint(n-1))
}

// FFT performs an in-place forward radix-2 Cooley–Tukey transform. The
// length of x must be a power of two.
func FFT(x []complex128) {
	fftRadix2(x, false)
}

// IFFT performs an in-place inverse transform including the 1/N scaling.
// The length of x must be a power of two.
func IFFT(x []complex128) {
	fftRadix2(x, true)
	scale := complex(1/float64(len(x)), 0)
	for i := range x {
		x[i] *= scale
	}
}

func fftRadix2(x []complex128, inverse bool) {
	n := len(x)
	if n&(n-1) != 0 {
		panic("fftconv: FFT length must be a power of two")
	}
	if n <= 1 {
		return
	}
	// Bit-reversal permutation.
	shift := 64 - uint(bits.Len(uint(n-1)))
	for i := 0; i < n; i++ {
		j := int(bits.Reverse64(uint64(i)) >> shift)
		if j > i {
			x[i], x[j] = x[j], x[i]
		}
	}
	sign := -1.0
	if inverse {
		sign = 1.0
	}
	for size := 2; size <= n; size <<= 1 {
		half := size >> 1
		step := sign * 2 * math.Pi / float64(size)
		wBase := cmplx.Exp(complex(0, step))
		for start := 0; start < n; start += size {
			w := complex(1, 0)
			for k := 0; k < half; k++ {
				a := x[start+k]
				b := x[start+k+half] * w
				x[start+k] = a + b
				x[start+k+half] = a - b
				w *= wBase
			}
		}
	}
}

// FFTAny computes the forward DFT of x of arbitrary length, using radix-2
// directly for power-of-two lengths and Bluestein's chirp-z algorithm
// otherwise. It returns a new slice.
func FFTAny(x []complex128) []complex128 {
	n := len(x)
	out := make([]complex128, n)
	copy(out, x)
	if n == 0 {
		return out
	}
	if n&(n-1) == 0 {
		FFT(out)
		return out
	}
	return bluestein(out, false)
}

// IFFTAny computes the inverse DFT (with 1/N scaling) of arbitrary length.
func IFFTAny(x []complex128) []complex128 {
	n := len(x)
	out := make([]complex128, n)
	copy(out, x)
	if n == 0 {
		return out
	}
	if n&(n-1) == 0 {
		IFFT(out)
		return out
	}
	out = bluestein(out, true)
	scale := complex(1/float64(n), 0)
	for i := range out {
		out[i] *= scale
	}
	return out
}

// bluestein evaluates the DFT of arbitrary length n as a convolution of
// length 2n-1 carried on a power-of-two FFT ("chirp-z transform").
func bluestein(x []complex128, inverse bool) []complex128 {
	n := len(x)
	sign := -1.0
	if inverse {
		sign = 1.0
	}
	// Chirp w[k] = exp(sign·iπk²/n). k² mod 2n avoids precision loss for
	// large k.
	chirp := make([]complex128, n)
	for k := 0; k < n; k++ {
		k2 := (int64(k) * int64(k)) % int64(2*n)
		ang := sign * math.Pi * float64(k2) / float64(n)
		chirp[k] = cmplx.Exp(complex(0, ang))
	}
	m := NextPow2(2*n - 1)
	a := make([]complex128, m)
	b := make([]complex128, m)
	for k := 0; k < n; k++ {
		a[k] = x[k] * chirp[k]
		b[k] = cmplx.Conj(chirp[k])
	}
	for k := 1; k < n; k++ {
		b[m-k] = cmplx.Conj(chirp[k])
	}
	FFT(a)
	FFT(b)
	for i := range a {
		a[i] *= b[i]
	}
	IFFT(a)
	out := make([]complex128, n)
	for k := 0; k < n; k++ {
		out[k] = a[k] * chirp[k]
	}
	return out
}

// FFT2D transforms a rows×cols row-major plane in place (rows then
// columns). Both extents must be powers of two.
func FFT2D(x []complex128, rows, cols int) {
	fft2d(x, rows, cols, false)
}

// IFFT2D inverse-transforms a rows×cols row-major plane in place with full
// 1/(rows·cols) scaling.
func IFFT2D(x []complex128, rows, cols int) {
	fft2d(x, rows, cols, true)
	scale := complex(1/float64(rows*cols), 0)
	for i := range x {
		x[i] *= scale
	}
}

func fft2d(x []complex128, rows, cols int, inverse bool) {
	if len(x) != rows*cols {
		panic("fftconv: FFT2D size mismatch")
	}
	for r := 0; r < rows; r++ {
		fftRadix2(x[r*cols:(r+1)*cols], inverse)
	}
	col := make([]complex128, rows)
	for c := 0; c < cols; c++ {
		for r := 0; r < rows; r++ {
			col[r] = x[r*cols+c]
		}
		fftRadix2(col, inverse)
		for r := 0; r < rows; r++ {
			x[r*cols+c] = col[r]
		}
	}
}
