// Package loadtest holds the multi-process serving load test: it builds
// the real winrs-serve and winrs-router binaries, runs a two-node fleet
// behind the router as separate OS processes, and drives mixed-geometry
// load through the front — asserting shard stickiness, live drain with
// zero dropped in-flight requests, and recording a saturation row into a
// bench report (see internal/benchfmt).
//
// The test is expensive (it compiles two binaries and saturates the
// machine), so it is gated behind the "loadtest" build tag:
//
//	go test -tags loadtest ./internal/loadtest
//
// or `make saturate`. Set WINRS_LOADTEST_BENCH to a bench-report path to
// merge the measured saturation row into it.
package loadtest
