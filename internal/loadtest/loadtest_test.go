//go:build loadtest

package loadtest

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"winrs"
	"winrs/internal/benchfmt"
	"winrs/internal/conv"
	"winrs/internal/serve"
	"winrs/internal/tensor"
)

// oracle computes the expected gradient through the library entry point —
// the same oracle every in-process serve test pins against.
func oracle(p conv.Params, x, dy *tensor.Float32) (*tensor.Float32, error) {
	return winrs.BackwardFilter(p, x, dy)
}

// fleet is a running two-node shard fleet: real winrs-serve processes
// behind a real winrs-router process.
type fleet struct {
	frontURL string
	nodeURLs []string
	procs    []*exec.Cmd
}

// buildBinaries compiles winrs-serve and winrs-router into dir.
func buildBinaries(t *testing.T, dir string) (serveBin, routerBin string) {
	t.Helper()
	serveBin = filepath.Join(dir, "winrs-serve")
	routerBin = filepath.Join(dir, "winrs-router")
	for bin, pkg := range map[string]string{
		serveBin:  "winrs/cmd/winrs-serve",
		routerBin: "winrs/cmd/winrs-router",
	} {
		cmd := exec.Command("go", "build", "-o", bin, pkg)
		cmd.Dir = "../.." // module root
		if out, err := cmd.CombinedOutput(); err != nil {
			t.Fatalf("go build %s: %v\n%s", pkg, err, out)
		}
	}
	return serveBin, routerBin
}

// freePort reserves an ephemeral port and releases it for the child
// process to claim.
func freePort(t *testing.T) int {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	port := ln.Addr().(*net.TCPAddr).Port
	ln.Close()
	return port
}

// awaitHealthy polls url/healthz until it answers 200.
func awaitHealthy(t *testing.T, url string) {
	t.Helper()
	deadline := time.Now().Add(15 * time.Second)
	for time.Now().Before(deadline) {
		resp, err := http.Get(url + "/healthz")
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return
			}
		}
		time.Sleep(50 * time.Millisecond)
	}
	t.Fatalf("%s never became healthy", url)
}

// startFleet launches two batching shard nodes and the router fronting
// them, all as real processes, and waits for every /healthz.
func startFleet(t *testing.T) *fleet {
	t.Helper()
	dir := t.TempDir()
	serveBin, routerBin := buildBinaries(t, dir)

	f := &fleet{}
	for i := 0; i < 2; i++ {
		port := freePort(t)
		url := fmt.Sprintf("http://127.0.0.1:%d", port)
		cmd := exec.Command(serveBin,
			"-addr", fmt.Sprintf("127.0.0.1:%d", port),
			"-workers", "2", "-queue", "256",
			"-batch-max", "16", "-batch-linger", "500us")
		cmd.Stdout, cmd.Stderr = os.Stderr, os.Stderr
		if err := cmd.Start(); err != nil {
			t.Fatal(err)
		}
		f.procs = append(f.procs, cmd)
		f.nodeURLs = append(f.nodeURLs, url)
	}
	port := freePort(t)
	f.frontURL = fmt.Sprintf("http://127.0.0.1:%d", port)
	router := exec.Command(routerBin,
		"-addr", fmt.Sprintf("127.0.0.1:%d", port),
		"-node", f.nodeURLs[0]+","+f.nodeURLs[1])
	router.Stdout, router.Stderr = os.Stderr, os.Stderr
	if err := router.Start(); err != nil {
		t.Fatal(err)
	}
	f.procs = append(f.procs, router)

	t.Cleanup(func() {
		for _, p := range f.procs {
			p.Process.Kill()
			p.Wait()
		}
	})
	for _, url := range f.nodeURLs {
		awaitHealthy(t, url)
	}
	awaitHealthy(t, f.frontURL)
	return f
}

// workload is one geometry's framed request plus its expected response.
type workload struct {
	body []byte
	want []byte
}

// buildWorkloads frames n distinct geometries with their oracle gradients
// (computed via the library entry point, the same oracle the serve tests
// pin against).
func buildWorkloads(t *testing.T, n int) []workload {
	t.Helper()
	out := make([]workload, n)
	for i := range out {
		p := conv.Params{
			N: 1, IH: 10 + 2*(i%6), IW: 10 + 2*(i%6), FH: 3, FW: 3,
			IC: 1 + i%3, OC: 1 + i/6 + i%2, PH: 1, PW: 1,
		}
		rng := rand.New(rand.NewSource(int64(900 + i)))
		x := tensor.NewFloat32(p.XShape())
		dy := tensor.NewFloat32(p.DYShape())
		x.FillUniform(rng, -1, 1)
		dy.FillUniform(rng, -1, 1)
		dw, err := oracle(p, x, dy)
		if err != nil {
			t.Fatal(err)
		}
		body, err := serve.EncodeRequest(
			serve.RequestHeader{Op: "backward_filter", Params: p},
			serve.AppendF32(nil, x.Data), serve.AppendF32(nil, dy.Data))
		if err != nil {
			t.Fatal(err)
		}
		out[i] = workload{body: body, want: serve.AppendF32(nil, dw.Data)}
	}
	return out
}

// post sends one framed request and returns status, body, shard header.
func post(url string, body []byte) (int, []byte, string, error) {
	resp, err := http.Post(url+"/v1/backward_filter", "application/octet-stream",
		bytes.NewReader(body))
	if err != nil {
		return 0, nil, "", err
	}
	defer resp.Body.Close()
	out, err := io.ReadAll(resp.Body)
	return resp.StatusCode, out, resp.Header.Get("X-Winrs-Shard"), err
}

// plansCached reads one node's plan-cache population off /healthz.
func plansCached(t *testing.T, nodeURL string) int {
	t.Helper()
	resp, err := http.Get(nodeURL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var h struct {
		PlansCached int `json:"plans_cached"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
		t.Fatal(err)
	}
	return h.PlansCached
}

// TestLoadFleet is the whole multi-process scenario in one fleet run:
// mixed-geometry load through the router (every byte checked against the
// oracle), shard stickiness via fleet-wide plan counts, a live drain of
// one node with zero failed in-flight requests, and a saturation row
// merged into the bench report named by WINRS_LOADTEST_BENCH.
func TestLoadFleet(t *testing.T) {
	f := startFleet(t)
	loads := buildWorkloads(t, 18)
	clients := 4 * runtime.GOMAXPROCS(0)
	if clients > 24 {
		clients = 24
	}
	const perClient = 40

	// Phase 1: saturation sweep. Every response must be the oracle's
	// bytes; every geometry must stay on one shard.
	var failed atomic.Int64
	shardOf := make([]atomic.Value, len(loads)) // string per geometry
	latencies := make([]time.Duration, clients*perClient)
	var wg sync.WaitGroup
	t0 := time.Now()
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for i := 0; i < perClient; i++ {
				gi := (c + i) % len(loads)
				r0 := time.Now()
				status, out, shard, err := post(f.frontURL, loads[gi].body)
				latencies[c*perClient+i] = time.Since(r0)
				if err != nil || status != http.StatusOK || !bytes.Equal(out, loads[gi].want) {
					t.Errorf("client %d req %d (geo %d): status %d err %v", c, i, gi, status, err)
					failed.Add(1)
					continue
				}
				if prev := shardOf[gi].Swap(shard); prev != nil && prev.(string) != shard {
					t.Errorf("geo %d moved shards mid-run: %q then %q", gi, prev, shard)
				}
			}
		}(c)
	}
	wg.Wait()
	dur := time.Since(t0)
	if failed.Load() > 0 {
		t.Fatalf("%d requests failed during the saturation sweep", failed.Load())
	}

	// Stickiness, fleet-wide: each geometry planned exactly once, on
	// exactly one node.
	total := 0
	for _, url := range f.nodeURLs {
		n := plansCached(t, url)
		if n == 0 {
			t.Errorf("node %s served no geometries; the ring is not spreading", url)
		}
		total += n
	}
	if total != len(loads) {
		t.Errorf("fleet holds %d plans for %d geometries; stickiness leaked duplicates", total, len(loads))
	}

	// Phase 2: live drain under load. Keep a stream of requests going and
	// drain node 0 mid-stream; nothing may fail, and post-drain traffic
	// must avoid the drained node.
	stop := make(chan struct{})
	var drainFailed atomic.Int64
	var streamed atomic.Int64
	var streamWG sync.WaitGroup
	for c := 0; c < 4; c++ {
		streamWG.Add(1)
		go func(c int) {
			defer streamWG.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				gi := (c + i) % len(loads)
				status, out, _, err := post(f.frontURL, loads[gi].body)
				streamed.Add(1)
				if err != nil || status != http.StatusOK || !bytes.Equal(out, loads[gi].want) {
					drainFailed.Add(1)
					t.Errorf("in-flight request failed across drain: status %d err %v", status, err)
				}
			}
		}(c)
	}
	time.Sleep(200 * time.Millisecond) // let the stream saturate
	resp, err := http.Post(f.frontURL+"/admin/nodes/drain?node="+f.nodeURLs[0]+"&timeout=30s", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	drainBody, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("drain: status %d: %s", resp.StatusCode, drainBody)
	}
	time.Sleep(300 * time.Millisecond) // post-drain traffic
	close(stop)
	streamWG.Wait()

	for gi := range loads {
		status, _, shard, err := post(f.frontURL, loads[gi].body)
		if err != nil || status != http.StatusOK {
			t.Fatalf("geo %d after drain: status %d err %v", gi, status, err)
		}
		if shard == f.nodeURLs[0] {
			t.Errorf("geo %d routed to the drained node", gi)
		}
	}
	if n := drainFailed.Load(); n != 0 {
		t.Fatalf("%d in-flight requests failed across the live drain", n)
	}
	t.Logf("drain: %d streamed requests, 0 failed", streamed.Load())

	// Record the saturation row.
	sort.Slice(latencies, func(i, j int) bool { return latencies[i] < latencies[j] })
	pct := func(p float64) float64 {
		return float64(latencies[int(p*float64(len(latencies)-1))].Microseconds()) / 1e3
	}
	row := benchfmt.Saturation{
		Scenario:       "multiproc_router",
		Nodes:          2,
		Clients:        clients,
		Requests:       clients * perClient,
		Failed:         int(failed.Load()),
		DurationSec:    dur.Seconds(),
		Throughput:     float64(clients*perClient) / dur.Seconds(),
		P50Ms:          pct(0.50),
		P99Ms:          pct(0.99),
		Drained:        true,
		FailedInFlight: int(drainFailed.Load()),
	}
	t.Logf("saturation: %.0f req/s, p50 %.2fms, p99 %.2fms over %d nodes", row.Throughput, row.P50Ms, row.P99Ms, row.Nodes)
	if path := os.Getenv("WINRS_LOADTEST_BENCH"); path != "" {
		if err := mergeRow(path, row); err != nil {
			t.Fatalf("recording saturation row: %v", err)
		}
		t.Logf("saturation row merged into %s", path)
	}
}

// mergeRow merges one saturation row into the bench report at path,
// creating a minimal report when absent.
func mergeRow(path string, row benchfmt.Saturation) error {
	rep, err := benchfmt.Read(path)
	if err != nil {
		if !os.IsNotExist(err) {
			return err
		}
		rep = &benchfmt.Report{
			SchemaVersion: benchfmt.SchemaVersion,
			Date:          time.Now().UTC().Format("2006-01-02"),
			GoVersion:     runtime.Version(),
			GOMAXPROCS:    runtime.GOMAXPROCS(0),
			NumCPU:        runtime.NumCPU(),
			CalibrationNs: 1, // placeholder: this producer measures serving, not compute
		}
	}
	kept := rep.Saturation[:0:0]
	for _, s := range rep.Saturation {
		if s.Scenario != row.Scenario {
			kept = append(kept, s)
		}
	}
	rep.Saturation = append(kept, row)
	return rep.Write(path)
}
