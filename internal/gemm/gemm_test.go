package gemm

import (
	"math"
	"math/rand"
	"testing"

	"winrs/internal/conv"
	"winrs/internal/tensor"
)

func randCase(rng *rand.Rand) (conv.Params, *tensor.Float32, *tensor.Float32, *tensor.Float64) {
	p := conv.Params{
		N:  1 + rng.Intn(3),
		IH: 4 + rng.Intn(8),
		IW: 4 + rng.Intn(8),
		FH: 1 + rng.Intn(3),
		FW: 1 + rng.Intn(3),
		IC: 1 + rng.Intn(5),
		OC: 1 + rng.Intn(5),
		PH: rng.Intn(2),
		PW: rng.Intn(2),
	}
	x64 := tensor.NewFloat64(p.XShape())
	dy64 := tensor.NewFloat64(p.DYShape())
	for i := range x64.Data {
		x64.Data[i] = rng.Float64()*2 - 1
	}
	for i := range dy64.Data {
		dy64.Data[i] = rng.Float64()*2 - 1
	}
	want := conv.BackwardFilterDirect64(p, x64, dy64)
	return p, x64.ToFloat32(), dy64.ToFloat32(), want
}

func TestGemmSmall(t *testing.T) {
	// A (2x3) as K=2,M=3; B (2x2) K=2,N=2. C = Aᵀ·B (3x2).
	a := []float32{1, 2, 3, 4, 5, 6} // rows: [1 2 3], [4 5 6]
	b := []float32{7, 8, 9, 10}      // rows: [7 8], [9 10]
	c := make([]float32, 6)
	Gemm(a, b, c, 2, 3, 2)
	want := []float32{
		1*7 + 4*9, 1*8 + 4*10,
		2*7 + 5*9, 2*8 + 5*10,
		3*7 + 6*9, 3*8 + 6*10,
	}
	for i := range want {
		if c[i] != want[i] {
			t.Errorf("c[%d] = %v, want %v", i, c[i], want[i])
		}
	}
	// Accumulation: a second call must add on top.
	Gemm(a, b, c, 2, 3, 2)
	if c[0] != 2*want[0] {
		t.Error("Gemm must accumulate into C")
	}
}

func TestGemmDimensionPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	Gemm(make([]float32, 5), make([]float32, 4), make([]float32, 4), 2, 2, 2)
}

func TestGemmLargerRandomAgainstNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	k, m, n := 37, 65, 23 // deliberately non-multiples of the block size
	a := make([]float32, k*m)
	b := make([]float32, k*n)
	for i := range a {
		a[i] = rng.Float32()*2 - 1
	}
	for i := range b {
		b[i] = rng.Float32()*2 - 1
	}
	c := make([]float32, m*n)
	Gemm(a, b, c, k, m, n)
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			var s float64
			for kk := 0; kk < k; kk++ {
				s += float64(a[kk*m+i]) * float64(b[kk*n+j])
			}
			if math.Abs(float64(c[i*n+j])-s) > 1e-4 {
				t.Fatalf("c[%d,%d] = %v, want %v", i, j, c[i*n+j], s)
			}
		}
	}
}

func TestAlgosMatchDirect(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	algos := []struct {
		name string
		f    func(conv.Params, *tensor.Float32, *tensor.Float32) *tensor.Float32
	}{
		{"Algo0", Algo0},
		{"Algo1", Algo1},
		{"Algo3", Algo3},
	}
	for trial := 0; trial < 8; trial++ {
		p, x, dy, want := randCase(rng)
		for _, a := range algos {
			got := a.f(p, x, dy)
			if m := tensor.MARE(got, want); m > 1e-5 {
				t.Errorf("trial %d %s on %v: MARE %v", trial, a.name, p, m)
			}
		}
	}
}

// Accuracy ordering at long accumulation lengths: Algo0's pairwise
// accumulation must beat Algo1's sequential accumulation, mirroring the
// paper's Table 4 (Cu-Algo0 ~1e-7 vs Cu-Algo1 up to 1.78e-3).
func TestAlgo0BeatsAlgo1AtLongAccumulation(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	p := conv.Params{N: 8, IH: 34, IW: 34, FH: 3, FW: 3, IC: 2, OC: 2, PH: 1, PW: 1}
	x64 := tensor.NewFloat64(p.XShape())
	dy64 := tensor.NewFloat64(p.DYShape())
	// Uniform [0,1) inputs make every product positive, so sequential
	// accumulation error grows with length — the paper's setup.
	for i := range x64.Data {
		x64.Data[i] = rng.Float64()
	}
	for i := range dy64.Data {
		dy64.Data[i] = rng.Float64()
	}
	want := conv.BackwardFilterDirect64(p, x64, dy64)
	x, dy := x64.ToFloat32(), dy64.ToFloat32()
	m0 := tensor.MARE(Algo0(p, x, dy), want)
	m1 := tensor.MARE(Algo1(p, x, dy), want)
	if m0 > 5e-7 {
		t.Errorf("Algo0 MARE %v too large", m0)
	}
	if m1 <= m0 {
		t.Errorf("expected Algo1 (%v) to be less accurate than Algo0 (%v)", m1, m0)
	}
}

func TestWorkspaceAccounting(t *testing.T) {
	p := conv.Params{N: 32, IH: 224, IW: 224, FH: 3, FW: 3, IC: 64, OC: 64, PH: 1, PW: 1}
	// Algo1: chunked, K = 32·224·224 > 2^16 so chunk caps at 2^16 rows.
	wantAlgo1 := int64(1<<16) * 3 * 3 * 64 * 4
	if got := Algo1Workspace(p); got != wantAlgo1 {
		t.Errorf("Algo1Workspace = %d, want %d", got, wantAlgo1)
	}
	// Small case: K below the cap.
	ps := conv.Params{N: 1, IH: 6, IW: 6, FH: 3, FW: 3, IC: 2, OC: 2, PH: 1, PW: 1}
	wantSmall := int64(1*6*6) * 3 * 3 * 2 * 4
	if got := Algo1Workspace(ps); got != wantSmall {
		t.Errorf("Algo1Workspace small = %d, want %d", got, wantSmall)
	}
	// Algo3: (split-1) ∇W copies.
	wantAlgo3 := int64(Algo3SplitK-1) * int64(64*3*3*64) * 4
	if got := Algo3Workspace(p); got != wantAlgo3 {
		t.Errorf("Algo3Workspace = %d, want %d", got, wantAlgo3)
	}
}

// The chunk boundary of Algo1 must not change results (other than rounding):
// exercise a case whose K exceeds one chunk via a temporarily small chunk.
func TestAlgo1MultiChunkConsistency(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	p := conv.Params{N: 2, IH: 10, IW: 10, FH: 2, FW: 2, IC: 3, OC: 3}
	x64 := tensor.NewFloat64(p.XShape())
	dy64 := tensor.NewFloat64(p.DYShape())
	for i := range x64.Data {
		x64.Data[i] = rng.Float64()
	}
	for i := range dy64.Data {
		dy64.Data[i] = rng.Float64()
	}
	want := conv.BackwardFilterDirect64(p, x64, dy64)
	got := Algo1(p, x64.ToFloat32(), dy64.ToFloat32())
	if m := tensor.MARE(got, want); m > 1e-5 {
		t.Errorf("MARE %v", m)
	}
}

func BenchmarkAlgo0(b *testing.B) {
	benchAlgo(b, Algo0)
}

func BenchmarkAlgo1(b *testing.B) {
	benchAlgo(b, Algo1)
}

func BenchmarkAlgo3(b *testing.B) {
	benchAlgo(b, Algo3)
}

func benchAlgo(b *testing.B, f func(conv.Params, *tensor.Float32, *tensor.Float32) *tensor.Float32) {
	p := conv.Params{N: 4, IH: 32, IW: 32, FH: 3, FW: 3, IC: 16, OC: 16, PH: 1, PW: 1}
	rng := rand.New(rand.NewSource(1))
	x := tensor.NewFloat32(p.XShape())
	dy := tensor.NewFloat32(p.DYShape())
	x.FillUniform(rng, 0, 1)
	dy.FillUniform(rng, 0, 1)
	b.SetBytes(p.DataBytes32())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = f(p, x, dy)
	}
}

// Algo1Half must degrade with accumulation length (legacy FP16-accumulate
// HMMA semantics, the paper's Cu-Algo1 FP16 behaviour).
func TestAlgo1HalfDegradesWithAccumulation(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	mare := func(n, hw int) float64 {
		p := conv.Params{N: n, IH: hw, IW: hw, FH: 3, FW: 3, IC: 2, OC: 2, PH: 1, PW: 1}
		x64 := tensor.NewFloat64(p.XShape())
		dy64 := tensor.NewFloat64(p.DYShape())
		for i := range x64.Data {
			x64.Data[i] = rng.Float64()
		}
		for i := range dy64.Data {
			dy64.Data[i] = rng.Float64() * 0.01
		}
		xh := x64.ToFloat32().ToHalf()
		dyh := dy64.ToFloat32().ToHalf()
		want := conv.BackwardFilterDirect64(p, xh.ToFloat32().ToFloat64(),
			dyh.ToFloat32().ToFloat64())
		return tensor.MARE(Algo1Half(p, xh, dyh), want)
	}
	small := mare(1, 8)
	large := mare(8, 32)
	if large <= small {
		t.Errorf("expected degradation: small %v, large %v", small, large)
	}
	if large < 1e-2 {
		t.Errorf("large-accumulation FP16 error %v suspiciously small", large)
	}
}
