// Package gemm provides a blocked, parallel float32 matrix multiply and the
// three GEMM-based backward-filter convolution baselines that stand in for
// cuDNN's Cu-Algo0, Cu-Algo1 and Cu-Algo3:
//
//   - Algo0: implicit GEMM — patches are gathered on the fly, no workspace,
//     blocked (pairwise) accumulation for accuracy.
//   - Algo1: explicit im2col + GEMM — materializes patch chunks in a
//     workspace and accumulates sequentially, which degrades accuracy at
//     large accumulation lengths (the paper's Fig 12C behaviour).
//   - Algo3: split-K tiled GEMM — partial products per K-slice land in a
//     small workspace and are reduced, giving Algo0-like accuracy with a
//     modest workspace.
//
// BFC maps onto GEMM as ∇W[oc, (fh,fw,ic)] = Σ_k ∇Y_k[oc] · patch_k[(fh,fw,ic)]
// with the reduction axis k = (n, oh, ow) of length N·O_H·O_W.
package gemm

import (
	"runtime"
	"sync"

	"winrs/internal/conv"
	"winrs/internal/fp16"
	"winrs/internal/tensor"
)

// Gemm computes C = Aᵀ·B + C for row-major A (K×M), B (K×N), C (M×N),
// blocked over M and parallel across row blocks. The Aᵀ·B form matches the
// BFC reduction layout where K is the long axis.
func Gemm(a, b, c []float32, k, m, n int) {
	if len(a) != k*m || len(b) != k*n || len(c) != m*n {
		panic("gemm: dimension mismatch")
	}
	const blockM = 32
	blocks := (m + blockM - 1) / blockM
	parallelFor(blocks, func(bi int) {
		i0 := bi * blockM
		i1 := i0 + blockM
		if i1 > m {
			i1 = m
		}
		for kk := 0; kk < k; kk++ {
			arow := a[kk*m : (kk+1)*m]
			brow := b[kk*n : (kk+1)*n]
			for i := i0; i < i1; i++ {
				av := arow[i]
				if av == 0 {
					continue
				}
				crow := c[i*n : (i+1)*n]
				for j, bv := range brow {
					crow[j] += av * bv
				}
			}
		}
	})
}

// patchAt gathers X[n, oh+fh-pH, ow+fw-pW, ic] with implicit zero padding.
func patchAt(p conv.Params, x *tensor.Float32, n, oh, ow, fh, fw, ic int) float32 {
	ih := oh + fh - p.PH
	iw := ow + fw - p.PW
	if ih < 0 || ih >= p.IH || iw < 0 || iw >= p.IW {
		return 0
	}
	return x.At(n, ih, iw, ic)
}

// Algo0 computes BFC by implicit GEMM with no workspace. Accumulation over
// the K axis is pairwise-blocked (tree reduction over 256-element chunks),
// which keeps the float32 error near Cu-Algo0's ~1e-7 MARE even for very
// long reductions.
func Algo0(p conv.Params, x, dy *tensor.Float32) *tensor.Float32 {
	if err := p.Validate(); err != nil {
		panic(err)
	}
	dw := tensor.NewFloat32(p.DWShape())
	oh, ow := p.OH(), p.OW()
	kLen := p.N * oh * ow
	const chunk = 256
	parallelFor(p.OC, func(oc int) {
		for fh := 0; fh < p.FH; fh++ {
			for fw := 0; fw < p.FW; fw++ {
				for ic := 0; ic < p.IC; ic++ {
					// Pairwise accumulation: sum fixed-size chunks, then
					// sum the chunk totals.
					var total float64
					for k0 := 0; k0 < kLen; k0 += chunk {
						k1 := k0 + chunk
						if k1 > kLen {
							k1 = kLen
						}
						var partial float32
						for k := k0; k < k1; k++ {
							n := k / (oh * ow)
							rem := k % (oh * ow)
							y, xw := rem/ow, rem%ow
							partial += patchAt(p, x, n, y, xw, fh, fw, ic) *
								dy.At(n, y, xw, oc)
						}
						total += float64(partial)
					}
					dw.Set(oc, fh, fw, ic, float32(total))
				}
			}
		}
	})
	return dw
}

// Algo1ChunkRows is the number of K rows Algo1 materializes per im2col
// chunk. cuDNN's precomputed-index GEMM uses a bounded workspace rather
// than the full im2col matrix; the chunk size is calibrated so workspace
// lands in the 0.28×–2.21× data-size band of the paper's Table 2.
const Algo1ChunkRows = 1 << 16

// Algo1Workspace returns the workspace Algo1 allocates, in bytes: one
// im2col chunk of min(K, Algo1ChunkRows) rows by F_H·F_W·I_C columns.
func Algo1Workspace(p conv.Params) int64 {
	k := int64(p.N) * int64(p.OH()) * int64(p.OW())
	if k > Algo1ChunkRows {
		k = Algo1ChunkRows
	}
	return k * int64(p.FH) * int64(p.FW) * int64(p.IC) * 4
}

// Algo1 computes BFC by explicit chunked im2col + GEMM. Accumulation over K
// is plain sequential float32, so accuracy degrades as N·O_H·O_W grows —
// matching Cu-Algo1's measured behaviour (Table 4, Fig 12C).
func Algo1(p conv.Params, x, dy *tensor.Float32) *tensor.Float32 {
	if err := p.Validate(); err != nil {
		panic(err)
	}
	oh, ow := p.OH(), p.OW()
	m := p.OC
	nCols := p.FH * p.FW * p.IC
	kLen := p.N * oh * ow
	chunkRows := kLen
	if chunkRows > Algo1ChunkRows {
		chunkRows = Algo1ChunkRows
	}

	dwFlat := make([]float32, m*nCols)
	colBuf := make([]float32, chunkRows*nCols) // the workspace
	aBuf := make([]float32, chunkRows*m)

	for k0 := 0; k0 < kLen; k0 += chunkRows {
		k1 := k0 + chunkRows
		if k1 > kLen {
			k1 = kLen
		}
		rows := k1 - k0
		// Materialize the im2col chunk and the matching ∇Y rows.
		parallelFor(rows, func(ri int) {
			k := k0 + ri
			n := k / (oh * ow)
			rem := k % (oh * ow)
			y, xw := rem/ow, rem%ow
			dst := colBuf[ri*nCols : (ri+1)*nCols]
			idx := 0
			for fh := 0; fh < p.FH; fh++ {
				for fw := 0; fw < p.FW; fw++ {
					for ic := 0; ic < p.IC; ic++ {
						dst[idx] = patchAt(p, x, n, y, xw, fh, fw, ic)
						idx++
					}
				}
			}
			arow := aBuf[ri*m : (ri+1)*m]
			for oc := 0; oc < m; oc++ {
				arow[oc] = dy.At(n, y, xw, oc)
			}
		})
		Gemm(aBuf[:rows*m], colBuf[:rows*nCols], dwFlat, rows, m, nCols)
	}

	dw := tensor.NewFloat32(p.DWShape())
	copy(dw.Data, dwFlat)
	return dw
}

// Algo3SplitK is the number of K slices Algo3 reduces over.
const Algo3SplitK = 8

// Algo3Workspace returns the workspace Algo3 allocates: Algo3SplitK−1
// partial ∇W buffers (the first partial accumulates in place).
func Algo3Workspace(p conv.Params) int64 {
	return int64(Algo3SplitK-1) * tensor.Bytes32(p.DWShape())
}

// Algo3 computes BFC by split-K implicit GEMM: the K axis is cut into
// Algo3SplitK slices computed in parallel into separate partial buffers,
// which are then reduced. Accuracy matches Algo0 (each slice is shorter, and
// the final reduction is short), workspace is a few ∇W copies.
func Algo3(p conv.Params, x, dy *tensor.Float32) *tensor.Float32 {
	if err := p.Validate(); err != nil {
		panic(err)
	}
	oh, ow := p.OH(), p.OW()
	kLen := p.N * oh * ow
	split := Algo3SplitK
	if split > kLen {
		split = kLen
	}
	elems := p.DWShape().Elems()
	partials := make([][]float32, split)
	var wg sync.WaitGroup
	wg.Add(split)
	for s := 0; s < split; s++ {
		go func(s int) {
			defer wg.Done()
			buf := make([]float32, elems)
			k0 := s * kLen / split
			k1 := (s + 1) * kLen / split
			for k := k0; k < k1; k++ {
				n := k / (oh * ow)
				rem := k % (oh * ow)
				y, xw := rem/ow, rem%ow
				for oc := 0; oc < p.OC; oc++ {
					dyv := dy.At(n, y, xw, oc)
					if dyv == 0 {
						continue
					}
					for fh := 0; fh < p.FH; fh++ {
						ih := y + fh - p.PH
						if ih < 0 || ih >= p.IH {
							continue
						}
						for fw := 0; fw < p.FW; fw++ {
							iw := xw + fw - p.PW
							if iw < 0 || iw >= p.IW {
								continue
							}
							base := p.DWShape().Index(oc, fh, fw, 0)
							xbase := x.Shape.Index(n, ih, iw, 0)
							for ic := 0; ic < p.IC; ic++ {
								buf[base+ic] += x.Data[xbase+ic] * dyv
							}
						}
					}
				}
			}
			partials[s] = buf
		}(s)
	}
	wg.Wait()

	dw := tensor.NewFloat32(p.DWShape())
	for i := 0; i < elems; i++ {
		var s float32
		for _, buf := range partials {
			s += buf[i]
		}
		dw.Data[i] = s
	}
	return dw
}

func parallelFor(n int, f func(i int)) {
	workers := runtime.GOMAXPROCS(0)
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			f(i)
		}
		return
	}
	var wg sync.WaitGroup
	next := make(chan int)
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for i := range next {
				f(i)
			}
		}()
	}
	for i := 0; i < n; i++ {
		next <- i
	}
	close(next)
	wg.Wait()
}

// Algo1Half is the FP16 Tensor-Core variant of Algo1 with legacy HMMA
// semantics: binary16 operands and binary16 accumulation over the long
// reduction axis. Like Cu-Algo1's measured behaviour (Table 4: up to
// 8.34e-1 MARE), accuracy collapses as N·O_H·O_W grows, because the
// running binary16 sum absorbs ever-smaller addends.
func Algo1Half(p conv.Params, x, dy *tensor.Half) *tensor.Float32 {
	if err := p.Validate(); err != nil {
		panic(err)
	}
	oh, ow := p.OH(), p.OW()
	dw := tensor.NewFloat32(p.DWShape())
	acc := make([]fp16.Bits, p.DWShape().Elems())
	kLen := p.N * oh * ow
	parallelFor(p.OC, func(oc int) {
		for k := 0; k < kLen; k++ {
			n := k / (oh * ow)
			rem := k % (oh * ow)
			y, xw := rem/ow, rem%ow
			dyv := dy.Data[dy.Shape.Index(n, y, xw, oc)]
			if dyv == 0 {
				continue
			}
			for fh := 0; fh < p.FH; fh++ {
				ih := y + fh - p.PH
				if ih < 0 || ih >= p.IH {
					continue
				}
				for fw := 0; fw < p.FW; fw++ {
					iw := xw + fw - p.PW
					if iw < 0 || iw >= p.IW {
						continue
					}
					base := p.DWShape().Index(oc, fh, fw, 0)
					xbase := x.Shape.Index(n, ih, iw, 0)
					for ic := 0; ic < p.IC; ic++ {
						acc[base+ic] = fp16.FMA(x.Data[xbase+ic], dyv, acc[base+ic])
					}
				}
			}
		}
	})
	fp16.DecodeSlice(dw.Data, acc)
	return dw
}
