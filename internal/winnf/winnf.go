// Package winnf implements a non-fused 2-D Winograd backward-filter
// convolution — the stand-in for cuDNN's sole Winograd BFC (Cu-WinNF),
// which supports 3×3 and 5×5 filter gradients.
//
// The wgrad formulation swaps the Winograd roles: the output gradients ∇Y
// act as the filter operand, split into r×r tiles (r = 4, matching the
// paper's footnote 4: complexity reductions of 4× for 3×3 and 6.25× for
// 5×5 come from nested F(3,4) and F(5,4)), while X supplies overlapping
// α×α input tiles (α = F+3). Per tile, 2-D Winograd produces an F×F
// partial gradient; partials are accumulated over all tiles and the batch.
//
// "Non-fused" is the defining property: the four stages — filter transform
// (FT), input transform (IT), element-wise multiplication (EWM, executed as
// α² batched GEMMs) and output transform (OT) — run as separate kernels
// with every intermediate materialized in global memory. Those
// intermediates are exactly the 2.23×–5.9× data-size workspace the paper's
// Table 2 reports, and the extra I/O is why fused WinRS wins despite a
// smaller complexity reduction.
package winnf

import (
	"fmt"
	"runtime"
	"sync"

	"winrs/internal/conv"
	"winrs/internal/fp16"
	"winrs/internal/tensor"
	"winrs/internal/winograd"
)

// TileR is the ∇Y tile edge used by the non-fused algorithm.
const TileR = 4

// Supported reports whether the baseline covers the layer: square filter
// gradients of size 3×3 or 5×5 (the Cu-WinNF envelope).
func Supported(p conv.Params) bool {
	return p.FH == p.FW && (p.FH == 3 || p.FH == 5)
}

// tiles returns the tile grid extents (tiles along H and W, zero-padding
// ∇Y up to a multiple of TileR — the redundant computation the paper's
// filter split avoids).
func tilesOf(p conv.Params) (th, tw int) {
	return (p.OH() + TileR - 1) / TileR, (p.OW() + TileR - 1) / TileR
}

// Workspace returns the bytes of global-memory intermediates the non-fused
// pipeline materializes: transformed ∇Y tiles (N·T·OC·α²), transformed X
// tiles (N·T·IC·α²) and the EWM output (α²·OC·IC), all float32.
func Workspace(p conv.Params) int64 {
	if !Supported(p) {
		return 0
	}
	alpha := p.FH + TileR - 1
	a2 := int64(alpha * alpha)
	th, tw := tilesOf(p)
	t := int64(th) * int64(tw)
	n := int64(p.N)
	return (n*t*int64(p.OC)*a2 + n*t*int64(p.IC)*a2 + a2*int64(p.OC)*int64(p.IC)) * 4
}

// Accel returns the time-complexity reduction factor of the nested
// F(F,4)×F(F,4) algorithm: (F·4/α)².
func Accel(p conv.Params) float64 {
	alpha := float64(p.FH + TileR - 1)
	a1 := float64(p.FH) * TileR / alpha
	return a1 * a1
}

// BackwardFilter computes ∇W with the four-stage non-fused FP32 pipeline.
// It panics for unsupported layer shapes (call Supported first).
func BackwardFilter(p conv.Params, x, dy *tensor.Float32) *tensor.Float32 {
	if err := p.Validate(); err != nil {
		panic(err)
	}
	if !Supported(p) {
		panic(fmt.Sprintf("winnf: unsupported filter gradient %dx%d", p.FH, p.FW))
	}
	if x.Shape != p.XShape() || dy.Shape != p.DYShape() {
		panic("winnf: operand shape mismatch")
	}
	f := p.FH
	tr := winograd.Generate(f, TileR)
	alpha := tr.Alpha
	a2 := alpha * alpha
	th, tw := tilesOf(p)
	nt := p.N * th * tw

	// Stage 1 (FT kernel): transform every ∇Y tile per output channel.
	// Layout: [a2][nt][OC] so each EWM GEMM reads a contiguous plane.
	ft := make([]float32, a2*nt*p.OC)
	parallelFor(nt, func(ti int) {
		n := ti / (th * tw)
		rem := ti % (th * tw)
		ty, tx := rem/tw, rem%tw
		tile := make([]float64, TileR*TileR)
		for oc := 0; oc < p.OC; oc++ {
			for i := 0; i < TileR; i++ {
				for j := 0; j < TileR; j++ {
					oy, ox := ty*TileR+i, tx*TileR+j
					if oy < p.OH() && ox < p.OW() {
						tile[i*TileR+j] = float64(dy.At(n, oy, ox, oc))
					} else {
						tile[i*TileR+j] = 0 // zero padding of ragged tiles
					}
				}
			}
			tt := transform2D(tr.G, tile, TileR, TileR)
			for k := 0; k < a2; k++ {
				ft[(k*nt+ti)*p.OC+oc] = float32(tt[k])
			}
		}
	})

	// Stage 2 (IT kernel): transform every overlapping X tile per input
	// channel. X tile (ty,tx) spans rows TileR·ty−PH … +α and likewise for
	// columns, with implicit zero padding.
	it := make([]float32, a2*nt*p.IC)
	parallelFor(nt, func(ti int) {
		n := ti / (th * tw)
		rem := ti % (th * tw)
		ty, tx := rem/tw, rem%tw
		tile := make([]float64, a2)
		for ic := 0; ic < p.IC; ic++ {
			for i := 0; i < alpha; i++ {
				ih := ty*TileR + i - p.PH
				for j := 0; j < alpha; j++ {
					iw := tx*TileR + j - p.PW
					if ih >= 0 && ih < p.IH && iw >= 0 && iw < p.IW {
						tile[i*alpha+j] = float64(x.At(n, ih, iw, ic))
					} else {
						tile[i*alpha+j] = 0
					}
				}
			}
			tt := transform2DT(tr.D, tile, alpha, alpha)
			for k := 0; k < a2; k++ {
				it[(k*nt+ti)*p.IC+ic] = float32(tt[k])
			}
		}
	})

	// Stage 3 (EWM kernel): α² batched GEMMs reducing over the N·T axis:
	// ewm[k][oc][ic] = Σ_t ft[k][t][oc] · it[k][t][ic]. Sequential float32
	// accumulation over the long axis, as the non-fused baseline does.
	ewm := make([]float32, a2*p.OC*p.IC)
	parallelFor(a2, func(k int) {
		fPlane := ft[k*nt*p.OC : (k+1)*nt*p.OC]
		iPlane := it[k*nt*p.IC : (k+1)*nt*p.IC]
		out := ewm[k*p.OC*p.IC : (k+1)*p.OC*p.IC]
		for t := 0; t < nt; t++ {
			frow := fPlane[t*p.OC : (t+1)*p.OC]
			irow := iPlane[t*p.IC : (t+1)*p.IC]
			for oc, fv := range frow {
				if fv == 0 {
					continue
				}
				dst := out[oc*p.IC : (oc+1)*p.IC]
				for ic, iv := range irow {
					dst[ic] += fv * iv
				}
			}
		}
	})

	// Stage 4 (OT kernel): per (oc, ic), output-transform the α² vector
	// into the F×F filter gradient.
	dw := tensor.NewFloat32(p.DWShape())
	parallelFor(p.OC*p.IC, func(idx int) {
		oc, ic := idx/p.IC, idx%p.IC
		acc := make([]float64, a2)
		for k := 0; k < a2; k++ {
			acc[k] = float64(ewm[k*p.OC*p.IC+oc*p.IC+ic])
		}
		y := transform2DT(tr.A, acc, alpha, alpha)
		for fh := 0; fh < f; fh++ {
			for fw := 0; fw < f; fw++ {
				dw.Set(oc, fh, fw, ic, float32(y[fh*f+fw]))
			}
		}
	})
	return dw
}

// BackwardFilterHalf is the FP16 variant (Cu-WinNF FP16 supports only 3×3
// filter gradients). It stores transformed tiles in binary16 and, unlike
// WinRS, accumulates the EWM in binary16 as well — modelling the legacy
// HMMA path whose accuracy collapses at large accumulation lengths (the
// paper measures Cu-WinNF FP16 MARE up to 6.52e-1).
func BackwardFilterHalf(p conv.Params, x, dy *tensor.Half) *tensor.Float32 {
	if err := p.Validate(); err != nil {
		panic(err)
	}
	if !(p.FH == 3 && p.FW == 3) {
		panic("winnf: FP16 path supports only 3x3 filter gradients")
	}
	f := p.FH
	tr := winograd.Generate(f, TileR)
	alpha := tr.Alpha
	a2 := alpha * alpha
	th, tw := tilesOf(p)
	nt := p.N * th * tw

	// Bulk-decode both binary16 operands once through the LUT instead of a
	// scalar conversion per tile access — the decoded float32 values are
	// exactly what At returned, so every transform input is unchanged.
	dyf := dy.ToFloat32()
	xf := x.ToFloat32()

	ft := make([]fp16.Bits, a2*nt*p.OC)
	parallelFor(nt, func(ti int) {
		n := ti / (th * tw)
		rem := ti % (th * tw)
		ty, tx := rem/tw, rem%tw
		tile := make([]float64, TileR*TileR)
		ttF := make([]float32, a2)
		ttH := make([]fp16.Bits, a2)
		for oc := 0; oc < p.OC; oc++ {
			for i := 0; i < TileR; i++ {
				for j := 0; j < TileR; j++ {
					oy, ox := ty*TileR+i, tx*TileR+j
					if oy < p.OH() && ox < p.OW() {
						tile[i*TileR+j] = float64(dyf.At(n, oy, ox, oc))
					} else {
						tile[i*TileR+j] = 0
					}
				}
			}
			tt := transform2D(tr.G, tile, TileR, TileR)
			// Contiguous bulk encode, then scatter the bits into the
			// [a2][nt][OC] planes (FromFloat64 narrows to float32 first, so
			// the table encoder sees the same inputs).
			for k := 0; k < a2; k++ {
				ttF[k] = float32(tt[k])
			}
			fp16.EncodeSlice(ttH, ttF)
			for k := 0; k < a2; k++ {
				ft[(k*nt+ti)*p.OC+oc] = ttH[k]
			}
		}
	})

	it := make([]fp16.Bits, a2*nt*p.IC)
	parallelFor(nt, func(ti int) {
		n := ti / (th * tw)
		rem := ti % (th * tw)
		ty, tx := rem/tw, rem%tw
		tile := make([]float64, a2)
		ttF := make([]float32, a2)
		ttH := make([]fp16.Bits, a2)
		for ic := 0; ic < p.IC; ic++ {
			for i := 0; i < alpha; i++ {
				ih := ty*TileR + i - p.PH
				for j := 0; j < alpha; j++ {
					iw := tx*TileR + j - p.PW
					if ih >= 0 && ih < p.IH && iw >= 0 && iw < p.IW {
						tile[i*alpha+j] = float64(xf.At(n, ih, iw, ic))
					} else {
						tile[i*alpha+j] = 0
					}
				}
			}
			tt := transform2DT(tr.D, tile, alpha, alpha)
			for k := 0; k < a2; k++ {
				ttF[k] = float32(tt[k])
			}
			fp16.EncodeSlice(ttH, ttF)
			for k := 0; k < a2; k++ {
				it[(k*nt+ti)*p.IC+ic] = ttH[k]
			}
		}
	})

	// EWM in binary16 with binary16 accumulation.
	ewm := make([]fp16.Bits, a2*p.OC*p.IC)
	parallelFor(a2, func(k int) {
		fPlane := ft[k*nt*p.OC : (k+1)*nt*p.OC]
		iPlane := it[k*nt*p.IC : (k+1)*nt*p.IC]
		out := ewm[k*p.OC*p.IC : (k+1)*p.OC*p.IC]
		for t := 0; t < nt; t++ {
			frow := fPlane[t*p.OC : (t+1)*p.OC]
			irow := iPlane[t*p.IC : (t+1)*p.IC]
			for oc, fv := range frow {
				if fv == 0 {
					continue
				}
				dst := out[oc*p.IC : (oc+1)*p.IC]
				for ic, iv := range irow {
					dst[ic] = fp16.FMA(fv, iv, dst[ic])
				}
			}
		}
	})

	// Bulk-decode the EWM output once; the OT gathers float32 values from
	// the decoded planes (ToFloat64 widens through the same float32).
	ewmF := make([]float32, len(ewm))
	fp16.DecodeSlice(ewmF, ewm)

	dw := tensor.NewFloat32(p.DWShape())
	parallelFor(p.OC*p.IC, func(idx int) {
		oc, ic := idx/p.IC, idx%p.IC
		acc := make([]float64, a2)
		for k := 0; k < a2; k++ {
			acc[k] = float64(ewmF[k*p.OC*p.IC+oc*p.IC+ic])
		}
		y := transform2DT(tr.A, acc, alpha, alpha)
		for fh := 0; fh < f; fh++ {
			for fw := 0; fw < f; fw++ {
				dw.Set(oc, fh, fw, ic, float32(y[fh*f+fw]))
			}
		}
	})
	return dw
}

// transform2D computes M·T·Mᵀ for a rows×cols tile T (M applied from both
// sides, the FT pattern G·W·Gᵀ).
func transform2D(m *winograd.Mat, tile []float64, rows, cols int) []float64 {
	// tmp = M·T (m.Rows×cols)
	tmp := make([]float64, m.Rows*cols)
	for i := 0; i < m.Rows; i++ {
		for k := 0; k < rows; k++ {
			v := m.At(i, k)
			if v == 0 {
				continue
			}
			for j := 0; j < cols; j++ {
				tmp[i*cols+j] += v * tile[k*cols+j]
			}
		}
	}
	// out = tmp·Mᵀ (m.Rows×m.Rows)
	out := make([]float64, m.Rows*m.Rows)
	for i := 0; i < m.Rows; i++ {
		for j := 0; j < m.Rows; j++ {
			var s float64
			for k := 0; k < cols; k++ {
				s += tmp[i*cols+k] * m.At(j, k)
			}
			out[i*m.Rows+j] = s
		}
	}
	return out
}

// transform2DT computes Mᵀ·T·M for a rows×cols tile T (the IT/OT pattern
// Dᵀ·X·D and Aᵀ·Ŷ·A).
func transform2DT(m *winograd.Mat, tile []float64, rows, cols int) []float64 {
	// tmp = Mᵀ·T (m.Cols×cols)
	tmp := make([]float64, m.Cols*cols)
	for k := 0; k < rows; k++ {
		for i := 0; i < m.Cols; i++ {
			v := m.At(k, i)
			if v == 0 {
				continue
			}
			for j := 0; j < cols; j++ {
				tmp[i*cols+j] += v * tile[k*cols+j]
			}
		}
	}
	// out = tmp·M (m.Cols×m.Cols)
	out := make([]float64, m.Cols*m.Cols)
	for i := 0; i < m.Cols; i++ {
		for j := 0; j < m.Cols; j++ {
			var s float64
			for k := 0; k < cols; k++ {
				s += tmp[i*cols+k] * m.At(k, j)
			}
			out[i*m.Cols+j] = s
		}
	}
	return out
}

func parallelFor(n int, f func(i int)) {
	workers := runtime.GOMAXPROCS(0)
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			f(i)
		}
		return
	}
	var wg sync.WaitGroup
	next := make(chan int)
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for i := range next {
				f(i)
			}
		}()
	}
	for i := 0; i < n; i++ {
		next <- i
	}
	close(next)
	wg.Wait()
}
