package winnf

import (
	"math/rand"
	"testing"

	"winrs/internal/conv"
	"winrs/internal/tensor"
)

func TestSupported(t *testing.T) {
	mk := func(f int) conv.Params {
		return conv.Params{N: 1, IH: 12, IW: 12, FH: f, FW: f, IC: 1, OC: 1,
			PH: f / 2, PW: f / 2}
	}
	if !Supported(mk(3)) || !Supported(mk(5)) {
		t.Error("3x3 and 5x5 must be supported")
	}
	if Supported(mk(4)) || Supported(mk(7)) {
		t.Error("4x4 and 7x7 must be unsupported (Cu-WinNF envelope)")
	}
	p := mk(3)
	p.FW = 5
	if Supported(p) {
		t.Error("non-square filters must be unsupported")
	}
}

func TestAccelMatchesPaperFootnote(t *testing.T) {
	p3 := conv.Params{N: 1, IH: 8, IW: 8, FH: 3, FW: 3, IC: 1, OC: 1, PH: 1, PW: 1}
	p5 := conv.Params{N: 1, IH: 12, IW: 12, FH: 5, FW: 5, IC: 1, OC: 1, PH: 2, PW: 2}
	if got := Accel(p3); got != 4 {
		t.Errorf("3x3 accel = %v, want 4 (footnote 4)", got)
	}
	if got := Accel(p5); got != 6.25 {
		t.Errorf("5x5 accel = %v, want 6.25 (footnote 4)", got)
	}
}

func randLayer(rng *rand.Rand, f int) (conv.Params, *tensor.Float64, *tensor.Float64) {
	p := conv.Params{
		N:  1 + rng.Intn(2),
		IH: f + 3 + rng.Intn(12),
		IW: f + 3 + rng.Intn(12),
		FH: f, FW: f,
		IC: 1 + rng.Intn(3),
		OC: 1 + rng.Intn(3),
		PH: rng.Intn(f/2 + 1),
		PW: rng.Intn(f/2 + 1),
	}
	x := tensor.NewFloat64(p.XShape())
	dy := tensor.NewFloat64(p.DYShape())
	for i := range x.Data {
		x.Data[i] = rng.Float64()*2 - 1
	}
	for i := range dy.Data {
		dy.Data[i] = rng.Float64()*2 - 1
	}
	return p, x, dy
}

func TestBackwardFilterMatchesDirect(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for _, f := range []int{3, 5} {
		// F(5,4) (α=8) transforms are worse conditioned than F(3,4) (α=6),
		// so the 5×5 band is looser — mirroring Cu-WinNF's spread in Table 4.
		tol := 2e-5
		if f == 5 {
			tol = 2e-4
		}
		for trial := 0; trial < 6; trial++ {
			p, x64, dy64 := randLayer(rng, f)
			want := conv.BackwardFilterDirect64(p, x64, dy64)
			got := BackwardFilter(p, x64.ToFloat32(), dy64.ToFloat32())
			if m := tensor.MARE(got, want); m > tol {
				t.Errorf("%dx%d trial %d (%v): MARE %v", f, f, trial, p, m)
			}
		}
	}
}

// Ragged edges: O_H, O_W not multiples of the tile size exercise the
// zero-padded boundary tiles.
func TestBackwardFilterRaggedTiles(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	p := conv.Params{N: 1, IH: 9, IW: 11, FH: 3, FW: 3, IC: 2, OC: 2, PH: 1, PW: 1}
	// OH = 9, OW = 11: neither divisible by 4.
	x64 := tensor.NewFloat64(p.XShape())
	dy64 := tensor.NewFloat64(p.DYShape())
	for i := range x64.Data {
		x64.Data[i] = rng.Float64()
	}
	for i := range dy64.Data {
		dy64.Data[i] = rng.Float64()
	}
	want := conv.BackwardFilterDirect64(p, x64, dy64)
	got := BackwardFilter(p, x64.ToFloat32(), dy64.ToFloat32())
	if m := tensor.MARE(got, want); m > 2e-5 {
		t.Errorf("MARE %v", m)
	}
}

func TestBackwardFilterUnsupportedPanics(t *testing.T) {
	p := conv.Params{N: 1, IH: 10, IW: 10, FH: 4, FW: 4, IC: 1, OC: 1}
	defer func() {
		if recover() == nil {
			t.Error("expected panic for 4x4")
		}
	}()
	BackwardFilter(p, tensor.NewFloat32(p.XShape()), tensor.NewFloat32(p.DYShape()))
}

func TestBackwardFilterHalf3x3(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	p := conv.Params{N: 2, IH: 12, IW: 12, FH: 3, FW: 3, IC: 2, OC: 2, PH: 1, PW: 1}
	x64 := tensor.NewFloat64(p.XShape())
	dy64 := tensor.NewFloat64(p.DYShape())
	for i := range x64.Data {
		x64.Data[i] = rng.Float64()
	}
	for i := range dy64.Data {
		dy64.Data[i] = rng.Float64() * 0.01 // paper's FP16 scaling
	}
	want := conv.BackwardFilterDirect64(p, x64, dy64)
	got := BackwardFilterHalf(p, x64.ToFloat32().ToHalf(), dy64.ToFloat32().ToHalf())
	// Small accumulation length: FP16 error in the 1e-3 band.
	if m := tensor.MARE(got, want); m > 2e-2 {
		t.Errorf("FP16 MARE %v", m)
	}
}

func TestBackwardFilterHalfRejects5x5(t *testing.T) {
	p := conv.Params{N: 1, IH: 12, IW: 12, FH: 5, FW: 5, IC: 1, OC: 1, PH: 2, PW: 2}
	defer func() {
		if recover() == nil {
			t.Error("expected panic: FP16 Cu-WinNF is 3x3-only")
		}
	}()
	BackwardFilterHalf(p, tensor.NewHalf(p.XShape()), tensor.NewHalf(p.DYShape()))
}

// FP16 accuracy must degrade with accumulation length (the paper's Fig 12C
// mechanism for Cu-WinNF).
func TestHalfAccuracyDegradesWithAccumulation(t *testing.T) {
	rng := rand.New(rand.NewSource(24))
	mare := func(n, hw int) float64 {
		p := conv.Params{N: n, IH: hw, IW: hw, FH: 3, FW: 3, IC: 2, OC: 2, PH: 1, PW: 1}
		x64 := tensor.NewFloat64(p.XShape())
		dy64 := tensor.NewFloat64(p.DYShape())
		for i := range x64.Data {
			x64.Data[i] = rng.Float64()
		}
		for i := range dy64.Data {
			dy64.Data[i] = rng.Float64() * 0.01
		}
		want := conv.BackwardFilterDirect64(p, x64, dy64)
		got := BackwardFilterHalf(p, x64.ToFloat32().ToHalf(), dy64.ToFloat32().ToHalf())
		return tensor.MARE(got, want)
	}
	small := mare(1, 8)
	large := mare(4, 40)
	if large <= small {
		t.Errorf("expected degradation with accumulation length: small %v, large %v",
			small, large)
	}
}

func TestWorkspaceAccounting(t *testing.T) {
	p := conv.Params{N: 2, IH: 16, IW: 16, FH: 3, FW: 3, IC: 4, OC: 4, PH: 1, PW: 1}
	// OH=OW=16 → 4x4 tiles, nt = 2·16 = 32, α = 6, a² = 36.
	want := int64(2*16*4*36+2*16*4*36+36*4*4) * 4
	if got := Workspace(p); got != want {
		t.Errorf("Workspace = %d, want %d", got, want)
	}
	// Paper band: Cu-WinNF workspace is ≥2.23× the data size for real
	// layers.
	vgg := conv.Params{N: 32, IH: 224, IW: 224, FH: 3, FW: 3, IC: 64, OC: 64, PH: 1, PW: 1}
	ratio := float64(Workspace(vgg)) / float64(vgg.DataBytes32())
	if ratio < 2 || ratio > 6 {
		t.Errorf("VGG conv2 workspace ratio %v, want within the paper's 2.23-5.9x band", ratio)
	}
	if Workspace(conv.Params{N: 1, IH: 8, IW: 8, FH: 4, FW: 4, IC: 1, OC: 1}) != 0 {
		t.Error("unsupported shapes should report zero workspace")
	}
}

func BenchmarkBackwardFilterWinNF(b *testing.B) {
	p := conv.Params{N: 2, IH: 32, IW: 32, FH: 3, FW: 3, IC: 8, OC: 8, PH: 1, PW: 1}
	rng := rand.New(rand.NewSource(1))
	x := tensor.NewFloat32(p.XShape())
	dy := tensor.NewFloat32(p.DYShape())
	x.FillUniform(rng, 0, 1)
	dy.FillUniform(rng, 0, 1)
	b.SetBytes(p.DataBytes32())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = BackwardFilter(p, x, dy)
	}
}
