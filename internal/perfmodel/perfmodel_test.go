package perfmodel

import (
	"testing"

	"winrs/internal/conv"
	"winrs/internal/gpusim"
	"winrs/internal/report"
	"winrs/internal/workload"
)

func vggConv2(n int) conv.Params {
	return conv.Params{N: n, IH: 224, IW: 224, FH: 3, FW: 3, IC: 64, OC: 64,
		PH: 1, PW: 1}
}

func TestWinRSPlanStructure(t *testing.T) {
	p := vggConv2(32)
	plan, cfg, err := WinRS(p, gpusim.RTX4090, false)
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Z() < 2 {
		t.Errorf("VGG conv2 should segment heavily, got Z=%d", cfg.Z())
	}
	if len(plan.Launches) != 2 {
		t.Errorf("expected fused launch + reduction, got %d launches", len(plan.Launches))
	}
	if plan.WorkspaceBytes != cfg.WorkspaceBytes() {
		t.Error("plan workspace must mirror the configuration")
	}
	// Executed FLOPs must be below direct (Winograd reduction) but within
	// the 1.5x-4.5x band plus transform overhead.
	direct := float64(p.FLOPs())
	ratio := direct / plan.Launches[0].FLOPs
	if ratio < 1.2 || ratio > 4.6 {
		t.Errorf("complexity reduction %v outside the paper band", ratio)
	}
}

// Table 3 band: WinRS beats Cu-GEMM across the sweep, with larger filter
// gradients gaining more (paper: 1.05x-4.7x, growing from 2x2 to 9x9).
func TestSpeedupOverCuGEMMBand(t *testing.T) {
	d := gpusim.RTX4090
	perF := map[int][]float64{}
	for _, c := range workload.PaperSweep() {
		w, _, err := WinRS(c.P, d, false)
		if err != nil {
			t.Fatalf("%v: %v", c.P, err)
		}
		g := CuGEMM(c.P, d, false)
		perF[c.P.FH] = append(perF[c.P.FH], Speedup(d, w, g))
	}
	var avg2, avg9 float64
	for f, sp := range perF {
		avg, min, max := report.SummaryStats(sp)
		if min < 0.9 || max > 8 {
			t.Errorf("F=%d: speedup range [%v,%v] outside the plausible band", f, min, max)
		}
		if avg < 1.0 {
			t.Errorf("F=%d: average speedup %v, WinRS should win on average", f, avg)
		}
		switch f {
		case 2:
			avg2 = avg
		case 9:
			avg9 = avg
		}
	}
	if avg9 <= avg2 {
		t.Errorf("9x9 average speedup (%v) should exceed 2x2 (%v)", avg9, avg2)
	}
}

// Observation 1 analogue: WinRS beats Cu-FFT decisively on small filters
// with large features, while Cu-FFT catches up (and can win) at large
// filters with small features.
func TestFFTCrossover(t *testing.T) {
	d := gpusim.RTX4090
	w2, _, err := WinRS(workload.Layer(32, 224, 2, 64), d, false)
	if err != nil {
		t.Fatal(err)
	}
	sFast := Speedup(d, w2, FFT(workload.Layer(32, 224, 2, 64)))
	if sFast < 3 {
		t.Errorf("2x2 large-feature FFT speedup %v, expected >3 (paper avg 7.85)", sFast)
	}
	p9 := workload.Layer(32, 56, 9, 256)
	w9, _, err := WinRS(p9, d, false)
	if err != nil {
		t.Fatal(err)
	}
	sSlow := Speedup(d, w9, FFT(p9))
	if sSlow >= sFast {
		t.Errorf("FFT should close the gap at 9x9 small features: %v vs %v", sSlow, sFast)
	}
}

// The Cu-WinNF crossover of §6.2: FP16 WinRS outperforms Cu-WinNF for
// O_C ≤ 512 on the RTX 4090, and only up to a smaller channel count on the
// A5000 (whose compute/bandwidth ratio favours non-fused algorithms).
func TestWinNFCrossover(t *testing.T) {
	speedupAt := func(d gpusim.Device, c int, hw int) float64 {
		p := workload.Layer(32, hw, 3, c)
		w, _, err := WinRS(p, d, true)
		if err != nil {
			t.Fatal(err)
		}
		wp, ok := WinNF(p, true)
		if !ok {
			t.Fatal("WinNF should support 3x3 FP16")
		}
		return Speedup(d, w, wp)
	}
	if s := speedupAt(gpusim.RTX4090, 512, 28); s < 1 {
		t.Errorf("4090 FP16 3x3 @512ch: speedup %v, paper says WinRS wins up to 512", s)
	}
	s4090 := speedupAt(gpusim.RTX4090, 256, 56)
	s5000 := speedupAt(gpusim.RTXA5000, 256, 56)
	if s5000 >= s4090 {
		t.Errorf("A5000 (%v) should favour non-fused WinNF more than 4090 (%v)", s5000, s4090)
	}
}

// Observation 2: moving from FP32 CUDA Cores to FP16 Tensor Cores speeds
// WinRS up by roughly the paper's 3.27x average.
func TestFP16OverFP32Ratio(t *testing.T) {
	d := gpusim.RTX4090
	var ratios []float64
	for _, f := range workload.FP16Filters {
		for _, c := range workload.ConstantComplexitySeries(32, 224, 64, f) {
			w32, _, err32 := WinRS(c.P, d, false)
			w16, _, err16 := WinRS(c.P, d, true)
			if err32 != nil || err16 != nil {
				continue
			}
			ratios = append(ratios, d.Time(w32)/d.Time(w16))
		}
	}
	avg, _, _ := report.SummaryStats(ratios)
	if avg < 2.3 || avg > 4.2 {
		t.Errorf("FP16/FP32 average ratio %v, paper reports 3.27", avg)
	}
}

// Observation 2, device axis: the 4090's 132% compute / 8% bandwidth gain
// over the 3090 must widen WinRS's advantage over the non-fused FFT.
func TestDeviceScalingFavoursFused(t *testing.T) {
	p := vggConv2(32)
	rel := func(d gpusim.Device) float64 {
		w, _, err := WinRS(p, d, false)
		if err != nil {
			t.Fatal(err)
		}
		return Speedup(d, w, FFT(p))
	}
	if r4090, r3090 := rel(gpusim.RTX4090), rel(gpusim.RTX3090); r4090 <= r3090 {
		t.Errorf("4090 advantage over FFT (%v) should exceed 3090's (%v)", r4090, r3090)
	}
}

// Table 2: average workspace ratios per algorithm across the paper sweep
// must land in the reported bands.
func TestWorkspaceBands(t *testing.T) {
	d := gpusim.RTX4090
	var winrs, algo1, algo3, fft, winnfR []float64
	for _, c := range workload.PaperSweep() {
		data := float64(c.P.DataBytes32())
		w, _, err := WinRS(c.P, d, false)
		if err != nil {
			t.Fatalf("%v: %v", c.P, err)
		}
		winrs = append(winrs, float64(w.WorkspaceBytes)/data)
		algo1 = append(algo1, float64(Algo1Workspace(c.P, false))/data)
		algo3 = append(algo3, float64(Algo3Workspace(c.P))/data)
		fft = append(fft, float64(FFT(c.P).WorkspaceBytes)/data)
		if wp, ok := WinNF(c.P, false); ok {
			winnfR = append(winnfR, float64(wp.WorkspaceBytes)/data)
		}
	}
	avgW, minW, maxW := report.SummaryStats(winrs)
	if avgW > 0.6 || minW != 0 || maxW > 2.1 {
		t.Errorf("WinRS workspace avg=%v min=%v max=%v, paper: 0.18x avg, 0 min, 1.67x max",
			avgW, minW, maxW)
	}
	avgFFT, minFFT, _ := report.SummaryStats(fft)
	if avgFFT < 3 || minFFT < 1.5 {
		t.Errorf("Cu-FFT workspace avg=%v min=%v, paper: 9.09x avg, 3.11x min", avgFFT, minFFT)
	}
	avgNF, _, _ := report.SummaryStats(winnfR)
	if avgNF < 1.5 || avgNF > 7 {
		t.Errorf("Cu-WinNF workspace avg=%v, paper: 2.67x", avgNF)
	}
	avg1, _, max1 := report.SummaryStats(algo1)
	if avg1 < 0.2 || max1 > 2.3 {
		t.Errorf("Cu-Algo1 workspace avg=%v max=%v, paper: 1.06x avg, 2.21x max", avg1, max1)
	}
	avg3, _, _ := report.SummaryStats(algo3)
	if avg3 > 0.5 {
		t.Errorf("Cu-Algo3 workspace avg=%v, paper: 0.10x", avg3)
	}
	// Relative ordering of Table 2: WinRS uses a few percent of FFT and
	// WinNF workspace.
	if avgW/avgFFT > 0.15 || avgW/avgNF > 0.35 {
		t.Errorf("WinRS/FFT=%v and WinRS/WinNF=%v workspace ratios too large",
			avgW/avgFFT, avgW/avgNF)
	}
}

// Figure 9: the workspace vanishes at large channels and grows (bounded)
// at small channels.
func TestFig9WorkspaceTrend(t *testing.T) {
	d := gpusim.RTX4090
	ws := func(hw, c int) int64 {
		p := conv.Params{N: 32, IH: hw, IW: hw - 2, FH: 3, FW: 3, IC: c, OC: c,
			PH: 1, PW: 1} // OW multiple of 6 at hw=14: 12
		plan, _, err := WinRS(p, d, false)
		if err != nil {
			t.Fatal(err)
		}
		return plan.WorkspaceBytes
	}
	if w := ws(14, 1024); w != 0 {
		t.Errorf("1024 channels: workspace %d, want 0", w)
	}
	if w := ws(112, 64); w == 0 {
		t.Error("64 channels at 112x112 should need bucket workspace")
	}
}

// The segmentation ablation: forcing Z=1 on a starved layer must be far
// slower on the simulator than the adaptive configuration.
func TestSegmentationAblation(t *testing.T) {
	d := gpusim.RTX4090
	p := vggConv2(32)
	adaptive, cfg, err := WinRS(p, d, false)
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Z() < 8 {
		t.Fatalf("expected heavy segmentation, got Z=%d", cfg.Z())
	}
	forced, _, err := WinRSForced(p, d, false, 1)
	if err != nil {
		t.Fatal(err)
	}
	if sp := d.Time(forced) / d.Time(adaptive); sp < 5 {
		t.Errorf("adaptive segmentation speedup %vx over Z=1, expected >5x", sp)
	}
}

func TestCuGEMMPicksFastest(t *testing.T) {
	d := gpusim.RTX4090
	p := vggConv2(32)
	best := CuGEMM(p, d, false)
	for _, alt := range []gpusim.Plan{Algo0(p, false), Algo1(p, false), Algo3(p, false)} {
		if d.Time(best) > d.Time(alt)*1.0001 {
			t.Errorf("CuGEMM (%v) slower than %s (%v)", d.Time(best), alt.Algorithm, d.Time(alt))
		}
	}
}

func TestWinNFEnvelope(t *testing.T) {
	if _, ok := WinNF(workload.Layer(32, 56, 4, 64), false); ok {
		t.Error("WinNF must reject 4x4")
	}
	if _, ok := WinNF(workload.Layer(32, 56, 5, 64), true); ok {
		t.Error("FP16 WinNF must reject 5x5")
	}
	if _, ok := WinNF(workload.Layer(32, 56, 5, 64), false); !ok {
		t.Error("FP32 WinNF must accept 5x5")
	}
}

func TestDescribe(t *testing.T) {
	d := gpusim.RTX4090
	p := vggConv2(32)
	s := Describe(Algo0(p, false), d, p.FLOPs())
	if s == "" {
		t.Error("Describe should format")
	}
}

// The related-work comparison (§7): with identical kernels, WinRS's
// adaptive segmentation must dominate the fixed distribution of
// Im2col-Winograd on the small-output BFC regime, and the two converge
// when a single segment already saturates the device.
func TestIm2colWinogradBaseline(t *testing.T) {
	d := gpusim.RTX4090
	starved := vggConv2(32)
	w, cfg, err := WinRS(starved, d, false)
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Z() < 8 {
		t.Fatalf("setup: expected segmentation, Z=%d", cfg.Z())
	}
	i2c, err := Im2colWinograd(starved, d)
	if err != nil {
		t.Fatal(err)
	}
	if sp := Speedup(d, w, i2c); sp < 5 {
		t.Errorf("WinRS speedup over fixed distribution %v, expected >5x on a starved layer", sp)
	}
	// Saturated regime: large channels, single segment — near parity.
	big := workload.Layer(32, 14, 3, 1024)
	wBig, _, err := WinRS(big, d, false)
	if err != nil {
		t.Fatal(err)
	}
	i2cBig, err := Im2colWinograd(big, d)
	if err != nil {
		t.Fatal(err)
	}
	if sp := Speedup(d, wBig, i2cBig); sp < 0.8 || sp > 2 {
		t.Errorf("saturated-regime speedup %v, expected near parity", sp)
	}
}

// Observation 1 (§6.2): at constant time complexity, non-fused algorithms'
// throughput varies far more across tensor dimensions than fused ones.
// Measure the relative spread (max/min time) of each algorithm over the
// constant-complexity ladder.
func TestObservation1DimensionSensitivity(t *testing.T) {
	d := gpusim.RTX4090
	spread := func(timeOf func(conv.Params) (float64, bool)) float64 {
		lo, hi := 0.0, 0.0
		for i, c := range workload.ConstantComplexitySeries(32, 224, 64, 3) {
			tt, ok := timeOf(c.P)
			if !ok {
				continue
			}
			if i == 0 || tt < lo {
				lo = tt
			}
			if tt > hi {
				hi = tt
			}
		}
		if lo == 0 {
			return 0
		}
		return hi / lo
	}
	fused := spread(func(p conv.Params) (float64, bool) {
		plan, _, err := WinRS(p, d, false)
		if err != nil {
			return 0, false
		}
		return d.Time(plan), true
	})
	nonFused := spread(func(p conv.Params) (float64, bool) {
		return d.Time(FFT(p)), true
	})
	if nonFused <= fused {
		t.Errorf("Observation 1 violated: FFT spread %v should exceed WinRS spread %v",
			nonFused, fused)
	}
	if fused > 2.5 {
		t.Errorf("fused algorithm spread %v suspiciously large at constant complexity", fused)
	}
}

// The FP32 3090 crossover of §6.2: "FP32 WinRS is faster [than Cu-WinNF] at
// O_C ≤ 256 and O_C ≤ 128 on RTX 3090" — assert WinRS wins at 64 channels
// and loses by 512 channels on the 3090.
func TestWinNFCrossoverFP32On3090(t *testing.T) {
	d := gpusim.RTX3090
	at := func(c, hw int) float64 {
		p := workload.Layer(32, hw, 3, c)
		w, _, err := WinRS(p, d, false)
		if err != nil {
			t.Fatal(err)
		}
		wp, ok := WinNF(p, false)
		if !ok {
			t.Fatal("WinNF should support 3x3")
		}
		return Speedup(d, w, wp)
	}
	if s := at(64, 224); s < 1 {
		t.Errorf("3090 FP32 3x3 @64ch: speedup %v, WinRS should win", s)
	}
	if s := at(512, 28); s > 1 {
		t.Errorf("3090 FP32 3x3 @512ch: speedup %v, Cu-WinNF should win", s)
	}
}
