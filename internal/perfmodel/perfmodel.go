// Package perfmodel builds gpusim execution plans — kernel-launch sequences
// plus workspace — for WinRS and the five cuDNN baseline algorithms. The
// plans encode each algorithm's structure (fusion, parallelism, reduced or
// cubic complexity, intermediate traffic), and the simulator turns them
// into the modelled times behind the paper's Table 3 and Figures 10–11;
// their workspace fields regenerate Table 2 and Figure 9.
package perfmodel

import (
	"fmt"
	"math"

	"winrs/internal/conv"
	"winrs/internal/core"
	"winrs/internal/gpusim"
	"winrs/internal/tensor"
	"winrs/internal/winnf"
)

// elemBytes returns the tensor element size for the precision.
func elemBytes(fp16 bool) float64 {
	if fp16 {
		return 2
	}
	return 4
}

// gemmBlock is the cache-block edge of the modelled cuDNN GEMM kernels.
const gemmBlock = 64

// WinRS builds the WinRS plan: one fused launch whose block grid is the
// union of all segment block groups, plus (for Z > 1) the bucket-reduction
// kernel. Returns the plan together with the configuration that produced
// it.
func WinRS(p conv.Params, d gpusim.Device, fp16 bool) (gpusim.Plan, *core.Config, error) {
	return winRSPlan(p, d, fp16, 0)
}

// WinRSForced builds the WinRS plan with a forced segment count, bypassing
// Algorithm 1 — the segmentation ablation's lever.
func WinRSForced(p conv.Params, d gpusim.Device, fp16 bool, z int) (gpusim.Plan, *core.Config, error) {
	return winRSPlan(p, d, fp16, z)
}

func winRSPlan(p conv.Params, d gpusim.Device, fp16 bool, forceZ int) (gpusim.Plan, *core.Config, error) {
	opts := []core.Option{core.WithHardware(core.Hardware{NSM: d.NSM})}
	if fp16 {
		opts = append(opts, core.WithFP16())
	}
	if forceZ > 0 {
		opts = append(opts, core.WithSegments(forceZ))
	}
	cfg, err := core.Configure(p, opts...)
	if err != nil {
		return gpusim.Plan{}, nil, err
	}
	var blocks int
	var flops float64
	for _, s := range cfg.Segments {
		k := s.K
		blocks += core.BlocksPerSegment(k, p, fp16)
		segElems := float64(s.Rows()) * float64(s.Cols()) * float64(p.N)
		tiles := float64(p.FH) * float64(p.FW) / float64(k.N)
		// EWM work: direct-equivalent divided by the acceleration factor,
		// plus ~10% for the fused transforms.
		direct := 2 * segElems * tiles * float64(k.N) * float64(p.OC) * float64(p.IC)
		flops += direct / k.Accel() * 1.10
	}
	// DRAM traffic of the fused kernel: block layers re-stream X and ∇Y,
	// but the re-reads hit L2 and the texture cache (the working set per
	// wave fits), leaving little more than the compulsory input traffic
	// plus the bucket writes — this is why the paper calls fused
	// algorithms compute-bound (§6.2, Observation 2). Buckets are FP32 on
	// both paths.
	dwElems := float64(p.DWShape().Elems())
	bytes := 1.25*(tensorBytes(p.XShape(), fp16)+tensorBytes(p.DYShape(), fp16)) +
		float64(cfg.Z())*dwElems*4

	// Sustained fraction of peak for the dominant (fast) kernel: larger
	// transforms spend more non-GEMM instructions and shrink cache blocks
	// (the footnote-3 trade-off).
	eff := map[int]float64{2: 0.9, 4: 0.85, 8: 0.8, 16: 0.55}[cfg.Pair.Fast.Alpha]
	if eff == 0 {
		eff = 0.8
	}
	if fp16 {
		eff *= 0.88 // Tensor-Core MMA pipelines sustain a lower fraction
	}
	launches := []gpusim.Launch{{
		Name:      "winrs-fused",
		Blocks:    blocks,
		FLOPs:     flops,
		Bytes:     bytes,
		Intensity: cfg.Pair.Fast.Intensity(fp16),
		Tensor:    fp16,
		Eff:       eff,
	}}
	if cfg.Z() > 1 {
		launches = append(launches, gpusim.Launch{
			Name:      "bucket-reduce",
			Blocks:    maxInt(1, int(dwElems)/4096),
			FLOPs:     float64(cfg.Z()) * dwElems * 4, // Kahan: 4 FLOPs/term
			Bytes:     (float64(cfg.Z()) + 1) * dwElems * 4,
			Intensity: 1,
		})
	}
	return gpusim.Plan{
		Algorithm:      "WinRS",
		Launches:       launches,
		WorkspaceBytes: cfg.WorkspaceBytes(),
	}, cfg, nil
}

// gemmDims returns BFC's GEMM dimensions: M×N'×K with the long reduction
// axis K = N·O_H·O_W.
func gemmDims(p conv.Params) (m, n, k int) {
	return p.OC, p.FH * p.FW * p.IC, p.N * p.OH() * p.OW()
}

// gemmTraffic estimates the DRAM bytes of BFC's blocked GEMM: the A
// operand is the ∇Y tensor, the B operand is the im2col view of X (patch
// overlap and stripe re-reads are largely absorbed by L2, leaving at most
// two compulsory passes per operand).
func gemmTraffic(p conv.Params, fp16 bool) float64 {
	m, n, _ := gemmDims(p)
	mStripes := math.Min(2, float64(ceilDiv(m, gemmBlock)))
	nStripes := math.Min(2, float64(ceilDiv(n, gemmBlock)))
	return tensorBytes(p.DYShape(), fp16)*nStripes +
		tensorBytes(p.XShape(), fp16)*mStripes
}

// gemmIntensity is the on-chip FLOP/element ratio of a B×B GEMM block.
func gemmIntensity() float64 {
	return 2 * gemmBlock * gemmBlock / float64(2*gemmBlock)
}

// Algo0 models cuDNN's workspace-free implicit GEMM: one launch, cubic
// complexity, block grid limited by the tiny ∇W output (the Figure 2
// starvation).
func Algo0(p conv.Params, fp16 bool) gpusim.Plan {
	m, n, k := gemmDims(p)
	return gpusim.Plan{
		Algorithm: "Cu-Algo0",
		Launches: []gpusim.Launch{{
			Name:      "implicit-gemm",
			Blocks:    ceilDiv(m, gemmBlock) * ceilDiv(n, gemmBlock),
			FLOPs:     2 * float64(m) * float64(n) * float64(k),
			Bytes:     gemmTraffic(p, fp16) + float64(m*n)*4,
			Intensity: gemmIntensity(),
			Tensor:    fp16,
			Eff:       0.9,
		}},
	}
}

// algo1ChunkRows is the modelled im2col chunk of cuDNN's precomputed-index
// GEMM; with the 2.25×-data cap it lands the workspace in Table 2's
// 0.28×–2.21× band.
const algo1ChunkRows = 1 << 16

// Algo1Workspace returns the modelled Cu-Algo1 workspace in bytes.
func Algo1Workspace(p conv.Params, fp16 bool) int64 {
	_, n, k := gemmDims(p)
	rows := int64(k)
	if rows > algo1ChunkRows {
		rows = algo1ChunkRows
	}
	ws := rows * int64(n) * int64(elemBytes(fp16))
	cap := int64(2.25 * float64(dataBytes(p, fp16)))
	if ws > cap {
		ws = cap
	}
	return ws
}

// Algo1 models cuDNN's explicit-im2col GEMM: per chunk an im2col
// materialization launch (memory bound) followed by a GEMM launch.
func Algo1(p conv.Params, fp16 bool) gpusim.Plan {
	m, n, k := gemmDims(p)
	eb := elemBytes(fp16)
	chunks := ceilDiv(k, algo1ChunkRows)
	colBytes := float64(k) * float64(n) * eb // total materialized columns
	var launches []gpusim.Launch
	for c := 0; c < chunks; c++ {
		launches = append(launches,
			gpusim.Launch{
				Name:      "im2col",
				Blocks:    maxInt(1, k/chunks/256),
				FLOPs:     0,
				Bytes:     2 * colBytes / float64(chunks),
				Intensity: 1,
			},
			gpusim.Launch{
				Name:      "gemm",
				Blocks:    ceilDiv(m, gemmBlock) * ceilDiv(n, gemmBlock),
				FLOPs:     2 * float64(m) * float64(n) * float64(k) / float64(chunks),
				Bytes:     (gemmTraffic(p, fp16) + float64(m*n)*4) / float64(chunks),
				Intensity: gemmIntensity(),
				Tensor:    fp16,
				Eff:       0.9,
			})
	}
	return gpusim.Plan{
		Algorithm:      "Cu-Algo1",
		Launches:       launches,
		WorkspaceBytes: Algo1Workspace(p, fp16),
	}
}

// algo3Split returns the modelled split of the reduction axis: cuDNN's
// split-K wgrad kernels split aggressively to recover parallelism from the
// tiny ∇W output, but bound the partial-sum workspace to a fraction of the
// data size (Table 2 reports a 0.10x average for Cu-Algo3).
func algo3Split(p conv.Params) int {
	dw := tensor.Bytes32(p.DWShape())
	budget := p.DataBytes32() / 4
	split := 1 + int(budget/maxI64(1, dw))
	if split < 2 {
		split = 2
	}
	if split > 32 {
		split = 32
	}
	return split
}

// Algo3Workspace returns the modelled Cu-Algo3 workspace: split-K partial
// gradients.
func Algo3Workspace(p conv.Params) int64 {
	return int64(algo3Split(p)-1) * tensor.Bytes32(p.DWShape())
}

// Algo3 models a split-K implicit GEMM: up to 32× the Algo0 parallelism at
// the cost of a small partial-sum workspace and a reduction launch.
func Algo3(p conv.Params, fp16 bool) gpusim.Plan {
	m, n, k := gemmDims(p)
	split := algo3Split(p)
	dwElems := float64(p.DWShape().Elems())
	return gpusim.Plan{
		Algorithm: "Cu-Algo3",
		Launches: []gpusim.Launch{
			{
				Name:      "splitk-gemm",
				Blocks:    ceilDiv(m, gemmBlock) * ceilDiv(n, gemmBlock) * split,
				FLOPs:     2 * float64(m) * float64(n) * float64(k),
				Bytes:     gemmTraffic(p, fp16) + float64(split)*dwElems*4,
				Intensity: gemmIntensity(),
				Tensor:    fp16,
				Eff:       0.9,
			},
			{
				Name:      "splitk-reduce",
				Blocks:    maxInt(1, int(dwElems)/4096),
				FLOPs:     float64(split) * dwElems,
				Bytes:     (float64(split) + 1) * dwElems * 4,
				Intensity: 1,
			},
		},
		WorkspaceBytes: Algo3Workspace(p),
	}
}

// FFT models cuDNN's FFT BFC (FP32 only): forward transforms of X and ∇Y,
// the batched complex EWM, and the inverse transform, with every spectrum
// in global memory.
func FFT(p conv.Params) gpusim.Plan {
	// cuDNN's FFT supports arbitrary plane sizes (mixed radix), so the
	// model uses exact extents; the Go implementation pads to powers of
	// two (see fftconv.ModelWorkspace for its own accounting).
	lh := p.IH + 2*p.PH
	lw := p.IW + 2*p.PW
	plane := float64(lh * lw)
	logTerm := math.Log2(plane)
	xPlanes := float64(p.N) * float64(p.IC)
	yPlanes := float64(p.N) * float64(p.OC)
	wPlanes := float64(p.OC) * float64(p.IC)
	ws := int64((xPlanes + yPlanes + wPlanes) * plane * 8)
	fftFlops := func(planes float64) float64 { return 5 * planes * plane * logTerm }
	// FFT butterflies sustain a small fraction of FMA peak (strided
	// access, non-FMA twiddle math), and the frequency-domain batched
	// CGEMM is skinnier than a dense GEMM; both derates are calibrated so
	// WinRS retains the paper's Table 3 margins over Cu-FFT at large F.
	const fftEff, cgemmEff = 0.25, 0.6
	// cuDNN's FFT_TILING decomposes planes into 32x32 tiles with F-1
	// pixels of overlap-add redundancy per axis, so effective work grows
	// as (32/(32-F+1))^2 — the mechanism that keeps Cu-FFT behind WinRS at
	// 9x9 despite its asymptotic advantage (Table 3).
	const fftTile = 32.0
	tileOverhead := (fftTile / (fftTile - float64(p.FH) + 1)) *
		(fftTile / (fftTile - float64(p.FW) + 1))
	plane *= tileOverhead
	return gpusim.Plan{
		Algorithm: "Cu-FFT",
		Launches: []gpusim.Launch{
			{
				Name:      "fft-x",
				Blocks:    maxInt(1, int(xPlanes)),
				FLOPs:     fftFlops(xPlanes),
				Bytes:     xPlanes*plane*8 + tensorBytes(p.XShape(), false),
				Intensity: logTerm,
				Eff:       fftEff,
			},
			{
				Name:      "fft-dy",
				Blocks:    maxInt(1, int(yPlanes)),
				FLOPs:     fftFlops(yPlanes),
				Bytes:     yPlanes*plane*8 + tensorBytes(p.DYShape(), false),
				Intensity: logTerm,
				Eff:       fftEff,
			},
			{
				// Batched complex GEMM over the batch axis per frequency;
				// reads both spectrum arrays, writes the accumulator array.
				Name:      "cgemm",
				Blocks:    maxInt(1, int(plane)*ceilDiv(p.OC, gemmBlock)*ceilDiv(p.IC, gemmBlock)),
				FLOPs:     8 * plane * float64(p.OC) * float64(p.IC) * float64(p.N),
				Bytes:     1.5 * (xPlanes + yPlanes + wPlanes) * plane * 8,
				Intensity: gemmIntensity(),
				Eff:       cgemmEff,
			},
			{
				Name:      "ifft-dw",
				Blocks:    maxInt(1, int(wPlanes)),
				FLOPs:     fftFlops(wPlanes),
				Bytes:     wPlanes*plane*8 + tensorBytes(p.DWShape(), false),
				Intensity: logTerm,
				Eff:       fftEff,
			},
		},
		WorkspaceBytes: ws,
	}
}

// WinNF models cuDNN's non-fused 2-D Winograd BFC: four launches with all
// intermediates in global memory. Supported returns false outside its 3×3 /
// 5×5 envelope (3×3 only in FP16).
func WinNF(p conv.Params, fp16 bool) (gpusim.Plan, bool) {
	if !winnf.Supported(p) || (fp16 && p.FH != 3) {
		return gpusim.Plan{}, false
	}
	eb := elemBytes(fp16)
	alpha := p.FH + winnf.TileR - 1
	a2 := float64(alpha * alpha)
	th := ceilDiv(p.OH(), winnf.TileR)
	tw := ceilDiv(p.OW(), winnf.TileR)
	nt := float64(p.N) * float64(th) * float64(tw)
	oc, ic := float64(p.OC), float64(p.IC)
	ftBytes := nt * oc * a2 * eb
	itBytes := nt * ic * a2 * eb
	ewmOut := a2 * oc * ic * eb
	direct := float64(p.FLOPs())
	return gpusim.Plan{
		Algorithm: "Cu-WinNF",
		Launches: []gpusim.Launch{
			{
				Name:      "ft",
				Blocks:    maxInt(1, int(nt)/32),
				FLOPs:     nt * oc * a2 * float64(2*winnf.TileR),
				Bytes:     tensorBytes(p.DYShape(), fp16) + ftBytes,
				Intensity: 2,
			},
			{
				Name:      "it",
				Blocks:    maxInt(1, int(nt)/32),
				FLOPs:     nt * ic * a2 * float64(2*alpha),
				Bytes:     tensorBytes(p.XShape(), fp16) + itBytes,
				Intensity: 2,
			},
			{
				// α² batched GEMMs, OC×IC×NT each: high intensity but it
				// cannot overlap the transform kernels (§6.2).
				Name:      "ewm",
				Blocks:    int(a2) * ceilDiv(p.OC, gemmBlock) * ceilDiv(p.IC, 32),
				FLOPs:     direct / winnf.Accel(p),
				Bytes:     ftBytes + itBytes + ewmOut,
				Intensity: gemmIntensity(),
				Tensor:    fp16,
				Eff:       0.9,
			},
			{
				Name:      "ot",
				Blocks:    maxInt(1, int(oc*ic)/128),
				FLOPs:     oc * ic * a2 * float64(2*p.FH),
				Bytes:     ewmOut + tensorBytes(p.DWShape(), false),
				Intensity: 2,
			},
		},
		WorkspaceBytes: winnfWorkspace(p, eb),
	}, true
}

func winnfWorkspace(p conv.Params, eb float64) int64 {
	alpha := p.FH + winnf.TileR - 1
	a2 := int64(alpha * alpha)
	th := int64(ceilDiv(p.OH(), winnf.TileR))
	tw := int64(ceilDiv(p.OW(), winnf.TileR))
	nt := int64(p.N) * th * tw
	return int64(eb) * (nt*int64(p.OC)*a2 + nt*int64(p.IC)*a2 + a2*int64(p.OC)*int64(p.IC))
}

// CuGEMM returns the fastest of the three GEMM plans on the device — the
// paper's "Cu-GEMM represents the fastest algorithm among Cu-Algo0,
// Cu-Algo1, and Cu-Algo3".
func CuGEMM(p conv.Params, d gpusim.Device, fp16 bool) gpusim.Plan {
	plans := []gpusim.Plan{Algo0(p, fp16), Algo3(p, fp16)}
	if !fp16 {
		plans = append(plans, Algo1(p, false))
	} else {
		// Only Cu-Algo1 supports FP16 Tensor Cores among the GEMM family
		// (§6); in FP16 mode the others fall back to CUDA-core FP32-class
		// launches, which the Tensor flag already excludes. Keep Algo1 in
		// the candidate set.
		plans = append(plans, Algo1(p, true))
		for i := range plans[:2] {
			for j := range plans[i].Launches {
				plans[i].Launches[j].Tensor = false
			}
		}
	}
	best := plans[0]
	for _, pl := range plans[1:] {
		if d.Time(pl) < d.Time(best) {
			best = pl
		}
	}
	best.Algorithm = "Cu-GEMM"
	return best
}

func dataBytes(p conv.Params, fp16 bool) int64 {
	if fp16 {
		return p.DataBytes16()
	}
	return p.DataBytes32()
}

func tensorBytes(s tensor.Shape, fp16 bool) float64 {
	if fp16 {
		return float64(tensor.Bytes16(s))
	}
	return float64(tensor.Bytes32(s))
}

func ceilDiv(a, b int) int { return (a + b - 1) / b }

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// Speedup returns tBase/tWinRS on the device for a baseline plan.
func Speedup(d gpusim.Device, winrs, baseline gpusim.Plan) float64 {
	tw := d.Time(winrs)
	if tw <= 0 {
		return 0
	}
	return d.Time(baseline) / tw
}

// Describe formats a plan's totals for reports.
func Describe(p gpusim.Plan, d gpusim.Device, directFLOPs int64) string {
	t := d.Time(p)
	return fmt.Sprintf("%-9s t=%8.3fms  %7.1f TFLOPS  ws=%7.1f MB",
		p.Algorithm, t*1e3, gpusim.ThroughputTFLOPS(directFLOPs, t),
		float64(p.WorkspaceBytes)/(1<<20))
}

func maxI64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

// Im2colWinograd models the authors' prior work (Im2col-Winograd, ICPP'24)
// as a related-work baseline: the same fused 1-D Winograd kernels, but with
// a fixed workload distribution — no ∇Y segmentation (one block group) and
// a single kernel whose unit width zero-pads O_W up to a multiple of r
// (the redundant computation WinRS's filter split avoids). The comparison
// isolates the paper's two contributions: adaptive distribution and hybrid
// reduce-split units.
func Im2colWinograd(p conv.Params, d gpusim.Device) (gpusim.Plan, error) {
	cfg, err := core.Configure(p, core.WithHardware(core.Hardware{NSM: d.NSM}),
		core.WithSegments(1))
	if err != nil {
		return gpusim.Plan{}, err
	}
	k := cfg.Pair.Fast
	// Zero-pad O_W to a multiple of r: the padded fraction is executed but
	// wasted.
	owPad := ceilDiv(p.OW(), k.R) * k.R
	padFactor := float64(owPad) / float64(p.OW())
	direct := float64(p.FLOPs())
	flops := direct / k.Accel() * 1.10 * padFactor
	dwElems := float64(p.DWShape().Elems())
	bytes := 1.25*(tensorBytes(p.XShape(), false)+
		tensorBytes(p.DYShape(), false))*padFactor + dwElems*4
	return gpusim.Plan{
		Algorithm: "Im2col-Winograd",
		Launches: []gpusim.Launch{{
			Name:      "fixed-1d-winograd",
			Blocks:    core.BlocksPerSegment(k, p, false),
			FLOPs:     flops,
			Bytes:     bytes,
			Intensity: k.Intensity(false),
			Eff:       map[int]float64{2: 0.9, 4: 0.85, 8: 0.8, 16: 0.55}[k.Alpha],
		}},
	}, nil
}
