// Package workload generates the paper's evaluation parameter sweeps
// (§6: BFC parameters drawn from common CNN architectures).
package workload

import (
	"fmt"

	"winrs/internal/conv"
)

// Case is one benchmark point.
type Case struct {
	Label string
	P     conv.Params
}

// DimLabel renders ∇Y dimensions in the paper's N:O_H:O_W:O_C axis format.
func DimLabel(p conv.Params) string {
	return fmt.Sprintf("%d:%d:%d:%d", p.N, p.OH(), p.OW(), p.OC)
}

// Layer builds a same-padded square layer.
func Layer(n, hw, f, c int) conv.Params {
	return conv.Params{N: n, IH: hw, IW: hw, FH: f, FW: f, IC: c, OC: c,
		PH: f / 2, PW: f / 2}
}

// ConstantComplexitySeries returns the paper's Figure 10/11 x-axis: a
// series of ∇Y dimensions with constant time complexity, obtained by
// doubling channels whenever the feature map halves (§6 rule 5). The
// series starts at (hw, c) and halves the feature map while doubling
// channels until the map reaches 14 or channels reach 1024.
func ConstantComplexitySeries(n, hw, c, f int) []Case {
	var out []Case
	for hw >= 14 && c <= 1024 {
		p := Layer(n, hw, f, c)
		if p.Validate() == nil {
			out = append(out, Case{Label: DimLabel(p), P: p})
		}
		hw /= 2
		c *= 2
	}
	return out
}

// PaperSweep returns the full evaluation sweep: filter gradients 2×2..9×9,
// channel ladders at constant complexity from two base resolutions, batch
// sizes 32 and 128. It is the population behind Table 2 (workspace) and
// Table 3 (speedups).
func PaperSweep() []Case {
	var out []Case
	for f := 2; f <= 9; f++ {
		for _, base := range [][2]int{{224, 64}, {128, 128}} {
			for _, n := range []int{32, 128} {
				out = append(out, ConstantComplexitySeries(n, base[0], base[1], f)...)
			}
		}
	}
	return out
}

// FP16Filters lists the filter sizes of the paper's FP16 evaluation
// (Table 3 bottom): 3×3, 5×5, 7×7, 9×9.
var FP16Filters = []int{3, 5, 7, 9}

// AccuracySweep returns small layers (cheap enough for real numeric
// execution) spanning the accumulation-length axis of Figure 12.
func AccuracySweep(f int) []Case {
	var out []Case
	for _, cfg := range []struct{ n, hw, c int }{
		{1, 8, 4}, {1, 16, 4}, {2, 16, 4}, {4, 16, 4}, {4, 32, 4}, {8, 32, 4},
	} {
		p := Layer(cfg.n, cfg.hw, f, cfg.c)
		if p.Validate() == nil {
			out = append(out, Case{Label: DimLabel(p), P: p})
		}
	}
	return out
}

// VGG16Layers returns the 13 convolutional layers of VGG-16 at the given
// batch size — the paper's motivating workload (Figures 1–2 use layer 2).
func VGG16Layers(n int) []Case {
	type l struct{ hw, ic, oc int }
	layers := []l{
		{224, 3, 64}, {224, 64, 64},
		{112, 64, 128}, {112, 128, 128},
		{56, 128, 256}, {56, 256, 256}, {56, 256, 256},
		{28, 256, 512}, {28, 512, 512}, {28, 512, 512},
		{14, 512, 512}, {14, 512, 512}, {14, 512, 512},
	}
	out := make([]Case, 0, len(layers))
	for i, v := range layers {
		p := conv.Params{N: n, IH: v.hw, IW: v.hw, FH: 3, FW: 3,
			IC: v.ic, OC: v.oc, PH: 1, PW: 1}
		out = append(out, Case{Label: fmt.Sprintf("conv%d %dx%d %d->%d",
			i+1, v.hw, v.hw, v.ic, v.oc), P: p})
	}
	return out
}
