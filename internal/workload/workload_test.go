package workload

import (
	"strings"
	"testing"
)

func TestLayerGeometry(t *testing.T) {
	p := Layer(32, 224, 3, 64)
	if p.OH() != 224 || p.OW() != 224 {
		t.Errorf("same-padded 3x3 layer should keep spatial size, got %dx%d",
			p.OH(), p.OW())
	}
	if p.PH != 1 || p.PW != 1 {
		t.Errorf("padding = %d,%d, want 1,1", p.PH, p.PW)
	}
	if DimLabel(p) != "32:224:224:64" {
		t.Errorf("DimLabel = %q", DimLabel(p))
	}
}

func TestConstantComplexitySeries(t *testing.T) {
	series := ConstantComplexitySeries(32, 224, 64, 3)
	if len(series) != 5 {
		t.Fatalf("series length %d, want 5 (224..14)", len(series))
	}
	base := series[0].P.FLOPs()
	for i, c := range series {
		if err := c.P.Validate(); err != nil {
			t.Fatalf("entry %d invalid: %v", i, err)
		}
		// The §6 rule: doubling channels while halving the map keeps
		// complexity constant to within boundary effects.
		ratio := float64(c.P.FLOPs()) / float64(base)
		if ratio < 0.8 || ratio > 1.25 {
			t.Errorf("entry %d (%s): FLOPs ratio %v not ~constant", i, c.Label, ratio)
		}
		if i > 0 && c.P.OC != 2*series[i-1].P.OC {
			t.Errorf("entry %d: channels %d, want doubling", i, c.P.OC)
		}
	}
}

func TestPaperSweepPopulation(t *testing.T) {
	sweep := PaperSweep()
	if len(sweep) < 100 {
		t.Fatalf("sweep has only %d cases", len(sweep))
	}
	fSeen := map[int]bool{}
	nSeen := map[int]bool{}
	for _, c := range sweep {
		if err := c.P.Validate(); err != nil {
			t.Fatalf("invalid case %v: %v", c.P, err)
		}
		if c.P.FH != c.P.FW {
			t.Errorf("non-square filter in sweep: %v", c.P)
		}
		fSeen[c.P.FH] = true
		nSeen[c.P.N] = true
	}
	for f := 2; f <= 9; f++ {
		if !fSeen[f] {
			t.Errorf("filter size %d missing from sweep", f)
		}
	}
	if !nSeen[32] || !nSeen[128] {
		t.Error("sweep should cover batch sizes 32 and 128")
	}
}

func TestAccuracySweepOrderedByAccumulation(t *testing.T) {
	sweep := AccuracySweep(3)
	if len(sweep) < 4 {
		t.Fatalf("accuracy sweep too small: %d", len(sweep))
	}
	prev := 0
	for _, c := range sweep {
		acc := c.P.N * c.P.OH() * c.P.OW()
		if acc < prev {
			t.Errorf("accumulation lengths not non-decreasing: %d after %d", acc, prev)
		}
		prev = acc
	}
}

func TestVGG16Layers(t *testing.T) {
	layers := VGG16Layers(32)
	if len(layers) != 13 {
		t.Fatalf("VGG16 has 13 conv layers, got %d", len(layers))
	}
	if layers[0].P.IC != 3 || layers[0].P.OC != 64 {
		t.Errorf("conv1_1 channels = %d->%d", layers[0].P.IC, layers[0].P.OC)
	}
	if layers[12].P.IH != 14 || layers[12].P.OC != 512 {
		t.Errorf("conv5_3 geometry wrong: %v", layers[12].P)
	}
	for _, l := range layers {
		if err := l.P.Validate(); err != nil {
			t.Fatalf("%s invalid: %v", l.Label, err)
		}
		if !strings.Contains(l.Label, "conv") {
			t.Errorf("label %q missing layer name", l.Label)
		}
	}
}

func TestFP16FiltersMatchPaper(t *testing.T) {
	want := []int{3, 5, 7, 9}
	if len(FP16Filters) != len(want) {
		t.Fatalf("FP16Filters = %v", FP16Filters)
	}
	for i, f := range want {
		if FP16Filters[i] != f {
			t.Errorf("FP16Filters[%d] = %d, want %d", i, FP16Filters[i], f)
		}
	}
}
