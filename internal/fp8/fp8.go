// Package fp8 implements the two OCP 8-bit floating-point formats in
// software: E4M3 (4 exponent bits, 3 mantissa bits, bias 7, max 448, no
// infinities) and E5M2 (5 exponent bits, 2 mantissa bits, bias 15, IEEE
// specials). The paper's conclusion lists FP8 as a future porting target
// for the WinRS kernels; these rounders drive the generic quantized
// execution path.
package fp8

import "math"

// Format selects an 8-bit layout.
type Format int

// The supported formats.
const (
	E4M3 Format = iota // range ±448, finer mantissa
	E5M2               // range ±57344, coarser mantissa
)

type spec struct {
	expBits, manBits int
	bias             int
	maxFinite        float64
	hasInf           bool
}

func (f Format) spec() spec {
	switch f {
	case E4M3:
		// E4M3 sacrifices the infinity/NaN block of the top exponent for
		// extra finite values; max finite is 1.75·2^8 = 448.
		return spec{expBits: 4, manBits: 3, bias: 7, maxFinite: 448, hasInf: false}
	default:
		return spec{expBits: 5, manBits: 2, bias: 15, maxFinite: 57344, hasInf: true}
	}
}

// MaxValue returns the format's largest finite magnitude.
func (f Format) MaxValue() float32 { return float32(f.spec().maxFinite) }

// Round returns the nearest representable value of the format as a
// float32, with round-to-nearest-even, saturating E4M3 at ±448 (the OCP
// convention for conversions) and overflowing E5M2 to ±Inf.
func (f Format) Round(v float32) float32 {
	s := f.spec()
	x := float64(v)
	if math.IsNaN(x) {
		return v
	}
	sign := 1.0
	if math.Signbit(x) {
		sign = -1
	}
	ax := math.Abs(x)
	if math.IsInf(x, 0) {
		if s.hasInf {
			return v
		}
		return float32(sign * s.maxFinite)
	}
	if ax == 0 {
		return v
	}

	minNormExp := 1 - s.bias // unbiased exponent of the smallest normal
	// Decompose ax = m·2^e with m ∈ [1,2).
	m, e := math.Frexp(ax) // m ∈ [0.5,1), ax = m·2^e
	m *= 2
	e--

	grid := float64(int64(1) << s.manBits) // mantissa steps per binade
	var q float64
	if e < minNormExp {
		// Subnormal: fixed quantum 2^(minNormExp - manBits).
		quantum := math.Ldexp(1, minNormExp-s.manBits)
		q = roundEven(ax/quantum) * quantum
	} else {
		q = math.Ldexp(roundEven(m*grid)/grid, e)
	}
	if q > s.maxFinite {
		if s.hasInf {
			return float32(sign * math.Inf(1))
		}
		q = s.maxFinite
	}
	return float32(sign * q)
}

// roundEven rounds to the nearest integer with ties to even.
func roundEven(x float64) float64 {
	return math.RoundToEven(x)
}

// Epsilon returns the relative spacing at 1.0.
func (f Format) Epsilon() float32 {
	return float32(math.Ldexp(1, -f.spec().manBits))
}

// String names the format.
func (f Format) String() string {
	if f == E4M3 {
		return "FP8-E4M3"
	}
	return "FP8-E5M2"
}
