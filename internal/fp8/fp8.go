// Package fp8 implements the two OCP 8-bit floating-point formats in
// software: E4M3 (4 exponent bits, 3 mantissa bits, bias 7, max 448, no
// infinities) and E5M2 (5 exponent bits, 2 mantissa bits, bias 15, IEEE
// specials). The paper's conclusion lists FP8 as a future porting target
// for the WinRS kernels; these rounders drive the generic quantized
// execution path.
package fp8

import (
	"math"
	"sync"
)

// Format selects an 8-bit layout.
type Format int

// The supported formats.
const (
	E4M3 Format = iota // range ±448, finer mantissa
	E5M2               // range ±57344, coarser mantissa
)

type spec struct {
	expBits, manBits int
	bias             int
	maxFinite        float64
	hasInf           bool
}

func (f Format) spec() spec {
	switch f {
	case E4M3:
		// E4M3 sacrifices the infinity/NaN block of the top exponent for
		// extra finite values; max finite is 1.75·2^8 = 448.
		return spec{expBits: 4, manBits: 3, bias: 7, maxFinite: 448, hasInf: false}
	default:
		return spec{expBits: 5, manBits: 2, bias: 15, maxFinite: 57344, hasInf: true}
	}
}

// MaxValue returns the format's largest finite magnitude.
func (f Format) MaxValue() float32 { return float32(f.spec().maxFinite) }

// Round returns the nearest representable value of the format as a
// float32, with round-to-nearest-even, saturating E4M3 at ±448 (the OCP
// convention for conversions) and overflowing E5M2 to ±Inf.
func (f Format) Round(v float32) float32 {
	s := f.spec()
	x := float64(v)
	if math.IsNaN(x) {
		return v
	}
	sign := 1.0
	if math.Signbit(x) {
		sign = -1
	}
	ax := math.Abs(x)
	if math.IsInf(x, 0) {
		if s.hasInf {
			return v
		}
		return float32(sign * s.maxFinite)
	}
	if ax == 0 {
		return v
	}

	minNormExp := 1 - s.bias // unbiased exponent of the smallest normal
	// Decompose ax = m·2^e with m ∈ [1,2).
	m, e := math.Frexp(ax) // m ∈ [0.5,1), ax = m·2^e
	m *= 2
	e--

	grid := float64(int64(1) << s.manBits) // mantissa steps per binade
	var q float64
	if e < minNormExp {
		// Subnormal: fixed quantum 2^(minNormExp - manBits).
		quantum := math.Ldexp(1, minNormExp-s.manBits)
		q = roundEven(ax/quantum) * quantum
	} else {
		q = math.Ldexp(roundEven(m*grid)/grid, e)
	}
	if q > s.maxFinite {
		if s.hasInf {
			return float32(sign * math.Inf(1))
		}
		q = s.maxFinite
	}
	return float32(sign * q)
}

// roundEven rounds to the nearest integer with ties to even.
func roundEven(x float64) float64 {
	return math.RoundToEven(x)
}

// fp8Tables is the table-driven bulk rounder of one format, mirroring the
// fp16 codec scheme at 8-bit width: the float32 exponent byte selects a
// base pattern, mantissa shift and implicit-bit OR (256-entry class
// tables), an RNE fixup rounds the dropped bits, a saturation clamp
// implements the OCP conversion convention (E4M3 clamps to ±448 instead
// of producing the NaN pattern, E5M2 overflows to ±Inf), and a 128-entry
// value LUT decodes the resulting pattern back to the float32 value
// domain. Built lazily once per format; the scalar Round stays as the
// rounding oracle.
type fp8Tables struct {
	base  [256]uint8
	shift [256]uint8
	or    [256]uint32
	val   [128]float32
	// satPat is the largest pattern the encoder may produce: the max
	// finite pattern for E4M3, the Inf pattern for E5M2.
	satPat uint32
}

var fp8TableCache [2]struct {
	once sync.Once
	t    *fp8Tables
}

func (f Format) tables() *fp8Tables {
	slot := &fp8TableCache[0]
	if f == E5M2 {
		slot = &fp8TableCache[1]
	}
	slot.once.Do(func() {
		s := f.spec()
		minNorm := 1 - s.bias
		maxExp := (1<<s.expBits - 1) - s.bias // E4M3: top exponent is finite
		if s.hasInf {
			maxExp = (1<<s.expBits - 2) - s.bias
		}
		t := &fp8Tables{}
		if s.hasInf {
			t.satPat = uint32((1<<s.expBits - 1) << s.manBits) // Inf
		} else {
			t.satPat = uint32((1<<s.expBits)<<s.manBits - 2) // max finite
		}
		for c := 0; c < 256; c++ {
			e := c - 127
			switch {
			case c == 0 || e < minNorm-s.manBits-1:
				// Zeros, float32 subnormals and values below half the
				// smallest fp8 subnormal: signed zero, no rounding
				// (shift 24 keeps the remainder under the half-point).
				t.shift[c] = 24
			case e < minNorm:
				t.or[c] = 0x800000
				t.shift[c] = uint8(23 - s.manBits + minNorm - e)
			case e <= maxExp:
				t.base[c] = uint8((e + s.bias) << s.manBits)
				t.shift[c] = uint8(23 - s.manBits)
			default:
				// Overflow (including float32 Inf, whose NaNs are
				// intercepted before the tables): saturation pattern.
				t.base[c] = uint8(t.satPat)
				t.shift[c] = 24
			}
		}
		manGrid := float64(int64(1) << s.manBits)
		for p := 0; p < 128; p++ {
			exp := p >> s.manBits
			man := p & (1<<s.manBits - 1)
			switch {
			case exp == 0:
				t.val[p] = float32(float64(man) * math.Ldexp(1, minNorm-s.manBits))
			case s.hasInf && exp == 1<<s.expBits-1:
				if man == 0 {
					t.val[p] = float32(math.Inf(1))
				} else {
					t.val[p] = float32(math.NaN())
				}
			case !s.hasInf && p == (1<<s.expBits)<<s.manBits-1:
				t.val[p] = float32(math.NaN())
			default:
				t.val[p] = float32((1 + float64(man)/manGrid) * math.Ldexp(1, exp-s.bias))
			}
		}
		slot.t = t
	})
	return slot.t
}

// RoundSlice rounds every element of vs to the format's nearest
// representable value in place, bit-identical to Round per element — the
// slice-codec interface shared with fp16 and bf16, used by the quantized
// execution path to round whole gathered panels at once.
func (f Format) RoundSlice(vs []float32) {
	t := f.tables()
	for i, v := range vs {
		b := math.Float32bits(v)
		if b&0x7F800000 == 0x7F800000 && b&0x7FFFFF != 0 {
			continue // NaN passes through unchanged, like Round
		}
		c := b >> 23 & 0xFF
		m := b&0x7FFFFF | t.or[c]
		sh := uint32(t.shift[c])
		h := uint32(t.base[c]) + m>>sh
		rem := m & (1<<sh - 1)
		if rem+(h&1) > 1<<(sh-1) {
			h++
		}
		if h > t.satPat {
			h = t.satPat
		}
		vs[i] = math.Float32frombits(b&0x80000000 | math.Float32bits(t.val[h]))
	}
}

// Epsilon returns the relative spacing at 1.0.
func (f Format) Epsilon() float32 {
	return float32(math.Ldexp(1, -f.spec().manBits))
}

// String names the format.
func (f Format) String() string {
	if f == E4M3 {
		return "FP8-E4M3"
	}
	return "FP8-E5M2"
}
