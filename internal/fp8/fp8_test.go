package fp8

import (
	"math"
	"testing"
	"testing/quick"
)

func TestExactValues(t *testing.T) {
	for _, f := range []Format{E4M3, E5M2} {
		for _, v := range []float32{0, 1, -1, 2, 0.5, 1.5, -3, 8, 0.25} {
			if got := f.Round(v); got != v {
				t.Errorf("%v.Round(%v) = %v, want exact", f, v, got)
			}
		}
	}
}

func TestMaxValues(t *testing.T) {
	if E4M3.MaxValue() != 448 {
		t.Errorf("E4M3 max = %v, want 448", E4M3.MaxValue())
	}
	if E5M2.MaxValue() != 57344 {
		t.Errorf("E5M2 max = %v, want 57344", E5M2.MaxValue())
	}
	// Saturation vs overflow semantics.
	if got := E4M3.Round(1e6); got != 448 {
		t.Errorf("E4M3 should saturate at 448, got %v", got)
	}
	if got := E4M3.Round(-1e6); got != -448 {
		t.Errorf("E4M3 should saturate at -448, got %v", got)
	}
	if got := E5M2.Round(1e6); !math.IsInf(float64(got), 1) {
		t.Errorf("E5M2 should overflow to +Inf, got %v", got)
	}
}

func TestMantissaGranularity(t *testing.T) {
	// E4M3 at [1,2): steps of 1/8. 1.0625 is halfway between 1 and 1.125;
	// RNE picks the even mantissa (1.0).
	if got := E4M3.Round(1.0625); got != 1.0 {
		t.Errorf("E4M3 RNE(1.0625) = %v, want 1", got)
	}
	if got := E4M3.Round(1.19); got != 1.25 {
		t.Errorf("E4M3 Round(1.19) = %v, want 1.25", got)
	}
	// E5M2 at [1,2): steps of 1/4.
	if got := E5M2.Round(1.1); got != 1.0 {
		t.Errorf("E5M2 Round(1.1) = %v, want 1", got)
	}
	if got := E5M2.Round(1.2); got != 1.25 {
		t.Errorf("E5M2 Round(1.2) = %v, want 1.25", got)
	}
}

func TestSpecials(t *testing.T) {
	for _, f := range []Format{E4M3, E5M2} {
		if got := f.Round(float32(math.NaN())); !math.IsNaN(float64(got)) {
			t.Errorf("%v: NaN must pass through", f)
		}
		if got := f.Round(0); got != 0 {
			t.Errorf("%v: zero must pass through", f)
		}
	}
	if got := E5M2.Round(float32(math.Inf(-1))); !math.IsInf(float64(got), -1) {
		t.Error("E5M2 must keep -Inf")
	}
	if got := E4M3.Round(float32(math.Inf(1))); got != 448 {
		t.Errorf("E4M3 must clamp +Inf to 448, got %v", got)
	}
}

// Round is idempotent and the relative error is bounded by half the
// format's epsilon for normal-range inputs.
func TestRoundProperties(t *testing.T) {
	for _, f := range []Format{E4M3, E5M2} {
		eps := float64(f.Epsilon())
		max := float64(f.MaxValue())
		prop := func(v float32) bool {
			x := float64(v)
			if x != x || math.Abs(x) > max || math.Abs(x) < 0.01 {
				return true
			}
			r := f.Round(v)
			if f.Round(r) != r {
				return false
			}
			rel := math.Abs(float64(r)-x) / math.Abs(x)
			return rel <= eps/2+1e-9
		}
		if err := quick.Check(prop, &quick.Config{MaxCount: 3000}); err != nil {
			t.Errorf("%v: %v", f, err)
		}
	}
}

func TestSubnormals(t *testing.T) {
	// E4M3 smallest subnormal: 2^-9 ≈ 0.001953125.
	tiny := float32(math.Ldexp(1, -9))
	if got := E4M3.Round(tiny); got != tiny {
		t.Errorf("E4M3 smallest subnormal %v -> %v", tiny, got)
	}
	// Half of it rounds to zero (ties to even).
	if got := E4M3.Round(tiny / 2); got != 0 {
		t.Errorf("E4M3 half subnormal should round to 0, got %v", got)
	}
	if got := E4M3.Round(tiny * 0.75); got != tiny {
		t.Errorf("E4M3 0.75 subnormal should round up, got %v", got)
	}
}

func TestStringNames(t *testing.T) {
	if E4M3.String() != "FP8-E4M3" || E5M2.String() != "FP8-E5M2" {
		t.Error("format names wrong")
	}
}
