package fp8

import (
	"math"
	"math/rand"
	"testing"
)

func sameF32(a, b float32) bool {
	return math.Float32bits(a) == math.Float32bits(b)
}

// boundaryInputs builds the structured sweep for one format: every value
// on a mantissa grid four times finer than the format's across the full
// exponent range (so every representable value, every rounding midpoint
// and every quarter-point appears exactly), the float32 neighbours of
// each, the subnormal/overflow edges, and specials.
func boundaryInputs(f Format) []float32 {
	var vs []float32
	add := func(v float32) {
		vs = append(vs, v, -v,
			math.Nextafter32(v, float32(math.Inf(1))),
			math.Nextafter32(v, float32(math.Inf(-1))),
			-math.Nextafter32(v, float32(math.Inf(1))),
			-math.Nextafter32(v, float32(math.Inf(-1))))
	}
	// Grid of 1/32 mantissa steps covers ties for both formats (E4M3
	// midpoints sit on 1/16 steps, E5M2 on 1/8).
	for e := -30; e <= 20; e++ {
		scale := math.Ldexp(1, e)
		for k := 32; k < 64; k++ {
			add(float32(float64(k) / 32 * scale))
		}
	}
	add(0)
	add(f.MaxValue())
	add(float32(math.Inf(1)))
	vs = append(vs, float32(math.NaN()),
		math.Float32frombits(0x7F800001), math.Float32frombits(0xFFC12345),
		math.Float32frombits(0x00000001), math.Float32frombits(0x807FFFFF))
	return vs
}

// RoundSlice must match the scalar Round oracle bit-for-bit (sign of
// zero, NaN payload passthrough, saturation vs overflow) on the
// structured boundary sweep and on random float32 bit patterns.
func TestRoundSliceMatchesScalar(t *testing.T) {
	for _, f := range []Format{E4M3, E5M2} {
		vals := boundaryInputs(f)
		rng := rand.New(rand.NewSource(20260805))
		for i := 0; i < 1<<20; i++ {
			vals = append(vals, math.Float32frombits(rng.Uint32()))
		}
		got := append([]float32(nil), vals...)
		f.RoundSlice(got)
		for i, v := range vals {
			want := f.Round(v)
			if !sameF32(got[i], want) {
				t.Fatalf("%v.RoundSlice(%x = %v) = %x (%v), scalar Round = %x (%v)",
					f, math.Float32bits(v), v,
					math.Float32bits(got[i]), got[i],
					math.Float32bits(want), want)
			}
		}
	}
}

// The table path must preserve the scalar's special-value conventions.
func TestRoundSliceSpecials(t *testing.T) {
	in := []float32{
		float32(math.Inf(1)), float32(math.Inf(-1)),
		float32(math.Copysign(0, -1)), 0,
		1e6, -1e6,
	}
	e4 := append([]float32(nil), in...)
	E4M3.RoundSlice(e4)
	if e4[0] != 448 || e4[1] != -448 || e4[4] != 448 || e4[5] != -448 {
		t.Errorf("E4M3 saturation broken: %v", e4)
	}
	e5 := append([]float32(nil), in...)
	E5M2.RoundSlice(e5)
	if !math.IsInf(float64(e5[0]), 1) || !math.IsInf(float64(e5[1]), -1) ||
		!math.IsInf(float64(e5[4]), 1) || !math.IsInf(float64(e5[5]), -1) {
		t.Errorf("E5M2 overflow broken: %v", e5)
	}
	for _, out := range [][]float32{e4, e5} {
		if !sameF32(out[2], float32(math.Copysign(0, -1))) || !sameF32(out[3], 0) {
			t.Errorf("zero signs not preserved: %v", out[2:4])
		}
	}
	nan := []float32{math.Float32frombits(0xFFC12345)}
	E4M3.RoundSlice(nan)
	if math.Float32bits(nan[0]) != 0xFFC12345 {
		t.Errorf("NaN payload not passed through: %#08x", math.Float32bits(nan[0]))
	}
}

// Every fp8-representable value must survive RoundSlice unchanged
// (idempotence on the format's grid), walked directly off the decode LUT.
func TestRoundSliceIdempotentOnGrid(t *testing.T) {
	for _, f := range []Format{E4M3, E5M2} {
		tab := f.tables()
		for p, v := range tab.val {
			if v != v || math.IsInf(float64(v), 0) {
				continue
			}
			for _, s := range []float32{v, -v} {
				got := []float32{s}
				f.RoundSlice(got)
				if want := f.Round(s); !sameF32(got[0], want) {
					t.Fatalf("%v pattern %#02x (%v): RoundSlice = %v, Round = %v",
						f, p, s, got[0], want)
				}
				if math.Abs(float64(got[0])) != math.Abs(float64(v)) && s != 0 {
					t.Fatalf("%v grid value %v not a fixed point: got %v", f, s, got[0])
				}
			}
		}
	}
}

func BenchmarkRoundSliceTable(b *testing.B) {
	rng := rand.New(rand.NewSource(11))
	vs := make([]float32, 4096)
	for i := range vs {
		vs[i] = rng.Float32()*8 - 4
	}
	b.SetBytes(int64(len(vs) * 4))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		E4M3.RoundSlice(vs)
	}
}

func BenchmarkRoundScalar(b *testing.B) {
	rng := rand.New(rand.NewSource(11))
	vs := make([]float32, 4096)
	for i := range vs {
		vs[i] = rng.Float32()*8 - 4
	}
	b.SetBytes(int64(len(vs) * 4))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j, v := range vs {
			vs[j] = E4M3.Round(v)
		}
	}
}
