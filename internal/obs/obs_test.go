package obs

import (
	"io"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestRegistryPrometheusFormat(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("t_requests_total", "Requests.", Label{"op", "bf"})
	c.Add(3)
	r.Counter("t_requests_total", "Requests.", Label{"op", "fwd"}) // zero series
	g := r.Gauge("t_depth", "Queue depth.")
	g.Set(2.5)
	r.GaugeFunc("t_uptime_seconds", "Uptime.", func() float64 { return 42 })
	r.CounterFunc("t_hits_total", "Hits.", func() uint64 { return 7 })
	h := r.Histogram("t_latency_seconds", "Latency.", []float64{0.5, 0.99})
	h.Observe(2 * time.Millisecond)
	h.Observe(3 * time.Millisecond)

	var b strings.Builder
	if err := r.WriteText(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"# TYPE t_requests_total counter",
		`t_requests_total{op="bf"} 3`,
		`t_requests_total{op="fwd"} 0`,
		"t_depth 2.5",
		"t_uptime_seconds 42",
		"t_hits_total 7",
		"# TYPE t_latency_seconds histogram",
		"t_latency_seconds_count 2",
		`t_latency_seconds{quantile="0.99"}`,
		`t_latency_seconds_bucket{le="+Inf"} 2`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	// One HELP/TYPE header per family, not per series.
	if n := strings.Count(out, "# TYPE t_requests_total"); n != 1 {
		t.Errorf("expected 1 TYPE header for the counter family, got %d", n)
	}
}

func TestRegistryIdempotentRegistration(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("t_c", "h", Label{"k", "v"})
	b := r.Counter("t_c", "h", Label{"k", "v"})
	if a != b {
		t.Error("re-registering the same series must return the same handle")
	}
	defer func() {
		if recover() == nil {
			t.Error("re-registering under a different type must panic")
		}
	}()
	r.Gauge("t_c", "h", Label{"k", "v"})
}

func TestHistogramQuantiles(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("t_h", "h", nil)
	for i := 0; i < 900; i++ {
		h.Observe(time.Millisecond)
	}
	for i := 0; i < 100; i++ {
		h.Observe(100 * time.Millisecond)
	}
	p50, n := h.Quantile(0.5)
	if n != 1000 {
		t.Fatalf("count = %d", n)
	}
	// Upper-bound quantiles at ~25% bucket resolution.
	if p50 < 1e-3 || p50 > 1.3e-3 {
		t.Errorf("p50 = %v, want ~1ms", p50)
	}
	p99, _ := h.Quantile(0.99)
	if p99 < 0.1 || p99 > 0.13 {
		t.Errorf("p99 = %v, want ~100ms", p99)
	}
}

func TestStageTraceRecording(t *testing.T) {
	ResetTrace()
	EnableTrace(true)
	defer EnableTrace(false)
	RecordUnit(10*time.Microsecond, UnitTimes{Transform: 4 * time.Microsecond, EWM: 5 * time.Microsecond})
	RecordUnit(10*time.Microsecond, UnitTimes{Transform: 4 * time.Microsecond, EWM: 5 * time.Microsecond})
	RecordStage(StageReduce, 20*time.Microsecond)

	snap := TraceSnapshot()
	if snap[StageSegmentTile].Count != 2 || snap[StageReduce].Count != 1 {
		t.Fatalf("snapshot counts wrong: %+v", snap)
	}
	if snap[StageTransform].Total != 8*time.Microsecond {
		t.Errorf("transform total = %v", snap[StageTransform].Total)
	}
	shares := StageShares()
	// Denominator is tile+reduce = 40µs.
	if got := shares["reduce"]; got < 0.49 || got > 0.51 {
		t.Errorf("reduce share = %v, want 0.5", got)
	}
	if got := shares["transform"]; got < 0.19 || got > 0.21 {
		t.Errorf("transform share = %v, want 0.2", got)
	}

	var b strings.Builder
	if err := WriteTraceTo(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"# TYPE winrs_stage_duration_seconds histogram",
		`winrs_stage_duration_seconds_count{stage="segment_tile"} 2`,
		`winrs_stage_duration_seconds{stage="reduce",quantile="0.5"}`,
		`winrs_stage_units_total{stage="ewm"} 2`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("trace output missing %q:\n%s", want, out)
		}
	}

	ResetTrace()
	if snap := TraceSnapshot(); snap[StageSegmentTile].Count != 0 {
		t.Error("ResetTrace did not clear counts")
	}
}

// Concurrent updates and scrapes on every metric kind plus the trace
// recorder. Run with -race: this is the satellite race test for the
// registry and trace recorder at the obs level (the end-to-end
// Execute-vs-scrape variant lives in the repo root and internal/serve).
func TestRegistryAndTraceConcurrent(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("t_cc", "h")
	g := r.Gauge("t_gg", "h")
	h := r.Histogram("t_hh", "h", []float64{0.5})
	ResetTrace()
	EnableTrace(true)
	defer EnableTrace(false)

	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				c.Add(1)
				g.Set(float64(i))
				h.Observe(time.Duration(i) * time.Microsecond)
				RecordUnit(time.Microsecond, UnitTimes{Transform: 300 * time.Nanosecond, EWM: 500 * time.Nanosecond})
				if i%100 == 0 {
					if err := r.WriteText(io.Discard); err != nil {
						t.Error(err)
					}
					if err := WriteTraceTo(io.Discard); err != nil {
						t.Error(err)
					}
					TraceSnapshot()
				}
			}
		}(w)
	}
	wg.Wait()
	if c.Load() != 4000 {
		t.Errorf("counter = %d, want 4000", c.Load())
	}
	if _, n := h.Quantile(0.5); n != 4000 {
		t.Errorf("histogram count = %d, want 4000", n)
	}
	if snap := TraceSnapshot(); snap[StageSegmentTile].Count != 4000 {
		t.Errorf("trace count = %d, want 4000", snap[StageSegmentTile].Count)
	}
}
