package obs

import (
	"fmt"
	"io"
	"math"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Label is one name="value" pair attached to a metric series.
type Label struct{ Key, Value string }

// Registry holds a set of metrics and renders them in Prometheus text
// exposition format. Registration takes a mutex; updates on the returned
// handles are lock-free atomics. A Registry is safe for concurrent use.
type Registry struct {
	mu sync.Mutex
	ms []metric
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry { return &Registry{} }

// Default is the process-wide registry: runtime gauges live here, and any
// component without a narrower scope may register into it.
var Default = newDefaultRegistry()

func newDefaultRegistry() *Registry {
	r := NewRegistry()
	r.GaugeFunc("winrs_process_goroutines",
		"Number of live goroutines.",
		func() float64 { return float64(runtime.NumGoroutine()) })
	r.GaugeFunc("winrs_process_heap_alloc_bytes",
		"Bytes of allocated heap objects.",
		func() float64 {
			var ms runtime.MemStats
			runtime.ReadMemStats(&ms)
			return float64(ms.HeapAlloc)
		})
	r.GaugeFunc("winrs_process_gomaxprocs",
		"Value of GOMAXPROCS.",
		func() float64 { return float64(runtime.GOMAXPROCS(0)) })
	return r
}

// metric is one registered series (or series family member).
type metric interface {
	id() metricID
	// write emits the metric's sample lines (no HELP/TYPE headers).
	write(w io.Writer)
}

type metricID struct {
	name, typ, help, labels string
}

func renderLabels(labels []Label) string {
	if len(labels) == 0 {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, l := range labels {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s=%q", l.Key, l.Value)
	}
	b.WriteByte('}')
	return b.String()
}

// register appends m unless an identical (name, labels) series exists, in
// which case the existing one is returned so duplicate registration is
// idempotent. Registering the same series under a different type panics —
// that is a programming error, not an operational condition.
func (r *Registry) register(m metric) metric {
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, e := range r.ms {
		if e.id().name == m.id().name && e.id().labels == m.id().labels {
			if e.id().typ != m.id().typ {
				panic("obs: metric " + m.id().name + " re-registered with a different type")
			}
			return e
		}
	}
	r.ms = append(r.ms, m)
	return m
}

// WriteText renders every registered metric in Prometheus text format,
// grouping series families under one HELP/TYPE header. It never fails on
// the metrics side; the returned error is the writer's.
func (r *Registry) WriteText(w io.Writer) error {
	r.mu.Lock()
	ms := make([]metric, len(r.ms))
	copy(ms, r.ms)
	r.mu.Unlock()
	sort.SliceStable(ms, func(i, j int) bool {
		a, b := ms[i].id(), ms[j].id()
		if a.name != b.name {
			return a.name < b.name
		}
		return a.labels < b.labels
	})
	cw := &countingWriter{w: w}
	prev := ""
	for _, m := range ms {
		if id := m.id(); id.name != prev {
			prev = id.name
			if id.help != "" {
				fmt.Fprintf(cw, "# HELP %s %s\n", id.name, id.help)
			}
			fmt.Fprintf(cw, "# TYPE %s %s\n", id.name, id.typ)
		}
		m.write(cw)
	}
	return cw.err
}

// countingWriter latches the first write error so WriteTo need not check
// every Fprintf.
type countingWriter struct {
	w   io.Writer
	err error
}

func (c *countingWriter) Write(p []byte) (int, error) {
	if c.err != nil {
		return len(p), nil
	}
	n, err := c.w.Write(p)
	c.err = err
	return n, nil
}

func formatFloat(v float64) string {
	if math.IsInf(v, +1) {
		return "+Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// --- Counter ---

// Counter is a monotonically increasing uint64.
type Counter struct {
	mid metricID
	v   atomic.Uint64
}

// Counter registers (or returns the existing) counter series.
func (r *Registry) Counter(name, help string, labels ...Label) *Counter {
	c := &Counter{mid: metricID{name, "counter", help, renderLabels(labels)}}
	return r.register(c).(*Counter)
}

// Add increments the counter.
func (c *Counter) Add(delta uint64) { c.v.Add(delta) }

// Load returns the current count.
func (c *Counter) Load() uint64 { return c.v.Load() }

func (c *Counter) id() metricID { return c.mid }
func (c *Counter) write(w io.Writer) {
	fmt.Fprintf(w, "%s%s %d\n", c.mid.name, c.mid.labels, c.v.Load())
}

// --- CounterFunc ---

// counterFunc is a counter whose value is read from a callback at scrape
// time (cumulative values owned elsewhere, e.g. the plan cache).
type counterFunc struct {
	mid metricID
	fn  func() uint64
}

// CounterFunc registers a callback-backed counter.
func (r *Registry) CounterFunc(name, help string, fn func() uint64, labels ...Label) {
	r.register(&counterFunc{metricID{name, "counter", help, renderLabels(labels)}, fn})
}

func (c *counterFunc) id() metricID { return c.mid }
func (c *counterFunc) write(w io.Writer) {
	fmt.Fprintf(w, "%s%s %d\n", c.mid.name, c.mid.labels, c.fn())
}

// --- Gauge ---

// Gauge is a settable float64 value.
type Gauge struct {
	mid  metricID
	bits atomic.Uint64
}

// Gauge registers (or returns the existing) gauge series.
func (r *Registry) Gauge(name, help string, labels ...Label) *Gauge {
	g := &Gauge{mid: metricID{name, "gauge", help, renderLabels(labels)}}
	return r.register(g).(*Gauge)
}

// Set stores v.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Value returns the current value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

func (g *Gauge) id() metricID { return g.mid }
func (g *Gauge) write(w io.Writer) {
	fmt.Fprintf(w, "%s%s %s\n", g.mid.name, g.mid.labels, formatFloat(g.Value()))
}

// --- GaugeFunc ---

type gaugeFunc struct {
	mid metricID
	fn  func() float64
}

// GaugeFunc registers a callback-backed gauge (queue depths, pool sizes…).
func (r *Registry) GaugeFunc(name, help string, fn func() float64, labels ...Label) {
	r.register(&gaugeFunc{metricID{name, "gauge", help, renderLabels(labels)}, fn})
}

func (g *gaugeFunc) id() metricID { return g.mid }
func (g *gaugeFunc) write(w io.Writer) {
	fmt.Fprintf(w, "%s%s %s\n", g.mid.name, g.mid.labels, formatFloat(g.fn()))
}

// --- Histogram ---

// Histogram is a striped geometric duration histogram (see obs.go for the
// bucket scheme): lock-free Observe, approximate upper-bound quantiles, and
// Prometheus histogram exposition (cumulative le-buckets plus _sum/_count)
// with optional summary-style quantile lines for human scrapes.
type Histogram struct {
	mid       metricID
	labels    []Label
	quantiles []float64
	h         hist
	count     atomic.Uint64
	sumNS     atomic.Int64
}

// Histogram registers (or returns the existing) histogram. quantiles lists
// the summary points additionally exported (e.g. 0.5, 0.9, 0.99); nil
// exports buckets only.
func (r *Registry) Histogram(name, help string, quantiles []float64, labels ...Label) *Histogram {
	h := &Histogram{
		mid:       metricID{name, "histogram", help, renderLabels(labels)},
		labels:    labels,
		quantiles: quantiles,
	}
	return r.register(h).(*Histogram)
}

// Observe records one duration.
func (h *Histogram) Observe(d time.Duration) {
	h.h.record(d)
	h.count.Add(1)
	h.sumNS.Add(d.Nanoseconds())
}

// Quantile returns the approximate q-quantile in seconds and the number of
// observations.
func (h *Histogram) Quantile(q float64) (seconds float64, count uint64) {
	counts, total := h.h.snapshot()
	return quantileOf(&counts, total, q), total
}

func (h *Histogram) id() metricID { return h.mid }

func (h *Histogram) write(w io.Writer) {
	counts, total := h.h.snapshot()
	writeHistSamples(w, h.mid.name, h.labels, &counts, total,
		float64(h.sumNS.Load())/1e9, h.quantiles)
}

// --- ValueHistogram ---

// ValueHistogram is a histogram over plain float64 observations (batch
// occupancies, queue lengths — anything that is a count rather than a
// duration). Buckets are caller-supplied upper bounds; observations above
// the last bound land in +Inf. Observe is lock-free.
type ValueHistogram struct {
	mid    metricID
	labels []Label
	bounds []float64
	counts []atomic.Uint64 // len(bounds)+1; last = +Inf overflow
	count  atomic.Uint64
	sum    atomicFloat
}

// atomicFloat is a float64 accumulated via CAS on its bit pattern.
type atomicFloat struct{ bits atomic.Uint64 }

func (f *atomicFloat) add(v float64) {
	for {
		old := f.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if f.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

func (f *atomicFloat) load() float64 { return math.Float64frombits(f.bits.Load()) }

// ValueHistogram registers (or returns the existing) value histogram with
// the given ascending bucket upper bounds.
func (r *Registry) ValueHistogram(name, help string, bounds []float64, labels ...Label) *ValueHistogram {
	h := &ValueHistogram{
		mid:    metricID{name, "histogram", help, renderLabels(labels)},
		labels: labels,
		bounds: bounds,
		counts: make([]atomic.Uint64, len(bounds)+1),
	}
	return r.register(h).(*ValueHistogram)
}

// Observe records one value.
func (h *ValueHistogram) Observe(v float64) {
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i].Add(1)
	h.count.Add(1)
	h.sum.add(v)
}

// Mean returns the average observed value and the observation count.
func (h *ValueHistogram) Mean() (mean float64, count uint64) {
	n := h.count.Load()
	if n == 0 {
		return 0, 0
	}
	return h.sum.load() / float64(n), n
}

func (h *ValueHistogram) id() metricID { return h.mid }

func (h *ValueHistogram) write(w io.Writer) {
	var cum uint64
	for i, bound := range h.bounds {
		cum += h.counts[i].Load()
		fmt.Fprintf(w, "%s_bucket%s %d\n", h.mid.name,
			renderLabels(append(append([]Label{}, h.labels...),
				Label{"le", formatFloat(bound)})), cum)
	}
	total := cum + h.counts[len(h.bounds)].Load()
	fmt.Fprintf(w, "%s_bucket%s %d\n", h.mid.name,
		renderLabels(append(append([]Label{}, h.labels...), Label{"le", "+Inf"})), total)
	fmt.Fprintf(w, "%s_sum%s %s\n", h.mid.name, renderLabels(h.labels), formatFloat(h.sum.load()))
	fmt.Fprintf(w, "%s_count%s %d\n", h.mid.name, renderLabels(h.labels), total)
}

// writeHistSamples renders one histogram series: sparse cumulative
// le-buckets (empty leading/inner runs are skipped — the cumulative value
// is unchanged there), +Inf, _sum, _count, and quantile lines.
func writeHistSamples(w io.Writer, name string, labels []Label,
	counts *[histBuckets]uint64, total uint64, sumSeconds float64, quantiles []float64) {
	var cum uint64
	for i, c := range counts {
		if c == 0 {
			continue
		}
		cum += c
		fmt.Fprintf(w, "%s_bucket%s %d\n", name,
			renderLabels(append(append([]Label{}, labels...),
				Label{"le", formatFloat(histBoundSeconds(i))})), cum)
	}
	fmt.Fprintf(w, "%s_bucket%s %d\n", name,
		renderLabels(append(append([]Label{}, labels...), Label{"le", "+Inf"})), total)
	fmt.Fprintf(w, "%s_sum%s %s\n", name, renderLabels(labels), formatFloat(sumSeconds))
	fmt.Fprintf(w, "%s_count%s %d\n", name, renderLabels(labels), total)
	for _, q := range quantiles {
		if total == 0 {
			continue
		}
		fmt.Fprintf(w, "%s%s %s\n", name,
			renderLabels(append(append([]Label{}, labels...),
				Label{"quantile", formatFloat(q)})),
			formatFloat(quantileOf(counts, total, q)))
	}
}
