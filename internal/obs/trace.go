package obs

import (
	"fmt"
	"io"
	"sync/atomic"
	"time"
)

// Stage identifies one instrumented phase of the WinRS gradient pipeline.
// The boundaries mirror the paper's three-phase structure plus the fused
// kernel's internal split: who wins between algorithms is explained by how
// the per-stage shares shift (transform-bound vs EWM-bound regimes).
type Stage uint8

const (
	// StageSegmentTile is one fused Ω_α(n,r) work unit end to end
	// (gathers, transforms, EWM and output transform for one
	// segment × f_h × width-tile).
	StageSegmentTile Stage = iota
	// StageTransform covers the operand gathers plus the G·W and Dᵀ·X
	// Winograd transforms inside a unit.
	StageTransform
	// StageEWM covers the α-batched element-wise outer products (the
	// emulated Tensor-Core MMA).
	StageEWM
	// StageWHat is the Ŵ-cache pre-pass of one execution: gathering and
	// filter-transforming every ∇Y unit once before the fused units run.
	// Recorded once per execution, like StageReduce.
	StageWHat
	// StageReduce is the Kahan bucket reduction of one execution.
	StageReduce
	// StageGroupGather is one grouped-execution channel gather: slicing a
	// group's I_C/G input or O_C/G ∇Y channels into its staging slab. Under
	// the interleaved group dispatch each gather is a pool unit recorded
	// individually, so the overlap with the previous group's compute is
	// visible in the stage histogram; the sequential dispatch gathers
	// inline and records per group.
	StageGroupGather
	// NumStages bounds the enum.
	NumStages
)

var stageNames = [NumStages]string{"segment_tile", "transform", "ewm", "what_transform", "reduce", "group_gather"}

func (s Stage) String() string {
	if int(s) < len(stageNames) {
		return stageNames[s]
	}
	return "unknown"
}

// traceEnabled gates all recording. Off by default: the disabled execution
// path pays one atomic load per ExecuteIn call and nothing per unit.
var traceEnabled atomic.Bool

// EnableTrace switches per-stage tracing on or off process-wide.
func EnableTrace(v bool) { traceEnabled.Store(v) }

// TraceEnabled reports whether stage tracing is on. Hot paths load it once
// per execution, not per unit.
func TraceEnabled() bool { return traceEnabled.Load() }

// UnitTimes accumulates the intra-unit stage durations of one fused kernel
// invocation. The executor keeps it on the stack and records it once per
// unit, so the enabled path allocates nothing either.
type UnitTimes struct {
	Transform time.Duration
	EWM       time.Duration
}

// stageRec is the lock-free accumulator of one stage.
type stageRec struct {
	count atomic.Uint64
	sumNS atomic.Int64
	h     hist
}

var trace [NumStages]stageRec

// RecordStage adds one observation to a stage.
func RecordStage(s Stage, d time.Duration) {
	r := &trace[s]
	r.count.Add(1)
	r.sumNS.Add(d.Nanoseconds())
	r.h.record(d)
}

// RecordUnit records one fused work unit: its total duration plus the
// intra-unit transform and EWM shares.
func RecordUnit(total time.Duration, ut UnitTimes) {
	RecordStage(StageSegmentTile, total)
	RecordStage(StageTransform, ut.Transform)
	RecordStage(StageEWM, ut.EWM)
}

// ResetTrace zeroes all stage accumulators (bench isolation). Concurrent
// recorders may leak a few observations across the reset; that is fine for
// a stats surface.
func ResetTrace() {
	for s := range trace {
		trace[s].count.Store(0)
		trace[s].sumNS.Store(0)
		trace[s].h.reset()
	}
}

// StageStats is one stage's folded snapshot.
type StageStats struct {
	Stage Stage
	Count uint64
	Total time.Duration
	// P50, P90 and P99 are approximate upper-bound quantiles in seconds.
	P50, P90, P99 float64
}

// TraceSnapshot folds the recorder into per-stage stats.
func TraceSnapshot() [NumStages]StageStats {
	var out [NumStages]StageStats
	for s := Stage(0); s < NumStages; s++ {
		r := &trace[s]
		counts, total := r.h.snapshot()
		out[s] = StageStats{
			Stage: s,
			Count: r.count.Load(),
			Total: time.Duration(r.sumNS.Load()),
			P50:   quantileOf(&counts, total, 0.5),
			P90:   quantileOf(&counts, total, 0.9),
			P99:   quantileOf(&counts, total, 0.99),
		}
	}
	return out
}

// StageShares returns each stage's fraction of the total traced time,
// where the denominator is what-transform + segment-tile + reduce (the
// three stages that partition one execution; transform and EWM are nested
// inside the tile).
func StageShares() map[string]float64 {
	snap := TraceSnapshot()
	denom := float64(snap[StageWHat].Total + snap[StageSegmentTile].Total + snap[StageReduce].Total)
	out := make(map[string]float64, NumStages)
	if denom <= 0 {
		return out
	}
	for _, st := range snap {
		out[st.Stage.String()] = float64(st.Total) / denom
	}
	return out
}

// WriteTraceTo renders the per-stage histograms in Prometheus text format:
// one winrs_stage_duration_seconds family labelled by stage, plus the
// per-stage totals as counters. Stages with no observations still emit
// their (empty) series so dashboards can discover the label set.
func WriteTraceTo(w io.Writer) error {
	cw := &countingWriter{w: w}
	io.WriteString(cw, "# HELP winrs_stage_duration_seconds Duration of WinRS pipeline stages (per fused unit; reduce per execution).\n")
	io.WriteString(cw, "# TYPE winrs_stage_duration_seconds histogram\n")
	for s := Stage(0); s < NumStages; s++ {
		r := &trace[s]
		counts, total := r.h.snapshot()
		writeHistSamples(cw, "winrs_stage_duration_seconds",
			[]Label{{"stage", s.String()}}, &counts, total,
			float64(r.sumNS.Load())/1e9, []float64{0.5, 0.9, 0.99})
	}
	io.WriteString(cw, "# HELP winrs_stage_time_ns_total Cumulative nanoseconds spent per stage.\n")
	io.WriteString(cw, "# TYPE winrs_stage_time_ns_total counter\n")
	for s := Stage(0); s < NumStages; s++ {
		writeCounterLine(cw, "winrs_stage_time_ns_total", s.String(),
			uint64(trace[s].sumNS.Load()))
	}
	io.WriteString(cw, "# HELP winrs_stage_units_total Cumulative observations per stage.\n")
	io.WriteString(cw, "# TYPE winrs_stage_units_total counter\n")
	for s := Stage(0); s < NumStages; s++ {
		writeCounterLine(cw, "winrs_stage_units_total", s.String(), trace[s].count.Load())
	}
	return cw.err
}

func writeCounterLine(w io.Writer, name, stage string, v uint64) {
	fmt.Fprintf(w, "%s{stage=%q} %d\n", name, stage, v)
}
