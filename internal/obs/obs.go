// Package obs is the zero-dependency observability layer shared by the
// WinRS library and the winrs-serve daemon.
//
// It has two halves:
//
//   - A per-stage trace recorder (trace.go): lock-free atomic counters plus
//     striped duration histograms for the four pipeline stages of one
//     gradient computation — the fused segment-tile unit, the Winograd
//     transforms, the element-wise multiplication (EWM), and the Kahan
//     bucket reduction. Recording is gated by a package-level switch so the
//     disabled path costs one atomic load per execution and zero
//     allocations; internal/core hooks it into ExecuteIn/ExecuteHalfIn.
//
//   - A metrics registry (registry.go): process- or server-scoped counters,
//     gauges and histograms with p50/p90/p99 quantiles, exported in
//     Prometheus text format. internal/serve builds its request stats on
//     it, and the Default registry carries process-wide runtime gauges.
//
// The package imports only the standard library and is safe for concurrent
// use throughout: writers never block, and readers take approximate
// snapshots, which is all a metrics surface needs.
package obs

import (
	"math"
	"sync/atomic"
	"time"
	"unsafe"
)

// Histogram geometry shared by the trace recorder and registry histograms:
// geometric buckets with ~25% relative resolution. Bucket 0's upper bound
// is 32ns; 96 buckets cover 32ns…≈50s, wide enough for both a single
// transform panel and a worst-case request.
const (
	histBuckets = 96
	histBaseNS  = 32.0 // bucket 0 upper bound, nanoseconds
	histRatio   = 1.25 // geometric growth per bucket
)

var histLogRatio = math.Log(histRatio)

// histBucket maps a duration to its bucket index.
func histBucket(d time.Duration) int {
	ns := float64(d.Nanoseconds())
	if ns <= histBaseNS {
		return 0
	}
	i := int(math.Ceil(math.Log(ns/histBaseNS) / histLogRatio))
	if i >= histBuckets {
		return histBuckets - 1
	}
	return i
}

// histBoundSeconds returns bucket i's upper bound in seconds.
func histBoundSeconds(i int) float64 {
	return histBaseNS * math.Pow(histRatio, float64(i)) / 1e9
}

// hist is a striped, lock-free duration histogram. Counts are split over
// stripes so concurrent workers recording the same stage do not ping-pong
// one cache line; a reader folds the stripes into a snapshot.
const histStripes = 8

type hist struct {
	stripes [histStripes]histStripe
}

// histStripe is padded to its own cache lines.
type histStripe struct {
	counts [histBuckets]atomic.Uint64
	_      [64]byte
}

// stripeIndex picks a stripe from the address of a stack variable: distinct
// goroutines run on distinct stacks (allocated well over 1KiB apart), so
// concurrent recorders disperse across stripes at the cost of two
// arithmetic ops — no shared counter, no runtime hooks.
func stripeIndex() int {
	var b byte
	return int(uintptr(unsafe.Pointer(&b))>>10) & (histStripes - 1)
}

func (h *hist) record(d time.Duration) {
	h.stripes[stripeIndex()].counts[histBucket(d)].Add(1)
}

// snapshot folds the stripes into one per-bucket count vector and total.
func (h *hist) snapshot() (counts [histBuckets]uint64, total uint64) {
	for s := range h.stripes {
		for i := range counts {
			c := h.stripes[s].counts[i].Load()
			counts[i] += c
			total += c
		}
	}
	return counts, total
}

// reset zeroes all stripes. Concurrent records may survive a reset; that is
// acceptable for a stats surface.
func (h *hist) reset() {
	for s := range h.stripes {
		for i := range h.stripes[s].counts {
			h.stripes[s].counts[i].Store(0)
		}
	}
}

// quantileOf returns the approximate q-quantile (upper bucket bound, in
// seconds) of a folded snapshot with the given total.
func quantileOf(counts *[histBuckets]uint64, total uint64, q float64) float64 {
	if total == 0 {
		return 0
	}
	target := uint64(q * float64(total))
	if target >= total {
		target = total - 1
	}
	var cum uint64
	for i, c := range counts {
		cum += c
		if cum > target {
			return histBoundSeconds(i)
		}
	}
	return histBoundSeconds(histBuckets - 1)
}
