package backend

import (
	"fmt"
	"sync"

	"context"

	"winrs/internal/conv"
	"winrs/internal/core"
	"winrs/internal/fftconv"
	"winrs/internal/gemm"
	"winrs/internal/tensor"
	"winrs/internal/winnf"
)

// errFP16 is the uniform "no FP16 path" failure.
func errFP16(name string) error {
	return fmt.Errorf("backend: %s has no FP16 path", name)
}

// --- winrs: the paper's fused segmented Winograd algorithm ---

// winrsBackend adapts internal/core. Configuration adaptation (§4) is
// deterministic per (geometry, precision), so configs are memoized; the
// workspace is allocated per call — this is the registry/measurement
// entry point, while the serving hot path keeps its own pooled route
// through serve.Runtime (which reuses workspaces and stays 0 allocs/op).
type winrsBackend struct {
	cfgs sync.Map // winrsKey -> winrsConfig
}

type winrsKey struct {
	p    conv.Params
	fp16 bool
}

type winrsConfig struct {
	cfg *core.Config
	err error
}

func newWinRSBackend() *winrsBackend { return &winrsBackend{} }

func (b *winrsBackend) Name() string { return "winrs" }

func (b *winrsBackend) config(p conv.Params, prec Precision) (*core.Config, error) {
	key := winrsKey{p: p, fp16: prec == FP16}
	if v, ok := b.cfgs.Load(key); ok {
		c := v.(winrsConfig)
		return c.cfg, c.err
	}
	opts := []core.Option{}
	if prec == FP16 {
		opts = append(opts, core.WithFP16())
	}
	cfg, err := core.Configure(p, opts...)
	v, _ := b.cfgs.LoadOrStore(key, winrsConfig{cfg: cfg, err: err})
	c := v.(winrsConfig)
	return c.cfg, c.err
}

func (b *winrsBackend) Supports(p conv.Params, prec Precision) bool {
	if p.Validate() != nil {
		return false
	}
	_, err := b.config(p, prec)
	return err == nil
}

func (b *winrsBackend) WorkspaceBytes(p conv.Params, prec Precision) int64 {
	cfg, err := b.config(p, prec)
	if err != nil {
		return 0
	}
	return cfg.WorkspaceBytes()
}

func (b *winrsBackend) ExecuteCtx(ctx context.Context, p conv.Params, x, dy, dst *tensor.Float32) error {
	if err := checkOperands(p, x.Shape, dy.Shape, dst.Shape); err != nil {
		return err
	}
	cfg, err := b.config(p, FP32)
	if err != nil {
		return err
	}
	return observe(ctx, b.Name(), func() error {
		_, err := core.ExecuteInCtx(ctx, cfg, core.NewWorkspace(cfg), x, dy, dst)
		return err
	})
}

func (b *winrsBackend) ExecuteHalfCtx(ctx context.Context, p conv.Params, x, dy *tensor.Half, dst *tensor.Float32) error {
	if err := checkOperands(p, x.Shape, dy.Shape, dst.Shape); err != nil {
		return err
	}
	cfg, err := b.config(p, FP16)
	if err != nil {
		return err
	}
	return observe(ctx, b.Name(), func() error {
		_, err := core.ExecuteHalfInCtx(ctx, cfg, core.NewWorkspace(cfg), x, dy, dst)
		return err
	})
}

// --- gemm: explicit chunked im2col + GEMM (the Cu-Algo1 stand-in) ---

type gemmBackend struct{}

func (gemmBackend) Name() string { return "gemm" }

func (gemmBackend) Supports(p conv.Params, prec Precision) bool {
	return p.Validate() == nil
}

// WorkspaceBytes reports the per-group im2col scratch: grouped execution
// runs Algo1 one group at a time, so only one group's chunk buffer is live.
func (gemmBackend) WorkspaceBytes(p conv.Params, prec Precision) int64 {
	if p.Validate() != nil {
		return 0
	}
	return gemm.Algo1Workspace(groupParams(p))
}

// groupParams returns the single-group geometry of p (p itself when
// ungrouped).
func groupParams(p conv.Params) conv.Params {
	if p.G() <= 1 {
		return p
	}
	pg := p
	pg.IC, pg.OC, pg.Groups = p.ICG(), p.OCG(), 0
	return pg
}

// gatherChans copies channels [off, off+width) of every row of src
// (rows × srcC) into dst (rows × width); the grouped adapters' operand
// slicer (NHWC keeps channels innermost).
func gatherChans[E any](dst, src []E, rows, srcC, off, width int) {
	for r := 0; r < rows; r++ {
		copy(dst[r*width:(r+1)*width], src[r*srcC+off:r*srcC+off+width])
	}
}

func (gemmBackend) ExecuteCtx(ctx context.Context, p conv.Params, x, dy, dst *tensor.Float32) error {
	if err := checkOperands(p, x.Shape, dy.Shape, dst.Shape); err != nil {
		return err
	}
	return observe(ctx, "gemm", func() error {
		if p.G() <= 1 {
			copy(dst.Data, gemm.Algo1(p, x, dy).Data)
			return nil
		}
		g, icg, ocg := p.G(), p.ICG(), p.OCG()
		pg := groupParams(p)
		xg := tensor.NewFloat32(pg.XShape())
		dyg := tensor.NewFloat32(pg.DYShape())
		slab := pg.DWShape().Elems()
		for gi := 0; gi < g; gi++ {
			gatherChans(xg.Data, x.Data, p.N*p.IH*p.IW, p.IC, gi*icg, icg)
			gatherChans(dyg.Data, dy.Data, p.N*p.OH()*p.OW(), p.OC, gi*ocg, ocg)
			copy(dst.Data[gi*slab:(gi+1)*slab], gemm.Algo1(pg, xg, dyg).Data)
		}
		return nil
	})
}

func (gemmBackend) ExecuteHalfCtx(ctx context.Context, p conv.Params, x, dy *tensor.Half, dst *tensor.Float32) error {
	if err := checkOperands(p, x.Shape, dy.Shape, dst.Shape); err != nil {
		return err
	}
	return observe(ctx, "gemm", func() error {
		if p.G() <= 1 {
			copy(dst.Data, gemm.Algo1Half(p, x, dy).Data)
			return nil
		}
		g, icg, ocg := p.G(), p.ICG(), p.OCG()
		pg := groupParams(p)
		xg := tensor.NewHalf(pg.XShape())
		dyg := tensor.NewHalf(pg.DYShape())
		slab := pg.DWShape().Elems()
		for gi := 0; gi < g; gi++ {
			gatherChans(xg.Data, x.Data, p.N*p.IH*p.IW, p.IC, gi*icg, icg)
			gatherChans(dyg.Data, dy.Data, p.N*p.OH()*p.OW(), p.OC, gi*ocg, ocg)
			copy(dst.Data[gi*slab:(gi+1)*slab], gemm.Algo1Half(pg, xg, dyg).Data)
		}
		return nil
	})
}

// --- direct: naive summation (the oracle-adjacent reference) ---

// directBackend adapts internal/conv. Its FP16 path widens the binary16
// operands to float32 and runs the FP32 kernel — oracle semantics (the
// quantization error of the operands, none from the arithmetic), matching
// how the differential suite grounds FP16 backends.
type directBackend struct{}

func (directBackend) Name() string { return "direct" }

func (directBackend) Supports(p conv.Params, prec Precision) bool {
	return p.Validate() == nil
}

func (directBackend) WorkspaceBytes(p conv.Params, prec Precision) int64 { return 0 }

func (directBackend) ExecuteCtx(ctx context.Context, p conv.Params, x, dy, dst *tensor.Float32) error {
	if err := checkOperands(p, x.Shape, dy.Shape, dst.Shape); err != nil {
		return err
	}
	return observe(ctx, "direct", func() error {
		copy(dst.Data, conv.BackwardFilterDirect32(p, x, dy).Data)
		return nil
	})
}

func (directBackend) ExecuteHalfCtx(ctx context.Context, p conv.Params, x, dy *tensor.Half, dst *tensor.Float32) error {
	if err := checkOperands(p, x.Shape, dy.Shape, dst.Shape); err != nil {
		return err
	}
	return observe(ctx, "direct", func() error {
		copy(dst.Data, conv.BackwardFilterDirect32(p, x.ToFloat32(), dy.ToFloat32()).Data)
		return nil
	})
}

// --- fft: spectral correlation (the Cu-FFT stand-in; FP32 only) ---

type fftBackend struct{}

func (fftBackend) Name() string { return "fft" }

func (fftBackend) Supports(p conv.Params, prec Precision) bool {
	// Declines grouped layers: the spectral path has no channel-sliced
	// variant.
	return prec == FP32 && p.Validate() == nil && p.G() == 1
}

// WorkspaceBytes reports the Go implementation's actual scratch — the
// complex128 spectrum planes of every (n,ic) input and (n,oc) gradient
// (the per-pair accumulator plane is transient). fftconv.ModelWorkspace
// stays the GPU-model (complex64) quantity for the Table 2 comparisons.
func (fftBackend) WorkspaceBytes(p conv.Params, prec Precision) int64 {
	if prec != FP32 || p.Validate() != nil {
		return 0
	}
	lh, lw := fftconv.PlaneSize(p)
	planes := int64(p.N)*int64(p.IC) + int64(p.N)*int64(p.OC)
	return planes * int64(lh) * int64(lw) * 16
}

func (fftBackend) ExecuteCtx(ctx context.Context, p conv.Params, x, dy, dst *tensor.Float32) error {
	if err := checkOperands(p, x.Shape, dy.Shape, dst.Shape); err != nil {
		return err
	}
	if p.G() != 1 {
		return fmt.Errorf("backend: fft does not support grouped %v", p)
	}
	return observe(ctx, "fft", func() error {
		copy(dst.Data, fftconv.BackwardFilter(p, x, dy).Data)
		return nil
	})
}

func (fftBackend) ExecuteHalfCtx(ctx context.Context, p conv.Params, x, dy *tensor.Half, dst *tensor.Float32) error {
	return errFP16("fft")
}

// --- winnf: non-fused Winograd (the Cu-WinNF stand-in) ---

type winnfBackend struct{}

func (winnfBackend) Name() string { return "winnf" }

func (winnfBackend) Supports(p conv.Params, prec Precision) bool {
	// Declines grouped layers, mirroring the Cu-WinNF coverage.
	if p.Validate() != nil || p.G() != 1 || !winnf.Supported(p) {
		return false
	}
	if prec == FP16 {
		return p.FH == 3 // Cu-WinNF FP16 covers only 3×3
	}
	return true
}

func (winnfBackend) WorkspaceBytes(p conv.Params, prec Precision) int64 {
	if p.Validate() != nil || !winnf.Supported(p) {
		return 0
	}
	ws := winnf.Workspace(p)
	if prec == FP16 {
		return ws / 2 // intermediates held in binary16
	}
	return ws
}

func (winnfBackend) ExecuteCtx(ctx context.Context, p conv.Params, x, dy, dst *tensor.Float32) error {
	if err := checkOperands(p, x.Shape, dy.Shape, dst.Shape); err != nil {
		return err
	}
	if p.G() != 1 || !winnf.Supported(p) {
		return fmt.Errorf("backend: winnf does not support %v", p)
	}
	return observe(ctx, "winnf", func() error {
		copy(dst.Data, winnf.BackwardFilter(p, x, dy).Data)
		return nil
	})
}

func (winnfBackend) ExecuteHalfCtx(ctx context.Context, p conv.Params, x, dy *tensor.Half, dst *tensor.Float32) error {
	if err := checkOperands(p, x.Shape, dy.Shape, dst.Shape); err != nil {
		return err
	}
	if !(p.FH == 3 && p.FW == 3) || p.G() != 1 {
		return fmt.Errorf("backend: winnf FP16 supports only ungrouped 3x3, got %v", p)
	}
	return observe(ctx, "winnf", func() error {
		copy(dst.Data, winnf.BackwardFilterHalf(p, x, dy).Data)
		return nil
	})
}
