package backend

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"os"
	"runtime"
	"testing"

	"winrs/internal/conv"
	"winrs/internal/sched"
	"winrs/internal/tensor"
)

// Cross-backend differential sweep: every registered backend against the
// FP64 direct-convolution oracle over the top-level differential-sweep
// shape grid, under the eq.(7)-style bound κ·L·ε (see the package comment
// of the root differential suite for the error model). This is what lets
// dispatch claim that switching backends changes speed, never the result.
const (
	diffEps32 = 5.96e-8 // 2^-24
	diffEps16 = 4.88e-4 // 2^-11
)

func diffKappa(p conv.Params) float64 {
	k := 16.0
	for r := p.FW; r > 3; r-- {
		k *= 2
	}
	return k
}

func accLen(p conv.Params) float64 { return float64(p.N * p.OH() * p.OW()) }

// diffCases mirrors the root differential sweep grid: filter shapes,
// paddings, channel counts and the r=1/tiny-O_W edge geometries.
var diffCases = []struct {
	name string
	p    conv.Params
}{
	{"3x3_pad1", conv.Params{N: 1, IH: 12, IW: 12, FH: 3, FW: 3, IC: 3, OC: 5, PH: 1, PW: 1}},
	{"3x3_batched", conv.Params{N: 3, IH: 10, IW: 10, FH: 3, FW: 3, IC: 2, OC: 2, PH: 1, PW: 1}},
	{"5x5_pad2", conv.Params{N: 2, IH: 14, IW: 16, FH: 5, FW: 5, IC: 2, OC: 3, PH: 2, PW: 2}},
	{"7x7", conv.Params{N: 1, IH: 16, IW: 18, FH: 7, FW: 7, IC: 2, OC: 2}},
	{"1x3_row_filter", conv.Params{N: 1, IH: 6, IW: 14, FH: 1, FW: 3, IC: 4, OC: 4}},
	{"3x1_col_filter", conv.Params{N: 1, IH: 14, IW: 9, FH: 3, FW: 1, IC: 3, OC: 2}},
	{"1x1_pointwise", conv.Params{N: 2, IH: 8, IW: 11, FH: 1, FW: 1, IC: 3, OC: 4}},
	{"nonpow2_channels", conv.Params{N: 1, IH: 13, IW: 17, FH: 3, FW: 3, IC: 5, OC: 7, PH: 1, PW: 1}},
	{"tiny_ow", conv.Params{N: 2, IH: 7, IW: 5, FH: 3, FW: 3, IC: 2, OC: 2}},
	{"wide_row", conv.Params{N: 1, IH: 4, IW: 50, FH: 3, FW: 3, IC: 2, OC: 2, PW: 1}},
}

// TestMain builds the process-wide sched pool at width 4 before any test
// runs: the pool is sized at first use, and Run caps its effective width
// at runtime GOMAXPROCS, so this makes the GOMAXPROCS=4 subtests genuinely
// four-wide on a 1-CPU CI host while the GOMAXPROCS=1 subtests still take
// the inline path.
func TestMain(m *testing.M) {
	prev := runtime.GOMAXPROCS(4)
	sched.Default()
	runtime.GOMAXPROCS(prev)
	os.Exit(m.Run())
}

func diffLayer(t testing.TB, seed int64, p conv.Params) (*tensor.Float32, *tensor.Float32) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	x := tensor.NewFloat32(p.XShape())
	dy := tensor.NewFloat32(p.DYShape())
	x.FillUniform(rng, 0, 1)
	dy.FillUniform(rng, 0, 1)
	return x, dy
}

func maxAbsErr64(got *tensor.Float32, want *tensor.Float64) float64 {
	m := 0.0
	for i := range want.Data {
		if d := math.Abs(float64(got.Data[i]) - want.Data[i]); d > m {
			m = d
		}
	}
	return m
}

// withProcs runs fn at the given GOMAXPROCS (restored afterwards).
func withProcs(t *testing.T, procs int, fn func(t *testing.T)) {
	t.Run(fmt.Sprintf("procs%d", procs), func(t *testing.T) {
		prev := runtime.GOMAXPROCS(procs)
		defer runtime.GOMAXPROCS(prev)
		fn(t)
	})
}

func TestCrossBackendDifferentialFP32(t *testing.T) {
	for _, procs := range []int{1, 4} {
		withProcs(t, procs, func(t *testing.T) {
			ran := map[string]int{}
			for i, tc := range diffCases {
				t.Run(tc.name, func(t *testing.T) {
					x, dy := diffLayer(t, int64(400+i), tc.p)
					ref := conv.BackwardFilterDirect64(tc.p, x.ToFloat64(), dy.ToFloat64())
					bound := diffKappa(tc.p) * accLen(tc.p) * diffEps32
					for _, b := range Default().Backends() {
						if !b.Supports(tc.p, FP32) {
							continue
						}
						ran[b.Name()]++
						dst := tensor.NewFloat32(tc.p.DWShape())
						if err := b.ExecuteCtx(context.Background(), tc.p, x, dy, dst); err != nil {
							t.Fatalf("%s: ExecuteCtx: %v", b.Name(), err)
						}
						if e := maxAbsErr64(dst, ref); e > bound {
							t.Errorf("%s vs FP64 oracle: err %.3g exceeds eq.(7) bound %.3g",
								b.Name(), e, bound)
						}
					}
				})
			}
			// Every backend must have been exercised: fft and direct cover
			// all shapes, winnf the square 3×3/5×5 subset.
			for _, name := range Default().Names() {
				if ran[name] == 0 {
					t.Errorf("backend %s never ran in the FP32 sweep", name)
				}
			}
			if ran["fft"] != len(diffCases) {
				t.Errorf("fft ran %d/%d shapes", ran["fft"], len(diffCases))
			}
			if ran["winnf"] < 5 {
				t.Errorf("winnf ran only %d shapes", ran["winnf"])
			}
		})
	}
}

func TestCrossBackendDifferentialFP16(t *testing.T) {
	for _, procs := range []int{1, 4} {
		withProcs(t, procs, func(t *testing.T) {
			ran := map[string]int{}
			for i, tc := range diffCases {
				t.Run(tc.name, func(t *testing.T) {
					x, dy := diffLayer(t, int64(500+i), tc.p)
					// Quantize the operands and recompute the reference from
					// the quantized values, so the bound measures algorithm
					// error rather than input quantization.
					xh, dyh := x.ToHalf(), dy.ToHalf()
					ref := conv.BackwardFilterDirect64(tc.p,
						xh.ToFloat32().ToFloat64(), dyh.ToFloat32().ToFloat64())
					bound := diffKappa(tc.p) * accLen(tc.p) * diffEps16
					for _, b := range Default().Backends() {
						if !b.Supports(tc.p, FP16) {
							continue
						}
						ran[b.Name()]++
						dst := tensor.NewFloat32(tc.p.DWShape())
						if err := b.ExecuteHalfCtx(context.Background(), tc.p, xh, dyh, dst); err != nil {
							t.Fatalf("%s: ExecuteHalfCtx: %v", b.Name(), err)
						}
						if e := maxAbsErr64(dst, ref); e > bound {
							t.Errorf("%s FP16 vs quantized FP64 oracle: err %.3g exceeds bound %.3g",
								b.Name(), e, bound)
						}
					}
				})
			}
			for _, name := range []string{"winrs", "gemm", "direct", "winnf"} {
				if ran[name] == 0 {
					t.Errorf("backend %s never ran in the FP16 sweep", name)
				}
			}
			if ran["fft"] != 0 {
				t.Errorf("fft claims FP16 support (%d shapes)", ran["fft"])
			}
		})
	}
}
